(* BENCH_sim.json regression diff.

   [run ~old_path ~new_path ~tol ~strict] loads two benchmark JSON files
   (the committed baseline and a freshly generated one), matches rows by
   their identity fields, and classifies every shared numeric/boolean
   metric:

   - exact    — deterministic outputs of the simulation (rounds, messages,
                bits, weight, check sums, fault counters).  Any mismatch
                is a regression: these do not depend on the machine.
   - guarded  — allocation footprints (minor words per run/round).  NEW
                may be worse than OLD by at most [tol] percent.  Across
                modes (subset) breaches downgrade to advisories: per-round
                amortization depends on each mode's run counts.
   - timing   — wall-clock figures (ns, rounds/s, speedups, r^2).  Noise
                across machines; breaches are advisory unless [strict].

   Rows present in OLD but absent from NEW are regressions in sections
   carrying exact metrics (coverage loss), advisory in the purely timing
   sections (speedups).  When the two files were written by different
   modes (a `micro` baseline against a `smoke` CI run) the NEW file is a
   declared subset, so missing rows downgrade to notes — only rows
   measured by both gate.  Rows or fields only in NEW are notes — a
   widened benchmark suite is not a regression.  Exit status: 0 clean,
   1 regression, 2 parse/I-O error. *)

(* ------------------------------------------------------------- tiny JSON *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let next () =
    if !pos >= n then fail "unexpected end of input";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    if next () <> c then fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' -> (
          (match next () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              (* Keep the escape verbatim: identity keys here are ASCII. *)
              Buffer.add_string b "\\u";
              for _ = 1 to 4 do
                Buffer.add_char b (next ())
              done
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ())
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        incr pos;
        skip_ws ();
        if peek () = '}' then (incr pos; Obj [])
        else
          let rec members acc =
            let k = parse_string () in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> skip_ws (); members ((k, v) :: acc)
            | '}' -> Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | '[' ->
        incr pos;
        skip_ws ();
        if peek () = ']' then (incr pos; Arr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> elems (v :: acc)
            | ']' -> Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
    | '"' -> Str (parse_string ())
    | 't' ->
        pos := !pos + 4;
        Bool true
    | 'f' ->
        pos := !pos + 5;
        Bool false
    | 'n' ->
        pos := !pos + 4;
        Null
    | c when c = '-' || (c >= '0' && c <= '9') ->
        let start = !pos in
        let num_char c =
          (c >= '0' && c <= '9')
          || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
        in
        while !pos < n && num_char s.[!pos] do
          incr pos
        done;
        let tok = String.sub s start (!pos - start) in
        Num (try float_of_string tok with Failure _ -> fail "bad number")
    | c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let load path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> raise (Bad (Printf.sprintf "cannot open %s: %s" path msg))
  in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  try parse s with Bad msg -> raise (Bad (Printf.sprintf "%s: %s" path msg))

(* ----------------------------------------------------- metric classes *)

type cls = Identity | Exact | Guarded | Timing

let exact_fields =
  [
    "rounds"; "rounds_per_run"; "base_rounds"; "recovery_rounds";
    "lossless_rounds"; "hardened_rounds"; "hardened_messages"; "messages";
    "bits"; "weight"; "check"; "count"; "max_edge_round_bits";
    "ledger_simulated"; "ledger_charged"; "dropped"; "retransmissions";
    "restores"; "checkpoint_bits"; "states_match"; "masked"; "events";
    "log_bytes";
  ]

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let classify field =
  match field with
  | "name" | "workload" | "path" | "n" | "jobs" | "drop" | "crash_windows" ->
      Identity
  | "minor_words_per_run" | "minor_words_per_round" -> Guarded
  | f when List.mem f exact_fields -> Exact
  | f
    when Filename.check_suffix f "_ns"
         || Filename.check_suffix f "_per_sec"
         || Filename.check_suffix f "_pct"
         || contains_sub f "ns_per" || contains_sub f "speedup" ->
      Timing
  | "r_square" | "saturated" | "wall_overhead" | "overhead" -> Timing
  | _ -> Exact (* unknown fields: safest to demand equality *)

(* true when a larger NEW value is an improvement, not a cost *)
let higher_is_better field =
  Filename.check_suffix field "_per_sec"
  || contains_sub field "speedup" || field = "r_square"

(* Sections with no exact payload: a missing row there is advisory. *)
let timing_only_section = function
  | "speedups" -> true
  | _ -> false

(* ------------------------------------------------------------- matching *)

let fstr = function
  | Str s -> s
  | Num x ->
      if Float.is_integer x then string_of_int (int_of_float x)
      else Printf.sprintf "%.2f" x
  | Bool b -> string_of_bool b
  | Null -> "null"
  | Arr _ -> "<array>"
  | Obj _ -> "<object>"

let row_key fields =
  fields
  |> List.filter (fun (k, _) -> classify k = Identity)
  |> List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (fstr v))
  |> String.concat " "

type tally = {
  mutable compared : int;
  mutable regressions : int;
  mutable advisories : int;
  mutable notes : int;
}

let breach_pct ~old_v ~new_v ~better_high =
  (* Positive when NEW is worse than OLD, as a percentage of OLD. *)
  if old_v = 0. then (if new_v = old_v then 0. else infinity)
  else
    let delta = (new_v -. old_v) /. Float.abs old_v *. 100. in
    if better_high then -.delta else delta

let rec compare_rows t ~strict ~tol ~subset ~section ~key old_fields new_fields
    =
  let say fmt = Format.printf ("    " ^^ fmt ^^ "@.") in
  List.iter
    (fun (field, old_v) ->
      if classify field <> Identity then
        match List.assoc_opt field new_fields with
        | None ->
            t.regressions <- t.regressions + 1;
            say "REGRESSION %s [%s]: field %S missing from NEW" section key field
        | Some new_v -> (
            t.compared <- t.compared + 1;
            match old_v, new_v, classify field with
            | Arr old_rows, Arr new_rows, _ ->
                (* nested row table, e.g. parallel_scaling .runs *)
                compare_tables t ~strict ~tol ~subset
                  ~section:(section ^ "." ^ field) old_rows new_rows
            | Null, Null, _ -> ()
            | _, _, Exact ->
                let eq =
                  match old_v, new_v with
                  | Num a, Num b -> a = b
                  | Bool a, Bool b -> a = b
                  | Str a, Str b -> a = b
                  | _ -> false
                in
                if not eq then begin
                  t.regressions <- t.regressions + 1;
                  say "REGRESSION %s [%s]: %s %s -> %s (must be equal)" section
                    key field (fstr old_v) (fstr new_v)
                end
            | Num a, Num b, Guarded ->
                let pct = breach_pct ~old_v:a ~new_v:b ~better_high:false in
                if pct > tol then
                  if subset then begin
                    (* cross-mode: amortization over different run counts *)
                    t.advisories <- t.advisories + 1;
                    say "advisory   %s [%s]: %s %s -> %s (+%.1f%%, cross-mode)"
                      section key field (fstr old_v) (fstr new_v) pct
                  end
                  else begin
                    t.regressions <- t.regressions + 1;
                    say "REGRESSION %s [%s]: %s %s -> %s (+%.1f%% > %.0f%%)"
                      section key field (fstr old_v) (fstr new_v) pct tol
                  end
            | Num a, Num b, Timing ->
                let pct =
                  breach_pct ~old_v:a ~new_v:b
                    ~better_high:(higher_is_better field)
                in
                if pct > tol then
                  if strict then begin
                    t.regressions <- t.regressions + 1;
                    say "REGRESSION %s [%s]: %s %s -> %s (%.1f%% worse, strict)"
                      section key field (fstr old_v) (fstr new_v) pct
                  end
                  else begin
                    t.advisories <- t.advisories + 1;
                    say "advisory   %s [%s]: %s %s -> %s (%.1f%% worse)" section
                      key field (fstr old_v) (fstr new_v) pct
                  end
            | _, _, (Guarded | Timing) ->
                (* null <-> number flips on noisy metrics, bool timing flags *)
                if old_v <> new_v then begin
                  t.notes <- t.notes + 1;
                  say "note       %s [%s]: %s %s -> %s" section key field
                    (fstr old_v) (fstr new_v)
                end
            | _, _, Identity -> ()))
    old_fields;
  List.iter
    (fun (field, _) ->
      if classify field <> Identity && List.assoc_opt field old_fields = None
      then begin
        t.notes <- t.notes + 1;
        say "note       %s [%s]: new field %S (not in baseline)" section key
          field
      end)
    new_fields

and compare_tables t ~strict ~tol ~subset ~section old_rows new_rows =
  let say fmt = Format.printf ("    " ^^ fmt ^^ "@.") in
  let fields = function Obj f -> f | _ -> [] in
  let new_keyed = List.map (fun r -> row_key (fields r), r) new_rows in
  List.iter
    (fun old_row ->
      let key = row_key (fields old_row) in
      match List.assoc_opt key new_keyed with
      | Some new_row ->
          compare_rows t ~strict ~tol ~subset ~section ~key (fields old_row)
            (fields new_row)
      | None ->
          if subset then begin
            t.notes <- t.notes + 1;
            say "note       %s [%s]: not measured by NEW's mode" section key
          end
          else if timing_only_section section then begin
            t.advisories <- t.advisories + 1;
            say "advisory   %s [%s]: row missing from NEW" section key
          end
          else begin
            t.regressions <- t.regressions + 1;
            say "REGRESSION %s [%s]: row missing from NEW" section key
          end)
    old_rows;
  let old_keys = List.map (fun r -> row_key (fields r)) old_rows in
  List.iter
    (fun (key, _) ->
      if not (List.mem key old_keys) then begin
        t.notes <- t.notes + 1;
        say "note       %s [%s]: new row (not in baseline)" section key
      end)
    new_keyed

(* ------------------------------------------------------------------ run *)

let scalar obj k =
  match obj with
  | Obj fields -> ( match List.assoc_opt k fields with Some v -> fstr v | None -> "?")
  | _ -> "?"

let run ~old_path ~new_path ~tol ~strict =
  match
    let old_j = load old_path and new_j = load new_path in
    Format.printf "benchmark diff: %s -> %s@." old_path new_path;
    Format.printf "  OLD: schema %s, mode %s, rev %s (%s)@." (scalar old_j "schema")
      (scalar old_j "mode") (scalar old_j "git_rev") (scalar old_j "utc_date");
    Format.printf "  NEW: schema %s, mode %s, rev %s (%s)@." (scalar new_j "schema")
      (scalar new_j "mode") (scalar new_j "git_rev") (scalar new_j "utc_date");
    Format.printf "  tolerance %.0f%%, timing %s@." tol
      (if strict then "strict" else "advisory");
    let t = { compared = 0; regressions = 0; advisories = 0; notes = 0 } in
    let subset = scalar old_j "mode" <> scalar new_j "mode" in
    if subset then
      Format.printf
        "  modes differ: NEW is a declared subset — rows it does not \
         measure are notes@.";
    if scalar old_j "schema" <> scalar new_j "schema" then begin
      t.notes <- t.notes + 1;
      Format.printf "    note       schema changed: %s -> %s@."
        (scalar old_j "schema") (scalar new_j "schema")
    end;
    (match old_j, new_j with
    | Obj old_fields, Obj new_fields ->
        List.iter
          (fun (section, old_v) ->
            match old_v, List.assoc_opt section new_fields with
            | Arr old_rows, Some (Arr new_rows) ->
                compare_tables t ~strict ~tol ~subset ~section old_rows
                  new_rows
            | Arr old_rows, (Some _ | None) ->
                t.regressions <- t.regressions + 1;
                Format.printf
                  "    REGRESSION section %S (%d rows) missing from NEW@."
                  section (List.length old_rows)
            | _ -> () (* top-level scalars: informational, printed above *))
          old_fields;
        List.iter
          (fun (section, v) ->
            match v, List.assoc_opt section old_fields with
            | Arr _, None ->
                t.notes <- t.notes + 1;
                Format.printf "    note       new section %S (not in baseline)@."
                  section
            | _ -> ())
          new_fields
    | _ -> raise (Bad "top level is not an object"));
    Format.printf
      "  %d metrics compared: %d regression%s, %d advisor%s, %d note%s@."
      t.compared t.regressions
      (if t.regressions = 1 then "" else "s")
      t.advisories
      (if t.advisories = 1 then "y" else "ies")
      t.notes
      (if t.notes = 1 then "" else "s");
    if t.regressions > 0 then begin
      Format.printf "  verdict: REGRESSION@.";
      1
    end
    else begin
      Format.printf "  verdict: ok@.";
      0
    end
  with
  | code -> code
  | exception Bad msg ->
      Format.eprintf "compare: %s@." msg;
      2
