(* Benchmark / experiment harness.

   dune exec bench/main.exe                -- run everything
   dune exec bench/main.exe -- tables      -- per-theorem experiments (E1-E11, F1)
   dune exec bench/main.exe -- ablations   -- design-choice ablations (A1-A6, E12)
   dune exec bench/main.exe -- micro       -- bechamel microbenchmarks
                                              (writes BENCH_sim.json)
   dune exec bench/main.exe -- smoke       -- fast simulator-only benchmarks
                                              for CI (writes BENCH_sim.json)
   dune exec bench/main.exe -- chaos       -- hardened-vs-lossless differential
                                              smoke under a fixed fault plan
                                              (exits nonzero on divergence)
   dune exec bench/main.exe -- chaos-soak  -- crash-recovery soak: plan class
                                              x protocol x engine matrix at
                                              n=1024, recovered final states
                                              must equal lossless (exits
                                              nonzero on divergence; prints a
                                              post-mortem on a round-limit
                                              abort)
   dune exec bench/main.exe -- flatcheck   -- flat-vs-active engine differential
                                              smoke (exits nonzero on divergence)

   Options (after the mode):
     --jobs N, -j N   domains for the pooled sweeps and trial fan-outs
                      (default: recommended domain count, capped); results
                      are identical for every N — only wall time changes
     --out PATH       where micro/smoke write their JSON
                      (default BENCH_sim.json; CI uses a scratch path)
     --trace PATH     additionally write a telemetry trace of the profiled
                      workloads (E1 + A6) to PATH ('-' = stdout)
     --trace-format F trace rendering: console | jsonl | chrome
                      (default chrome) *)

let usage () =
  prerr_endline
    "usage: main.exe [all|tables|ablations|micro|smoke|chaos|chaos-soak|flatcheck] \
     [--jobs N] [--out PATH] [--trace PATH] \
     [--trace-format console|jsonl|chrome]";
  exit 2

let () =
  let argc = Array.length Sys.argv in
  let has_mode = argc > 1 && String.length Sys.argv.(1) > 0 && Sys.argv.(1).[0] <> '-' in
  let what = if has_mode then Sys.argv.(1) else "all" in
  let jobs = ref (Dsf_util.Pool.default_jobs ()) in
  let out = ref "BENCH_sim.json" in
  let trace = ref None in
  let trace_format = ref "chrome" in
  let i = ref (if has_mode then 2 else 1) in
  while !i < argc do
    (match Sys.argv.(!i) with
    | ("--jobs" | "-j") when !i + 1 < argc ->
        incr i;
        jobs := (try int_of_string Sys.argv.(!i) with Failure _ -> usage ())
    | "--out" when !i + 1 < argc ->
        incr i;
        out := Sys.argv.(!i)
    | "--trace" when !i + 1 < argc ->
        incr i;
        trace := Some Sys.argv.(!i)
    | "--trace-format" when !i + 1 < argc ->
        incr i;
        trace_format := Sys.argv.(!i)
    | _ -> usage ());
    incr i
  done;
  let jobs = max 1 !jobs and out = !out in
  let trace_sink =
    match !trace with
    | None -> None
    | Some path -> begin
        match Dsf_congest.Telemetry.sink_format_of_string !trace_format with
        | Ok format -> Some (format, path)
        | Error msg -> prerr_endline msg; usage ()
      end
  in
  Format.printf
    "Distributed Steiner Forest — experiment harness (Lenzen & Patt-Shamir, PODC 2014)@.";
  Format.printf "jobs=%d (recommended domains: %d)@." jobs
    (Domain.recommended_domain_count ());
  if what = "all" || what = "tables" then Tables.run_all ~jobs ();
  if what = "all" || what = "ablations" then Ablations.run_all ~jobs ();
  if what = "all" || what = "micro" then Micro.run ~jobs ~out ();
  if what = "smoke" then Micro.smoke ~jobs ~out ();
  if what = "all" || what = "chaos" then Chaos.run ();
  if what = "chaos-soak" then Chaos.soak ();
  if what = "flatcheck" then Micro.flat_check ();
  (match trace_sink with
  | Some (format, path) -> Micro.write_trace ~format path
  | None -> ());
  Format.printf "@.done.@."
