(* Benchmark / experiment harness.

   dune exec bench/main.exe                -- run everything
   dune exec bench/main.exe -- tables      -- per-theorem experiments (E1-E11, F1)
   dune exec bench/main.exe -- ablations   -- design-choice ablations (A1-A6, E12)
   dune exec bench/main.exe -- micro       -- bechamel microbenchmarks
                                              (writes BENCH_sim.json)
   dune exec bench/main.exe -- smoke       -- fast simulator-only benchmarks
                                              for CI (writes BENCH_sim.json)
   dune exec bench/main.exe -- chaos       -- hardened-vs-lossless differential
                                              smoke under a fixed fault plan
                                              (exits nonzero on divergence)
   dune exec bench/main.exe -- chaos-soak  -- crash-recovery soak: plan class
                                              x protocol x engine matrix at
                                              n=1024, recovered final states
                                              must equal lossless (exits
                                              nonzero on divergence; prints a
                                              post-mortem on a round-limit
                                              abort)
   dune exec bench/main.exe -- flatcheck   -- flat-vs-active engine differential
                                              smoke (exits nonzero on divergence)
   dune exec bench/main.exe -- compare OLD.json NEW.json
                                           -- diff two BENCH_sim.json files
                                              (rounds/s, words/round, phase
                                              profile) with a tolerance-based
                                              regression verdict (exits
                                              nonzero on regression)

   Options (after the mode):
     --jobs N, -j N   domains for the pooled sweeps and trial fan-outs
                      (default: recommended domain count, capped); results
                      are identical for every N — only wall time changes
     --out PATH       where micro/smoke write their JSON
                      (default BENCH_sim.json; CI uses a scratch path)
     --trace PATH     additionally write a telemetry trace of the profiled
                      workloads (E1 + A6) to PATH ('-' = stdout)
     --trace-format F trace rendering: console | jsonl | chrome
                      (default: inferred from the --trace extension —
                      .json = chrome, .jsonl = jsonl, else console)
   compare options:
     --tol PCT        tolerance (percent) for guarded metrics (default 25)
     --strict-timing  fail on timing regressions too (default: advisory) *)

let usage () =
  prerr_endline
    "usage: main.exe [all|tables|ablations|micro|smoke|chaos|chaos-soak|flatcheck] \
     [--jobs N] [--out PATH] [--trace PATH] \
     [--trace-format console|jsonl|chrome]\n\
    \       main.exe compare OLD.json NEW.json [--tol PCT] [--strict-timing]";
  exit 2

let infer_trace_format path =
  if Filename.check_suffix path ".json" then "chrome"
  else if Filename.check_suffix path ".jsonl" then "jsonl"
  else "console"

(* The compare mode has positional operands, which the generic option loop
   below rejects — dispatch it before entering that loop. *)
let compare_main () =
  let argc = Array.length Sys.argv in
  let old_path = ref None and new_path = ref None in
  let tol = ref 25.0 and strict = ref false in
  let i = ref 2 in
  while !i < argc do
    (match Sys.argv.(!i) with
    | "--tol" when !i + 1 < argc ->
        incr i;
        tol := (try float_of_string Sys.argv.(!i) with Failure _ -> usage ())
    | "--strict-timing" -> strict := true
    | s when String.length s > 0 && s.[0] = '-' -> usage ()
    | s when !old_path = None -> old_path := Some s
    | s when !new_path = None -> new_path := Some s
    | _ -> usage ());
    incr i
  done;
  match !old_path, !new_path with
  | Some o, Some n -> exit (Compare.run ~old_path:o ~new_path:n ~tol:!tol ~strict:!strict)
  | _ -> usage ()

let () =
  let argc = Array.length Sys.argv in
  let has_mode = argc > 1 && String.length Sys.argv.(1) > 0 && Sys.argv.(1).[0] <> '-' in
  let what = if has_mode then Sys.argv.(1) else "all" in
  if what = "compare" then compare_main ();
  let jobs = ref (Dsf_util.Pool.default_jobs ()) in
  let out = ref "BENCH_sim.json" in
  let trace = ref None in
  let trace_format = ref None in
  let i = ref (if has_mode then 2 else 1) in
  while !i < argc do
    (match Sys.argv.(!i) with
    | ("--jobs" | "-j") when !i + 1 < argc ->
        incr i;
        jobs := (try int_of_string Sys.argv.(!i) with Failure _ -> usage ())
    | "--out" when !i + 1 < argc ->
        incr i;
        out := Sys.argv.(!i)
    | "--trace" when !i + 1 < argc ->
        incr i;
        trace := Some Sys.argv.(!i)
    | "--trace-format" when !i + 1 < argc ->
        incr i;
        trace_format := Some Sys.argv.(!i)
    | _ -> usage ());
    incr i
  done;
  let jobs = max 1 !jobs and out = !out in
  let trace_sink =
    match !trace with
    | None -> None
    | Some path -> begin
        let fmt =
          match !trace_format with
          | Some f -> f
          | None -> infer_trace_format path
        in
        match Dsf_congest.Telemetry.sink_format_of_string fmt with
        | Ok format -> Some (format, path)
        | Error msg -> prerr_endline msg; usage ()
      end
  in
  Format.printf
    "Distributed Steiner Forest — experiment harness (Lenzen & Patt-Shamir, PODC 2014)@.";
  Format.printf "jobs=%d (recommended domains: %d)@." jobs
    (Domain.recommended_domain_count ());
  if what = "all" || what = "tables" then Tables.run_all ~jobs ();
  if what = "all" || what = "ablations" then Ablations.run_all ~jobs ();
  if what = "all" || what = "micro" then Micro.run ~jobs ~out ();
  if what = "smoke" then Micro.smoke ~jobs ~out ();
  if what = "all" || what = "chaos" then Chaos.run ();
  if what = "chaos-soak" then Chaos.soak ();
  if what = "flatcheck" then Micro.flat_check ();
  (match trace_sink with
  | Some (format, path) -> Micro.write_trace ~format path
  | None -> ());
  Format.printf "@.done.@."
