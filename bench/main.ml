(* Benchmark / experiment harness.

   dune exec bench/main.exe                -- run everything
   dune exec bench/main.exe -- tables      -- per-theorem experiments (E1-E11, F1)
   dune exec bench/main.exe -- ablations   -- design-choice ablations (A1-A4, E12)
   dune exec bench/main.exe -- micro       -- bechamel microbenchmarks
                                              (writes BENCH_sim.json)
   dune exec bench/main.exe -- smoke       -- fast simulator-only benchmarks
                                              for CI (writes BENCH_sim.json) *)

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  Format.printf
    "Distributed Steiner Forest — experiment harness (Lenzen & Patt-Shamir, PODC 2014)@.";
  if what = "all" || what = "tables" then Tables.run_all ();
  if what = "all" || what = "ablations" then Ablations.run_all ();
  if what = "all" || what = "micro" then Micro.run ();
  if what = "smoke" then Micro.smoke ();
  Format.printf "@.done.@."
