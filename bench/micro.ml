(* Bechamel wall-clock microbenchmarks: one Test.make per core algorithm
   and substrate, all on a shared medium instance.  These measure the
   *simulator's* execution time (the paper's own metric is rounds, covered
   by the experiment tables in Tables).

   Two layers:
   - [run] (the `-- micro` mode): the full suite, plus head-to-head
     active-set vs reference-engine runs of the sparse-activity protocols.
   - [smoke] (the `-- smoke` mode): only the engine head-to-heads at a tiny
     measurement quota — fast enough for every-PR CI (bin/ci.sh).

   Both modes write BENCH_sim.json (schema dsf-bench-sim/8: ns/run, minor GC
   words/run, rounds/s, the active/reference/flat speedups, plus
   provenance — git_rev, utc_date, jobs, cores — a parallel_scaling
   section timing the pooled fan-outs at jobs = 1 / 2 / max (each row
   carrying the detected core count and a "saturated" flag on points
   asking for more domains than cores), a flat_engine section with every
   native flat port's headline numbers (rounds/s and minor words/round on
   paths at n = 256 / 4096 / 16384, jobs = 1 / 2 / 4, vs the active
   engine — what bin/ci.sh's per-workload GC gate reads), a flat_e2e
   section with end-to-end flat det_dsf solves on path / random / gadget
   instances at the same sizes, a fault_overhead section
   tabulating the round/message/retransmission cost of Fault.harden at
   increasing drop probability, a fault_recovery section tabulating the
   recovery rounds / retransmissions / checkpoint bits / wall overhead of
   checkpointed crash recovery at increasing crash-window counts on the E1
   and A6 workloads (fault-free baselines inline), and a phase_profile section with the
   telemetry span tree of the E1 and A6 workloads — per-phase rounds,
   messages and bits under an injected constant clock, and a
   recorder_overhead section tabulating the flight recorder's event count,
   log size and wall-clock cost on flat det_dsf solves at n = 1024) so later PRs can
   diff simulator performance against this one.  Each parallel_scaling workload carries a
   deterministic "check" value that must not depend on jobs, and every
   fault_overhead field is PRF-deterministic; bin/ci.sh diffs the
   non-timing fields of a --jobs 1 and a --jobs 2 run to enforce that. *)

open Bechamel
open Toolkit

module Gen = Dsf_graph.Gen
module Inst = Dsf_graph.Instance
module Sim = Dsf_congest.Sim

let shared_instance =
  lazy
    (let r = Dsf_util.Rng.create 42 in
     let g = Gen.random_connected r ~n:40 ~extra_edges:30 ~max_w:10 in
     let labels = Gen.random_labels r ~n:40 ~t:10 ~k:3 in
     Inst.make_ic g labels)

let small_instance =
  lazy
    (let r = Dsf_util.Rng.create 43 in
     let g = Gen.random_connected r ~n:16 ~extra_edges:12 ~max_w:8 in
     let labels = Gen.random_labels r ~n:16 ~t:6 ~k:2 in
     Inst.make_ic g labels)

(* --------------------------------------------- simulator engine pairs *)

let shared_graph = lazy (Lazy.force shared_instance).Inst.graph
let path256 = lazy (Gen.path 256)

let shared_tree =
  lazy (fst (Dsf_congest.Bfs.build (Lazy.force shared_graph) ~root:0))

(* Engine-pair benchmarks drive whole entry points (Bellman_ford.sssp,
   Det_dsf.run, ...) through both engines; like the differential suite,
   that is only possible via the global engine shim — the per-run
   [?reference] parameter is not threaded through those APIs on purpose.
   Single-domain: the bench harness never runs this inside a pool task. *)
let in_reference f =
  Sim.use_reference_engine := true;
  Fun.protect ~finally:(fun () -> Sim.use_reference_engine := false) f
[@@lint.allow "sim-globals"]

let in_flat f =
  Sim.use_flat_engine := true;
  Fun.protect ~finally:(fun () -> Sim.use_flat_engine := false) f
[@@lint.allow "sim-globals"]

(* Each case is a sparse-activity CONGEST workload returning its stats; it
   is benchmarked once on the active-set engine and once on the kept seed
   loop.  The acceptance metric of the active-set scheduler PR is the
   speedup column derived from these pairs. *)
let sim_cases : (string * (unit -> Sim.stats)) list =
  [
    ( "bf random n=40",
      fun () ->
        snd (Dsf_congest.Bellman_ford.sssp (Lazy.force shared_graph) ~src:0)
    );
    ( "bf path n=256",
      fun () -> snd (Dsf_congest.Bellman_ford.sssp (Lazy.force path256) ~src:0)
    );
    ( "upcast n=40",
      fun () ->
        snd
          (Dsf_congest.Tree_ops.upcast (Lazy.force shared_graph)
             ~tree:(Lazy.force shared_tree)
             ~items:(fun v -> [ v; v + 100; v + 200 ])
             ~bits:(fun x -> Dsf_util.Bitsize.int_bits (max 1 x))) );
    ( "filtered_upcast n=40",
      fun () ->
        let g = Lazy.force shared_graph in
        let items v =
          Array.to_list (Dsf_graph.Graph.edges g)
          |> List.filter_map (fun (e : Dsf_graph.Graph.edge) ->
                 if min e.u e.v = v then
                   Some { Dsf_congest.Pipeline.key = (e.w, e.id); a = e.u; b = e.v }
                 else None)
        in
        snd
          (Dsf_congest.Pipeline.filtered_upcast g
             ~tree:(Lazy.force shared_tree) ~vn:40 ~pre:[] ~items ~cmp:compare
             ~bits:(fun _ -> 30)) );
  ]

let sim_tests =
  List.concat_map
    (fun (nm, thunk) ->
      [
        Test.make
          ~name:(Printf.sprintf "sim/%s [active]" nm)
          (Staged.stage (fun () -> ignore (thunk ())));
        Test.make
          ~name:(Printf.sprintf "sim/%s [reference]" nm)
          (Staged.stage (fun () -> ignore (in_reference thunk)));
        Test.make
          ~name:(Printf.sprintf "sim/%s [flat]" nm)
          (Staged.stage (fun () -> ignore (in_flat thunk)));
      ])
    sim_cases

(* Rounds per run, for the rounds/s column: one untimed execution per case
   (both engines execute the same schedule — test_sim_equiv proves it). *)
let sim_rounds =
  lazy (List.map (fun (nm, thunk) -> nm, (thunk ()).Sim.rounds) sim_cases)

let rounds_of name =
  List.find_map
    (fun (nm, rounds) ->
      if name = Printf.sprintf "sim/%s [active]" nm
         || name = Printf.sprintf "sim/%s [reference]" nm
         || name = Printf.sprintf "sim/%s [flat]" nm
      then Some rounds
      else None)
    (Lazy.force sim_rounds)

(* ------------------------------------------------------- algorithm suite *)

let tests =
  [
    Test.make ~name:"moat (Alg 1, n=40)"
      (Staged.stage (fun () ->
           ignore (Dsf_core.Moat.run (Lazy.force shared_instance))));
    Test.make ~name:"moat_rounded (Alg 2, eps=1/2, n=40)"
      (Staged.stage (fun () ->
           ignore
             (Dsf_core.Moat_rounded.run ~eps_num:1 ~eps_den:2
                (Lazy.force shared_instance))));
    Test.make ~name:"det_dsf (Thm 4.17, n=40)"
      (Staged.stage (fun () ->
           ignore (Dsf_core.Det_dsf.run (Lazy.force shared_instance))));
    Test.make ~name:"det_sublinear (Cor 4.21, n=40)"
      (Staged.stage (fun () ->
           ignore
             (Dsf_core.Det_sublinear.run ~eps_num:1 ~eps_den:2
                (Lazy.force shared_instance))));
    Test.make ~name:"rand_dsf (Thm 5.2, n=40, 1 rep)"
      (Staged.stage (fun () ->
           ignore
             (Dsf_core.Rand_dsf.run ~repetitions:1
                ~rng:(Dsf_util.Rng.create 7)
                (Lazy.force shared_instance))));
    Test.make ~name:"khan baseline (n=40, 1 rep)"
      (Staged.stage (fun () ->
           ignore
             (Dsf_baseline.Khan_etal.run ~repetitions:1
                ~rng:(Dsf_util.Rng.create 8)
                (Lazy.force shared_instance))));
    Test.make ~name:"LE lists (n=40)"
      (Staged.stage (fun () ->
           ignore
             (Dsf_embed.Le_list.build (Dsf_util.Rng.create 9)
                (Lazy.force shared_instance).Inst.graph)));
    Test.make ~name:"exact DP (n=16, t=6)"
      (Staged.stage (fun () ->
           ignore (Dsf_graph.Exact.steiner_forest_weight (Lazy.force small_instance))));
    Test.make ~name:"distributed MST (n=40)"
      (Staged.stage (fun () ->
           ignore
             (Dsf_baseline.Mst_distributed.run
                (Lazy.force shared_instance).Inst.graph)));
  ]

(* Size-indexed series: how the simulator's wall-clock cost scales with the
   network size (args = n). *)
let indexed_instance =
  let cache = Hashtbl.create 4 in
  fun n ->
    match Hashtbl.find_opt cache n with
    | Some inst -> inst
    | None ->
        let r = Dsf_util.Rng.create (1000 + n) in
        let g = Gen.random_connected r ~n ~extra_edges:n ~max_w:10 in
        let labels = Gen.random_labels r ~n ~t:8 ~k:2 in
        let inst = Inst.make_ic g labels in
        Hashtbl.replace cache n inst;
        inst

let indexed_tests =
  [
    Test.make_indexed ~name:"det_dsf @ n" ~args:[ 20; 40; 80 ] (fun n ->
        Staged.stage (fun () -> ignore (Dsf_core.Det_dsf.run (indexed_instance n))));
    Test.make_indexed ~name:"bellman_ford @ n" ~args:[ 20; 40; 80 ] (fun n ->
        Staged.stage (fun () ->
            ignore
              (Dsf_congest.Bellman_ford.sssp (indexed_instance n).Inst.graph
                 ~src:0)));
    Test.make_indexed ~name:"pipeline MST @ n" ~args:[ 20; 40; 80 ] (fun n ->
        Staged.stage (fun () ->
            ignore (Dsf_baseline.Mst_distributed.run (indexed_instance n).Inst.graph)));
  ]

(* ------------------------------------------------------------ measurement *)

type row = {
  name : string;
  ns_per_run : float;
  r2 : float;
  minor_words : float;
  rounds_per_run : int option;
}

let estimate raw witness =
  let ols =
    Analyze.OLS.ols ~bootstrap:0 ~r_square:true
      ~responder:(Measure.label witness)
      ~predictors:[| Measure.run |]
      raw.Benchmark.lr
  in
  let v =
    match Analyze.OLS.estimates ols with Some (x :: _) -> x | _ -> nan
  in
  v, Option.value ~default:nan (Analyze.OLS.r_square ols)

let measure ~quota tests =
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second quota) () in
  List.concat_map
    (fun test ->
      List.map
        (fun elt ->
          let raw =
            Benchmark.run cfg
              [ Instance.monotonic_clock; Instance.minor_allocated ]
              elt
          in
          let ns, r2 = estimate raw Instance.monotonic_clock in
          let words, _ = estimate raw Instance.minor_allocated in
          let name = Test.Elt.name elt in
          { name; ns_per_run = ns; r2; minor_words = words;
            rounds_per_run = rounds_of name })
        (Test.elements test))
    tests

let print_rows rows =
  Format.printf "%-42s %14s %10s %12s %12s@." "benchmark" "ns/run" "r^2"
    "words/run" "rounds/s";
  List.iter
    (fun r ->
      let rps =
        match r.rounds_per_run with
        | Some rounds when r.ns_per_run > 0. ->
            Printf.sprintf "%.3e" (float_of_int rounds *. 1e9 /. r.ns_per_run)
        | _ -> "-"
      in
      Format.printf "%-42s %14.0f %10.3f %12.0f %12s@." r.name r.ns_per_run
        r.r2 r.minor_words rps)
    rows

(* Active/reference/flat triples -> measured speedups. *)
type speedup = {
  workload : string;
  active_ns : float;
  reference_ns : float;
  flat_ns : float;
}

let speedups rows =
  List.filter_map
    (fun (nm, _) ->
      let find suffix =
        List.find_opt
          (fun r -> r.name = Printf.sprintf "sim/%s [%s]" nm suffix)
          rows
      in
      match find "active", find "reference", find "flat" with
      | Some a, Some r, Some f ->
          Some { workload = nm; active_ns = a.ns_per_run;
                 reference_ns = r.ns_per_run; flat_ns = f.ns_per_run }
      | _ -> None)
    sim_cases

let print_speedups sp =
  Format.printf "@.%-42s %14s %14s %12s %9s %9s@." "engine speedups"
    "active ns" "reference ns" "flat ns" "act x" "flat x";
  List.iter
    (fun s ->
      Format.printf "%-42s %14.0f %14.0f %12.0f %9.2f %9.2f@." s.workload
        s.active_ns s.reference_ns s.flat_ns
        (s.reference_ns /. s.active_ns)
        (s.active_ns /. s.flat_ns))
    sp

(* ------------------------------------------------------- parallel scaling *)

(* Wall-clock the pooled fan-out sites at jobs = 1 / 2 / max.  Every
   workload returns a deterministic check value (a weight or round sum);
   results must be identical at every jobs, so a mismatch aborts the
   benchmark — this is the runtime teeth behind the jobs-invariance suite
   in test/test_parallel.ml. *)

let scaling_jmax = max 4 (Dsf_util.Pool.default_jobs ())
let scaling_points = List.sort_uniq compare [ 1; 2; scaling_jmax ]

let scaling_workloads : (string * (jobs:int -> int)) list =
  [
    (* Rand_dsf's repetition fan-out (the ?jobs plumbed through Solver). *)
    ( "rand_dsf reps",
      fun ~jobs ->
        let r =
          Dsf_core.Rand_dsf.run ~repetitions:8 ~jobs
            ~rng:(Dsf_util.Rng.create 7)
            (Lazy.force shared_instance)
        in
        r.Dsf_core.Rand_dsf.weight );
    (* A Tables-style independent seed sweep, pooled like E1/E14. *)
    ( "tables sweep",
      fun ~jobs ->
        let weights =
          Dsf_util.Pool.map_chunked ~jobs
            (fun seed ->
              let r = Dsf_util.Rng.create seed in
              let g = Gen.random_connected r ~n:40 ~extra_edges:30 ~max_w:10 in
              let labels = Gen.random_labels r ~n:40 ~t:10 ~k:3 in
              (Dsf_core.Det_dsf.run (Inst.make_ic g labels))
                .Dsf_core.Det_dsf.weight)
            (Array.init 8 (fun i -> 100 + i))
        in
        Array.fold_left ( + ) 0 weights );
    (* The CI smoke workloads themselves, one pool task per case. *)
    ( "smoke",
      fun ~jobs ->
        let rounds =
          Dsf_util.Pool.map_chunked ~jobs
            (fun (_, thunk) -> (thunk ()).Sim.rounds)
            (Array.of_list sim_cases)
        in
        Array.fold_left ( + ) 0 rounds );
  ]

type scaling = { workload : string; check : int; runs : (int * float) list }

let measure_scaling () =
  (* Force every shared lazy before any multi-domain run: Lazy.force is not
     safe to race from two domains. *)
  ignore (Lazy.force shared_instance);
  ignore (Lazy.force shared_graph);
  ignore (Lazy.force shared_tree);
  ignore (Lazy.force path256);
  List.map
    (fun (workload, work) ->
      let check = ref None in
      let runs =
        List.map
          (fun jobs ->
            let best = ref infinity in
            for _ = 1 to 3 do
              let t0 = Unix.gettimeofday () in
              let c = work ~jobs in
              let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
              (match !check with
              | None -> check := Some c
              | Some c0 ->
                  if c <> c0 then
                    failwith
                      (Printf.sprintf
                         "parallel_scaling: %S is jobs-dependent (%d <> %d at \
                          jobs=%d)"
                         workload c c0 jobs));
              if ns < !best then best := ns
            done;
            jobs, !best)
          scaling_points
      in
      { workload; check = Option.get !check; runs })
    scaling_workloads

(* A scaling point asking for more domains than the machine has cores
   cannot speed up further — annotate instead of letting a flat curve
   read as a regression (CI containers are often 1-2 cores). *)
let detected_cores () = Domain.recommended_domain_count ()
let saturated ~jobs = jobs > detected_cores ()

let print_scaling scaling =
  Format.printf "@.%-42s %6s %14s %10s   (cores: %d)@." "parallel scaling"
    "jobs" "wall ns" "x vs j=1" (detected_cores ());
  List.iter
    (fun s ->
      let base = match s.runs with (_, ns) :: _ -> ns | [] -> nan in
      List.iter
        (fun (jobs, ns) ->
          Format.printf "%-42s %6d %14.0f %10.2f%s@." s.workload jobs ns
            (base /. ns)
            (if saturated ~jobs then "  [saturated]" else ""))
        s.runs)
    scaling

(* ------------------------------------------------------------- flat engine *)

(* Whole-run wall clock + coordinator-domain GC for every native
   flat-engine port, each on a path — the highest-diameter,
   sparsest-activity workload, i.e. the active scheduler's worst case —
   against the active engine running the classic protocol on the same
   graph.  Sizes and jobs are fixed so later PRs diff like against like;
   the jobs=1 minor-words column at n=256 of each workload is what
   bin/ci.sh's per-workload GC gate reads.  Workloads whose *classic*
   protocol steps every node every round (BFS's not-done sweep, the
   pipeline's wake hook, token flood's wake=None sweep — O(n^2) total on
   a path) get active baselines only up to a per-workload cap: capped
   rows carry speedup_vs_active = null and the cap is printed — never
   silent.  Workloads whose classic leg already rides the sparse active
   list (Bellman-Ford, region BF, upcast) are measured at every size and
   honestly show constant-factor speedups only. *)

type flat_row = {
  fl_workload : string;
  fl_n : int;
  fl_jobs : int;
  fl_rounds : int;
  fl_wall_ns : float;
  fl_rps : float;
  fl_words_per_round : float;
  fl_speedup : float;
      (* vs the active engine on the classic protocol; nan (-> JSON null)
         where the baseline is capped *)
}

let flat_sizes = [ 256; 4096; 16384 ]
let flat_smoke_sizes = [ 256; 4096 ]
let flat_jobs_points = [ 1; 2; 4 ]

(* Shared per-size fixtures, built once outside any timed region (the CSR
   view is a one-time per-graph cost every engine shares).  The tree
   fixtures are built by the *native* flat BFS: the classic build is
   itself the O(n^2) baseline this section measures. *)
let flat_graph =
  let cache = Hashtbl.create 4 in
  fun n ->
    match Hashtbl.find_opt cache n with
    | Some g -> g
    | None ->
        let g = Gen.path n in
        ignore (Dsf_graph.Graph.csr g);
        Hashtbl.replace cache n g;
        g

let flat_tree =
  let cache = Hashtbl.create 4 in
  fun n ->
    match Hashtbl.find_opt cache n with
    | Some t -> t
    | None ->
        let t =
          fst (Dsf_congest.Bfs.build (flat_graph n) ~root:0 ~flat:true)
        in
        Hashtbl.replace cache n t;
        t

(* One entry per ported primitive: name, active-baseline size cap, and a
   per-n constructor returning the active thunk and the flat runner.  The
   tree workloads give every 16th node one item, so the pipelined message
   volume stays ~n^2/16 and the rows measure scheduling, not payload
   shuffling. *)
let flat_workloads :
    (string * int * (int -> (unit -> Sim.stats) * (int -> Sim.stats))) list =
  let item_bits x = Dsf_util.Bitsize.int_bits (max 1 x) in
  [
    ( "bfs path",
      max_int,
      fun n ->
        let g = flat_graph n in
        ( (fun () -> snd (Sim.run g (Dsf_congest.Bfs.protocol ~root:0))),
          fun jobs ->
            snd
              (Sim.run_flat ~jobs g
                 (Dsf_congest.Bfs.flat_protocol ~n:(Dsf_graph.Graph.n g)
                    ~root:0))
        ) );
    ( "bellman_ford path",
      max_int,
      fun n ->
        let g = flat_graph n in
        let sources = [ 0, 0; n - 1, 0 ] in
        ( (fun () ->
            snd (Dsf_congest.Bellman_ford.run ~flat:false g ~sources)),
          fun jobs ->
            snd (Dsf_congest.Bellman_ford.run ~flat:true ~jobs g ~sources) )
    );
    ( "region_bf path",
      max_int,
      fun n ->
        let g = flat_graph n in
        let sources =
          [ 0, Dsf_core.Frac.zero, 0; n - 1, Dsf_core.Frac.zero, n - 1 ]
        in
        let frozen = Array.make n false in
        ( (fun () ->
            snd (Dsf_core.Region_bf.run ~flat:false g ~sources ~frozen)),
          fun jobs ->
            snd (Dsf_core.Region_bf.run ~flat:true ~jobs g ~sources ~frozen)
        ) );
    ( "upcast path",
      max_int,
      fun n ->
        let g = flat_graph n and tree = flat_tree n in
        let items v = if v > 0 && v mod 16 = 0 then [ v ] else [] in
        let run flat jobs =
          snd (Dsf_congest.Tree_ops.upcast ~flat ?jobs g ~tree ~items
                 ~bits:item_bits)
        in
        ((fun () -> run false None), fun jobs -> run true (Some jobs)) );
    ( "filtered_upcast path",
      4096,
      fun n ->
        let g = flat_graph n and tree = flat_tree n in
        let items v =
          if v > 0 && v mod 16 = 0 then
            [ { Dsf_congest.Pipeline.key = (1, v); a = v - 1; b = v } ]
          else []
        in
        let run flat jobs =
          snd
            (Dsf_congest.Pipeline.filtered_upcast ~flat ?jobs g ~tree ~vn:n
               ~pre:[] ~items ~cmp:compare ~bits:(fun _ -> 30))
        in
        ((fun () -> run false None), fun jobs -> run true (Some jobs)) );
    ( "token_flood path",
      4096,
      fun n ->
        let g = flat_graph n in
        let parent = Array.init n (fun v -> v - 1) in
        let seeds = Array.make n false in
        seeds.(n - 1) <- true;
        ( (fun () ->
            snd (Dsf_core.Select.token_flood ~flat:false g ~parent ~seeds)),
          fun jobs ->
            snd (Dsf_core.Select.token_flood ~flat:true ~jobs g ~parent ~seeds)
        ) );
    ( "exchange path",
      max_int,
      fun n ->
        let g = flat_graph n in
        ( (fun () ->
            Dsf_congest.Exchange.all_neighbors ~flat:false g ~payload_bits:9),
          fun jobs ->
            Dsf_congest.Exchange.all_neighbors ~flat:true ~jobs g
              ~payload_bits:9 ) );
  ]

let measure_flat ~sizes () =
  List.concat_map
    (fun (workload, active_cap, make) ->
      List.concat_map
        (fun n ->
          let active, flat = make n in
          let active_ns =
            if n <= active_cap then begin
              let t0 = Unix.gettimeofday () in
              ignore (active ());
              (Unix.gettimeofday () -. t0) *. 1e9
            end
            else begin
              Format.printf
                "flat_engine: active baseline for %S skipped at n=%d (the \
                 classic protocol sweeps every node every round; capped at \
                 n=%d)@."
                workload n active_cap;
              nan
            end
          in
          (* Seconds-long flat runs at the top size are stable enough for a
             single repetition; the small sizes keep best-of-3. *)
          let reps = if n >= 16384 then 1 else 3 in
          List.map
            (fun jobs ->
              let best = ref infinity
              and words = ref infinity
              and rounds = ref 0 in
              for _ = 1 to reps do
                let w0 = Gc.minor_words () in
                let t0 = Unix.gettimeofday () in
                let stats = flat jobs in
                let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
                let w = Gc.minor_words () -. w0 in
                rounds := stats.Sim.rounds;
                if ns < !best then best := ns;
                if w < !words then words := w
              done;
              {
                fl_workload = workload;
                fl_n = n;
                fl_jobs = jobs;
                fl_rounds = !rounds;
                fl_wall_ns = !best;
                fl_rps = float_of_int !rounds *. 1e9 /. !best;
                fl_words_per_round = !words /. float_of_int (max 1 !rounds);
                fl_speedup = active_ns /. !best;
              })
            flat_jobs_points)
        sizes)
    flat_workloads

let print_flat rows =
  Format.printf "@.%-28s %8s %6s %8s %14s %12s %14s %10s@." "flat engine"
    "n" "jobs" "rounds" "wall ns" "rounds/s" "words/round" "x vs act";
  List.iter
    (fun f ->
      Format.printf "%-28s %8d %6d %8d %14.0f %12.3e %14.1f %10.1f@."
        f.fl_workload f.fl_n f.fl_jobs f.fl_rounds f.fl_wall_ns f.fl_rps
        f.fl_words_per_round f.fl_speedup)
    rows

(* --------------------------------------------------------------- flat e2e *)

(* End-to-end Det_dsf solves with every simulated subroutine on the flat
   engine (native ports where they exist, the boxed adapter elsewhere) —
   the demonstration that the whole Theorem 4.17 emulation runs at
   n >= 10^4.  Three instance families: the path (wavefront-dominated
   worst case), a random connected graph (shallow), and the scaled
   Figure-1 set-disjointness gadget.  `-- micro` measures the
   active-engine baseline at every size (the classic path solve costs
   about a minute at n = 16384 — the pipelined legs sweep every node
   every round); `-- smoke` caps it at n <= 256 to stay inside the CI
   budget.  Rows past the cap carry speedup_vs_active = null, and the cap
   is printed, never silent.  [e2_rounds] and [e2_weight] are
   deterministic and jobs-invariant (the differential suite proves the
   flat solve bit-identical), so bin/ci.sh's jobs-diff covers them. *)

type e2e_row = {
  e2_workload : string;
  e2_n : int;
  e2_jobs : int;
  e2_rounds : int;  (* ledger-simulated rounds of the whole solve *)
  e2_weight : int;  (* deterministic check value *)
  e2_wall_ns : float;
  e2_rps : float;
  e2_words_per_round : float;
  e2_speedup : float;
}

let e2e_instance family n =
  match family with
  | `Path ->
      let r = Dsf_util.Rng.create (2000 + n) in
      Inst.make_ic (flat_graph n) (Gen.random_labels r ~n ~t:16 ~k:4)
  | `Random ->
      let r = Dsf_util.Rng.create (3000 + n) in
      let g = Gen.random_connected r ~n ~extra_edges:n ~max_w:10 in
      Inst.make_ic g (Gen.random_labels r ~n ~t:16 ~k:4)
  | `Gadget ->
      (* ic_gadget builds n = 2*universe + 2 nodes, so this hits n exactly
         for the even sizes used here. *)
      let universe = (n - 2) / 2 in
      let r = Dsf_util.Rng.create (4000 + n) in
      let a, b =
        Dsf_lower_bound.Gadgets.random_sets r ~universe ~density:0.5
          ~force_intersect:true
      in
      (Dsf_lower_bound.Gadgets.ic_gadget ~universe ~a ~b)
        .Dsf_lower_bound.Gadgets.ic

let measure_e2e ~sizes ~active_max_n () =
  List.concat_map
    (fun (name, fam) ->
      List.map
        (fun n ->
          let inst = e2e_instance fam n in
          ignore (Dsf_graph.Graph.csr inst.Inst.graph);
          let active_ns =
            if n <= active_max_n then begin
              let t0 = Unix.gettimeofday () in
              ignore (Dsf_core.Det_dsf.run ~flat:false inst);
              (Unix.gettimeofday () -. t0) *. 1e9
            end
            else begin
              Format.printf
                "flat_e2e: active baseline for %S skipped at n=%d (classic \
                 solve exceeds the bench budget past n=%d)@."
                name n active_max_n;
              nan
            end
          in
          let w0 = Gc.minor_words () in
          let t0 = Unix.gettimeofday () in
          let r = Dsf_core.Det_dsf.run ~flat:true inst in
          let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
          let words = Gc.minor_words () -. w0 in
          let rounds =
            Dsf_congest.Ledger.simulated r.Dsf_core.Det_dsf.ledger
          in
          {
            e2_workload = name;
            e2_n = n;
            e2_jobs = 1;
            e2_rounds = rounds;
            e2_weight = r.Dsf_core.Det_dsf.weight;
            e2_wall_ns = ns;
            e2_rps = float_of_int rounds *. 1e9 /. ns;
            e2_words_per_round = words /. float_of_int (max 1 rounds);
            e2_speedup = active_ns /. ns;
          })
        sizes)
    [ "det_dsf path", `Path; "det_dsf random", `Random;
      "det_dsf gadget", `Gadget ]

let print_e2e rows =
  Format.printf "@.%-28s %8s %6s %10s %10s %14s %12s %14s %10s@."
    "flat e2e (det_dsf)" "n" "jobs" "rounds" "weight" "wall ns" "rounds/s"
    "words/round" "x vs act";
  List.iter
    (fun e ->
      Format.printf "%-28s %8d %6d %10d %10d %14.0f %12.3e %14.1f %10.1f@."
        e.e2_workload e.e2_n e.e2_jobs e.e2_rounds e.e2_weight e.e2_wall_ns
        e.e2_rps e.e2_words_per_round e.e2_speedup)
    rows

(* ----------------------------------------------------- recorder overhead *)

(* Flight-recorder cost on representative flat det_dsf solves: the same
   instance solved bare and with a recorder attached through telemetry —
   the exact path `dsf_cli solve --record` takes.  [ro_events],
   [ro_log_bytes] and [ro_rounds] are deterministic (the recorder is
   created at ~now:0 so the serialized header does not embed wall time);
   the wall columns are timing-class noise that bench compare keeps in
   its advisory lane.  The design target is single-digit-percent
   overhead: every event append is a handful of int stores into a
   per-domain buffer, and the barrier merge is O(events). *)

type recorder_row = {
  ro_workload : string;
  ro_n : int;
  ro_rounds : int;
  ro_events : int;
  ro_log_bytes : int;
  ro_base_wall_ns : float;
  ro_rec_wall_ns : float;
  ro_overhead_pct : float;
}

let measure_recorder () =
  List.map
    (fun (name, fam, n) ->
      let inst = e2e_instance fam n in
      ignore (Dsf_graph.Graph.csr inst.Inst.graph);
      let best f =
        let b = ref infinity and res = ref None in
        for _ = 1 to 3 do
          let t0 = Unix.gettimeofday () in
          let r = f () in
          let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
          if ns < !b then begin
            b := ns;
            res := Some r
          end
        done;
        (Option.get !res, !b)
      in
      let base, base_ns =
        best (fun () -> Dsf_core.Det_dsf.run ~flat:true inst)
      in
      let rcd, rec_ns =
        best (fun () ->
            let r = Dsf_congest.Recorder.create ~now:0 () in
            let tel = Dsf_congest.Telemetry.create ~recorder:r () in
            let res = Dsf_core.Det_dsf.run ~flat:true ~telemetry:tel inst in
            if res.Dsf_core.Det_dsf.weight <> base.Dsf_core.Det_dsf.weight
            then failwith "recorder_overhead: recording changed the solve";
            r)
      in
      {
        ro_workload = name;
        ro_n = n;
        ro_rounds = Dsf_congest.Ledger.simulated base.Dsf_core.Det_dsf.ledger;
        ro_events = Dsf_congest.Recorder.event_count rcd;
        ro_log_bytes = String.length (Dsf_congest.Recorder.to_string rcd);
        ro_base_wall_ns = base_ns;
        ro_rec_wall_ns = rec_ns;
        ro_overhead_pct = (rec_ns -. base_ns) /. base_ns *. 100.;
      })
    [
      "det_dsf path", `Path, 1024;
      "det_dsf random", `Random, 1024;
      "det_dsf gadget", `Gadget, 1024;
    ]

let print_recorder rows =
  Format.printf "@.%-28s %8s %10s %10s %12s %12s %12s %10s@."
    "recorder overhead" "n" "rounds" "events" "log bytes" "base ns"
    "recorded ns" "ovh %";
  List.iter
    (fun r ->
      Format.printf "%-28s %8d %10d %10d %12d %12.0f %12.0f %10.1f@."
        r.ro_workload r.ro_n r.ro_rounds r.ro_events r.ro_log_bytes
        r.ro_base_wall_ns r.ro_rec_wall_ns r.ro_overhead_pct)
    rows

(* ------------------------------------------------------- flatcheck smoke *)

(* Flat-vs-active differential smoke for bin/ci.sh (`-- flatcheck`): a
   handful of stock workloads through both engines, comparing full results
   (states, trees, stats); exits nonzero on any divergence — the same
   contract the qcheck differential suite enforces, as a standalone CI
   step that needs no test runner. *)
let flat_check () =
  let ok = ref true in
  let check name b =
    Format.printf "flatcheck: %-32s %s@." name (if b then "ok" else "DIVERGED");
    if not b then ok := false
  in
  let g40 = Lazy.force shared_graph in
  let p256 = Lazy.force path256 in
  let bf g = Dsf_congest.Bellman_ford.sssp g ~src:0 in
  check "bellman-ford random n=40" (bf g40 = in_flat (fun () -> bf g40));
  check "bellman-ford path n=256" (bf p256 = in_flat (fun () -> bf p256));
  let bfs g = Dsf_congest.Bfs.build g ~root:0 in
  check "bfs random n=40" (bfs g40 = in_flat (fun () -> bfs g40));
  (* The native flat BFS must reproduce the classic tree and stats. *)
  let tree, stats = bfs p256 in
  let fstates, fstats =
    Sim.run_flat p256
      (Dsf_congest.Bfs.flat_protocol ~n:(Dsf_graph.Graph.n p256) ~root:0)
  in
  let n = Dsf_graph.Graph.n p256 in
  let same = ref (stats = fstats) in
  Array.iteri
    (fun v packed ->
      match Dsf_congest.Bfs.flat_state_parent_depth ~n packed with
      | Some (p, d)
        when p = tree.Dsf_congest.Bfs.parent.(v)
             && d = tree.Dsf_congest.Bfs.depth.(v) ->
          ()
      | _ -> same := false)
    fstates;
  check "native flat bfs path n=256" !same;
  if not !ok then exit 1

(* --------------------------------------------------------- fault overhead *)

(* Hardening overhead at increasing drop probability: a hardened leader
   flood on the shared graph vs its lossless baseline.  Every field is
   counted rounds/messages driven by the plan's PRF — no wall clock — so
   the section is deterministic and jobs-invariant, and the ci.sh diff
   covers it without stripping. *)

type fault_row = {
  drop : float;
  lossless_rounds : int;
  hardened_rounds : int;
  hardened_messages : int;
  retransmissions : int;
  fdropped : int;
  masked : bool;
}

let fault_overhead () =
  let g = Lazy.force shared_graph in
  let proto = Dsf_congest.Leader.protocol g in
  let lossless, base = Sim.run g proto in
  List.map
    (fun drop ->
      let plan =
        if drop = 0. then Dsf_congest.Fault.empty
        else Dsf_congest.Fault.plan ~drop ~seed:808 ()
      in
      let states, stats = Dsf_congest.Fault.run_hardened ~plan g proto in
      {
        drop;
        lossless_rounds = base.Sim.rounds;
        hardened_rounds = stats.Sim.rounds;
        hardened_messages = stats.Sim.messages;
        retransmissions = stats.Sim.retransmissions;
        fdropped = stats.Sim.dropped;
        masked = states = lossless;
      })
    [ 0.0; 0.1; 0.3 ]

let print_fault_overhead fo =
  Format.printf "@.%-20s %10s %14s %10s %10s %8s@." "fault overhead" "drop p"
    "rounds (vs)" "messages" "retrans" "masked";
  List.iter
    (fun f ->
      Format.printf "%-20s %10.2f %8d (%4d) %10d %10d %8s@." "hardened leader"
        f.drop f.hardened_rounds f.lossless_rounds f.hardened_messages
        f.retransmissions
        (if f.masked then "yes" else "NO"))
    fo

(* ----------------------------------------------------------- phase profile *)

(* Per-phase round/bit attribution for the E1 and A6 sweeps, recorded into
   BENCH_sim.json so later PRs can diff *where* the rounds go, not just how
   many there are.  E1's instance family (seed 100, t=8, k=3) is solved by
   the Algorithm-1 emulation (Det_dsf — the distributed counterpart of the
   moat growing E1 checks centrally); A6's hardened leader flood runs at
   the same drop probabilities as the ablation.  The telemetry clock is a
   constant, so every recorded field is deterministic and jobs-invariant —
   the ci.sh jobs-diff covers this section without stripping. *)

module Telemetry = Dsf_congest.Telemetry

let run_profiled_workloads tel =
  Telemetry.span tel "E1" (fun () ->
      let r = Dsf_util.Rng.create 100 in
      let g = Gen.random_connected r ~n:40 ~extra_edges:30 ~max_w:10 in
      let labels = Gen.random_labels r ~n:40 ~t:8 ~k:3 in
      ignore (Dsf_core.Det_dsf.run ~telemetry:tel (Inst.make_ic g labels)));
  Telemetry.span tel "A6" (fun () ->
      let g = Lazy.force shared_graph in
      let proto = Dsf_congest.Leader.protocol g in
      List.iter
        (fun (label, plan) ->
          Telemetry.span tel label (fun () ->
              ignore
                (Dsf_congest.Fault.run_hardened ~telemetry:tel ~plan g proto)))
        [
          "drop=0.00", Dsf_congest.Fault.empty;
          "drop=0.10", Dsf_congest.Fault.plan ~drop:0.1 ~seed:808 ();
          "drop=0.30", Dsf_congest.Fault.plan ~drop:0.3 ~seed:808 ();
        ])

type profile_row = {
  path : string;
  span_count : int;
  p_rounds : int;
  p_messages : int;
  p_bits : int;
  p_merb : int;
  p_ledger_sim : int;
  p_ledger_charged : int;
  p_dropped : int;
  p_retrans : int;
}

let flatten_profile tel =
  let rows = ref [] in
  let rec go prefix (s : Telemetry.span) =
    let path =
      if prefix = "" then s.Telemetry.name
      else prefix ^ "/" ^ s.Telemetry.name
    in
    rows :=
      {
        path;
        span_count = s.Telemetry.count;
        p_rounds = s.Telemetry.rounds;
        p_messages = s.Telemetry.messages;
        p_bits = s.Telemetry.bits;
        p_merb = s.Telemetry.max_edge_round_bits;
        p_ledger_sim = s.Telemetry.ledger_simulated;
        p_ledger_charged = s.Telemetry.ledger_charged;
        p_dropped = s.Telemetry.dropped;
        p_retrans = s.Telemetry.retransmissions;
      }
      :: !rows;
    List.iter (go path) s.Telemetry.children
  in
  List.iter (go "") (Telemetry.root_spans tel);
  List.rev !rows

let phase_profile () =
  let tel = Telemetry.create ~clock:(fun () -> 0L) () in
  run_profiled_workloads tel;
  flatten_profile tel

(* --------------------------------------------------------- fault recovery *)

(* Crash-recovery cost vs crash rate: the A6 hardened leader flood and the
   E1 det_dsf solve, each checkpoint-hardened under a fixed drop/duplicate
   plan with an increasing number of crash-restart windows.  Every counted
   field (rounds, retransmissions, recovery rounds, checkpoint bits) is
   driven by the plan's PRF and jobs-invariant; [rv_wall_overhead] is the
   one measured field, stripped by the ci.sh jobs diff alongside the other
   wall-clock keys. *)

type recovery_row = {
  rv_workload : string;
  rv_crash_windows : int;
  rv_base_rounds : int;  (* fault-free baseline *)
  rv_rounds : int;
  rv_retrans : int;
  rv_restores : int option;
      (* None for det_dsf legs: restores happen inside the primitives'
         hardened runs and have no ledger attribution to recover them
         from post-hoc (unlike retransmissions / recovery rounds) *)
  rv_recovery_rounds : int;
  rv_checkpoint_bits : int;
  rv_wall_overhead : float;  (* hardened wall / fault-free wall *)
  rv_masked : bool;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Distinct crash nodes for up to 6 windows at the sizes used here, all in
   the early rounds so they bite before the protocols quiesce. *)
let recovery_plan ~n ~windows ~seed =
  let crashes =
    List.init windows (fun i ->
        ((53 * (i + 1)) mod n, 1 + (i mod 5), 4 + (i mod 5) + (i mod 3)))
  in
  Dsf_congest.Fault.plan ~drop:0.05 ~duplicate:0.02 ~crashes ~seed ()

let recovery_leader ~windows =
  let g = Lazy.force shared_graph in
  let n = Dsf_graph.Graph.n g in
  let proto = Dsf_congest.Leader.protocol g in
  let (lossless, base), base_wall = timed (fun () -> Sim.run g proto) in
  let plan = recovery_plan ~n ~windows ~seed:808 in
  let hardened =
    Dsf_congest.Fault.harden ~recovery:(Dsf_congest.Fault.immutable ()) proto
  in
  let (hs, stats), wall =
    timed (fun () ->
        Sim.run
          ~halt:(Dsf_congest.Fault.quiescent proto)
          ~faults:(Dsf_congest.Fault.instantiate plan)
          g hardened)
  in
  let rs = Dsf_congest.Fault.recovery_of hs in
  {
    rv_workload = "A6 leader";
    rv_crash_windows = windows;
    rv_base_rounds = base.Sim.rounds;
    rv_rounds = stats.Sim.rounds;
    rv_retrans = Dsf_congest.Fault.retransmissions_of hs;
    rv_restores = Some rs.Dsf_congest.Fault.restores;
    rv_recovery_rounds = rs.Dsf_congest.Fault.recovery_rounds;
    rv_checkpoint_bits = rs.Dsf_congest.Fault.checkpoint_bits;
    rv_wall_overhead = wall /. base_wall;
    rv_masked = Array.map Dsf_congest.Fault.inner hs = lossless;
  }

let recovery_det_dsf ~windows =
  let r = Dsf_util.Rng.create 100 in
  let g = Gen.random_connected r ~n:40 ~extra_edges:30 ~max_w:10 in
  let labels = Gen.random_labels r ~n:40 ~t:8 ~k:3 in
  let inst = Inst.make_ic g labels in
  let base, base_wall = timed (fun () -> Dsf_core.Det_dsf.run inst) in
  let plan = recovery_plan ~n:40 ~windows ~seed:909 in
  let tel = Telemetry.create ~clock:(fun () -> 0L) () in
  let res, wall =
    timed (fun () ->
        Dsf_core.Det_dsf.run ~telemetry:tel
          ~chaos:(Dsf_congest.Fault.chaos plan)
          inst)
  in
  (* The recovery counters of the inner hardened primitives land on the
     "hardened" telemetry spans: the only ledger adds made while such a
     span is open are the hardened runner's own — retransmissions plus
     recovery rounds as Simulated, checkpoint bits as Charged (det_dsf's
     result-ledger adds happen after each primitive's span closes) — so
     the totals fall out of the profile. *)
  let retrans = ref 0 and sim = ref 0 and ckpt = ref 0 in
  List.iter
    (fun row ->
      let p = row.path and s = "/hardened" in
      let lp = String.length p and ls = String.length s in
      if (lp >= ls && String.sub p (lp - ls) ls = s) || p = "hardened" then begin
        retrans := !retrans + row.p_retrans;
        sim := !sim + row.p_ledger_sim;
        ckpt := !ckpt + row.p_ledger_charged
      end)
    (flatten_profile tel);
  let total l = Dsf_congest.Ledger.total l in
  {
    rv_workload = "E1 det_dsf";
    rv_crash_windows = windows;
    rv_base_rounds = total base.Dsf_core.Det_dsf.ledger;
    rv_rounds = total res.Dsf_core.Det_dsf.ledger;
    rv_retrans = !retrans;
    rv_restores = None;
    rv_recovery_rounds = !sim - !retrans;
    rv_checkpoint_bits = !ckpt;
    rv_wall_overhead = wall /. base_wall;
    rv_masked =
      res.Dsf_core.Det_dsf.solution = base.Dsf_core.Det_dsf.solution
      && res.Dsf_core.Det_dsf.weight = base.Dsf_core.Det_dsf.weight
      && Dsf_core.Frac.compare res.Dsf_core.Det_dsf.dual
           base.Dsf_core.Det_dsf.dual
         = 0;
  }

let fault_recovery () =
  let windows = [ 0; 2; 6 ] in
  List.map (fun w -> recovery_leader ~windows:w) windows
  @ List.map (fun w -> recovery_det_dsf ~windows:w) windows

let print_fault_recovery fr =
  Format.printf "@.%-14s %7s %16s %8s %9s %11s %10s %7s %7s@."
    "fault recovery" "crashes" "rounds (vs)" "retrans" "restores" "rec rounds"
    "ckpt bits" "wall x" "masked";
  List.iter
    (fun v ->
      Format.printf "%-14s %7d %9d (%4d) %8d %9s %11d %10d %7.2f %7s@."
        v.rv_workload v.rv_crash_windows v.rv_rounds v.rv_base_rounds
        v.rv_retrans
        (match v.rv_restores with Some r -> string_of_int r | None -> "-")
        v.rv_recovery_rounds v.rv_checkpoint_bits v.rv_wall_overhead
        (if v.rv_masked then "yes" else "NO"))
    fr

(* bench/main.exe --trace: the same workloads under the real clock, written
   through the requested sink. *)
let write_trace ~format path =
  let tel = Telemetry.create () in
  run_profiled_workloads tel;
  Telemetry.write_file tel ~format path;
  if path <> "-" then Format.printf "wrote trace to %s@." path

(* --------------------------------------------------------------- metadata *)

let git_rev () =
  let line_of path =
    try
      let ic = open_in path in
      let l = (try Some (input_line ic) with End_of_file -> None) in
      close_in ic;
      Option.map String.trim l
    with Sys_error _ -> None
  in
  match line_of ".git/HEAD" with
  | None -> "unknown"
  | Some head when String.length head > 5 && String.sub head 0 5 = "ref: " ->
      let r = String.sub head 5 (String.length head - 5) in
      (match line_of (Filename.concat ".git" r) with
      | Some rev -> rev
      | None -> (
          (* Detached ref file: fall back to .git/packed-refs. *)
          try
            let ic = open_in ".git/packed-refs" in
            let found = ref "unknown" in
            (try
               while true do
                 match String.split_on_char ' ' (input_line ic) with
                 | [ rev; name ] when name = r -> found := rev
                 | _ -> ()
               done
             with End_of_file -> ());
            close_in ic;
            !found
          with Sys_error _ -> "unknown"))
  | Some head -> head

let utc_date () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* ------------------------------------------------------------------ JSON *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then "null"
  else Printf.sprintf "%.1f" x

let write_json ~mode ~jobs rows sp scaling fo fr flat e2e rcd profile path =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"schema\": \"dsf-bench-sim/8\",\n  \"mode\": %S,\n" mode;
  p "  \"git_rev\": \"%s\",\n" (json_escape (git_rev ()));
  p "  \"utc_date\": \"%s\",\n" (utc_date ());
  p "  \"jobs\": %d,\n" jobs;
  p "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  p "  \"benchmarks\": [\n";
  List.iteri
    (fun i r ->
      let rounds, rps =
        match r.rounds_per_run with
        | Some rounds when r.ns_per_run > 0. ->
            ( string_of_int rounds,
              json_float (float_of_int rounds *. 1e9 /. r.ns_per_run) )
        | _ -> "null", "null"
      in
      p
        "    {\"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s, \
         \"minor_words_per_run\": %s, \"rounds_per_run\": %s, \
         \"rounds_per_sec\": %s}%s\n"
        (json_escape r.name) (json_float r.ns_per_run) (json_float r.r2)
        (json_float r.minor_words) rounds rps
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n  \"speedups\": [\n";
  List.iteri
    (fun i (s : speedup) ->
      p
        "    {\"workload\": \"%s\", \"active_ns\": %s, \"reference_ns\": %s, \
         \"flat_ns\": %s, \"speedup\": %s, \"flat_speedup\": %s}%s\n"
        (json_escape s.workload) (json_float s.active_ns)
        (json_float s.reference_ns) (json_float s.flat_ns)
        (json_float (s.reference_ns /. s.active_ns))
        (json_float (s.active_ns /. s.flat_ns))
        (if i = List.length sp - 1 then "" else ","))
    sp;
  p "  ],\n  \"parallel_scaling\": [\n";
  List.iteri
    (fun i s ->
      let base = match s.runs with (_, ns) :: _ -> ns | [] -> nan in
      p "    {\"workload\": \"%s\", \"check\": %d, \"runs\": ["
        (json_escape s.workload) s.check;
      List.iteri
        (fun j (jobs, ns) ->
          p
            "%s{\"jobs\": %d, \"wall_ns\": %s, \"speedup_vs_j1\": %s, \
             \"saturated\": %b}"
            (if j = 0 then "" else ", ")
            jobs (json_float ns)
            (json_float (base /. ns))
            (saturated ~jobs))
        s.runs;
      p "]}%s\n" (if i = List.length scaling - 1 then "" else ","))
    scaling;
  p "  ],\n  \"flat_engine\": [\n";
  List.iteri
    (fun i f ->
      p
        "    {\"workload\": \"%s\", \"n\": %d, \"jobs\": %d, \
         \"rounds\": %d, \"wall_ns\": %s, \"rounds_per_sec\": %s, \
         \"minor_words_per_round\": %s, \"speedup_vs_active\": %s}%s\n"
        (json_escape f.fl_workload) f.fl_n f.fl_jobs f.fl_rounds
        (json_float f.fl_wall_ns)
        (json_float f.fl_rps)
        (json_float f.fl_words_per_round)
        (json_float f.fl_speedup)
        (if i = List.length flat - 1 then "" else ","))
    flat;
  p "  ],\n  \"flat_e2e\": [\n";
  List.iteri
    (fun i e ->
      p
        "    {\"workload\": \"%s\", \"n\": %d, \"jobs\": %d, \"rounds\": %d, \
         \"weight\": %d, \"wall_ns\": %s, \"rounds_per_sec\": %s, \
         \"minor_words_per_round\": %s, \"speedup_vs_active\": %s}%s\n"
        (json_escape e.e2_workload) e.e2_n e.e2_jobs e.e2_rounds e.e2_weight
        (json_float e.e2_wall_ns)
        (json_float e.e2_rps)
        (json_float e.e2_words_per_round)
        (json_float e.e2_speedup)
        (if i = List.length e2e - 1 then "" else ","))
    e2e;
  p "  ],\n  \"fault_overhead\": [\n";
  List.iteri
    (fun i f ->
      p
        "    {\"drop\": %.2f, \"lossless_rounds\": %d, \"hardened_rounds\": \
         %d, \"hardened_messages\": %d, \"retransmissions\": %d, \
         \"dropped\": %d, \"states_match\": %b}%s\n"
        f.drop f.lossless_rounds f.hardened_rounds f.hardened_messages
        f.retransmissions f.fdropped f.masked
        (if i = List.length fo - 1 then "" else ","))
    fo;
  p "  ],\n  \"fault_recovery\": [\n";
  List.iteri
    (fun i v ->
      let wall =
        let w = v.rv_wall_overhead in
        if Float.is_nan w || w = Float.infinity then "null"
        else Printf.sprintf "%.3f" w
      in
      p
        "    {\"workload\": \"%s\", \"crash_windows\": %d, \"base_rounds\": \
         %d, \"rounds\": %d, \"retransmissions\": %d, \"restores\": %s, \
         \"recovery_rounds\": %d, \"checkpoint_bits\": %d, \
         \"wall_overhead\": %s, \"masked\": %b}%s\n"
        (json_escape v.rv_workload) v.rv_crash_windows v.rv_base_rounds
        v.rv_rounds v.rv_retrans
        (match v.rv_restores with Some r -> string_of_int r | None -> "null")
        v.rv_recovery_rounds v.rv_checkpoint_bits wall v.rv_masked
        (if i = List.length fr - 1 then "" else ","))
    fr;
  p "  ],\n  \"recorder_overhead\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"workload\": \"%s\", \"n\": %d, \"rounds\": %d, \"events\": \
         %d, \"log_bytes\": %d, \"base_wall_ns\": %s, \"rec_wall_ns\": %s, \
         \"overhead_pct\": %s}%s\n"
        (json_escape r.ro_workload) r.ro_n r.ro_rounds r.ro_events
        r.ro_log_bytes
        (json_float r.ro_base_wall_ns)
        (json_float r.ro_rec_wall_ns)
        (json_float r.ro_overhead_pct)
        (if i = List.length rcd - 1 then "" else ","))
    rcd;
  p "  ],\n  \"phase_profile\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"path\": \"%s\", \"count\": %d, \"rounds\": %d, \"messages\": \
         %d, \"bits\": %d, \"max_edge_round_bits\": %d, \"ledger_simulated\": \
         %d, \"ledger_charged\": %d, \"dropped\": %d, \"retransmissions\": \
         %d}%s\n"
        (json_escape r.path) r.span_count r.p_rounds r.p_messages r.p_bits
        r.p_merb r.p_ledger_sim r.p_ledger_charged r.p_dropped r.p_retrans
        (if i = List.length profile - 1 then "" else ","))
    profile;
  p "  ]\n}\n";
  close_out oc;
  Format.printf "@.wrote %s@." path

(* ------------------------------------------------------------------ modes *)

let run ?(jobs = Dsf_util.Pool.default_jobs ()) ?(out = "BENCH_sim.json") () =
  Format.printf "@.=== Bechamel wall-clock microbenchmarks ===@.";
  let rows = measure ~quota:0.5 (tests @ sim_tests @ indexed_tests) in
  print_rows rows;
  let sp = speedups rows in
  print_speedups sp;
  let scaling = measure_scaling () in
  print_scaling scaling;
  let flat = measure_flat ~sizes:flat_sizes () in
  print_flat flat;
  let e2e = measure_e2e ~sizes:flat_sizes ~active_max_n:max_int () in
  print_e2e e2e;
  let fo = fault_overhead () in
  print_fault_overhead fo;
  let fr = fault_recovery () in
  print_fault_recovery fr;
  let rcd = measure_recorder () in
  print_recorder rcd;
  write_json ~mode:"micro" ~jobs rows sp scaling fo fr flat e2e rcd
    (phase_profile ()) out

(* Smoke caps the flat sweeps at n=4096 and the e2e solve at n=256: the
   full n=16384 legs cost tens of seconds each and belong to `-- micro`;
   the every-PR CI contract is jobs-invariance and GC-budget checks, which
   the small sizes already exercise. *)
let smoke ?(jobs = Dsf_util.Pool.default_jobs ()) ?(out = "BENCH_sim.json") () =
  Format.printf "@.=== Simulator smoke benchmarks (CI) ===@.";
  let rows = measure ~quota:0.05 sim_tests in
  print_rows rows;
  let sp = speedups rows in
  print_speedups sp;
  let scaling = measure_scaling () in
  print_scaling scaling;
  let flat = measure_flat ~sizes:flat_smoke_sizes () in
  print_flat flat;
  let e2e = measure_e2e ~sizes:[ 256 ] ~active_max_n:256 () in
  print_e2e e2e;
  let fo = fault_overhead () in
  print_fault_overhead fo;
  let fr = fault_recovery () in
  print_fault_recovery fr;
  let rcd = measure_recorder () in
  print_recorder rcd;
  write_json ~mode:"smoke" ~jobs rows sp scaling fo fr flat e2e rcd
    (phase_profile ()) out
