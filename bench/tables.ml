(* Experiment harness: one table per claim of the paper (the paper is a
   theory paper — its "tables and figures" are its theorems, lower bounds
   and the Figure 1 gadgets; see DESIGN.md's experiment index).  Every
   experiment prints the measured quantities next to the claimed shape and
   a PASS/FAIL verdict on the shape. *)

module Graph = Dsf_graph.Graph
module Gen = Dsf_graph.Gen
module Instance = Dsf_graph.Instance
module Exact = Dsf_graph.Exact
module Paths = Dsf_graph.Paths
module Ledger = Dsf_congest.Ledger
module Stats = Dsf_util.Stats
module Rng = Dsf_util.Rng
module Pool = Dsf_util.Pool

let header title claim =
  Format.printf "@.=== %s ===@.claim: %s@." title claim

let verdict name ok =
  Format.printf "--> %s: %s@." name (if ok then "PASS" else "FAIL")

let random_instance ?(n = 40) ?(extra = 30) ?(max_w = 10) ~t ~k seed =
  let r = Rng.create seed in
  let g = Gen.random_connected r ~n ~extra_edges:extra ~max_w in
  let labels = Gen.random_labels r ~n ~t ~k in
  Instance.make_ic g labels

(* ------------------------------------------------------------------- E1 *)

let e1 ~jobs () =
  header "E1 (Theorem 4.1)"
    "centralized moat growing is feasible and within 2x OPT; its dual lower-bounds OPT";
  Format.printf "%6s %4s %4s %6s %6s %8s %8s@." "seed" "t" "k" "OPT" "W" "W/OPT"
    "dual";
  (* The seed sweep fans out on the domain pool (solve + exact-OPT DP per
     seed are independent); rows are printed afterwards, in seed order. *)
  let rows =
    Pool.map_chunked ~jobs
      (fun seed ->
        let inst = random_instance ~t:8 ~k:3 seed in
        let res = Dsf_core.Moat.run inst in
        let opt = Exact.steiner_forest_weight inst in
        seed, inst, res, opt)
      (Array.init 12 (fun i -> 100 + i))
  in
  let ratios = ref [] in
  let ok = ref true in
  Array.iter
    (fun (seed, inst, res, opt) ->
      let ratio = float_of_int res.Dsf_core.Moat.weight /. float_of_int opt in
      ratios := ratio :: !ratios;
      let dual = Dsf_core.Frac.to_float res.Dsf_core.Moat.dual in
      if
        (not (Instance.is_feasible inst res.Dsf_core.Moat.solution))
        || ratio > 2.0 +. 1e-9
        || dual > float_of_int opt +. 1e-6
      then ok := false;
      Format.printf "%6d %4d %4d %6d %6d %8.3f %8.2f@." seed 8 3 opt
        res.Dsf_core.Moat.weight ratio dual)
    rows;
  let lo, mean, hi = (fun l -> Stats.min_max l, Stats.mean l) !ratios |> fun ((a, b), c) -> a, c, b in
  Format.printf "ratio: min=%.3f mean=%.3f max=%.3f (bound 2.000)@." lo mean hi;
  verdict "E1" !ok

(* ------------------------------------------------------------------- E2 *)

let e2 () =
  header "E2 (Theorem 4.2)"
    "rounded moat growing is within (2+eps) x OPT; growth phases ~ O(log/eps)";
  Format.printf "%8s %6s %10s %10s %14s@." "eps" "seed" "W/OPT" "bound"
    "growth phases";
  let ok = ref true in
  List.iter
    (fun (en, ed) ->
      let eps = float_of_int en /. float_of_int ed in
      List.iter
        (fun seed ->
          let inst = random_instance ~t:8 ~k:3 seed in
          let res = Dsf_core.Moat_rounded.run ~eps_num:en ~eps_den:ed inst in
          let opt = Exact.steiner_forest_weight inst in
          let ratio =
            float_of_int res.Dsf_core.Moat_rounded.weight /. float_of_int opt
          in
          if ratio > 2.0 +. eps +. 1e-9 then ok := false;
          Format.printf "%8.2f %6d %10.3f %10.2f %14d@." eps seed ratio
            (2.0 +. eps) res.Dsf_core.Moat_rounded.growth_phases)
        [ 201; 202; 203 ])
    [ 1, 1; 1, 2; 1, 10 ];
  verdict "E2" !ok

(* ------------------------------------------------------------------- E3 *)

let e3 () =
  header "E3 (Theorem 4.17)"
    "Det_dsf solves DSF-IC at factor 2 in O(ks + t) rounds: rounds scale ~linearly in k and in s";
  (* (a) sweep k on the adversarial broom family (tail fixed, so s is
     ~fixed and every merge phase re-sweeps the tail). *)
  let tail = 100 in
  Format.printf "-- sweep k (broom, tail=%d, s ~fixed) --@." tail;
  Format.printf "%4s %6s %8s %10s@." "k" "s" "phases" "rounds";
  let pts_k =
    List.map
      (fun k ->
        let g, labels =
          Gen.broom ~tail ~arm_lengths:(List.init k (fun j -> j + 1))
        in
        let inst = Instance.make_ic g labels in
        let res = Dsf_core.Det_dsf.run inst in
        let _, _, s = Paths.parameters g in
        let rounds = Ledger.total res.Dsf_core.Det_dsf.ledger in
        Format.printf "%4d %6d %8d %10d@." k s res.Dsf_core.Det_dsf.phase_count
          rounds;
        float_of_int k, float_of_int rounds)
      [ 2; 4; 8; 16 ]
  in
  let slope_k = Stats.loglog_slope pts_k in
  (* (b) sweep s via path length, k fixed. *)
  Format.printf "-- sweep s (path graphs, k=2) --@.";
  Format.printf "%6s %6s %10s@." "n" "s" "rounds";
  let pts_s =
    List.map
      (fun n ->
        let r = Rng.create (400 + n) in
        let g = Gen.reweight r ~max_w:4 (Gen.path n) in
        let labels = Gen.random_labels r ~n ~t:4 ~k:2 in
        let inst = Instance.make_ic g labels in
        let res = Dsf_core.Det_dsf.run inst in
        let _, _, s = Paths.parameters g in
        let rounds = Ledger.total res.Dsf_core.Det_dsf.ledger in
        Format.printf "%6d %6d %10d@." n s rounds;
        float_of_int s, float_of_int rounds)
      [ 32; 64; 128; 256 ]
  in
  let slope_s = Stats.loglog_slope pts_s in
  Format.printf
    "log-log slope rounds-vs-k = %.2f, rounds-vs-s = %.2f (claim: both <= ~1 + lower-order)@."
    slope_k slope_s;
  verdict "E3" (slope_k < 1.4 && slope_s < 1.4 && slope_k > 0.2 && slope_s > 0.5)

(* ------------------------------------------------------------------- E4 *)

let e4 () =
  header "E4 (Corollary 4.21)"
    "Det_sublinear avoids Det_dsf's additive t: rounds grow ~sqrt(st) in t, not ~t";
  Format.printf "%6s %6s %14s %18s@." "t" "sigma" "Det_dsf rounds"
    "Det_sublinear rounds";
  let pts_det = ref [] and pts_sub = ref [] in
  List.iter
    (fun t ->
      let n = 4 * t in
      let r = Rng.create (500 + t) in
      let g = Gen.random_connected r ~n ~extra_edges:n ~max_w:6 in
      let labels = Gen.random_labels r ~n ~t ~k:2 in
      let inst = Instance.make_ic g labels in
      let det = Dsf_core.Det_dsf.run inst in
      let sub = Dsf_core.Det_sublinear.run ~eps_num:1 ~eps_den:2 inst in
      let dr = Ledger.total det.Dsf_core.Det_dsf.ledger in
      let sr = Ledger.total sub.Dsf_core.Det_sublinear.ledger in
      Format.printf "%6d %6d %14d %18d@." t sub.Dsf_core.Det_sublinear.sigma dr
        sr;
      pts_det := (float_of_int t, float_of_int dr) :: !pts_det;
      pts_sub := (float_of_int t, float_of_int sr) :: !pts_sub)
    [ 8; 16; 32; 64 ];
  let sd = Stats.loglog_slope !pts_det and ss = Stats.loglog_slope !pts_sub in
  Format.printf
    "log-log slope in t: Det_dsf=%.2f  Det_sublinear=%.2f (claim: sublinear grows no faster)@."
    sd ss;
  verdict "E4" (ss <= sd +. 0.15)

(* ------------------------------------------------------------------- E5 *)

let e5 () =
  header "E5 (Theorem 5.2)"
    "Rand_dsf: O(log n)-approximate w.h.p., rounds O~(k + min(s, sqrt n) + D)";
  Format.printf "%6s %4s %6s %6s %8s %10s %10s@." "seed" "k" "OPT" "W" "W/OPT"
    "trunc" "rounds";
  let ok = ref true in
  let ratios = ref [] in
  List.iter
    (fun seed ->
      let inst = random_instance ~n:36 ~t:8 ~k:3 seed in
      let res = Dsf_core.Rand_dsf.run ~rng:(Rng.create (seed * 3)) inst in
      let opt = Exact.steiner_forest_weight inst in
      let ratio = float_of_int res.Dsf_core.Rand_dsf.weight /. float_of_int opt in
      ratios := ratio :: !ratios;
      if
        (not (Instance.is_feasible inst res.Dsf_core.Rand_dsf.solution))
        || ratio > 2.0 *. log (float_of_int 36)
      then ok := false;
      Format.printf "%6d %4d %6d %6d %8.3f %10b %10d@." seed 3 opt
        res.Dsf_core.Rand_dsf.weight ratio res.Dsf_core.Rand_dsf.truncated
        (Ledger.total res.Dsf_core.Rand_dsf.ledger))
    (List.init 8 (fun i -> 600 + i));
  Format.printf "mean ratio %.3f vs O(log n) bound %.2f@." (Stats.mean !ratios)
    (log (float_of_int 36));
  (* Round scaling in k (additive, not multiplicative). *)
  Format.printf "-- rounds vs k (cycle n=96, repetitions=1) --@.";
  let pts =
    List.map
      (fun k ->
        let n = 96 in
        let r = Rng.create (700 + k) in
        let g = Gen.reweight r ~max_w:4 (Gen.cycle n) in
        let labels = Gen.random_labels r ~n ~t:(2 * k) ~k in
        let inst = Instance.make_ic g labels in
        let res =
          Dsf_core.Rand_dsf.run ~repetitions:1 ~rng:(Rng.create k) inst
        in
        let rounds = Ledger.total res.Dsf_core.Rand_dsf.ledger in
        Format.printf "   k=%2d rounds=%d@." k rounds;
        float_of_int k, float_of_int rounds)
      [ 2; 4; 8; 16 ]
  in
  let slope = Stats.loglog_slope pts in
  Format.printf "log-log slope rounds-vs-k = %.2f (claim: << 1, k enters additively)@." slope;
  verdict "E5" (!ok && slope < 0.5)

(* ------------------------------------------------------------------- E6 *)

let e6 () =
  header "E6 (Lemma 3.1, Figure 1 left)"
    "DSF-CR needs Omega(t/log n) rounds: bits across the Alice/Bob cut grow ~linearly in the universe";
  Format.printf "%10s %6s %12s %12s %10s@." "universe" "n" "cut bits"
    "bits/elem" "answer ok";
  let pts = ref [] in
  let ok = ref true in
  List.iter
    (fun u ->
      let r = Rng.create (800 + u) in
      let a, b =
        Dsf_lower_bound.Gadgets.random_sets r ~universe:u ~density:0.5
          ~force_intersect:(u mod 2 = 0)
      in
      let gad = Dsf_lower_bound.Gadgets.cr_gadget ~universe:u ~rho:2 ~a ~b in
      let res, bits =
        Dsf_lower_bound.Gadgets.cut_bits gad.Dsf_lower_bound.Gadgets.cr_side
          (fun ~observer ->
            let ic =
              (Dsf_core.Transform.cr_to_ic ~observer
                 gad.Dsf_lower_bound.Gadgets.cr)
                .Dsf_core.Transform.value
            in
            Dsf_core.Det_dsf.run ~observer ic)
      in
      let consistent =
        Dsf_lower_bound.Gadgets.cr_answer_consistent gad
          res.Dsf_core.Det_dsf.solution
      in
      if not consistent then ok := false;
      Format.printf "%10d %6d %12d %12.1f %10b@." u ((2 * u) + 4) bits
        (float_of_int bits /. float_of_int u)
        consistent;
      pts := (float_of_int u, float_of_int bits) :: !pts)
    [ 8; 16; 32; 64 ];
  let slope = Stats.loglog_slope !pts in
  Format.printf "log-log slope bits-vs-universe = %.2f (lower bound predicts >= ~1)@." slope;
  verdict "E6" (!ok && slope >= 0.8)

(* ------------------------------------------------------------------- E7 *)

let e7 () =
  header "E7 (Lemma 3.3, Figure 1 right)"
    "DSF-IC needs Omega(k/log n) rounds: the minimalization information is Omega(k) bits across the cut";
  Format.printf "%10s %12s %12s %10s@." "k=universe" "cut bits" "bits/label"
    "answer ok";
  let pts = ref [] in
  let ok = ref true in
  List.iter
    (fun u ->
      let r = Rng.create (900 + u) in
      let a, b =
        Dsf_lower_bound.Gadgets.random_sets r ~universe:u ~density:0.5
          ~force_intersect:(u mod 2 = 1)
      in
      let gad = Dsf_lower_bound.Gadgets.ic_gadget ~universe:u ~a ~b in
      let res, bits =
        Dsf_lower_bound.Gadgets.cut_bits gad.Dsf_lower_bound.Gadgets.ic_side
          (fun ~observer ->
            (* The honest pipeline: the distributed minimalization is where
               the per-label information must cross the bridge. *)
            let out =
              Dsf_core.Transform.minimalize ~observer
                gad.Dsf_lower_bound.Gadgets.ic
            in
            Dsf_core.Det_dsf.run ~observer out.Dsf_core.Transform.value)
      in
      let consistent =
        Dsf_lower_bound.Gadgets.ic_answer_consistent gad
          res.Dsf_core.Det_dsf.solution
      in
      if not consistent then ok := false;
      Format.printf "%10d %12d %12.1f %10b@." u bits
        (float_of_int bits /. float_of_int u)
        consistent;
      pts := (float_of_int u, float_of_int bits) :: !pts)
    [ 8; 16; 32; 64 ];
  let slope = Stats.loglog_slope !pts in
  Format.printf "log-log slope bits-vs-k = %.2f (lower bound predicts >= ~1)@." slope;
  verdict "E7" (!ok && slope >= 0.8)

(* ------------------------------------------------------------------- E8 *)

let e8 () =
  header "E8 (abstract)"
    "new randomized O~(s + k) beats Khan et al. O~(s k): baseline rounds grow ~k, ours stay ~flat";
  Format.printf "%4s %14s %14s %8s@." "k" "Khan rounds" "Rand rounds" "ratio";
  let pts_khan = ref [] and pts_rand = ref [] in
  List.iter
    (fun k ->
      let n = 120 in
      let r = Rng.create (1000 + k) in
      let g = Gen.reweight r ~max_w:4 (Gen.cycle n) in
      let labels = Gen.random_labels r ~n ~t:(3 * k) ~k in
      let inst = Instance.make_ic g labels in
      let kh =
        Dsf_baseline.Khan_etal.run ~repetitions:1 ~rng:(Rng.create k) inst
      in
      let rd =
        Dsf_core.Rand_dsf.run ~repetitions:1 ~rng:(Rng.create (k + 1)) inst
      in
      let khr = Ledger.total kh.Dsf_baseline.Khan_etal.ledger in
      let rdr = Ledger.total rd.Dsf_core.Rand_dsf.ledger in
      Format.printf "%4d %14d %14d %8.2f@." k khr rdr
        (float_of_int khr /. float_of_int rdr);
      pts_khan := (float_of_int k, float_of_int khr) :: !pts_khan;
      pts_rand := (float_of_int k, float_of_int rdr) :: !pts_rand)
    [ 2; 4; 8; 16; 32 ];
  let sk = Stats.loglog_slope !pts_khan and sr = Stats.loglog_slope !pts_rand in
  Format.printf
    "log-log slope in k: Khan=%.2f ours=%.2f (claim: Khan ~1, ours ~0; crossover as k grows)@."
    sk sr;
  verdict "E8" (sk > 0.6 && sr < 0.3)

(* ------------------------------------------------------------------- E9 *)

let e9 () =
  header "E9 (Section 1, Main Techniques)"
    "specialized to k=1, t=n the deterministic algorithm outputs an exact MST";
  Format.printf "%-18s %6s %10s %10s %8s@." "graph" "n" "MST" "Det_dsf" "exact";
  let ok = ref true in
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let inst = Instance.make_ic g (Array.make n 0) in
      let det = Dsf_core.Det_dsf.run inst in
      let mst = Dsf_graph.Mst.weight g in
      let exact = det.Dsf_core.Det_dsf.weight = mst in
      if not exact then ok := false;
      Format.printf "%-18s %6d %10d %10d %8b@." name n mst
        det.Dsf_core.Det_dsf.weight exact)
    [
      "random sparse", Gen.random_connected (Rng.create 1) ~n:36 ~extra_edges:20 ~max_w:25;
      "random dense", Gen.random_connected (Rng.create 2) ~n:28 ~extra_edges:110 ~max_w:25;
      "weighted grid", Gen.reweight (Rng.create 3) ~max_w:9 (Gen.grid ~rows:5 ~cols:6);
      "weighted cycle", Gen.reweight (Rng.create 4) ~max_w:9 (Gen.cycle 24);
      "lollipop", Gen.reweight (Rng.create 5) ~max_w:9 (Gen.lollipop ~clique:8 ~tail:16);
    ];
  verdict "E9" !ok

(* ------------------------------------------------------------------ E10 *)

let e10 () =
  header "E10 (Lemmas 2.3, 2.4)"
    "CR->IC transform in O(D + t) rounds; minimalization in O(D + k) rounds";
  Format.printf "-- CR->IC rounds vs t (grid, D fixed) --@.";
  Format.printf "%6s %6s %10s@." "t" "D" "rounds";
  let pts = ref [] in
  List.iter
    (fun t ->
      let r = Rng.create (1100 + t) in
      let g = Gen.reweight r ~max_w:5 (Gen.grid ~rows:8 ~cols:8) in
      let requests = Array.make 64 [] in
      for _ = 1 to t / 2 do
        let a = Rng.int r 64 and b = Rng.int r 64 in
        if a <> b then requests.(a) <- b :: requests.(a)
      done;
      let cr = Instance.make_cr g requests in
      let out = Dsf_core.Transform.cr_to_ic cr in
      let d = Paths.diameter_unweighted g in
      Format.printf "%6d %6d %10d@." t d out.Dsf_core.Transform.rounds;
      pts := (float_of_int t, float_of_int out.Dsf_core.Transform.rounds) :: !pts)
    [ 8; 16; 32; 64 ];
  Format.printf "-- minimalize rounds vs k (grid, D fixed) --@.";
  Format.printf "%6s %10s@." "k" "rounds";
  let pts2 = ref [] in
  List.iter
    (fun k ->
      let r = Rng.create (1200 + k) in
      let g = Gen.reweight r ~max_w:5 (Gen.grid ~rows:8 ~cols:8) in
      let labels = Gen.random_labels r ~n:64 ~t:(2 * k) ~k in
      let inst = Instance.make_ic g labels in
      let out = Dsf_core.Transform.minimalize inst in
      Format.printf "%6d %10d@." k out.Dsf_core.Transform.rounds;
      pts2 := (float_of_int k, float_of_int out.Dsf_core.Transform.rounds) :: !pts2)
    [ 2; 4; 8; 16 ];
  (* Rounds = c1 + c2 * t (resp k): linear fits should have modest slopes
     and the constant ~D. *)
  let s1, c1 = Stats.linear_fit !pts in
  let s2, c2 = Stats.linear_fit !pts2 in
  Format.printf
    "linear fits: CR->IC rounds = %.2f*t + %.1f; minimalize rounds = %.2f*k + %.1f@."
    s1 c1 s2 c2;
  verdict "E10" (s1 < 4.0 && s2 < 6.0 && c1 < 80. && c2 < 80.)

(* ------------------------------------------------------------------ E11 *)

let e11 () =
  header "E11 (Section 5 / [14])"
    "virtual tree: expected O(log n) stretch; O(log n) distinct shortest-path trees per node";
  Format.printf "%6s %8s %12s %12s %14s@." "n" "log2 n" "mean stretch"
    "max stretch" "max paths/node";
  let ok = ref true in
  List.iter
    (fun n ->
      let r = Rng.create (1300 + n) in
      let g = Gen.random_connected r ~n ~extra_edges:n ~max_w:10 in
      let vt, _ = Dsf_embed.Virtual_tree.build r g in
      let apsp = Paths.all_pairs g in
      let sum = ref 0.0 and cnt = ref 0 and worst = ref 0.0 in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          let st =
            Dsf_embed.Virtual_tree.tree_distance vt u v
            /. float_of_int apsp.(u).(v)
          in
          if st < 1.0 -. 1e-9 then ok := false;
          sum := !sum +. st;
          incr cnt;
          if st > !worst then worst := st
        done
      done;
      let ppn = Dsf_embed.Virtual_tree.paths_per_node vt in
      let maxppn = Array.fold_left max 0 ppn in
      let logn = log (float_of_int n) /. log 2.0 in
      if float_of_int maxppn > 6.0 *. logn then ok := false;
      Format.printf "%6d %8.1f %12.2f %12.2f %14d@." n logn
        (!sum /. float_of_int !cnt)
        !worst maxppn)
    [ 32; 64; 128 ];
  verdict "E11" !ok

(* ------------------------------------------------------------------- F1 *)

let f1 () =
  header "F1 (Figure 1)"
    "the two Set-Disjointness gadgets, reproduced structurally, with a correct algorithm's behaviour on YES/NO instances";
  let u = 6 in
  let a = [| true; false; true; false; true; false |] in
  let b_disj = [| false; true; false; true; false; false |] in
  let b_inter = [| false; true; true; false; false; false |] in
  Format.printf "universe [6] = {1..6}; A = {1,3,5}@.";
  List.iter
    (fun (name, b) ->
      Format.printf "-- %s --@." name;
      let cg = Dsf_lower_bound.Gadgets.cr_gadget ~universe:u ~rho:2 ~a ~b in
      let g = cg.Dsf_lower_bound.Gadgets.cr.Instance.cr_graph in
      Format.printf
        "  left gadget (DSF-CR): n=%d m=%d heavy-weight=%d diameter=%d@."
        (Graph.n g) (Graph.m g)
        (Graph.edge g (List.hd cg.Dsf_lower_bound.Gadgets.heavy_edges)).Graph.w
        (Paths.diameter_unweighted g);
      let ic_res =
        let ic =
          (Dsf_core.Transform.cr_to_ic cg.Dsf_lower_bound.Gadgets.cr)
            .Dsf_core.Transform.value
        in
        Dsf_core.Det_dsf.run ic
      in
      let heavy_used =
        List.exists
          (fun id -> ic_res.Dsf_core.Det_dsf.solution.(id))
          cg.Dsf_lower_bound.Gadgets.heavy_edges
      in
      Format.printf "    solved: heavy edge used = %b (disjoint = %b)@."
        heavy_used
        (Dsf_lower_bound.Gadgets.disjoint a b);
      let ig = Dsf_lower_bound.Gadgets.ic_gadget ~universe:u ~a ~b in
      let g2 = ig.Dsf_lower_bound.Gadgets.ic.Instance.graph in
      Format.printf
        "  right gadget (DSF-IC): n=%d m=%d unit weights diameter=%d@."
        (Graph.n g2) (Graph.m g2)
        (Paths.diameter_unweighted g2);
      let r2 =
        let out = Dsf_core.Transform.minimalize ig.Dsf_lower_bound.Gadgets.ic in
        Dsf_core.Det_dsf.run out.Dsf_core.Transform.value
      in
      Format.printf "    solved: bridge (a0,b0) used = %b (disjoint = %b)@."
        r2.Dsf_core.Det_dsf.solution.(ig.Dsf_lower_bound.Gadgets.bridge_edge)
        (Dsf_lower_bound.Gadgets.disjoint a b))
    [ "YES instance (A ∩ B = ∅), B = {2,4}", b_disj;
      "NO instance (3 ∈ A ∩ B), B = {2,3}", b_inter ];
  verdict "F1" true

(* ------------------------------------------------------------------ E14 *)

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let e14 ~jobs () =
  header "E14 (ratio distributions)"
    "empirical approximation-ratio distributions over 40 mixed instances (the paper gives worst-case bounds; this shows typical behaviour)";
  (* Instance construction (with its exact-OPT DP) and each algorithm's
     40-instance sweep fan out on the domain pool; the pool preserves input
     order, so the reported percentiles are independent of [jobs]. *)
  let instances =
    Pool.map_chunked ~jobs
      (fun i ->
        let seed = 3000 + i in
        let r = Rng.create seed in
        let g =
          match i mod 4 with
          | 0 -> Gen.random_connected r ~n:28 ~extra_edges:22 ~max_w:9
          | 1 -> Gen.reweight r ~max_w:9 (Gen.grid ~rows:5 ~cols:6)
          | 2 -> Gen.random_geometric r ~n:28 ~radius:0.3 ~max_w:30
          | _ -> Gen.reweight r ~max_w:9 (Gen.cycle 28)
        in
        let n = Graph.n g in
        let labels = Gen.random_labels r ~n ~t:8 ~k:3 in
        let inst = Instance.make_ic g labels in
        inst, Exact.steiner_forest_weight inst, seed)
      (Array.init 40 Fun.id)
  in
  let sweep f = Array.to_list (Pool.map_chunked ~jobs f instances) in
  Format.printf "%-28s %8s %8s %8s %8s %8s@." "algorithm" "p10" "p50" "p90"
    "max" "bound";
  let ok = ref true in
  let report name bound ratios =
    let sorted = Array.of_list ratios in
    Array.sort compare sorted;
    let _, mx = Stats.min_max ratios in
    if mx > bound +. 1e-9 then ok := false;
    Format.printf "%-28s %8.3f %8.3f %8.3f %8.3f %8.2f@." name
      (percentile sorted 0.10) (percentile sorted 0.50)
      (percentile sorted 0.90) mx bound
  in
  let ratio w opt = float_of_int w /. float_of_int opt in
  report "Det_dsf" 2.0
    (sweep
       (fun (inst, opt, _) -> ratio (Dsf_core.Det_dsf.run inst).Dsf_core.Det_dsf.weight opt));
  report "Det_sublinear eps=1/2" 2.5
    (sweep
       (fun (inst, opt, _) ->
         ratio
           (Dsf_core.Det_sublinear.run ~eps_num:1 ~eps_den:2 inst)
             .Dsf_core.Det_sublinear.weight opt));
  report "Rand_dsf (3 reps)"
    (2.0 *. log (float_of_int 30))
    (sweep
       (fun (inst, opt, seed) ->
         ratio
           (Dsf_core.Rand_dsf.run ~rng:(Rng.create seed) inst).Dsf_core.Rand_dsf.weight
           opt));
  report "Khan et al. [14] (3 reps)"
    (2.0 *. log (float_of_int 30))
    (sweep
       (fun (inst, opt, seed) ->
         ratio
           (Dsf_baseline.Khan_etal.run ~rng:(Rng.create (seed + 1)) inst)
             .Dsf_baseline.Khan_etal.weight opt));
  verdict "E14" !ok

(* ------------------------------------------------------------------ E15 *)

let e15 () =
  header "E15 (accounting transparency)"
    "how much of each algorithm's reported rounds is genuinely simulated vs charged to a cited bound (see DESIGN.md)";
  let r = Rng.create 5151 in
  let g = Gen.random_connected r ~n:60 ~extra_edges:60 ~max_w:10 in
  let labels = Gen.spread_labels r g ~t:12 ~k:4 in
  let inst = Instance.make_ic g labels in
  Format.printf "%-28s %10s %10s %12s@." "algorithm" "simulated" "charged"
    "% simulated";
  let ok = ref true in
  let row name ledger =
    let s = Ledger.simulated ledger and c = Ledger.charged ledger in
    if s = 0 then ok := false;
    Format.printf "%-28s %10d %10d %11.0f%%@." name s c
      (100. *. float_of_int s /. float_of_int (s + c))
  in
  row "Det_dsf" (Dsf_core.Det_dsf.run inst).Dsf_core.Det_dsf.ledger;
  row "Det_sublinear eps=1/2"
    (Dsf_core.Det_sublinear.run ~eps_num:1 ~eps_den:2 inst)
      .Dsf_core.Det_sublinear.ledger;
  row "Rand_dsf (1 rep)"
    (Dsf_core.Rand_dsf.run ~repetitions:1 ~rng:(Rng.create 2) inst)
      .Dsf_core.Rand_dsf.ledger;
  row "Khan et al. (1 rep)"
    (Dsf_baseline.Khan_etal.run ~repetitions:1 ~rng:(Rng.create 3) inst)
      .Dsf_baseline.Khan_etal.ledger;
  row "GKP MST" (Dsf_baseline.Mst_gkp.run g).Dsf_baseline.Mst_gkp.ledger;
  let terms = Instance.terminals inst in
  row "CF/Mehlhorn Steiner tree"
    (Dsf_baseline.Steiner_tree_distributed.run g ~terminals:terms)
      .Dsf_baseline.Steiner_tree_distributed.ledger;
  verdict "E15" !ok

let run_all ~jobs () =
  e1 ~jobs ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e14 ~jobs ();
  e15 ();
  f1 ()
