(* Ablation experiments: each isolates one design choice DESIGN.md calls
   out and measures what it buys.  A1 = pipelining, A2 = repetition
   amplification, A3 = forest-level sharing, A4 = the ε knob, A6 = the
   Fault.harden retransmission overhead, E12 = the Lemma 3.4 consistency
   check (Ω(s) even at D = 2). *)

module Graph = Dsf_graph.Graph
module Gen = Dsf_graph.Gen
module Instance = Dsf_graph.Instance
module Exact = Dsf_graph.Exact
module Ledger = Dsf_congest.Ledger
module Stats = Dsf_util.Stats
module Rng = Dsf_util.Rng
module Pool = Dsf_util.Pool

let header title claim =
  Format.printf "@.=== %s ===@.question: %s@." title claim

let verdict name ok =
  Format.printf "--> %s: %s@." name (if ok then "PASS" else "FAIL")

(* ------------------------------------------------------------------- A1 *)

let a1 () =
  header "A1 (pipelining ablation)"
    "what does the Lemma 4.14 / Section 5 pipelining buy over one-at-a-time collection?";
  Format.printf "%8s %8s %18s %18s %8s@." "depth" "items" "pipelined rounds"
    "sequential rounds" "speedup";
  let ok = ref true in
  List.iter
    (fun (depth, nitems) ->
      let g = Gen.path (depth + 1) in
      let tree, _ = Dsf_congest.Bfs.build g ~root:0 in
      let items v = if v = depth then List.init nitems Fun.id else [] in
      let bits _ = 16 in
      let got_p, sp = Dsf_congest.Tree_ops.upcast g ~tree ~items ~bits in
      let got_s, ss =
        Dsf_congest.Tree_ops.upcast_sequential g ~tree ~items ~bits
      in
      assert (List.sort compare got_p = List.sort compare got_s);
      let speedup =
        float_of_int ss.Dsf_congest.Sim.rounds
        /. float_of_int sp.Dsf_congest.Sim.rounds
      in
      (* Pipelined ~ depth + items; sequential ~ depth * items. *)
      if
        sp.Dsf_congest.Sim.rounds > depth + nitems + 5
        || ss.Dsf_congest.Sim.rounds < (depth * (nitems - 1)) + 1
      then ok := false;
      Format.printf "%8d %8d %18d %18d %8.1f@." depth nitems
        sp.Dsf_congest.Sim.rounds ss.Dsf_congest.Sim.rounds speedup)
    [ 16, 16; 32, 32; 64, 16; 16, 64 ];
  verdict "A1" !ok

(* ------------------------------------------------------------------- A2 *)

let a2 ~jobs () =
  header "A2 (repetition amplification)"
    "how much does re-running the randomized first stage improve the solution (Markov amplification)?";
  Format.printf "%6s %14s %14s %14s@." "reps" "mean ratio" "max ratio"
    "mean rounds";
  (* Instance construction (exact-OPT DP per seed) and each reps-row's
     10-instance sweep fan out on the domain pool, in input order. *)
  let instances =
    Pool.map_chunked ~jobs
      (fun seed ->
        let r = Rng.create seed in
        let g = Gen.random_connected r ~n:30 ~extra_edges:25 ~max_w:10 in
        let labels = Gen.random_labels r ~n:30 ~t:8 ~k:3 in
        let inst = Instance.make_ic g labels in
        inst, Exact.steiner_forest_weight inst)
      (Array.init 10 (fun i -> 2000 + i))
  in
  let means = ref [] in
  List.iter
    (fun reps ->
      let ratios, rounds =
        List.split
          (Array.to_list
             (Pool.map_chunked ~jobs
                (fun (i, (inst, opt)) ->
                  let res =
                    Dsf_core.Rand_dsf.run ~repetitions:reps
                      ~rng:(Rng.create (3000 + i))
                      inst
                  in
                  ( float_of_int res.Dsf_core.Rand_dsf.weight /. float_of_int opt,
                    float_of_int (Ledger.total res.Dsf_core.Rand_dsf.ledger) ))
                (Array.mapi (fun i inst -> i, inst) instances)))
      in
      let _, hi = Stats.min_max ratios in
      means := Stats.mean ratios :: !means;
      Format.printf "%6d %14.3f %14.3f %14.0f@." reps (Stats.mean ratios) hi
        (Stats.mean rounds))
    [ 1; 3; 6 ];
  (* More repetitions should not hurt the mean (same per-rep seeds). *)
  let ok = match !means with [ m6; _; m1 ] -> m6 <= m1 +. 0.05 | _ -> false in
  verdict "A2" ok

(* ------------------------------------------------------------------- A3 *)

let a3 () =
  header "A3 (forest sharing)"
    "when does solving the components jointly (Steiner FOREST) beat per-component Steiner trees?";
  Format.printf "%6s %12s %16s %10s@." "seed" "joint (SF)" "per-comp (KMB)"
    "savings";
  let ok = ref true in
  List.iter
    (fun seed ->
      let r = Rng.create seed in
      (* Expensive backbone between clusters: components that all cross it
         should share the crossing. *)
      let g =
        Gen.clustered r ~clusters:3 ~cluster_size:12 ~intra_extra:10
          ~bridges:2 ~intra_w:3 ~bridge_w:40
      in
      let n = Graph.n g in
      (* Each component has one terminal in cluster 0 and one in cluster 2:
         all must cross both bridges. *)
      let k = 4 in
      let labels = Array.make n (-1) in
      for j = 0 to k - 1 do
        labels.(Rng.int r 12) <- j;
        let v = ref ((2 * 12) + Rng.int r 12) in
        while labels.(!v) >= 0 do
          v := (2 * 12) + Rng.int r 12
        done;
        labels.(!v) <- j
      done;
      (* Re-draw cluster-0 terminals that collided. *)
      for j = 0 to k - 1 do
        if not (Array.exists (fun l -> l = j) (Array.sub labels 0 12)) then begin
          let v = ref (Rng.int r 12) in
          while labels.(!v) >= 0 do
            v := Rng.int r 12
          done;
          labels.(!v) <- j
        end
      done;
      let inst = Instance.make_ic g labels in
      let joint = Dsf_core.Det_dsf.run inst in
      let separate =
        List.fold_left
          (fun acc (_, terms) ->
            acc
            + (Dsf_baseline.Steiner_tree.run g ~terminals:terms)
                .Dsf_baseline.Steiner_tree.weight)
          0 (Instance.components inst)
      in
      let savings =
        1.0
        -. (float_of_int joint.Dsf_core.Det_dsf.weight /. float_of_int separate)
      in
      if savings < -0.02 then ok := false;
      Format.printf "%6d %12d %16d %9.0f%%@." seed
        joint.Dsf_core.Det_dsf.weight separate (100. *. savings))
    [ 1; 2; 3; 4; 5 ];
  Format.printf
    "(per-component trees each pay the expensive bridges; the forest shares them)@.";
  verdict "A3" !ok

(* ------------------------------------------------------------------- A4 *)

let a4 () =
  header "A4 (the eps knob)"
    "Det_sublinear trades approximation for rounds: growth phases ~1/eps, quality ~2+eps";
  Format.printf "%8s %10s %14s %14s %12s@." "eps" "W/OPT" "growth phases"
    "merge phases" "rounds";
  let r = Rng.create 4242 in
  let g = Gen.random_connected r ~n:36 ~extra_edges:30 ~max_w:10 in
  let labels = Gen.random_labels r ~n:36 ~t:8 ~k:3 in
  let inst = Instance.make_ic g labels in
  let opt = Exact.steiner_forest_weight inst in
  let phases = ref [] in
  List.iter
    (fun (en, ed) ->
      let res = Dsf_core.Det_sublinear.run ~eps_num:en ~eps_den:ed inst in
      phases := res.Dsf_core.Det_sublinear.growth_phases :: !phases;
      Format.printf "%8.2f %10.3f %14d %14d %12d@."
        (float_of_int en /. float_of_int ed)
        (float_of_int res.Dsf_core.Det_sublinear.weight /. float_of_int opt)
        res.Dsf_core.Det_sublinear.growth_phases
        res.Dsf_core.Det_sublinear.merge_phase_count
        (Ledger.total res.Dsf_core.Det_sublinear.ledger))
    [ 1, 1; 1, 2; 1, 4; 1, 8 ];
  let ok =
    match !phases with
    | [ p8; p4; p2; p1 ] -> p8 > p4 && p4 > p2 && p2 > p1
    | _ -> false
  in
  verdict "A4" ok

(* ------------------------------------------------------------------ E12 *)

let e12 () =
  header "E12 (Lemma 3.4 consistency)"
    "with t=2, k=1 and D=2, rounds still grow ~linearly in s (no algorithm can dodge the Omega~(s) bound for s <= sqrt n)";
  Format.printf "%6s %4s %14s@." "s" "D" "Det_dsf rounds";
  let pts =
    List.map
      (fun s ->
        let inst = Dsf_lower_bound.Gadgets.st_hard ~s ~rho:3 in
        let d = Dsf_graph.Paths.diameter_unweighted inst.Instance.graph in
        let res = Dsf_core.Det_dsf.run inst in
        assert (res.Dsf_core.Det_dsf.weight = s);
        let rounds = Ledger.total res.Dsf_core.Det_dsf.ledger in
        Format.printf "%6d %4d %14d@." s d rounds;
        float_of_int s, float_of_int rounds)
      [ 16; 32; 64; 128 ]
  in
  (* A linear fit, because the additive setup constant skews log-log
     slopes at small s: rounds = a*s + c with a ~ 1 is the claim. *)
  let slope, intercept = Stats.linear_fit pts in
  Format.printf
    "linear fit: rounds = %.2f*s + %.1f (consistent with Omega~(s))@." slope
    intercept;
  verdict "E12" (slope >= 0.5)

(* ------------------------------------------------------------------- A5 *)

(* A5 tallies traffic through a per-run [?observer] closure over
   task-local arrays, so the three sizes fan out on the domain pool like
   every other sweep (the old global Trace/with_observer shim pinned this
   experiment to one domain). *)
let a5 ~jobs () =
  header "A5 (node congestion)"
    "does any node become a traffic hotspot?  max per-node traffic should stay within polylog of the average";
  Format.printf "%6s %12s %12s %14s@." "n" "messages" "avg/node"
    "hottest node";
  let rows =
    Pool.map_chunked ~jobs
      (fun n ->
        let r = Rng.create (1400 + n) in
        let g = Gen.random_connected r ~n ~extra_edges:n ~max_w:10 in
        let labels = Gen.random_labels r ~n ~t:12 ~k:4 in
        let inst = Instance.make_ic g labels in
        let per_node = Array.make n 0 in
        let messages = ref 0 and total_bits = ref 0 in
        let observer ~src ~dst ~bits =
          incr messages;
          total_bits := !total_bits + bits;
          per_node.(src) <- per_node.(src) + bits;
          per_node.(dst) <- per_node.(dst) + bits
        in
        let res =
          Dsf_core.Rand_dsf.run ~observer ~repetitions:1 ~rng:(Rng.create n)
            inst
        in
        let feasible =
          Instance.is_feasible inst res.Dsf_core.Rand_dsf.solution
        in
        n, !messages, !total_bits, per_node, feasible)
      [| 40; 80; 160 |]
  in
  let ok = ref true in
  Array.iter
    (fun (n, messages, total_bits, per_node, feasible) ->
      if not feasible then ok := false;
      let avg = 2. *. float_of_int total_bits /. float_of_int n in
      let hottest = Array.fold_left max 0 per_node in
      (* Hotspot factor bounded by ~log^2 n: the virtual-tree root and BFS
         root concentrate traffic, but only polylogarithmically. *)
      let logn = log (float_of_int n) /. log 2. in
      if float_of_int hottest > 12. *. logn *. avg then ok := false;
      Format.printf "%6d %12d %12.0f %14d@." n messages avg hottest)
    rows;
  verdict "A5" !ok

(* ------------------------------------------------------------------- A6 *)

let a6 ~jobs () =
  header "A6 (hardening overhead vs drop probability)"
    "what do the sequence numbers, acks and retransmissions of Fault.harden cost as the network gets lossier?";
  Format.printf "%8s %10s %10s %10s %10s %10s %8s@." "drop p" "rounds"
    "x rounds" "messages" "x msgs" "retrans" "masked";
  let r = Rng.create 4646 in
  let g = Gen.random_connected r ~n:28 ~extra_edges:24 ~max_w:8 in
  let proto = Dsf_congest.Leader.protocol g in
  let lossless, base = Dsf_congest.Sim.run g proto in
  (* The plan's PRF makes every point deterministic, so the sweep fans
     out on the pool and still prints in p order. *)
  let rows =
    Pool.map_chunked ~jobs
      (fun p ->
        let plan =
          if p = 0.0 then Dsf_congest.Fault.empty
          else
            Dsf_congest.Fault.plan ~drop:p ~duplicate:(p /. 2.)
              ~seed:(4600 + int_of_float (p *. 100.))
              ()
        in
        let states, stats = Dsf_congest.Fault.run_hardened ~plan g proto in
        p, states, stats)
      [| 0.0; 0.05; 0.1; 0.2; 0.3 |]
  in
  (* The hardening overhead goes on a ledger like any other simulated
     phase, so the cost is recorded in the same currency as the
     algorithms' round budgets. *)
  let ledger = Ledger.create () in
  Ledger.add ledger Ledger.Simulated "A6: lossless baseline"
    base.Dsf_congest.Sim.rounds;
  let ok = ref true in
  let max_p_retrans = ref 0 in
  Array.iter
    (fun (p, states, (stats : Dsf_congest.Sim.stats)) ->
      let masked = states = lossless in
      if not masked then ok := false;
      if p >= 0.29 then max_p_retrans := stats.Dsf_congest.Sim.retransmissions;
      Ledger.add ledger Ledger.Simulated
        (Printf.sprintf "A6: hardened drop=%.2f" p)
        stats.Dsf_congest.Sim.rounds;
      Format.printf "%8.2f %10d %10.1f %10d %10.1f %10d %8s@." p
        stats.Dsf_congest.Sim.rounds
        (float_of_int stats.Dsf_congest.Sim.rounds
        /. float_of_int base.Dsf_congest.Sim.rounds)
        stats.Dsf_congest.Sim.messages
        (float_of_int stats.Dsf_congest.Sim.messages
        /. float_of_int base.Dsf_congest.Sim.messages)
        stats.Dsf_congest.Sim.retransmissions
        (if masked then "yes" else "NO"))
    rows;
  Format.printf
    "lossless %d rounds; ledger total across the sweep %d simulated rounds@."
    base.Dsf_congest.Sim.rounds (Ledger.total ledger);
  (* PASS = every plan fully masked AND lossiness visibly costs resends. *)
  verdict "A6" (!ok && !max_p_retrans > 0)

(* ------------------------------------------------------------------ E13 *)

let e13 ~jobs () =
  header "E13 (related work: MST is Theta~(D + sqrt n))"
    "the GKP-style MST (fragments + pipelined filter) scales ~sqrt n while the naive pipelined MST scales ~n";
  Format.printf "%6s %6s %12s %14s %12s@." "n" "D" "GKP rounds"
    "pipelined rounds" "fragments";
  let pts_gkp = ref [] and pts_plain = ref [] in
  let exact = ref true in
  (* Both MSTs per size on the pool; the n=400 point dominates, so this
     sweep mostly buys overlap of the smaller sizes with it. *)
  let rows =
    Pool.map_chunked ~jobs
      (fun n ->
        let r = Rng.create (1500 + n) in
        let g = Gen.random_connected r ~n ~extra_edges:n ~max_w:40 in
        let gkp = Dsf_baseline.Mst_gkp.run g in
        let plain = Dsf_baseline.Mst_distributed.run g in
        let d = Dsf_graph.Paths.diameter_unweighted g in
        n, g, gkp, plain, d)
      [| 64; 144; 256; 400 |]
  in
  Array.iter
    (fun (n, g, gkp, plain, d) ->
      if
        gkp.Dsf_baseline.Mst_gkp.weight <> Dsf_graph.Mst.weight g
        || plain.Dsf_baseline.Mst_distributed.weight <> Dsf_graph.Mst.weight g
      then exact := false;
      let gr = Ledger.total gkp.Dsf_baseline.Mst_gkp.ledger in
      let pr = plain.Dsf_baseline.Mst_distributed.rounds in
      Format.printf "%6d %6d %12d %14d %12d@." n d gr pr
        gkp.Dsf_baseline.Mst_gkp.fragments_after_phase1;
      pts_gkp := (float_of_int n, float_of_int gr) :: !pts_gkp;
      pts_plain := (float_of_int n, float_of_int pr) :: !pts_plain)
    rows;
  let sg = Stats.loglog_slope !pts_gkp and sp = Stats.loglog_slope !pts_plain in
  Format.printf
    "log-log slope rounds-vs-n: GKP=%.2f (~0.5 expected) pipelined=%.2f (~1 expected); both exact=%b@."
    sg sp !exact;
  verdict "E13" (!exact && sg < 0.75 && sp > 0.85)

let run_all ~jobs () =
  a1 ();
  a2 ~jobs ();
  a3 ();
  a4 ();
  a5 ~jobs ();
  a6 ~jobs ();
  e12 ();
  e13 ~jobs ()
