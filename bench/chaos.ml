(* Chaos smoke for CI: every stock protocol, hardened and run under a
   fixed drop/duplication plan, must reproduce its lossless final states
   in-process.  bin/ci.sh runs this on every change and any divergence
   exits nonzero. *)

module Graph = Dsf_graph.Graph
module Gen = Dsf_graph.Gen
module Sim = Dsf_congest.Sim
module Fault = Dsf_congest.Fault

let run () =
  Format.printf
    "=== chaos smoke: hardened = lossless under a fixed drop plan ===@.";
  let r = Dsf_util.Rng.create 99 in
  let g = Gen.random_connected r ~n:24 ~extra_edges:20 ~max_w:8 in
  let plan = Fault.plan ~drop:0.15 ~duplicate:0.1 ~seed:4242 () in
  let check name proto =
    let lossless, base = Sim.run g proto in
    let hardened, stats = Fault.run_hardened ~plan g proto in
    let masked = lossless = hardened in
    Format.printf "%-14s %-8s rounds %4d -> %4d, retrans %5d, dropped %5d@."
      name
      (if masked then "masked" else "DIVERGED")
      base.Sim.rounds stats.Sim.rounds stats.Sim.retransmissions
      stats.Sim.dropped;
    masked
  in
  (* Explicit lets: list literals evaluate right-to-left, which would
     scramble the printed order. *)
  let bfs = check "bfs" (Dsf_congest.Bfs.protocol ~root:0) in
  let bf =
    check "bellman-ford"
      (Dsf_congest.Bellman_ford.protocol g ~sources:[ 0, 0; 7, 2 ])
  in
  let exch = check "exchange" (Dsf_congest.Exchange.protocol ~payload_bits:9) in
  let leader = check "leader" (Dsf_congest.Leader.protocol g) in
  let results = [ bfs; bf; exch; leader ] in
  if List.for_all Fun.id results then
    Format.printf "chaos smoke: all protocols masked@."
  else begin
    Format.eprintf
      "chaos smoke: a hardened run diverged from its lossless baseline@.";
    exit 1
  end
