(* Chaos smoke for CI: every stock protocol, hardened and run under a
   fixed drop/duplication plan, must reproduce its lossless final states
   in-process.  bin/ci.sh runs this on every change and any divergence
   exits nonzero.

   [soak] is the crash-recovery counterpart at CI scale: a seeded
   plan-class x protocol x engine matrix at n=1024 where every leg runs
   hardened with a checkpointed-recovery contract and must land on the
   lossless final states.  A round-limit abort prints the structured
   post-mortem before failing, so a retransmit livelock in CI is
   diagnosable from the log alone. *)

module Graph = Dsf_graph.Graph
module Gen = Dsf_graph.Gen
module Sim = Dsf_congest.Sim
module Fault = Dsf_congest.Fault

let run () =
  Format.printf
    "=== chaos smoke: hardened = lossless under a fixed drop plan ===@.";
  let r = Dsf_util.Rng.create 99 in
  let g = Gen.random_connected r ~n:24 ~extra_edges:20 ~max_w:8 in
  let plan = Fault.plan ~drop:0.15 ~duplicate:0.1 ~seed:4242 () in
  let check name proto =
    let lossless, base = Sim.run g proto in
    let hardened, stats = Fault.run_hardened ~plan g proto in
    let masked = lossless = hardened in
    Format.printf "%-14s %-8s rounds %4d -> %4d, retrans %5d, dropped %5d@."
      name
      (if masked then "masked" else "DIVERGED")
      base.Sim.rounds stats.Sim.rounds stats.Sim.retransmissions
      stats.Sim.dropped;
    masked
  in
  (* Explicit lets: list literals evaluate right-to-left, which would
     scramble the printed order. *)
  let bfs = check "bfs" (Dsf_congest.Bfs.protocol ~root:0) in
  let bf =
    check "bellman-ford"
      (Dsf_congest.Bellman_ford.protocol g ~sources:[ 0, 0; 7, 2 ])
  in
  let exch = check "exchange" (Dsf_congest.Exchange.protocol ~payload_bits:9) in
  let leader = check "leader" (Dsf_congest.Leader.protocol g) in
  let results = [ bfs; bf; exch; leader ] in
  if List.for_all Fun.id results then
    Format.printf "chaos smoke: all protocols masked@."
  else begin
    Format.eprintf
      "chaos smoke: a hardened run diverged from its lossless baseline@.";
    exit 1
  end

(* A protocol under soak, with its lossless baseline erased to a
   comparable value (final states are existentially typed per protocol,
   so each entry closes over its own comparison). *)
type soak_leg = {
  sname : string;
  run :
    'a.
    flat:bool ->
    jobs:int ->
    chaos:Fault.chaos ->
    (masked:bool -> retrans:int -> dropped:int -> 'a) ->
    'a;
}

let soak () =
  let n = 1024 in
  Format.printf
    "=== chaos soak: plan class x protocol x engine, crash recovery at \
     n=%d ===@."
    n;
  let r = Dsf_util.Rng.create 4242 in
  let g = Gen.random_connected r ~n ~extra_edges:n ~max_w:8 in
  (* Early, overlapping fault windows on real edges/nodes so every class
     actually bites before the protocols quiesce. *)
  let edge i = let e = Graph.edge g (i mod Graph.m g) in e.Graph.u, e.Graph.v in
  let outages =
    List.init 6 (fun i ->
        let u, v = edge (137 * (i + 1)) in
        u, v, 1 + i, 4 + (2 * i))
  in
  let crashes =
    List.init 5 (fun i -> (211 * (i + 1)) mod n, 2 + i, 5 + (2 * i))
  in
  let classes =
    [
      "drop+dup", Fault.plan ~drop:0.08 ~duplicate:0.04 ~seed:11 ();
      "outage", Fault.plan ~drop:0.02 ~link_down:outages ~seed:12 ();
      "crash", Fault.plan ~drop:0.02 ~crashes ~seed:13 ();
      "full", Fault.chaos_plan ~seed:14 g;
    ]
  in
  let max_rounds = 200_000 in
  let mk sname proto =
    (* Lossless baseline once per protocol; every hardened leg must
       reproduce it exactly. *)
    let lossless, _ = Sim.run g proto in
    {
      sname;
      run =
        (fun ~flat ~jobs ~chaos k ->
          let states, stats =
            Fault.sim_run ~max_rounds ~flat ~jobs ~chaos
              ~recovery:(Fault.immutable ()) g proto
          in
          k ~masked:(states = lossless) ~retrans:stats.Sim.retransmissions
            ~dropped:stats.Sim.dropped);
    }
  in
  let protocols =
    [
      mk "bfs" (Dsf_congest.Bfs.protocol ~root:0);
      mk "bellman-ford"
        (Dsf_congest.Bellman_ford.protocol g ~sources:[ 0, 0; n / 2, 2 ]);
      mk "exchange" (Dsf_congest.Exchange.protocol ~payload_bits:9);
      mk "leader" (Dsf_congest.Leader.protocol g);
    ]
  in
  let engines = [ "classic", false, 1; "flat j1", true, 1; "flat j4", true, 4 ] in
  let failures = ref 0 in
  List.iter
    (fun (cname, plan) ->
      let chaos = Fault.chaos plan in
      List.iter
        (fun leg ->
          List.iter
            (fun (ename, flat, jobs) ->
              match
                leg.run ~flat ~jobs ~chaos
                  (fun ~masked ~retrans ~dropped ->
                    Format.printf
                      "%-9s %-14s %-8s %-8s retrans %6d, dropped %6d@."
                      cname leg.sname ename
                      (if masked then "masked" else "DIVERGED")
                      retrans dropped;
                    if not masked then incr failures)
              with
              | () -> ()
              | exception Sim.Round_limit a ->
                  Format.eprintf
                    "chaos soak: %s/%s/%s hit the round limit@.%a@." cname
                    leg.sname ename (Dsf_congest.Trace.pp_postmortem ?recorder:None) a;
                  incr failures)
            engines)
        protocols)
    classes;
  if !failures = 0 then
    Format.printf "chaos soak: all %d legs recovered to lossless states@."
      (List.length classes * List.length protocols * List.length engines)
  else begin
    Format.eprintf "chaos soak: %d legs diverged@." !failures;
    exit 1
  end
