(* The linter proper: parse with the installed compiler's frontend, walk
   the Parsetree once per file with an Ast_iterator, and let each rule
   pattern-match on the nodes it cares about.  All mutable state lives in
   a per-file [ctx] record allocated in [check_string] — the linter obeys
   its own global-state rule. *)

type zone = Lib | Bin | Bench | Test | Other

(* Leading ./ and ../ segments do not change which repo file a path
   names, but they would defeat the zone and allowlist lookups (scans may
   run from a subdirectory, e.g. the test runner). *)
let rec normalize p =
  if String.starts_with ~prefix:"./" p then
    normalize (String.sub p 2 (String.length p - 2))
  else if String.starts_with ~prefix:"../" p then
    normalize (String.sub p 3 (String.length p - 3))
  else p

let zone_of_path p =
  match String.split_on_char '/' (normalize p) with
  | "lib" :: _ -> Lib
  | "bin" :: _ -> Bin
  | "bench" :: _ -> Bench
  | "test" :: _ -> Test
  | _ -> Other

type rule = { id : string; synopsis : string; rationale : string }

let rule_global_state = "global-state"
let rule_sim_globals = "sim-globals"
let rule_nondet = "nondet"
let rule_congest = "congest-discipline"
let rule_catch_all = "catch-all"
let rule_unsafe = "unsafe-array"
let rule_fault_alias = "deprecated-fault-alias"

let rules =
  [
    {
      id = rule_global_state;
      synopsis = "toplevel mutable state in a library module";
      rationale =
        "the domain-safety contract (HACKING.md): no per-run mutable state \
         in the library, or concurrent pool tasks race on it";
    };
    {
      id = rule_sim_globals;
      synopsis = "use of a deprecated process-wide Sim shim";
      rationale =
        "set_observer / with_observer / use_reference_engine mutate \
         process-wide state; per-run ?observer / ?reference are the \
         domain-safe replacements";
    };
    {
      id = rule_nondet;
      synopsis = "nondeterminism source (global Random, wall clock, Domain.self)";
      rationale =
        "results must replay bit-identically from explicit seeds (fault \
         plans, jobs-invariance, qcheck repros); wall-clock reads belong \
         in bench/ only";
    };
    {
      id = rule_congest;
      synopsis = "message traffic bypassing the accounted Sim send path";
      rationale =
        "per-edge bit counts are the measured quantity of every \
         round/congestion experiment; stepping a protocol or touching \
         inbox/outbox structures outside sim.ml smuggles unaccounted bits";
    };
    {
      id = rule_catch_all;
      synopsis = "catch-all exception handler";
      rationale =
        "a bare `with _ ->' can swallow Pool.Nested_use or \
         Sim.Round_limit and turn a protocol bug into silent data \
         corruption";
    };
    {
      id = rule_unsafe;
      synopsis = "bounds-unchecked array/bytes access (unsafe_get/unsafe_set)";
      rationale =
        "an out-of-range unsafe access is silent memory corruption, not \
         an exception; every use must sit behind an explicit bounds check \
         and carry an inline [@lint.allow \"unsafe-array\"] pointing at it";
    };
    {
      id = rule_fault_alias;
      synopsis = "use of the deprecated Fault.drop_only classifier";
      rationale =
        "drop_only predates the crash-recovery layer and answers the \
         wrong question — whether a plan is maskable now depends on \
         whether the run carries a recovery contract; \
         Fault.maskable ?with_recovery is the one classifier";
    };
  ]

(* Files allowed to touch the deprecated Sim globals: the defining module
   and the differential suites whose whole point is driving entry points
   through both engines / the global tap.  Everything else must use the
   per-run parameters or carry an inline [@lint.allow "sim-globals"]. *)
let sim_globals_allowlist =
  [ "lib/congest/sim.ml"; "test/test_sim_equiv.ml"; "test/test_lower_bound.ml" ]

(* The library files that may read the wall clock: telemetry's [now_ns]
   is the sanctioned (and injectable) clock every other module profiles
   through, and the flight recorder stamps its capture timestamp (a
   metadata field, never an event — injectable via [?now]) at creation.
   Keeping the reads centralized is what makes traces and flightlogs
   deterministic under injected time. *)
let wall_clock_allowlist = [ "lib/congest/telemetry.ml"; "lib/congest/recorder.ml" ]

(* The one library file that may use bounds-unchecked accessors without an
   inline allow: [Dsf_util.Pack] is the repo's sanctioned bit-twiddling
   site — every packed-word layout, range check, and shift lives there, so
   protocol code manipulates fields through its width-checked API instead
   of hand-rolled masks. *)
let pack_allowlist = [ "lib/util/pack.ml" ]

(* The one file that may construct and mutate inbox/outbox structures and
   invoke protocol [step] fields: the simulator itself. *)
let congest_exempt = [ "lib/congest/sim.ml" ]

type ctx = {
  file : string;
  zone : zone;
  mutable active : string list;  (* suppression scopes, innermost first *)
  mutable in_value : bool;  (* inside an expression (not module toplevel) *)
  mutable mutable_labels : string list;
      (* record labels declared [mutable] in this file *)
  mutable findings : Finding.t list;
}

let emit ctx ~(loc : Location.t) ~rule ~message ~hint =
  if not (List.mem "*" ctx.active || List.mem rule ctx.active) then begin
    let p = loc.Location.loc_start in
    ctx.findings <-
      {
        Finding.file = ctx.file;
        line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        rule;
        message;
        hint;
      }
      :: ctx.findings
  end

(* ------------------------------------------------------------ helpers *)

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply _ -> []

let path_str lid = String.concat "." (flatten_lid lid)

let last_comp lid =
  match List.rev (flatten_lid lid) with [] -> "" | s :: _ -> s

let allow_ids (attrs : Parsetree.attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> "lint.allow" then []
      else
        match a.attr_payload with
        | Parsetree.PStr [] -> [ "*" ]
        | Parsetree.PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                      _ );
                _;
              };
            ] ->
            String.split_on_char ' ' s |> List.filter (fun x -> x <> "")
        | _ -> [ "*" ] (* malformed payload: fail open, suppress all *))
    attrs

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------- rule bodies *)

(* Syntactic creators of mutable state.  [Array.init]/[Hashtbl.of_seq]
   etc. are deliberately absent: toplevel tables built once and only read
   are a (risky but common) idiom; the listed constructors have no
   read-only use. *)
let mutable_creators =
  [
    "ref"; "Stdlib.ref"; "Hashtbl.create"; "Buffer.create"; "Atomic.make";
    "Queue.create"; "Stack.create"; "Array.make"; "Array.create_float";
    "Bytes.create"; "Bytes.make"; "Weak.create"; "Mutex.create";
    "Condition.create"; "Semaphore.Counting.make"; "Semaphore.Binary.make";
    "Dynarray.create";
  ]

let rec peel (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_lazy e
  | Pexp_open (_, e) ->
      peel e
  | _ -> e

let binding_name (p : Parsetree.pattern) =
  let rec go (p : Parsetree.pattern) =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) -> go p
    | _ -> None
  in
  go p

let check_toplevel_binding ctx (vb : Parsetree.value_binding) =
  if ctx.zone = Lib then
    match binding_name vb.pvb_pat with
    | None -> ()
    | Some name -> (
        match (peel vb.pvb_expr).pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
          when List.mem (path_str txt) mutable_creators ->
            emit ctx ~loc:vb.pvb_loc ~rule:rule_global_state
              ~message:
                (Printf.sprintf
                   "toplevel mutable binding `%s' (created by %s) in a \
                    library module"
                   name (path_str txt))
              ~hint:
                "allocate per run (inside the function that uses it), or \
                 justify process-global state with [@@lint.allow \
                 \"global-state\"] and a comment"
        | Pexp_array _ ->
            emit ctx ~loc:vb.pvb_loc ~rule:rule_global_state
              ~message:
                (Printf.sprintf
                   "toplevel mutable array literal `%s' in a library module"
                   name)
              ~hint:
                "allocate per run, or justify with [@@lint.allow \
                 \"global-state\"] and a comment"
        | Pexp_record (fields, _)
          when List.exists
                 (fun ((lid : _ Location.loc), _) ->
                   List.mem (last_comp lid.txt) ctx.mutable_labels)
                 fields ->
            emit ctx ~loc:vb.pvb_loc ~rule:rule_global_state
              ~message:
                (Printf.sprintf
                   "toplevel record `%s' with mutable field(s) in a \
                    library module"
                   name)
              ~hint:
                "allocate per run, or justify with [@@lint.allow \
                 \"global-state\"] and a comment"
        | _ -> ())

let sim_shims =
  [ "set_observer"; "with_observer"; "use_reference_engine"; "use_flat_engine" ]

(* Modules whose [unsafe_*] accessors skip bounds checks.  [Obj.magic]-level
   tricks are out of scope; these are the ones that turn an off-by-one into
   silent memory corruption. *)
let unsafe_modules = [ "Array"; "Bytes"; "String"; "Float" ]

let check_ident ctx ~loc lid =
  let p = path_str lid in
  let comps = flatten_lid lid in
  (* sim-globals: any qualified reference to a deprecated shim. *)
  if
    List.mem (last_comp lid) sim_shims
    && List.mem "Sim" comps
    && not (List.mem ctx.file sim_globals_allowlist)
  then
    emit ctx ~loc ~rule:rule_sim_globals
      ~message:(Printf.sprintf "use of deprecated global Sim shim `%s'" p)
      ~hint:
        "pass ?observer / ?reference / ?flat to the run instead \
         (domain-safe); differential tests may suppress with [@lint.allow \
         \"sim-globals\"]";
  (* unsafe-array: every bounds-unchecked access needs an inline allow. *)
  if
    String.starts_with ~prefix:"unsafe_" (last_comp lid)
    && List.exists (fun m -> List.mem m comps) unsafe_modules
    && not (List.mem ctx.file pack_allowlist)
  then
    emit ctx ~loc ~rule:rule_unsafe
      ~message:(Printf.sprintf "bounds-unchecked access `%s'" p)
      ~hint:
        "use the checked accessor, or keep the access behind an explicit \
         bounds check and mark the proven site with [@lint.allow \
         \"unsafe-array\"] — or route the bit manipulation through \
         Dsf_util.Pack, the sanctioned packing site";
  (* deprecated-fault-alias: the pre-recovery plan classifier. *)
  if last_comp lid = "drop_only" && List.mem "Fault" comps then
    emit ctx ~loc ~rule:rule_fault_alias
      ~message:"use of deprecated plan classifier `Fault.drop_only'"
      ~hint:
        "ask Fault.maskable ?with_recovery instead — maskability now \
         depends on the run's recovery contract, not just the plan; \
         alias-semantics tests may suppress with [@lint.allow \
         \"deprecated-fault-alias\"]";
  (* nondet: seeding/IO-free determinism contract. *)
  (match p with
  | "Random.self_init" | "Random.init" | "Random.full_init" ->
      emit ctx ~loc ~rule:rule_nondet
        ~message:(Printf.sprintf "`%s' makes every run unrepeatable" p)
        ~hint:
          "derive randomness from an explicit seed via Dsf_util.Rng \
           (splittable, replayable)"
  | _ when
      String.starts_with ~prefix:"Random." p
      && (not (String.starts_with ~prefix:"Random.State." p))
      && ctx.zone = Lib ->
      emit ctx ~loc ~rule:rule_nondet
        ~message:
          (Printf.sprintf
             "global `%s' draws from shared process-wide RNG state" p)
        ~hint:
          "thread a Dsf_util.Rng.t (or Random.State.t) so results replay \
           from a seed and parallel trials stay independent"
  | "Unix.gettimeofday" | "Unix.time" | "Sys.time"
    when (ctx.zone = Lib || ctx.zone = Bin)
         && not (List.mem ctx.file wall_clock_allowlist) ->
      emit ctx ~loc ~rule:rule_nondet
        ~message:(Printf.sprintf "wall-clock read `%s' outside bench/" p)
        ~hint:
          "measured quantities (rounds, bits) must not depend on time; \
           profile through Dsf_congest.Telemetry (its now_ns is the one \
           sanctioned, injectable clock) or keep timing in bench/"
  | "Domain.self" when ctx.zone = Lib ->
      emit ctx ~loc ~rule:rule_nondet
        ~message:"`Domain.self' used in library code"
        ~hint:
          "results must not depend on which pool domain ran the task; \
           key per-trial data by trial index instead"
  | _ -> ())

let rec pattern_catches_all (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pattern_catches_all p
  | Ppat_or (a, b) -> pattern_catches_all a || pattern_catches_all b
  | _ -> false

(* [with e -> ...] also catches everything, but binding the exception is
   the sanctioned idiom *when the handler re-raises what it does not
   handle* — so a variable pattern is only a finding if the body never
   re-raises. *)
let rec pattern_binds_all (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pattern_binds_all p
  | _ -> false

(* Suppressions written on the handler pattern itself
   ([with _ [@lint.allow "catch-all"] -> ...]) — the natural spot for
   this rule, since the pattern is what the finding points at. *)
let rec pattern_allows (p : Parsetree.pattern) =
  allow_ids p.ppat_attributes
  @
  match p.ppat_desc with
  | Ppat_alias (q, _) | Ppat_constraint (q, _) | Ppat_exception q ->
      pattern_allows q
  | Ppat_or (a, b) -> pattern_allows a @ pattern_allows b
  | _ -> []

let pattern_allowed rule p =
  let ids = pattern_allows p in
  List.mem "*" ids || List.mem rule ids

let reraise_idents =
  [
    "raise"; "raise_notrace"; "Stdlib.raise"; "Stdlib.raise_notrace";
    "Printexc.raise_with_backtrace";
  ]

let body_reraises (e : Parsetree.expression) =
  let found = ref false in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      expr =
        (fun it ex ->
          (match ex.pexp_desc with
          | Pexp_ident { txt; _ } when List.mem (path_str txt) reraise_idents
            ->
              found := true
          | _ -> ());
          default.expr it ex);
    }
  in
  it.Ast_iterator.expr it e;
  !found

let catch_all_msg =
  "catch-all exception handler can swallow Pool.Nested_use and \
   Sim.Round_limit"

let catch_all_hint =
  "match the specific exceptions you expect, or bind and re-raise \
   unknown ones; justify intentional firewalls with [@lint.allow \
   \"catch-all\"]"

let check_expr ctx (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; loc } -> check_ident ctx ~loc txt
  | Pexp_try (_, cases) ->
      List.iter
        (fun (c : Parsetree.case) ->
          if pattern_allowed rule_catch_all c.pc_lhs then ()
          else if pattern_catches_all c.pc_lhs then
            emit ctx ~loc:c.pc_lhs.ppat_loc ~rule:rule_catch_all
              ~message:catch_all_msg ~hint:catch_all_hint
          else if pattern_binds_all c.pc_lhs && not (body_reraises c.pc_rhs)
          then
            emit ctx ~loc:c.pc_lhs.ppat_loc ~rule:rule_catch_all
              ~message:
                "handler binds every exception and never re-raises"
              ~hint:catch_all_hint)
        cases
  | Pexp_match (_, cases) ->
      List.iter
        (fun (c : Parsetree.case) ->
          match c.pc_lhs.ppat_desc with
          | _ when pattern_allowed rule_catch_all c.pc_lhs -> ()
          | Ppat_exception p when pattern_catches_all p ->
              emit ctx ~loc:p.ppat_loc ~rule:rule_catch_all
                ~message:catch_all_msg ~hint:catch_all_hint
          | Ppat_exception p
            when pattern_binds_all p && not (body_reraises c.pc_rhs) ->
              emit ctx ~loc:p.ppat_loc ~rule:rule_catch_all
                ~message:
                  "handler binds every exception and never re-raises"
                ~hint:catch_all_hint
          | _ -> ())
        cases
  | Pexp_setfield (_, { txt; loc }, _)
    when (let f = String.lowercase_ascii (last_comp txt) in
          contains_sub ~sub:"inbox" f || contains_sub ~sub:"outbox" f)
         && not (List.mem ctx.file congest_exempt) ->
      emit ctx ~loc ~rule:rule_congest
        ~message:
          (Printf.sprintf
             "direct mutation of message-buffer field `%s' outside the \
              simulator"
             (last_comp txt))
        ~hint:
          "all traffic must flow through Sim.run's accounted send path so \
           per-edge bit counts stay honest"
  | Pexp_apply ({ pexp_desc = Pexp_field (_, { txt; loc }); _ }, _)
    when last_comp txt = "step" && not (List.mem ctx.file congest_exempt) ->
      emit ctx ~loc ~rule:rule_congest
        ~message:
          "direct invocation of a protocol's `step' field bypasses the \
           simulator's accounting"
        ~hint:
          "run protocols through Sim.run; combinators that wrap an inner \
           step inside their own accounted step may use [@lint.allow \
           \"congest-discipline\"]"
  | _ -> ()

(* --------------------------------------------------------- traversal *)

let make_iterator ctx =
  let default = Ast_iterator.default_iterator in
  let with_allows allows f =
    if allows = [] then f ()
    else begin
      let saved = ctx.active in
      ctx.active <- allows @ ctx.active;
      f ();
      ctx.active <- saved
    end
  in
  let expr it (e : Parsetree.expression) =
    with_allows (allow_ids e.pexp_attributes) @@ fun () ->
    let was = ctx.in_value in
    ctx.in_value <- true;
    check_expr ctx e;
    default.expr it e;
    ctx.in_value <- was
  in
  let value_binding it (vb : Parsetree.value_binding) =
    with_allows (allow_ids vb.pvb_attributes) @@ fun () ->
    if not ctx.in_value then check_toplevel_binding ctx vb;
    default.value_binding it vb
  in
  let type_declaration it (td : Parsetree.type_declaration) =
    (match td.ptype_kind with
    | Ptype_record labels ->
        List.iter
          (fun (ld : Parsetree.label_declaration) ->
            if ld.pld_mutable = Mutable then
              ctx.mutable_labels <- ld.pld_name.txt :: ctx.mutable_labels)
          labels
    | _ -> ());
    default.type_declaration it td
  in
  (* Handle items manually so a floating [@@@lint.allow] scopes over the
     remainder of its enclosing structure (module), not just one item. *)
  let structure it (items : Parsetree.structure) =
    let saved = ctx.active in
    List.iter
      (fun (si : Parsetree.structure_item) ->
        match si.pstr_desc with
        | Pstr_attribute a -> ctx.active <- allow_ids [ a ] @ ctx.active
        | Pstr_eval (e, attrs) ->
            with_allows (allow_ids attrs) @@ fun () -> it.Ast_iterator.expr it e
        | _ -> default.structure_item it si)
      items;
    ctx.active <- saved
  in
  { default with expr; value_binding; type_declaration; structure }

let check_string ~file src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  match Parse.implementation lexbuf with
  | str ->
      let ctx =
        {
          file = normalize file;
          zone = zone_of_path file;
          active = [];
          in_value = false;
          mutable_labels = [];
          findings = [];
        }
      in
      let it = make_iterator ctx in
      it.Ast_iterator.structure it str;
      Ok (List.sort Finding.compare ctx.findings)
  (* Intentional firewall: every parse failure becomes an [Error] the
     driver reports per file; nothing here is worth killing a scan for. *)
  | exception (exn [@lint.allow "catch-all"]) -> (
      match Location.error_of_exn exn with
      | Some (`Ok report) ->
          Error (Format.asprintf "%a" Location.print_report report)
      | _ -> Error (file ^ ": " ^ Printexc.to_string exn))

let check_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | src -> check_string ~file:path src
  | exception Sys_error msg -> Error msg

(* ----------------------------------------------------------- walking *)

let skip_dir name =
  name = "" || name.[0] = '.' || name.[0] = '_' (* _build and friends *)

let rec walk acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if skip_dir entry then acc else walk acc (Filename.concat path entry))
      acc
      (let es = Sys.readdir path in
       Array.sort compare es;
       es)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let scan ~roots =
  let files = List.rev (List.fold_left walk [] roots) in
  let findings, errors =
    List.fold_left
      (fun (fs, es) file ->
        match check_file file with
        | Ok f -> (f :: fs, es)
        | Error e -> (fs, e :: es))
      ([], []) files
  in
  (List.sort Finding.compare (List.concat findings), List.rev errors)

(* ---------------------------------------------------------- baseline *)

module Baseline = struct
  type entry = { bfile : string; brule : string; bmessage : string }

  let load path =
    if not (Sys.file_exists path) then []
    else
      In_channel.with_open_text path In_channel.input_lines
      |> List.filter_map (fun line ->
             let line = String.trim line in
             if line = "" || line.[0] = '#' then None
             else
               match String.split_on_char '\t' line with
               | [ bfile; brule; bmessage ] -> Some { bfile; brule; bmessage }
               | _ -> None)

  let apply entries findings =
    let indexed = List.mapi (fun i e -> (i, e)) entries in
    let used = Array.make (List.length entries) false in
    let covered (f : Finding.t) =
      List.exists
        (fun (i, e) ->
          let m =
            e.bfile = f.Finding.file && e.brule = f.Finding.rule
            && e.bmessage = f.Finding.message
          in
          if m then used.(i) <- true;
          m)
        indexed
    in
    let kept = List.filter (fun f -> not (covered f)) findings in
    let stale = List.filteri (fun i _ -> not used.(i)) entries in
    (kept, List.length findings - List.length kept, stale)

  let save path findings =
    Out_channel.with_open_text path @@ fun oc ->
    output_string oc
      "# dsf-lint baseline: grandfathered findings, one per line as\n\
       # file<TAB>rule<TAB>message.  Regenerate with:\n\
       #   dune exec bin/lint.exe -- --baseline lint.baseline \
       --update-baseline lib bin bench\n";
    List.iter
      (fun (f : Finding.t) ->
        Printf.fprintf oc "%s\t%s\t%s\n" f.file f.rule f.message)
      findings
end
