type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
  hint : string;
}

(* Report order (and the CI-stable --json order): file, then line, then
   rule id, with col/message as final tie-breaks — so diffs are stable
   across filesystem orderings and across the untyped/typed passes. *)
let compare a b =
  Stdlib.compare
    (a.file, a.line, a.rule, a.col, a.message)
    (b.file, b.line, b.rule, b.col, b.message)

let pp ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s@,  hint: %s" f.file f.line f.col
    f.rule f.message f.hint

(* Minimal JSON string escaping: the two mandatory escapes plus control
   characters; everything else (including UTF-8 bytes) passes through. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    "{\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \
     \"message\": \"%s\", \"hint\": \"%s\"}"
    (json_escape f.file) f.line f.col (json_escape f.rule)
    (json_escape f.message) (json_escape f.hint)

let json_of_list fs =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (to_json f))
    fs;
  Buffer.add_string b (Printf.sprintf "], \"count\": %d}" (List.length fs));
  Buffer.contents b
