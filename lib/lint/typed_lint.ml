(* The typed analysis layer: where lint.ml walks the untyped Parsetree,
   this module walks compiler-produced [.cmt] files (Typedtree), so rules
   can see resolved paths, types, and binder identity — enough for a
   per-compilation-unit escape/ownership analysis over the flat engine's
   protocol records and a static CONGEST message-width check.

   Scope and honesty notes (see HACKING.md "Static analysis"):
   - Idents are resolved, so shadowing and aliasing of *local* names is
     exact (every binder carries a unique stamp).
   - The interprocedural part is per compilation unit: a helper function
     defined in the same [.ml] that mutates its free variables taints any
     [fp_step] that references it.  Cross-module calls appear as [Pdot]
     paths and are assumed pure — the repo's library API surfaces are
     value-in/value-out, and each unit is scanned on its own.
   - Mutation detection covers the stdlib's in-place primitives (arrays,
     bytes, refs, Hashtbl/Queue/Stack/Buffer/Atomic).  A user-defined
     mutator applied to a captured value is only caught one level deep
     (when its body is in the same unit). *)

type rule = Lint.rule = { id : string; synopsis : string; rationale : string }

let rule_domain_race = "domain-race"
let rule_congest_width = "congest-width"

let rules =
  [
    {
      id = rule_domain_race;
      synopsis =
        "flat-protocol step mutating state it does not own (escape analysis)";
      rationale =
        "Sim.run_flat partitions nodes over domains; a step body may \
         mutate only state reached from its own arguments (or a captured \
         per-node slot indexed by the step's own node id) — anything else \
         is a cross-domain data race the barrier merge cannot order";
    };
    {
      id = rule_congest_width;
      synopsis = "message encoding wider than the 62-bit CONGEST word";
      rationale =
        "the model admits O(log n)-bit messages; every Pack layout must \
         provably fit 62 bits and declared per-message bit counts must be \
         O(log n)-representable, or the round/bits experiments measure a \
         protocol the paper's model forbids";
    };
  ]

(* ------------------------------------------------------------ helpers *)

let rec path_comps = function
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> path_comps p @ [ s ]
  | _ -> []

let path_display p = String.concat "." (path_comps p)

(* Last two components, so [Stdlib.Array.set], [Array.set] and
   [Dsf_util.Pack.layout] all match on (module, name).  Module aliases
   ([module H = Hashtbl]) are deliberately not chased. *)
let tail2 comps =
  match List.rev comps with
  | f :: m :: _ -> Some (m, f)
  | [ f ] -> Some ("", f)
  | [] -> None

(* In-place stdlib mutators: (module, name) -> positional target argument
   indices (among [Nolabel] args) and, when the write is keyed (array
   index / hash key), the key argument's position.  A keyed write into a
   captured container is sanctioned when the key is the step's own node
   id — the "one slot per node, touched only by its owner" idiom. *)
type mutator = { m_targets : int list; m_key : int option }

let mutators =
  [
    (("Array", "set"), { m_targets = [ 0 ]; m_key = Some 1 });
    (("Array", "unsafe_set"), { m_targets = [ 0 ]; m_key = Some 1 });
    (("Array", "fill"), { m_targets = [ 0 ]; m_key = None });
    (("Array", "blit"), { m_targets = [ 2 ]; m_key = None });
    (("Bytes", "set"), { m_targets = [ 0 ]; m_key = Some 1 });
    (("Bytes", "unsafe_set"), { m_targets = [ 0 ]; m_key = Some 1 });
    (("Bytes", "fill"), { m_targets = [ 0 ]; m_key = None });
    (("Bytes", "blit"), { m_targets = [ 2 ]; m_key = None });
    (("Hashtbl", "replace"), { m_targets = [ 0 ]; m_key = Some 1 });
    (("Hashtbl", "add"), { m_targets = [ 0 ]; m_key = Some 1 });
    (("Hashtbl", "remove"), { m_targets = [ 0 ]; m_key = Some 1 });
    (("Hashtbl", "reset"), { m_targets = [ 0 ]; m_key = None });
    (("Hashtbl", "clear"), { m_targets = [ 0 ]; m_key = None });
    (("Hashtbl", "filter_map_inplace"), { m_targets = [ 1 ]; m_key = None });
    (("Queue", "add"), { m_targets = [ 1 ]; m_key = None });
    (("Queue", "push"), { m_targets = [ 1 ]; m_key = None });
    (("Queue", "pop"), { m_targets = [ 0 ]; m_key = None });
    (("Queue", "take"), { m_targets = [ 0 ]; m_key = None });
    (("Queue", "take_opt"), { m_targets = [ 0 ]; m_key = None });
    (("Queue", "clear"), { m_targets = [ 0 ]; m_key = None });
    (("Queue", "transfer"), { m_targets = [ 0; 1 ]; m_key = None });
    (("Stack", "push"), { m_targets = [ 1 ]; m_key = None });
    (("Stack", "pop"), { m_targets = [ 0 ]; m_key = None });
    (("Stack", "pop_opt"), { m_targets = [ 0 ]; m_key = None });
    (("Stack", "clear"), { m_targets = [ 0 ]; m_key = None });
    (("Buffer", "add_char"), { m_targets = [ 0 ]; m_key = None });
    (("Buffer", "add_string"), { m_targets = [ 0 ]; m_key = None });
    (("Buffer", "add_bytes"), { m_targets = [ 0 ]; m_key = None });
    (("Buffer", "clear"), { m_targets = [ 0 ]; m_key = None });
    (("Buffer", "reset"), { m_targets = [ 0 ]; m_key = None });
    (("Buffer", "truncate"), { m_targets = [ 0 ]; m_key = None });
    (("Atomic", "set"), { m_targets = [ 0 ]; m_key = None });
    (("Atomic", "exchange"), { m_targets = [ 0 ]; m_key = None });
    (("Atomic", "compare_and_set"), { m_targets = [ 0 ]; m_key = None });
    (("Atomic", "fetch_and_add"), { m_targets = [ 0 ]; m_key = None });
    (("Atomic", "incr"), { m_targets = [ 0 ]; m_key = None });
    (("Atomic", "decr"), { m_targets = [ 0 ]; m_key = None });
  ]

(* Unqualified / [Stdlib]-qualified mutators. *)
let bare_mutators =
  [
    (":=", { m_targets = [ 0 ]; m_key = None });
    ("incr", { m_targets = [ 0 ]; m_key = None });
    ("decr", { m_targets = [ 0 ]; m_key = None });
  ]

(* Element reads: the result of [reader container key] shares ownership
   with the container (an element of a captured array is captured state,
   an element of the step's own state is owned). *)
let readers =
  [
    ("Array", "get"); ("Array", "unsafe_get"); ("Bytes", "get");
    ("Bytes", "unsafe_get"); ("Hashtbl", "find"); ("Hashtbl", "find_opt");
    ("Hashtbl", "find_all"); ("Queue", "peek"); ("Queue", "peek_opt");
    ("Queue", "top"); ("Stack", "top"); ("Stack", "top_opt"); ("Atomic", "get");
  ]

let bare_readers = [ "!" ]

let mutator_of comps =
  match tail2 comps with
  | Some (("" | "Stdlib"), f) when List.mem_assoc f bare_mutators ->
      Some (List.assoc f bare_mutators)
  | Some (m, f) -> List.assoc_opt (m, f) mutators
  | None -> None

let reader_of comps =
  match tail2 comps with
  | Some (("" | "Stdlib"), f) when List.mem f bare_readers -> true
  | Some (m, f) -> List.mem (m, f) readers
  | None -> false

(* Width-producing functions that are O(log n) by construction: they
   return bit counts derived from value ranges, never raw payloads. *)
let log_fns =
  [
    ("Pack", "width_of_max"); ("Pack", "total_width"); ("Pack", "field_width");
    ("Bitsize", "int_bits"); ("Bitsize", "id_bits"); ("Bitsize", "weight_bits");
    ("Bitsize", "congest_budget");
  ]

let is_log_fn comps =
  match tail2 comps with Some mf -> List.mem mf log_fns | None -> false

let head_path (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> Some p
  | _ -> None

let positional args idx =
  let rec go i = function
    | [] -> None
    | (Asttypes.Nolabel, Some a) :: rest ->
        if i = idx then Some a else go (i + 1) rest
    | (Asttypes.Nolabel, None) :: rest -> go (i + 1) rest
    | _ :: rest -> go i rest
  in
  go 0 args

let rec pat_idents : type k. k Typedtree.general_pattern -> Ident.t list =
 fun p ->
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_var (id, _) -> [ id ]
  | Typedtree.Tpat_alias (q, id, _) -> id :: pat_idents q
  | Typedtree.Tpat_tuple qs | Typedtree.Tpat_array qs ->
      List.concat_map pat_idents qs
  | Typedtree.Tpat_construct (_, _, qs, _) -> List.concat_map pat_idents qs
  | Typedtree.Tpat_variant (_, Some q, _) -> pat_idents q
  | Typedtree.Tpat_record (fs, _) ->
      List.concat_map (fun (_, _, q) -> pat_idents q) fs
  | Typedtree.Tpat_lazy q -> pat_idents q
  | Typedtree.Tpat_value v -> pat_idents (v :> Typedtree.pattern)
  | Typedtree.Tpat_exception q -> pat_idents q
  | Typedtree.Tpat_or (a, b, _) -> pat_idents a @ pat_idents b
  | _ -> []

let type_name (e : Typedtree.expression) =
  match Types.get_desc e.Typedtree.exp_type with
  | Types.Tconstr (p, _, _) -> Some (Path.last p)
  | _ -> None

(* --------------------------------------------------- ownership lattice *)

(* Where a value comes from, relative to the function under analysis:
   - [Owned]: reached from the analyzed function's own parameters (the
     step's view / state / inbox / emit) — mutation is node-local.
   - [SelfIdx]: the integer node id of the running step ([view.node] or a
     local alias of it) — the one key that may index captured per-node
     storage.  Any arithmetic on it degrades to [Local]: an offset node
     id can reach a neighbor's slot.
   - [Local]: allocated or computed inside the analyzed function.
   - [Captured]: free variables (including the unit's toplevel) and other
     modules' state — mutation escapes the node's partition. *)
type origin = Owned | SelfIdx | Local | Captured

let join a b =
  match (a, b) with
  | Captured, _ | _, Captured -> Captured
  | SelfIdx, SelfIdx -> SelfIdx
  | Owned, _ | _, Owned -> Owned
  | _ -> Local

type wstate = {
  env : (string, origin) Hashtbl.t;  (* Ident.unique_name -> origin *)
  mutable allows : string list;  (* active [@lint.allow] ids *)
  on_mut : name:string -> detail:string -> Location.t -> unit;
  on_free_ref : unique:string -> name:string -> Location.t -> unit;
}

let bind st p o =
  List.iter
    (fun id -> Hashtbl.replace st.env (Ident.unique_name id) o)
    (pat_idents p)

let lookup st id = Hashtbl.find_opt st.env (Ident.unique_name id)

let rec origin_of st (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> (
      match lookup st id with Some o -> o | None -> Captured)
  | Texp_ident _ -> Captured
  | Texp_constant _ -> Local
  | Texp_field (b, _, lbl) ->
      let ob = origin_of st b in
      if lbl.Types.lbl_name = "node" && ob = Owned then SelfIdx
      else if ob = SelfIdx then Local
      else ob
  | Texp_apply (f, args) -> (
      match head_path f with
      | Some p when reader_of (path_comps p) -> (
          match positional args 0 with
          | Some c -> ( match origin_of st c with SelfIdx -> Local | o -> o)
          | None -> Local)
      | _ -> Local)
  | Texp_let (_, _, b) | Texp_sequence (_, b) -> origin_of st b
  | Texp_ifthenelse (_, a, Some b) -> join (origin_of st a) (origin_of st b)
  | Texp_ifthenelse (_, a, None) -> origin_of st a
  | Texp_match (_, cases, _) ->
      List.fold_left
        (fun acc (c : _ Typedtree.case) ->
          join acc (origin_of st c.Typedtree.c_rhs))
        Local cases
  | _ -> Local

(* The target of a keyed read may itself be an own slot of a captured
   container ([storage.(view.node)]): treat it as owned for mutation. *)
let target_origin st (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Texp_apply (f, args) -> (
      match head_path f with
      | Some p when reader_of (path_comps p) -> (
          match positional args 0 with
          | Some c when origin_of st c = Captured -> (
              match positional args 1 with
              | Some k when origin_of st k = SelfIdx -> Owned
              | _ -> Captured)
          | Some c -> ( match origin_of st c with SelfIdx -> Local | o -> o)
          | None -> Local)
      | _ -> Local)
  | _ -> origin_of st e

let rec describe (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Texp_ident (p, _, _) -> path_display p
  | Texp_field (b, _, lbl) -> describe b ^ "." ^ lbl.Types.lbl_name
  | Texp_apply (f, args) -> (
      match (head_path f, positional args 0) with
      | Some p, Some c when reader_of (path_comps p) -> describe c ^ ".(_)"
      | _ -> "<expr>")
  | _ -> "<expr>"

let active st rule = List.mem "*" st.allows || List.mem rule st.allows

let check_target st ~how ~key target loc =
  if target_origin st target = Captured then
    let own_key =
      match key with Some k -> origin_of st k = SelfIdx | None -> false
    in
    if (not own_key) && not (active st rule_domain_race) then
      st.on_mut ~name:(describe target) ~detail:how loc

(* ------------------------------------------------------------ the walk *)

let with_allows st allows f =
  if allows = [] then f ()
  else begin
    let saved = st.allows in
    st.allows <- allows @ st.allows;
    f ();
    st.allows <- saved
  end

let rec walk st (e : Typedtree.expression) =
  with_allows st (Lint.allow_ids e.Typedtree.exp_attributes) @@ fun () ->
  match e.Typedtree.exp_desc with
  | Texp_ident (Path.Pident id, _, _) ->
      (* Any reference (call or closure capture) to a free local ident:
         the caller decides whether it names a tainted mutator. *)
      if lookup st id = None then
        st.on_free_ref ~unique:(Ident.unique_name id) ~name:(Ident.name id)
          e.Typedtree.exp_loc
  | Texp_ident _ | Texp_constant _ -> ()
  | Texp_let (rf, vbs, body) ->
      if rf = Asttypes.Recursive then
        List.iter (fun vb -> bind st vb.Typedtree.vb_pat Local) vbs;
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          with_allows st (Lint.allow_ids vb.vb_attributes) @@ fun () ->
          walk st vb.vb_expr;
          if rf <> Asttypes.Recursive then
            bind st vb.vb_pat (origin_of st vb.vb_expr))
        vbs;
      walk st body
  | Texp_function { param; cases; _ } ->
      (* A nested closure: its parameters are fresh values, but mutations
         inside it still resolve against the enclosing ownership env —
         this is exactly how a closure smuggles another node's state. *)
      Hashtbl.replace st.env (Ident.unique_name param) Local;
      walk_cases st Local cases
  | Texp_apply (f, args) ->
      (match head_path f with
      | Some p ->
          let comps = path_comps p in
          (match mutator_of comps with
          | Some m ->
              let key = Option.bind m.m_key (positional args) in
              List.iter
                (fun ti ->
                  match positional args ti with
                  | Some target ->
                      check_target st
                        ~how:(String.concat "." comps)
                        ~key target e.Typedtree.exp_loc
                  | None -> ())
                m.m_targets
          | None -> ());
          (match p with
          | Path.Pident id when lookup st id = None ->
              st.on_free_ref ~unique:(Ident.unique_name id)
                ~name:(Ident.name id) e.Typedtree.exp_loc
          | _ -> ())
      | None -> walk st f);
      List.iter (fun (_, a) -> Option.iter (walk st) a) args
  | Texp_setfield (obj, _, lbl, v) ->
      check_target st
        ~how:("<- on mutable field " ^ lbl.Types.lbl_name)
        ~key:None obj e.Typedtree.exp_loc;
      walk st obj;
      walk st v
  | Texp_match (scrut, cases, _) ->
      walk st scrut;
      walk_cases st (origin_of st scrut) cases
  | Texp_try (b, cases) ->
      walk st b;
      walk_cases st Local cases
  | Texp_for (id, _, lo, hi, _, body) ->
      Hashtbl.replace st.env (Ident.unique_name id) Local;
      walk st lo;
      walk st hi;
      walk st body
  | Texp_field (b, _, _) -> walk st b
  | _ ->
      (* Generic traversal for the remaining constructors (tuples,
         constructs, sequences, arrays, while, assert, ...): dispatch
         every child expression back through [walk]. *)
      let it =
        {
          Tast_iterator.default_iterator with
          expr = (fun _ child -> walk st child);
        }
      in
      Tast_iterator.default_iterator.expr it e

and walk_cases : type k. wstate -> origin -> k Typedtree.case list -> unit =
 fun st o cases ->
  List.iter
    (fun (c : k Typedtree.case) ->
      bind st c.Typedtree.c_lhs o;
      Option.iter (walk st) c.Typedtree.c_guard;
      walk st c.Typedtree.c_rhs)
    cases

let is_function (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with Texp_function _ -> true | _ -> false

(* Analyze one function: bind the leading parameter chain as [params]
   (Owned for protocol hooks, Local for the taint pre-pass), then walk
   the body reporting free-target mutations and free-ident references. *)
let analyze_function ~params ~on_mut ~on_free_ref (fexpr : Typedtree.expression)
    =
  let st = { env = Hashtbl.create 64; allows = []; on_mut; on_free_ref } in
  let rec peel (e : Typedtree.expression) =
    match e.Typedtree.exp_desc with
    | Texp_function { param; cases = [ c ]; _ }
      when c.Typedtree.c_guard = None ->
        Hashtbl.replace st.env (Ident.unique_name param) params;
        bind st c.Typedtree.c_lhs params;
        peel c.Typedtree.c_rhs
    | _ -> walk st e
  in
  with_allows st (Lint.allow_ids fexpr.Typedtree.exp_attributes) @@ fun () ->
  peel fexpr

(* ------------------------------------------- per-unit interprocedural *)

type def = { d_name : string; d_expr : Typedtree.expression }

let collect_defs (str : Typedtree.structure) =
  let defs = Hashtbl.create 64 in
  let default = Tast_iterator.default_iterator in
  let value_binding it (vb : Typedtree.value_binding) =
    (match vb.vb_pat.Typedtree.pat_desc with
    | Typedtree.Tpat_var (id, _) ->
        Hashtbl.replace defs (Ident.unique_name id)
          { d_name = Ident.name id; d_expr = vb.vb_expr }
    | _ -> ());
    default.value_binding it vb
  in
  let it = { default with value_binding } in
  it.structure it str;
  defs

(* Fixpoint taint: a unit-local function is tainted when it mutates its
   free variables, or (transitively) references a tainted sibling. *)
let compute_taint defs =
  let summaries = Hashtbl.create 64 in
  Hashtbl.iter
    (fun u d ->
      if is_function d.d_expr then begin
        let muts = ref [] and refs = ref [] in
        analyze_function ~params:Local
          ~on_mut:(fun ~name ~detail:_ _ -> muts := name :: !muts)
          ~on_free_ref:(fun ~unique ~name:_ _ -> refs := unique :: !refs)
          d.d_expr;
        Hashtbl.replace summaries u (!muts, !refs)
      end)
    defs;
  let tainted = Hashtbl.create 16 in
  Hashtbl.iter
    (fun u (muts, _) ->
      match muts with
      | name :: _ ->
          Hashtbl.replace tainted u
            (Printf.sprintf "mutates captured `%s'" name)
      | [] -> ())
    summaries;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun u (_, refs) ->
        if not (Hashtbl.mem tainted u) then
          List.iter
            (fun r ->
              if Hashtbl.mem tainted r && not (Hashtbl.mem tainted u) then begin
                let d = Hashtbl.find defs r in
                Hashtbl.replace tainted u
                  (Printf.sprintf "references `%s', which %s" d.d_name
                     (Hashtbl.find tainted r));
                changed := true
              end)
            refs)
      summaries
  done;
  tainted

(* ------------------------------------------------------ width checking *)

let rec const_eval defs depth (e : Typedtree.expression) : int option =
  if depth <= 0 then None
  else
    match e.Typedtree.exp_desc with
    | Texp_constant (Asttypes.Const_int n) -> Some n
    | Texp_apply (f, [ (_, Some a); (_, Some b) ]) -> (
        match head_path f with
        | Some p -> (
            let op =
              match List.rev (path_comps p) with o :: _ -> o | [] -> ""
            in
            match (const_eval defs (depth - 1) a, const_eval defs (depth - 1) b)
            with
            | Some x, Some y -> (
                match op with
                | "+" -> Some (x + y)
                | "-" -> Some (x - y)
                | "*" -> Some (x * y)
                | "max" -> Some (max x y)
                | "min" -> Some (min x y)
                | "lsl" -> Some (x lsl y)
                | "land" -> Some (x land y)
                | "lor" -> Some (x lor y)
                | _ -> None)
            | _ -> None)
        | None -> None)
    | Texp_ident (Path.Pident id, _, _) -> (
        match Hashtbl.find_opt defs (Ident.unique_name id) with
        | Some d -> const_eval defs (depth - 1) d.d_expr
        | None -> None)
    | Texp_ident (p, _, _)
      when tail2 (path_comps p) = Some ("Pack", "max_total_width") ->
        Some 62
    | _ -> None

(* A width expression is acceptable when it is a compile-time constant or
   provably O(log n): an application of a width-producing function, or a
   +/-/*/max/min combination of acceptable terms (resolved through local
   let-bindings). *)
type width = Wconst of int | Wlog | Wunknown

let combining_ops = [ "+"; "-"; "*"; "max"; "min" ]

let rec classify_width defs depth (e : Typedtree.expression) : width =
  match const_eval defs depth e with
  | Some n -> Wconst n
  | None -> (
      if depth <= 0 then Wunknown
      else
        match e.Typedtree.exp_desc with
        | Texp_apply (f, args) -> (
            match head_path f with
            | Some p when is_log_fn (path_comps p) -> Wlog
            | Some p
              when (match List.rev (path_comps p) with
                   | o :: _ -> List.mem o combining_ops
                   | [] -> false)
                   && List.length args = 2 -> (
                match args with
                | [ (_, Some a); (_, Some b) ] -> (
                    match
                      ( classify_width defs (depth - 1) a,
                        classify_width defs (depth - 1) b )
                    with
                    | Wunknown, _ | _, Wunknown -> Wunknown
                    | _ -> Wlog)
                | _ -> Wunknown)
            | _ -> Wunknown)
        | Texp_ident (Path.Pident id, _, _) -> (
            match Hashtbl.find_opt defs (Ident.unique_name id) with
            | Some d -> classify_width defs (depth - 1) d.d_expr
            | None -> Wunknown)
        | _ -> Wunknown)

let rec list_elems (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Texp_construct (_, cd, []) when cd.Types.cstr_name = "[]" -> Some []
  | Texp_construct (_, cd, [ hd; tl ]) when cd.Types.cstr_name = "::" ->
      Option.map (fun r -> hd :: r) (list_elems tl)
  | _ -> None

let max_word = 62

(* ------------------------------------------------------------ findings *)

type fctx = {
  f_file : string;
  defs : (string, def) Hashtbl.t;
  tainted : (string, string) Hashtbl.t;
  mutable f_allows : string list;  (* floating/module-level allows *)
  mutable out : Finding.t list;
}

let femit ctx ~(loc : Location.t) ~rule ~message ~hint =
  if not (List.mem "*" ctx.f_allows || List.mem rule ctx.f_allows) then begin
    let p = loc.Location.loc_start in
    let file =
      let f = p.Lexing.pos_fname in
      if f = "" || f = "_none_" then ctx.f_file else Lint.normalize f
    in
    ctx.out <-
      {
        Finding.file;
        line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        rule;
        message;
        hint;
      }
      :: ctx.out
  end

let race_hint =
  "a flat step may mutate only state reached from its own arguments (or \
   a captured per-node slot indexed by view.node); thread shared inputs \
   through fp_init into the node state, or mark a proven-safe site with \
   [@lint.allow \"domain-race\"]"

let width_hint =
  "CONGEST messages are O(log n) bits and packed words top out at 62; \
   derive widths with Pack.width_of_max / Bitsize.int_bits so the bound \
   is a theorem, or mark a proven-safe site with [@lint.allow \
   \"congest-width\"]"

let check_protocol_fn ctx ~field (fexpr : Typedtree.expression) =
  let allows = ctx.f_allows in
  analyze_function ~params:Owned
    ~on_mut:(fun ~name ~detail loc ->
      if not (List.mem "*" allows || List.mem rule_domain_race allows) then
        femit ctx ~loc ~rule:rule_domain_race
          ~message:
            (Printf.sprintf
               "%s mutates captured state `%s' (via %s) outside its own \
                node's partition"
               field name detail)
          ~hint:race_hint)
    ~on_free_ref:(fun ~unique ~name loc ->
      match Hashtbl.find_opt ctx.tainted unique with
      | Some reason ->
          femit ctx ~loc ~rule:rule_domain_race
            ~message:
              (Printf.sprintf
                 "%s references `%s', which %s — shared mutable state \
                  escapes the node partition"
                 field name reason)
            ~hint:race_hint
      | None -> ())
    fexpr

let check_layout ctx (e : Typedtree.expression) args =
  match positional args 0 with
  | None -> ()
  | Some arg -> (
      let loc = e.Typedtree.exp_loc in
      match list_elems arg with
      | None ->
          femit ctx ~loc ~rule:rule_congest_width
            ~message:
              "Pack.layout applied to a non-literal width list — the \
               62-bit bound cannot be verified statically"
            ~hint:width_hint
      | Some elems ->
          let widths = List.map (classify_width ctx.defs 8) elems in
          List.iteri
            (fun i w ->
              match w with
              | Wunknown ->
                  femit ctx ~loc ~rule:rule_congest_width
                    ~message:
                      (Printf.sprintf
                         "field %d of this Pack.layout has a width that is \
                          not statically O(log n) (neither a constant nor \
                          derived from width_of_max / Bitsize)"
                         i)
                    ~hint:width_hint
              | Wconst n when n < 1 ->
                  femit ctx ~loc ~rule:rule_congest_width
                    ~message:
                      (Printf.sprintf
                         "field %d of this Pack.layout has width %d (< 1)" i
                         n)
                    ~hint:width_hint
              | _ -> ())
            widths;
          let const_sum =
            List.fold_left
              (fun acc w -> match w with Wconst n when n >= 1 -> acc + n | _ -> acc)
              0 widths
          in
          let log_terms =
            List.length
              (List.filter (fun w -> w = Wlog) widths)
          in
          (* Every log-derived field is at least 1 bit, so constants plus
             the log-term count lower-bound the packed width. *)
          if const_sum + log_terms > max_word then
            femit ctx ~loc ~rule:rule_congest_width
              ~message:
                (Printf.sprintf
                   "Pack.layout packs at least %d bits (constants %d + %d \
                    variable field%s) — exceeds the %d-bit CONGEST word"
                   (const_sum + log_terms) const_sum log_terms
                   (if log_terms = 1 then "" else "s")
                   max_word)
              ~hint:width_hint)

let check_msg_bits ctx (fexpr : Typedtree.expression) =
  (* Strip the parameter chain, check each body: a constant declared
     width > 62, or a bare literal > 62 outside a width-function call,
     means the protocol claims message sizes the model forbids. *)
  let rec bodies (e : Typedtree.expression) k =
    match e.Typedtree.exp_desc with
    | Texp_function { cases; _ } ->
        List.iter (fun (c : _ Typedtree.case) -> bodies c.Typedtree.c_rhs k)
          cases
    | _ -> k e
  in
  bodies fexpr @@ fun body ->
  match const_eval ctx.defs 8 body with
  | Some n when n > max_word ->
      femit ctx ~loc:body.Typedtree.exp_loc ~rule:rule_congest_width
        ~message:
          (Printf.sprintf
             "fp_msg_bits declares %d bits per message — exceeds the \
              %d-bit CONGEST word"
             n max_word)
        ~hint:width_hint
  | Some _ -> ()
  | None ->
      (* Scan for oversized literals, skipping subtrees that compute
         widths from value ranges (Bitsize.int_bits (max d 100) is 7
         bits, not 100). *)
      let rec scan (e : Typedtree.expression) =
        match e.Typedtree.exp_desc with
        | Texp_constant (Asttypes.Const_int n) when n > max_word ->
            femit ctx ~loc:e.Typedtree.exp_loc ~rule:rule_congest_width
              ~message:
                (Printf.sprintf
                   "fp_msg_bits contains the literal bit count %d — \
                    exceeds the %d-bit CONGEST word"
                   n max_word)
              ~hint:width_hint
        | Texp_apply (f, args) ->
            let skip =
              match head_path f with
              | Some p -> is_log_fn (path_comps p)
              | None -> false
            in
            if not skip then begin
              scan f;
              List.iter (fun (_, a) -> Option.iter scan a) args
            end
        | _ ->
            let it =
              {
                Tast_iterator.default_iterator with
                expr = (fun _ child -> scan child);
              }
            in
            Tast_iterator.default_iterator.expr it e
      in
      scan body

(* ------------------------------------------------------------ the pass *)

let analyze_structure ~file (str : Typedtree.structure) =
  let defs = collect_defs str in
  let tainted = compute_taint defs in
  let ctx = { f_file = file; defs; tainted; f_allows = []; out = [] } in
  let default = Tast_iterator.default_iterator in
  let expr it (e : Typedtree.expression) =
    let saved = ctx.f_allows in
    ctx.f_allows <- Lint.allow_ids e.Typedtree.exp_attributes @ ctx.f_allows;
    (match e.Typedtree.exp_desc with
    | Texp_record { fields; _ } when type_name e = Some "flat_protocol" ->
        Array.iter
          (fun ((lbl : Types.label_description), d) ->
            match d with
            | Typedtree.Overridden (_, fe) -> (
                match lbl.Types.lbl_name with
                | ("fp_step" | "fp_init") when is_function fe ->
                    check_protocol_fn ctx ~field:lbl.Types.lbl_name fe
                | "fp_msg_bits" -> check_msg_bits ctx fe
                | _ -> ())
            | _ -> ())
          fields
    | Texp_apply (f, args) -> (
        match head_path f with
        | Some p when tail2 (path_comps p) = Some ("Pack", "layout") ->
            check_layout ctx e args
        | _ -> ())
    | _ -> ());
    default.expr it e;
    ctx.f_allows <- saved
  in
  (* Floating [@@@lint.allow] attributes scope over the remainder of the
     enclosing structure, mirroring the Parsetree pass. *)
  let structure it (s : Typedtree.structure) =
    let saved = ctx.f_allows in
    List.iter
      (fun (si : Typedtree.structure_item) ->
        match si.Typedtree.str_desc with
        | Typedtree.Tstr_attribute a ->
            ctx.f_allows <- Lint.allow_ids [ a ] @ ctx.f_allows
        | _ -> default.structure_item it si)
      s.Typedtree.str_items;
    ctx.f_allows <- saved
  in
  let it = { default with expr; structure } in
  it.structure it str;
  List.sort Finding.compare ctx.out

(* -------------------------------------------------------- cmt scanning *)

let check_cmt path : (Finding.t list, string) result =
  match Cmt_format.read_cmt path with
  | infos -> (
      let file =
        match infos.Cmt_format.cmt_sourcefile with
        | Some f -> Lint.normalize f
        | None -> path
      in
      match infos.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str -> Ok (analyze_structure ~file str)
      | _ -> Ok [] (* interfaces / partial units: nothing to analyze *))
  (* Intentional firewall, mirroring Lint.check_string: an unreadable or
     version-skewed cmt becomes a per-file error, not a dead scan. *)
  | exception (exn [@lint.allow "catch-all"]) ->
      Error (path ^ ": " ^ Printexc.to_string exn)

(* Unlike the source walker, cmt artifacts live under dot-directories
   (_build/.../.libname.objs/byte), so nothing is skipped here; [.cmti]
   (interfaces) carry no expressions and are filtered by suffix. *)
let rec walk acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> walk acc (Filename.concat path entry))
      acc
      (let es = Sys.readdir path in
       Array.sort compare es;
       es)
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let scan ~roots =
  let files = List.rev (List.fold_left walk [] roots) in
  let findings, errors =
    List.fold_left
      (fun (fs, es) file ->
        match check_cmt file with
        | Ok f -> (f :: fs, es)
        | Error e -> (fs, e :: es))
      ([], []) files
  in
  (List.sort_uniq Finding.compare (List.concat findings), List.rev errors)
