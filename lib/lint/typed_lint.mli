(** dsf-lint's typed analysis layer: rules that need resolved names,
    binder identity, and types, driven by compiler-produced [.cmt] files
    ({!Cmt_format} + {!Tast_iterator}) instead of the Parsetree.

    {2 Rules}

    - [domain-race] — a per-compilation-unit escape/ownership analysis
      over every [Sim.flat_protocol] record: [fp_step] / [fp_init] bodies
      may mutate only state reached from their own arguments (the step's
      view, state, inbox, and emit), plus the one sanctioned idiom of a
      captured per-node slot indexed by the step's own [view.node].
      Flagged: writes to captured toplevel/shared mutable values,
      cross-node indexing into captured containers, closures that smuggle
      shared state into the step, and references to unit-local helper
      functions that (transitively) mutate their free variables.
    - [congest-width] — every [Dsf_util.Pack.layout] must provably fit
      the 62-bit packed word: each field width must be a compile-time
      constant or derived from [Pack.width_of_max] / [Bitsize.*]
      (O(log n) by construction), and the constant portion (plus one bit
      per variable field) must not exceed 62.  [fp_msg_bits] bodies
      declaring a constant or literal bit count above 62 are flagged too.

    Suppression uses the same [[@lint.allow "rule-id"]] attributes as the
    Parsetree pass (they survive into the Typedtree).

    {2 Honesty}

    The interprocedural part is per compilation unit: cross-module calls
    ([M.f]) are assumed pure.  Mutation detection covers the stdlib's
    in-place primitives; a same-unit helper that mutates its free
    variables taints every step that references it, transitively. *)

val rules : Lint.rule list
(** The typed rule catalogue, in report order. *)

val analyze_structure : file:string -> Typedtree.structure -> Finding.t list
(** Runs both typed rules over one implementation's Typedtree; [file] is
    the fallback path reported when a location carries no filename.
    Findings are sorted. *)

val check_cmt : string -> (Finding.t list, string) result
(** Reads one [.cmt] and analyzes it.  Non-implementation artifacts
    (interfaces, packs) yield [Ok []]; unreadable or version-skewed files
    yield [Error]. *)

val scan : roots:string list -> Finding.t list * string list
(** Walks each root (directory or single [.cmt]) collecting every [.cmt]
    underneath — including dot-directories, where dune keeps its [.objs]
    artifacts — and returns all findings (sorted, deduplicated) plus any
    per-file errors. *)
