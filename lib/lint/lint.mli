(** dsf-lint: AST-level invariant checks for the contracts that keep this
    repository honest — determinism, domain-safety, and CONGEST accounting
    discipline (see the "Static analysis" section of HACKING.md).

    The checker parses [.ml] sources with the installed compiler's own
    frontend (compiler-libs) and walks the Parsetree with an
    {!Ast_iterator}, so rules see exactly what the compiler sees; no
    typing is performed, which keeps the pass fast and total (any file
    that compiles can be linted).

    {2 Rules}

    - [global-state] — toplevel mutable bindings ([ref], [Hashtbl.create],
      [Buffer.create], [Atomic.make], [Mutex.create], array literals, ...)
      in [lib/]: the exact hazard the domain-safety contract forbids.
    - [sim-globals] — uses of the deprecated process-wide [Sim] shims
      ([set_observer] / [with_observer] / [use_reference_engine] /
      [use_flat_engine]) outside the differential-test allowlist; per-run
      [?observer] / [?reference] / [?flat] are the domain-safe
      replacements.
    - [nondet] — nondeterminism sources: [Random.self_init], the global
      [Random.*] API (the seeded [Random.State] / [Dsf_util.Rng] paths are
      fine), wall-clock reads in [lib/] or [bin/] (allowed in [bench/]),
      and [Domain.self] used as data in [lib/].
    - [congest-discipline] — message traffic bypassing the accounted
      [Sim.run] send path: invoking a protocol's [step] field directly, or
      mutating inbox/outbox structures, outside [lib/congest/sim.ml].
    - [catch-all] — [try ... with _ ->] handlers that can silently swallow
      [Pool.Nested_use] or [Sim.Round_limit].
    - [unsafe-array] — bounds-unchecked accessors ([Array.unsafe_get],
      [Bytes.unsafe_set], ...): allowed only behind an explicit bounds
      check, marked site-by-site with [[@lint.allow "unsafe-array"]] (the
      flat engine's inbox accessors are the canonical example).
    - [deprecated-fault-alias] — uses of [Fault.drop_only], the
      pre-recovery plan classifier; [Fault.maskable ?with_recovery] is
      the replacement now that crash windows are maskable under a
      recovery contract.

    The typed rules ([domain-race], [congest-width]) live in
    {!Typed_lint} and run over [.cmt] artifacts via [lint.exe --typed].

    {2 Suppression}

    A finding is silenced by an attribute naming the rule id:
    [[@@lint.allow "rule-id"]] on a toplevel binding,
    [[@lint.allow "rule-id"]] on an expression, or a floating
    [[@@@lint.allow "rule-id"]] for the rest of the enclosing module.
    Several ids may be given space-separated; an empty payload allows
    every rule.  Grandfathered findings can instead live in a checked-in
    baseline file (see {!Baseline}). *)

type zone = Lib | Bin | Bench | Test | Other

val zone_of_path : string -> zone
(** Classifies a '/'-separated path by its first component; zones decide
    which rules apply where. *)

val normalize : string -> string
(** Strips leading [./] and [../] segments so zone and allowlist lookups
    see repo-relative paths regardless of the scan's working directory. *)

val allow_ids : Parsetree.attributes -> string list
(** Rule ids named by [[@lint.allow "..."]] attributes; ["*"] for an
    empty or malformed payload (fail open).  Shared with the typed pass
    ({!Typed_lint}) — Typedtree attributes are Parsetree attributes. *)

type rule = {
  id : string;  (** the id used by suppressions and reports *)
  synopsis : string;  (** one-line description of what it flags *)
  rationale : string;  (** the repo contract the rule enforces *)
}

val rules : rule list
(** The rule catalogue, in report order. *)

val check_string : file:string -> string -> (Finding.t list, string) result
(** Lints one compilation unit given as source text; [file] supplies the
    reported path and the zone.  [Error] carries a rendered parse error. *)

val check_file : string -> (Finding.t list, string) result
(** [check_string] over the file's contents. *)

val scan : roots:string list -> Finding.t list * string list
(** Walks each root (a directory or a single [.ml] file), linting every
    [.ml] underneath — skipping [_build]-style and dot directories — and
    returns all findings (sorted) plus any per-file errors. *)

module Baseline : sig
  (** Grandfathered findings.  An entry matches on (file, rule, message) —
      deliberately not the line number, so unrelated edits above a
      baselined site do not invalidate the baseline. *)

  type entry = { bfile : string; brule : string; bmessage : string }

  val load : string -> entry list
  (** Missing file = empty baseline. *)

  val apply : entry list -> Finding.t list -> Finding.t list * int * entry list
  (** [apply entries findings] is [(kept, suppressed_count, stale)]:
      findings not covered by the baseline, how many were, and the
      entries that matched nothing (stale — candidates for removal). *)

  val save : string -> Finding.t list -> unit
  (** Writes a baseline covering exactly [findings]. *)
end
