(** A single dsf-lint diagnostic: where, which rule, what, and how to fix.

    Findings are value-only (no formatting state), so rule implementations
    can build them anywhere and the driver decides how to render — human
    [file:line:col] lines for terminals, JSON for tooling. *)

type t = {
  file : string;  (** path relative to the scan root, '/'-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler locations *)
  rule : string;  (** rule id, e.g. ["global-state"] *)
  message : string;  (** what is wrong, specific to the site *)
  hint : string;  (** how to fix or legitimately suppress it *)
}

val compare : t -> t -> int
(** Orders by (file, line, col, rule, message) for stable reports. *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: [rule] message] followed by an indented hint line. *)

val to_json : t -> string
(** One finding as a JSON object (hand-rolled; no JSON library in the
    toolchain). *)

val json_of_list : t list -> string
(** The full report: [{"findings": [...], "count": n}]. *)
