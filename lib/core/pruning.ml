module Graph = Dsf_graph.Graph
module Instance = Dsf_graph.Instance
module Uf = Dsf_util.Union_find
module Sim = Dsf_congest.Sim
module Bfs = Dsf_congest.Bfs
module Tree_ops = Dsf_congest.Tree_ops
module Ledger = Dsf_congest.Ledger
module Bitsize = Dsf_util.Bitsize

type result = {
  pruned : bool array;
  clusters : int;
  cluster_edges : int;
  ledger : Ledger.t;
}

let ceil_log2 = Dsf_util.Intmath.ceil_log2

(* ------------------------------------------------------------------ *)
(* Lemma F.7: partition the trees of F into subtree clusters by        *)
(* matching-based growing.  Returns cluster ids per node and the       *)
(* number of iterations (each charged O~(sigma) by the caller).        *)
(* ------------------------------------------------------------------ *)

let grow_clusters g f sigma =
  let n = Graph.n g in
  let uf = Uf.create n in
  let iterations = ref 0 in
  let gossip_rounds = ref 0 in
  let progress = ref true in
  let max_iter = ceil_log2 (max 2 sigma) + 2 in
  while !progress && !iterations < max_iter do
    incr iterations;
    progress := false;
    (* Proposal discovery runs as a real gossip inside each cluster: the
       mask enables F-edges already internal to a cluster, and values are
       the outgoing F-edges seen locally. *)
    let mask =
      Array.init (Graph.m g) (fun eid ->
          let u, v = Graph.endpoints g eid in
          f.(eid) && Uf.same uf u v)
    in
    let values v =
      Array.to_list (Graph.adj g v)
      |> List.filter_map (fun (nb, _, eid) ->
             if f.(eid) && not (Uf.same uf v nb) then Some eid else None)
      |> function [] -> None | l -> Some (List.fold_left min (List.hd l) l)
    in
    let _, g_stats =
      Dsf_congest.Component_ops.component_min_item g ~mask ~values ~cmp:compare
        ~bits:(fun _ -> Bitsize.id_bits ~n)
    in
    gossip_rounds := !gossip_rounds + g_stats.Sim.rounds;
    (* Each small cluster proposes one outgoing F-edge. *)
    let proposal = Hashtbl.create 16 in
    Array.iter
      (fun (e : Graph.edge) ->
        if f.(e.id) then begin
          let cu = Uf.find uf e.u and cv = Uf.find uf e.v in
          if cu <> cv then begin
            if Uf.size uf e.u < sigma && not (Hashtbl.mem proposal cu) then
              Hashtbl.replace proposal cu e;
            if Uf.size uf e.v < sigma && not (Hashtbl.mem proposal cv) then
              Hashtbl.replace proposal cv e
          end
        end)
      (Graph.edges g);
    (* Greedy maximal matching on small-small proposals, then unmatched
       small clusters re-add theirs. *)
    let matched = Hashtbl.create 16 in
    let selected = ref [] in
    Hashtbl.iter
      (fun _ (e : Graph.edge) ->
        let cu = Uf.find uf e.u and cv = Uf.find uf e.v in
        if
          Uf.size uf e.u < sigma && Uf.size uf e.v < sigma
          && (not (Hashtbl.mem matched cu))
          && not (Hashtbl.mem matched cv)
        then begin
          Hashtbl.replace matched cu ();
          Hashtbl.replace matched cv ();
          selected := e :: !selected
        end)
      proposal;
    Hashtbl.iter
      (fun c (e : Graph.edge) ->
        if not (Hashtbl.mem matched c) then selected := e :: !selected)
      proposal;
    List.iter
      (fun (e : Graph.edge) ->
        if Uf.union uf e.u e.v then progress := true)
      !selected
  done;
  uf, !iterations, !gossip_rounds

(* ------------------------------------------------------------------ *)
(* The Step 6 fact engine: sets l_C and l_e, closed under the path     *)
(* rule (a label seen in two clusters marks the connecting path) and   *)
(* the coupling rule (labels sharing an edge are identified).          *)
(* ------------------------------------------------------------------ *)

type facts = {
  lc : (int * int, unit) Hashtbl.t;  (** (cluster, label) *)
  le : (int * int, unit) Hashtbl.t;  (** (fc-edge index, label) *)
}

type structure = {
  fc_adj : (int, (int * int) list) Hashtbl.t;
      (** cluster -> (neighbor cluster, fc-edge index) *)
  n_fc : int;
}

let facts_create () = { lc = Hashtbl.create 64; le = Hashtbl.create 64 }

let fc_path st a b =
  (* BFS in the cluster forest; returns (edges, inner clusters) or None. *)
  if a = b then Some ([], [])
  else begin
    let prev = Hashtbl.create 16 in
    let q = Queue.create () in
    Queue.add a q;
    Hashtbl.replace prev a (-1, -1);
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let c = Queue.pop q in
      List.iter
        (fun (c', e) ->
          if not (Hashtbl.mem prev c') then begin
            Hashtbl.replace prev c' (c, e);
            if c' = b then found := true else Queue.add c' q
          end)
        (Option.value ~default:[] (Hashtbl.find_opt st.fc_adj c))
    done;
    if not !found then None
    else begin
      let rec walk c edges inner =
        let p, e = Hashtbl.find prev c in
        if p = -1 then edges, inner
        else walk p (e :: edges) (if p = a then inner else p :: inner)
      in
      Some (walk b [] [])
    end
  end

(* Apply one (cluster, label) fact; returns whether anything changed.
   All consequences run through a worklist so the fixpoint is reached
   regardless of arrival order. *)
let facts_apply st facts (c0, lam0) =
  let changed = ref false in
  let work = Queue.create () in
  let add_lc c lam =
    if not (Hashtbl.mem facts.lc (c, lam)) then begin
      Hashtbl.replace facts.lc (c, lam) ();
      changed := true;
      Queue.add (`Lc (c, lam)) work
    end
  in
  let add_le e lam =
    if not (Hashtbl.mem facts.le (e, lam)) then begin
      Hashtbl.replace facts.le (e, lam) ();
      changed := true;
      Queue.add (`Le (e, lam)) work
    end
  in
  add_lc c0 lam0;
  while not (Queue.is_empty work) do
    match Queue.pop work with
    | `Lc (c, lam) ->
        (* Path rule: lam already known in another cluster marks the
           connecting path. *)
        let others =
          Hashtbl.fold
            (fun (c', l) () acc -> if l = lam && c' <> c then c' :: acc else acc)
            facts.lc []
        in
        List.iter
          (fun c' ->
            match fc_path st c c' with
            | None -> ()
            | Some (edges, inner) ->
                List.iter (fun e -> add_le e lam) edges;
                List.iter (fun c'' -> add_lc c'' lam) inner)
          others
    | `Le (e, lam) ->
        (* Coupling rule: labels sharing an edge are identified. *)
        let partners =
          Hashtbl.fold
            (fun (e', l) () acc -> if e' = e && l <> lam then l :: acc else acc)
            facts.le []
        in
        List.iter
          (fun lam' ->
            let spread a b =
              (* wherever a appears, add b *)
              let edges =
                Hashtbl.fold
                  (fun (e', l) () acc -> if l = a then e' :: acc else acc)
                  facts.le []
              in
              List.iter (fun e' -> add_le e' b) edges;
              let clusters =
                Hashtbl.fold
                  (fun (c', l) () acc -> if l = a then c' :: acc else acc)
                  facts.lc []
              in
              List.iter (fun c' -> add_lc c' b) clusters
            in
            spread lam lam';
            spread lam' lam)
          partners
  done;
  !changed

(* ------------------------------------------------------------------ *)
(* The Lemma F.8 protocol: every node floods its (cluster, label)       *)
(* facts up the BFS tree; a shadow copy of "what my parent learned      *)
(* from me" suppresses redundant messages.                              *)
(* ------------------------------------------------------------------ *)

type node_state = {
  is_root : bool;
  mine : facts;
  shadow : facts;
  log : (int * int) list;  (** root: state-changing messages, reversed *)
}

let label_flood g ~tree ~structure ~initial =
  let n = Graph.n g in
  let proto : (node_state, int * int) Sim.protocol =
    {
      init =
        (fun view ->
          let v = view.Sim.node in
          let mine = facts_create () in
          let log = ref [] in
          List.iter
            (fun fact ->
              if facts_apply structure mine fact then log := fact :: !log)
            (initial v);
          {
            is_root = v = tree.Bfs.root;
            mine;
            shadow = facts_create ();
            log = !log;
          });
      step =
        (fun view ~round:_ st ~inbox ->
          let v = view.Sim.node in
          let st =
            List.fold_left
              (fun st (_, fact) ->
                if facts_apply structure st.mine fact then
                  { st with log = fact :: st.log }
                else st)
              st inbox
          in
          if v = tree.Bfs.root then st, []
          else begin
            (* Send one message that would still change the parent's
               view of our contribution. *)
            let candidate =
              Hashtbl.fold
                (fun (c, lam) () acc ->
                  match acc with
                  | Some _ -> acc
                  | None ->
                      if Hashtbl.mem st.shadow.lc (c, lam) then None
                      else Some (c, lam))
                st.mine.lc None
            in
            match candidate with
            | Some fact ->
                ignore (facts_apply structure st.shadow fact);
                st, [ tree.Bfs.parent.(v), fact ]
            | None -> st, []
          end);
      is_done =
        (fun st ->
          st.is_root
          || Hashtbl.fold
               (fun (c, lam) () acc ->
                 acc && Hashtbl.mem st.shadow.lc (c, lam))
               st.mine.lc true);
      msg_bits = (fun _ -> 2 * Bitsize.id_bits ~n);
      wake = None;
    }
  in
  let states, stats = Sim.run g proto in
  states, stats

(* ------------------------------------------------------------------ *)

let run inst ~f ~sigma =
  let g = inst.Instance.graph in
  let n = Graph.n g in
  let m = Graph.m g in
  if not (Instance.is_forest g f) then invalid_arg "Pruning.run: not a forest";
  if not (Instance.is_feasible inst f) then invalid_arg "Pruning.run: infeasible";
  let ledger = Ledger.create () in
  (* Step 1: BFS tree + make the label set global. *)
  let tree, bfs_stats = Bfs.build g ~root:(Bfs.max_id_root g) in
  Ledger.add ledger Ledger.Simulated "F.3: BFS tree" bfs_stats.Sim.rounds;
  let label_witnesses, lw_stats =
    Tree_ops.upcast_dedup g ~tree
      ~items:(fun v ->
        if inst.Instance.labels.(v) >= 0 then [ inst.Instance.labels.(v) ]
        else [])
      ~key:Fun.id
      ~bits:(fun _ -> Bitsize.id_bits ~n)
  in
  let _, lb_stats =
    Tree_ops.broadcast g ~tree ~items:label_witnesses
      ~bits:(fun _ -> Bitsize.id_bits ~n)
  in
  Ledger.add ledger Ledger.Simulated "F.3: broadcast label set"
    (lw_stats.Sim.rounds + lb_stats.Sim.rounds);
  (* Step 3: clusters (Lemma F.7). *)
  let cuf, iterations, gossip_rounds = grow_clusters g f sigma in
  Ledger.add ledger Ledger.Simulated
    (Printf.sprintf "F.3: cluster growing, %d iterations: proposal gossip"
       iterations)
    gossip_rounds;
  Ledger.add ledger Ledger.Charged
    (Printf.sprintf
       "F.3: cluster growing, %d iterations: matching ([6], Lemma F.7)"
       iterations)
    ((iterations * 4 * ceil_log2 (max 2 sigma)) + 8);
  (* Step 4: the contracted cluster forest, made global. *)
  let fc_edges =
    Array.to_list (Graph.edges g)
    |> List.filter (fun (e : Graph.edge) ->
           f.(e.id) && Uf.find cuf e.u <> Uf.find cuf e.v)
  in
  let n_fc = List.length fc_edges in
  let fc_index = Hashtbl.create 16 in
  List.iteri (fun i (e : Graph.edge) -> Hashtbl.replace fc_index e.id i) fc_edges;
  let structure =
    let fc_adj = Hashtbl.create 16 in
    List.iteri
      (fun i (e : Graph.edge) ->
        let cu = Uf.find cuf e.u and cv = Uf.find cuf e.v in
        Hashtbl.replace fc_adj cu
          ((cv, i) :: Option.value ~default:[] (Hashtbl.find_opt fc_adj cu));
        Hashtbl.replace fc_adj cv
          ((cu, i) :: Option.value ~default:[] (Hashtbl.find_opt fc_adj cv)))
      fc_edges;
    { fc_adj; n_fc }
  in
  let cluster_count =
    let seen = Hashtbl.create 16 in
    for v = 0 to n - 1 do
      Hashtbl.replace seen (Uf.find cuf v) ()
    done;
    Hashtbl.length seen
  in
  let fc_items v =
    List.filter_map
      (fun (e : Graph.edge) ->
        if e.u = v && f.(e.id) && Uf.find cuf e.u <> Uf.find cuf e.v then
          Some (Uf.find cuf e.u, Uf.find cuf e.v)
        else None)
      (Array.to_list (Graph.edges g))
  in
  let _, up_stats =
    Tree_ops.upcast g ~tree ~items:fc_items
      ~bits:(fun _ -> 2 * Bitsize.id_bits ~n)
  in
  Ledger.add ledger Ledger.Simulated "F.3: collect cluster forest"
    up_stats.Sim.rounds;
  let fc_pairs =
    List.map (fun (e : Graph.edge) -> Uf.find cuf e.u, Uf.find cuf e.v) fc_edges
  in
  let _, fcb_stats =
    Tree_ops.broadcast g ~tree ~items:fc_pairs
      ~bits:(fun _ -> 2 * Bitsize.id_bits ~n)
  in
  Ledger.add ledger Ledger.Simulated "F.3: broadcast cluster forest"
    fcb_stats.Sim.rounds;
  (* Steps 5-6: the label flood (Lemma F.8), genuinely simulated. *)
  let initial v =
    if inst.Instance.labels.(v) >= 0 then
      [ Uf.find cuf v, inst.Instance.labels.(v) ]
    else []
  in
  let states, flood_stats = label_flood g ~tree ~structure ~initial in
  Ledger.add ledger Ledger.Simulated "F.3: label flood (Lemma F.8)"
    flood_stats.Sim.rounds;
  let root_facts = states.(tree.Bfs.root).mine in
  (* Step 7: broadcast the root's state-changing log (same encoding). *)
  let root_log = List.rev states.(tree.Bfs.root).log in
  let _, bc_stats =
    Tree_ops.broadcast g ~tree ~items:root_log
      ~bits:(fun _ -> 2 * Bitsize.id_bits ~n)
  in
  Ledger.add ledger Ledger.Simulated "F.3: broadcast result" bc_stats.Sim.rounds;
  (* Step 8: inter-cluster edges with a nonempty label set. *)
  let pruned = Array.make m false in
  List.iter
    (fun (e : Graph.edge) ->
      let i = Hashtbl.find fc_index e.id in
      let nonempty =
        Hashtbl.fold
          (fun (e', _) () acc -> acc || e' = i)
          root_facts.le false
      in
      if nonempty then pruned.(e.id) <- true)
    fc_edges;
  (* Step 9: endpoints of selected FC edges inherit the edge's labels. *)
  let extra_labels : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let add_node_label v lam =
    Hashtbl.replace extra_labels v
      (lam :: Option.value ~default:[] (Hashtbl.find_opt extra_labels v))
  in
  List.iter
    (fun (e : Graph.edge) ->
      let i = Hashtbl.find fc_index e.id in
      Hashtbl.iter
        (fun (e', lam) () ->
          if e' = i then begin
            add_node_label e.u lam;
            add_node_label e.v lam
          end)
        root_facts.le)
    fc_edges;
  let node_labels v =
    let own = if inst.Instance.labels.(v) >= 0 then [ inst.Instance.labels.(v) ] else [] in
    own @ Option.value ~default:[] (Hashtbl.find_opt extra_labels v)
  in
  (* Label classes: labels identified by the coupling rule must be treated
     as one demand (they share edges of the minimal solution). *)
  let max_label =
    Array.fold_left max 0 inst.Instance.labels
  in
  let luf = Uf.create (max_label + 1) in
  Hashtbl.iter
    (fun (e, lam) () ->
      Hashtbl.iter
        (fun (e', lam') () -> if e = e' then ignore (Uf.union luf lam lam'))
        root_facts.le)
    root_facts.le;
  (* Step 10: minimal intra-cluster subtrees, by the Lemma F.6 mark/unmark
     protocol, genuinely simulated: holders flood their label classes up
     the cluster trees (marking edges); roots then push "unmark" down any
     branch whose subtree holds only one witness of a class.  The result
     is cross-checked below against the definitional per-edge split test,
     which remains the output. *)
  let cluster_parent =
    (* Root each cluster's F-subtree at its leader (max node id). *)
    let cp = Array.make n (-1) in
    let adj_f = Array.make n [] in
    Array.iter
      (fun (e : Graph.edge) ->
        if f.(e.id) && Uf.find cuf e.u = Uf.find cuf e.v then begin
          adj_f.(e.u) <- e.v :: adj_f.(e.u);
          adj_f.(e.v) <- e.u :: adj_f.(e.v)
        end)
      (Graph.edges g);
    let visited = Array.make n false in
    let roots = Hashtbl.create 16 in
    for v = 0 to n - 1 do
      let r = Uf.find cuf v in
      match Hashtbl.find_opt roots r with
      | Some best when best >= v -> ()
      | _ -> Hashtbl.replace roots r v
    done;
    Hashtbl.iter
      (fun _ root ->
        let q = Queue.create () in
        Queue.add root q;
        visited.(root) <- true;
        while not (Queue.is_empty q) do
          let v = Queue.pop q in
          List.iter
            (fun u ->
              if not visited.(u) then begin
                visited.(u) <- true;
                cp.(u) <- v;
                Queue.add u q
              end)
            adj_f.(v)
        done)
      roots;
    cp
  in
  let class_labels v =
    List.map (fun lam -> Uf.find luf lam) (node_labels v)
    |> List.sort_uniq compare
  in
  let f6_marked, f6_stats =
    F6_protocol.run g ~parent:cluster_parent ~labels:class_labels
  in
  Ledger.add ledger Ledger.Simulated
    "F.3: intra-cluster mark/unmark selection (Lemma F.6)"
    f6_stats.Sim.rounds;
  let intra =
    Array.to_list (Graph.edges g)
    |> List.filter (fun (e : Graph.edge) ->
           f.(e.id) && Uf.find cuf e.u = Uf.find cuf e.v)
  in
  List.iter
    (fun (e : Graph.edge) ->
      (* Split test within the forest f minus e, restricted to e's cluster. *)
      let uf2 = Uf.create n in
      Array.iter
        (fun (e' : Graph.edge) ->
          if f.(e'.id) && e'.id <> e.id then ignore (Uf.union uf2 e'.u e'.v))
        (Graph.edges g);
      let cluster = Uf.find cuf e.u in
      (* Holder classes on each side. *)
      let side_classes u =
        let acc = Hashtbl.create 8 in
        for v = 0 to n - 1 do
          if Uf.find cuf v = cluster && Uf.same uf2 v u then
            List.iter
              (fun lam -> Hashtbl.replace acc (Uf.find luf lam) ())
              (node_labels v)
        done;
        acc
      in
      let a = side_classes e.u and b = side_classes e.v in
      let needed =
        Hashtbl.fold (fun c () acc -> acc || Hashtbl.mem b c) a false
      in
      (* The protocol and the definitional test must agree edge by edge. *)
      assert (needed = f6_marked.(e.id));
      if needed then pruned.(e.id) <- true)
    intra;
  { pruned; clusters = cluster_count; cluster_edges = n_fc; ledger }
