module Instance = Dsf_graph.Instance
module Ledger = Dsf_congest.Ledger

type algorithm =
  | Det
  | Det_sublinear of { eps_num : int; eps_den : int }
  | Rand of { repetitions : int; seed : int }
  | Khan_baseline of { repetitions : int; seed : int }
  | Centralized_moat

let name = function
  | Det -> "det (Thm 4.17)"
  | Det_sublinear { eps_num; eps_den } ->
      Printf.sprintf "det_sublinear eps=%d/%d (Cor 4.21)" eps_num eps_den
  | Rand { repetitions; _ } ->
      Printf.sprintf "rand x%d (Thm 5.2)" repetitions
  | Khan_baseline { repetitions; _ } ->
      Printf.sprintf "khan_etal x%d [14]" repetitions
  | Centralized_moat -> "centralized moat (Alg 1)"

type report = {
  algorithm : string;
  solution : bool array;
  weight : int;
  feasible : bool;
  rounds_simulated : int;
  rounds_charged : int;
  dual_lower_bound : float option;
  ledger : Ledger.t option;
}

let of_ledger algo inst solution weight dual ledger =
  {
    algorithm = name algo;
    solution;
    weight;
    feasible = Instance.is_feasible inst solution;
    rounds_simulated = (match ledger with Some l -> Ledger.simulated l | None -> 0);
    rounds_charged = (match ledger with Some l -> Ledger.charged l | None -> 0);
    dual_lower_bound = dual;
    ledger;
  }

(* The Khan baseline lives in dsf_baseline, which depends on dsf_core; to
   keep the front end in core without a cycle, callers inject it.  The
   default hook raises; dsf_baseline installs the real one at load time
   (see Dsf_baseline.Khan_etal).  Process-global by design: written once
   during linking, read-only afterwards — domain-safe in practice. *)
let khan_hook :
    (repetitions:int -> rng:Dsf_util.Rng.t -> Instance.ic ->
     bool array * int * Ledger.t)
    ref =
  ref (fun ~repetitions:_ ~rng:_ _ ->
      failwith
        "Solver: Khan baseline requested but dsf_baseline is not linked; \
         depend on dsf_baseline or avoid Khan_baseline")
[@@lint.allow "global-state"]

let solve_ic ?(jobs = 1) ?observer ?telemetry ?flat ?chaos algo inst =
  let tspan name f = Dsf_congest.Telemetry.span_opt telemetry name f in
  (match chaos, algo with
  | Some _, (Det_sublinear _ | Rand _ | Khan_baseline _ | Centralized_moat) ->
      invalid_arg "Solver.solve_ic: ?chaos is only supported for Det"
  | _ -> ());
  match algo with
  | Det ->
      let r = Det_dsf.run ?observer ?telemetry ?flat ?chaos ~jobs inst in
      of_ledger algo inst r.Det_dsf.solution r.Det_dsf.weight
        (Some (Frac.to_float r.Det_dsf.dual))
        (Some r.Det_dsf.ledger)
  | Det_sublinear { eps_num; eps_den } ->
      let r = Det_sublinear.run ?observer ?telemetry ~eps_num ~eps_den inst in
      of_ledger algo inst r.Det_sublinear.solution r.Det_sublinear.weight None
        (Some r.Det_sublinear.ledger)
  | Rand { repetitions; seed } ->
      let r =
        Rand_dsf.run ?observer ?telemetry ~repetitions ~jobs
          ~rng:(Dsf_util.Rng.create seed) inst
      in
      of_ledger algo inst r.Rand_dsf.solution r.Rand_dsf.weight None
        (Some r.Rand_dsf.ledger)
  | Khan_baseline { repetitions; seed } ->
      let solution, weight, ledger =
        tspan "khan_baseline" (fun () ->
            !khan_hook ~repetitions ~rng:(Dsf_util.Rng.create seed) inst)
      in
      of_ledger algo inst solution weight None (Some ledger)
  | Centralized_moat ->
      let r = tspan "centralized_moat" (fun () -> Moat.run inst) in
      of_ledger algo inst r.Moat.solution r.Moat.weight
        (Some (Frac.to_float r.Moat.dual))
        None

let solve_cr ?jobs ?observer ?telemetry ?flat ?chaos algo cr =
  let out = Transform.cr_to_ic ?observer ?telemetry ?flat ?jobs ?chaos cr in
  let report =
    solve_ic ?jobs ?observer ?telemetry ?flat ?chaos algo out.Transform.value
  in
  let ledger =
    match report.ledger with
    | Some l ->
        let merged = Ledger.create () in
        Ledger.add merged Ledger.Simulated "CR->IC transform (Lemma 2.3)"
          out.Transform.rounds;
        Ledger.merge_into ~dst:merged l;
        Some merged
    | None -> None
  in
  {
    report with
    rounds_simulated = report.rounds_simulated + out.Transform.rounds;
    ledger;
  }

let compare_all ?jobs ?observer ?telemetry ?flat ?algorithms inst =
  let algorithms =
    match algorithms with
    | Some l -> l
    | None ->
        [
          Det;
          Det_sublinear { eps_num = 1; eps_den = 2 };
          Rand { repetitions = 3; seed = 1 };
          Khan_baseline { repetitions = 3; seed = 1 };
        ]
  in
  List.map (fun a -> solve_ic ?jobs ?observer ?telemetry ?flat a inst) algorithms
  |> List.sort (fun a b -> compare a.weight b.weight)
