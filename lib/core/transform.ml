module Graph = Dsf_graph.Graph
module Instance = Dsf_graph.Instance
module Uf = Dsf_util.Union_find
module Bfs = Dsf_congest.Bfs
module Tree_ops = Dsf_congest.Tree_ops
module Pipeline = Dsf_congest.Pipeline
module Sim = Dsf_congest.Sim
module Bitsize = Dsf_util.Bitsize

type 'a outcome = {
  value : 'a;
  rounds : int;
  messages : int;
}

let cr_to_ic ?observer ?telemetry ?flat ?jobs ?chaos (cr : Instance.cr) =
  Dsf_congest.Telemetry.span_opt telemetry "cr_to_ic" @@ fun () ->
  let g = cr.Instance.cr_graph in
  let n = Graph.n g in
  let root = Bfs.max_id_root g in
  let tree, s1 = Bfs.build ?observer ?telemetry ?flat ?jobs ?chaos g ~root in
  (* Convergecast the requests with forest filtering: a request that closes
     a cycle with already-known connectivity is redundant, so at most t - 1
     pairs survive (proof of Lemma 2.3).  The filtered pipelined upcast is
     exactly this with a trivial key. *)
  let items v =
    List.filter_map
      (fun w ->
        if w = v then None
        else Some { Pipeline.key = (min v w, max v w); a = v; b = w })
      cr.Instance.requests.(v)
  in
  let surviving, s2 =
    Pipeline.filtered_upcast ?observer ?telemetry ?flat ?jobs ?chaos g
      ~tree ~vn:n
      ~pre:[] ~items ~cmp:compare
      ~bits:(fun _ -> 2 * Bitsize.id_bits ~n)
  in
  let pairs = List.map (fun it -> it.Pipeline.a, it.Pipeline.b) surviving in
  let _, s3 =
    Tree_ops.broadcast ?observer ?telemetry ?flat ?jobs ?chaos g ~tree
      ~items:pairs
      ~bits:(fun _ -> 2 * Bitsize.id_bits ~n)
  in
  (* Everyone now computes components of the request graph locally.  The
     label of a component is its smallest terminal id. *)
  let uf = Uf.create n in
  let is_term = Array.make n false in
  Array.iteri
    (fun v rs ->
      List.iter
        (fun w ->
          is_term.(v) <- true;
          is_term.(w) <- true;
          ignore (Uf.union uf v w))
        rs)
    cr.Instance.requests;
  let smallest = Array.make n max_int in
  for v = 0 to n - 1 do
    if is_term.(v) then begin
      let r = Uf.find uf v in
      if v < smallest.(r) then smallest.(r) <- v
    end
  done;
  let labels =
    Array.init n (fun v ->
        if is_term.(v) then smallest.(Uf.find uf v) else -1)
  in
  {
    value = Instance.make_ic g labels;
    rounds = s1.Sim.rounds + s2.Sim.rounds + s3.Sim.rounds;
    messages = s1.Sim.messages + s2.Sim.messages + s3.Sim.messages;
  }

let minimalize ?observer ?telemetry ?flat ?jobs ?chaos (inst : Instance.ic) =
  Dsf_congest.Telemetry.span_opt telemetry "minimalize" @@ fun () ->
  let g = inst.Instance.graph in
  let n = Graph.n g in
  let root = Bfs.max_id_root g in
  let tree, s1 = Bfs.build ?observer ?telemetry ?flat ?jobs ?chaos g ~root in
  (* Each terminal reports (label, id); inner nodes forward at most two
     distinct witnesses per label (Lemma 2.4). *)
  let items v =
    if inst.Instance.labels.(v) >= 0 then [ inst.Instance.labels.(v), v ]
    else []
  in
  let witnesses, s2 =
    Tree_ops.upcast_dedup ?observer ?telemetry ?flat ?jobs ?chaos ~per_key:2
      g ~tree
      ~items ~key:fst
      ~bits:(fun _ -> 2 * Bitsize.id_bits ~n)
  in
  let count = Hashtbl.create 16 in
  List.iter
    (fun (l, _) ->
      Hashtbl.replace count l (1 + Option.value ~default:0 (Hashtbl.find_opt count l)))
    witnesses;
  let keep = Hashtbl.fold (fun l c acc -> if c >= 2 then l :: acc else acc) count [] in
  let _, s3 =
    Tree_ops.broadcast ?observer ?telemetry ?flat ?jobs ?chaos g ~tree
      ~items:keep
      ~bits:(fun _ -> Bitsize.id_bits ~n)
  in
  let labels =
    Array.mapi
      (fun _ l -> if l >= 0 && List.mem l keep then l else -1)
      inst.Instance.labels
  in
  {
    value = Instance.make_ic g labels;
    rounds = s1.Sim.rounds + s2.Sim.rounds + s3.Sim.rounds;
    messages = s1.Sim.messages + s2.Sim.messages + s3.Sim.messages;
  }
