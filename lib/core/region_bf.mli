(** Distributed computation of the terminal decomposition for one merge
    phase (Lemma 4.8): a multi-source Bellman-Ford over *exact fractional*
    reduced distances.

    Sources are the nodes already covered by active moats, seeded with their
    (non-positive) offset [wd(v, u) - rad(v)] so that partially covered edges
    are charged exactly their reduced weight.  Nodes covered by inactive
    moats are frozen: they neither update nor relay (an active moat reaching
    an inactive one is a merge event that ends the phase, so growth never
    legitimately passes through an inactive region — see DESIGN.md).

    Labels are compared lexicographically by (distance, owner terminal id,
    hops), matching Definition 4.6's tie-breaking.  The number of simulated
    rounds is the quantity Lemma 4.8 bounds by O(s). *)

type node_result = {
  owner : int;  (** owning terminal's node id; [-1] if unreached *)
  offset : Frac.t;  (** wd(owner, u) - rad(owner), the reduced distance *)
  parent : int;  (** predecessor towards the owner; [-1] at sources *)
}

val run :
  ?observer:Dsf_congest.Sim.observer ->
  ?faults:Dsf_congest.Sim.faults ->
  ?telemetry:Dsf_congest.Telemetry.t ->
  ?flat:bool ->
  ?jobs:int ->
  ?chaos:Dsf_congest.Fault.chaos ->
  Dsf_graph.Graph.t ->
  sources:(int * Frac.t * int) list ->
  frozen:bool array ->
  node_result array * Dsf_congest.Sim.stats
(** [run g ~sources ~frozen] with [sources = [(node, offset, owner); ...]].
    Frozen nodes keep [owner = -1] in the result (callers retain their old
    assignment).  [observer] taps the run's messages (per-run, domain-safe).

    [~flat:true] runs the native flat-engine port on
    {!Dsf_congest.Sim.run_flat} with [?jobs] domains: mutable in-place node
    state, CSR-resolved incoming weights, and one shared boxed [Relax]
    record per send-burst (dyadic distances exceed an immediate int, so
    messages stay boxed by design).  Labels, rounds, messages, bits, and
    observer traces are bit-identical to the classic protocol (differential
    suite enforced).  [~flat:false] forces the classic active engine;
    omitting [flat] defers to {!Dsf_congest.Sim.run}'s engine selection.
    [faults] injects a fault plan (active or flat engine only).  [chaos]
    instead runs the classic protocol hardened with checkpointed recovery
    under the given chaos plan (exclusive with [faults]; see
    {!Dsf_congest.Fault.sim_run}). *)
