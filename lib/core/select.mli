(** Path-edge selection by token flood (Step 5 of the Appendix E.1
    algorithm, shared by the deterministic algorithms).

    Endpoints of the chosen inducing edges send a token up their frozen
    region-tree parent chain; each node forwards only its first token, and
    every traversed tree edge is selected.  The union over all tokens is
    exactly the union of the merge paths' tree segments. *)

val token_flood :
  ?observer:Dsf_congest.Sim.observer ->
  ?telemetry:Dsf_congest.Telemetry.t ->
  Dsf_graph.Graph.t ->
  parent:int array ->
  seeds:bool array ->
  int list * Dsf_congest.Sim.stats
(** Returns the selected edge ids and the simulation stats.  [parent.(v)]
    is the frozen region-tree parent (-1 at region roots); [seeds] marks
    the nodes that start with a token.  [observer] taps the run's messages
    (per-run, domain-safe). *)
