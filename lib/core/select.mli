(** Path-edge selection by token flood (Step 5 of the Appendix E.1
    algorithm, shared by the deterministic algorithms).

    Endpoints of the chosen inducing edges send a token up their frozen
    region-tree parent chain; each node forwards only its first token, and
    every traversed tree edge is selected.  The union over all tokens is
    exactly the union of the merge paths' tree segments. *)

val token_flood :
  ?observer:Dsf_congest.Sim.observer ->
  ?faults:Dsf_congest.Sim.faults ->
  ?telemetry:Dsf_congest.Telemetry.t ->
  ?flat:bool ->
  ?jobs:int ->
  ?chaos:Dsf_congest.Fault.chaos ->
  Dsf_graph.Graph.t ->
  parent:int array ->
  seeds:bool array ->
  int list * Dsf_congest.Sim.stats
(** Returns the selected edge ids and the simulation stats.  [parent.(v)]
    is the frozen region-tree parent (-1 at region roots); [seeds] marks
    the nodes that start with a token.  [observer] taps the run's messages
    (per-run, domain-safe).

    [~flat:true] runs the native flat-engine port on
    {!Dsf_congest.Sim.run_flat} with [?jobs] domains: node state is one
    immediate int (a {!Dsf_util.Pack} layout of pending, forwarded, and
    marked edge id + 1) and tokens are bare ints, with the sparse scheduler
    tracking the token wavefront instead of the classic full sweep.
    Selected edges, rounds, messages, bits, and observer traces are
    bit-identical to the classic protocol (differential suite enforced).
    [~flat:false] forces the classic active engine; omitting [flat] defers
    to {!Dsf_congest.Sim.run}'s engine selection.  [faults] injects a
    fault plan (active or flat engine only).  [chaos] instead runs the
    classic protocol hardened with checkpointed recovery under the given
    chaos plan (exclusive with [faults]; see
    {!Dsf_congest.Fault.sim_run}). *)
