(** The sublinear-in-t deterministic algorithm (Section 4.2,
    Theorem F.11 / Corollary 4.21): a distributed emulation of the rounded
    Algorithm 2 achieving factor (2 + ε) in O~(sk + σ) rounds, where
    σ = sqrt(min(st, n)).

    Per growth phase (threshold µ̂, (1+ε/2)µ̂, ...):

    + Step 3a — merge phases: each runs a terminal-decomposition
      Bellman-Ford (simulated) and a global min-convergecast (simulated) to
      find the next active-INACTIVE merge; active-active merges do not stop
      growth and are deferred.
    + Steps 3b-3f — deferred active-active merges: small moats (component
      < σ nodes, Definition 4.18) repeatedly propose their minimal
      candidate and merge along a maximal matching (charged O~(σ + s) per
      iteration, Lemma F.4); the at most σ candidates left are selected by
      the pipelined Kruskal filter (simulated, Lemma 4.14).
    + Steps 3g-3i — moat bookkeeping and activity recomputation (charged
      O(D + k + σ), Lemma F.5).

    The final pruning (Appendix F.3) is an edge-level prune charged
    O~(σ + k + D) per Corollary F.10.

    The matching-then-filter selection provably equals plain Kruskal on the
    candidate multigraph (minimal incident edges are in the unique minimum
    forest), so the merge schedule coincides with {!Moat_rounded}'s — which
    the tests check pair by pair. *)

type result = {
  solution : bool array;
  weight : int;
  ledger : Dsf_congest.Ledger.t;
  sigma : int;
  growth_phases : int;
  merge_phase_count : int;  (** sum of k_g: decompositions computed *)
  merge_count : int;
  merge_pairs : (int * int) list;  (** owner-terminal pairs, in order *)
  small_moat_iterations : int;
}

val run :
  ?observer:Dsf_congest.Sim.observer ->
  ?telemetry:Dsf_congest.Telemetry.t ->
  eps_num:int ->
  eps_den:int ->
  Dsf_graph.Instance.ic ->
  result
(** [observer] taps every simulated run (per-run, domain-safe).
    [telemetry] profiles the run as a span tree ([minimalize] / [setup] /
    [growth] with [merge_phase], [small_moats] and [activity] nested per
    growth phase / [final]) and attaches the ledger so charged entries land
    in their enclosing span. *)
