(* Level-routing protocols shared by the randomized algorithm (Section 5,
   steps 3c and 3d) and the Khan et al. baseline: label-to-target routing
   with per-(label, target) filtering, and bundle backtracing. *)

module Graph = Dsf_graph.Graph
module Sim = Dsf_congest.Sim
module Bitsize = Dsf_util.Bitsize
module Virtual_tree = Dsf_embed.Virtual_tree

(* ----------------------------------------------------------------------- *)
(* Step 3c: label-to-ancestor routing with per-(label, target) filtering.   *)
(* Each node forwards one unsent (label, target) pair per round along its   *)
(* recorded shortest path; traversed edges are selected into F.             *)
(* ----------------------------------------------------------------------- *)

type route_state = {
  known : (int * int, int) Hashtbl.t;
      (** (label, target) -> first sender (-1 if originated here) *)
  unsent : (int * int) list;  (** queue, FIFO *)
  lhat : int list;  (** labels delivered to me as a target *)
  marked : int list;  (** edge ids selected by my sends *)
}

let route_phase ?observer g vt ~origins =
  let n = Graph.n g in
  let proto : (route_state, int * int) Sim.protocol =
    {
      init =
        (fun view ->
          let v = view.Sim.node in
          let known = Hashtbl.create 8 in
          let mine = origins v in
          List.iter (fun lw -> Hashtbl.replace known lw (-1)) mine;
          { known; unsent = mine; lhat = []; marked = [] });
      step =
        (fun view ~round:_ st ~inbox ->
          let v = view.Sim.node in
          let st =
            List.fold_left
              (fun st (sender, ((_, _) as lw)) ->
                if Hashtbl.mem st.known lw then st
                else begin
                  Hashtbl.replace st.known lw sender;
                  { st with unsent = st.unsent @ [ lw ] }
                end)
              st inbox
          in
          (* Deliver-to-self entries are free; handle them all, then send
             at most one remote entry. *)
          let rec dispatch st =
            match st.unsent with
            | [] -> st, []
            | ((lam, w) as lw) :: rest ->
                if w = v then
                  dispatch { st with unsent = rest; lhat = lam :: st.lhat }
                else begin
                  match Virtual_tree.route_next_hop vt v w with
                  | None ->
                      (* No route (stale entry); drop it. *)
                      dispatch { st with unsent = rest }
                  | Some nb ->
                      let eid =
                        match Graph.find_edge g v nb with
                        | Some id -> id
                        | None -> invalid_arg "Rand_dsf: next hop not adjacent"
                      in
                      ( { st with unsent = rest; marked = eid :: st.marked },
                        [ nb, lw ] )
                end
          in
          dispatch st);
      is_done = (fun st -> st.unsent = []);
      msg_bits = (fun _ -> 2 * Bitsize.id_bits ~n);
      wake = None;
    }
  in
  Sim.run ?observer g proto

(* ----------------------------------------------------------------------- *)
(* Step 3d: targets send their collected labels back along the recorded     *)
(* (label, target) chain to one originating holder.                         *)
(* ----------------------------------------------------------------------- *)

type back_msg = { route : int * int; payload : int }

type back_state = {
  b_known : (int * int, int) Hashtbl.t;  (** same tables as the route phase *)
  b_queue : back_msg list;
  b_l : int list;  (** labels accepted as the new holder *)
}

let backtrace_phase ?observer g ~tables ~bundles =
  let n = Graph.n g in
  let proto : (back_state, back_msg) Sim.protocol =
    {
      init =
        (fun view ->
          let v = view.Sim.node in
          { b_known = tables v; b_queue = bundles v; b_l = [] });
      step =
        (fun _view ~round:_ st ~inbox ->
          let st =
            List.fold_left
              (fun st (_, msg) -> { st with b_queue = st.b_queue @ [ msg ] })
              st inbox
          in
          let rec dispatch st =
            match st.b_queue with
            | [] -> st, []
            | msg :: rest -> begin
                match Hashtbl.find_opt st.b_known msg.route with
                | Some (-1) | None ->
                    (* We originated this chain: accept the label. *)
                    dispatch { st with b_queue = rest; b_l = msg.payload :: st.b_l }
                | Some sender -> { st with b_queue = rest }, [ sender, msg ]
              end
          in
          dispatch st);
      is_done = (fun st -> st.b_queue = []);
      msg_bits = (fun _ -> 3 * Bitsize.id_bits ~n);
      wake = None;
    }
  in
  Sim.run ?observer g proto

(* ----------------------------------------------------------------------- *)
