(** Distributed deterministic Steiner Forest (Section 4.1, Theorem 4.17):
    a CONGEST emulation of the moat-growing Algorithm 1 with approximation
    factor 2 and round complexity O(ks + t).

    Structure (Appendix E.1), all phases genuinely simulated:

    + BFS tree; collect and broadcast all (terminal, label) pairs —
      O(D + t) rounds, pipelined.
    + Per merge phase j: compute the terminal decomposition with a
      reduced-weight multi-source Bellman-Ford (Lemma 4.8, O(s) rounds);
      boundary nodes propose candidate merges; a pipelined Kruskal-filtered
      convergecast (Corollary 4.16) delivers them in ascending order to the
      root, which stops at the first merge that changes some terminal's
      activity status; the phase's merges are broadcast, and every node
      locally updates moats, radii, activity, and its region freeze.
    + Finally each node locally computes the minimal candidate subforest
      F_min and path edges are marked by tokens climbing the frozen
      region trees (O(s) rounds).

    The per-merge growth values are exposed so tests can check that the
    emulation follows exactly the merge schedule of the centralized
    {!Moat}. *)

type merge_info = {
  mu_total : Frac.t;  (** growth from phase start until this merge *)
  mu_increment : Frac.t;  (** growth since the previous merge *)
  terminals : int * int;  (** terminal node ids whose moats merged *)
  phase : int;
}

type result = {
  solution : bool array;  (** the returned minimal feasible forest *)
  weight : int;
  dual : Frac.t;  (** same certified lower bound as {!Moat} *)
  merges : merge_info list;
  phase_count : int;
  ledger : Dsf_congest.Ledger.t;  (** full round accounting *)
  max_edge_round_bits : int;  (** congestion discipline check *)
}

val run :
  ?observer:Dsf_congest.Sim.observer ->
  ?telemetry:Dsf_congest.Telemetry.t ->
  ?flat:bool ->
  ?jobs:int ->
  ?chaos:Dsf_congest.Fault.chaos ->
  Dsf_graph.Instance.ic ->
  result
(** Requires a connected graph.  Singleton components are dropped
    (Lemma 2.4; the O(D + k) transform is charged to the ledger).
    [observer] taps every message of every simulated subroutine —
    per-run and domain-safe, the replacement for wrapping the call in
    {!Dsf_congest.Sim.with_observer}.  [telemetry] profiles the run as a
    span tree ([minimalize] / [setup] / [phase] / [final], with the
    simulated primitives nested beneath) and attaches the ledger so every
    charged entry lands in its enclosing span.

    [~flat:true] runs every simulated subroutine on the flat-core engine —
    native ports where they exist (BFS, Bellman-Ford decomposition,
    boundary exchange, filtered upcast, tree ops, token flood), the boxed
    adapter elsewhere — with [?jobs] domains; the result, ledger, stats,
    and observer traces are bit-identical to the classic engines.
    [~flat:false] forces the classic active engine; omitting [flat]
    defers to {!Dsf_congest.Sim.run}'s engine selection.

    [chaos] runs every simulated subroutine hardened with checkpointed
    crash recovery under the given chaos plan (see
    {!Dsf_congest.Fault.sim_run}): the solution, weight, dual, merge
    schedule, and phase count are bit-identical to the fault-free run on
    any engine — only the ledger's round counts (and the recovery
    telemetry) reflect the injected faults.  Native flat ports are
    bypassed under chaos; with [~flat:true] the hardened classic
    protocols still run on the flat engine through its boxed adapter. *)
