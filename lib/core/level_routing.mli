(** Level-routing protocols of the randomized algorithm (Section 5, steps
    3c and 3d), shared with the Khan et al. baseline.

    {!route_phase}: every node holding (label, target) pairs forwards one
    unsent pair per round along its recorded shortest path toward the
    target; the first copy of each pair wins at every node (the filtering
    that caps per-target work at O(s + k)), and every traversed edge is
    selected.  {!backtrace_phase}: targets ship their collected label
    bundles back along the recorded reverse chain to one originating
    holder. *)

type route_state = {
  known : (int * int, int) Hashtbl.t;
      (** (label, target) -> first sender; -1 if originated locally *)
  unsent : (int * int) list;
  lhat : int list;  (** labels delivered to this node as a target *)
  marked : int list;  (** edge ids selected by this node's sends *)
}

val route_phase :
  ?observer:Dsf_congest.Sim.observer ->
  Dsf_graph.Graph.t ->
  Dsf_embed.Virtual_tree.t ->
  origins:(int -> (int * int) list) ->
  route_state array * Dsf_congest.Sim.stats
(** [origins v] is the initial (label, target) list of node [v] (step 3b). *)

type back_msg = { route : int * int; payload : int }

type back_state = {
  b_known : (int * int, int) Hashtbl.t;
  b_queue : back_msg list;
  b_l : int list;  (** labels accepted as the new holder *)
}

val backtrace_phase :
  ?observer:Dsf_congest.Sim.observer ->
  Dsf_graph.Graph.t ->
  tables:(int -> (int * int, int) Hashtbl.t) ->
  bundles:(int -> back_msg list) ->
  back_state array * Dsf_congest.Sim.stats
(** [tables] are the per-node [known] tables from the route phase;
    [bundles v] the back messages node [v] initiates. *)
