module Graph = Dsf_graph.Graph
module Sim = Dsf_congest.Sim
module Bitsize = Dsf_util.Bitsize

type node_result = {
  owner : int;
  offset : Frac.t;
  parent : int;
}

type state = {
  dist : Frac.t;
  owner : int;
  parent : int;
  hops : int;
  dirty : bool;
}

type msg = Relax of { dist : Frac.t; owner : int; hops : int }

let better (d1, o1, h1) (d2, o2, h2) =
  let c = Frac.compare d1 d2 in
  c < 0 || (c = 0 && (o1, h1) < (o2, h2))

let run ?observer ?telemetry g ~sources ~frozen =
  let n = Graph.n g in
  let init = Hashtbl.create (List.length sources) in
  List.iter
    (fun (v, off, owner) ->
      match Hashtbl.find_opt init v with
      | Some (o, ow) when better (o, ow, 0) (off, owner, 0) -> ()
      | _ -> Hashtbl.replace init v (off, owner))
    sources;
  let unreached = Frac.of_int max_int in
  (* Sources are pinned: a node already covered by an active moat keeps its
     owner and offset (Definition 4.7 freezes Reg_{j-1}(v)); it announces its
     label once and ignores relaxations. *)
  let pinned v = Hashtbl.mem init v in
  let proto : (state, msg) Sim.protocol =
    {
      init =
        (fun view ->
          let v = view.Sim.node in
          match Hashtbl.find_opt init v with
          | Some (off, owner) when not frozen.(v) ->
              { dist = off; owner; parent = -1; hops = 0; dirty = true }
          | _ ->
              { dist = unreached; owner = -1; parent = -1; hops = max_int; dirty = false });
      step =
        (fun view ~round:_ st ~inbox ->
          let v = view.Sim.node in
          if frozen.(v) then st, []
          else if pinned v then begin
            if st.dirty then begin
              let outbox =
                Array.to_list view.Sim.nbrs
                |> List.filter_map (fun (nb, _, _) ->
                       if frozen.(nb) then None
                       else
                         Some
                           ( nb,
                             Relax { dist = st.dist; owner = st.owner; hops = st.hops } ))
              in
              { st with dirty = false }, outbox
            end
            else st, []
          end
          else begin
            let st =
              List.fold_left
                (fun st (sender, Relax r) ->
                  let w = ref (-1) in
                  Array.iter
                    (fun (nb, wt, _) -> if nb = sender then w := wt)
                    view.Sim.nbrs;
                  assert (!w >= 0);
                  let nd = Frac.add r.dist (Frac.of_int !w) in
                  let nh = r.hops + 1 in
                  (* An unreached node (owner < 0) adopts any label; the
                     sentinel distance is never compared (it would overflow
                     the dyadic lift). *)
                  if
                    st.owner < 0
                    || better (nd, r.owner, nh) (st.dist, st.owner, st.hops)
                  then
                    { dist = nd; owner = r.owner; parent = sender; hops = nh; dirty = true }
                  else st)
                st inbox
            in
            if st.dirty && st.owner >= 0 then begin
              let outbox =
                Array.to_list view.Sim.nbrs
                |> List.filter_map (fun (nb, _, _) ->
                       if frozen.(nb) then None
                       else Some (nb, Relax { dist = st.dist; owner = st.owner; hops = st.hops }))
              in
              { st with dirty = false }, outbox
            end
            else { st with dirty = false }, []
          end);
      is_done = (fun st -> not st.dirty);
      msg_bits =
        (fun (Relax r) ->
          Bitsize.int_bits (abs r.dist.Frac.num)
          + Bitsize.int_bits (max 1 r.dist.Frac.den_pow)
          + Bitsize.id_bits ~n
          + Bitsize.int_bits (max 1 r.hops));
      (* Same wavefront discipline as {!Dsf_congest.Bellman_ford}: frozen,
         pinned-and-announced, and clean nodes all no-op without mail. *)
      wake = Some Sim.never;
    }
  in
  let states, stats =
    Dsf_congest.Telemetry.span_opt telemetry "region_bf" (fun () ->
        Sim.run ?observer ?telemetry g proto)
  in
  ( Array.map
      (fun st ->
        if st.owner >= 0 then
          { owner = st.owner; offset = st.dist; parent = st.parent }
        else { owner = -1; offset = unreached; parent = -1 })
      states,
    stats )
