module Graph = Dsf_graph.Graph
module Sim = Dsf_congest.Sim
module Bitsize = Dsf_util.Bitsize

type node_result = {
  owner : int;
  offset : Frac.t;
  parent : int;
}

type state = {
  dist : Frac.t;
  owner : int;
  parent : int;
  hops : int;
  dirty : bool;
}

type msg = Relax of { dist : Frac.t; owner : int; hops : int }

let better (d1, o1, h1) (d2, o2, h2) =
  let c = Frac.compare d1 d2 in
  c < 0 || (c = 0 && (o1, h1) < (o2, h2))

(* Native flat-engine port.  Distances are exact dyadic rationals
   ({!Frac.t}), which do not fit an immediate int, so messages stay boxed —
   the sanctioned fallback — but only ONE [Relax] record is allocated per
   send-burst (shared across all neighbor slots), node state is a mutable
   record updated in place, and incoming edge weights resolve through a
   per-directed-CSR-position [Frac.t] table instead of a linear scan of the
   neighbor view per received message.  Wavefront, label order, and the
   pinned/frozen discipline are exactly those of the classic protocol. *)
type flat_state = {
  mutable fdist : Frac.t;
  mutable fowner : int;
  mutable fparent : int;
  mutable fhops : int;
  mutable fdirty : bool;
}

let run ?observer ?faults ?telemetry ?flat ?jobs ?chaos g ~sources ~frozen =
  let n = Graph.n g in
  let init = Hashtbl.create (max 1 (List.length sources)) in
  List.iter
    (fun (v, off, owner) ->
      match Hashtbl.find_opt init v with
      | Some (o, ow) when better (o, ow, 0) (off, owner, 0) -> ()
      | _ -> Hashtbl.replace init v (off, owner))
    sources;
  let unreached = Frac.of_int max_int in
  (* Sources are pinned: a node already covered by an active moat keeps its
     owner and offset (Definition 4.7 freezes Reg_{j-1}(v)); it announces its
     label once and ignores relaxations. *)
  let pinned v = Hashtbl.mem init v in
  let flat_proto () : (flat_state, msg) Sim.flat_protocol =
    let csr = Graph.csr g in
    let wfrac =
      Array.map (fun eid -> Frac.of_int (Graph.edge g eid).Graph.w)
        csr.Graph.eid
    in
    {
      fp_init =
        (fun view ->
          let v = view.Sim.node in
          match Hashtbl.find_opt init v with
          | Some (off, owner) when not frozen.(v) ->
              { fdist = off; fowner = owner; fparent = -1; fhops = 0;
                fdirty = true }
          | _ ->
              { fdist = unreached; fowner = -1; fparent = -1;
                fhops = max_int; fdirty = false });
      fp_step =
        (fun view ~round:_ st ~inbox ~emit ->
          let v = view.Sim.node in
          if frozen.(v) then st
          else begin
            if not (pinned v) then begin
              let k = Sim.inbox_len inbox in
              for i = 0 to k - 1 do
                let sender = Sim.inbox_src inbox i in
                let (Relax r) = Sim.inbox_msg inbox i in
                let w = wfrac.(Graph.pos csr ~src:v ~dst:sender) in
                let nd = Frac.add r.dist w in
                let nh = r.hops + 1 in
                (* An unreached node (owner < 0) adopts any label; the
                   sentinel distance is never compared (it would overflow
                   the dyadic lift). *)
                if
                  st.fowner < 0
                  || better (nd, r.owner, nh) (st.fdist, st.fowner, st.fhops)
                then begin
                  st.fdist <- nd;
                  st.fowner <- r.owner;
                  st.fparent <- sender;
                  st.fhops <- nh;
                  st.fdirty <- true
                end
              done
            end;
            if st.fdirty && st.fowner >= 0 then begin
              let m =
                Relax { dist = st.fdist; owner = st.fowner; hops = st.fhops }
              in
              Array.iter
                (fun (nb, _, _) -> if not frozen.(nb) then emit ~dst:nb m)
                view.Sim.nbrs
            end;
            st.fdirty <- false;
            st
          end);
      fp_is_done = (fun st -> not st.fdirty);
      fp_msg_bits =
        (fun (Relax r) ->
          Bitsize.int_bits (abs r.dist.Frac.num)
          + Bitsize.int_bits (max 1 r.dist.Frac.den_pow)
          + Bitsize.id_bits ~n
          + Bitsize.int_bits (max 1 r.hops));
      fp_wake = Some Sim.never;
    }
  in
  if Option.is_none chaos && flat = Some true then begin
    let states, stats =
      Dsf_congest.Telemetry.span_opt telemetry "region_bf" (fun () ->
          Sim.run_flat ?observer ?faults ?telemetry ?jobs g (flat_proto ()))
    in
    ( Array.map
        (fun st ->
          if st.fowner >= 0 then
            { owner = st.fowner; offset = st.fdist; parent = st.fparent }
          else { owner = -1; offset = unreached; parent = -1 })
        states,
      stats )
  end
  else begin
  let proto : (state, msg) Sim.protocol =
    {
      init =
        (fun view ->
          let v = view.Sim.node in
          match Hashtbl.find_opt init v with
          | Some (off, owner) when not frozen.(v) ->
              { dist = off; owner; parent = -1; hops = 0; dirty = true }
          | _ ->
              { dist = unreached; owner = -1; parent = -1; hops = max_int; dirty = false });
      step =
        (fun view ~round:_ st ~inbox ->
          let v = view.Sim.node in
          if frozen.(v) then st, []
          else if pinned v then begin
            if st.dirty then begin
              let outbox =
                Array.to_list view.Sim.nbrs
                |> List.filter_map (fun (nb, _, _) ->
                       if frozen.(nb) then None
                       else
                         Some
                           ( nb,
                             Relax { dist = st.dist; owner = st.owner; hops = st.hops } ))
              in
              { st with dirty = false }, outbox
            end
            else st, []
          end
          else begin
            let st =
              List.fold_left
                (fun st (sender, Relax r) ->
                  let w = ref (-1) in
                  Array.iter
                    (fun (nb, wt, _) -> if nb = sender then w := wt)
                    view.Sim.nbrs;
                  assert (!w >= 0);
                  let nd = Frac.add r.dist (Frac.of_int !w) in
                  let nh = r.hops + 1 in
                  (* An unreached node (owner < 0) adopts any label; the
                     sentinel distance is never compared (it would overflow
                     the dyadic lift). *)
                  if
                    st.owner < 0
                    || better (nd, r.owner, nh) (st.dist, st.owner, st.hops)
                  then
                    { dist = nd; owner = r.owner; parent = sender; hops = nh; dirty = true }
                  else st)
                st inbox
            in
            if st.dirty && st.owner >= 0 then begin
              let outbox =
                Array.to_list view.Sim.nbrs
                |> List.filter_map (fun (nb, _, _) ->
                       if frozen.(nb) then None
                       else Some (nb, Relax { dist = st.dist; owner = st.owner; hops = st.hops }))
              in
              { st with dirty = false }, outbox
            end
            else { st with dirty = false }, []
          end);
      is_done = (fun st -> not st.dirty);
      msg_bits =
        (fun (Relax r) ->
          Bitsize.int_bits (abs r.dist.Frac.num)
          + Bitsize.int_bits (max 1 r.dist.Frac.den_pow)
          + Bitsize.id_bits ~n
          + Bitsize.int_bits (max 1 r.hops));
      (* Same wavefront discipline as {!Dsf_congest.Bellman_ford}: frozen,
         pinned-and-announced, and clean nodes all no-op without mail. *)
      wake = Some Sim.never;
    }
  in
  let states, stats =
    Dsf_congest.Telemetry.span_opt telemetry "region_bf" (fun () ->
        Dsf_congest.Fault.sim_run ?observer ?faults ?telemetry ?flat ?jobs
          ?chaos ~recovery:(Dsf_congest.Fault.immutable ()) g proto)
  in
  ( Array.map
      (fun st ->
        if st.owner >= 0 then
          { owner = st.owner; offset = st.dist; parent = st.parent }
        else { owner = -1; offset = unreached; parent = -1 })
      states,
    stats )
  end
