module Graph = Dsf_graph.Graph
module Sim = Dsf_congest.Sim
module Bitsize = Dsf_util.Bitsize

(* ---------------------------------------------------------- mark phase *)

type mark_state = {
  pending : int list;  (** classes still to forward up *)
  seen : (int, unit) Hashtbl.t;
  senders : (int, int list) Hashtbl.t;  (** class -> children it came from *)
  up_marks : (int, unit) Hashtbl.t;  (** classes forwarded on (v, parent) *)
}

let mark_phase g ~parent ~labels =
  let proto : (mark_state, int) Sim.protocol =
    {
      init =
        (fun view ->
          let seen = Hashtbl.create 8 in
          let mine =
            List.filter
              (fun c ->
                if Hashtbl.mem seen c then false
                else begin
                  Hashtbl.add seen c ();
                  true
                end)
              (labels view.Sim.node)
          in
          {
            pending = mine;
            seen;
            senders = Hashtbl.create 8;
            up_marks = Hashtbl.create 8;
          });
      step =
        (fun view ~round:_ st ~inbox ->
          let v = view.Sim.node in
          let fresh =
            List.filter_map
              (fun (sender, c) ->
                Hashtbl.replace st.senders c
                  (sender
                  :: Option.value ~default:[] (Hashtbl.find_opt st.senders c));
                if Hashtbl.mem st.seen c then None
                else begin
                  Hashtbl.add st.seen c ();
                  Some c
                end)
              inbox
          in
          match st.pending @ fresh with
          | [] -> { st with pending = [] }, []
          | c :: rest ->
              if parent.(v) >= 0 then begin
                Hashtbl.replace st.up_marks c ();
                { st with pending = rest }, [ parent.(v), c ]
              end
              else { st with pending = rest }, []);
      is_done = (fun st -> st.pending = []);
      msg_bits = (fun _ -> Bitsize.id_bits ~n:(Graph.n g));
      wake = None;
    }
  in
  Sim.run g proto

(* -------------------------------------------------------- unmark phase *)

type unmark_state = {
  u_senders : (int, int list) Hashtbl.t;
  u_own : (int, unit) Hashtbl.t;
  u_marks : (int, unit) Hashtbl.t;  (** surviving classes on (v, parent) *)
  queues : (int, int Queue.t) Hashtbl.t;  (** per-child pending unmarks *)
}

let unmark_phase g ~parent ~labels ~mark_states =
  (* A node peels class c off toward its single witness subtree when no
     second witness exists at or above it. *)
  let decide st c =
    match Option.value ~default:[] (Hashtbl.find_opt st.u_senders c) with
    | [ only ] when not (Hashtbl.mem st.u_own c) -> Some only
    | _ -> None
  in
  let proto : (unmark_state, int) Sim.protocol =
    {
      init =
        (fun view ->
          let v = view.Sim.node in
          let (ms : mark_state) = mark_states.(v) in
          let u_own = Hashtbl.create 8 in
          List.iter (fun c -> Hashtbl.replace u_own c ()) (labels v);
          let st =
            {
              u_senders = ms.senders;
              u_own;
              u_marks = Hashtbl.copy ms.up_marks;
              queues = Hashtbl.create 4;
            }
          in
          (* Roots initiate the peeling. *)
          if parent.(v) < 0 then
            Hashtbl.iter
              (fun c _ ->
                match decide st c with
                | Some child ->
                    let q =
                      match Hashtbl.find_opt st.queues child with
                      | Some q -> q
                      | None ->
                          let q = Queue.create () in
                          Hashtbl.replace st.queues child q;
                          q
                    in
                    Queue.add c q
                | None -> ())
              st.u_senders;
          st);
      step =
        (fun _view ~round:_ st ~inbox ->
          (* An incoming unmark removes the class from our up-edge and may
             continue down our single witness branch. *)
          List.iter
            (fun (_, c) ->
              Hashtbl.remove st.u_marks c;
              match decide st c with
              | Some child ->
                  let q =
                    match Hashtbl.find_opt st.queues child with
                    | Some q -> q
                    | None ->
                        let q = Queue.create () in
                        Hashtbl.replace st.queues child q;
                        q
                  in
                  Queue.add c q
              | None -> ())
            inbox;
          let outbox =
            Hashtbl.fold
              (fun child q acc ->
                match Queue.take_opt q with
                | Some c -> (child, c) :: acc
                | None -> acc)
              st.queues []
          in
          st, outbox);
      is_done =
        (fun st ->
          Hashtbl.fold (fun _ q acc -> acc && Queue.is_empty q) st.queues true);
      msg_bits = (fun _ -> Bitsize.id_bits ~n:(Graph.n g));
      wake = None;
    }
  in
  Sim.run g proto

let run g ~parent ~labels =
  Array.iteri
    (fun v p ->
      if p >= 0 && Graph.find_edge g v p = None then
        invalid_arg "F6_protocol.run: parent not adjacent")
    parent;
  let mark_states, s1 = mark_phase g ~parent ~labels in
  let unmark_states, s2 = unmark_phase g ~parent ~labels ~mark_states in
  let kept = Array.make (Graph.m g) false in
  Array.iteri
    (fun v (st : unmark_state) ->
      if parent.(v) >= 0 && Hashtbl.length st.u_marks > 0 then begin
        match Graph.find_edge g v parent.(v) with
        | Some eid -> kept.(eid) <- true
        | None -> ()
      end)
    unmark_states;
  ( kept,
    {
      s1 with
      Sim.rounds = s1.Sim.rounds + s2.Sim.rounds;
      messages = s1.Sim.messages + s2.Sim.messages;
      total_bits = s1.Sim.total_bits + s2.Sim.total_bits;
    } )
