(** Construction and solution of the F-reduced instance (Definition 5.1) —
    the second stage of the randomized algorithm when s > sqrt(n).

    Terminals cluster into super-terminals T_v around their closest
    S-node in the already-selected subgraph (V, F); contracted, they form
    the reduced graph G^ whose labels are the connected components of the
    label helper graph (Lambda, E_Lambda).  The paper solves the reduced
    instance with the spanner machinery of [17], used purely as a black box
    with contract "O(log n)-approximate in O~(sqrt n + D) rounds".  We honor
    the same contract with the deterministic moat-growing 2-approximation
    run centrally on G^ (a *stronger* approximation), and charge the
    contracted round bound to the caller's ledger — the substitution is
    documented in DESIGN.md.

    The T_v assignment is genuinely simulated (hop-limited Bellman-Ford on
    the F-subgraph). *)

type outcome = {
  extra_edges : bool array;
      (** F': selected original-graph edges realizing the reduced solution *)
  reduced_terminal_count : int;  (** t^ <= |S| *)
  reduced_label_count : int;
  assignment_rounds : int;  (** simulated rounds for the T_v Voronoi *)
  label_rounds : int;
      (** simulated rounds for the Lemma G.12 helper-graph construction:
          per-T_v min-label gossip + pipelined forest upcast + broadcast *)
  charged_rounds : int;
      (** the remaining [17]-internals charge (central spanner solve):
          ~ sqrt n + D *)
  unassigned_terminals : int;
      (** terminals in no T_v (rely on F already connecting them, w.h.p.) *)
}

val solve :
  ?observer:Dsf_congest.Sim.observer ->
  ?telemetry:Dsf_congest.Telemetry.t ->
  ?spanner_stretch:int option ->
  Dsf_graph.Instance.ic ->
  f:bool array ->
  s_set:int list ->
  diameter:int ->
  outcome
(** [f] is the first-stage edge set; [s_set] the sqrt(n) highest-ranked
    nodes.  [diameter] is D (for the charge).

    [spanner_stretch] (default [Some 3]) follows the [17] recipe: a greedy
    spanner of the super-terminal metric is built ({!Dsf_graph.Spanner}),
    the reduced instance is solved on it, and its edges are realized as
    shortest paths.  [None] solves directly on the full reduced graph
    (slightly better quality, but not how the paper's black box works). *)
