module Graph = Dsf_graph.Graph
module Instance = Dsf_graph.Instance
module Uf = Dsf_util.Union_find
module Bellman_ford = Dsf_congest.Bellman_ford
module Sim = Dsf_congest.Sim

type outcome = {
  extra_edges : bool array;
  reduced_terminal_count : int;
  reduced_label_count : int;
  assignment_rounds : int;
  label_rounds : int;
  charged_rounds : int;
  unassigned_terminals : int;
}

let isqrt = Dsf_util.Intmath.isqrt

let solve ?observer ?telemetry ?(spanner_stretch = Some 3) inst ~f ~s_set
    ~diameter =
  let tspan name fn = Dsf_congest.Telemetry.span_opt telemetry name fn in
  let g = inst.Instance.graph in
  let n = Graph.n g in
  let m = Graph.m g in
  let extra = Array.make m false in
  match s_set with
  | [] ->
      {
        extra_edges = extra;
        reduced_terminal_count = 0;
        reduced_label_count = 0;
        assignment_rounds = 0;
        label_rounds = 0;
        charged_rounds = 0;
        unassigned_terminals = 0;
      }
  | _ ->
      (* T_v assignment: hop-limited Voronoi on the F-subgraph, simulated.
         Non-F edges get a weight beyond the radius cap, so they are never
         used; the cap itself is the O~(sqrt n) hop bound of Lemma G.1. *)
      let cap =
        6 * isqrt n * max 1 (int_of_float (ceil (log (float_of_int (max 2 n)))))
      in
      let big = cap + 1 in
      let weight_of eid = if f.(eid) then 1 else big in
      let res, stats =
        tspan "t_v_assignment" (fun () ->
            Bellman_ford.run ?observer ?telemetry g ~weight_of ~radius:cap
              ~sources:(List.map (fun v -> v, 0) s_set))
      in
      let assignment = res.Bellman_ford.src_of in
      (* Super-terminal index per S node with a nonempty terminal set. *)
      let members = Hashtbl.create 16 in
      let unassigned = ref 0 in
      Array.iteri
        (fun w l ->
          if l >= 0 then begin
            if assignment.(w) >= 0 then begin
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt members assignment.(w))
              in
              Hashtbl.replace members assignment.(w) (w :: prev)
            end
            else incr unassigned
          end)
        inst.Instance.labels;
      let supers = Hashtbl.fold (fun v _ acc -> v :: acc) members [] |> List.sort compare in
      let p = List.length supers in
      if p = 0 then
        {
          extra_edges = extra;
          reduced_terminal_count = 0;
          reduced_label_count = 0;
          assignment_rounds = stats.Sim.rounds;
          label_rounds = 0;
          charged_rounds = 0;
          unassigned_terminals = !unassigned;
        }
      else begin
        let proto_check = ref None in
        let super_index = Hashtbl.create p in
        List.iteri (fun i v -> Hashtbl.replace super_index v i) supers;
        (* Node -> reduced-graph id.  Terminals in some T_v map to the
           super node; everything else keeps an individual V_r node. *)
        let node_map = Array.make n (-1) in
        let next = ref p in
        for u = 0 to n - 1 do
          let assigned_terminal =
            inst.Instance.labels.(u) >= 0 && assignment.(u) >= 0
          in
          if assigned_terminal then
            node_map.(u) <- Hashtbl.find super_index assignment.(u)
          else begin
            node_map.(u) <- !next;
            incr next
          end
        done;
        let n_hat = !next in
        (* Min-weight edge per reduced pair, remembering the realizing
           original edge. *)
        let best : (int * int, int * int) Hashtbl.t = Hashtbl.create m in
        Array.iter
          (fun (e : Graph.edge) ->
            let a = node_map.(e.u) and b = node_map.(e.v) in
            if a <> b then begin
              let key = min a b, max a b in
              match Hashtbl.find_opt best key with
              | Some (w, _) when w <= e.w -> ()
              | _ -> Hashtbl.replace best key (e.w, e.id)
            end)
          (Graph.edges g);
        let triples = Hashtbl.fold (fun (a, b) (w, _) acc -> (a, b, w) :: acc) best [] in
        let g_hat = Graph.make ~n:n_hat triples in
        (* Reduced-graph edge id -> realizing original edge id. *)
        let orig_of_hat = Array.make (Graph.m g_hat) (-1) in
        Hashtbl.iter
          (fun (a, b) (_, orig_eid) ->
            match Graph.find_edge g_hat a b with
            | Some hat_eid -> orig_of_hat.(hat_eid) <- orig_eid
            | None -> ())
          best;
        (* Reduced labels: components of the label helper graph.  The
           distributed construction (Lemma G.12) is simulated: each T_v
           gossips its minimum label along the F-edges inside the cell,
           terminals then feed (own label, cell minimum) pairs into the
           pipelined forest filter, and the root broadcasts the resulting
           spanning forest of (Lambda, E_Lambda). *)
        let all_labels =
          Array.to_list inst.Instance.labels |> List.filter (fun l -> l >= 0)
          |> List.sort_uniq compare
        in
        let label_index = Hashtbl.create 16 in
        List.iteri (fun i l -> Hashtbl.replace label_index l i) all_labels;
        let label_rounds =
          tspan "label_helper" @@ fun () ->
          let tree, t1 =
            Dsf_congest.Bfs.build ?observer ?telemetry g
              ~root:(Dsf_congest.Bfs.max_id_root g)
          in
          (* Gossip stays inside each cell: enable only F-edges whose two
             endpoints share an assignment. *)
          let mask =
            Array.init m (fun eid ->
                let u, v = Graph.endpoints g eid in
                f.(eid) && assignment.(u) >= 0 && assignment.(u) = assignment.(v))
          in
          let values v =
            if inst.Instance.labels.(v) >= 0 && assignment.(v) >= 0 then
              Some (Hashtbl.find label_index inst.Instance.labels.(v))
            else None
          in
          let cell_min, t2 =
            Dsf_congest.Component_ops.component_min_item ?observer ?telemetry g
              ~mask
              ~values
              ~cmp:compare
              ~bits:(fun _ -> Dsf_util.Bitsize.id_bits ~n)
          in
          let items w =
            if inst.Instance.labels.(w) >= 0 && assignment.(w) >= 0 then begin
              match cell_min.(w) with
              | Some mi ->
                  let li = Hashtbl.find label_index inst.Instance.labels.(w) in
                  if li = mi then []
                  else
                    [ { Dsf_congest.Pipeline.key = (min li mi, max li mi);
                        a = li; b = mi } ]
              | None -> []
            end
            else []
          in
          let helper_forest, t3 =
            Dsf_congest.Pipeline.filtered_upcast ?observer ?telemetry g ~tree
              ~vn:(List.length all_labels) ~pre:[] ~items ~cmp:compare
              ~bits:(fun _ -> 2 * Dsf_util.Bitsize.id_bits ~n)
          in
          let _, t4 =
            Dsf_congest.Tree_ops.broadcast ?observer ?telemetry g ~tree
              ~items:helper_forest
              ~bits:(fun _ -> 2 * Dsf_util.Bitsize.id_bits ~n)
          in
          (* Consistency: the protocol's forest spans exactly the same
             label components as the definitional helper graph below. *)
          let proto_uf = Uf.create (List.length all_labels) in
          List.iter
            (fun (it : (int * int) Dsf_congest.Pipeline.item) ->
              ignore (Uf.union proto_uf it.Dsf_congest.Pipeline.a it.Dsf_congest.Pipeline.b))
            helper_forest;
          t1.Sim.rounds + t2.Sim.rounds + t3.Sim.rounds + t4.Sim.rounds
          |> fun r -> proto_check := Some proto_uf; r
        in
        let luf = Uf.create (List.length all_labels) in
        Hashtbl.iter
          (fun _ ws ->
            match ws with
            | [] -> ()
            | w0 :: rest ->
                let l0 = Hashtbl.find label_index inst.Instance.labels.(w0) in
                List.iter
                  (fun w ->
                    let l = Hashtbl.find label_index inst.Instance.labels.(w) in
                    ignore (Uf.union luf l0 l))
                  rest)
          members;
        (* The simulated Lemma G.12 forest must induce the same label
           partition as the definitional computation. *)
        (match !proto_check with
        | Some proto_uf ->
            List.iteri
              (fun i _ ->
                List.iteri
                  (fun j _ ->
                    if i < j then
                      assert (Uf.same proto_uf i j = Uf.same luf i j))
                  all_labels)
              all_labels
        | None -> ());
        let labels_hat = Array.make n_hat (-1) in
        List.iter
          (fun v ->
            let i = Hashtbl.find super_index v in
            match Hashtbl.find members v with
            | [] -> ()
            | w :: _ ->
                labels_hat.(i) <-
                  Uf.find luf (Hashtbl.find label_index inst.Instance.labels.(w)))
          supers;
        let inst_hat = Instance.make_ic g_hat labels_hat in
        let reduced_labels = Instance.component_count inst_hat in
        (* Solve following the [17] recipe: build a sparse spanner of the
           super-terminal metric, solve centrally ON THE SPANNER, and map
           its edges back to shortest paths.  (Without a stretch this
           degenerates to solving directly on the reduced graph.) *)
        let hat_solution =
          tspan "central_solve" @@ fun () ->
          match spanner_stretch with
          | None -> (Moat.run inst_hat).Moat.solution
          | Some stretch ->
              let metric =
                Array.init p (fun i ->
                    fst (Dsf_graph.Paths.dijkstra g_hat ~src:i))
              in
              let sp =
                Dsf_graph.Spanner.greedy
                  ~dist:(fun i j -> metric.(i).(j))
                  ~points:p ~stretch
              in
              let sg =
                Graph.make ~n:p sp.Dsf_graph.Spanner.edges
              in
              let sg_labels = Array.sub labels_hat 0 p in
              let res_sg = Moat.run (Instance.make_ic sg sg_labels) in
              (* Realize each selected spanner edge as a shortest path in
                 the reduced graph. *)
              let hat_sol = Array.make (Graph.m g_hat) false in
              Array.iter
                (fun (e : Graph.edge) ->
                  if res_sg.Moat.solution.(e.id) then begin
                    match
                      Dsf_graph.Paths.shortest_path g_hat ~src:e.u ~dst:e.v
                    with
                    | Some (nodes, _) ->
                        List.iter
                          (fun eid -> hat_sol.(eid) <- true)
                          (Dsf_graph.Paths.path_edges g_hat nodes)
                    | None -> ()
                  end)
                (Graph.edges sg);
              hat_sol
        in
        Array.iteri
          (fun hat_eid selected ->
            if selected && orig_of_hat.(hat_eid) >= 0 then
              extra.(orig_of_hat.(hat_eid)) <- true)
          hat_solution;
        {
          extra_edges = extra;
          reduced_terminal_count = p;
          reduced_label_count = reduced_labels;
          assignment_rounds = stats.Sim.rounds;
          label_rounds;
          charged_rounds = isqrt n + diameter;
          unassigned_terminals = !unassigned;
        }
      end
