(** Distributed instance transformations (Lemmas 2.3 and 2.4).

    [cr_to_ic] turns connection requests into equivalent input components in
    O(D + t) rounds: requests are convergecast with forest filtering (at
    most t - 1 survive), broadcast, and every node locally labels the
    connected components of the request graph.

    [minimalize] turns a DSF-IC instance into an equivalent minimal one
    (every surviving component has >= 2 terminals) in O(D + k) rounds: each
    label's first two witnesses are convergecast, the root broadcasts the
    set of non-singleton labels, and singleton terminals drop out. *)

type 'a outcome = {
  value : 'a;
  rounds : int;  (** simulated rounds *)
  messages : int;
}

val cr_to_ic :
  ?observer:Dsf_congest.Sim.observer ->
  ?telemetry:Dsf_congest.Telemetry.t ->
  ?flat:bool ->
  ?jobs:int ->
  ?chaos:Dsf_congest.Fault.chaos ->
  Dsf_graph.Instance.cr ->
  Dsf_graph.Instance.ic outcome
(** The resulting labels are the smallest terminal id in each request
    component, matching the construction in the proof of Lemma 2.3.
    [flat]/[jobs] select the simulation engine for every subroutine
    (see {!Dsf_congest.Bfs.build}); results are engine-invariant.
    [chaos] runs every subroutine hardened with checkpointed recovery
    under the given chaos plan (see {!Dsf_congest.Fault.sim_run}). *)

val minimalize :
  ?observer:Dsf_congest.Sim.observer ->
  ?telemetry:Dsf_congest.Telemetry.t ->
  ?flat:bool ->
  ?jobs:int ->
  ?chaos:Dsf_congest.Fault.chaos ->
  Dsf_graph.Instance.ic ->
  Dsf_graph.Instance.ic outcome
