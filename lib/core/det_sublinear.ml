module Graph = Dsf_graph.Graph
module Instance = Dsf_graph.Instance
module Paths = Dsf_graph.Paths
module Uf = Dsf_util.Union_find
module Sim = Dsf_congest.Sim
module Bfs = Dsf_congest.Bfs
module Tree_ops = Dsf_congest.Tree_ops
module Pipeline = Dsf_congest.Pipeline
module Ledger = Dsf_congest.Ledger
module Bitsize = Dsf_util.Bitsize

type result = {
  solution : bool array;
  weight : int;
  ledger : Dsf_congest.Ledger.t;
  sigma : int;
  growth_phases : int;
  merge_phase_count : int;
  merge_count : int;
  merge_pairs : (int * int) list;
  small_moat_iterations : int;
}

(* Candidate key: phase-major, then reduced weight, then owners and edge
   (Lemma 4.13's order). *)
type ckey = { phase : int; mu : Frac.t; pair : int * int; eid : int }

let ckey_cmp a b =
  let c = compare a.phase b.phase in
  if c <> 0 then c
  else begin
    let c = Frac.compare a.mu b.mu in
    if c <> 0 then c else compare (a.pair, a.eid) (b.pair, b.eid)
  end

(* Globally replicated Algorithm-2 moat state.  [tindex] maps node id ->
   terminal index (-1 for non-terminals): a flat array, because the
   owner-scan inner loops below look it up per (node, neighbor) pair and
   hashtable probes dominated the profile. *)
type gstate = {
  terms : int array;
  tindex : int array;
  labels : int array;
  moats : Uf.t;
  label_uf : Uf.t;
  act : bool array;
}

let g_label gs ti = Uf.find gs.label_uf gs.labels.(ti)
let g_active gs ti = gs.act.(Uf.find gs.moats ti)

let g_lone_label gs ti =
  let rep = Uf.find gs.moats ti in
  let lbl = g_label gs ti in
  let lone = ref true in
  Array.iteri
    (fun tj _ ->
      if Uf.find gs.moats tj <> rep && g_label gs tj = lbl then lone := false)
    gs.terms;
  !lone

let g_exists_active gs =
  let found = ref false in
  Array.iteri (fun ti _ -> if g_active gs ti then found := true) gs.terms;
  !found

(* Algorithm 2 merge: moats and labels merge, result always active. *)
let g_apply gs (a, b) =
  let la = g_label gs a and lb = g_label gs b in
  ignore (Uf.union gs.moats a b);
  if la <> lb then ignore (Uf.union gs.label_uf la lb);
  gs.act.(Uf.find gs.moats a) <- true

let g_recompute_activity gs =
  let seen = Hashtbl.create 16 in
  Array.iteri
    (fun ti _ ->
      let rep = Uf.find gs.moats ti in
      if not (Hashtbl.mem seen rep) then begin
        Hashtbl.add seen rep ();
        gs.act.(rep) <- not (g_lone_label gs ti)
      end)
    gs.terms

let isqrt = Dsf_util.Intmath.isqrt

let ceil_log2 = Dsf_util.Intmath.ceil_log2

let run ?observer ?telemetry ~eps_num ~eps_den inst0 =
  if eps_num <= 0 || eps_den <= 0 || eps_num > eps_den then
    invalid_arg "Det_sublinear.run: need 0 < eps <= 1";
  let tspan name f = Dsf_congest.Telemetry.span_opt telemetry name f in
  let minimalized = Transform.minimalize ?observer ?telemetry inst0 in
  let inst = minimalized.Transform.value in
  let g = inst.Instance.graph in
  let n = Graph.n g in
  let m = Graph.m g in
  let ledger = Ledger.create () in
  Option.iter
    (fun t -> Dsf_congest.Telemetry.attach_ledger t ledger)
    telemetry;
  let terms = Array.of_list (Instance.terminals inst) in
  let t = Array.length terms in
  let scale = ((8 * eps_den) + eps_num - 1) / eps_num in
  if t = 0 then
    {
      solution = Array.make m false;
      weight = 0;
      ledger;
      sigma = 0;
      growth_phases = 0;
      merge_phase_count = 0;
      merge_count = 0;
      merge_pairs = [];
      small_moat_iterations = 0;
    }
  else begin
    (* All simulation runs on the scaled graph (identical topology and edge
       ids) so integer thresholds coexist with exact fractional radii. *)
    let g_scaled =
      Graph.make ~n
        (Array.to_list (Graph.edges g)
        |> List.map (fun (e : Graph.edge) -> e.u, e.v, e.w * scale))
    in
    let _, _, s = Paths.parameters g in
    let sigma = isqrt (min (s * t) n) in
    let tree =
      tspan "setup" @@ fun () ->
      (* The nodes learn n, t and (an estimate of) s by convergecast plus a
         full Bellman-Ford run (footnote 2's technique), simulated. *)
      let _, n_rounds = Dsf_congest.Params.count_nodes ?observer ?telemetry g in
      let s_rounds =
        match
          Dsf_congest.Params.estimate_s ?observer ?telemetry ~cap:(n + 1) g
        with
        | `Stabilized _, r | `Exceeded, r -> r
      in
      Ledger.add ledger Ledger.Simulated "setup: determine s, t, sigma"
        (n_rounds + s_rounds);
      let root = Bfs.max_id_root g in
      let tree, bfs_stats = Bfs.build ?observer ?telemetry g_scaled ~root in
      Ledger.add ledger Ledger.Simulated "setup: BFS tree" bfs_stats.Sim.rounds;
      Ledger.add ledger Ledger.Simulated
        "setup: minimalize + moat-label bookkeeping (Lemma 2.4)"
        minimalized.Transform.rounds;
      tree
    in
    let tindex = Array.make n (-1) in
    Array.iteri (fun i v -> tindex.(v) <- i) terms;
    let labels = Array.map (fun v -> inst.Instance.labels.(v)) terms in
    let max_label = Array.fold_left max 0 labels in
    let gs =
      {
        terms;
        tindex;
        labels;
        moats = Uf.create t;
        label_uf = Uf.create (max_label + 1);
        act = Array.make t true;
      }
    in
    (* Per-node region state on the scaled graph. *)
    let owner = Array.make n (-1) in
    let offset = Array.make n Frac.zero in
    let parent = Array.make n (-1) in
    let covered = Array.make n false in
    Array.iter
      (fun v ->
        owner.(v) <- v;
        covered.(v) <- true)
      terms;
    (* Omniscient materialization of F (for Definition 4.18 small/large
       classification); the distributed output is built by token flood. *)
    let forest = Array.make m false in
    let uf_nodes = Uf.create n in
    (* Scratch tables reused across merge phases: component sizes for the
       Definition 4.18 small/large test and the per-moat proposal slots —
       preallocated flat arrays instead of a fresh hashtable per
       iteration (the other half of the owner-scan hot-path fix). *)
    let comp_size = Array.make n 0 in
    let proposals = Array.make t None in
    let materialize (key : ckey) =
      let e = Graph.edge g key.eid in
      let add eid =
        let u, v = Graph.endpoints g eid in
        if Uf.union uf_nodes u v then forest.(eid) <- true
      in
      add key.eid;
      let rec climb u =
        if parent.(u) >= 0 then begin
          (match Graph.find_edge g u parent.(u) with
          | Some eid -> add eid
          | None -> assert false);
          climb parent.(u)
        end
      in
      climb e.Graph.u;
      climb e.Graph.v
    in
    let accepted : ((int * int) * ckey) list ref = ref [] in
    let merge_pairs = ref [] in
    let merge_count = ref 0 in
    let apply_merge (a, b) (key : ckey) =
      g_apply gs (a, b);
      materialize key;
      accepted := ((a, b), key) :: !accepted;
      merge_pairs := key.pair :: !merge_pairs;
      incr merge_count
    in
    let pre_pairs () = List.map fst !accepted in
    let mu_hat = ref ((scale + 1) / 2) in
    let total_growth = ref Frac.zero in
    let growth_phases = ref 0 in
    let merge_phase_count = ref 0 in
    let small_iterations = ref 0 in
    let max_growth_phases =
      (2 * (ceil_log2 (max 2 (Paths.diameter_weighted g_scaled)) + 2) * (2 * eps_den / eps_num + 2))
      + 16
    in
    while g_exists_active gs && !growth_phases < max_growth_phases do
      tspan "growth" @@ fun () ->
      incr growth_phases;
      let gtag label = Printf.sprintf "growth %d: %s" !growth_phases label in
      (* Per-node committed active-active candidates of this growth phase. *)
      let store : ckey Pipeline.item list array = Array.make n [] in
      (* ---- Step 3a: merge phases driven by active-inactive events. ---- *)
      let phase_in_growth = ref 0 in
      let continue_3a = ref true in
      while !continue_3a do
        tspan "merge_phase" @@ fun () ->
        incr merge_phase_count;
        incr phase_in_growth;
        let j = !merge_phase_count in
        let owner_active u =
          owner.(u) >= 0 && g_active gs tindex.(owner.(u))
        in
        let frozen =
          Array.init n (fun u -> covered.(u) && not (owner_active u))
        in
        let sources =
          Array.to_list
            (Array.init n (fun u ->
                 if covered.(u) && owner_active u then
                   Some (u, offset.(u), owner.(u))
                 else None))
          |> List.filter_map Fun.id
        in
        let bf, bf_stats =
          Region_bf.run ?observer ?telemetry g_scaled ~sources ~frozen
        in
        Ledger.add ledger Ledger.Simulated
          (gtag (Printf.sprintf "phase %d decomposition BF" !phase_in_growth))
          bf_stats.Sim.rounds;
        let ex_stats =
          Dsf_congest.Exchange.all_neighbors ?observer ?telemetry g_scaled
            ~payload_bits:((2 * Bitsize.id_bits ~n) + 2)
        in
        Ledger.add ledger Ledger.Simulated (gtag "boundary exchange") ex_stats.Sim.rounds;
        let towner u = if frozen.(u) then owner.(u) else bf.(u).Region_bf.owner in
        let toffset u = if frozen.(u) then offset.(u) else bf.(u).Region_bf.offset in
        (* Local candidate generation: split by neighbor activity. *)
        let temp_aa = ref [] in
        let min_ai = ref None in
        for u = 0 to n - 1 do
          if (not frozen.(u)) && towner u >= 0 then begin
            let ou = towner u in
            let ti = tindex.(ou) in
            if g_active gs ti then begin
              let du = toffset u in
              Array.iter
                (fun (nb, w, eid) ->
                  let onb = towner nb in
                  if onb >= 0 && onb <> ou then begin
                    let tj = tindex.(onb) in
                    if not (Uf.same gs.moats ti tj) then begin
                      let total =
                        Frac.add (Frac.add du (Frac.of_int w)) (toffset nb)
                      in
                      (* Strictly negative slack means the pair's merge was
                         already applied (the edge is interior); zero slack
                         is a pending event — balls touching exactly at a
                         threshold defer to the next phase with mu = 0. *)
                      let fully_covered =
                        covered.(u) && covered.(nb) && Frac.sign total < 0
                      in
                      if not fully_covered then begin
                        let pair = min ou onb, max ou onb in
                        if g_active gs tj then begin
                          let key =
                            { phase = j; mu = Frac.half total; pair; eid }
                          in
                          temp_aa :=
                            (u, { Pipeline.key; a = ti; b = tj }) :: !temp_aa
                        end
                        else begin
                          let key = { phase = j; mu = total; pair; eid } in
                          let cand = key, ti, tj in
                          let better =
                            match !min_ai with
                            | None -> true
                            | Some (bk, _, _) -> ckey_cmp key bk < 0
                          in
                          if better then min_ai := Some cand
                        end
                      end
                    end
                  end)
                (Graph.adj g_scaled u)
            end
          end
        done;
        (* Min active-inactive candidate via a simulated convergecast. *)
        let _, agg_stats =
          Tree_ops.aggregate ?observer ?telemetry g_scaled ~tree
            ~value:(fun _ -> 1)
            ~combine:min
            ~bits:(fun _ -> 4 * Bitsize.id_bits ~n)
        in
        Ledger.add ledger Ledger.Simulated (gtag "min-candidate convergecast")
          agg_stats.Sim.rounds;
        let _, mb_stats =
          Tree_ops.broadcast ?observer ?telemetry g_scaled ~tree ~items:[ () ]
            ~bits:(fun () -> 1)
        in
        Ledger.add ledger Ledger.Simulated (gtag "min-candidate broadcast")
          mb_stats.Sim.rounds;
        let remaining = Frac.sub (Frac.of_int !mu_hat) !total_growth in
        let threshold_hit =
          match !min_ai with
          | None -> true
          | Some (key, _, _) -> Frac.compare key.mu remaining >= 0
        in
        let mu_j = if threshold_hit then remaining else (match !min_ai with Some (k, _, _) -> k.mu | None -> assert false) in
        (* Commit this phase's active-active candidates: real iff the merge
           falls within the phase's growth (strictly, unless the phase ended
           with a merge at exactly mu_j). *)
        List.iter
          (fun (u, (it : ckey Pipeline.item)) ->
            let c = Frac.compare it.Pipeline.key.mu mu_j in
            if c < 0 || (c = 0 && not threshold_hit) then
              store.(u) <- it :: store.(u))
          !temp_aa;
        (* Coverage update for growth mu_j. *)
        let active_at_start u = (not frozen.(u)) && towner u >= 0
          && g_active gs tindex.(towner u) in
        for u = 0 to n - 1 do
          if active_at_start u then begin
            if covered.(u) then offset.(u) <- Frac.sub offset.(u) mu_j
            else if Frac.compare (bf.(u).Region_bf.offset) mu_j <= 0 then begin
              covered.(u) <- true;
              owner.(u) <- bf.(u).Region_bf.owner;
              parent.(u) <- bf.(u).Region_bf.parent;
              offset.(u) <- Frac.sub bf.(u).Region_bf.offset mu_j
            end
          end
        done;
        total_growth := Frac.add !total_growth mu_j;
        if threshold_hit then continue_3a := false
        else begin
          match !min_ai with
          | Some (key, ti, tj) -> apply_merge (ti, tj) key
          | None -> assert false
        end
      done;
      (* ---- Steps 3b-3f: deferred active-active merges. ---- *)
      let moat_rep ti = Uf.find gs.moats ti in
      let component_small () =
        (* Small iff the moat's component in (V, F) has < sigma nodes
           (Definition 4.18).  [comp_size] is indexed by union-find
           representative, rebuilt (not reallocated) per call. *)
        Array.fill comp_size 0 n 0;
        for u = 0 to n - 1 do
          let r = Uf.find uf_nodes u in
          comp_size.(r) <- comp_size.(r) + 1
        done;
        fun ti -> comp_size.(Uf.find uf_nodes gs.terms.(ti)) < sigma
      in
      let max_iters = ceil_log2 (max 2 sigma) + 1 in
      let progressing = ref true in
      let iter = ref 0 in
      (* Communication structure for in-moat aggregation: the selected
         forest plus the frozen region trees (every candidate-holding node
         hangs off its owner terminal through them). *)
      let moat_mask () =
        let mask = Array.copy forest in
        for u = 0 to n - 1 do
          if covered.(u) && parent.(u) >= 0 then begin
            match Graph.find_edge g u parent.(u) with
            | Some eid -> mask.(eid) <- true
            | None -> ()
          end
        done;
        mask
      in
      let item_bits (it : ckey Pipeline.item) =
        Bitsize.int_bits (abs it.Pipeline.key.mu.Frac.num)
        + Bitsize.int_bits (max 1 it.Pipeline.key.mu.Frac.den_pow)
        + (4 * Bitsize.id_bits ~n)
      in
      while !progressing && !iter < max_iters do
        tspan "small_moats" @@ fun () ->
        incr iter;
        incr small_iterations;
        let is_small = component_small () in
        (* Step 3bi: each moat aggregates its minimal live candidate by
           gossip along its forest + region-tree edges (simulated). *)
        let live (it : ckey Pipeline.item) =
          not (Uf.same gs.moats it.Pipeline.a it.Pipeline.b)
        in
        let node_min u =
          List.fold_left
            (fun acc it ->
              if not (live it) then acc
              else begin
                match acc with
                | Some best when ckey_cmp best.Pipeline.key it.Pipeline.key <= 0 ->
                    acc
                | _ -> Some it
              end)
            None store.(u)
        in
        let gossip, gossip_stats =
          Dsf_congest.Component_ops.component_min_item ?observer ?telemetry
            g_scaled ~mask:(moat_mask ()) ~values:node_min
            ~cmp:(fun a b -> ckey_cmp a.Pipeline.key b.Pipeline.key)
            ~bits:item_bits
        in
        Ledger.add ledger Ledger.Simulated
          (gtag (Printf.sprintf "small-moat proposal gossip %d (Step 3bi)" !iter))
          gossip_stats.Sim.rounds;
        (* Read each small moat's proposal at one of its terminals; the
           reused [proposals] array is slotted by moat representative. *)
        Array.fill proposals 0 t None;
        let n_proposals = ref 0 in
        Array.iteri
          (fun ti _ ->
            let rep = moat_rep ti in
            if is_small ti && Option.is_none proposals.(rep) then begin
              match gossip.(gs.terms.(ti)) with
              | Some it when live it ->
                  proposals.(rep) <- Some (it.Pipeline.key, it);
                  incr n_proposals
              | _ -> ()
            end)
          gs.terms;
        if !n_proposals = 0 then progressing := false
        else begin
          (* Greedy maximal matching on small-small proposals, then
             unmatched small moats re-add their proposal (Step 3bii). *)
          let matched = Hashtbl.create 16 in
          let chosen = ref [] in
          let proposals_sorted =
            let acc = ref [] in
            for rep = t - 1 downto 0 do
              match proposals.(rep) with
              | Some (k, it) -> acc := (k, rep, it) :: !acc
              | None -> ()
            done;
            List.sort (fun (k1, _, _) (k2, _, _) -> ckey_cmp k1 k2) !acc
          in
          List.iter
            (fun (_, _, (it : ckey Pipeline.item)) ->
              let ra = moat_rep it.Pipeline.a and rb = moat_rep it.Pipeline.b in
              if
                is_small it.Pipeline.a && is_small it.Pipeline.b
                && (not (Hashtbl.mem matched ra))
                && not (Hashtbl.mem matched rb)
              then begin
                Hashtbl.add matched ra ();
                Hashtbl.add matched rb ();
                chosen := it :: !chosen
              end)
            proposals_sorted;
          List.iter
            (fun (_, rep, (it : ckey Pipeline.item)) ->
              if not (Hashtbl.mem matched rep) then chosen := it :: !chosen)
            proposals_sorted;
          (* Apply in ascending order, dropping cycle-closers. *)
          let in_order =
            List.sort
              (fun (a : ckey Pipeline.item) b -> ckey_cmp a.Pipeline.key b.Pipeline.key)
              !chosen
          in
          List.iter
            (fun (it : ckey Pipeline.item) ->
              if not (Uf.same gs.moats it.Pipeline.a it.Pipeline.b) then
                apply_merge (it.Pipeline.a, it.Pipeline.b) it.Pipeline.key)
            in_order;
          (* The matching coordination itself (3-coloring of the proposal
             pseudo-forest, routed through the moat trees) is charged at
             the Lemma F.4 bound; the primitive is implemented and tested
             standalone in {!Dsf_congest.Coloring}. *)
          Ledger.add ledger Ledger.Charged
            (gtag
               (Printf.sprintf
                  "matching via Cole-Vishkin %d (Lemma F.4, [6])" !iter))
            ((4 * ceil_log2 (max 2 sigma)) + 8)
        end
      done;
      (* Pipelined Kruskal filter for whatever remains (Lemma 4.14). *)
      let leftover_exists =
        List.exists
          (fun (it : ckey Pipeline.item) ->
            not (Uf.same gs.moats it.Pipeline.a it.Pipeline.b))
          (Array.to_list store |> List.concat)
      in
      if leftover_exists then begin
        let items u =
          List.filter
            (fun (it : ckey Pipeline.item) ->
              not (Uf.same gs.moats it.Pipeline.a it.Pipeline.b))
            store.(u)
        in
        let bits (it : ckey Pipeline.item) =
          Bitsize.int_bits (abs it.Pipeline.key.mu.Frac.num)
          + Bitsize.int_bits (max 1 it.Pipeline.key.mu.Frac.den_pow)
          + (4 * Bitsize.id_bits ~n)
        in
        let selected, pipe_stats =
          Pipeline.filtered_upcast ?observer ?telemetry g_scaled ~tree ~vn:t
            ~pre:(pre_pairs ()) ~items ~cmp:ckey_cmp ~bits
        in
        Ledger.add ledger Ledger.Simulated (gtag "pipelined merge filter")
          pipe_stats.Sim.rounds;
        let _, mb2_stats =
          Tree_ops.broadcast ?observer ?telemetry g_scaled ~tree ~items:selected
            ~bits
        in
        Ledger.add ledger Ledger.Simulated (gtag "merge broadcast")
          mb2_stats.Sim.rounds;
        List.iter
          (fun (it : ckey Pipeline.item) ->
            if not (Uf.same gs.moats it.Pipeline.a it.Pipeline.b) then
              apply_merge (it.Pipeline.a, it.Pipeline.b) it.Pipeline.key)
          selected
      end;
      (* ---- Steps 3g-3i: activity recomputation at the threshold, via the
         Lemma 2.4 technique the paper prescribes: every terminal reports
         (label-class, moat-leader); inner nodes forward at most two
         distinct witnesses per class, so a class is unsatisfied iff the
         root hears it with two distinct leaders.  Genuinely simulated. ---- *)
      (tspan "activity" @@ fun () ->
      let moat_leader ti =
        (* Largest terminal node id in the moat — the L(M) convention. *)
        let rep = Uf.find gs.moats ti in
        let best = ref (-1) in
        Array.iteri
          (fun tj node ->
            if Uf.find gs.moats tj = rep && node > !best then best := node)
          gs.terms;
        !best
      in
      let witness_items v =
        let ti = tindex.(v) in
        if ti >= 0 then [ g_label gs ti, moat_leader ti ] else []
      in
      let witnesses, w_stats =
        Tree_ops.upcast_dedup ?observer ?telemetry ~per_key:2 g_scaled ~tree
          ~items:witness_items ~key:fst
          ~bits:(fun _ -> 2 * Bitsize.id_bits ~n)
      in
      Ledger.add ledger Ledger.Simulated
        (gtag "activity recomputation: witness convergecast (Lemma 2.4)")
        w_stats.Sim.rounds;
      let leaders_of = Hashtbl.create 16 in
      List.iter
        (fun (cls, leader) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt leaders_of cls) in
          if not (List.mem leader prev) then
            Hashtbl.replace leaders_of cls (leader :: prev))
        witnesses;
      let unsatisfied =
        Hashtbl.fold
          (fun cls leaders acc ->
            if List.length leaders >= 2 then cls :: acc else acc)
          leaders_of []
      in
      let _, ab_stats =
        Tree_ops.broadcast ?observer ?telemetry g_scaled ~tree
          ~items:unsatisfied
          ~bits:(fun _ -> Bitsize.id_bits ~n)
      in
      Ledger.add ledger Ledger.Simulated
        (gtag "activity recomputation: unsatisfied-class broadcast")
        ab_stats.Sim.rounds;
      (* Everyone updates locally; cross-check against the definitional
         rule (a moat is active iff it is not alone with its class). *)
      let seen = Hashtbl.create 16 in
      Array.iteri
        (fun ti _ ->
          let rep = Uf.find gs.moats ti in
          if not (Hashtbl.mem seen rep) then begin
            Hashtbl.add seen rep ();
            gs.act.(rep) <- List.mem (g_label gs ti) unsatisfied
          end)
        gs.terms;
      let from_protocol = Array.copy gs.act in
      g_recompute_activity gs;
      assert (from_protocol = gs.act));
      mu_hat := Moat_rounded.next_threshold ~eps_num ~eps_den !mu_hat
    done;
    if g_exists_active gs then
      invalid_arg "Det_sublinear.run: growth-phase budget exhausted (bug)";
    (* ---- Final selection and pruning (Appendix F.3). ---- *)
    let all_merges = List.rev !accepted in
    let needed ((a0, b0), _) =
      let uf = Uf.create t in
      List.iter
        (fun ((a, b), _) -> if (a, b) <> (a0, b0) then ignore (Uf.union uf a b))
        all_merges;
      let disconnects = ref false in
      for ti = 0 to t - 1 do
        for tj = ti + 1 to t - 1 do
          if labels.(ti) = labels.(tj) && not (Uf.same uf ti tj) then
            disconnects := true
        done
      done;
      !disconnects
    in
    let fmin = List.filter needed all_merges in
    let seeds = Array.make n false in
    let solution = Array.make m false in
    List.iter
      (fun (_, (key : ckey)) ->
        let e = Graph.edge g key.eid in
        solution.(key.eid) <- true;
        seeds.(e.Graph.u) <- true;
        seeds.(e.Graph.v) <- true)
      fmin;
    let solution =
      tspan "final" @@ fun () ->
      let flood_edges, tf_stats =
        Select.token_flood ?observer ?telemetry g ~parent ~seeds
      in
      Ledger.add ledger Ledger.Simulated "final: token flood"
        tf_stats.Sim.rounds;
      List.iter (fun eid -> solution.(eid) <- true) flood_edges;
      (* The merge-level F_min above is not quite edge-minimal (merge paths
         can overlap at Steiner nodes); the fast pruning routine of
         Appendix F.3 finishes the job distributively. *)
      let pr = Pruning.run inst ~f:solution ~sigma in
      Ledger.merge_into ~dst:ledger pr.Pruning.ledger;
      pr.Pruning.pruned
    in
    {
      solution;
      weight = Instance.solution_weight inst solution;
      ledger;
      sigma;
      growth_phases = !growth_phases;
      merge_phase_count = !merge_phase_count;
      merge_count = !merge_count;
      merge_pairs = List.rev !merge_pairs;
      small_moat_iterations = !small_iterations;
    }
  end
