module Graph = Dsf_graph.Graph
module Instance = Dsf_graph.Instance
module Uf = Dsf_util.Union_find
module Sim = Dsf_congest.Sim
module Bfs = Dsf_congest.Bfs
module Tree_ops = Dsf_congest.Tree_ops
module Pipeline = Dsf_congest.Pipeline
module Ledger = Dsf_congest.Ledger
module Bitsize = Dsf_util.Bitsize

type merge_info = {
  mu_total : Frac.t;
  mu_increment : Frac.t;
  terminals : int * int;
  phase : int;
}

type result = {
  solution : bool array;
  weight : int;
  dual : Frac.t;
  merges : merge_info list;
  phase_count : int;
  ledger : Ledger.t;
  max_edge_round_bits : int;
}

(* Candidate-merge key: ordered by growth-to-merge, then terminal pair, then
   inducing edge (the paper's lexicographic tie-breaking). *)
type ckey = { mu : Frac.t; pair : int * int; eid : int }

let ckey_cmp a b =
  let c = Frac.compare a.mu b.mu in
  if c <> 0 then c else compare (a.pair, a.eid) (b.pair, b.eid)

(* Globally replicated Algorithm-1 state: after the setup broadcast every
   node can maintain this deterministically from the per-phase merge
   broadcasts, so we keep a single copy. *)
type gstate = {
  terms : int array;
  tindex : (int, int) Hashtbl.t;
  labels : int array;  (** per terminal index *)
  moats : Uf.t;
  label_uf : Uf.t;
  act : bool array;  (** per moat representative *)
  rad : Frac.t array;  (** per terminal index *)
}

let g_label gs ti = Uf.find gs.label_uf gs.labels.(ti)

let g_active gs ti = gs.act.(Uf.find gs.moats ti)

let g_lone_label gs ti =
  let rep = Uf.find gs.moats ti in
  let lbl = g_label gs ti in
  let lone = ref true in
  Array.iteri
    (fun tj _ ->
      if Uf.find gs.moats tj <> rep && g_label gs tj = lbl then lone := false)
    gs.terms;
  !lone

let g_active_moats gs =
  let seen = Hashtbl.create 16 in
  Array.iteri
    (fun ti _ ->
      let rep = Uf.find gs.moats ti in
      if gs.act.(rep) && not (Hashtbl.mem seen rep) then Hashtbl.add seen rep ())
    gs.terms;
  Hashtbl.length seen

let g_exists_active gs =
  let found = ref false in
  Array.iteri (fun ti _ -> if g_active gs ti then found := true) gs.terms;
  !found

let g_snapshot gs = Array.init (Array.length gs.terms) (fun ti -> g_active gs ti)

(* Apply one merge; returns whether some terminal's activity flipped. *)
let g_apply gs (a, b) =
  let before = g_snapshot gs in
  let la = g_label gs a and lb = g_label gs b in
  ignore (Uf.union gs.moats a b);
  if la <> lb then ignore (Uf.union gs.label_uf la lb);
  let rep = Uf.find gs.moats a in
  gs.act.(rep) <- not (g_lone_label gs a);
  before <> g_snapshot gs

let g_copy gs =
  {
    gs with
    moats = Uf.copy gs.moats;
    label_uf = Uf.copy gs.label_uf;
    act = Array.copy gs.act;
    rad = Array.copy gs.rad;
  }

let run ?observer ?telemetry ?flat ?jobs ?chaos inst0 =
  let tspan name f = Dsf_congest.Telemetry.span_opt telemetry name f in
  (* Lemma 2.4's minimalization runs as a real protocol; its rounds join
     the ledger below once it exists. *)
  let minimalized =
    Transform.minimalize ?observer ?telemetry ?flat ?jobs ?chaos inst0
  in
  let inst = minimalized.Transform.value in
  let g = inst.Instance.graph in
  let n = Graph.n g in
  let m = Graph.m g in
  let ledger = Ledger.create () in
  Option.iter
    (fun t -> Dsf_congest.Telemetry.attach_ledger t ledger)
    telemetry;
  let max_bits = ref 0 in
  let note_stats label (stats : Sim.stats) =
    Ledger.add ledger Ledger.Simulated label stats.Sim.rounds;
    if stats.Sim.max_edge_round_bits > !max_bits then
      max_bits := stats.Sim.max_edge_round_bits
  in
  let terms = Array.of_list (Instance.terminals inst) in
  let t = Array.length terms in
  if t = 0 then
    {
      solution = Array.make m false;
      weight = 0;
      dual = Frac.zero;
      merges = [];
      phase_count = 0;
      ledger;
      max_edge_round_bits = 0;
    }
  else begin
    (* ---- Setup: BFS tree; make all (terminal, label) pairs global. ---- *)
    let tree =
      tspan "setup" (fun () ->
          let root = Bfs.max_id_root g in
          let tree, bfs_stats =
            Bfs.build ?observer ?telemetry ?flat ?jobs ?chaos g ~root
          in
          note_stats "setup: BFS tree" bfs_stats;
          Ledger.add ledger Ledger.Simulated
            "setup: minimalize instance (Lemma 2.4)"
            minimalized.Transform.rounds;
          let term_items v =
            if inst.Instance.labels.(v) >= 0 then
              [ v, inst.Instance.labels.(v) ]
            else []
          in
          let pair_bits (_, _) = 2 * Bitsize.id_bits ~n in
          let collected, up_stats =
            Tree_ops.upcast ?observer ?telemetry ?flat ?jobs ?chaos g ~tree
              ~items:term_items ~bits:pair_bits
          in
          note_stats "setup: collect terminals" up_stats;
          let _, bc_stats =
            Tree_ops.broadcast ?observer ?telemetry ?flat ?jobs ?chaos g
              ~tree ~items:collected ~bits:pair_bits
          in
          note_stats "setup: broadcast terminals" bc_stats;
          tree)
    in
    (* ---- Replicated global state. ---- *)
    let tindex = Hashtbl.create t in
    Array.iteri (fun i v -> Hashtbl.add tindex v i) terms;
    let labels = Array.map (fun v -> inst.Instance.labels.(v)) terms in
    let max_label = Array.fold_left max 0 labels in
    let gs =
      {
        terms;
        tindex;
        labels;
        moats = Uf.create t;
        label_uf = Uf.create (max_label + 1);
        act = Array.make t true;
        rad = Array.make t Frac.zero;
      }
    in
    (* ---- Per-node region state. ---- *)
    let owner = Array.make n (-1) in
    let offset = Array.make n Frac.zero in
    let parent = Array.make n (-1) in
    let covered = Array.make n false in
    Array.iter
      (fun v ->
        owner.(v) <- v;
        covered.(v) <- true)
      terms;
    let accepted_all = ref [] in
    (* terminal-index pairs, newest first *)
    let merges = ref [] in
    let dual = ref Frac.zero in
    let phase = ref 0 in
    while g_exists_active gs do
      tspan "phase" (fun () ->
        incr phase;
        let j = !phase in
        let tag label = Printf.sprintf "phase %d: %s" j label in
        (* Activity of a node's owning moat, at phase start. *)
        let owner_active u =
          owner.(u) >= 0 && g_active gs (Hashtbl.find tindex owner.(u))
        in
        let frozen = Array.init n (fun u -> covered.(u) && not (owner_active u)) in
        let sources =
          Array.to_list
            (Array.init n (fun u ->
                 if covered.(u) && owner_active u then
                   Some (u, offset.(u), owner.(u))
                 else None))
          |> List.filter_map Fun.id
        in
        (* a. Terminal decomposition (Lemma 4.8). *)
        let bf, bf_stats =
          Region_bf.run ?observer ?telemetry ?flat ?jobs ?chaos g ~sources
            ~frozen
        in
        note_stats (tag "decomposition BF") bf_stats;
        let towner u = if frozen.(u) then owner.(u) else bf.(u).Region_bf.owner in
        let toffset u = if frozen.(u) then offset.(u) else bf.(u).Region_bf.offset in
        (* b. Candidate merges at region boundaries (Definition 4.11). *)
        let ex_stats =
            Dsf_congest.Exchange.all_neighbors ?observer ?telemetry ?flat
              ?jobs ?chaos g ~payload_bits:((2 * Bitsize.id_bits ~n) + 2)
          in
          Ledger.add ledger Ledger.Simulated (tag "boundary exchange") ex_stats.Sim.rounds;
        let items u =
          if frozen.(u) || towner u < 0 || not (g_active gs (Hashtbl.find tindex (towner u)))
          then []
          else begin
            let ou = towner u and du = toffset u in
            Array.to_list (Graph.adj g u)
            |> List.filter_map (fun (nb, w, eid) ->
                   let onb = towner nb in
                   if onb < 0 || onb = ou then None
                   else begin
                     let ti = Hashtbl.find tindex ou
                     and tj = Hashtbl.find tindex onb in
                     if Uf.same gs.moats ti tj then None
                     else begin
                       let total = Frac.add (Frac.add du (Frac.of_int w)) (toffset nb) in
                       let mu =
                         if g_active gs tj then Frac.half total else total
                       in
                       let pair = min ou onb, max ou onb in
                       Some { Pipeline.key = { mu; pair; eid }; a = ti; b = tj }
                     end
                   end)
          end
        in
        let pre =
          List.map (fun ((a, b), _) -> a, b) !accepted_all
        in
        (* c. Pipelined filtered collection with early stop (Cor. 4.16). *)
        let scratch = ref (g_copy gs) in
        let processed = ref 0 in
        let stop_found = ref false in
        let stop_at_root accepted =
          if !stop_found then true
          else begin
            let fresh = List.filteri (fun i _ -> i >= !processed) accepted in
            List.iter
              (fun (it : ckey Pipeline.item) ->
                incr processed;
                if not !stop_found then
                  if g_apply !scratch (it.Pipeline.a, it.Pipeline.b) then
                    stop_found := true)
              fresh;
            !stop_found
          end
        in
        let ckey_bits (it : ckey Pipeline.item) =
          Bitsize.int_bits (abs it.Pipeline.key.mu.Frac.num)
          + Bitsize.int_bits (max 1 it.Pipeline.key.mu.Frac.den_pow)
          + (4 * Bitsize.id_bits ~n)
        in
        let accepted, pipe_stats =
          Pipeline.filtered_upcast ?observer ?telemetry ?flat ?jobs ?chaos
            ~stop_at_root g ~tree ~vn:t ~pre ~items ~cmp:ckey_cmp
            ~bits:ckey_bits
        in
        note_stats (tag "candidate collection") pipe_stats;
        let _, stop_stats =
          Tree_ops.broadcast ?observer ?telemetry ?flat ?jobs ?chaos g ~tree
            ~items:[ () ] ~bits:(fun () -> 1)
        in
        note_stats (tag "stop broadcast") stop_stats;
        (* Truncate at the first activity-changing merge. *)
        let phase_merges =
          let rec take acc probe = function
            | [] -> None
            | (it : ckey Pipeline.item) :: rest ->
                if g_apply probe (it.Pipeline.a, it.Pipeline.b) then
                  Some (List.rev (it :: acc))
                else take (it :: acc) probe rest
          in
          match take [] (g_copy gs) accepted with
          | Some ms -> ms
          | None ->
              invalid_arg
                "Det_dsf: phase produced no activity-changing merge (bug or \
                 disconnected component)"
        in
        (* d. Broadcast the phase's merges; everyone updates locally. *)
        let _, bcast_stats =
          Tree_ops.broadcast ?observer ?telemetry ?flat ?jobs ?chaos g ~tree
            ~items:phase_merges ~bits:ckey_bits
        in
        note_stats (tag "merge broadcast") bcast_stats;
        let active_at_start = Array.init t (fun ti -> g_active gs ti) in
        let mu_phase = (List.nth phase_merges (List.length phase_merges - 1)).Pipeline.key.mu in
        let mu_prev = ref Frac.zero in
        List.iter
          (fun (it : ckey Pipeline.item) ->
            let inc = Frac.sub it.Pipeline.key.mu !mu_prev in
            mu_prev := it.Pipeline.key.mu;
            let count = g_active_moats gs in
            dual := Frac.add !dual (Frac.mul_int inc count);
            ignore (g_apply gs (it.Pipeline.a, it.Pipeline.b));
            accepted_all := ((it.Pipeline.a, it.Pipeline.b), it.Pipeline.key) :: !accepted_all;
            merges :=
              {
                mu_total = it.Pipeline.key.mu;
                mu_increment = inc;
                terminals = (gs.terms.(it.Pipeline.a), gs.terms.(it.Pipeline.b));
                phase = j;
              }
              :: !merges)
          phase_merges;
        (* Radii: every moat active during the phase grew by mu_phase. *)
        Array.iteri
          (fun ti _ ->
            if active_at_start.(ti) then
              gs.rad.(ti) <- Frac.add gs.rad.(ti) mu_phase)
          gs.terms;
        (* Region freeze: nodes whose reduced distance is within the phase's
           growth join (and freeze into) their owner's region. *)
        for u = 0 to n - 1 do
          if not frozen.(u) then begin
            let ou = bf.(u).Region_bf.owner in
            if ou >= 0 then begin
              let ti = Hashtbl.find tindex ou in
              if active_at_start.(ti) then begin
                if covered.(u) then offset.(u) <- Frac.sub offset.(u) mu_phase
                else if Frac.compare bf.(u).Region_bf.offset mu_phase <= 0 then begin
                  covered.(u) <- true;
                  owner.(u) <- ou;
                  parent.(u) <- bf.(u).Region_bf.parent;
                  offset.(u) <- Frac.sub bf.(u).Region_bf.offset mu_phase
                end
              end
            end
          end
        done
)
    done;
    (* ---- Final selection: minimal candidate subforest + token flood. ---- *)
    let all_merges = List.rev !accepted_all in
    (* Which merges are needed?  Remove one, check some label disconnects. *)
    let needed ((a0, b0), _) =
      let uf = Uf.create t in
      List.iter
        (fun ((a, b), _) -> if (a, b) <> (a0, b0) then ignore (Uf.union uf a b))
        all_merges;
      let disconnects = ref false in
      for ti = 0 to t - 1 do
        for tj = ti + 1 to t - 1 do
          if
            labels.(ti) = labels.(tj)
            && not (Uf.same uf ti tj)
          then disconnects := true
        done
      done;
      !disconnects
    in
    let fmin = List.filter needed all_merges in
    let seeds = Array.make n false in
    let solution = Array.make m false in
    List.iter
      (fun (_, key) ->
        let e = Graph.edge g key.eid in
        solution.(key.eid) <- true;
        seeds.(e.Graph.u) <- true;
        seeds.(e.Graph.v) <- true)
      fmin;
    let solution =
      tspan "final" (fun () ->
          let flood_edges, tf_stats =
            Select.token_flood ?observer ?telemetry ?flat ?jobs ?chaos g
              ~parent ~seeds
          in
          note_stats "final: token flood (path selection)" tf_stats;
          List.iter (fun eid -> solution.(eid) <- true) flood_edges;
          (* Merge-level minimality (F_min) is not quite edge-level
             minimality: two merge paths can overlap at a Steiner node,
             leaving a redundant bridge edge.  A final intra-tree
             label-propagation prune (the Appendix F.3 technique) removes
             those; its O(D + t + depth) rounds are charged. *)
          let solution = Instance.prune inst solution in
          Ledger.add ledger Ledger.Charged
            "final: edge-level prune (F.3 style)"
            (tree.Bfs.height + t);
          solution)
    in
    {
      solution;
      weight = Instance.solution_weight inst solution;
      dual = !dual;
      merges = List.rev !merges;
      phase_count = !phase;
      ledger;
      max_edge_round_bits = !max_bits;
    }
  end
