module Graph = Dsf_graph.Graph
module Sim = Dsf_congest.Sim
module Pack = Dsf_util.Pack

type state = {
  pending : bool;
  forwarded : bool;
  marked : int list;
}

(* Native flat-engine port.  The whole node state packs into one immediate
   int (a {!Dsf_util.Pack} layout of pending flag, forwarded flag, and
   marked edge id + 1 — a node forwards at most once, so it marks at most
   one edge), tokens are the bare int 0, and the parent edge resolves
   through the CSR instead of [Graph.find_edge]'s option.  The classic
   protocol declares [wake = None] (full sweep): every extra node the sweep
   steps is a no-op (no mail, not pending — or already forwarded), so the
   port may declare [wake = Some Sim.never] and let the sparse scheduler
   track the token wavefront; rounds, messages, bits, and the selected
   edge set are bit-identical (differential suite enforced). *)
let flat_protocol g ~parent ~seeds :
    (int, int) Sim.flat_protocol =
  let csr = Graph.csr g in
  let[@warning "-8"] [| f_pend; f_fwd; f_eid |] =
    Pack.layout [ 1; 1; Pack.width_of_max (Graph.m g) ]
  in
  {
    fp_init =
      (fun view ->
        if seeds.(view.Sim.node) then Pack.put f_pend 1 0 else 0);
    fp_step =
      (fun view ~round:_ st ~inbox ~emit ->
        let v = view.Sim.node in
        let st =
          if Sim.inbox_len inbox > 0 then Pack.set f_pend 1 st else st
        in
        let pending = Pack.get f_pend st = 1 in
        if pending && Pack.get f_fwd st = 0 && parent.(v) >= 0 then begin
          let p = Graph.pos csr ~src:v ~dst:parent.(v) in
          if p < 0 then invalid_arg "Select.token_flood: parent not adjacent";
          emit ~dst:parent.(v) 0;
          Pack.set f_eid (csr.Graph.eid.(p) + 1) (Pack.set f_fwd 1 st)
        end
        else if pending then Pack.set f_fwd 1 st
        else st);
    fp_is_done = (fun st -> Pack.get f_pend st = 0 || Pack.get f_fwd st = 1);
    fp_msg_bits = (fun _ -> 1);
    fp_wake = Some Sim.never;
  }

let token_flood ?observer ?faults ?telemetry ?flat ?jobs ?chaos g ~parent
    ~seeds =
  if Option.is_none chaos && flat = Some true then begin
    let proto = flat_protocol g ~parent ~seeds in
    let states, stats =
      Dsf_congest.Telemetry.span_opt telemetry "token_flood" (fun () ->
          Sim.run_flat ?observer ?faults ?telemetry ?jobs g proto)
    in
    let f_eid = (Pack.layout [ 1; 1; Pack.width_of_max (Graph.m g) ]).(2) in
    (* Same extraction order as the classic leg: rev_append of each node's
       (singleton or empty) marked list over ascending node ids. *)
    let edges =
      Array.fold_left
        (fun acc st ->
          let e = Pack.get f_eid st in
          if e > 0 then (e - 1) :: acc else acc)
        [] states
    in
    edges, stats
  end
  else begin
    let proto : (state, unit) Sim.protocol =
      {
        init =
          (fun view ->
            { pending = seeds.(view.Sim.node); forwarded = false; marked = [] });
        step =
          (fun view ~round:_ st ~inbox ->
            let v = view.Sim.node in
            let st = if inbox <> [] then { st with pending = true } else st in
            if st.pending && (not st.forwarded) && parent.(v) >= 0 then begin
              let eid =
                match Graph.find_edge g v parent.(v) with
                | Some id -> id
                | None -> invalid_arg "Select.token_flood: parent not adjacent"
              in
              ( { st with forwarded = true; marked = eid :: st.marked },
                [ parent.(v), () ] )
            end
            else { st with forwarded = st.forwarded || st.pending }, []);
        is_done = (fun st -> (not st.pending) || st.forwarded);
        msg_bits = (fun () -> 1);
        wake = None;
      }
    in
    let states, stats =
      Dsf_congest.Telemetry.span_opt telemetry "token_flood" (fun () ->
          Dsf_congest.Fault.sim_run ?observer ?faults ?telemetry ?flat ?jobs
            ?chaos ~recovery:(Dsf_congest.Fault.immutable ()) g proto)
    in
    let edges =
      Array.fold_left (fun acc st -> List.rev_append st.marked acc) [] states
    in
    edges, stats
  end
