module Graph = Dsf_graph.Graph
module Sim = Dsf_congest.Sim

type state = {
  pending : bool;
  forwarded : bool;
  marked : int list;
}

let token_flood ?observer ?telemetry g ~parent ~seeds =
  let proto : (state, unit) Sim.protocol =
    {
      init =
        (fun view ->
          { pending = seeds.(view.Sim.node); forwarded = false; marked = [] });
      step =
        (fun view ~round:_ st ~inbox ->
          let v = view.Sim.node in
          let st = if inbox <> [] then { st with pending = true } else st in
          if st.pending && (not st.forwarded) && parent.(v) >= 0 then begin
            let eid =
              match Graph.find_edge g v parent.(v) with
              | Some id -> id
              | None -> invalid_arg "Select.token_flood: parent not adjacent"
            in
            ( { st with forwarded = true; marked = eid :: st.marked },
              [ parent.(v), () ] )
          end
          else { st with forwarded = st.forwarded || st.pending }, []);
      is_done = (fun st -> (not st.pending) || st.forwarded);
      msg_bits = (fun () -> 1);
      wake = None;
    }
  in
  let states, stats =
    Dsf_congest.Telemetry.span_opt telemetry "token_flood" (fun () ->
        Sim.run ?observer ?telemetry g proto)
  in
  let edges =
    Array.fold_left (fun acc st -> List.rev_append st.marked acc) [] states
  in
  edges, stats
