(** The randomized distributed Steiner Forest algorithm (Section 5,
    Theorem 5.2): an O(log n)-approximation in O~(k + min(s, sqrt n) + D)
    rounds w.h.p.

    First stage: embed the graph into a random virtual tree (Khan et al.,
    via {!Dsf_embed}); then, in L + 1 level phases, component labels climb
    the tree — every holder of a live label sends (label, ancestor_i) up its
    recorded shortest path, messages are filtered so only the first one per
    (label, target) survives, traversed edges enter F, and each target
    concentrates its labels at a single representative found by backtracing
    (steps 3a-3d).  When s > sqrt n the ancestor chains are truncated at
    S = the sqrt n highest-ranked nodes, and each leaf connects to its
    closest S node instead.

    Second stage (only when truncating): the connected components of (V, F)
    around S become super-terminals of the F-reduced instance
    (Definition 5.1), which is solved by {!Reduced_solver} — our stand-in
    for the paper's [17] black box (see DESIGN.md) — and the returned edges
    join F.

    The first stage runs [repetitions] times and the lightest F wins (the
    paper's expectation-to-w.h.p. amplification). *)

type result = {
  solution : bool array;
  weight : int;
  ledger : Dsf_congest.Ledger.t;
  truncated : bool;  (** did the s > sqrt(n) regime apply? *)
  repetitions : int;
  s_param : int;  (** shortest-path diameter used for the regime choice *)
  phases : int;  (** virtual-tree levels walked per repetition *)
}

val run :
  ?observer:Dsf_congest.Sim.observer ->
  ?telemetry:Dsf_congest.Telemetry.t ->
  ?repetitions:int ->
  ?force_truncate:bool ->
  ?jobs:int ->
  rng:Dsf_util.Rng.t ->
  Dsf_graph.Instance.ic ->
  result
(** [repetitions] defaults to 3.  [force_truncate] overrides the
    s-vs-sqrt(n) regime test (used by experiments to exercise both code
    paths on the same instance).

    [jobs] (default 1) runs the repetitions on the {!Dsf_util.Pool}
    domain pool.  Each repetition draws from an rng split off [rng] by
    its trial index and logs rounds into its own ledger, merged back in
    repetition order, so the result — solution, weight, and ledger — is
    bit-identical for every [jobs] value.

    [observer] taps every simulated run (per-run, not the deprecated
    global shim).  With [jobs > 1] it is invoked concurrently from pool
    domains, so it must be domain-safe (e.g. accumulate into atomics, or
    into per-domain state).

    [telemetry] profiles the run ([minimalize] / [regime_test] / [trial]
    / [stage2]); each repetition gets its own {!Dsf_congest.Telemetry.fork}
    (split sequentially before the fan-out, like the rng streams) and the
    forks merge back in repetition order, so the profile — wall clock
    aside — is also bit-identical for every [jobs] value. *)
