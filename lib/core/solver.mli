(** Unified front end over every Steiner Forest algorithm in the
    repository.  A downstream user picks an {!algorithm} and gets back a
    uniform {!report} (solution, weight, rounds, optional optimality
    certificate) for either input convention — input components (DSF-IC)
    or connection requests (DSF-CR, transformed via Lemma 2.3 first, with
    the transform's rounds included in the report). *)

type algorithm =
  | Det  (** Section 4.1: deterministic, factor 2, O(ks + t) rounds *)
  | Det_sublinear of { eps_num : int; eps_den : int }
      (** Section 4.2: deterministic, factor 2 + ε, O~(sk + σ) rounds *)
  | Rand of { repetitions : int; seed : int }
      (** Section 5: randomized, O(log n) w.h.p., O~(k + min(s,√n) + D) *)
  | Khan_baseline of { repetitions : int; seed : int }
      (** prior art [14]: randomized, O(log n), O~(sk) rounds *)
  | Centralized_moat
      (** Algorithm 1 run centrally — the reference, no round accounting *)

val name : algorithm -> string

type report = {
  algorithm : string;
  solution : bool array;
  weight : int;
  feasible : bool;
  rounds_simulated : int;
  rounds_charged : int;
  dual_lower_bound : float option;
      (** Σ act·µ when the algorithm certifies itself (moat growing) *)
  ledger : Dsf_congest.Ledger.t option;
}

val solve_ic :
  ?jobs:int ->
  ?observer:Dsf_congest.Sim.observer ->
  ?telemetry:Dsf_congest.Telemetry.t ->
  ?flat:bool ->
  ?chaos:Dsf_congest.Fault.chaos ->
  algorithm ->
  Dsf_graph.Instance.ic ->
  report
(** [jobs] (default 1) parallelizes the trial fan-out of algorithms that
    have one ({!algorithm.Rand}'s repetitions) on the {!Dsf_util.Pool},
    and sizes the flat engine's domain pool under [~flat:true]; results
    are bit-identical for every [jobs] value.

    [~flat:true] runs {!algorithm.Det}'s simulated subroutines on the
    flat-core engine (native ports + boxed adapter, see {!Det_dsf.run});
    other algorithms currently ignore it.  [~flat:false] forces the
    classic active engine; omitting [flat] defers to
    {!Dsf_congest.Sim.run}'s engine selection.

    [chaos] runs {!algorithm.Det}'s simulated subroutines hardened with
    checkpointed crash recovery under the given chaos plan (see
    {!Dsf_congest.Fault.sim_run}); the report's solution, weight, and
    dual are bit-identical to the fault-free run.  Other algorithms
    reject it with [Invalid_argument].

    [observer] taps every simulated run of the chosen algorithm.
    [telemetry] profiles it: the distributed algorithms open their own
    phase spans (see each module's docs); the centralized reference and
    the Khan baseline are wrapped in a single [centralized_moat] /
    [khan_baseline] span. *)

val solve_cr :
  ?jobs:int ->
  ?observer:Dsf_congest.Sim.observer ->
  ?telemetry:Dsf_congest.Telemetry.t ->
  ?flat:bool ->
  ?chaos:Dsf_congest.Fault.chaos ->
  algorithm ->
  Dsf_graph.Instance.cr ->
  report
(** Applies the distributed Lemma 2.3 transform first; its rounds are
    added to the report (and its ledger entry when a ledger exists).
    Under [telemetry] the transform shows up as a [cr_to_ic] span. *)

val compare_all :
  ?jobs:int ->
  ?observer:Dsf_congest.Sim.observer ->
  ?telemetry:Dsf_congest.Telemetry.t ->
  ?flat:bool ->
  ?algorithms:algorithm list ->
  Dsf_graph.Instance.ic ->
  report list
(** Run several algorithms on one instance (default: Det, Det_sublinear
    ε=1/2, Rand, Khan) and return their reports, best weight first. *)

(**/**)

val khan_hook :
  (repetitions:int -> rng:Dsf_util.Rng.t -> Dsf_graph.Instance.ic ->
   bool array * int * Dsf_congest.Ledger.t)
  ref
(** Injection point for the Khan et al. baseline (set by [Dsf_baseline];
    avoids a dependency cycle).  Using {!Khan_baseline} requires linking
    and referencing [dsf_baseline]. *)
