module Graph = Dsf_graph.Graph
module Instance = Dsf_graph.Instance
module Paths = Dsf_graph.Paths
module Sim = Dsf_congest.Sim
module Bfs = Dsf_congest.Bfs
module Tree_ops = Dsf_congest.Tree_ops
module Ledger = Dsf_congest.Ledger
module Bitsize = Dsf_util.Bitsize
module Virtual_tree = Dsf_embed.Virtual_tree
module LR = Level_routing

type result = {
  solution : bool array;
  weight : int;
  ledger : Ledger.t;
  truncated : bool;
  repetitions : int;
  s_param : int;
  phases : int;
}

let isqrt = Dsf_util.Intmath.isqrt


(* One full first-stage run: returns the selected edge set F. *)
let first_stage ?observer ?telemetry rng g inst ledger note_stats ~truncate =
  let tspan name fn = Dsf_congest.Telemetry.span_opt telemetry name fn in
  let n = Graph.n g in
  let m = Graph.m g in
  let tree, bfs_stats =
    Bfs.build ?observer ?telemetry g ~root:(Bfs.max_id_root g)
  in
  note_stats "stage1: BFS tree" bfs_stats;
  let truncate_at = if truncate then Some (isqrt n) else None in
  let vt, vt_rounds =
    tspan "virtual_tree" (fun () ->
        Virtual_tree.build ?observer rng ?truncate_at g)
  in
  Ledger.add ledger Ledger.Simulated "stage1: virtual tree (LE lists + S Voronoi)"
    vt_rounds;
  let f = Array.make m false in
  (* Current holders: l(v) as a label list per node. *)
  let holders = Array.make n [] in
  Array.iteri
    (fun v l -> if l >= 0 then holders.(v) <- [ l ])
    inst.Instance.labels;
  for i = 0 to vt.Virtual_tree.levels do
    tspan "level" @@ fun () ->
    let tag label = Printf.sprintf "stage1 level %d: %s" i label in
    (* (a) drop labels with a single holder: simulated two-witness
       convergecast + broadcast, as in Lemma 2.4. *)
    let witness_items v = List.map (fun l -> l, v) holders.(v) in
    let witnesses, w_stats =
      Tree_ops.upcast_dedup ?observer ?telemetry ~per_key:2 g ~tree
        ~items:witness_items
        ~key:fst
        ~bits:(fun _ -> 2 * Bitsize.id_bits ~n)
    in
    note_stats (tag "single-holder check") w_stats;
    let count = Hashtbl.create 16 in
    List.iter
      (fun (l, _) ->
        Hashtbl.replace count l
          (1 + Option.value ~default:0 (Hashtbl.find_opt count l)))
      witnesses;
    let live = Hashtbl.fold (fun l c acc -> if c >= 2 then l :: acc else acc) count [] in
    let _, lb_stats =
      Tree_ops.broadcast ?observer ?telemetry g ~tree ~items:live
        ~bits:(fun _ -> Bitsize.id_bits ~n)
    in
    note_stats (tag "live-label broadcast") lb_stats;
    for v = 0 to n - 1 do
      holders.(v) <- List.filter (fun l -> List.mem l live) holders.(v)
    done;
    (* (b) build the per-node origin lists. *)
    let origins v =
      List.map (fun l -> l, vt.Virtual_tree.ancestors.(v).(i)) holders.(v)
    in
    (* (c) route labels to targets. *)
    let rstates, r_stats =
      tspan "label_routing" (fun () -> LR.route_phase ?observer g vt ~origins)
    in
    note_stats (tag "label routing") r_stats;
    Array.iter
      (fun st -> List.iter (fun eid -> f.(eid) <- true) st.LR.marked)
      rstates;
    (* (d) backtrace: each target picks one chain and ships its bundle. *)
    let bundles v =
      let st = rstates.(v) in
      match st.LR.lhat with
      | [] -> []
      | labels ->
          (* Prefer a self-originated chain; otherwise the smallest
             received (label, target=v) chain. *)
          let chains =
            Hashtbl.fold
              (fun ((_, w) as lw) sender acc ->
                if w = v then (sender = -1, lw) :: acc else acc)
              st.LR.known []
          in
          let route =
            match List.sort (fun (a, _) (b, _) -> compare b a) chains with
            | (true, _) :: _ -> None (* self-originated: accept locally *)
            | (false, lw) :: _ -> Some lw
            | [] -> None
          in
          begin
            match route with
            | None -> []
            | Some lw -> List.map (fun l -> { LR.route = lw; payload = l }) labels
          end
    in
    let self_kept v =
      let st = rstates.(v) in
      if
        st.LR.lhat <> []
        && Hashtbl.fold
             (fun (_, w) sender acc -> acc || (w = v && sender = -1))
             st.LR.known false
      then st.LR.lhat
      else []
    in
    let tables v = rstates.(v).LR.known in
    let bstates, b_stats =
      tspan "backtrace" (fun () ->
          LR.backtrace_phase ?observer g ~tables ~bundles)
    in
    note_stats (tag "backtrace") b_stats;
    for v = 0 to n - 1 do
      holders.(v) <- List.sort_uniq compare (bstates.(v).LR.b_l @ self_kept v)
    done
  done;
  f, vt

let run ?observer ?telemetry ?(repetitions = 3) ?force_truncate ?(jobs = 1)
    ~rng inst0 =
  let minimalized = Transform.minimalize ?observer ?telemetry inst0 in
  let inst = minimalized.Transform.value in
  let g = inst.Instance.graph in
  let m = Graph.m g in
  let ledger = Ledger.create () in
  Option.iter
    (fun t -> Dsf_congest.Telemetry.attach_ledger t ledger)
    telemetry;
  Ledger.add ledger Ledger.Simulated "setup: minimalize instance (Lemma 2.4)"
    minimalized.Transform.rounds;
  let max_bits = ref 0 in
  let d, _, s = Paths.parameters g in
  (* The regime test of footnote 2, genuinely simulated: count n by
     convergecast, then run Bellman-Ford for at most sqrt(n) rounds. *)
  let regime, regime_rounds =
    Dsf_congest.Params.regime ?observer ?telemetry g
  in
  Ledger.add ledger Ledger.Simulated "determine s vs sqrt(n) (footnote 2)"
    regime_rounds;
  let truncate =
    match force_truncate with
    | Some b -> b
    | None -> (match regime with `Large_s -> true | `Small_s _ -> false)
  in
  if Instance.component_count inst = 0 then
    {
      solution = Array.make m false;
      weight = 0;
      ledger;
      truncated = truncate;
      repetitions;
      s_param = s;
      phases = 0;
    }
  else begin
    (* Repeat the first stage; keep the lightest F (algorithm step 1-2).
       The repetitions are independent trials: each draws its randomness
       from a stream split off the caller's rng by trial index *before*
       the fan-out and accumulates rounds in its own ledger, so running
       them on the domain pool is bit-identical to the sequential loop —
       trial ledgers merge back in repetition order below. *)
    let rep_rngs =
      Array.init repetitions (fun i -> Dsf_util.Rng.split rng (i + 1))
    in
    (* One telemetry fork per repetition, split off sequentially before the
       fan-out (same discipline as the RNG streams): each trial profiles
       into its own tree on its own thread id, and the forks merge back in
       repetition order below — bit-identical for any [jobs]. *)
    let trial_tels =
      match telemetry with
      | None -> [||]
      | Some t ->
          Array.init repetitions (fun _ -> Dsf_congest.Telemetry.fork t)
    in
    let trial i =
      let rep = i + 1 in
      let tel = if i < Array.length trial_tels then Some trial_tels.(i) else None in
      let tspan name fn = Dsf_congest.Telemetry.span_opt tel name fn in
      tspan "trial" @@ fun () ->
      let trial_ledger = Ledger.create () in
      Option.iter
        (fun t -> Dsf_congest.Telemetry.attach_ledger t trial_ledger)
        tel;
      let trial_max_bits = ref 0 in
      let note_stats label (stats : Sim.stats) =
        Ledger.add trial_ledger Ledger.Simulated label stats.Sim.rounds;
        if stats.Sim.max_edge_round_bits > !trial_max_bits then
          trial_max_bits := stats.Sim.max_edge_round_bits
      in
      let f, vt =
        first_stage ?observer ?telemetry:tel rep_rngs.(i) g inst trial_ledger
          note_stats ~truncate
      in
      let w = Graph.edge_set_weight g f in
      (* Compare candidate forests by a simulated weight convergecast:
         each node contributes half the weight of its selected incident
         edges. *)
      let _, w_stats =
        let tree, _ = Bfs.build ?observer ?telemetry:tel g ~root:(Bfs.max_id_root g) in
        Tree_ops.aggregate ?observer ?telemetry:tel g ~tree
          ~value:(fun v ->
            Array.fold_left
              (fun acc (_, w', eid) -> if f.(eid) then acc + w' else acc)
              0 (Graph.adj g v))
          ~combine:( + )
          ~bits:(fun x -> Bitsize.int_bits (max 1 x))
      in
      Ledger.add trial_ledger Ledger.Simulated
        (Printf.sprintf "stage1 rep %d: weight comparison" rep)
        w_stats.Sim.rounds;
      w, f, vt, trial_ledger, !trial_max_bits
    in
    let trials =
      Dsf_util.Pool.map_chunked ~jobs trial (Array.init repetitions Fun.id)
    in
    let best = ref None in
    let phases = ref 0 in
    Array.iteri
      (fun i (w, f, vt, trial_ledger, trial_max_bits) ->
        Ledger.merge_into ~dst:ledger trial_ledger;
        (match telemetry with
        | Some t ->
            Dsf_congest.Telemetry.merge_into ~dst:t trial_tels.(i)
        | None -> ());
        if trial_max_bits > !max_bits then max_bits := trial_max_bits;
        phases := vt.Virtual_tree.levels + 1;
        match !best with
        | Some (bw, _, _) when bw <= w -> ()
        | _ -> best := Some (w, f, vt))
      trials;
    let _, f, vt =
      match !best with Some x -> x | None -> assert false
    in
    let solution =
      if not truncate then f
      else begin
        let out =
          Dsf_congest.Telemetry.span_opt telemetry "stage2" (fun () ->
              Reduced_solver.solve ?observer ?telemetry inst ~f
                ~s_set:vt.Virtual_tree.s_set ~diameter:d)
        in
        Ledger.add ledger Ledger.Simulated "stage2: T_v assignment"
          out.Reduced_solver.assignment_rounds;
        Ledger.add ledger Ledger.Simulated
          "stage2: label helper graph (Lemma G.12)"
          out.Reduced_solver.label_rounds;
        Ledger.add ledger Ledger.Charged
          "stage2: spanner + central solve ([17] internals)"
          out.Reduced_solver.charged_rounds;
        Array.mapi (fun i b -> b || out.Reduced_solver.extra_edges.(i)) f
      end
    in
    {
      solution;
      weight = Graph.edge_set_weight g solution;
      ledger;
      truncated = truncate;
      repetitions;
      s_param = s;
      phases = !phases;
    }
  end
