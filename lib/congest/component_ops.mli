(** In-component gossip over a masked edge set.

    The sublinear algorithm repeatedly needs "each moat/cluster computes
    the minimum of a value over its members, communicating only along the
    already-selected forest edges" (Steps 3bi/3biv of Section 4.2, Lemma
    F.4).  These helpers simulate exactly that: nodes flood improving
    values over the edges enabled by [mask]; a component of diameter d
    stabilizes in ~d rounds, all components in parallel. *)

val gossip_extremum :
  ?observer:Sim.observer ->
  ?telemetry:Telemetry.t ->
  Dsf_graph.Graph.t ->
  mask:bool array ->
  values:(int -> 'a option) ->
  better:('a -> 'a -> bool) ->
  bits:('a -> int) ->
  'a option array * Sim.stats
(** [gossip_extremum g ~mask ~values ~better ~bits] returns, for every
    node, the extremum (w.r.t. [better x y] = "x beats y") of [values]
    over its mask-component ([None] if no member has a value). *)

val leaders :
  ?observer:Sim.observer ->
  ?telemetry:Telemetry.t ->
  Dsf_graph.Graph.t ->
  mask:bool array ->
  int array * Sim.stats
(** Per-node maximum node id in its mask-component — the moat/cluster
    leader convention of the paper's appendix. *)

val component_min_item :
  ?observer:Sim.observer ->
  ?telemetry:Telemetry.t ->
  Dsf_graph.Graph.t ->
  mask:bool array ->
  values:(int -> 'a option) ->
  cmp:('a -> 'a -> int) ->
  bits:('a -> int) ->
  'a option array * Sim.stats
(** Convenience wrapper of {!gossip_extremum} for a total order. *)
