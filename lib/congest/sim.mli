(** Synchronous CONGEST(log n) round simulator (the model of Section 2).

    A protocol is a pair of callbacks: [init] builds each node's local state
    from its local {!view} (its id, its incident edges, and [n] — everything
    the model grants initially), and [step] consumes the inbox delivered at
    the start of a round and produces messages for neighbors.  The simulator
    executes rounds until the protocol is quiescent (every node reports done
    and no message is in flight) or [max_rounds] is reached.

    Message sizes are accounted in bits via [msg_bits]; the simulator records
    the maximum bits sent over any (edge, direction) in any single round so
    experiments can verify the O(log n) congestion discipline.  Sending two
    messages to the same neighbor in one round is allowed but both count
    against that edge-round's bit total.

    {2 The active-set scheduler}

    The paper's protocols are round-efficient precisely because most nodes
    are silent in most rounds (Bellman-Ford wavefronts, pipelined upcasts),
    so {!run} only steps the nodes that can act: in round [r] a node is
    stepped iff its inbox is non-empty, it does not report [is_done], or its
    [wake] hook returns [true].  A protocol with [wake = None] is stepped
    every round — exactly the original simulator's schedule.  A protocol
    that declares a sparse [wake] (e.g. [Some never]) promises that stepping
    a done node with an empty inbox is a no-op: it returns a structurally
    equal state and an empty outbox.  Under that contract, {!run} and
    {!run_reference} produce identical stats, observer traces, and final
    states — the property suite [test_sim_equiv] checks this differentially
    on randomized graphs and protocols.

    [is_done] and [wake] must be pure functions of the state (and view /
    round): [is_done] is re-evaluated only when a step changes the state.

    Composition convention: the paper's algorithms are towers of subroutines,
    each with its own round bound (Bellman-Ford phases, pipelined upcasts,
    BFS-tree broadcasts).  We simulate each subroutine for real and add up
    actual rounds in a {!Ledger}; steps the paper itself performs as "locally
    compute from globally known data" cost zero rounds, and the few steps the
    paper delegates to a cited black box are charged their stated bound as a
    named ledger entry (see DESIGN.md). *)

type view = {
  node : int;
  n : int;  (** number of nodes in the network *)
  nbrs : (int * int * int) array;
      (** (neighbor id, edge weight, edge id), as in {!Dsf_graph.Graph.adj} *)
}

type ('s, 'm) protocol = {
  init : view -> 's;
  step : view -> round:int -> 's -> inbox:(int * 'm) list -> 's * (int * 'm) list;
      (** [inbox] is the list of (sender, message) delivered this round;
          returns the new state and the outbox of (neighbor, message). *)
  is_done : 's -> bool;
  msg_bits : 'm -> int;
  wake : (view -> round:int -> 's -> bool) option;
      (** Scheduling hook. [None]: step the node every round (the default
          behavior protocols get if they have no sparse-activity story).
          [Some f]: the node is stepped in a round iff it received a message,
          is not [is_done], or [f] returns [true] — use [Some never] for
          purely message/progress-driven protocols, or a round predicate
          (e.g. [fun _ ~round _ -> round = 0]) for clock-driven kick-offs.
          Only consulted for nodes that are idle by the first two tests. *)
}

type stats = {
  rounds : int;  (** rounds actually executed *)
  messages : int;
  total_bits : int;
  max_edge_round_bits : int;
      (** max bits over a single (edge, direction) in one round *)
  budget_violations : int;
      (** edge-rounds exceeding {!Dsf_util.Bitsize.congest_budget} *)
  dropped : int;
      (** messages destroyed by fault injection (at-send drops plus mail
          arriving at a crashed node); always 0 without [?faults] *)
  duplicated : int;
      (** extra copies delivered by fault injection; 0 without [?faults] *)
  retransmissions : int;
      (** resends performed by a hardened protocol.  The engine itself
          only copies the faults record's counter (see below); the
          hardened runners ({!Fault.run_hardened}, {!Fault.sim_run}) fold
          the per-node resend counters into this field after the run —
          domain-safe at any [jobs].  0 without hardening. *)
}

(** {2 Fault injection}

    A [faults] record is a set of callbacks the active engine consults
    while it runs — the simulator stays agnostic of how fault decisions
    are made ({!Fault} builds deterministic seeded records from
    declarative plans).  Semantics:

    - the sender is always charged for a send (messages, bits, observer
      call, edge budget) — the network misbehaves {e after} the send;
    - [on_send] returning [Drop] destroys the message in flight
      ([stats.dropped]); [Replicate k] delivers [k] copies
      ([stats.duplicated] counts the [k - 1] extras);
    - a node with [down ~round ~node = true] is not stepped that round
      and mail arriving at it is destroyed (counted in [dropped]);
      messages it sent earlier still arrive elsewhere;
    - on the first round a node is back up, its state is reset to
      [init view] — crash-and-restart with total state loss as far as the
      engine is concerned ({!Fault.harden} with a {!Fault.recoverable}
      contract piggybacks on exactly this hook: its [init] consults the
      node's stable storage and restores the checkpoint instead);
    - [retransmissions] is reset to 0 at run start and copied into the
      final stats.  Nothing in this repo bumps it from inside [step] any
      more (a shared counter is not domain-safe at [jobs > 1]); the
      hardened runners account resends per node and patch the returned
      stats instead.

    Faults are an active-engine feature: combining [?faults] with
    [~reference:true] raises [Invalid_argument]. *)

type fault_action = Deliver | Drop | Replicate of int

type faults = {
  on_send : round:int -> src:int -> dst:int -> fault_action;
  down : round:int -> node:int -> bool;
  retransmissions : int ref;
}

(** {2 Structured round-limit aborts}

    When a run exceeds [max_rounds] it raises {!Round_limit} carrying a
    post-mortem: the stats at the moment of the abort plus the last
    {!postmortem_window} rounds of raw per-message traffic, oldest round
    first — enough to see who was still talking (or silent) when the
    protocol span out.  A printer is registered with [Printexc], so an
    uncaught abort prints the summary; {!Trace.pp_postmortem} renders the
    full per-node breakdown. *)

type abort = {
  at_round : int;  (** the exceeded round limit *)
  snapshot : stats;  (** stats at the abort *)
  recent : (int * (int * int * int) list) list;
      (** (round, (src, dst, bits) in send order), ascending rounds *)
}

exception Round_limit of abort

val postmortem_window : int
(** Number of trailing rounds of traffic kept for {!abort.recent} (8). *)

val pp_abort : Format.formatter -> abort -> unit
(** Compact per-round summary of an abort (also what the registered
    [Printexc] printer emits). *)

val never : view -> round:int -> 's -> bool
(** [never] ignores its arguments and returns [false]: the canonical [wake]
    for protocols whose activity is entirely message- or progress-driven. *)

type observer = src:int -> dst:int -> bits:int -> unit
(** A message tap: called for every message a run sends, in send order.
    Pure measurement instrumentation (e.g. counting bits across the
    Alice/Bob cut in the Section 3 lower-bound experiments); it never
    affects execution.

    {2 Domain-safety contract}

    The simulator holds no per-run mutable state that outlives {!run}, so
    any number of simulations may run concurrently on separate domains
    (the {!Dsf_util.Pool} trial engine does exactly this) — {e provided}
    each run's configuration is passed through the per-run [?observer] /
    [?reference] parameters.  The global shims ({!set_observer},
    {!with_observer}, {!use_reference_engine}) mutate process-wide state
    and are kept only for single-domain callers (tests, the lower-bound
    cut meter, the engine microbenchmarks); never touch them while a
    parallel fan-out is in flight. *)

val set_observer : observer option -> unit
(** Deprecated global shim: installs a process-wide observer chained
    before every run's per-run observer.  Single-domain use only — see
    the domain-safety contract above; prefer [?observer] on {!run}. *)

val with_observer : observer -> (unit -> 'a) -> 'a
(** Scoped global observer; nests by chaining — an enclosing observer
    keeps seeing the traffic — and restores the previous observer on
    exit.  Single-domain use only; prefer [?observer] on {!run}. *)

(** {2 The flat-core engine}

    A third engine built on the {!Dsf_graph.Graph.csr} view: message
    traffic lives in preallocated {e arena} buffers (parallel
    [int array] / ['m array] pairs grown once and recycled by length
    reset), per-round per-(edge, direction) bit accounting is a flat
    array indexed by CSR position, and a protocol whose [wake] is
    physically {!never} is scheduled from an incrementally-maintained
    sorted active list, so an idle round costs O(active nodes) instead of
    the active engine's O(n) criterion sweep.  For ['m = int] protocols
    written against the native {!flat_protocol} interface the
    steady-state round loop allocates nothing.

    A single run can additionally be partitioned across [jobs] domains of
    the {!Dsf_util.Pool}: each domain owns a contiguous ascending block
    of nodes, steps its block between two barriers per round, and stages
    its sends per destination; the coordinator merges staged mail, send
    logs (observer calls, post-mortem ring), counters, and bit accounting
    {e in domain = node order} at the barrier.  Because the merge order
    equals the global send order of the single-threaded engines, results
    are bit-identical for any [jobs] — the jobs-invariance property in
    [test_sim_equiv] pins this.  Caveat: [jobs > 1] must not be used
    from inside an existing pool fan-out (the per-round batch would raise
    {!Dsf_util.Pool.Nested_use}).  Hardened protocols are jobs-safe:
    resends are counted per node and folded into the stats after the run
    (see {!Fault.sim_run}), so the chaos differentials run at [jobs = 4]
    too.

    On an error raised by a step (e.g. a message to a non-neighbor) the
    flat engine propagates the same exception as the active engine, but
    observer calls of the failing round are not made (they are replayed
    at the barrier, which the error never reaches) — engines diverge only
    on that error path. *)

type 'm inbox
(** The mail delivered to a node this round, in arrival order (identical
    to the list the active engine would hand [step]).  A read-only view
    into a recycled arena buffer: valid only during the [fp_step] call it
    was passed to. *)

val inbox_len : 'm inbox -> int
val inbox_src : 'm inbox -> int -> int
(** Sender of the [i]-th message; raises [Invalid_argument] out of range. *)

val inbox_msg : 'm inbox -> int -> 'm
(** Payload of the [i]-th message; raises [Invalid_argument] out of range. *)

val inbox_list : 'm inbox -> (int * 'm) list
(** The inbox as the active engine's [(sender, message)] list (allocates;
    the convenience bridge for incremental ports). *)

type ('s, 'm) flat_protocol = {
  fp_init : view -> 's;
  fp_step :
    view -> round:int -> 's -> inbox:'m inbox -> emit:(dst:int -> 'm -> unit)
    -> 's;
      (** Reads mail through the zero-copy [inbox] view and sends by
          calling [emit] (one closure per domain per run — no outbox list
          is ever built).  Same delivery semantics as {!protocol.step}:
          messages emitted in round [r] arrive in round [r + 1]. *)
  fp_is_done : 's -> bool;
  fp_msg_bits : 'm -> int;
  fp_wake : (view -> round:int -> 's -> bool) option;
      (** Same contract as {!protocol.wake}.  Pass [Some never] (that
          exact closure) to opt into the sparse active-list scheduler. *)
}

val flat_of_protocol : ('s, 'm) protocol -> ('s, 'm) flat_protocol
(** Boxed fallback: adapts a list-based protocol to the flat engine by
    materializing each inbox list and walking each outbox list.  Keeps
    the per-active-node allocation profile but still gains arena delivery
    and active-list scheduling. *)

type sanitizer_violation = {
  sv_kind : string;
      (** ["idle-state-write"] — a node's state changed in a round it was
          not stepped (cross-partition write through an aliased state);
          ["emit-outside-step"] — an emit closure fired with no step in
          progress on its domain; ["emit-foreign-node"] — an emit issued
          on behalf of a node owned by another domain; ["arena-leak"] —
          mail staged outside the recipient list (would silently vanish);
          ["undelivered-inbox"] — delivered mail never consumed by a
          step. *)
  sv_round : int;
  sv_node : int;
  sv_domain : int;  (** domain owning [sv_node]; [-1] if out of range *)
  sv_detail : string;  (** human-readable elaboration *)
}

exception Sanitizer_violation of sanitizer_violation
(** Raised by {!run_flat} with [~sanitize:true] when a flat protocol (or
    the engine itself) breaks the ownership contract the typed
    domain-race lint rule checks statically.  A [Printexc] printer is
    registered, so uncaught violations render the full record. *)

val run_flat :
  ?max_rounds:int ->
  ?halt:('s array -> bool) ->
  ?observer:observer ->
  ?faults:faults ->
  ?telemetry:Telemetry.t ->
  ?recorder:Recorder.t ->
  ?jobs:int ->
  ?sanitize:bool ->
  Dsf_graph.Graph.t ->
  ('s, 'm) flat_protocol ->
  's array * stats
(** Runs a native flat protocol on the flat-core engine ([jobs] defaults
    to 1; it is clamped to [1 .. n]).  Stats, final states, observer
    traces, round counts, telemetry series, fault semantics, and
    {!Round_limit} behavior are bit-identical to {!run} on the equivalent
    list protocol — the differential suite enforces this with faults and
    telemetry both on and off.

    [sanitize] arms the dynamic ownership sanitizer: node-state writes
    and arena slots are tagged with the owning domain and round, and any
    cross-partition write, escaped emit closure, or leaked arena slot
    aborts the run with {!Sanitizer_violation} (kinds above).  Every
    check is read-only — private hash snapshots and write stamps — so a
    clean sanitized run is bit-identical to an unsanitized one (stats,
    states, observer order); it costs an O(n) structural-hash sweep per
    round.  Defaults to the [DSF_SANITIZE] environment variable
    ([1]/[true]/[on], read once at module init), which is how ci.sh's
    sanitized end-to-end smoke arms it without touching call sites.

    [recorder] appends flight-recorder events (see {!Recorder}): a
    [Round] marker per executed round, [Step v] for every mail-consuming
    step, [Send] with the fault layer's verdict as its [fate], and
    [Down]/[Restart] for crash windows.  Events are staged in per-domain
    buffers and flushed at the barrier in domain = node order — crash
    events of the round first, then step/send events — so the serialized
    log is byte-identical for any [jobs] and identical to the classic
    engines' log for the same protocol.  When absent, a recorder attached
    to [?telemetry] ([Telemetry.create ~recorder]) is used; with neither,
    the engine pays one predictable branch per action and allocates
    nothing (the bench GC gate pins the off path).  Events of a round
    that raises (protocol error, sanitizer violation) are never flushed —
    the log ends at the last completed round, like observer replay. *)

val use_flat_engine : bool ref
(** Deprecated global shim, mirror of {!use_reference_engine}: while
    [true], {!run} (called without an explicit [?flat] or [?reference])
    routes through the flat engine via {!flat_of_protocol}.  Same
    single-domain-only contract as the other shims. *)

val run :
  ?max_rounds:int ->
  ?halt:('s array -> bool) ->
  ?observer:observer ->
  ?reference:bool ->
  ?faults:faults ->
  ?telemetry:Telemetry.t ->
  ?flat:bool ->
  ?jobs:int ->
  ?recorder:Recorder.t ->
  Dsf_graph.Graph.t ->
  ('s, 'm) protocol ->
  's array * stats
(** Runs the protocol to quiescence on the active-set engine.  Default
    [max_rounds] is [10_000 + 200 * n]; raises {!Round_limit} if exceeded
    (a protocol bug — the abort carries a post-mortem, see {!abort}).
    Messages produced in round [r] are delivered in round [r + 1].

    [faults] switches on fault injection for this run (see the fault
    semantics above).  Omitting it — or passing a record whose callbacks
    never fire — leaves the engine bit-identical to the fault-free one:
    the differential suite checks both.  Requires the active engine.

    [halt] is an omniscient early-termination predicate evaluated on the
    state vector after every round; when it fires the run stops immediately.
    It models a coordinator aborting a subroutine ("the root detects X and
    broadcasts stop"): the caller is responsible for charging the O(D)
    stop-broadcast to its round ledger.

    [observer] taps this run's messages (in addition to the global shim,
    which fires first when both are set).  [reference] selects the engine
    for this run only: [true] delegates to {!run_reference}; it defaults
    to the {!use_reference_engine} shim (normally [false]).  [flat]
    routes this run through the flat-core engine (via
    {!flat_of_protocol}); it defaults to the {!use_flat_engine} shim.
    Engine precedence is reference > flat > active.  [jobs] partitions a
    flat run across pool domains (ignored by the other engines;
    default 1).

    [telemetry] attributes the run to the enclosing {!Telemetry} span
    (final stats via [Telemetry.sim_run], including on a {!Round_limit}
    abort) and streams the round-level series — active-set size, messages
    delivered, bits this round, wake-hook hits — into its metrics
    registry via [Telemetry.sim_round].  Purely observational: with
    [?telemetry] absent the engine pays a single extra branch per round
    and runs bit-identically to before (the differential suite checks
    this).

    [recorder] appends flight-recorder events for this run (see
    {!run_flat} for the event and determinism contract; all three engines
    produce byte-identical logs on the same protocol).  Defaults to the
    recorder attached to [?telemetry], if any. *)

val run_reference :
  ?max_rounds:int ->
  ?halt:('s array -> bool) ->
  ?observer:observer ->
  ?telemetry:Telemetry.t ->
  ?recorder:Recorder.t ->
  Dsf_graph.Graph.t ->
  ('s, 'm) protocol ->
  's array * stats
(** The original (seed) simulator loop, kept as the semantic anchor: steps
    every node every round and ignores [wake].  Differential tests assert
    {!run} matches it exactly; it is also the baseline leg of the
    [bench/main.exe -- micro] simulator benchmarks.  Not for production
    use — it pays O(n + m) per round regardless of activity. *)

val use_reference_engine : bool ref
(** Deprecated global shim for test/benchmark instrumentation: while
    [true], {!run} (called without an explicit [?reference]) delegates to
    {!run_reference}.  Lets the differential suite and the microbenchmarks
    drive whole algorithm entry points (e.g. {!Bellman_ford.sssp}) through
    both engines without threading an engine parameter through every
    caller.  Never set this in library code; reset it with [Fun.protect];
    single-domain use only (see the domain-safety contract). *)

val pp_stats : Format.formatter -> stats -> unit
