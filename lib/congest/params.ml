module Graph = Dsf_graph.Graph

let count_nodes ?observer g =
  let root = Bfs.max_id_root g in
  let tree, s1 = Bfs.build ?observer g ~root in
  let n, s2 = Tree_ops.count_nodes ?observer g ~tree in
  n, s1.Sim.rounds + s2.Sim.rounds

let diameter_upper_bound ?observer g =
  let root = Bfs.max_id_root g in
  let tree, s1 = Bfs.build ?observer g ~root in
  2 * tree.Bfs.height, s1.Sim.rounds

let estimate_s ?observer ~cap g =
  let root = Bfs.max_id_root g in
  match Bellman_ford.run ~max_rounds:(cap + 1) ?observer g ~sources:[ root, 0 ] with
  | res, stats ->
      (* Stabilization is detected O(D) after it happens; charge the
         detection by reporting the simulated rounds as-is (quiescence
         already includes the tail). *)
      `Stabilized res.Bellman_ford.rounds, stats.Sim.rounds
  | exception Sim.Round_limit a -> `Exceeded, a.Sim.at_round

let isqrt = Dsf_util.Intmath.isqrt

let regime ?observer g =
  let n, r1 = count_nodes ?observer g in
  let cap = isqrt n in
  match estimate_s ?observer ~cap g with
  | `Stabilized s, r2 -> `Small_s s, r1 + r2
  | `Exceeded, r2 -> `Large_s, r1 + r2
