module Graph = Dsf_graph.Graph

let count_nodes ?observer ?telemetry g =
  let root = Bfs.max_id_root g in
  let tree, s1 = Bfs.build ?observer ?telemetry g ~root in
  let n, s2 = Tree_ops.count_nodes ?observer ?telemetry g ~tree in
  n, s1.Sim.rounds + s2.Sim.rounds

let diameter_upper_bound ?observer ?telemetry g =
  let root = Bfs.max_id_root g in
  let tree, s1 = Bfs.build ?observer ?telemetry g ~root in
  2 * tree.Bfs.height, s1.Sim.rounds

let estimate_s ?observer ?telemetry ~cap g =
  let root = Bfs.max_id_root g in
  match
    Bellman_ford.run ~max_rounds:(cap + 1) ?observer ?telemetry g
      ~sources:[ root, 0 ]
  with
  | res, stats ->
      (* Stabilization is detected O(D) after it happens; charge the
         detection by reporting the simulated rounds as-is (quiescence
         already includes the tail). *)
      `Stabilized res.Bellman_ford.rounds, stats.Sim.rounds
  | exception Sim.Round_limit a -> `Exceeded, a.Sim.at_round

let isqrt = Dsf_util.Intmath.isqrt

let regime ?observer ?telemetry g =
  Telemetry.span_opt telemetry "regime_test" @@ fun () ->
  let n, r1 = count_nodes ?observer ?telemetry g in
  let cap = isqrt n in
  match estimate_s ?observer ?telemetry ~cap g with
  | `Stabilized s, r2 -> `Small_s s, r1 + r2
  | `Exceeded, r2 -> `Large_s, r1 + r2
