(** Leader election by max-id flooding — the step the paper's appendix
    implicitly performs whenever it roots a BFS tree "at the node with the
    largest identifier": every node floods the largest id it has heard, and
    after D rounds all agree.  O(D) simulated rounds, O(log n) bits per
    message. *)

type result = {
  leader : int;
  rounds : int;
  messages : int;
  agreed : bool;
      (** every node ended on [leader].  Always [true] without faults
          (asserted).  Under crash-and-restart plans the raw protocol does
          {e not} guarantee agreement — a node restarted after the max-id
          wave has passed quiesces on a stale leader — so faulted runs
          report the breakage here instead of hiding it. *)
}

type state = { best : int; dirty : bool }

val protocol : Dsf_graph.Graph.t -> (state, int) Sim.protocol
(** The raw flood protocol, exposed for the chaos differential suite. *)

val elect :
  ?observer:Sim.observer ->
  ?faults:Sim.faults ->
  ?chaos:Fault.chaos ->
  Dsf_graph.Graph.t ->
  result
(** Requires a connected graph; the elected leader is the maximum node id
    (= {!Bfs.max_id_root}) and, absent faults, every node knows it on
    termination.  [leader] is the maximum of the per-node answers (the
    max-id node always believes in itself, so this is the true winner
    even when [agreed] is false).  [?chaos] runs the flood hardened with
    checkpoint recovery ({!Fault.sim_run}): under any plan — crash-restart
    included — the run reconverges and [agreed] holds (asserted, like the
    fault-free case). *)
