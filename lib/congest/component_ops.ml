module Graph = Dsf_graph.Graph

type 'a state = { best : 'a option; dirty : bool }

let gossip_extremum ?observer ?telemetry g ~mask ~values ~better ~bits =
  let proto : ('a state, 'a) Sim.protocol =
    {
      init =
        (fun view ->
          match values view.Sim.node with
          | Some v -> { best = Some v; dirty = true }
          | None -> { best = None; dirty = false });
      step =
        (fun view ~round:_ st ~inbox ->
          let st =
            List.fold_left
              (fun st (_, v) ->
                match st.best with
                | Some b when not (better v b) -> st
                | _ -> { best = Some v; dirty = true })
              st inbox
          in
          match st.best, st.dirty with
          | Some v, true ->
              let outbox =
                Array.to_list view.Sim.nbrs
                |> List.filter_map (fun (nb, _, eid) ->
                       if mask.(eid) then Some (nb, v) else None)
              in
              { st with dirty = false }, outbox
          | _ -> { st with dirty = false }, []);
      is_done = (fun st -> not st.dirty);
      msg_bits = bits;
      wake = Some Sim.never;
    }
  in
  let states, stats =
    Telemetry.span_opt telemetry "gossip_extremum" (fun () ->
        Sim.run ?observer ?telemetry g proto)
  in
  Array.map (fun st -> st.best) states, stats

let leaders ?observer ?telemetry g ~mask =
  let results, stats =
    gossip_extremum ?observer ?telemetry g ~mask
      ~values:(fun v -> Some v)
      ~better:(fun a b -> a > b)
      ~bits:(fun _ -> Dsf_util.Bitsize.id_bits ~n:(Graph.n g))
  in
  ( Array.mapi
      (fun v best -> match best with Some l -> l | None -> v)
      results,
    stats )

let component_min_item ?observer ?telemetry g ~mask ~values ~cmp ~bits =
  gossip_extremum ?observer ?telemetry g ~mask ~values
    ~better:(fun a b -> cmp a b < 0) ~bits
