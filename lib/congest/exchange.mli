(** One-round full-neighborhood exchange: every node sends one fixed-size
    message to each neighbor.  This is the "u sends v_u to each neighbor"
    step the deterministic algorithms run once per merge phase (Step 3b of
    the Appendix E.1 algorithm) to let boundary edges discover the two
    regions they straddle. *)

val protocol : payload_bits:int -> (bool, unit) Sim.protocol
(** The raw protocol (state = "have I sent yet").  Self-stabilizing under
    crash-and-restart: a restarted node re-inits to [false] and simply
    re-sends, so every node that survives to quiescence has sent. *)

val flat_protocol : payload_bits:int -> (int, int) Sim.flat_protocol
(** The native flat-engine port of {!protocol}: bare-int state and
    messages, otherwise identical. *)

val all_neighbors :
  ?observer:Sim.observer ->
  ?faults:Sim.faults ->
  ?telemetry:Telemetry.t ->
  ?flat:bool ->
  ?jobs:int ->
  ?chaos:Fault.chaos ->
  Dsf_graph.Graph.t ->
  payload_bits:int ->
  Sim.stats
(** Simulates the exchange; [payload_bits] is the per-message size (for a
    region announcement: owner id + offset + activity bit).  [observer]
    taps the run per-run (domain-safe); [faults] injects a fault plan
    (see {!Fault}); [telemetry] profiles the run under a
    ["neighbor_exchange"] span.  [~flat:true] runs the native
    {!flat_protocol} on {!Sim.run_flat} with [?jobs] domains
    (bit-identical stats and traces); [~flat:false] forces the classic
    active engine; omitting [flat] defers to {!Sim.run}'s engine
    selection. *)
