(** Flight recorder: a compact binary causal event log of everything a
    simulated run does, and the query layer that answers "why" on top of
    it.

    {2 What gets recorded}

    The engines ({!Sim.run}, {!Sim.run_reference}, {!Sim.run_flat}) append
    one event per observable action into the log:

    - [Round r] — one per executed round, carrying the run-local round
      number (a run's rounds restart at 0, so a [Round 0] marks a new
      run; the inspector assigns each round a monotone {e global} index);
    - [Step v] — node [v] consumed a non-empty inbox this round.  This is
      the {e sanctioned state-write stamp}: it is emitted at exactly the
      site where the flat engine's ownership sanitizer stamps
      [written.(v) <- round], so every recorded state change is one the
      sanitizer would bless.  Steps with an empty inbox are causally
      inert under the wake contract and are not recorded — a [--why]
      backtrace answers for the last {e mail-consuming} step at or before
      the queried round;
    - [Send {src; dst; bits; fate}] — one per send, in the global send
      order all three engines share (sender ascending, outbox order
      within a sender; the flat engine's barrier merge restores exactly
      this order for any [jobs]).  [fate] is the number of copies the
      fault layer delivered: 0 = dropped in flight, 1 = normal,
      [k > 1] = replicated;
    - [Down v] / [Restart v] — the fault layer's crash window: [Down]
      every round the node is down (its pending mail is lost), [Restart]
      on the first round back up (the crash-restart state write — the
      other sanitizer-sanctioned write site);
    - [Span_open name] / [Span_close name] — telemetry span boundaries
      ({!Telemetry.span} cross-links them when a recorder is attached),
      so causal depth can be attributed per phase;
    - [Recovery {...}] — a hardened run's recovery summary
      ({!Fault.run_hardened} / [sim_run ?chaos]): retransmissions,
      checkpoint restores, checkpoint bits.

    {2 Determinism}

    Events from a domain-partitioned {!Sim.run_flat} are staged in
    per-domain buffers ({!buf}) and flushed at the round barrier in
    domain = node order, exactly like observer calls — the serialized log
    is byte-identical for any [jobs], and identical to the classic
    engines' log on the same protocol.  The only nondeterministic datum
    is the capture timestamp taken at {!create} (this module is on
    dsf-lint's wall-clock allowlist for exactly that read); tests inject
    [~now:0] for byte-stable comparisons.

    Recorder-off is the default everywhere and costs the engines one
    branch per action — no allocation, which the bench GC gates pin. *)

type t
(** A live recorder: master event log, interned span names, metadata. *)

type buf
(** A per-domain staging buffer.  Owned by exactly one domain between
    barriers; the coordinator {!flush}es it into the master log. *)

val create : ?now:int -> ?meta:(string * int) list -> unit -> t
(** Fresh recorder.  [now] is the capture timestamp in Unix seconds
    (default: read from the wall clock — the one sanctioned read in this
    module); it lands in the metadata as ["captured_unix_s"].  [meta]
    seeds further metadata entries (values must be non-negative). *)

val meta_add : t -> string -> int -> unit
(** Append a metadata entry (e.g. instance parameters [n], [D], [s],
    [t]).  Raises [Invalid_argument] on a negative value — the binary
    format stores unsigned varints. *)

val meta_find : t -> string -> int option

val buf_make : unit -> buf

(** {2 Event appenders}

    The [ev_*] functions stage into a domain-owned {!buf}; [round],
    [span_open]/[span_close], and [recovery] append straight to the
    master log and are coordinator-only. *)

val ev_step : buf -> int -> unit
val ev_send : buf -> src:int -> dst:int -> bits:int -> fate:int -> unit
val ev_down : buf -> int -> unit
val ev_restart : buf -> int -> unit

val round : t -> int -> unit
(** Append a [Round] marker (run-local round number) to the master log.
    The engines call this at the round barrier, {e before} flushing the
    round's domain buffers. *)

val flush : t -> buf -> unit
(** Append a domain buffer's staged events to the master log and reset
    it.  Called at the barrier in domain = node order. *)

val span_open : t -> string -> unit
val span_close : t -> string -> unit
val recovery :
  t -> retransmissions:int -> restores:int -> checkpoint_bits:int -> unit

val event_count : t -> int
(** Events in the master log (staged-but-unflushed events not counted). *)

(** {2 Decoded events} *)

type event =
  | Round of int  (** run-local round number *)
  | Step of int
  | Send of { src : int; dst : int; bits : int; fate : int }
  | Down of int
  | Restart of int
  | Span_open of string
  | Span_close of string
  | Recovery of { retransmissions : int; restores : int; checkpoint_bits : int }

val pp_event : Format.formatter -> event -> unit

val tail : t -> int -> event list
(** The last [k] events of the master log, oldest first — what
    {!Trace.pp_postmortem} appends to a {!Sim.Round_limit} dump. *)

(** {2 The [dsf-flightlog/1] binary format}

    A magic line, metadata (length-prefixed keys, unsigned-LEB128
    values), the interned span-name table, then the event stream as
    unsigned-LEB128 varints (every event field is non-negative by
    construction). *)

val to_string : t -> string
val write_file : t -> string -> unit

type log
(** A parsed flightlog. *)

val parse : string -> (log, string) result
val read_file : string -> (log, string) result

val log_meta : log -> (string * int) list
val log_events : log -> event list
val log_event_count : log -> int

(** {2 Causal analysis}

    [analyze] replays the log once, reconstructing inboxes exactly as
    the engines built them (sends of round [g] with [fate >= 1] are
    delivered at [g + 1] of the same run; a [Down] destroys the node's
    pending mail; run boundaries clear mail in flight) and maintaining
    per-node causal depth: a step that consumes mail extends the longest
    message chain among its deliveries by one hop per send.  All queries
    are deterministic — they depend only on the event stream. *)

type analysis

val analyze : log -> analysis

val max_depth : analysis -> int
(** Longest causal message chain in the whole log — the {e achieved}
    analogue of the paper's round lower bound. *)

val total_rounds : analysis -> int
(** Global rounds executed (summed across runs). *)

val run_count : analysis -> int

val node_depth : analysis -> int -> int
(** Causal depth of a node's final state (0 = never consumed mail). *)

val pp_summary : Format.formatter -> analysis -> unit
(** Header: events, rounds, runs, spans, metadata, recovery totals. *)

val pp_why : node:int -> ?round:int -> Format.formatter -> analysis -> unit
(** Causal backtrace of node's state: its last mail-consuming step at or
    before [round] (default: end of log, in {e global} rounds), then the
    chain of messages/steps that produced it, back to an origin step that
    consumed no prior mail. *)

val pp_diff : r1:int -> r2:int -> Format.formatter -> analysis -> unit
(** Per-round traffic/state deltas between two global rounds. *)

val pp_critical_path : Format.formatter -> analysis -> unit
(** Longest causal chain whole-run and per telemetry span, printed next
    to the paper bound sqrt(min(s·t, n))·log2(n) + D when the metadata
    carries [s] (shortest-path diameter), [t] (terminals), [n] and [D]. *)

val pp_hot_edges : ?limit:int -> Format.formatter -> analysis -> unit
(** Directed edges ranked by causal load (total bits, descending; ties on
    ascending (src, dst)), with message counts and the deepest chain that
    crossed each edge.  Supersedes [Trace.hottest_edges] — same ranking
    discipline, but computed offline from a log instead of a live tap. *)
