module Graph = Dsf_graph.Graph
module Bitsize = Dsf_util.Bitsize

(* ----------------------------------------------------------------------- *)
(* Plans: a pure, seeded description of how the network misbehaves.         *)
(* ----------------------------------------------------------------------- *)

type plan = {
  seed : int;
  drop : float;
  duplicate : float;
  link_down : (int * int * int * int) list;
  crashes : (int * int * int) list;
}

let empty = { seed = 0; drop = 0.; duplicate = 0.; link_down = []; crashes = [] }

let plan ?(drop = 0.) ?(duplicate = 0.) ?(link_down = []) ?(crashes = []) ~seed
    () =
  if drop < 0. || drop >= 1. then
    invalid_arg "Fault.plan: drop probability must be in [0, 1)";
  if duplicate < 0. || duplicate > 1. then
    invalid_arg "Fault.plan: duplicate probability must be in [0, 1]";
  List.iter
    (fun (u, v, r0, r1) ->
      if u = v || r0 < 0 || r1 < r0 then
        invalid_arg "Fault.plan: bad link_down window")
    link_down;
  List.iter
    (fun (v, c, r) ->
      if v < 0 || c < 0 || r <= c then
        invalid_arg "Fault.plan: restart round must be after the crash round")
    crashes;
  { seed; drop; duplicate; link_down; crashes }

let is_empty p =
  p.drop = 0. && p.duplicate = 0. && p.link_down = [] && p.crashes = []

let maskable ?(with_recovery = false) p = with_recovery || p.crashes = []
let drop_only p = p.crashes = [] && p.link_down = []

(* Stateless PRF: every (round, src, dst, salt) tuple hashes to an
   independent-looking uniform draw, so fault decisions are deterministic
   in the plan's seed alone — independent of send order, of the engine's
   iteration order, and of how much unrelated traffic the run carries.
   splitmix64-style finalizer over OCaml's 63-bit ints. *)
let mix z =
  let z = z lxor (z lsr 30) in
  let z = z * 0x2545F4914F6CDD1D in
  let z = z lxor (z lsr 27) in
  let z = z * 0x1B03738712FAD5C9 in
  z lxor (z lsr 31)

let prf ~seed ~round ~src ~dst ~salt =
  mix
    (mix (seed + (salt * 0x1E3779B97F4A7C15))
    + mix ((round * 0x100003) lxor (src * 0x10001) lxor dst))
  land max_int

let uniform h = float_of_int h /. float_of_int max_int

let instantiate p : Sim.faults =
  let links = Hashtbl.create (max 4 (List.length p.link_down)) in
  List.iter
    (fun (u, v, r0, r1) ->
      let key = (min u v, max u v) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt links key) in
      Hashtbl.replace links key ((r0, r1) :: prev))
    p.link_down;
  let link_is_down ~round ~src ~dst =
    Hashtbl.length links > 0
    &&
    match Hashtbl.find_opt links (min src dst, max src dst) with
    | None -> false
    | Some ws -> List.exists (fun (r0, r1) -> round >= r0 && round <= r1) ws
  in
  let on_send ~round ~src ~dst =
    if link_is_down ~round ~src ~dst then Sim.Drop
    else if
      p.drop > 0. && uniform (prf ~seed:p.seed ~round ~src ~dst ~salt:1) < p.drop
    then Sim.Drop
    else if
      p.duplicate > 0.
      && uniform (prf ~seed:p.seed ~round ~src ~dst ~salt:2) < p.duplicate
    then Sim.Replicate 2
    else Sim.Deliver
  in
  let down ~round ~node =
    List.exists (fun (v, c, r) -> v = node && round >= c && round < r) p.crashes
  in
  { Sim.on_send; down; retransmissions = ref 0 }

(* A ready-made maskable chaos plan: drops, duplications, a few finite
   outage windows on real edges, and a few crash-and-restart windows.  All
   choices are PRF draws from the seed, so the plan is a pure function of
   (seed, graph) — the chaos soak and the differential suites replay it
   bit-exactly.  Counts scale gently with n; windows are placed in the
   first ~2n physical rounds, where every subroutine of a solve spends its
   early (and most vulnerable) life. *)
let chaos_plan ~seed g =
  let n = Graph.n g in
  let edges = Graph.edges g in
  let m = Array.length edges in
  let draw i salt range = 1 + (prf ~seed ~round:i ~src:0 ~dst:0 ~salt mod range) in
  let horizon = max 8 (2 * n) in
  let k = 2 + (n / 512) in
  let link_down =
    if m = 0 then []
    else
      List.init k (fun i ->
          let e = Graph.edge g (draw i 31 m - 1) in
          let r0 = draw i 32 horizon in
          let len = draw i 33 6 in
          (e.Graph.u, e.Graph.v, r0, r0 + len - 1))
  in
  let crashes =
    List.init k (fun i ->
        let v = draw i 41 n - 1 in
        let c = draw i 42 horizon in
        let len = draw i 43 8 in
        (v, c, c + len))
  in
  plan ~drop:0.05 ~duplicate:0.02 ~link_down ~crashes ~seed ()

(* ----------------------------------------------------------------------- *)
(* The hardening combinator: a reliable link layer plus an alpha-           *)
(* synchronizer, so the wrapped protocol executes its lossless round        *)
(* schedule exactly — inbox contents, arrival rounds and delivery order    *)
(* included — no matter how many messages the network drops or clones,     *)
(* how long links stay dark, or (with a recovery contract) how often       *)
(* nodes crash and restart.                                                *)
(* ----------------------------------------------------------------------- *)

(* Stream items carried by the link layer.  [Fin r] closes the sender's
   contribution to the receiver's virtual round [r]: "everything you should
   consume in your inner round r has been sent".  Virtual round r is safe to
   execute once every incident link has delivered its [Fin r]. *)
type 'm item = Payload of { vround : int; body : 'm } | Fin of { vround : int }

type 'm packet = Pkt of { seq : int; item : 'm item } | Ack of { upto : int }

type ('s, 'm) hstate = {
  mutable inner : 's;
  mutable vround : int;  (** next inner round to execute *)
  links : int array;  (** neighbor ids, ascending *)
  idx : (int, int) Hashtbl.t;  (** neighbor id -> index in [links] *)
  next_seq : int array;  (** per link: next sequence number to assign *)
  outq : (int * 'm item) list array;
      (** per link: unacked items, ascending seq (go-back-N window) *)
  last_tx : int array;  (** per link: round of the last transmission *)
  rto : int array;  (** per link: current retransmit timeout, in rounds *)
  in_upto : int array;  (** per link: highest in-order seq received *)
  fin_upto : int array;  (** per link: highest vround closed by a Fin *)
  pending : (int * 'm) list array;
      (** per link: delivered payloads not yet consumed, arrival order *)
  need_ack : bool array;
  mutable retrans : int;  (** this node's total retransmitted packets *)
  mutable restores : int;  (** checkpoint restores (restarts survived) *)
  mutable resync : int;
      (** physical rounds spent post-restore before the first inner round *)
  mutable recovering : bool;
  mutable ckpt_bits : int;  (** total bits written to stable storage *)
}

let inner st = st.inner
let retransmissions_of states =
  Array.fold_left (fun acc st -> acc + st.retrans) 0 states

type recovery_stats = {
  restores : int;
  recovery_rounds : int;
  checkpoint_bits : int;
}

let recovery_of states =
  Array.fold_left
    (fun acc (st : (_, _) hstate) ->
      {
        restores = acc.restores + st.restores;
        recovery_rounds = acc.recovery_rounds + st.resync;
        checkpoint_bits = acc.checkpoint_bits + st.ckpt_bits;
      })
    { restores = 0; recovery_rounds = 0; checkpoint_bits = 0 }
    states

(* ------------------------------------------------------------ recovery *)

(* What [harden] needs to checkpoint a protocol: a deep copy of the inner
   state (so later in-place mutation cannot corrupt the stable-storage
   image) and its stable-storage footprint in bits (accounting only). *)
type 's recoverable = { snapshot : 's -> 's; state_bits : 's -> int }

let immutable ?(state_bits = fun _ -> 63) () = { snapshot = Fun.id; state_bits }

(* A faithful deep copy of the link-layer state.  [links] and [idx] are
   write-once at init, so sharing them is safe; the queues hold immutable
   list/tuple spines, so copying the arrays suffices. *)
let copy_hstate rc st =
  {
    inner = rc.snapshot st.inner;
    vround = st.vround;
    links = st.links;
    idx = st.idx;
    next_seq = Array.copy st.next_seq;
    outq = Array.copy st.outq;
    last_tx = Array.copy st.last_tx;
    rto = Array.copy st.rto;
    in_upto = Array.copy st.in_upto;
    fin_upto = Array.copy st.fin_upto;
    pending = Array.copy st.pending;
    need_ack = Array.copy st.need_ack;
    retrans = st.retrans;
    restores = st.restores;
    resync = st.resync;
    recovering = st.recovering;
    ckpt_bits = st.ckpt_bits;
  }

(* A node is virtually quiescent when its inner protocol is done, it holds
   no unacknowledged payload (nothing of consequence in flight), and it has
   consumed every payload delivered to it.  When this holds at *every*
   node, the inner execution has reached exactly the lossless fixpoint
   (under the sparse-wake no-op contract, see the .mli), so the omniscient
   [halt] below may stop the run. *)
let node_quiescent inner_is_done st =
  inner_is_done st.inner
  && Array.for_all
       (fun q ->
         List.for_all
           (fun (_, it) -> match it with Payload _ -> false | Fin _ -> true)
           q)
       st.outq
  && Array.for_all (fun l -> l = []) st.pending

let quiescent proto states =
  Array.for_all (node_quiescent proto.Sim.is_done) states

let default_rto = 3
let default_rto_cap = 32

let harden ?(rto = default_rto) ?(rto_cap = default_rto_cap) ?recovery
    (proto : ('s, 'm) Sim.protocol) :
    (('s, 'm) hstate, 'm packet) Sim.protocol =
  if rto < 3 then invalid_arg "Fault.harden: rto below the 2-round ack latency";
  if rto_cap < rto then invalid_arg "Fault.harden: rto_cap < rto";
  (* Stable storage, one slot per node, lazily sized from the first view.
     The engines build every initial state on the coordinator before any
     fan-out and a restarted node is re-inited by the domain that owns it,
     so each slot is only ever touched by its owner — domain-safe at any
     [jobs].  The array belongs to this [harden] instance: a hardened
     protocol with recovery is single-run (build a fresh one per run, as
     [sim_run] and [run_hardened] do). *)
  let stable = ref [||] in
  let fresh_init view =
    let deg = Array.length view.Sim.nbrs in
    let links = Array.map (fun (nb, _, _) -> nb) view.Sim.nbrs in
    Array.sort compare links;
    let idx = Hashtbl.create (max 4 deg) in
    Array.iteri (fun i nb -> Hashtbl.replace idx nb i) links;
    {
      inner = proto.Sim.init view;
      vround = 0;
      links;
      idx;
      next_seq = Array.make deg 1;
      outq = Array.make deg [];
      last_tx = Array.make deg (-1);
      rto = Array.make deg rto;
      in_upto = Array.make deg 0;
      fin_upto = Array.make deg 0;
      pending = Array.make deg [];
      need_ack = Array.make deg false;
      retrans = 0;
      restores = 0;
      resync = 0;
      recovering = false;
      ckpt_bits = 0;
    }
  in
  let init view =
    match recovery with
    | None -> fresh_init view
    | Some rc -> begin
        if Array.length !stable = 0 then stable := Array.make view.Sim.n None;
        match !stable.(view.Sim.node) with
        | None -> fresh_init view
        | Some ckpt ->
            (* Crash-and-restart: resume from the last checkpoint instead
               of a fresh init.  The copy keeps the stored image pristine;
               the go-back-N windows inside it make both stream directions
               heal by retransmission from the last acknowledged seq. *)
            let st = copy_hstate rc ckpt in
            st.restores <- st.restores + 1;
            st.recovering <- true;
            !stable.(view.Sim.node) <- Some (copy_hstate rc st);
            st
      end
  in
  (* Stable-storage footprint of one full checkpoint (write-through: every
     step rewrites the node's image, so this is charged per step). *)
  let hstate_bits rc st =
    let item_bits = function
      | Fin { vround } -> Bitsize.int_bits (max 1 vround)
      | Payload { vround; body } ->
          Bitsize.int_bits (max 1 vround) + proto.Sim.msg_bits body
    in
    let b = ref (rc.state_bits st.inner + Bitsize.int_bits (max 1 st.vround)) in
    let deg = Array.length st.links in
    for j = 0 to deg - 1 do
      b := !b + (4 * Bitsize.int_bits (max 1 st.next_seq.(j)));
      List.iter
        (fun (s, it) -> b := !b + Bitsize.int_bits (max 1 s) + item_bits it)
        st.outq.(j);
      List.iter
        (fun (vr, m) ->
          b := !b + Bitsize.int_bits (max 1 vr) + proto.Sim.msg_bits m)
        st.pending.(j)
    done;
    !b
  in
  let step view ~round:p st ~inbox =
    let deg = Array.length st.links in
    (* 1. Ingest packets: cumulative acks shrink the go-back-N windows;
       in-order data advances the stream; duplicates and gaps are dropped
       (gaps heal when the sender's timer resends the whole window). *)
    List.iter
      (fun (sender, pkt) ->
        let j = Hashtbl.find st.idx sender in
        match pkt with
        | Ack { upto } ->
            let before = st.outq.(j) in
            let after = List.filter (fun (s, _) -> s > upto) before in
            if List.compare_lengths after before < 0 then begin
              st.outq.(j) <- after;
              st.rto.(j) <- rto;
              st.last_tx.(j) <- p
            end
        | Pkt { seq; item } ->
            st.need_ack.(j) <- true;
            if seq = st.in_upto.(j) + 1 then begin
              st.in_upto.(j) <- seq;
              match item with
              | Payload { vround; body } ->
                  st.pending.(j) <- st.pending.(j) @ [ (vround, body) ]
              | Fin { vround } ->
                  if vround > st.fin_upto.(j) then st.fin_upto.(j) <- vround
            end)
      inbox;
    (* 2. Execute at most one inner (virtual) round, once every link has
       closed it.  The inner inbox is rebuilt exactly as both engines
       deliver it: senders in ascending id order ([links] is sorted), each
       sender's payloads in send order. *)
    let fresh = Array.make (max deg 1) [] in
    if Array.for_all (fun f -> f >= st.vround) st.fin_upto then begin
      let r = st.vround in
      let inbox_r = ref [] in
      for j = deg - 1 downto 0 do
        let mine, later = List.partition (fun (vr, _) -> vr = r) st.pending.(j) in
        st.pending.(j) <- later;
        inbox_r :=
          List.fold_right
            (fun (_, body) acc -> (st.links.(j), body) :: acc)
            mine !inbox_r
      done;
      (* The one sanctioned direct [step] call outside the simulator:
         [harden] is a protocol *combinator* — the inner step runs inside
         the wrapper's own accounted step, and every bit the inner
         protocol emits is re-sent (and charged) through the wrapper's
         outbox below. *)
      let inner', outbox =
        (proto.Sim.step view ~round:r st.inner ~inbox:!inbox_r)
        [@lint.allow "congest-discipline"]
      in
      st.inner <- inner';
      st.vround <- r + 1;
      st.recovering <- false;
      List.iter
        (fun (dst, body) ->
          let j =
            match Hashtbl.find_opt st.idx dst with
            | Some j -> j
            | None -> invalid_arg "Fault.harden: message to non-neighbor"
          in
          let s = st.next_seq.(j) in
          st.next_seq.(j) <- s + 1;
          fresh.(j) <- fresh.(j) @ [ (s, Payload { vround = r + 1; body }) ])
        outbox;
      for j = 0 to deg - 1 do
        let s = st.next_seq.(j) in
        st.next_seq.(j) <- s + 1;
        fresh.(j) <- fresh.(j) @ [ (s, Fin { vround = r + 1 }) ]
      done
    end;
    (* 3. Transmit: new items go out immediately; an expired timer resends
       the whole unacked window (in order, so go-back-N reception heals any
       gap) with exponential backoff.  The backoff caps at [rto_cap], so
       resends keep firing forever — that is what rides out finite link
       outages and crash windows instead of merely probabilistic drops. *)
    let packets = ref [] in
    for j = deg - 1 downto 0 do
      let dst = st.links.(j) in
      if st.need_ack.(j) then begin
        st.need_ack.(j) <- false;
        packets := (dst, Ack { upto = st.in_upto.(j) }) :: !packets
      end;
      let had = st.outq.(j) in
      let timed_out =
        had <> [] && st.last_tx.(j) >= 0 && p - st.last_tx.(j) >= st.rto.(j)
      in
      st.outq.(j) <- had @ fresh.(j);
      let to_send =
        if timed_out then begin
          let n_re = List.length had in
          st.retrans <- st.retrans + n_re;
          st.rto.(j) <- min (2 * st.rto.(j)) rto_cap;
          st.outq.(j)
        end
        else fresh.(j)
      in
      if to_send <> [] then st.last_tx.(j) <- p;
      List.iter
        (fun (s, item) -> packets := (dst, Pkt { seq = s; item }) :: !packets)
        (List.rev to_send)
    done;
    (* 4. Checkpoint (write-through): every step ends by persisting a deep
       copy of the whole hardened state, so a crash at any later round
       resumes from exactly this image.  The recovery counters live inside
       the image, which keeps them consistent across repeated crashes. *)
    (match recovery with
    | None -> ()
    | Some rc ->
        if st.recovering then st.resync <- st.resync + 1;
        st.ckpt_bits <- st.ckpt_bits + hstate_bits rc st;
        !stable.(view.Sim.node) <- Some (copy_hstate rc st));
    st, !packets
  in
  let packet_bits = function
    | Ack { upto } -> 2 + Bitsize.int_bits (max 1 upto)
    | Pkt { seq; item } -> (
        2
        + Bitsize.int_bits (max 1 seq)
        +
        match item with
        | Fin { vround } -> Bitsize.int_bits (max 1 vround)
        | Payload { vround; body } ->
            Bitsize.int_bits (max 1 vround) + proto.Sim.msg_bits body)
  in
  {
    Sim.init;
    step;
    is_done = node_quiescent proto.Sim.is_done;
    msg_bits = packet_bits;
    (* The synchronizer marches every physical round (timers, Fin markers),
       so there is no sparse-activity story to declare. *)
    wake = None;
  }

(* Post-run bookkeeping shared by the hardened runners: fold the per-node
   retransmission counters into the stats (the engine-level counter was
   removed — a per-step global bump is not domain-safe at [jobs > 1]) and
   attribute the recovery work to the enclosing telemetry span. *)
let note_hardened telemetry states (stats : Sim.stats) =
  let retrans = retransmissions_of states in
  let rs = recovery_of states in
  (match telemetry with
  | Some tel ->
      if retrans > 0 then
        Telemetry.sim_run tel ~rounds:0 ~messages:0 ~bits:0
          ~max_edge_round_bits:0 ~budget_violations:0 ~dropped:0 ~duplicated:0
          ~retransmissions:retrans;
      if retrans > 0 || rs.restores > 0 || rs.checkpoint_bits > 0 then begin
        let l = Ledger.create () in
        Telemetry.attach_ledger tel l;
        Ledger.add l Ledger.Simulated "fault/retransmissions" retrans;
        Ledger.add l Ledger.Simulated "fault/recovery_rounds"
          rs.recovery_rounds;
        Ledger.add l Ledger.Charged "fault/checkpoint_bits" rs.checkpoint_bits;
        (* Flight recorder riding on the telemetry: one recovery summary
           event per hardened run with nonzero recovery work. *)
        match Telemetry.recorder tel with
        | Some r ->
            Recorder.recovery r ~retransmissions:retrans
              ~restores:rs.restores ~checkpoint_bits:rs.checkpoint_bits
        | None -> ()
      end
  | None -> ());
  { stats with Sim.retransmissions = retrans }

let run_hardened ?max_rounds ?rto ?rto_cap ?observer ?telemetry
    ?(plan = empty) ?recovery g proto =
  let faults = if is_empty plan then None else Some (instantiate plan) in
  let hardened = harden ?rto ?rto_cap ?recovery proto in
  let halt = quiescent proto in
  let states, stats =
    Telemetry.span_opt telemetry "hardened" (fun () ->
        let states, stats =
          Sim.run ?max_rounds ~halt ?observer ?faults ?telemetry g hardened
        in
        states, note_hardened telemetry states stats)
  in
  Array.map (fun st -> st.inner) states, stats

(* ----------------------------------------------------------- chaos runs *)

type chaos = { cplan : plan; crto : int; crto_cap : int }

let chaos ?(rto = default_rto) ?(rto_cap = default_rto_cap) cplan =
  { cplan; crto = rto; crto_cap = rto_cap }

let sim_run ?max_rounds ?halt ?observer ?faults ?telemetry ?flat ?jobs ?chaos
    ?recovery g proto =
  match chaos with
  | None -> Sim.run ?max_rounds ?halt ?observer ?faults ?telemetry ?flat ?jobs g proto
  | Some c ->
      if Option.is_some faults then
        invalid_arg "Fault.sim_run: ?faults and ?chaos are mutually exclusive";
      let faults = if is_empty c.cplan then None else Some (instantiate c.cplan) in
      let hardened = harden ~rto:c.crto ~rto_cap:c.crto_cap ?recovery proto in
      let user_halt = halt in
      let halt hs =
        (* Evaluate the caller's halt every physical round, exactly as the
           lossless engines do: each inner state marches through the same
           state sequence (at most one virtual round per physical round),
           so a predicate that fires on the lossless run fires here on the
           same inner configuration. *)
        let early =
          match user_halt with
          | None -> false
          | Some h -> h (Array.map (fun st -> st.inner) hs)
        in
        early || quiescent proto hs
      in
      Telemetry.span_opt telemetry "hardened" (fun () ->
          let states, stats =
            Sim.run ?max_rounds ~halt ?observer ?faults ?telemetry ?flat ?jobs
              g hardened
          in
          let stats = note_hardened telemetry states stats in
          Array.map (fun st -> st.inner) states, stats)
