(** Span-based phase profiler, round-level engine metrics, and trace sinks.

    The observability layer for the CONGEST stack.  A {!t} collects three
    coordinated views of a run:

    - a {b span tree} — [span t "voronoi" (fun () -> ...)] opens a nested
      phase; simulator costs ({!Sim.run}'s [?telemetry] hook) and ledger
      entries ({!attach_ledger}) recorded while the thunk runs are
      attributed to the innermost open span.  Same-named siblings merge
      into one aggregated node (its [count] tracks occurrences);
    - an {b event log} — one record per span occurrence, replayed by the
      JSONL and Chrome [trace_event] sinks;
    - a {b metrics registry} — deterministic counters/histograms of the
      engine's per-round series ({!Dsf_util.Metrics}).

    Determinism contract: with the default wall clock, only [wall_ns] /
    event timestamps are nondeterministic — every round/message/bit
    number is exact.  Injecting [?clock] (tests use a constant or a
    counter) makes the whole structure deterministic.  Telemetry is
    per-run state, never global; pooled fan-outs {!fork} one child per
    trial {e sequentially before} the fan-out and {!merge_into} the
    parent in trial order afterwards, which is bit-identical to the
    single-domain run for any [~jobs] (same discipline as per-trial
    ledgers and RNG splits). *)

type span = {
  name : string;
  mutable count : int;  (** occurrences merged into this node *)
  mutable wall_ns : int64;
  mutable rounds : int;  (** self (exclusive) — engine-measured *)
  mutable messages : int;
  mutable bits : int;
  mutable max_edge_round_bits : int;
  mutable budget_violations : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable retransmissions : int;
  mutable ledger_simulated : int;  (** self — ledger-attributed *)
  mutable ledger_charged : int;
  mutable children : span list;  (** first-opened first *)
}

type t

val now_ns : unit -> int64
(** Monotonic-enough wall clock in nanoseconds.  This is the one
    sanctioned wall-clock read inside [lib/] — dsf-lint's [nondet] rule
    forbids [Unix.gettimeofday]/[Sys.time] everywhere else so that all
    timing flows through telemetry (and stays injectable). *)

val create : ?clock:(unit -> int64) -> ?recorder:Recorder.t -> unit -> t
(** [?clock] defaults to {!now_ns}.  Tests inject a constant (domain-safe
    across pool fan-outs) or a counter clock for golden output.
    [?recorder] attaches a flight recorder: {!span} emits
    [Span_open]/[Span_close] cross-link events into it, the engines pick
    it up through {!recorder} when no explicit [?recorder] run parameter
    is given, and {!Fault.run_hardened} logs its recovery summary there.
    {!fork} children detach (a recorder is single-writer state). *)

val recorder : t -> Recorder.t option
(** The attached flight recorder, if any. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a child span of the current one (opening it if
    this name is new at this level), attributing engine and ledger costs
    recorded inside.  Exception-safe: the span closes on raise. *)

val span_opt : t option -> string -> (unit -> 'a) -> 'a
(** [span] when telemetry is on; just the thunk when [None].  The
    one-branch form instrumented call-sites use so the off path stays
    zero-cost. *)

val root : t -> span
val root_spans : t -> span list

val find : t -> string list -> span option
(** Look up a span by path from the root, e.g.
    [find t ["det_dsf"; "phase"; "region_bf"]]. *)

val metrics : t -> Dsf_util.Metrics.t

val attach_ledger : t -> Ledger.t -> unit
(** Tap the ledger so every subsequent entry also lands in the enclosing
    span ([ledger_simulated] / [ledger_charged]).  [Ledger.merge_into]
    deliberately bypasses the destination hook — merged entries were
    attributed on their source ledger already; span trees travel via
    {!merge_into} instead. *)

val sim_round :
  t -> stepped:int -> delivered:int -> bits:int -> wake_hits:int -> unit
(** Engine hook, fired once per simulated round: nodes stepped (active-set
    size), messages delivered, bits sent this round, wake-hook hits.
    Feeds the [sim/*] histograms and counters. *)

val sim_run :
  t ->
  rounds:int ->
  messages:int ->
  bits:int ->
  max_edge_round_bits:int ->
  budget_violations:int ->
  dropped:int ->
  duplicated:int ->
  retransmissions:int ->
  unit
(** Engine hook, fired once at the end (or abort) of a {!Sim.run}:
    credits the run's stats to the innermost open span. *)

val fork : t -> t
(** Fresh child telemetry for one pooled trial: empty tree/events/
    registry, shared clock/epoch, next thread id.  Call sequentially
    {e before} the fan-out — the ids come from a shared counter. *)

val merge_into : dst:t -> t -> unit
(** Graft a fork's spans under [dst]'s current span (merging same-named
    nodes), append its events, and add its metrics.  Call in trial order
    after the fan-out. *)

(** {2 Sinks} *)

val pp : Format.formatter -> t -> unit
(** Console tree (inclusive rollups) followed by the metrics registry. *)

val to_jsonl_string : t -> string
(** One JSON object per line: a [meta] header, per-occurrence [span]
    events, flattened per-path [profile] rows, then [counter] /
    [histogram] metric rows. *)

val to_chrome_string : t -> string
(** Chrome [trace_event] JSON (complete ["ph": "X"] events, µs
    timestamps) loadable in Perfetto / [chrome://tracing]; pool trials
    appear as separate threads. *)

type sink_format = Console | Jsonl | Chrome

val sink_format_of_string : string -> (sink_format, string) result
(** Accepts ["console"], ["jsonl"], ["chrome"]. *)

val write_file : t -> format:sink_format -> string -> unit
(** Write the chosen rendering to a file (["-"] = stdout). *)
