module Graph = Dsf_graph.Graph

let protocol ~payload_bits : (bool, unit) Sim.protocol =
  {
    init = (fun _ -> false);
    step =
      (fun view ~round:_ sent ~inbox:_ ->
        if sent then true, []
        else
          ( true,
            Array.to_list view.Sim.nbrs
            |> List.map (fun (nb, _, _) -> nb, ()) ));
    is_done = Fun.id;
    msg_bits = (fun () -> payload_bits);
    wake = Some Sim.never;
  }

let all_neighbors ?observer ?faults ?telemetry g ~payload_bits =
  let _, stats =
    Telemetry.span_opt telemetry "neighbor_exchange" (fun () ->
        Sim.run ?observer ?faults ?telemetry g (protocol ~payload_bits))
  in
  stats
