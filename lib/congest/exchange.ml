module Graph = Dsf_graph.Graph

let all_neighbors g ~payload_bits =
  let proto : (bool, unit) Sim.protocol =
    {
      init = (fun _ -> false);
      step =
        (fun view ~round:_ sent ~inbox:_ ->
          if sent then true, []
          else
            ( true,
              Array.to_list view.Sim.nbrs
              |> List.map (fun (nb, _, _) -> nb, ()) ));
      is_done = Fun.id;
      msg_bits = (fun () -> payload_bits);
      wake = Some Sim.never;
    }
  in
  let _, stats = Sim.run g proto in
  stats
