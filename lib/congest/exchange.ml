module Graph = Dsf_graph.Graph

let protocol ~payload_bits : (bool, unit) Sim.protocol =
  {
    init = (fun _ -> false);
    step =
      (fun view ~round:_ sent ~inbox:_ ->
        if sent then true, []
        else
          ( true,
            Array.to_list view.Sim.nbrs
            |> List.map (fun (nb, _, _) -> nb, ()) ));
    is_done = Fun.id;
    msg_bits = (fun () -> payload_bits);
    wake = Some Sim.never;
  }

(* Native flat-engine port: state is a bare immediate int (0 = not sent,
   1 = sent), the payload placeholder is the int 0, and everything else is
   the classic protocol verbatim — it was already mail-free and
   wake-never. *)
let flat_protocol ~payload_bits : (int, int) Sim.flat_protocol =
  {
    fp_init = (fun _ -> 0);
    fp_step =
      (fun view ~round:_ sent ~inbox:_ ~emit ->
        if sent = 1 then 1
        else begin
          Array.iter (fun (nb, _, _) -> emit ~dst:nb 0) view.Sim.nbrs;
          1
        end);
    fp_is_done = (fun sent -> sent = 1);
    fp_msg_bits = (fun _ -> payload_bits);
    fp_wake = Some Sim.never;
  }

let all_neighbors ?observer ?faults ?telemetry ?flat ?jobs ?chaos g
    ~payload_bits =
  if Option.is_none chaos && flat = Some true then
    let _, stats =
      Telemetry.span_opt telemetry "neighbor_exchange" (fun () ->
          Sim.run_flat ?observer ?faults ?telemetry ?jobs g
            (flat_protocol ~payload_bits))
    in
    stats
  else
    let _, stats =
      Telemetry.span_opt telemetry "neighbor_exchange" (fun () ->
          Fault.sim_run ?observer ?faults ?telemetry ?flat ?jobs ?chaos
            ~recovery:(Fault.immutable ()) g (protocol ~payload_bits))
    in
    stats
