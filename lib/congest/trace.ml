type t = {
  mutable messages : int;
  mutable bits : int;
  per_edge : (int * int, int) Hashtbl.t;
}

let create () = { messages = 0; bits = 0; per_edge = Hashtbl.create 64 }

let observer t ~src ~dst ~bits =
  t.messages <- t.messages + 1;
  t.bits <- t.bits + bits;
  let key = src, dst in
  Hashtbl.replace t.per_edge key
    (bits + Option.value ~default:0 (Hashtbl.find_opt t.per_edge key))

(* [record] is the single-domain convenience: the thunk does not take an
   observer, so the only way to tap the runs inside it is the deprecated
   process-wide shim.  That dependency is intentional and visible here —
   pooled callers must use [create] + [observer] with the per-run
   [?observer] parameter instead. *)
let record f =
  let t = create () in
  let result = (Sim.with_observer [@lint.allow "sim-globals"]) (observer t) f in
  result, t

let messages t = t.messages
let bits t = t.bits
let edge_bits t = t.per_edge

(* Descending bits, ties broken by ascending (src, dst): hash-fold order
   must never leak into the ranking, or two runs of the same trace render
   different "hottest" lists. *)
let hottest_edges t n =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.per_edge []
  |> List.sort (fun (ka, a) (kb, b) ->
         let c = compare b a in
         if c <> 0 then c else compare ka kb)
  |> List.filteri (fun i _ -> i < n)

let bits_between t ~src ~dst =
  Option.value ~default:0 (Hashtbl.find_opt t.per_edge (src, dst))

let pp_summary ppf t =
  Format.fprintf ppf "messages=%d bits=%d busiest:" t.messages t.bits;
  List.iter
    (fun ((s, d), b) -> Format.fprintf ppf " %d->%d:%d" s d b)
    (hottest_edges t 3)

let postmortem_tail = 64

let pp_postmortem ?recorder ppf (a : Sim.abort) =
  Format.fprintf ppf
    "round limit hit at round %d (%d messages, %d dropped, %d retransmitted \
     in total)@."
    a.Sim.at_round a.Sim.snapshot.Sim.messages a.Sim.snapshot.Sim.dropped
    a.Sim.snapshot.Sim.retransmissions;
  (* Who was still talking: per-sender message totals over the window
     point straight at the node whose timer never stops firing. *)
  let talkers = Hashtbl.create 16 in
  List.iter
    (fun (_, msgs) ->
      List.iter
        (fun (src, _, _) ->
          Hashtbl.replace talkers src
            (1 + Option.value ~default:0 (Hashtbl.find_opt talkers src)))
        msgs)
    a.Sim.recent;
  let ranked =
    Hashtbl.fold (fun node count acc -> (node, count) :: acc) talkers []
    |> List.sort (fun (na, a) (nb, b) ->
           (* Descending count, ascending node id on ties — deterministic
              regardless of hash-fold order. *)
           let c = compare b a in
           if c <> 0 then c else compare na nb)
  in
  (match ranked with
  | [] -> Format.fprintf ppf "no traffic in the last %d rounds@."
            (List.length a.Sim.recent)
  | _ ->
      Format.fprintf ppf "senders over the last %d rounds:"
        (List.length a.Sim.recent);
      List.iter
        (fun (node, count) -> Format.fprintf ppf " %d:%dmsg" node count)
        ranked;
      Format.fprintf ppf "@.");
  List.iter
    (fun (round, msgs) ->
      Format.fprintf ppf "  round %d:" round;
      if msgs = [] then Format.fprintf ppf " (silent)"
      else
        List.iter
          (fun (src, dst, bits) ->
            Format.fprintf ppf " %d->%d:%db" src dst bits)
          msgs;
      Format.fprintf ppf "@.")
    a.Sim.recent;
  (* When the aborted run was flying a flight recorder, append its causal
     tail: unlike the traffic ring this includes steps, crash windows, and
     span boundaries — the events leading into the abort, oldest first. *)
  match recorder with
  | None -> ()
  | Some r -> (
      match Recorder.tail r postmortem_tail with
      | [] -> ()
      | evs ->
          Format.fprintf ppf "flight recorder tail (last %d of %d events):@."
            (List.length evs) (Recorder.event_count r);
          List.iter
            (fun ev -> Format.fprintf ppf "  %a@." Recorder.pp_event ev)
            evs)
