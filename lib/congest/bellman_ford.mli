(** Distributed multi-source Bellman-Ford, the primitive behind the paper's
    Voronoi decompositions (Definition 4.6, Lemma 4.8) and the virtual-tree
    construction of Section 5.

    Sources start with given initial distances (used for reduced weights /
    head starts); every node converges to the closest source under the
    lexicographic order (distance, source id) — exactly the tie-breaking of
    Definition 4.6.  An optional per-edge weight override implements the
    reduced weight functions Ŵ_j, and an optional radius cap implements the
    bounded-radius exploration of the tree embedding (B(v, β·2^i)).

    The number of simulated rounds is the number of Bellman-Ford iterations
    until stabilization — the quantity the paper identifies with [s]. *)

type result = {
  dist : int array;  (** distance to the closest source; [max_int] if none *)
  src_of : int array;  (** closest source; [-1] if unreached *)
  parent : int array;
      (** predecessor towards the source; [-1] at sources / unreached *)
  hops : int array;  (** tree depth in hops; [max_int] if unreached *)
  rounds : int;
}

type state
type msg

val protocol :
  ?weight_of:(int -> int) ->
  ?radius:int ->
  Dsf_graph.Graph.t ->
  sources:(int * int) list ->
  (state, msg) Sim.protocol
(** The raw relaxation protocol, exposed for the chaos differential suite
    (hardened-vs-lossless final-state comparison via {!Fault.harden}). *)

type flat_state
(** Packed-state type of {!flat_protocol}; decode through {!run}. *)

val flat_protocol :
  ?weight_of:(int -> int) ->
  ?radius:int ->
  Dsf_graph.Graph.t ->
  sources:(int * int) list ->
  (flat_state, int) Sim.flat_protocol option
(** The native flat-engine port of {!protocol}: messages are one immediate
    int each (a {!Dsf_util.Pack} layout of distance, source, hops — the
    distance field sized by the instance's sound bound min(radius, max d0 +
    (n-1)·max w)), node state is a mutable record updated in place, and
    incoming edge weights resolve through the CSR view.  Rounds, messages,
    bits, and final labels are bit-identical to {!protocol} (differential
    suite enforced).  Returns [None] when the widths exceed an immediate
    int; {!run}[ ~flat:true] then falls back to the classic protocol
    through the flat engine's boxed adapter. *)

val run :
  ?weight_of:(int -> int) ->
  ?radius:int ->
  ?max_rounds:int ->
  ?observer:Sim.observer ->
  ?faults:Sim.faults ->
  ?telemetry:Telemetry.t ->
  ?flat:bool ->
  ?jobs:int ->
  ?chaos:Fault.chaos ->
  Dsf_graph.Graph.t ->
  sources:(int * int) list ->
  result * Sim.stats
(** [run g ~sources] with [sources = [(node, initial_dist); ...]].
    [weight_of eid] overrides the weight of edge [eid] (must be >= 0; zero
    weights model edges inside contracted moats).  [radius r] discards any
    path of distance > [r].  Ties are broken towards the smaller source id,
    then the smaller parent id.  [telemetry] profiles the run under a
    ["bellman_ford"] span.  [~flat:true] runs the native {!flat_protocol}
    on {!Sim.run_flat} with [?jobs] domains (boxed adapter fallback when it
    declines); [~flat:false] forces the classic active engine; omitting
    [flat] defers to {!Sim.run}'s engine selection.  [faults] injects a
    fault plan (active or flat engine only). *)

val sssp :
  ?observer:Sim.observer ->
  ?telemetry:Telemetry.t ->
  ?flat:bool ->
  ?jobs:int ->
  Dsf_graph.Graph.t ->
  src:int ->
  result * Sim.stats
