module Graph = Dsf_graph.Graph
module Bitsize = Dsf_util.Bitsize

(* One Cole-Vishkin step: given own color and the parent's color (both
   proper, i.e. different), return 2 * i + bit_i(own) for the lowest bit
   position i where they differ. *)
let cv_step own parent =
  assert (own <> parent);
  let diff = own lxor parent in
  let rec lowest i v = if v land 1 = 1 then i else lowest (i + 1) (v lsr 1) in
  let i = lowest 0 diff in
  (2 * i) + ((own lsr i) land 1)

(* A root has no parent; it pretends its parent's color differs at bit 0. *)
let cv_root own = (2 * 0) + (own land 1)

(* 63-bit identifiers need 4 CV iterations to reach colors < 6:
   63 bits -> <126 -> <14 -> <8 -> <6.  Two extra for safety. *)
let cv_iterations = 6

(* A fresh {0,1,2} color for a shifting root, different from its old one. *)
let root_shift_color old = if old = 0 then 1 else 0

type color_state = {
  color : int;
  pre_shift : int;  (** own color before the current stage's shift-down *)
  parent_color : int;  (** parent's current color, as last heard *)
  finished : bool;
}

type color_msg = Down of int

(* Phase layout by round number r:
   r in [0, cv_iterations):   lockstep CV — parents broadcast, colors
                              shrink to {0..5};
   then three reduction stages (targets 5, 4, 3), each three rounds:
     +0  shift-broadcast:     every node sends its color down;
     +1  adopt + rebroadcast: nodes adopt their parent's color (shift-down,
                              so all siblings now share a color and every
                              node has at most two distinct neighbor
                              colors); roots pick a fresh {0,1,2} color;
                              the adopted color is sent down again;
     +2  recolor:             the target class picks the least color of
                              {0,1,2} unused by parent (just heard) and
                              children (= own pre-shift color). *)
let three_color g ~parent =
  Array.iteri
    (fun v p ->
      if p >= 0 && Graph.find_edge g v p = None then
        invalid_arg "Coloring.three_color: parent not adjacent")
    parent;
  let n = Graph.n g in
  let children = Array.make n [] in
  Array.iteri (fun v p -> if p >= 0 then children.(p) <- v :: children.(p)) parent;
  let reduction_start = cv_iterations in
  let limit = reduction_start + 9 in
  let proto : (color_state, color_msg) Sim.protocol =
    {
      init =
        (fun view ->
          {
            color = view.Sim.node;
            pre_shift = view.Sim.node;
            parent_color = -1;
            finished = false;
          });
      step =
        (fun view ~round st ~inbox ->
          let v = view.Sim.node in
          let heard_parent =
            List.fold_left
              (fun acc (sender, Down c) ->
                if sender = parent.(v) then Some c else acc)
              None inbox
          in
          let send_down color =
            List.map (fun c -> c, Down color) children.(v)
          in
          if round < cv_iterations then begin
            let color =
              if round = 0 then st.color
              else begin
                match heard_parent with
                | Some c -> cv_step st.color c
                | None -> cv_root st.color
              end
            in
            { st with color }, send_down color
          end
          else if round < limit then begin
            match (round - reduction_start) mod 3 with
            | 0 ->
                (* Shift-broadcast; remember our pre-shift color. *)
                { st with pre_shift = st.color }, send_down st.color
            | 1 ->
                (* Adopt the parent's color; roots take a fresh one. *)
                let color =
                  match heard_parent with
                  | Some c -> c
                  | None -> root_shift_color st.color
                in
                { st with color }, send_down color
            | _ ->
                let stage = (round - reduction_start) / 3 in
                let target = 5 - stage in
                let parent_color =
                  match heard_parent with Some c -> c | None -> -1
                in
                let color =
                  if st.color = target then
                    List.find
                      (fun c -> c <> parent_color && c <> st.pre_shift)
                      [ 0; 1; 2 ]
                  else st.color
                in
                { st with color; parent_color }, []
          end
          else { st with finished = true }, []);
      is_done = (fun st -> st.finished);
      msg_bits = (fun _ -> Bitsize.int_bits 8);
      wake = None;
    }
  in
  let states, stats = Sim.run g proto in
  Array.map (fun st -> st.color) states, stats

type match_state = {
  m_color : int;
  matched_with : int;  (** -1 when unmatched *)
  accepted : (int * int) list;  (** (child, parent) edges this node confirmed *)
  m_done : bool;
}

type match_msg = Propose | Accept

(* Color classes propose to their parents in turn; an unmatched parent
   accepts its smallest proposer.  Accept confirmations are processed
   before the next class proposes, so the matching stays consistent. *)
let maximal_matching g ~parent =
  let colors, color_stats = three_color g ~parent in
  let proto : (match_state, match_msg) Sim.protocol =
    {
      init =
        (fun view ->
          {
            m_color = colors.(view.Sim.node);
            matched_with = -1;
            accepted = [];
            m_done = false;
          });
      step =
        (fun view ~round st ~inbox ->
          let v = view.Sim.node in
          (* Accept confirmations first: they settle our earlier proposal. *)
          let st =
            List.fold_left
              (fun st (sender, msg) ->
                match msg with
                | Accept when st.matched_with = -1 ->
                    {
                      st with
                      matched_with = sender;
                      accepted = (v, sender) :: st.accepted;
                    }
                | _ -> st)
              st inbox
          in
          (* Then incoming proposals: an unmatched node takes the smallest. *)
          let proposals =
            List.filter_map
              (fun (sender, msg) ->
                match msg with Propose -> Some sender | Accept -> None)
              inbox
            |> List.sort compare
          in
          let st, accept_out =
            match proposals, st.matched_with with
            | p :: _, -1 -> { st with matched_with = p }, [ p, Accept ]
            | _ -> st, []
          in
          let propose_out =
            if
              round mod 2 = 0
              && round / 2 = st.m_color
              && st.matched_with = -1
              && parent.(v) >= 0
            then [ parent.(v), Propose ]
            else []
          in
          { st with m_done = round >= 7 }, accept_out @ propose_out);
      is_done = (fun st -> st.m_done);
      msg_bits = (fun _ -> 2);
      wake = None;
    }
  in
  let states, stats = Sim.run g proto in
  let edges = Array.to_list states |> List.concat_map (fun st -> st.accepted) in
  ( edges,
    {
      stats with
      Sim.rounds = stats.Sim.rounds + color_stats.Sim.rounds;
      messages = stats.Sim.messages + color_stats.Sim.messages;
      total_bits = stats.Sim.total_bits + color_stats.Sim.total_bits;
    } )
