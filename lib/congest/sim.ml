module Graph = Dsf_graph.Graph

type view = {
  node : int;
  n : int;
  nbrs : (int * int * int) array;
}

type ('s, 'm) protocol = {
  init : view -> 's;
  step : view -> round:int -> 's -> inbox:(int * 'm) list -> 's * (int * 'm) list;
  is_done : 's -> bool;
  msg_bits : 'm -> int;
  wake : (view -> round:int -> 's -> bool) option;
}

type stats = {
  rounds : int;
  messages : int;
  total_bits : int;
  max_edge_round_bits : int;
  budget_violations : int;
  dropped : int;
  duplicated : int;
  retransmissions : int;
}

type fault_action = Deliver | Drop | Replicate of int

type faults = {
  on_send : round:int -> src:int -> dst:int -> fault_action;
  down : round:int -> node:int -> bool;
  retransmissions : int ref;
}

type abort = {
  at_round : int;
  snapshot : stats;
  recent : (int * (int * int * int) list) list;
}

exception Round_limit of abort

let postmortem_window = 8

let never _ ~round:_ _ = false

type observer = src:int -> dst:int -> bits:int -> unit

(* Deprecated global shim (see the .mli): a process-wide observer kept for
   existing single-domain callers.  Parallel harness code passes the
   per-run [?observer] parameter instead and must not touch this ref while
   a fan-out is running. *)
(* Process-global by definition: this *is* the deprecated shim the
   domain-safety contract warns about; dsf-lint keeps anyone else from
   growing another one. *)
let observer : observer option ref = ref None [@@lint.allow "global-state"]

let set_observer f = observer := f

let with_observer f body =
  let prev = !observer in
  let chained ~src ~dst ~bits =
    (match prev with Some g -> g ~src ~dst ~bits | None -> ());
    f ~src ~dst ~bits
  in
  observer := Some chained;
  Fun.protect ~finally:(fun () -> observer := prev) body

(* The observer a run actually uses: the global shim (if set) chained
   before the per-run one, resolved once at run start so the hot loop
   reads a local and the run is immune to mid-run shim mutation. *)
let effective_observer per_run =
  match !observer, per_run with
  | None, None -> None
  | (Some _ as g), None -> g
  | None, (Some _ as f) -> f
  | Some g, Some f ->
      Some
        (fun ~src ~dst ~bits ->
          g ~src ~dst ~bits;
          f ~src ~dst ~bits)

(* Per-node map from neighbor id to the *directed edge slot* of the edge
   towards that neighbor: edge [eid] sent from its stored [u] endpoint
   occupies slot [2*eid], from its [v] endpoint slot [2*eid + 1].  Built once
   per run, the table gives O(1) recipient validation (the seed simulator
   scanned the adjacency array per message) and indexes the flat per-round
   edge-bits accumulator. *)
let neighbor_slots g views =
  Array.map
    (fun view ->
      let h = Hashtbl.create (max 4 (Array.length view.nbrs)) in
      Array.iter
        (fun (nb, _, eid) ->
          let e = Graph.edge g eid in
          let slot = (2 * eid) + if e.Graph.u = view.node then 0 else 1 in
          Hashtbl.replace h nb slot)
        view.nbrs;
      h)
    views

let slot_of_msg nbr_slots ~n ~src ~dst =
  if dst < 0 || dst >= n then
    invalid_arg "Sim.run: message to nonexistent node";
  match Hashtbl.find nbr_slots.(src) dst with
  | slot -> slot
  | exception Not_found -> invalid_arg "Sim.run: message to non-neighbor"

(* Growable arrival-order inbox buffer.  Replaces the seed's reversed
   cons-lists: appends are amortized O(1) into a reused array, and the inbox
   list handed to [step] is built back-to-front in one pass (no List.rev). *)
type 'm inbox_buf = { mutable data : (int * 'm) array; mutable len : int }

let buf_make () = { data = [||]; len = 0 }

let buf_push b x =
  let cap = Array.length b.data in
  if b.len = cap then begin
    let grown = Array.make (if cap = 0 then 4 else 2 * cap) x in
    Array.blit b.data 0 grown 0 b.len;
    b.data <- grown
  end;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

let buf_drain b =
  let rec go i acc = if i < 0 then acc else go (i - 1) (b.data.(i) :: acc) in
  let l = go (b.len - 1) [] in
  b.len <- 0;
  l

(* Ring buffer of the last [postmortem_window] rounds of raw (src, dst,
   bits) traffic, kept by both engines so a {!Round_limit} abort can dump
   where the messages were flowing when the protocol span out.  One
   amortized-O(1) push per message; slots are recycled in place. *)
type traffic_ring = {
  slot_round : int array; (* round stored in each slot; -1 = empty *)
  slots : (int * int) inbox_buf array; (* (src, (dst, bits)) *)
}

let ring_make () =
  {
    slot_round = Array.make postmortem_window (-1);
    slots = Array.init postmortem_window (fun _ -> buf_make ());
  }

let ring_begin_round ring ~round =
  let i = round mod postmortem_window in
  ring.slot_round.(i) <- round;
  ring.slots.(i).len <- 0

let ring_push ring ~round ~src ~dst ~bits =
  buf_push ring.slots.(round mod postmortem_window) (src, (dst, bits))

let ring_dump ring =
  let rounds =
    Array.to_list ring.slot_round
    |> List.filter (fun r -> r >= 0)
    |> List.sort compare
  in
  List.map
    (fun r ->
      let b = ring.slots.(r mod postmortem_window) in
      let msgs = ref [] in
      for i = b.len - 1 downto 0 do
        let src, (dst, bits) = b.data.(i) in
        msgs := (src, dst, bits) :: !msgs
      done;
      r, !msgs)
    rounds

let abort_run ~round ~snapshot ring =
  raise (Round_limit { at_round = round; snapshot; recent = ring_dump ring })

(* Credit a finished (or aborting) run's stats to the enclosing telemetry
   span.  Called exactly once per run, on both the normal and the
   Round_limit exit, so span round/bit totals match the stats the caller
   sees (or would have seen) either way. *)
let tel_finish tel (s : stats) =
  match tel with
  | None -> ()
  | Some t ->
      Telemetry.sim_run t ~rounds:s.rounds ~messages:s.messages
        ~bits:s.total_bits ~max_edge_round_bits:s.max_edge_round_bits
        ~budget_violations:s.budget_violations ~dropped:s.dropped
        ~duplicated:s.duplicated ~retransmissions:s.retransmissions

(* The seed simulator's loop, kept verbatim as the semantic anchor for the
   differential test suite (test_sim_equiv): every node is stepped every
   round ([wake] is ignored), per-round accounting goes through a fresh
   hashtable, quiescence re-scans the full state vector.  The only changes
   from the seed are the slot-based recipient validation and the always-on
   post-mortem traffic ring.  Fault injection is an active-engine feature;
   this loop never sees a [faults] record. *)
let run_reference ?max_rounds ?halt ?observer:per_run ?telemetry g proto =
  let obs = effective_observer per_run in
  let n = Graph.n g in
  let max_rounds =
    match max_rounds with Some r -> r | None -> 10_000 + (200 * n)
  in
  let views =
    Array.init n (fun node -> { node; n; nbrs = Graph.adj g node })
  in
  let states = Array.map proto.init views in
  let nbr_slots = neighbor_slots g views in
  let inboxes : (int * 'm) list array = Array.make n [] in
  let next_inboxes : (int * 'm) list array = Array.make n [] in
  let budget = Dsf_util.Bitsize.congest_budget ~n in
  let messages = ref 0 in
  let total_bits = ref 0 in
  let max_edge_round_bits = ref 0 in
  let budget_violations = ref 0 in
  let round = ref 0 in
  let quiescent = ref false in
  let ring = ring_make () in
  let current_stats () =
    {
      rounds = !round;
      messages = !messages;
      total_bits = !total_bits;
      max_edge_round_bits = !max_edge_round_bits;
      budget_violations = !budget_violations;
      dropped = 0;
      duplicated = 0;
      retransmissions = 0;
    }
  in
  while not !quiescent do
    if !round >= max_rounds then begin
      let snapshot = current_stats () in
      tel_finish telemetry snapshot;
      abort_run ~round:!round ~snapshot ring
    end;
    ring_begin_round ring ~round:!round;
    (* bits sent this round per (sender, neighbor-slot); keyed by sender and
       destination since each unordered edge has two directions. *)
    let edge_bits = Hashtbl.create 64 in
    let sent_any = ref false in
    let bits0 = !total_bits in
    let delivered = ref 0 in
    for v = 0 to n - 1 do
      let inbox = List.rev inboxes.(v) in
      delivered := !delivered + List.length inbox;
      inboxes.(v) <- [];
      let state', outbox = proto.step views.(v) ~round:!round states.(v) ~inbox in
      states.(v) <- state';
      List.iter
        (fun (dst, msg) ->
          ignore (slot_of_msg nbr_slots ~n ~src:v ~dst);
          sent_any := true;
          incr messages;
          let bits = proto.msg_bits msg in
          total_bits := !total_bits + bits;
          (match obs with
          | Some f -> f ~src:v ~dst ~bits
          | None -> ());
          ring_push ring ~round:!round ~src:v ~dst ~bits;
          let key = (v * n) + dst in
          let prev = Option.value ~default:0 (Hashtbl.find_opt edge_bits key) in
          let now = prev + bits in
          Hashtbl.replace edge_bits key now;
          next_inboxes.(dst) <- (v, msg) :: next_inboxes.(dst))
        outbox
    done;
    Hashtbl.iter
      (fun _ bits ->
        if bits > !max_edge_round_bits then max_edge_round_bits := bits;
        if bits > budget then incr budget_violations)
      edge_bits;
    for v = 0 to n - 1 do
      inboxes.(v) <- next_inboxes.(v);
      next_inboxes.(v) <- []
    done;
    (* The one telemetry branch per round; the seed loop steps every node,
       so the active set is all of [n] and wake hooks never fire. *)
    (match telemetry with
    | Some t ->
        Telemetry.sim_round t ~stepped:n ~delivered:!delivered
          ~bits:(!total_bits - bits0) ~wake_hits:0
    | None -> ());
    incr round;
    let all_done = Array.for_all proto.is_done states in
    let inflight = Array.exists (fun l -> l <> []) inboxes in
    let halted = match halt with Some f -> f states | None -> false in
    quiescent := halted || (all_done && (not inflight) && not !sent_any)
  done;
  let final = current_stats () in
  tel_finish telemetry final;
  states, final

(* Deprecated global shim, same contract as [observer] above: the
   per-run [?reference] parameter is the domain-safe way to pick the
   engine. *)
let use_reference_engine = ref false [@@lint.allow "global-state"]

(* Active-set engine.  Per-round work is proportional to the number of
   *active* nodes and the messages they send, plus an O(n) sweep of three
   boolean tests per idle node, instead of the seed's full [step] of every
   node plus a fresh hashtable and two O(n) state re-scans:

   - a node is stepped only if it has mail, is not done, or its protocol's
     [wake] hook asks for it (no hook = step every round, the seed behavior);
   - per-(edge,direction) round bits live in a flat array indexed by
     precomputed directed-edge slots; only the touched slots are swept for
     the max/budget accounting and reset afterwards;
   - [is_done] is evaluated once per state change and folded into a running
     [done_count], replacing the per-round [Array.for_all] scan;
   - inboxes are growable arrival-order buffers, so no List.rev per step and
     no cons-cell churn for the double-buffered delivery arrays.

   Stats, observer calls (order included), exceptions, and final states are
   bit-for-bit those of [run_reference]; test_sim_equiv enforces this.

   Fault injection ([?faults]) lives here and only here: with no faults
   record the per-message fast path is exactly the fault-free engine.
   Semantics (see the .mli): the sender is always charged for a send
   (messages, bits, observer, edge budget); [Drop] destroys the message
   in flight, [Replicate k] delivers [k] copies; a [down] node is not
   stepped and mail arriving at it is destroyed (counted as dropped); on
   the first round a node is back up, its state is reset to [init]. *)
let run ?max_rounds ?halt ?observer:per_run ?reference ?faults ?telemetry g
    proto =
  let reference =
    match reference with Some b -> b | None -> !use_reference_engine
  in
  if reference then begin
    (match faults with
    | Some _ -> invalid_arg "Sim.run: ?faults requires the active engine"
    | None -> ());
    run_reference ?max_rounds ?halt ?observer:per_run ?telemetry g proto
  end
  else begin
    let obs = effective_observer per_run in
    let n = Graph.n g in
    let m = Graph.m g in
    let max_rounds =
      match max_rounds with Some r -> r | None -> 10_000 + (200 * n)
    in
    let views =
      Array.init n (fun node -> { node; n; nbrs = Graph.adj g node })
    in
    let states = Array.map proto.init views in
    let nbr_slots = neighbor_slots g views in
    let budget = Dsf_util.Bitsize.congest_budget ~n in
    (* -1 marks an untouched slot, so zero-bit messages still register their
       slot exactly once per round (matching the hashtable's entry count). *)
    let edge_bits = Array.make (2 * m) (-1) in
    let touched = Array.make (2 * m) 0 in
    let n_touched = ref 0 in
    let cur = ref (Array.init n (fun _ -> buf_make ())) in
    let nxt = ref (Array.init n (fun _ -> buf_make ())) in
    let done_flag = Array.map proto.is_done states in
    let done_count = ref 0 in
    Array.iter (fun d -> if d then incr done_count) done_flag;
    let messages = ref 0 in
    let total_bits = ref 0 in
    let max_edge_round_bits = ref 0 in
    let budget_violations = ref 0 in
    let dropped = ref 0 in
    let duplicated = ref 0 in
    let round = ref 0 in
    let quiescent = ref false in
    let ring = ring_make () in
    (match faults with Some f -> f.retransmissions := 0 | None -> ());
    let current_stats () =
      {
        rounds = !round;
        messages = !messages;
        total_bits = !total_bits;
        max_edge_round_bits = !max_edge_round_bits;
        budget_violations = !budget_violations;
        dropped = !dropped;
        duplicated = !duplicated;
        retransmissions =
          (match faults with Some f -> !(f.retransmissions) | None -> 0);
      }
    in
    (* Crash bookkeeping, allocated only when a faults record is present. *)
    let down_now = match faults with Some _ -> Array.make n false | None -> [||] in
    let was_down = match faults with Some _ -> Array.make n false | None -> [||] in
    let wake_is_some = Option.is_some proto.wake in
    while not !quiescent do
      if !round >= max_rounds then begin
        let snapshot = current_stats () in
        tel_finish telemetry snapshot;
        abort_run ~round:!round ~snapshot ring
      end;
      ring_begin_round ring ~round:!round;
      let inboxes = !cur and outboxes = !nxt in
      let sent_any = ref false in
      (* Round-level series for the telemetry hook.  Maintained as plain
         branch-free adds so that with [?telemetry:None] the engine pays
         exactly one extra branch per round (the [match] below). *)
      let bits0 = !total_bits in
      let stepped = ref 0 in
      let delivered = ref 0 in
      let wake_hits = ref 0 in
      (match faults with
      | None -> ()
      | Some f ->
          for v = 0 to n - 1 do
            let d = f.down ~round:!round ~node:v in
            down_now.(v) <- d;
            if d then begin
              (* Mail delivered to a crashed node is lost. *)
              if inboxes.(v).len > 0 then begin
                dropped := !dropped + inboxes.(v).len;
                inboxes.(v).len <- 0
              end;
              was_down.(v) <- true
            end
            else if was_down.(v) then begin
              (* First round back up: restart from a fresh initial state. *)
              was_down.(v) <- false;
              states.(v) <- proto.init views.(v);
              let d' = proto.is_done states.(v) in
              if d' <> done_flag.(v) then begin
                done_flag.(v) <- d';
                done_count := !done_count + (if d' then 1 else -1)
              end
            end
          done);
      for v = 0 to n - 1 do
        let crashed = match faults with Some _ -> down_now.(v) | None -> false in
        let has_mail = inboxes.(v).len > 0 in
        let active =
          (not crashed)
          && (has_mail
             || (not done_flag.(v))
             ||
             match proto.wake with
             | None -> true
             | Some f -> f views.(v) ~round:!round states.(v))
        in
        if active then begin
          (* An active node that had no mail and reported done can only have
             been stepped because its wake hook fired. *)
          if wake_is_some && (not has_mail) && done_flag.(v) then
            incr wake_hits;
          incr stepped;
          delivered := !delivered + inboxes.(v).len;
          let inbox = buf_drain inboxes.(v) in
          let state', outbox =
            proto.step views.(v) ~round:!round states.(v) ~inbox
          in
          states.(v) <- state';
          let d = proto.is_done state' in
          if d <> done_flag.(v) then begin
            done_flag.(v) <- d;
            done_count := !done_count + (if d then 1 else -1)
          end;
          List.iter
            (fun (dst, msg) ->
              let slot = slot_of_msg nbr_slots ~n ~src:v ~dst in
              sent_any := true;
              incr messages;
              let bits = proto.msg_bits msg in
              total_bits := !total_bits + bits;
              (match obs with
              | Some f -> f ~src:v ~dst ~bits
              | None -> ());
              ring_push ring ~round:!round ~src:v ~dst ~bits;
              let prev = edge_bits.(slot) in
              if prev < 0 then begin
                touched.(!n_touched) <- slot;
                incr n_touched;
                edge_bits.(slot) <- bits
              end
              else edge_bits.(slot) <- prev + bits;
              match faults with
              | None -> buf_push outboxes.(dst) (v, msg)
              | Some f -> (
                  match f.on_send ~round:!round ~src:v ~dst with
                  | Deliver -> buf_push outboxes.(dst) (v, msg)
                  | Drop -> incr dropped
                  | Replicate k ->
                      for _ = 1 to k do
                        buf_push outboxes.(dst) (v, msg)
                      done;
                      duplicated := !duplicated + (k - 1)))
            outbox
        end
      done;
      for i = 0 to !n_touched - 1 do
        let slot = touched.(i) in
        let bits = edge_bits.(slot) in
        if bits > !max_edge_round_bits then max_edge_round_bits := bits;
        if bits > budget then incr budget_violations;
        edge_bits.(slot) <- -1
      done;
      n_touched := 0;
      (* Every non-empty inbox made its node active (or was emptied by the
         crash pre-pass), and stepping drains the inbox, so [inboxes] is
         all-empty here: swapping the double buffers hands next round its
         deliveries and this round's arrays for reuse. *)
      cur := outboxes;
      nxt := inboxes;
      (match telemetry with
      | Some t ->
          Telemetry.sim_round t ~stepped:!stepped ~delivered:!delivered
            ~bits:(!total_bits - bits0) ~wake_hits:!wake_hits
      | None -> ());
      incr round;
      let halted = match halt with Some f -> f states | None -> false in
      quiescent := halted || ((!done_count = n) && not !sent_any)
    done;
    let final = current_stats () in
    tel_finish telemetry final;
    states, final
  end

let pp_stats ppf s =
  Format.fprintf ppf
    "rounds=%d messages=%d bits=%d max-edge-round-bits=%d violations=%d"
    s.rounds s.messages s.total_bits s.max_edge_round_bits s.budget_violations;
  if s.dropped > 0 || s.duplicated > 0 || s.retransmissions > 0 then
    Format.fprintf ppf " dropped=%d duplicated=%d retransmissions=%d" s.dropped
      s.duplicated s.retransmissions

let pp_abort ppf a =
  Format.fprintf ppf "@[<v>no quiescence after %d rounds (%a)@," a.at_round
    pp_stats a.snapshot;
  if a.snapshot.budget_violations > 0 then
    Format.fprintf ppf
      "budget breached %d time(s); worst edge-round carried %d bits@,"
      a.snapshot.budget_violations a.snapshot.max_edge_round_bits;
  Format.fprintf ppf "last %d rounds of traffic:@," (List.length a.recent);
  List.iter
    (fun (r, msgs) ->
      let per_node = Hashtbl.create 8 in
      let round_bits = ref 0 in
      List.iter
        (fun (src, _, bits) ->
          round_bits := !round_bits + bits;
          let c, b =
            Option.value ~default:(0, 0) (Hashtbl.find_opt per_node src)
          in
          Hashtbl.replace per_node src (c + 1, b + bits))
        msgs;
      let senders =
        Hashtbl.fold (fun v cb acc -> (v, cb) :: acc) per_node []
        |> List.sort compare
      in
      Format.fprintf ppf "  round %d: %d msgs/%d bits from %d nodes" r
        (List.length msgs) !round_bits (List.length senders);
      List.iteri
        (fun i (v, (c, b)) ->
          if i < 6 then Format.fprintf ppf " [%d: %d msg/%d bits]" v c b)
        senders;
      if List.length senders > 6 then Format.fprintf ppf " ...";
      Format.fprintf ppf "@,")
    a.recent;
  Format.fprintf ppf "@]"

let () =
  Printexc.register_printer (function
    | Round_limit a -> Some (Format.asprintf "Sim.Round_limit:@ %a" pp_abort a)
    | _ -> None)
