module Graph = Dsf_graph.Graph

type view = {
  node : int;
  n : int;
  nbrs : (int * int * int) array;
}

type ('s, 'm) protocol = {
  init : view -> 's;
  step : view -> round:int -> 's -> inbox:(int * 'm) list -> 's * (int * 'm) list;
  is_done : 's -> bool;
  msg_bits : 'm -> int;
  wake : (view -> round:int -> 's -> bool) option;
}

type stats = {
  rounds : int;
  messages : int;
  total_bits : int;
  max_edge_round_bits : int;
  budget_violations : int;
  dropped : int;
  duplicated : int;
  retransmissions : int;
}

type fault_action = Deliver | Drop | Replicate of int

type faults = {
  on_send : round:int -> src:int -> dst:int -> fault_action;
  down : round:int -> node:int -> bool;
  retransmissions : int ref;
}

type abort = {
  at_round : int;
  snapshot : stats;
  recent : (int * (int * int * int) list) list;
}

exception Round_limit of abort

let postmortem_window = 8

let never _ ~round:_ _ = false

type observer = src:int -> dst:int -> bits:int -> unit

(* Deprecated global shim (see the .mli): a process-wide observer kept for
   existing single-domain callers.  Parallel harness code passes the
   per-run [?observer] parameter instead and must not touch this ref while
   a fan-out is running. *)
(* Process-global by definition: this *is* the deprecated shim the
   domain-safety contract warns about; dsf-lint keeps anyone else from
   growing another one. *)
let observer : observer option ref = ref None [@@lint.allow "global-state"]

let set_observer f = observer := f

let with_observer f body =
  let prev = !observer in
  let chained ~src ~dst ~bits =
    (match prev with Some g -> g ~src ~dst ~bits | None -> ());
    f ~src ~dst ~bits
  in
  observer := Some chained;
  Fun.protect ~finally:(fun () -> observer := prev) body

(* The observer a run actually uses: the global shim (if set) chained
   before the per-run one, resolved once at run start so the hot loop
   reads a local and the run is immune to mid-run shim mutation. *)
let effective_observer per_run =
  match !observer, per_run with
  | None, None -> None
  | (Some _ as g), None -> g
  | None, (Some _ as f) -> f
  | Some g, Some f ->
      Some
        (fun ~src ~dst ~bits ->
          g ~src ~dst ~bits;
          f ~src ~dst ~bits)

(* The flight recorder a run actually writes: the explicit [?recorder]
   parameter wins; otherwise a recorder attached to the run's telemetry
   ([Telemetry.create ?recorder]) rides along.  Resolved once at run
   start, like the observer. *)
let effective_recorder recorder telemetry =
  match recorder with
  | Some _ -> recorder
  | None -> (
      match telemetry with Some t -> Telemetry.recorder t | None -> None)

(* Per-node map from neighbor id to the *directed edge slot* of the edge
   towards that neighbor: edge [eid] sent from its stored [u] endpoint
   occupies slot [2*eid], from its [v] endpoint slot [2*eid + 1].  Built once
   per run, the table gives O(1) recipient validation (the seed simulator
   scanned the adjacency array per message) and indexes the flat per-round
   edge-bits accumulator. *)
let neighbor_slots g views =
  Array.map
    (fun view ->
      let h = Hashtbl.create (max 4 (Array.length view.nbrs)) in
      Array.iter
        (fun (nb, _, eid) ->
          let e = Graph.edge g eid in
          let slot = (2 * eid) + if e.Graph.u = view.node then 0 else 1 in
          Hashtbl.replace h nb slot)
        view.nbrs;
      h)
    views

let slot_of_msg nbr_slots ~n ~src ~dst =
  if dst < 0 || dst >= n then
    invalid_arg "Sim.run: message to nonexistent node";
  match Hashtbl.find nbr_slots.(src) dst with
  | slot -> slot
  | exception Not_found -> invalid_arg "Sim.run: message to non-neighbor"

(* Growable arrival-order inbox buffer.  Replaces the seed's reversed
   cons-lists: appends are amortized O(1) into a reused array, and the inbox
   list handed to [step] is built back-to-front in one pass (no List.rev). *)
type 'm inbox_buf = { mutable data : (int * 'm) array; mutable len : int }

let buf_make () = { data = [||]; len = 0 }

let buf_push b x =
  let cap = Array.length b.data in
  if b.len = cap then begin
    let grown = Array.make (if cap = 0 then 4 else 2 * cap) x in
    Array.blit b.data 0 grown 0 b.len;
    b.data <- grown
  end;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

let buf_drain b =
  let rec go i acc = if i < 0 then acc else go (i - 1) (b.data.(i) :: acc) in
  let l = go (b.len - 1) [] in
  b.len <- 0;
  l

(* Growable int buffer, shared by the traffic ring below and the flat
   engine's per-domain logs (send log, touched CSR positions,
   undone/recipient candidate lists). *)
type ibuf = { mutable ia : int array; mutable ilen : int }

let ibuf_make () = { ia = Array.make 16 0; ilen = 0 }

let ibuf_push b x =
  if b.ilen = Array.length b.ia then begin
    let a = Array.make (2 * b.ilen) 0 in
    Array.blit b.ia 0 a 0 b.ilen;
    b.ia <- a
  end;
  b.ia.(b.ilen) <- x;
  b.ilen <- b.ilen + 1

(* Ring buffer of the last [postmortem_window] rounds of raw (src, dst,
   bits) traffic, kept by all engines so a {!Round_limit} abort can dump
   where the messages were flowing when the protocol span out.  Parallel
   flat int buffers — three amortized-O(1) unboxed pushes per message, so
   keeping the ring armed costs the flat engine's steady-state loop no
   allocation; slots are recycled in place. *)
type traffic_ring = {
  slot_round : int array; (* round stored in each slot; -1 = empty *)
  r_src : ibuf array;
  r_dst : ibuf array;
  r_bits : ibuf array;
}

let ring_make () =
  {
    slot_round = Array.make postmortem_window (-1);
    r_src = Array.init postmortem_window (fun _ -> ibuf_make ());
    r_dst = Array.init postmortem_window (fun _ -> ibuf_make ());
    r_bits = Array.init postmortem_window (fun _ -> ibuf_make ());
  }

let ring_begin_round ring ~round =
  let i = round mod postmortem_window in
  ring.slot_round.(i) <- round;
  ring.r_src.(i).ilen <- 0;
  ring.r_dst.(i).ilen <- 0;
  ring.r_bits.(i).ilen <- 0

let ring_push ring ~round ~src ~dst ~bits =
  let i = round mod postmortem_window in
  ibuf_push ring.r_src.(i) src;
  ibuf_push ring.r_dst.(i) dst;
  ibuf_push ring.r_bits.(i) bits

let ring_dump ring =
  let rounds =
    Array.to_list ring.slot_round
    |> List.filter (fun r -> r >= 0)
    |> List.sort compare
  in
  List.map
    (fun r ->
      let i = r mod postmortem_window in
      let srcs = ring.r_src.(i) and dsts = ring.r_dst.(i) in
      let bits = ring.r_bits.(i) in
      let msgs = ref [] in
      for j = srcs.ilen - 1 downto 0 do
        msgs := (srcs.ia.(j), dsts.ia.(j), bits.ia.(j)) :: !msgs
      done;
      r, !msgs)
    rounds

let abort_run ~round ~snapshot ring =
  raise (Round_limit { at_round = round; snapshot; recent = ring_dump ring })

(* Credit a finished (or aborting) run's stats to the enclosing telemetry
   span.  Called exactly once per run, on both the normal and the
   Round_limit exit, so span round/bit totals match the stats the caller
   sees (or would have seen) either way. *)
let tel_finish tel (s : stats) =
  match tel with
  | None -> ()
  | Some t ->
      Telemetry.sim_run t ~rounds:s.rounds ~messages:s.messages
        ~bits:s.total_bits ~max_edge_round_bits:s.max_edge_round_bits
        ~budget_violations:s.budget_violations ~dropped:s.dropped
        ~duplicated:s.duplicated ~retransmissions:s.retransmissions

(* The seed simulator's loop, kept verbatim as the semantic anchor for the
   differential test suite (test_sim_equiv): every node is stepped every
   round ([wake] is ignored), per-round accounting goes through a fresh
   hashtable, quiescence re-scans the full state vector.  The only changes
   from the seed are the slot-based recipient validation and the always-on
   post-mortem traffic ring.  Fault injection is an active-engine feature;
   this loop never sees a [faults] record. *)
let run_reference ?max_rounds ?halt ?observer:per_run ?telemetry ?recorder g
    proto =
  let obs = effective_observer per_run in
  let rcd = effective_recorder recorder telemetry in
  let rec_on = Option.is_some rcd in
  let rb = Recorder.buf_make () in
  let n = Graph.n g in
  let max_rounds =
    match max_rounds with Some r -> r | None -> 10_000 + (200 * n)
  in
  let views =
    Array.init n (fun node -> { node; n; nbrs = Graph.adj g node })
  in
  let states = Array.map proto.init views in
  let nbr_slots = neighbor_slots g views in
  let inboxes : (int * 'm) list array = Array.make n [] in
  let next_inboxes : (int * 'm) list array = Array.make n [] in
  let budget = Dsf_util.Bitsize.congest_budget ~n in
  let messages = ref 0 in
  let total_bits = ref 0 in
  let max_edge_round_bits = ref 0 in
  let budget_violations = ref 0 in
  let round = ref 0 in
  let quiescent = ref false in
  let ring = ring_make () in
  let current_stats () =
    {
      rounds = !round;
      messages = !messages;
      total_bits = !total_bits;
      max_edge_round_bits = !max_edge_round_bits;
      budget_violations = !budget_violations;
      dropped = 0;
      duplicated = 0;
      retransmissions = 0;
    }
  in
  while not !quiescent do
    if !round >= max_rounds then begin
      let snapshot = current_stats () in
      tel_finish telemetry snapshot;
      abort_run ~round:!round ~snapshot ring
    end;
    ring_begin_round ring ~round:!round;
    (* bits sent this round per (sender, neighbor-slot); keyed by sender and
       destination since each unordered edge has two directions. *)
    let edge_bits = Hashtbl.create 64 in
    let sent_any = ref false in
    let bits0 = !total_bits in
    let delivered = ref 0 in
    for v = 0 to n - 1 do
      let inbox = List.rev inboxes.(v) in
      delivered := !delivered + List.length inbox;
      inboxes.(v) <- [];
      (* The seed loop steps every node; the recorder stamps only
         mail-consuming steps, the event all engines share. *)
      if rec_on && inbox <> [] then Recorder.ev_step rb v;
      let state', outbox = proto.step views.(v) ~round:!round states.(v) ~inbox in
      states.(v) <- state';
      List.iter
        (fun (dst, msg) ->
          ignore (slot_of_msg nbr_slots ~n ~src:v ~dst);
          sent_any := true;
          incr messages;
          let bits = proto.msg_bits msg in
          total_bits := !total_bits + bits;
          (match obs with
          | Some f -> f ~src:v ~dst ~bits
          | None -> ());
          ring_push ring ~round:!round ~src:v ~dst ~bits;
          if rec_on then Recorder.ev_send rb ~src:v ~dst ~bits ~fate:1;
          let key = (v * n) + dst in
          let prev = Option.value ~default:0 (Hashtbl.find_opt edge_bits key) in
          let now = prev + bits in
          Hashtbl.replace edge_bits key now;
          next_inboxes.(dst) <- (v, msg) :: next_inboxes.(dst))
        outbox
    done;
    Hashtbl.iter
      (fun _ bits ->
        if bits > !max_edge_round_bits then max_edge_round_bits := bits;
        if bits > budget then incr budget_violations)
      edge_bits;
    for v = 0 to n - 1 do
      inboxes.(v) <- next_inboxes.(v);
      next_inboxes.(v) <- []
    done;
    (match rcd with
    | Some r ->
        Recorder.round r !round;
        Recorder.flush r rb
    | None -> ());
    (* The one telemetry branch per round; the seed loop steps every node,
       so the active set is all of [n] and wake hooks never fire. *)
    (match telemetry with
    | Some t ->
        Telemetry.sim_round t ~stepped:n ~delivered:!delivered
          ~bits:(!total_bits - bits0) ~wake_hits:0
    | None -> ());
    incr round;
    let all_done = Array.for_all proto.is_done states in
    let inflight = Array.exists (fun l -> l <> []) inboxes in
    let halted = match halt with Some f -> f states | None -> false in
    quiescent := halted || (all_done && (not inflight) && not !sent_any)
  done;
  let final = current_stats () in
  tel_finish telemetry final;
  states, final

(* Deprecated global shim, same contract as [observer] above: the
   per-run [?reference] parameter is the domain-safe way to pick the
   engine. *)
let use_reference_engine = ref false [@@lint.allow "global-state"]

(* ------------------------------------------------------------------ *)
(* Flat-core engine: arena message slots over the CSR graph view, with
   optional domain-partitioned execution of a single run.

   Layout (see DESIGN.md, "Engine architecture"):

   - messages live in [mbuf] arenas: parallel (srcs : int array,
     msgs : 'm array) pairs that grow once and are recycled by resetting
     the length, so the steady-state round loop allocates nothing for
     unboxed ('m = int) protocols;
   - per-round per-(edge, direction) bits live in a flat array indexed by
     *CSR position* (the sender's directed slot), each position owned by
     exactly one sender and hence by exactly one domain — race-free;
   - sends are staged per (destination, domain) and merged at the round
     barrier in domain order; because domains own contiguous ascending
     node blocks, the merge restores the exact global send order (sender
     ascending, outbox order within a sender) of the single-threaded
     engines, which is what makes the engine bit-identical for any
     [jobs];
   - observer calls and post-mortem ring pushes are replayed at the
     barrier from per-domain send logs, again in domain = node order. *)

type 'm mbuf = {
  mutable srcs : int array;
  mutable msgs : 'm array;
  mutable mlen : int;
}

type 'm inbox = 'm mbuf

let inbox_len b = b.mlen

let inbox_src b i =
  if i < 0 || i >= b.mlen then invalid_arg "Sim.inbox_src";
  (Array.unsafe_get b.srcs i [@lint.allow "unsafe-array"])

let inbox_msg b i =
  if i < 0 || i >= b.mlen then invalid_arg "Sim.inbox_msg";
  (Array.unsafe_get b.msgs i [@lint.allow "unsafe-array"])

let mbuf_make () = { srcs = [||]; msgs = [||]; mlen = 0 }

(* The pushed message seeds the first allocation of [msgs], the same trick
   [inbox_buf] uses: no dummy 'm value is ever needed. *)
let mbuf_push b src msg =
  let cap = Array.length b.srcs in
  if b.mlen = cap then begin
    let ncap = if cap = 0 then 4 else 2 * cap in
    let s = Array.make ncap 0 in
    Array.blit b.srcs 0 s 0 b.mlen;
    b.srcs <- s;
    let q = Array.make ncap msg in
    Array.blit b.msgs 0 q 0 b.mlen;
    b.msgs <- q
  end;
  b.srcs.(b.mlen) <- src;
  b.msgs.(b.mlen) <- msg;
  b.mlen <- b.mlen + 1

let mbuf_append ~into b =
  for i = 0 to b.mlen - 1 do
    mbuf_push into b.srcs.(i) b.msgs.(i)
  done

type ('s, 'm) flat_protocol = {
  fp_init : view -> 's;
  fp_step :
    view -> round:int -> 's -> inbox:'m inbox -> emit:(dst:int -> 'm -> unit)
    -> 's;
  fp_is_done : 's -> bool;
  fp_msg_bits : 'm -> int;
  fp_wake : (view -> round:int -> 's -> bool) option;
}

let inbox_list b =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) ((b.srcs.(i), b.msgs.(i)) :: acc)
  in
  go (b.mlen - 1) []

(* Boxed fallback: adapts a list-based protocol to the flat engine.  Each
   step rebuilds the inbox list and walks the outbox list, so it keeps the
   seed's allocation profile per *active* node — polymorphic-message
   protocols still gain the active-list and arena-delivery savings. *)
let flat_of_protocol p =
  {
    fp_init = p.init;
    fp_step =
      (fun view ~round s ~inbox ~emit ->
        let s', outbox = p.step view ~round s ~inbox:(inbox_list inbox) in
        List.iter (fun (dst, msg) -> emit ~dst msg) outbox;
        s');
    fp_is_done = p.is_done;
    fp_msg_bits = p.msg_bits;
    fp_wake = p.wake;
  }

(* Per-domain accumulators, merged (and reset) at each round barrier. *)
type scratch = {
  mutable s_messages : int;
  mutable s_bits : int;
  mutable s_dropped : int;
  mutable s_duplicated : int;
  mutable s_stepped : int;
  mutable s_delivered : int;
  mutable s_wake_hits : int;
  mutable s_done_delta : int;
  mutable s_sent_any : bool;
  mutable s_cur_src : int;  (* node being stepped, read by [emit] *)
  log_src : ibuf;
  log_dst : ibuf;
  log_bits : ibuf;
  s_touched : ibuf;
  s_undone : ibuf;
  s_recip : ibuf;
}

let scratch_make () =
  {
    s_messages = 0;
    s_bits = 0;
    s_dropped = 0;
    s_duplicated = 0;
    s_stepped = 0;
    s_delivered = 0;
    s_wake_hits = 0;
    s_done_delta = 0;
    s_sent_any = false;
    s_cur_src = -1;
    log_src = ibuf_make ();
    log_dst = ibuf_make ();
    log_bits = ibuf_make ();
    s_touched = ibuf_make ();
    s_undone = ibuf_make ();
    s_recip = ibuf_make ();
  }

let scratch_reset s =
  s.s_messages <- 0;
  s.s_bits <- 0;
  s.s_dropped <- 0;
  s.s_duplicated <- 0;
  s.s_stepped <- 0;
  s.s_delivered <- 0;
  s.s_wake_hits <- 0;
  s.s_done_delta <- 0;
  s.s_sent_any <- false;
  s.log_src.ilen <- 0;
  s.log_dst.ilen <- 0;
  s.log_bits.ilen <- 0;
  s.s_touched.ilen <- 0;
  s.s_undone.ilen <- 0;
  s.s_recip.ilen <- 0

(* In-place ascending sort of [a.(0 .. len - 1)]: insertion sort below a
   small cutoff, median-of-three quicksort above.  Avoids [Array.sort]'s
   whole-array constraint (the candidate buffer has a live prefix) and its
   closure call per comparison. *)
let sort_int_prefix a len =
  let insertion lo hi =
    for i = lo + 1 to hi do
      let x = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > x do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- x
    done
  in
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let rec qsort lo hi =
    if hi - lo < 16 then insertion lo hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      if a.(mid) < a.(lo) then swap mid lo;
      if a.(hi) < a.(lo) then swap hi lo;
      if a.(hi) < a.(mid) then swap hi mid;
      let pivot = a.(mid) in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while a.(!i) < pivot do incr i done;
        while a.(!j) > pivot do decr j done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      qsort lo !j;
      qsort !i hi
    end
  in
  if len > 1 then qsort 0 (len - 1)

(* First index in the sorted prefix [a.(0 .. len - 1)] holding a value
   >= [x] (the per-domain segment bounds in the active list). *)
let lower_bound a len x =
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

(* --- Dynamic ownership sanitizer ------------------------------------- *)
(* The runtime half of the typed domain-race rule (lib/lint/typed_lint.ml):
   the static pass proves [fp_step] bodies only touch node-local state by
   construction; the sanitizer catches what escapes the analysis — aliased
   states smuggled out of [fp_init], emits issued from stashed closures,
   mail staged for nodes outside the recipient list.  Every check is
   read-only (private hash snapshots and write stamps), so a clean
   sanitized run is bit-identical to an unsanitized one; the differential
   suite pins this. *)

type sanitizer_violation = {
  sv_kind : string;
  sv_round : int;
  sv_node : int;
  sv_domain : int;  (** domain owning [sv_node]; [-1] if out of range *)
  sv_detail : string;
}

exception Sanitizer_violation of sanitizer_violation

let () =
  Printexc.register_printer (function
    | Sanitizer_violation v ->
        Some
          (Printf.sprintf
             "Sim.Sanitizer_violation { kind = %S; round = %d; node = %d; \
              domain = %d; detail = %S }"
             v.sv_kind v.sv_round v.sv_node v.sv_domain v.sv_detail)
    | _ -> None)

(* Read once at module init so every [run_flat] in a process agrees;
   ci.sh's sanitized smoke sets DSF_SANITIZE=1. *)
let env_sanitize =
  match Sys.getenv_opt "DSF_SANITIZE" with
  | Some ("1" | "true" | "on") -> true
  | _ -> false

(* Structural fingerprint of a node state.  [hash_param] with deep limits
   so nested mutable fields (records behind aliases) register; collisions
   only ever mask a violation, never invent one. *)
let state_hash st = Hashtbl.hash_param 128 512 st

let run_flat ?max_rounds ?halt ?observer:per_run ?faults ?telemetry ?recorder
    ?(jobs = 1) ?sanitize g fp =
  let obs = effective_observer per_run in
  let rcd = effective_recorder recorder telemetry in
  let rec_on = Option.is_some rcd in
  let n = Graph.n g in
  let m = Graph.m g in
  let max_rounds =
    match max_rounds with Some r -> r | None -> 10_000 + (200 * n)
  in
  let jobs = max 1 (min jobs n) in
  (* Force the graph's CSR memo on the coordinator before any domain fan-out
     so workers share the one view instead of racing to build it. *)
  let csr = Graph.csr g in
  let views =
    Array.init n (fun node -> { node; n; nbrs = Graph.adj g node })
  in
  let states = Array.map fp.fp_init views in
  let budget = Dsf_util.Bitsize.congest_budget ~n in
  let edge_bits = Array.make (2 * m) (-1) in
  let inboxes = Array.init n (fun _ -> mbuf_make ()) in
  let stage = Array.init jobs (fun _ -> Array.init n (fun _ -> mbuf_make ())) in
  let scr = Array.init jobs (fun _ -> scratch_make ()) in
  (* Per-domain recorder staging, two buffers each: crash-window events
     (the pre-pass) separate from step/send events, flushed fault-first
     across all domains at the barrier — so the serialized stream shows
     all of the round's downs/restarts in node order, then all
     steps/sends in node order, exactly as the single-threaded engines
     emit them.  That discipline is what keeps recorder-on output
     byte-identical for any [jobs]. *)
  let rb_fault = Array.init jobs (fun _ -> Recorder.buf_make ()) in
  let rb_step = Array.init jobs (fun _ -> Recorder.buf_make ()) in
  let done_flag = Array.map fp.fp_is_done states in
  let done_count = ref 0 in
  Array.iter (fun d -> if d then incr done_count) done_flag;
  let messages = ref 0 in
  let total_bits = ref 0 in
  let max_edge_round_bits = ref 0 in
  let budget_violations = ref 0 in
  let dropped = ref 0 in
  let duplicated = ref 0 in
  let round = ref 0 in
  let quiescent = ref false in
  let ring = ring_make () in
  (match faults with Some f -> f.retransmissions := 0 | None -> ());
  let current_stats () =
    {
      rounds = !round;
      messages = !messages;
      total_bits = !total_bits;
      max_edge_round_bits = !max_edge_round_bits;
      budget_violations = !budget_violations;
      dropped = !dropped;
      duplicated = !duplicated;
      retransmissions =
        (match faults with Some f -> !(f.retransmissions) | None -> 0);
    }
  in
  (* Domain [d] owns the contiguous node block [dom_lo.(d), dom_lo.(d+1)). *)
  let dom_lo = Array.init (jobs + 1) (fun d -> d * n / jobs) in
  let dom_ids = Array.init jobs Fun.id in
  let sanitize = match sanitize with Some b -> b | None -> env_sanitize in
  let owner_of v =
    (* [jobs] is small and the blocks ascend; a linear scan suffices. *)
    let d = ref 0 in
    while dom_lo.(!d + 1) <= v do
      incr d
    done;
    !d
  in
  let violation ~kind ~node ~detail =
    raise
      (Sanitizer_violation
         {
           sv_kind = kind;
           sv_round = !round;
           sv_node = node;
           sv_domain = (if node >= 0 && node < n then owner_of node else -1);
           sv_detail = detail;
         })
  in
  (* [snap.(v)]: structural hash of [states.(v)] at the last barrier;
     [written.(v)]: round of the last sanctioned write (step or
     crash-restart).  Both are private to the sanitizer. *)
  let snap = if sanitize then Array.map state_hash states else [||] in
  let written = if sanitize then Array.make n (-1) else [||] in
  let has_faults = Option.is_some faults in
  let wake_is_some = Option.is_some fp.fp_wake in
  (* Scheduling modes.  [sparse]: wake is physically [never] and no faults
     — the active set is exactly (mail recipients U stepped-and-not-done),
     maintained incrementally, so idle rounds cost O(active) not O(n).
     [sweep_all]: wake is [None] — every node steps every round, no list
     needed.  Otherwise a full-range criterion sweep per round, matching
     the active engine (a crash-restart or an arbitrary wake hook can
     activate any idle node). *)
  let sparse =
    (not has_faults)
    && (match fp.fp_wake with Some f -> f == never | None -> false)
  in
  let sweep_all = (not has_faults) && not wake_is_some in
  let down_now = if has_faults then Array.make n false else [||] in
  let was_down = if has_faults then Array.make n false else [||] in
  let act = Array.make (max 1 n) 0 in
  let und = Array.make (max 1 n) 0 in
  let rcp = Array.make (max 1 n) 0 in
  let n_act = ref 0 in
  let cand_stamp = Array.make n (-1) in
  if sparse then
    for v = 0 to n - 1 do
      if not done_flag.(v) then begin
        act.(!n_act) <- v;
        incr n_act
      end
    done;
  let emit_for d =
    let s = scr.(d) in
    let stage_d = stage.(d) in
    let rbs = rb_step.(d) in
    let deliver src dst msg =
      let mb = stage_d.(dst) in
      if mb.mlen = 0 then ibuf_push s.s_recip dst;
      mbuf_push mb src msg
    in
    fun ~dst msg ->
      let src = s.s_cur_src in
      if sanitize then begin
        (* In sanitize mode [s_cur_src] is reset to -1 after every step,
           so a stashed emit closure fired outside its step is caught
           here; in-step, the emitting node must sit in this domain's
           block (an emit closure smuggled across domains would charge
           another partition's ledger). *)
        if src < 0 then
          violation ~kind:"emit-outside-step" ~node:dst
            ~detail:
              (Printf.sprintf
                 "emit to node %d with no step in progress on domain %d \
                  (escaped emit closure?)"
                 dst d);
        if src < dom_lo.(d) || src >= dom_lo.(d + 1) then
          violation ~kind:"emit-foreign-node" ~node:src
            ~detail:
              (Printf.sprintf
                 "domain %d emitted on behalf of node %d, which domain %d owns"
                 d src (owner_of src))
      end;
      if dst < 0 || dst >= n then
        invalid_arg "Sim.run: message to nonexistent node";
      let p = Graph.pos csr ~src ~dst in
      if p < 0 then invalid_arg "Sim.run: message to non-neighbor";
      s.s_sent_any <- true;
      s.s_messages <- s.s_messages + 1;
      let bits = fp.fp_msg_bits msg in
      s.s_bits <- s.s_bits + bits;
      ibuf_push s.log_src src;
      ibuf_push s.log_dst dst;
      ibuf_push s.log_bits bits;
      let prev = edge_bits.(p) in
      if prev < 0 then begin
        ibuf_push s.s_touched p;
        edge_bits.(p) <- bits
      end
      else edge_bits.(p) <- prev + bits;
      match faults with
      | None ->
          if rec_on then Recorder.ev_send rbs ~src ~dst ~bits ~fate:1;
          deliver src dst msg
      | Some f -> (
          match f.on_send ~round:!round ~src ~dst with
          | Deliver ->
              if rec_on then Recorder.ev_send rbs ~src ~dst ~bits ~fate:1;
              deliver src dst msg
          | Drop ->
              if rec_on then Recorder.ev_send rbs ~src ~dst ~bits ~fate:0;
              s.s_dropped <- s.s_dropped + 1
          | Replicate k ->
              if rec_on then Recorder.ev_send rbs ~src ~dst ~bits ~fate:k;
              for _ = 1 to k do
                deliver src dst msg
              done;
              s.s_duplicated <- s.s_duplicated + (k - 1))
  in
  let emits = Array.init jobs emit_for in
  let step_node d v =
    let s = scr.(d) in
    let ib = inboxes.(v) in
    s.s_stepped <- s.s_stepped + 1;
    s.s_delivered <- s.s_delivered + ib.mlen;
    (* Mail-consuming steps only: the same sanctioned-write site the
       ownership sanitizer stamps, and the one step event every engine
       agrees on (idle wake steps differ between engines). *)
    if rec_on && ib.mlen > 0 then Recorder.ev_step rb_step.(d) v;
    s.s_cur_src <- v;
    let st' =
      fp.fp_step views.(v) ~round:!round states.(v) ~inbox:ib ~emit:emits.(d)
    in
    ib.mlen <- 0;
    states.(v) <- st';
    if sanitize then begin
      written.(v) <- !round;
      (* Arm the emit-outside-step check until the next step begins. *)
      s.s_cur_src <- -1
    end;
    let dn = fp.fp_is_done st' in
    if dn <> done_flag.(v) then begin
      done_flag.(v) <- dn;
      s.s_done_delta <- s.s_done_delta + (if dn then 1 else -1)
    end;
    if sparse && not dn then ibuf_push s.s_undone v
  in
  let do_domain d =
    let lo = dom_lo.(d) and hi = dom_lo.(d + 1) in
    (match faults with
    | None -> ()
    | Some f ->
        let s = scr.(d) in
        for v = lo to hi - 1 do
          let dn = f.down ~round:!round ~node:v in
          down_now.(v) <- dn;
          if dn then begin
            if rec_on then Recorder.ev_down rb_fault.(d) v;
            (* Mail delivered to a crashed node is lost. *)
            if inboxes.(v).mlen > 0 then begin
              s.s_dropped <- s.s_dropped + inboxes.(v).mlen;
              inboxes.(v).mlen <- 0
            end;
            was_down.(v) <- true
          end
          else if was_down.(v) then begin
            (* First round back up: restart from a fresh initial state. *)
            if rec_on then Recorder.ev_restart rb_fault.(d) v;
            was_down.(v) <- false;
            states.(v) <- fp.fp_init views.(v);
            if sanitize then written.(v) <- !round;
            let dflag = fp.fp_is_done states.(v) in
            if dflag <> done_flag.(v) then begin
              done_flag.(v) <- dflag;
              s.s_done_delta <- s.s_done_delta + (if dflag then 1 else -1)
            end
          end
        done);
    if sparse then begin
      let slo = lower_bound act !n_act lo
      and shi = lower_bound act !n_act hi in
      for i = slo to shi - 1 do
        step_node d act.(i)
      done
    end
    else if sweep_all then
      for v = lo to hi - 1 do
        step_node d v
      done
    else begin
      let s = scr.(d) in
      for v = lo to hi - 1 do
        let crashed = has_faults && down_now.(v) in
        let has_mail = inboxes.(v).mlen > 0 in
        let active =
          (not crashed)
          && (has_mail
             || (not done_flag.(v))
             ||
             match fp.fp_wake with
             | None -> true
             | Some f -> f views.(v) ~round:!round states.(v))
        in
        if active then begin
          if wake_is_some && (not has_mail) && done_flag.(v) then
            s.s_wake_hits <- s.s_wake_hits + 1;
          step_node d v
        end
      done
    end
  in
  while not !quiescent do
    if !round >= max_rounds then begin
      let snapshot = current_stats () in
      tel_finish telemetry snapshot;
      abort_run ~round:!round ~snapshot ring
    end;
    ring_begin_round ring ~round:!round;
    if jobs = 1 then do_domain 0
    else ignore (Dsf_util.Pool.map_chunked ~jobs do_domain dom_ids);
    (* Recorder barrier: round marker, then every domain's crash-window
       events, then every domain's step/send events, both in domain =
       node order (see [rb_fault]/[rb_step] above). *)
    (match rcd with
    | Some r ->
        Recorder.round r !round;
        for d = 0 to jobs - 1 do
          Recorder.flush r rb_fault.(d)
        done;
        for d = 0 to jobs - 1 do
          Recorder.flush r rb_step.(d)
        done
    | None -> ());
    (* Sequential merge at the barrier, in domain = node order, restoring
       the single-threaded engines' exact global send order. *)
    let bits0 = !total_bits in
    let stepped = ref 0 and delivered = ref 0 and wake_hits = ref 0 in
    let sent_any = ref false in
    for d = 0 to jobs - 1 do
      let s = scr.(d) in
      for i = 0 to s.log_src.ilen - 1 do
        let src = s.log_src.ia.(i)
        and dst = s.log_dst.ia.(i)
        and bits = s.log_bits.ia.(i) in
        (match obs with Some f -> f ~src ~dst ~bits | None -> ());
        ring_push ring ~round:!round ~src ~dst ~bits
      done;
      messages := !messages + s.s_messages;
      total_bits := !total_bits + s.s_bits;
      dropped := !dropped + s.s_dropped;
      duplicated := !duplicated + s.s_duplicated;
      stepped := !stepped + s.s_stepped;
      delivered := !delivered + s.s_delivered;
      wake_hits := !wake_hits + s.s_wake_hits;
      done_count := !done_count + s.s_done_delta;
      if s.s_sent_any then sent_any := true;
      for i = 0 to s.s_touched.ilen - 1 do
        let p = s.s_touched.ia.(i) in
        let bits = edge_bits.(p) in
        if bits > !max_edge_round_bits then max_edge_round_bits := bits;
        if bits > budget then incr budget_violations;
        edge_bits.(p) <- -1
      done
    done;
    (* Ownership oracle: between barriers a node's state may change only
       through its own step (or crash-restart) on the owning domain.  A
       node not written this round whose structural hash moved was
       mutated from someone else's step — the aliasing races the static
       domain-race rule cannot see.  Stepped nodes refresh their
       snapshot.  The inbox sweep checks an engine invariant: every
       message delivered at the previous barrier was consumed by a step
       this round (crashed nodes have their mail dropped above). *)
    if sanitize then begin
      for v = 0 to n - 1 do
        if written.(v) = !round then snap.(v) <- state_hash states.(v)
        else begin
          let h = state_hash states.(v) in
          if h <> snap.(v) then
            violation ~kind:"idle-state-write" ~node:v
              ~detail:
                (Printf.sprintf
                   "state of node %d changed this round but the node was \
                    not stepped (structural hash %d -> %d): cross-partition \
                    write through an aliased state"
                   v snap.(v) h)
        end
      done;
      for v = 0 to n - 1 do
        if inboxes.(v).mlen > 0 then
          violation ~kind:"undelivered-inbox" ~node:v
            ~detail:
              (Printf.sprintf
                 "%d message(s) delivered to node %d at the previous \
                  barrier were never consumed by a step"
                 inboxes.(v).mlen v)
      done
    end;
    (* Deliver staged mail and collect next round's active candidates:
       the still-undone nodes (already ascending — each domain's list is
       ascending and domains own ascending blocks) and the mail
       recipients (stamp-deduplicated, sorted, then merged). *)
    let nund = ref 0 and nrcp = ref 0 in
    (* All undone nodes must be stamped before any recipient is examined:
       a recipient in a *later* domain's undone list would otherwise be
       double-entered (once as mail recipient, once as undone). *)
    if sparse then
      for d = 0 to jobs - 1 do
        let s = scr.(d) in
        for i = 0 to s.s_undone.ilen - 1 do
          let v = s.s_undone.ia.(i) in
          cand_stamp.(v) <- !round;
          und.(!nund) <- v;
          incr nund
        done
      done;
    for d = 0 to jobs - 1 do
      let s = scr.(d) in
      let stage_d = stage.(d) in
      for i = 0 to s.s_recip.ilen - 1 do
        let dst = s.s_recip.ia.(i) in
        let mb = stage_d.(dst) in
        mbuf_append ~into:inboxes.(dst) mb;
        mb.mlen <- 0;
        if sparse && cand_stamp.(dst) <> !round then begin
          cand_stamp.(dst) <- !round;
          rcp.(!nrcp) <- dst;
          incr nrcp
        end
      done;
      scratch_reset s
    done;
    (* Arena hygiene: after delivery every staged slot must be empty — a
       populated slot missing from its domain's recipient list means mail
       was staged behind the engine's back and would silently vanish. *)
    if sanitize then
      for d = 0 to jobs - 1 do
        let stage_d = stage.(d) in
        for dst = 0 to n - 1 do
          if stage_d.(dst).mlen > 0 then
            violation ~kind:"arena-leak" ~node:dst
              ~detail:
                (Printf.sprintf
                   "domain %d staged %d message(s) for node %d outside its \
                    recipient list; they would never be delivered"
                   d stage_d.(dst).mlen dst)
        done
      done;
    if sparse then begin
      sort_int_prefix rcp !nrcp;
      let i = ref 0 and j = ref 0 and k = ref 0 in
      while !i < !nund && !j < !nrcp do
        let x = und.(!i) and y = rcp.(!j) in
        if x < y then begin
          act.(!k) <- x;
          incr i
        end
        else begin
          act.(!k) <- y;
          incr j
        end;
        incr k
      done;
      while !i < !nund do
        act.(!k) <- und.(!i);
        incr i;
        incr k
      done;
      while !j < !nrcp do
        act.(!k) <- rcp.(!j);
        incr j;
        incr k
      done;
      n_act := !k
    end;
    (match telemetry with
    | Some t ->
        Telemetry.sim_round t ~stepped:!stepped ~delivered:!delivered
          ~bits:(!total_bits - bits0) ~wake_hits:!wake_hits
    | None -> ());
    incr round;
    let halted = match halt with Some f -> f states | None -> false in
    quiescent := halted || ((!done_count = n) && not !sent_any)
  done;
  let final = current_stats () in
  tel_finish telemetry final;
  states, final

(* Deprecated global shim, same contract as [use_reference_engine]: lets
   the differential suite and the microbenchmarks drive whole algorithm
   entry points through the flat engine without threading a parameter. *)
let use_flat_engine = ref false [@@lint.allow "global-state"]

(* Active-set engine.  Per-round work is proportional to the number of
   *active* nodes and the messages they send, plus an O(n) sweep of three
   boolean tests per idle node, instead of the seed's full [step] of every
   node plus a fresh hashtable and two O(n) state re-scans:

   - a node is stepped only if it has mail, is not done, or its protocol's
     [wake] hook asks for it (no hook = step every round, the seed behavior);
   - per-(edge,direction) round bits live in a flat array indexed by
     precomputed directed-edge slots; only the touched slots are swept for
     the max/budget accounting and reset afterwards;
   - [is_done] is evaluated once per state change and folded into a running
     [done_count], replacing the per-round [Array.for_all] scan;
   - inboxes are growable arrival-order buffers, so no List.rev per step and
     no cons-cell churn for the double-buffered delivery arrays.

   Stats, observer calls (order included), exceptions, and final states are
   bit-for-bit those of [run_reference]; test_sim_equiv enforces this.

   Fault injection ([?faults]) lives here and only here: with no faults
   record the per-message fast path is exactly the fault-free engine.
   Semantics (see the .mli): the sender is always charged for a send
   (messages, bits, observer, edge budget); [Drop] destroys the message
   in flight, [Replicate k] delivers [k] copies; a [down] node is not
   stepped and mail arriving at it is destroyed (counted as dropped); on
   the first round a node is back up, its state is reset to [init]. *)
let run ?max_rounds ?halt ?observer:per_run ?reference ?faults ?telemetry
    ?flat ?(jobs = 1) ?recorder g proto =
  let reference =
    match reference with Some b -> b | None -> !use_reference_engine
  in
  let flat = match flat with Some b -> b | None -> !use_flat_engine in
  if reference then begin
    (* Engine precedence: reference > flat > active; [?reference:true]
       wins over the flat shim so existing differential helpers keep
       working with either shim set. *)
    (match faults with
    | Some _ -> invalid_arg "Sim.run: ?faults requires the active engine"
    | None -> ());
    run_reference ?max_rounds ?halt ?observer:per_run ?telemetry ?recorder g
      proto
  end
  else if flat then
    run_flat ?max_rounds ?halt ?observer:per_run ?faults ?telemetry ?recorder
      ~jobs g (flat_of_protocol proto)
  else begin
    let obs = effective_observer per_run in
    let rcd = effective_recorder recorder telemetry in
    let rec_on = Option.is_some rcd in
    let rb = Recorder.buf_make () in
    let n = Graph.n g in
    let m = Graph.m g in
    let max_rounds =
      match max_rounds with Some r -> r | None -> 10_000 + (200 * n)
    in
    let views =
      Array.init n (fun node -> { node; n; nbrs = Graph.adj g node })
    in
    let states = Array.map proto.init views in
    let nbr_slots = neighbor_slots g views in
    let budget = Dsf_util.Bitsize.congest_budget ~n in
    (* -1 marks an untouched slot, so zero-bit messages still register their
       slot exactly once per round (matching the hashtable's entry count). *)
    let edge_bits = Array.make (2 * m) (-1) in
    let touched = Array.make (2 * m) 0 in
    let n_touched = ref 0 in
    let cur = ref (Array.init n (fun _ -> buf_make ())) in
    let nxt = ref (Array.init n (fun _ -> buf_make ())) in
    let done_flag = Array.map proto.is_done states in
    let done_count = ref 0 in
    Array.iter (fun d -> if d then incr done_count) done_flag;
    let messages = ref 0 in
    let total_bits = ref 0 in
    let max_edge_round_bits = ref 0 in
    let budget_violations = ref 0 in
    let dropped = ref 0 in
    let duplicated = ref 0 in
    let round = ref 0 in
    let quiescent = ref false in
    let ring = ring_make () in
    (match faults with Some f -> f.retransmissions := 0 | None -> ());
    let current_stats () =
      {
        rounds = !round;
        messages = !messages;
        total_bits = !total_bits;
        max_edge_round_bits = !max_edge_round_bits;
        budget_violations = !budget_violations;
        dropped = !dropped;
        duplicated = !duplicated;
        retransmissions =
          (match faults with Some f -> !(f.retransmissions) | None -> 0);
      }
    in
    (* Crash bookkeeping, allocated only when a faults record is present. *)
    let down_now = match faults with Some _ -> Array.make n false | None -> [||] in
    let was_down = match faults with Some _ -> Array.make n false | None -> [||] in
    let wake_is_some = Option.is_some proto.wake in
    while not !quiescent do
      if !round >= max_rounds then begin
        let snapshot = current_stats () in
        tel_finish telemetry snapshot;
        abort_run ~round:!round ~snapshot ring
      end;
      ring_begin_round ring ~round:!round;
      let inboxes = !cur and outboxes = !nxt in
      let sent_any = ref false in
      (* Round-level series for the telemetry hook.  Maintained as plain
         branch-free adds so that with [?telemetry:None] the engine pays
         exactly one extra branch per round (the [match] below). *)
      let bits0 = !total_bits in
      let stepped = ref 0 in
      let delivered = ref 0 in
      let wake_hits = ref 0 in
      (match faults with
      | None -> ()
      | Some f ->
          for v = 0 to n - 1 do
            let d = f.down ~round:!round ~node:v in
            down_now.(v) <- d;
            if d then begin
              (* Mail delivered to a crashed node is lost. *)
              if rec_on then Recorder.ev_down rb v;
              if inboxes.(v).len > 0 then begin
                dropped := !dropped + inboxes.(v).len;
                inboxes.(v).len <- 0
              end;
              was_down.(v) <- true
            end
            else if was_down.(v) then begin
              (* First round back up: restart from a fresh initial state. *)
              if rec_on then Recorder.ev_restart rb v;
              was_down.(v) <- false;
              states.(v) <- proto.init views.(v);
              let d' = proto.is_done states.(v) in
              if d' <> done_flag.(v) then begin
                done_flag.(v) <- d';
                done_count := !done_count + (if d' then 1 else -1)
              end
            end
          done);
      for v = 0 to n - 1 do
        let crashed = match faults with Some _ -> down_now.(v) | None -> false in
        let has_mail = inboxes.(v).len > 0 in
        let active =
          (not crashed)
          && (has_mail
             || (not done_flag.(v))
             ||
             match proto.wake with
             | None -> true
             | Some f -> f views.(v) ~round:!round states.(v))
        in
        if active then begin
          (* An active node that had no mail and reported done can only have
             been stepped because its wake hook fired. *)
          if wake_is_some && (not has_mail) && done_flag.(v) then
            incr wake_hits;
          incr stepped;
          delivered := !delivered + inboxes.(v).len;
          (* Mail-consuming steps only — see [run_flat]'s [step_node]. *)
          if rec_on && has_mail then Recorder.ev_step rb v;
          let inbox = buf_drain inboxes.(v) in
          let state', outbox =
            proto.step views.(v) ~round:!round states.(v) ~inbox
          in
          states.(v) <- state';
          let d = proto.is_done state' in
          if d <> done_flag.(v) then begin
            done_flag.(v) <- d;
            done_count := !done_count + (if d then 1 else -1)
          end;
          List.iter
            (fun (dst, msg) ->
              let slot = slot_of_msg nbr_slots ~n ~src:v ~dst in
              sent_any := true;
              incr messages;
              let bits = proto.msg_bits msg in
              total_bits := !total_bits + bits;
              (match obs with
              | Some f -> f ~src:v ~dst ~bits
              | None -> ());
              ring_push ring ~round:!round ~src:v ~dst ~bits;
              let prev = edge_bits.(slot) in
              if prev < 0 then begin
                touched.(!n_touched) <- slot;
                incr n_touched;
                edge_bits.(slot) <- bits
              end
              else edge_bits.(slot) <- prev + bits;
              match faults with
              | None ->
                  if rec_on then
                    Recorder.ev_send rb ~src:v ~dst ~bits ~fate:1;
                  buf_push outboxes.(dst) (v, msg)
              | Some f -> (
                  match f.on_send ~round:!round ~src:v ~dst with
                  | Deliver ->
                      if rec_on then
                        Recorder.ev_send rb ~src:v ~dst ~bits ~fate:1;
                      buf_push outboxes.(dst) (v, msg)
                  | Drop ->
                      if rec_on then
                        Recorder.ev_send rb ~src:v ~dst ~bits ~fate:0;
                      incr dropped
                  | Replicate k ->
                      if rec_on then
                        Recorder.ev_send rb ~src:v ~dst ~bits ~fate:k;
                      for _ = 1 to k do
                        buf_push outboxes.(dst) (v, msg)
                      done;
                      duplicated := !duplicated + (k - 1)))
            outbox
        end
      done;
      for i = 0 to !n_touched - 1 do
        let slot = touched.(i) in
        let bits = edge_bits.(slot) in
        if bits > !max_edge_round_bits then max_edge_round_bits := bits;
        if bits > budget then incr budget_violations;
        edge_bits.(slot) <- -1
      done;
      n_touched := 0;
      (* Every non-empty inbox made its node active (or was emptied by the
         crash pre-pass), and stepping drains the inbox, so [inboxes] is
         all-empty here: swapping the double buffers hands next round its
         deliveries and this round's arrays for reuse. *)
      cur := outboxes;
      nxt := inboxes;
      (match rcd with
      | Some r ->
          Recorder.round r !round;
          Recorder.flush r rb
      | None -> ());
      (match telemetry with
      | Some t ->
          Telemetry.sim_round t ~stepped:!stepped ~delivered:!delivered
            ~bits:(!total_bits - bits0) ~wake_hits:!wake_hits
      | None -> ());
      incr round;
      let halted = match halt with Some f -> f states | None -> false in
      quiescent := halted || ((!done_count = n) && not !sent_any)
    done;
    let final = current_stats () in
    tel_finish telemetry final;
    states, final
  end

let pp_stats ppf s =
  Format.fprintf ppf
    "rounds=%d messages=%d bits=%d max-edge-round-bits=%d violations=%d"
    s.rounds s.messages s.total_bits s.max_edge_round_bits s.budget_violations;
  if s.dropped > 0 || s.duplicated > 0 || s.retransmissions > 0 then
    Format.fprintf ppf " dropped=%d duplicated=%d retransmissions=%d" s.dropped
      s.duplicated s.retransmissions

let pp_abort ppf a =
  Format.fprintf ppf "@[<v>no quiescence after %d rounds (%a)@," a.at_round
    pp_stats a.snapshot;
  if a.snapshot.budget_violations > 0 then
    Format.fprintf ppf
      "budget breached %d time(s); worst edge-round carried %d bits@,"
      a.snapshot.budget_violations a.snapshot.max_edge_round_bits;
  Format.fprintf ppf "last %d rounds of traffic:@," (List.length a.recent);
  List.iter
    (fun (r, msgs) ->
      let per_node = Hashtbl.create 8 in
      let round_bits = ref 0 in
      List.iter
        (fun (src, _, bits) ->
          round_bits := !round_bits + bits;
          let c, b =
            Option.value ~default:(0, 0) (Hashtbl.find_opt per_node src)
          in
          Hashtbl.replace per_node src (c + 1, b + bits))
        msgs;
      let senders =
        Hashtbl.fold (fun v cb acc -> (v, cb) :: acc) per_node []
        |> List.sort compare
      in
      Format.fprintf ppf "  round %d: %d msgs/%d bits from %d nodes" r
        (List.length msgs) !round_bits (List.length senders);
      List.iteri
        (fun i (v, (c, b)) ->
          if i < 6 then Format.fprintf ppf " [%d: %d msg/%d bits]" v c b)
        senders;
      if List.length senders > 6 then Format.fprintf ppf " ...";
      Format.fprintf ppf "@,")
    a.recent;
  Format.fprintf ppf "@]"

let () =
  Printexc.register_printer (function
    | Round_limit a -> Some (Format.asprintf "Sim.Round_limit:@ %a" pp_abort a)
    | _ -> None)
