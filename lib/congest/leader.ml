module Graph = Dsf_graph.Graph
module Bitsize = Dsf_util.Bitsize

type result = {
  leader : int;
  rounds : int;
  messages : int;
  agreed : bool;
}

type state = { best : int; dirty : bool }

let protocol g : (state, int) Sim.protocol =
  let n = Graph.n g in
  {
    init = (fun view -> { best = view.Sim.node; dirty = true });
    step =
      (fun view ~round:_ st ~inbox ->
        let st =
          List.fold_left
            (fun st (_, cand) ->
              if cand > st.best then { best = cand; dirty = true } else st)
            st inbox
        in
        if st.dirty then
          ( { st with dirty = false },
            Array.to_list view.Sim.nbrs
            |> List.map (fun (nb, _, _) -> nb, st.best) )
        else st, []);
    is_done = (fun st -> not st.dirty);
    msg_bits = (fun _ -> Bitsize.id_bits ~n);
    wake = Some Sim.never;
  }

let elect ?observer ?faults ?chaos g =
  let states, stats =
    Fault.sim_run ?observer ?faults ?chaos ~recovery:(Fault.immutable ()) g
      (protocol g)
  in
  (* Under raw (unhardened) crash-and-restart faults agreement can silently
     break: a node restarted after the max-id wave has passed re-floods its
     own id, its done neighbors ignore the smaller candidate and never
     reply, and the network quiesces with the restarted node stuck on a
     stale leader.  Surface that instead of asserting: [agreed] reports
     whether every node ended on the same leader.  Fault-free runs must
     agree (the assert), and so must hardened runs under any maskable plan
     — crash-restart included, since [?chaos] runs with checkpoint
     recovery — which the chaos suite enforces differentially. *)
  let leader = Array.fold_left (fun acc st -> max acc st.best) min_int states in
  let agreed = Array.for_all (fun st -> st.best = leader) states in
  (match faults with None -> assert agreed | Some _ -> ());
  { leader; rounds = stats.Sim.rounds; messages = stats.Sim.messages; agreed }
