module Graph = Dsf_graph.Graph
module Bitsize = Dsf_util.Bitsize

type result = {
  leader : int;
  rounds : int;
  messages : int;
}

type state = { best : int; dirty : bool }

let elect g =
  let n = Graph.n g in
  let proto : (state, int) Sim.protocol =
    {
      init = (fun view -> { best = view.Sim.node; dirty = true });
      step =
        (fun view ~round:_ st ~inbox ->
          let st =
            List.fold_left
              (fun st (_, cand) ->
                if cand > st.best then { best = cand; dirty = true } else st)
              st inbox
          in
          if st.dirty then
            ( { st with dirty = false },
              Array.to_list view.Sim.nbrs
              |> List.map (fun (nb, _, _) -> nb, st.best) )
          else st, []);
      is_done = (fun st -> not st.dirty);
      msg_bits = (fun _ -> Bitsize.id_bits ~n);
      wake = Some Sim.never;
    }
  in
  let states, stats = Sim.run g proto in
  let leader = states.(0).best in
  Array.iter (fun st -> assert (st.best = leader)) states;
  { leader; rounds = stats.Sim.rounds; messages = stats.Sim.messages }
