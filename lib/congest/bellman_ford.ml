module Graph = Dsf_graph.Graph
module Bitsize = Dsf_util.Bitsize

type result = {
  dist : int array;
  src_of : int array;
  parent : int array;
  hops : int array;
  rounds : int;
}

type state = {
  dist : int;
  src : int;
  parent : int;
  hops : int;
  dirty : bool;  (** must announce our label next round *)
}

type msg = Relax of { dist : int; src : int; hops : int }

let inf = max_int / 4

(* Lexicographic label order: smaller distance first, then smaller source id
   (Definition 4.6 tie-breaking), then fewer hops. *)
let better (d1, s1, h1) (d2, s2, h2) = (d1, s1, h1) < (d2, s2, h2)

let protocol ?weight_of ?radius g ~sources =
  let n = Graph.n g in
  let weight_of =
    match weight_of with
    | Some f -> f
    | None -> fun eid -> (Graph.edge g eid).Graph.w
  in
  let cap = match radius with Some r -> r | None -> inf in
  (* Per-node map neighbor -> effective incoming edge weight, to avoid a
     linear scan per received message. *)
  let nbr_weight =
    Array.init n (fun v ->
        let h = Hashtbl.create 8 in
        Array.iter
          (fun (nb, _, eid) -> Hashtbl.replace h nb (weight_of eid))
          (Graph.adj g v);
        h)
  in
  let init_dist = Hashtbl.create (List.length sources) in
  List.iter
    (fun (v, d0) ->
      assert (d0 >= 0);
      match Hashtbl.find_opt init_dist v with
      | Some d when d <= d0 -> ()
      | _ -> Hashtbl.replace init_dist v d0)
    sources;
  let proto : (state, msg) Sim.protocol =
    {
      init =
        (fun view ->
          match Hashtbl.find_opt init_dist view.Sim.node with
          | Some d0 when d0 <= cap ->
              { dist = d0; src = view.Sim.node; parent = -1; hops = 0; dirty = true }
          | _ -> { dist = inf; src = -1; parent = -1; hops = inf; dirty = false });
      step =
        (fun view ~round:_ st ~inbox ->
          let st =
            List.fold_left
              (fun st (sender, Relax r) ->
                let w = Hashtbl.find nbr_weight.(view.Sim.node) sender in
                let nd = r.dist + w and nh = r.hops + 1 in
                if nd <= cap && better (nd, r.src, nh) (st.dist, st.src, st.hops)
                then
                  { dist = nd; src = r.src; parent = sender; hops = nh; dirty = true }
                else st)
              st inbox
          in
          if st.dirty && st.src >= 0 then begin
            let outbox =
              Array.to_list view.Sim.nbrs
              |> List.map (fun (nb, _, _) ->
                     nb, Relax { dist = st.dist; src = st.src; hops = st.hops })
            in
            { st with dirty = false }, outbox
          end
          else { st with dirty = false }, []);
      is_done = (fun st -> not st.dirty);
      msg_bits =
        (fun (Relax r) ->
          Bitsize.int_bits (max 1 r.dist)
          + Bitsize.id_bits ~n
          + Bitsize.int_bits (max 1 r.hops));
      (* Purely wavefront-driven: a clean node with no mail has nothing to
         do, so the simulator may skip it. *)
      wake = Some Sim.never;
    }
  in
  proto

let run ?weight_of ?radius ?max_rounds ?observer ?telemetry g ~sources =
  let n = Graph.n g in
  let proto = protocol ?weight_of ?radius g ~sources in
  let states, stats =
    Telemetry.span_opt telemetry "bellman_ford" (fun () ->
        Sim.run ?max_rounds ?observer ?telemetry g proto)
  in
  let dist = Array.make n max_int in
  let src_of = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let hops = Array.make n max_int in
  Array.iteri
    (fun v (st : state) ->
      if st.src >= 0 then begin
        dist.(v) <- st.dist;
        src_of.(v) <- st.src;
        parent.(v) <- st.parent;
        hops.(v) <- st.hops
      end)
    states;
  { dist; src_of; parent; hops; rounds = stats.Sim.rounds }, stats

let sssp ?observer ?telemetry g ~src =
  run ?observer ?telemetry g ~sources:[ src, 0 ]
