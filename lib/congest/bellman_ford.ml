module Graph = Dsf_graph.Graph
module Bitsize = Dsf_util.Bitsize
module Pack = Dsf_util.Pack

type result = {
  dist : int array;
  src_of : int array;
  parent : int array;
  hops : int array;
  rounds : int;
}

type state = {
  dist : int;
  src : int;
  parent : int;
  hops : int;
  dirty : bool;  (** must announce our label next round *)
}

type msg = Relax of { dist : int; src : int; hops : int }

let inf = max_int / 4

(* Lexicographic label order: smaller distance first, then smaller source id
   (Definition 4.6 tie-breaking), then fewer hops. *)
let better (d1, s1, h1) (d2, s2, h2) = (d1, s1, h1) < (d2, s2, h2)

let protocol ?weight_of ?radius g ~sources =
  let n = Graph.n g in
  let weight_of =
    match weight_of with
    | Some f -> f
    | None -> fun eid -> (Graph.edge g eid).Graph.w
  in
  let cap = match radius with Some r -> r | None -> inf in
  (* Per-node map neighbor -> effective incoming edge weight, to avoid a
     linear scan per received message. *)
  let nbr_weight =
    Array.init n (fun v ->
        let h = Hashtbl.create 8 in
        Array.iter
          (fun (nb, _, eid) -> Hashtbl.replace h nb (weight_of eid))
          (Graph.adj g v);
        h)
  in
  let init_dist = Hashtbl.create (List.length sources) in
  List.iter
    (fun (v, d0) ->
      assert (d0 >= 0);
      match Hashtbl.find_opt init_dist v with
      | Some d when d <= d0 -> ()
      | _ -> Hashtbl.replace init_dist v d0)
    sources;
  let proto : (state, msg) Sim.protocol =
    {
      init =
        (fun view ->
          match Hashtbl.find_opt init_dist view.Sim.node with
          | Some d0 when d0 <= cap ->
              { dist = d0; src = view.Sim.node; parent = -1; hops = 0; dirty = true }
          | _ -> { dist = inf; src = -1; parent = -1; hops = inf; dirty = false });
      step =
        (fun view ~round:_ st ~inbox ->
          let st =
            List.fold_left
              (fun st (sender, Relax r) ->
                let w = Hashtbl.find nbr_weight.(view.Sim.node) sender in
                let nd = r.dist + w and nh = r.hops + 1 in
                if nd <= cap && better (nd, r.src, nh) (st.dist, st.src, st.hops)
                then
                  { dist = nd; src = r.src; parent = sender; hops = nh; dirty = true }
                else st)
              st inbox
          in
          if st.dirty && st.src >= 0 then begin
            let outbox =
              Array.to_list view.Sim.nbrs
              |> List.map (fun (nb, _, _) ->
                     nb, Relax { dist = st.dist; src = st.src; hops = st.hops })
            in
            { st with dirty = false }, outbox
          end
          else { st with dirty = false }, []);
      is_done = (fun st -> not st.dirty);
      msg_bits =
        (fun (Relax r) ->
          Bitsize.int_bits (max 1 r.dist)
          + Bitsize.id_bits ~n
          + Bitsize.int_bits (max 1 r.hops));
      (* Purely wavefront-driven: a clean node with no mail has nothing to
         do, so the simulator may skip it. *)
      wake = Some Sim.never;
    }
  in
  proto

(* Native flat-engine port.  Same wavefront, same messages, same label
   order as [protocol], with the whole message packed into one immediate
   int (a {!Dsf_util.Pack} layout of distance, source id, hops) and the
   per-node state kept in a mutable record that is allocated once at init
   and updated in place — so the steady-state round loop allocates
   nothing.  Distances are bounded by min(radius cap, max initial distance
   + (n - 1) * max effective weight): every accepted label's provenance
   chain is a simple path (a repeated node would have had to accept a
   lexicographically worse label), so hops <= n - 1 and the bound is
   sound.  When the three widths do not fit an immediate int, the
   constructor declines ([None]) and [run ~flat:true] falls back to the
   classic protocol through the flat engine's boxed adapter. *)
type flat_state = {
  mutable fdist : int;
  mutable fsrc : int;
  mutable fparent : int;
  mutable fhops : int;
  mutable fdirty : bool;
}

let flat_protocol ?weight_of ?radius g ~sources =
  let n = Graph.n g in
  let weight_of =
    match weight_of with
    | Some f -> f
    | None -> fun eid -> (Graph.edge g eid).Graph.w
  in
  let cap = match radius with Some r -> r | None -> inf in
  let csr = Graph.csr g in
  (* Effective incoming weight per directed CSR position: one array lookup
     per received message (the classic protocol pays a hashtable find). *)
  let wpos = Array.map weight_of csr.Graph.eid in
  let init_dist = Hashtbl.create (max 1 (List.length sources)) in
  List.iter
    (fun (v, d0) ->
      assert (d0 >= 0);
      match Hashtbl.find_opt init_dist v with
      | Some d when d <= d0 -> ()
      | _ -> Hashtbl.replace init_dist v d0)
    sources;
  let max_d0 =
    Hashtbl.fold (fun _ d acc -> if d <= cap then max acc d else acc)
      init_dist 0
  in
  let max_w = Array.fold_left max 0 wpos in
  (* Overflow-safe distance bound; a blowup here means the widths cannot
     fit anyway, so decline rather than risk wraparound. *)
  if max_w > 0 && n - 1 > (inf - max_d0) / max_w then None
  else begin
    let dmax = min cap (max_d0 + ((n - 1) * max_w)) in
    let wd = Pack.width_of_max dmax in
    let ws = Pack.width_of_max (max 1 (n - 1)) in
    let wh = Pack.width_of_max (max 1 (n - 1)) in
    if wd + ws + wh > 62 then None
    else begin
      let[@warning "-8"] [| f_dist; f_src; f_hops |] =
        Pack.layout [ wd; ws; wh ]
      in
      let fp : (flat_state, int) Sim.flat_protocol =
        {
          fp_init =
            (fun view ->
              match Hashtbl.find_opt init_dist view.Sim.node with
              | Some d0 when d0 <= cap ->
                  {
                    fdist = d0;
                    fsrc = view.Sim.node;
                    fparent = -1;
                    fhops = 0;
                    fdirty = true;
                  }
              | _ ->
                  {
                    fdist = inf;
                    fsrc = -1;
                    fparent = -1;
                    fhops = inf;
                    fdirty = false;
                  });
          fp_step =
            (fun view ~round:_ st ~inbox ~emit ->
              let v = view.Sim.node in
              let k = Sim.inbox_len inbox in
              for i = 0 to k - 1 do
                let sender = Sim.inbox_src inbox i in
                let m = Sim.inbox_msg inbox i in
                let d = Pack.get f_dist m in
                let s = Pack.get f_src m in
                let h = Pack.get f_hops m in
                let w = wpos.(Graph.pos csr ~src:v ~dst:sender) in
                let nd = d + w and nh = h + 1 in
                (* Inlined [better (nd, s, nh) (st.fdist, st.fsrc,
                   st.fhops)]: the unreached sentinel (-1 source) is only
                   ever compared behind a strictly smaller distance, so
                   the explicit lexicographic test matches the tuple
                   compare without boxing. *)
                if
                  nd <= cap
                  && (nd < st.fdist
                     || (nd = st.fdist
                        && (s < st.fsrc || (s = st.fsrc && nh < st.fhops))))
                then begin
                  st.fdist <- nd;
                  st.fsrc <- s;
                  st.fparent <- sender;
                  st.fhops <- nh;
                  st.fdirty <- true
                end
              done;
              if st.fdirty && st.fsrc >= 0 then begin
                let packed =
                  Pack.put f_dist st.fdist
                    (Pack.put f_src st.fsrc (Pack.put f_hops st.fhops 0))
                in
                Array.iter
                  (fun (nb, _, _) -> emit ~dst:nb packed)
                  view.Sim.nbrs
              end;
              st.fdirty <- false;
              st);
          fp_is_done = (fun st -> not st.fdirty);
          fp_msg_bits =
            (fun m ->
              Bitsize.int_bits (max 1 (Pack.get f_dist m))
              + Bitsize.id_bits ~n
              + Bitsize.int_bits (max 1 (Pack.get f_hops m)));
          fp_wake = Some Sim.never;
        }
      in
      Some fp
    end
  end

let run ?weight_of ?radius ?max_rounds ?observer ?faults ?telemetry ?flat ?jobs
    ?chaos g ~sources =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let src_of = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let hops = Array.make n max_int in
  let fill ~d ~s ~p ~h v =
    if s >= 0 then begin
      dist.(v) <- d;
      src_of.(v) <- s;
      parent.(v) <- p;
      hops.(v) <- h
    end
  in
  let native =
    if Option.is_none chaos && flat = Some true then
      flat_protocol ?weight_of ?radius g ~sources
    else None
  in
  let stats =
    match native with
    | Some fp ->
        let states, stats =
          Telemetry.span_opt telemetry "bellman_ford" (fun () ->
              Sim.run_flat ?max_rounds ?observer ?faults ?telemetry ?jobs g fp)
        in
        Array.iteri
          (fun v st -> fill ~d:st.fdist ~s:st.fsrc ~p:st.fparent ~h:st.fhops v)
          states;
        stats
    | None ->
        let proto = protocol ?weight_of ?radius g ~sources in
        let states, stats =
          Telemetry.span_opt telemetry "bellman_ford" (fun () ->
              Fault.sim_run ?max_rounds ?observer ?faults ?telemetry ?flat
                ?jobs ?chaos ~recovery:(Fault.immutable ()) g proto)
        in
        Array.iteri
          (fun v (st : state) ->
            fill ~d:st.dist ~s:st.src ~p:st.parent ~h:st.hops v)
          states;
        stats
  in
  { dist; src_of; parent; hops; rounds = stats.Sim.rounds }, stats

let sssp ?observer ?telemetry ?flat ?jobs g ~src =
  run ?observer ?telemetry ?flat ?jobs g ~sources:[ src, 0 ]
