(** Deterministic fault injection and a self-healing protocol combinator.

    This module answers "what happens when the CONGEST network misbehaves"
    in two pieces:

    - {b Plans}: a {!plan} is a pure, seeded description of faults —
      per-message drop/duplication probabilities, per-round link outages,
      node crash-and-restart windows.  {!instantiate} compiles a plan into
      the callback record {!Sim.faults} that {!Sim.run}'s [?faults]
      argument consumes.  Decisions are a stateless PRF of
      [(seed, round, src, dst)], so a plan is bit-reproducible and
      independent of send order — the same plan on the same run always
      kills the same messages.

    - {b Hardening}: {!harden} wraps any protocol in a reliable link layer
      (per-neighbor sequence numbers, cumulative acks, go-back-N
      retransmission with bounded timeout and exponential backoff,
      duplicate suppression) plus an alpha-synchronizer: a node executes
      its inner round [r] only after every neighbor has closed round [r]
      with a [Fin] marker, and the inner inbox is rebuilt exactly as the
      lossless engines deliver it (senders ascending, send order within a
      sender).  Consequently, under {e any drop-only plan} (drop
      probability < 1, duplication, finite link outages) the hardened
      protocol reaches the {e same final states} as the unhardened
      protocol on a lossless network — timing-sensitive protocols (e.g.
      {!Bfs}'s first-arrival parent choice) included.  The chaos suite
      ([test/test_chaos.ml]) enforces this differentially.

    {b Scope of the guarantee.}  The inner protocol must (a) quiesce on a
    lossless network and (b) satisfy the sparse-wake no-op contract of
    {!Sim} (stepping a done node with an empty inbox is a no-op) — all the
    repo's protocols qualify.  Crash-and-restart faults are {e not}
    masked: a restart wipes the link-layer state (sequence numbers,
    windows), which desynchronizes the streams; hardened runs under crash
    plans typically end in a {!Sim.Round_limit} post-mortem.  Byzantine
    behavior (corrupted or forged messages) is outside the model entirely.

    {b Termination.}  A hardened network never goes globally silent (Fin
    markers and timers keep marching), so a hardened run must be stopped
    by the omniscient {!quiescent} halt — virtual quiescence: every inner
    state done, no unacked payload, no unconsumed payload.  That is the
    repo's usual omniscient-halt convention ({!Sim.run}'s [?halt]); a
    real deployment would detect it with an O(D) termination-detection
    wave, which callers should charge to their ledger.
    {!run_hardened} wires the halt (and the plan) for you. *)

type plan = {
  seed : int;
  drop : float;  (** per-message drop probability, in [0, 1) *)
  duplicate : float;  (** per-message duplication probability, in [0, 1] *)
  link_down : (int * int * int * int) list;
      (** [(u, v, first, last)]: both directions of edge u-v drop
          everything in rounds [first..last] (inclusive) *)
  crashes : (int * int * int) list;
      (** [(node, crash, restart)]: the node is down in rounds
          [crash..restart-1]; on round [restart] it re-inits from scratch *)
}

val empty : plan
(** No faults at all.  [Sim.run ?faults:(Some (instantiate empty))] is
    bit-identical to [Sim.run] without faults (the differential suite
    checks this). *)

val plan :
  ?drop:float ->
  ?duplicate:float ->
  ?link_down:(int * int * int * int) list ->
  ?crashes:(int * int * int) list ->
  seed:int ->
  unit ->
  plan
(** Validating constructor; all fault classes default to "off". *)

val is_empty : plan -> bool

val drop_only : plan -> bool
(** No crashes and no link outages: the class of plans {!harden} fully
    masks (message drops and duplications only). *)

val instantiate : plan -> Sim.faults
(** Compile the plan into the engine's callback record.  The record owns
    the run's retransmission counter, so use a fresh instance per run
    (sharing one across runs only smears the counter; the decisions
    themselves are stateless). *)

(** {2 Hardening} *)

type 'm item = Payload of { vround : int; body : 'm } | Fin of { vround : int }

type 'm packet = Pkt of { seq : int; item : 'm item } | Ack of { upto : int }
(** The wire format of a hardened protocol: sequenced stream items
    (payloads tagged with their virtual round, plus round-closing [Fin]
    markers) and cumulative acknowledgements. *)

type ('s, 'm) hstate
(** Hardened per-node state: the inner ['s] plus the link-layer windows. *)

val inner : ('s, 'm) hstate -> 's
(** The wrapped protocol's state (final inner states after a run). *)

val retransmissions_of : ('s, 'm) hstate array -> int
(** Total packets retransmitted across all nodes (also surfaced as
    [stats.retransmissions] when a faults record is passed to the run). *)

val harden :
  ?rto:int ->
  ?rto_cap:int ->
  ?faults:Sim.faults ->
  ('s, 'm) Sim.protocol ->
  (('s, 'm) hstate, 'm packet) Sim.protocol
(** Wrap a protocol with the reliable link layer + synchronizer.  [rto]
    (default 3) is the initial per-link retransmit timeout in rounds —
    it must cover the 2-round send/ack latency — doubling on every
    timeout up to [rto_cap] (default 32) and resetting on ack progress.
    [faults] is the same record handed to {!Sim.run}; passing it lets the
    wrapper report resends into [stats.retransmissions].

    The result never goes silent on its own: run it with the
    {!quiescent} halt (or use {!run_hardened}). *)

val quiescent : ('s, 'm) Sim.protocol -> ('s, 'm) hstate array -> bool
(** Virtual quiescence of a hardened run of [proto] — the halt predicate:
    every node's inner state is done, no payload is unacknowledged, no
    delivered payload is unconsumed.  When it fires, the inner states are
    exactly the lossless final states. *)

val run_hardened :
  ?max_rounds:int ->
  ?rto:int ->
  ?rto_cap:int ->
  ?observer:Sim.observer ->
  ?telemetry:Telemetry.t ->
  ?plan:plan ->
  Dsf_graph.Graph.t ->
  ('s, 'm) Sim.protocol ->
  's array * Sim.stats
(** Convenience wiring: instantiate the plan (default {!empty}), harden
    the protocol, run it under the faults with the {!quiescent} halt, and
    unwrap the inner final states.  The stats are the {e hardened} run's
    (packet traffic, drops, retransmissions); compare with the lossless
    run's stats to measure the overhead.  [telemetry] profiles the run —
    fault counters included — under a ["hardened"] span. *)
