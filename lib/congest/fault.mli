(** Deterministic fault injection and a self-healing protocol combinator.

    This module answers "what happens when the CONGEST network misbehaves"
    in two pieces:

    - {b Plans}: a {!plan} is a pure, seeded description of faults —
      per-message drop/duplication probabilities, per-round link outages,
      node crash-and-restart windows.  {!instantiate} compiles a plan into
      the callback record {!Sim.faults} that {!Sim.run}'s [?faults]
      argument consumes.  Decisions are a stateless PRF of
      [(seed, round, src, dst)], so a plan is bit-reproducible and
      independent of send order — the same plan on the same run always
      kills the same messages.

    - {b Hardening}: {!harden} wraps any protocol in a reliable link layer
      (per-neighbor sequence numbers, cumulative acks, go-back-N
      retransmission with bounded timeout and capped exponential backoff,
      duplicate suppression) plus an alpha-synchronizer: a node executes
      its inner round [r] only after every neighbor has closed round [r]
      with a [Fin] marker, and the inner inbox is rebuilt exactly as the
      lossless engines deliver it (senders ascending, send order within a
      sender).  Consequently, under any {!maskable} plan the hardened
      protocol reaches the {e same final states} as the unhardened
      protocol on a lossless network — timing-sensitive protocols (e.g.
      {!Bfs}'s first-arrival parent choice) included.  The chaos suite
      ([test/test_chaos.ml]) enforces this differentially.

    {b What is maskable.}  Drops (probability < 1) and duplications are
    healed by retransmission and sequence numbers.  {e Finite} link-down
    windows are healed the same way: the backoff caps at [rto_cap], so
    the sender keeps probing until the link comes back (an infinite
    outage is indistinguishable from a partitioned network and cannot be
    masked by anyone).  Crash-and-restart is masked {e iff} the protocol
    supplies a {!recoverable} contract: the wrapper then checkpoints the
    whole hardened state (inner state + link-layer windows) to per-node
    stable storage after every step, a restarted node resumes from its
    checkpoint instead of a fresh [init], and the go-back-N machinery
    retransmits from the last acknowledged sequence number on both sides
    of every incident link — a crash window thus degrades into a finite
    all-incident-links outage plus some lost in-flight packets, which the
    reliable layer already rides out.  {!maskable} classifies a plan
    accordingly; {!drop_only} remains as the historical, strictly
    narrower class.  Byzantine behavior (corrupted or forged messages) is
    outside the model entirely.

    {b Determinism argument.}  The inner execution is driven only by the
    per-link item streams, which sequence numbers make loss-, duplication-
    and reordering-proof; a restore replays the node from a
    stream-consistent prefix (the checkpoint is written after every step,
    i.e. between inner rounds).  Hence every node steps through exactly
    the lossless sequence of inner states, and the final inner states —
    and any halt predicate evaluated on them — are bit-identical to the
    fault-free run.  The end-to-end chaos differential ([det_dsf] under a
    seeded {!chaos_plan}, both engines, jobs 1 and 4) pins this.

    {b Scope of the guarantee.}  The inner protocol must (a) quiesce on a
    lossless network and (b) satisfy the sparse-wake no-op contract of
    {!Sim} (stepping a done node with an empty inbox is a no-op) — all the
    repo's protocols qualify.

    {b Termination.}  A hardened network never goes globally silent (Fin
    markers and timers keep marching), so a hardened run must be stopped
    by the omniscient {!quiescent} halt — virtual quiescence: every inner
    state done, no unacked payload, no unconsumed payload.  That is the
    repo's usual omniscient-halt convention ({!Sim.run}'s [?halt]); a
    real deployment would detect it with an O(D) termination-detection
    wave, which callers should charge to their ledger.
    {!run_hardened} and {!sim_run} wire the halt (and the plan) for
    you. *)

type plan = {
  seed : int;
  drop : float;  (** per-message drop probability, in [0, 1) *)
  duplicate : float;  (** per-message duplication probability, in [0, 1] *)
  link_down : (int * int * int * int) list;
      (** [(u, v, first, last)]: both directions of edge u-v drop
          everything in rounds [first..last] (inclusive) *)
  crashes : (int * int * int) list;
      (** [(node, crash, restart)]: the node is down in rounds
          [crash..restart-1]; on round [restart] it re-inits — from its
          checkpoint when the run is hardened with a {!recoverable}
          contract, from scratch otherwise *)
}

val empty : plan
(** No faults at all.  [Sim.run ?faults:(Some (instantiate empty))] is
    bit-identical to [Sim.run] without faults (the differential suite
    checks this). *)

val plan :
  ?drop:float ->
  ?duplicate:float ->
  ?link_down:(int * int * int * int) list ->
  ?crashes:(int * int * int) list ->
  seed:int ->
  unit ->
  plan
(** Validating constructor; all fault classes default to "off". *)

val is_empty : plan -> bool

val maskable : ?with_recovery:bool -> plan -> bool
(** The class of plans {!harden} fully masks: drops, duplications and
    finite link outages always; crash-and-restart additionally requires
    running with a {!recoverable} contract ([~with_recovery:true]).
    Every constructible plan is maskable with recovery (the {!plan}
    validator already forbids drop probability 1 and infinite windows). *)

val drop_only : plan -> bool
(** Deprecated, strictly narrower predecessor of {!maskable}: no crashes
    {e and} no link outages.  Kept for callers that want the
    conservative class masked by PR-3-era hardening; new code should use
    [maskable ~with_recovery:...].  Every use is flagged by dsf-lint's
    [deprecated-fault-alias] rule (suppressible with
    [[@lint.allow "deprecated-fault-alias"]] where the historical
    semantics are genuinely wanted). *)

val instantiate : plan -> Sim.faults
(** Compile the plan into the engine's callback record.  Decisions are
    stateless, but use a fresh instance per run anyway (the record is the
    unit of fault configuration a run consumes). *)

val chaos_plan : seed:int -> Dsf_graph.Graph.t -> plan
(** A ready-made maskable stress plan for [g], deterministic in [seed]:
    5% drops, 2% duplications, plus a few finite link-down windows on
    real edges and a few crash-and-restart windows, counts scaling gently
    with n.  Always satisfies [maskable ~with_recovery:true]; used by the
    CLI's [--chaos SEED], the chaos soak in [bin/ci.sh], and the
    end-to-end differential suites. *)

(** {2 Hardening} *)

type 'm item = Payload of { vround : int; body : 'm } | Fin of { vround : int }

type 'm packet = Pkt of { seq : int; item : 'm item } | Ack of { upto : int }
(** The wire format of a hardened protocol: sequenced stream items
    (payloads tagged with their virtual round, plus round-closing [Fin]
    markers) and cumulative acknowledgements. *)

type ('s, 'm) hstate
(** Hardened per-node state: the inner ['s] plus the link-layer windows. *)

val inner : ('s, 'm) hstate -> 's
(** The wrapped protocol's state (final inner states after a run). *)

val retransmissions_of : ('s, 'm) hstate array -> int
(** Total packets retransmitted across all nodes.  The hardened runners
    ({!run_hardened}, {!sim_run}) fold this into [stats.retransmissions];
    the engine-level counter in {!Sim.faults} is no longer bumped from
    inside [step] (a global per-step bump is not domain-safe at
    [jobs > 1]). *)

type recovery_stats = {
  restores : int;  (** checkpoint restores (crash-restarts survived) *)
  recovery_rounds : int;
      (** physical rounds restarted nodes spent resynchronizing (after a
          restore, before their first inner round executed) *)
  checkpoint_bits : int;
      (** total bits written to stable storage (write-through: one full
          image per node per step) *)
}

val recovery_of : ('s, 'm) hstate array -> recovery_stats
(** Aggregate recovery work across all nodes of a hardened run (all zeros
    when the run was hardened without a {!recoverable} contract). *)

type 's recoverable = {
  snapshot : 's -> 's;
      (** Deep copy of the inner state — everything a restarted node needs
          to resume.  [Fun.id] iff the state is purely immutable; a state
          holding mutable structure (Hashtbl, Queue, arrays, union-find)
          must copy it, or later in-place mutation corrupts the stored
          image.  Must not swallow exceptions: a failing snapshot is a
          protocol bug, not a fault to mask (dsf-lint's catch-all rule
          applies). *)
  state_bits : 's -> int;
      (** Stable-storage footprint of the inner state, for checkpoint
          accounting only (never affects execution). *)
}

val immutable : ?state_bits:('s -> int) -> unit -> 's recoverable
(** The contract for protocols whose per-node state is an immutable value:
    [snapshot] is [Fun.id]; [state_bits] defaults to one word (63). *)

val harden :
  ?rto:int ->
  ?rto_cap:int ->
  ?recovery:'s recoverable ->
  ('s, 'm) Sim.protocol ->
  (('s, 'm) hstate, 'm packet) Sim.protocol
(** Wrap a protocol with the reliable link layer + synchronizer.  [rto]
    (default 3) is the initial per-link retransmit timeout in rounds —
    it must cover the 2-round send/ack latency — doubling on every
    timeout up to [rto_cap] (default 32) and resetting on ack progress.

    [recovery] switches on checkpointed crash recovery: the wrapper
    writes a deep copy of the whole hardened state to per-node stable
    storage after every step, and a node the engine re-inits (crash
    restart) resumes from its checkpoint instead of [Sim.protocol.init].
    A hardened protocol with recovery owns its stable storage and is
    therefore {b single-run}: build a fresh one per run (as {!sim_run}
    and {!run_hardened} do).

    The result never goes silent on its own: run it with the
    {!quiescent} halt (or use {!run_hardened} / {!sim_run}). *)

val quiescent : ('s, 'm) Sim.protocol -> ('s, 'm) hstate array -> bool
(** Virtual quiescence of a hardened run of [proto] — the halt predicate:
    every node's inner state is done, no payload is unacknowledged, no
    delivered payload is unconsumed.  When it fires, the inner states are
    exactly the lossless final states. *)

val run_hardened :
  ?max_rounds:int ->
  ?rto:int ->
  ?rto_cap:int ->
  ?observer:Sim.observer ->
  ?telemetry:Telemetry.t ->
  ?plan:plan ->
  ?recovery:'s recoverable ->
  Dsf_graph.Graph.t ->
  ('s, 'm) Sim.protocol ->
  's array * Sim.stats
(** Convenience wiring: instantiate the plan (default {!empty}), harden
    the protocol (with [recovery] when given), run it under the faults
    with the {!quiescent} halt, and unwrap the inner final states.  The
    stats are the {e hardened} run's (packet traffic, drops,
    retransmissions); compare with the lossless run's stats to measure
    the overhead.  [telemetry] profiles the run — fault counters,
    retransmissions, and [fault/recovery_rounds] / [fault/checkpoint_bits]
    ledger attributions included — under a ["hardened"] span. *)

(** {2 Chaos runs: hardened drop-in for [Sim.run]} *)

type chaos = { cplan : plan; crto : int; crto_cap : int }
(** A plan plus the reliable-layer timer configuration — everything a
    subroutine needs to run hardened, bundled so one [?chaos] argument
    threads through a whole solve ({!Solver.solve_ic} → {!Det_dsf.run} →
    every simulated primitive). *)

val chaos : ?rto:int -> ?rto_cap:int -> plan -> chaos
(** Bundle a plan with timer settings (defaults: rto 3, cap 32). *)

val sim_run :
  ?max_rounds:int ->
  ?halt:('s array -> bool) ->
  ?observer:Sim.observer ->
  ?faults:Sim.faults ->
  ?telemetry:Telemetry.t ->
  ?flat:bool ->
  ?jobs:int ->
  ?chaos:chaos ->
  ?recovery:'s recoverable ->
  Dsf_graph.Graph.t ->
  ('s, 'm) Sim.protocol ->
  's array * Sim.stats
(** The hardened drop-in for {!Sim.run}.  Without [?chaos] it {e is}
    {!Sim.run} (same arguments forwarded verbatim — zero overhead on the
    fault-free path).  With [?chaos] it instantiates the plan, hardens
    the protocol (with [recovery] when given), runs it on the requested
    engine ([?flat]/[?jobs] — the hardened protocol goes through the
    boxed adapter on the flat engine), and halts on {!quiescent} {e or}
    the caller's [halt] evaluated on the inner state vector each physical
    round — so an omniscient early stop (e.g. [Pipeline]'s
    [stop_at_root]) fires on exactly the same inner configuration as on
    the lossless run.  Final inner states are unwrapped;
    [stats.retransmissions] is folded from the per-node counters; the
    run lands under a ["hardened"] telemetry span with recovery
    attribution as in {!run_hardened}.  [?faults] and [?chaos] are
    mutually exclusive ([Invalid_argument]). *)
