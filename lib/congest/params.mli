(** Distributed estimation of the global graph parameters the algorithms
    branch on — the machinery of the paper's footnote 2: "compute n by
    convergecast, then run Bellman-Ford until stabilization or sqrt(n)
    iterations have elapsed, whichever happens first".

    All routines genuinely simulate; round counts come from the runs. *)

val count_nodes :
  ?observer:Sim.observer ->
  ?telemetry:Telemetry.t ->
  Dsf_graph.Graph.t ->
  int * int
(** [n] by BFS-tree convergecast; returns (n, simulated rounds). *)

val diameter_upper_bound :
  ?observer:Sim.observer ->
  ?telemetry:Telemetry.t ->
  Dsf_graph.Graph.t ->
  int * int
(** 2-approximation of D: twice the BFS eccentricity of the max-id root;
    returns (bound, simulated rounds). *)

val estimate_s :
  ?observer:Sim.observer ->
  ?telemetry:Telemetry.t ->
  cap:int ->
  Dsf_graph.Graph.t ->
  [ `Stabilized of int | `Exceeded ] * int
(** Run single-source Bellman-Ford from the max-id root until it
    stabilizes or [cap] rounds elapse.  [`Stabilized r] reports the
    stabilization round — a lower bound on (and in practice close to) the
    shortest-path diameter [s]; [`Exceeded] means s > cap, which is all
    the s-vs-sqrt(n) regime decision needs.  Second component: simulated
    rounds spent (at most cap + O(D) for detection). *)

val regime :
  ?observer:Sim.observer ->
  ?telemetry:Telemetry.t ->
  Dsf_graph.Graph.t ->
  [ `Small_s of int | `Large_s ] * int
(** The Section 5 regime test: [`Small_s s] iff s stabilized within
    ceil(sqrt n) rounds.  Returns total simulated rounds (n-count + BF). *)
