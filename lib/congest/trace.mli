(** Per-run communication profiles, built on {!Sim.set_observer}.

    A trace records, for everything simulated inside its scope, the total
    messages and bits per (src, dst) directed edge and overall — useful for
    congestion analysis (which edges are hot?), for the lower-bound
    experiments, and for the round-profile ablations. *)

type t

val record : (unit -> 'a) -> 'a * t
(** Run the thunk with recording enabled (composes with an already
    installed observer: both see the traffic). *)

val messages : t -> int
val bits : t -> int

val edge_bits : t -> (int * int, int) Hashtbl.t
(** Directed (src, dst) -> total bits. *)

val hottest_edges : t -> int -> ((int * int) * int) list
(** The [n] directed edges carrying the most bits, descending. *)

val bits_between : t -> src:int -> dst:int -> int
(** Bits sent from [src] to [dst] (one direction). *)

val pp_summary : Format.formatter -> t -> unit

val pp_postmortem : Format.formatter -> Sim.abort -> unit
(** Full dump of a {!Sim.Round_limit} post-mortem: the abort header,
    per-sender message totals over the retained window (the eternal
    retransmitter tops the list), then the raw round-by-round traffic,
    oldest round first.  Complements the compact {!Sim.pp_abort}. *)
