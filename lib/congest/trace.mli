(** Per-run communication profiles.

    A trace records, for everything simulated into it, the total messages
    and bits per (src, dst) directed edge and overall — useful for
    congestion analysis (which edges are hot?), for the lower-bound
    experiments, and for the round-profile ablations.

    The domain-safe way to fill a trace is {!create} + {!observer},
    passing the observer to the runs being measured through the per-run
    [?observer] parameter (every simulated entry point threads it).
    {!record} remains as a single-domain convenience built on the
    deprecated global {!Sim.with_observer} shim. *)

type t

val create : unit -> t
(** A fresh, empty trace. *)

val observer : t -> Sim.observer
(** The accumulating tap for a trace: pass [~observer:(observer t)] to
    {!Sim.run} or any solver entry point.  Per-run and domain-safe — each
    concurrent trial can own its own trace. *)

val record : (unit -> 'a) -> 'a * t
(** Run the thunk with recording enabled (composes with an already
    installed observer: both see the traffic).  Single-domain only: this
    installs a process-wide observer via the deprecated
    {!Sim.with_observer} shim for the thunk's duration — never use it
    inside a {!Dsf_util.Pool} fan-out; use {!create} + {!observer}. *)

val messages : t -> int
val bits : t -> int

val edge_bits : t -> (int * int, int) Hashtbl.t
(** Directed (src, dst) -> total bits. *)

val hottest_edges : t -> int -> ((int * int) * int) list
(** The [n] directed edges carrying the most bits, descending; ties
    break on ascending (src, dst) so the ranking is deterministic. *)

val bits_between : t -> src:int -> dst:int -> int
(** Bits sent from [src] to [dst] (one direction). *)

val pp_summary : Format.formatter -> t -> unit

val pp_postmortem : ?recorder:Recorder.t -> Format.formatter -> Sim.abort -> unit
(** Full dump of a {!Sim.Round_limit} post-mortem: the abort header,
    per-sender message totals over the retained window (the eternal
    retransmitter tops the list), then the raw round-by-round traffic,
    oldest round first.  Complements the compact {!Sim.pp_abort}.
    [?recorder] — the recorder the aborted run was writing, if any —
    appends the recorder's last 64 events (steps, sends with fates, crash
    windows, span boundaries) as a causal tail after the traffic dump. *)
