(* Span-based phase profiler + round-level engine metrics + trace sinks.

   A [Telemetry.t] owns three kinds of state:

   - a {b span tree}: [span t "voronoi" (fun () -> ...)] opens a nested
     phase; everything the engine ({!Sim.run}'s [?telemetry] hook) and the
     round {!Ledger} ({!attach_ledger}) report while the thunk runs is
     attributed to that span.  Same-named siblings merge into one node
     (with a [count]), so a loop of phases profiles as one aggregated
     entry while the event log below still records each occurrence;

   - an {b event log}: one entry per span occurrence (begin time, duration,
     self-attributed rounds/bits), which the JSONL and Chrome
     [trace_event] sinks replay;

   - a {b metrics registry} ({!Dsf_util.Metrics}): deterministic counters
     and histograms of the engine's per-round series (active-set size,
     delivered messages, bits per round, wake-hook hits).

   Attribution is to the {e innermost} open span ("self" numbers); the
   console sink rolls children up into their parents, so the tree reads
   inclusively.  Wall-clock reads are centralized here ([now_ns]; dsf-lint
   forbids them elsewhere in lib/) and injectable ([?clock]) so tests and
   pooled trials stay deterministic.

   Domain-safety: a [t] is single-domain mutable state.  Pooled fan-outs
   give each trial its own {!fork} (created sequentially before the
   fan-out) and {!merge_into} the parent in trial order afterwards —
   bit-identical to the single-domain run for any jobs value, the same
   discipline as per-trial ledgers. *)

module Metrics = Dsf_util.Metrics
module Histogram = Dsf_util.Histogram

(* The one sanctioned wall-clock read in lib/ (see the dsf-lint `nondet'
   rule): every other module takes its time from a telemetry clock. *)
let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

type span = {
  name : string;
  mutable count : int;  (* occurrences (same-named siblings merge) *)
  mutable wall_ns : int64;
  mutable rounds : int;
  mutable messages : int;
  mutable bits : int;
  mutable max_edge_round_bits : int;
  mutable budget_violations : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable retransmissions : int;
  mutable ledger_simulated : int;
  mutable ledger_charged : int;
  mutable children : span list;  (* first-opened first *)
}

type event = {
  ev_name : string;
  ev_tid : int;
  ev_start_ns : int64;  (* relative to the telemetry epoch *)
  ev_dur_ns : int64;
  ev_rounds : int;  (* self-attributed during this occurrence *)
  ev_bits : int;
}

type t = {
  clock : unit -> int64;
  epoch : int64;
  tid : int;
  next_tid : int ref;  (* shared with forks; bump sequentially only *)
  root : span;
  mutable stack : span list;  (* innermost first; root always last *)
  mutable events : event list;  (* newest first *)
  metrics : Metrics.t;
  recorder : Recorder.t option;  (* flight recorder riding along, if any *)
}

let make_span name =
  {
    name;
    count = 0;
    wall_ns = 0L;
    rounds = 0;
    messages = 0;
    bits = 0;
    max_edge_round_bits = 0;
    budget_violations = 0;
    dropped = 0;
    duplicated = 0;
    retransmissions = 0;
    ledger_simulated = 0;
    ledger_charged = 0;
    children = [];
  }

let create ?clock ?recorder () =
  let clock = match clock with Some c -> c | None -> now_ns in
  let root = make_span "total" in
  root.count <- 1;
  {
    clock;
    epoch = clock ();
    tid = 0;
    next_tid = ref 1;
    root;
    stack = [ root ];
    events = [];
    metrics = Metrics.create ();
    recorder;
  }

let recorder t = t.recorder

let root t = t.root
let root_spans t = t.root.children
let metrics t = t.metrics

let cur t = match t.stack with s :: _ -> s | [] -> t.root

let find t path =
  let rec go s = function
    | [] -> Some s
    | name :: rest -> (
        match List.find_opt (fun c -> c.name = name) s.children with
        | Some c -> go c rest
        | None -> None)
  in
  match path with [] -> None | _ -> go t.root path

(* ------------------------------------------------------------- spans *)

let span t name f =
  let parent = cur t in
  let s =
    match List.find_opt (fun c -> c.name = name) parent.children with
    | Some s -> s
    | None ->
        let s = make_span name in
        parent.children <- parent.children @ [ s ];
        s
  in
  s.count <- s.count + 1;
  t.stack <- s :: t.stack;
  (* Cross-link into the flight recorder: span boundaries carry only the
     name (interned in the log), never the wall time, so recorded streams
     stay byte-deterministic. *)
  (match t.recorder with Some r -> Recorder.span_open r name | None -> ());
  let t0 = t.clock () in
  let rounds0 = s.rounds and bits0 = s.bits in
  Fun.protect
    ~finally:(fun () ->
      (match t.recorder with
      | Some r -> Recorder.span_close r name
      | None -> ());
      let dur = Int64.sub (t.clock ()) t0 in
      s.wall_ns <- Int64.add s.wall_ns dur;
      (match t.stack with _ :: rest -> t.stack <- rest | [] -> ());
      t.events <-
        {
          ev_name = name;
          ev_tid = t.tid;
          ev_start_ns = Int64.sub t0 t.epoch;
          ev_dur_ns = dur;
          ev_rounds = s.rounds - rounds0;
          ev_bits = s.bits - bits0;
        }
        :: t.events)
    f

let span_opt tel name f =
  match tel with None -> f () | Some t -> span t name f

(* ------------------------------------------------- engine attribution *)

let sim_round t ~stepped ~delivered ~bits ~wake_hits =
  Metrics.incr t.metrics "sim/rounds" 1;
  if wake_hits > 0 then Metrics.incr t.metrics "sim/wake_hits" wake_hits;
  Metrics.observe t.metrics "sim/stepped_per_round" stepped;
  Metrics.observe t.metrics "sim/delivered_per_round" delivered;
  Metrics.observe t.metrics "sim/bits_per_round" bits

let sim_run t ~rounds ~messages ~bits ~max_edge_round_bits ~budget_violations
    ~dropped ~duplicated ~retransmissions =
  Metrics.incr t.metrics "sim/runs" 1;
  let s = cur t in
  s.rounds <- s.rounds + rounds;
  s.messages <- s.messages + messages;
  s.bits <- s.bits + bits;
  if max_edge_round_bits > s.max_edge_round_bits then
    s.max_edge_round_bits <- max_edge_round_bits;
  s.budget_violations <- s.budget_violations + budget_violations;
  s.dropped <- s.dropped + dropped;
  s.duplicated <- s.duplicated + duplicated;
  s.retransmissions <- s.retransmissions + retransmissions

let attach_ledger t ledger =
  Ledger.set_hook ledger
    (Some
       (fun kind _label rounds ->
         let s = cur t in
         match kind with
         | Ledger.Simulated -> s.ledger_simulated <- s.ledger_simulated + rounds
         | Ledger.Charged -> s.ledger_charged <- s.ledger_charged + rounds))

(* ------------------------------------------------------- fork / merge *)

let fork t =
  let tid = !(t.next_tid) in
  t.next_tid := tid + 1;
  let root = make_span "total" in
  root.count <- 1;
  {
    clock = t.clock;
    epoch = t.epoch;
    tid;
    next_tid = t.next_tid;
    root;
    stack = [ root ];
    events = [];
    metrics = Metrics.create ();
    (* A recorder is single-writer; pooled trials running concurrently
       must not share it, so forks detach.  Record single-run flat solves
       (which parallelize *inside* the engine) instead. *)
    recorder = None;
  }

let rec copy_span s =
  {
    s with
    children = List.map copy_span s.children;
  }

let rec graft parent s =
  match List.find_opt (fun c -> c.name = s.name) parent.children with
  | None -> parent.children <- parent.children @ [ copy_span s ]
  | Some c ->
      c.count <- c.count + s.count;
      c.wall_ns <- Int64.add c.wall_ns s.wall_ns;
      c.rounds <- c.rounds + s.rounds;
      c.messages <- c.messages + s.messages;
      c.bits <- c.bits + s.bits;
      if s.max_edge_round_bits > c.max_edge_round_bits then
        c.max_edge_round_bits <- s.max_edge_round_bits;
      c.budget_violations <- c.budget_violations + s.budget_violations;
      c.dropped <- c.dropped + s.dropped;
      c.duplicated <- c.duplicated + s.duplicated;
      c.retransmissions <- c.retransmissions + s.retransmissions;
      c.ledger_simulated <- c.ledger_simulated + s.ledger_simulated;
      c.ledger_charged <- c.ledger_charged + s.ledger_charged;
      List.iter (graft c) s.children

let merge_into ~dst child =
  let target = cur dst in
  List.iter (graft target) child.root.children;
  dst.events <- child.events @ dst.events;
  Metrics.merge_into ~dst:dst.metrics child.metrics

(* -------------------------------------------------------------- sinks *)

(* Inclusive rollup for the console tree: self plus all descendants. *)
type incl = {
  i_rounds : int;
  i_messages : int;
  i_bits : int;
  i_merb : int;
  i_viol : int;
  i_dropped : int;
  i_dup : int;
  i_retrans : int;
  i_lsim : int;
  i_lchg : int;
}

let rec inclusive s =
  List.fold_left
    (fun acc c ->
      let ci = inclusive c in
      {
        i_rounds = acc.i_rounds + ci.i_rounds;
        i_messages = acc.i_messages + ci.i_messages;
        i_bits = acc.i_bits + ci.i_bits;
        i_merb = max acc.i_merb ci.i_merb;
        i_viol = acc.i_viol + ci.i_viol;
        i_dropped = acc.i_dropped + ci.i_dropped;
        i_dup = acc.i_dup + ci.i_dup;
        i_retrans = acc.i_retrans + ci.i_retrans;
        i_lsim = acc.i_lsim + ci.i_lsim;
        i_lchg = acc.i_lchg + ci.i_lchg;
      })
    {
      i_rounds = s.rounds;
      i_messages = s.messages;
      i_bits = s.bits;
      i_merb = s.max_edge_round_bits;
      i_viol = s.budget_violations;
      i_dropped = s.dropped;
      i_dup = s.duplicated;
      i_retrans = s.retransmissions;
      i_lsim = s.ledger_simulated;
      i_lchg = s.ledger_charged;
    }
    s.children

let ms_of_ns ns = Int64.to_float ns /. 1e6

let pp ppf t =
  Format.fprintf ppf "@[<v>span tree (sim metrics inclusive of children):@,";
  let rec go depth s =
    let i = inclusive s in
    let pad = String.make (2 * depth) ' ' in
    Format.fprintf ppf "%s%-*s count=%-3d wall=%.3fms rounds=%d msgs=%d bits=%d"
      pad
      (max 1 (36 - (2 * depth)))
      s.name s.count (ms_of_ns s.wall_ns) i.i_rounds i.i_messages i.i_bits;
    if i.i_merb > 0 then Format.fprintf ppf " merb=%d" i.i_merb;
    if i.i_viol > 0 then Format.fprintf ppf " violations=%d" i.i_viol;
    if i.i_lsim > 0 || i.i_lchg > 0 then
      Format.fprintf ppf " ledger=%ds+%dc" i.i_lsim i.i_lchg;
    if i.i_dropped > 0 || i.i_dup > 0 || i.i_retrans > 0 then
      Format.fprintf ppf " dropped=%d duplicated=%d retransmissions=%d"
        i.i_dropped i.i_dup i.i_retrans;
    Format.fprintf ppf "@,";
    List.iter (go (depth + 1)) s.children
  in
  (match t.root.children with
  | [] -> Format.fprintf ppf "  (no spans recorded)@,"
  | cs -> List.iter (go 1) cs);
  Format.fprintf ppf "metrics:@,  @[<v>%a@]@]" Metrics.pp t.metrics

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let chronological_events t = List.rev t.events

let rec flat_spans prefix s =
  let path = if prefix = "" then s.name else prefix ^ "/" ^ s.name in
  (path, s) :: List.concat_map (flat_spans path) s.children

let profile_rows t = List.concat_map (flat_spans "") t.root.children

let to_jsonl_string t =
  let b = Buffer.create 4096 in
  let events = chronological_events t in
  Buffer.add_string b
    (Printf.sprintf
       "{\"type\": \"meta\", \"schema\": \"dsf-telemetry/1\", \"events\": %d}\n"
       (List.length events));
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"type\": \"span\", \"name\": \"%s\", \"tid\": %d, \"start_ns\": \
            %Ld, \"dur_ns\": %Ld, \"rounds\": %d, \"bits\": %d}\n"
           (json_escape e.ev_name) e.ev_tid e.ev_start_ns e.ev_dur_ns
           e.ev_rounds e.ev_bits))
    events;
  List.iter
    (fun (path, s) ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"type\": \"profile\", \"path\": \"%s\", \"count\": %d, \
            \"wall_ns\": %Ld, \"rounds\": %d, \"messages\": %d, \"bits\": %d, \
            \"max_edge_round_bits\": %d, \"budget_violations\": %d, \
            \"dropped\": %d, \"duplicated\": %d, \"retransmissions\": %d, \
            \"ledger_simulated\": %d, \"ledger_charged\": %d}\n"
           (json_escape path) s.count s.wall_ns s.rounds s.messages s.bits
           s.max_edge_round_bits s.budget_violations s.dropped s.duplicated
           s.retransmissions s.ledger_simulated s.ledger_charged))
    (profile_rows t);
  List.iter
    (fun (name, v) ->
      match v with
      | `Counter c ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"type\": \"counter\", \"name\": \"%s\", \"value\": %d}\n"
               (json_escape name) c)
      | `Histogram h ->
          let buckets =
            Histogram.buckets h
            |> List.map (fun (i, c) -> Printf.sprintf "[%d, %d]" i c)
            |> String.concat ", "
          in
          Buffer.add_string b
            (Printf.sprintf
               "{\"type\": \"histogram\", \"name\": \"%s\", \"count\": %d, \
                \"sum\": %d, \"min\": %d, \"max\": %d, \"buckets\": [%s]}\n"
               (json_escape name) (Histogram.count h) (Histogram.sum h)
               (Histogram.min_value h) (Histogram.max_value h) buckets))
    (Metrics.items t.metrics);
  Buffer.contents b

let to_chrome_string t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  Buffer.add_string b
    "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
     \"args\": {\"name\": \"dsf\"}}";
  for tid = 0 to !(t.next_tid) - 1 do
    Buffer.add_string b
      (Printf.sprintf
         ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": \
          %d, \"args\": {\"name\": \"%s\"}}"
         tid
         (if tid = 0 then "main" else Printf.sprintf "trial %d" tid))
  done;
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf
           ",\n{\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, \"tid\": %d, \
            \"ts\": %.3f, \"dur\": %.3f, \"args\": {\"rounds\": %d, \"bits\": \
            %d}}"
           (json_escape e.ev_name) e.ev_tid
           (Int64.to_float e.ev_start_ns /. 1e3)
           (Int64.to_float e.ev_dur_ns /. 1e3)
           e.ev_rounds e.ev_bits))
    (chronological_events t);
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

type sink_format = Console | Jsonl | Chrome

let sink_format_of_string = function
  | "console" -> Ok Console
  | "jsonl" -> Ok Jsonl
  | "chrome" -> Ok Chrome
  | other ->
      Error
        (Printf.sprintf
           "unknown trace format %S (expected console | jsonl | chrome)" other)

let write_file t ~format path =
  let write oc =
    match format with
    | Console ->
        let ppf = Format.formatter_of_out_channel oc in
        Format.fprintf ppf "%a@." pp t
    | Jsonl -> output_string oc (to_jsonl_string t)
    | Chrome -> output_string oc (to_chrome_string t)
  in
  if path = "-" then write stdout
  else
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc)
