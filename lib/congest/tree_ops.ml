module ISet = Set.Make (Int)

type 'a up_state = {
  pending : 'a list;  (** queue of items still to forward to the parent *)
  received : 'a list;  (** root only: arrival order, reversed *)
}

(* Native flat-engine state for {!upcast}: the forward queue is an actual
   Queue (O(1) push/pop instead of the classic list append per step) and
   the root's arrival log is mutated in place, so a step allocates only
   the queue cells of newly arrived items.  The semantics — existing
   pending items first, then arrivals in inbox order, one item to the
   parent per round — are exactly the classic protocol's. *)
type 'a up_fstate = { uq : 'a Queue.t; mutable u_recvd : 'a list }

let upcast_flat ~(tree : Bfs.tree) ~items ~bits :
    ('a up_fstate, 'a) Sim.flat_protocol =
  {
    fp_init =
      (fun view ->
        let v = view.Sim.node in
        let mine = items v in
        let uq = Queue.create () in
        if v = tree.root then { uq; u_recvd = List.rev mine }
        else begin
          List.iter (fun it -> Queue.add it uq) mine;
          { uq; u_recvd = [] }
        end);
    fp_step =
      (fun view ~round:_ st ~inbox ~emit ->
        let v = view.Sim.node in
        let k = Sim.inbox_len inbox in
        if v = tree.root then begin
          for i = 0 to k - 1 do
            st.u_recvd <- Sim.inbox_msg inbox i :: st.u_recvd
          done;
          st
        end
        else begin
          for i = 0 to k - 1 do
            Queue.add (Sim.inbox_msg inbox i) st.uq
          done;
          (match Queue.take_opt st.uq with
          | Some item -> emit ~dst:tree.parent.(v) item
          | None -> ());
          st
        end);
    fp_is_done = (fun st -> Queue.is_empty st.uq);
    fp_msg_bits = bits;
    fp_wake = Some Sim.never;
  }

let upcast ?observer ?faults ?telemetry ?flat ?jobs ?chaos g
    ~(tree : Bfs.tree) ~items ~bits =
  if Option.is_none chaos && flat = Some true then begin
    let states, stats =
      Telemetry.span_opt telemetry "upcast" (fun () ->
          Sim.run_flat ?observer ?faults ?telemetry ?jobs g
            (upcast_flat ~tree ~items ~bits))
    in
    List.rev states.(tree.root).u_recvd, stats
  end
  else begin
  let proto : ('a up_state, 'a) Sim.protocol =
    {
      init =
        (fun view ->
          let mine = items view.Sim.node in
          if view.Sim.node = tree.root then
            (* The root's own items need no transport. *)
            { pending = []; received = List.rev mine }
          else { pending = mine; received = [] });
      step =
        (fun view ~round:_ st ~inbox ->
          let v = view.Sim.node in
          let incoming = List.map snd inbox in
          if v = tree.root then
            { st with received = List.rev_append incoming st.received }, []
          else begin
            let pending = st.pending @ incoming in
            match pending with
            | [] -> { st with pending = [] }, []
            | item :: rest ->
                { st with pending = rest }, [ tree.parent.(v), item ]
          end);
      is_done = (fun st -> st.pending = []);
      msg_bits = bits;
      wake = Some Sim.never;
    }
  in
  let states, stats =
    Telemetry.span_opt telemetry "upcast" (fun () ->
        Fault.sim_run ?observer ?faults ?telemetry ?flat ?jobs ?chaos
          ~recovery:(Fault.immutable ()) g proto)
  in
  let root_state = states.(tree.root) in
  List.rev root_state.received, stats
  end

type ('a, 'b) dedup_state = {
  d_pending : 'a list;
  d_seen : ('b, 'a list) Hashtbl.t;  (** key -> distinct items kept *)
  d_received : 'a list;
}

let upcast_dedup ?observer ?faults ?telemetry ?flat ?jobs ?chaos
    ?(per_key = 1) g ~(tree : Bfs.tree) ~items ~key ~bits =
  (* Keep an item iff its key has fewer than [per_key] distinct items so
     far and the item itself is new. *)
  let admit seen it k =
    let kept = Option.value ~default:[] (Hashtbl.find_opt seen k) in
    if List.length kept >= per_key || List.mem it kept then false
    else begin
      Hashtbl.replace seen k (it :: kept);
      true
    end
  in
  let proto : (('a, 'b) dedup_state, 'a) Sim.protocol =
    {
      init =
        (fun view ->
          let seen = Hashtbl.create 8 in
          let mine =
            List.filter (fun it -> admit seen it (key it)) (items view.Sim.node)
          in
          if view.Sim.node = tree.root then
            { d_pending = []; d_seen = seen; d_received = List.rev mine }
          else { d_pending = mine; d_seen = seen; d_received = [] });
      step =
        (fun view ~round:_ st ~inbox ->
          let v = view.Sim.node in
          let fresh =
            List.filter_map
              (fun (_, it) ->
                if admit st.d_seen it (key it) then Some it else None)
              inbox
          in
          if v = tree.root then
            { st with d_received = List.rev_append fresh st.d_received }, []
          else begin
            match st.d_pending @ fresh with
            | [] -> { st with d_pending = [] }, []
            | item :: rest ->
                { st with d_pending = rest }, [ tree.parent.(v), item ]
          end);
      is_done = (fun st -> st.d_pending = []);
      msg_bits = bits;
      wake = Some Sim.never;
    }
  in
  let states, stats =
    Telemetry.span_opt telemetry "upcast_dedup" (fun () ->
        (* The per-node seen-table makes this inherently boxed; [~flat:true]
           still runs it on the flat engine through the adapter (the wake
           hook is physically [never], so sparse scheduling is preserved).
           The seen-table also makes the state mutable, so the recovery
           snapshot must copy it. *)
        Fault.sim_run ?observer ?faults ?telemetry ?flat ?jobs ?chaos
          ~recovery:
            {
              Fault.snapshot =
                (fun st -> { st with d_seen = Hashtbl.copy st.d_seen });
              state_bits = (fun st -> 63 * (1 + Hashtbl.length st.d_seen));
            }
          g proto)
  in
  let root_state = states.(tree.root) in
  List.rev root_state.d_received, stats

(* Sequential (non-pipelined) upcast: a best-case centralized schedule lets
   each item travel to the root alone; the next item departs only after the
   previous one arrived.  Rounds = sum of the holders' depths — the cost the
   pipelined versions avoid. *)
type 'a seq_state = {
  departures : (int * 'a) list;  (** (round, item) for this node, ascending *)
  s_received : 'a list;  (** root only, reversed *)
}

let upcast_sequential ?observer ?telemetry ?flat ?jobs g ~(tree : Bfs.tree)
    ~items ~bits =
  (* Precompute the departure schedule. *)
  let schedule = Hashtbl.create 16 in
  let clock = ref 0 in
  let root_items = ref [] in
  for v = 0 to Dsf_graph.Graph.n g - 1 do
    List.iter
      (fun it ->
        if v = tree.root then root_items := it :: !root_items
        else begin
          let prev = Option.value ~default:[] (Hashtbl.find_opt schedule v) in
          Hashtbl.replace schedule v ((!clock, it) :: prev);
          clock := !clock + tree.depth.(v)
        end)
      (items v)
  done;
  let proto : ('a seq_state, 'a) Sim.protocol =
    {
      init =
        (fun view ->
          let v = view.Sim.node in
          {
            departures =
              List.rev (Option.value ~default:[] (Hashtbl.find_opt schedule v));
            s_received = (if v = tree.root then !root_items else []);
          });
      step =
        (fun view ~round st ~inbox ->
          let v = view.Sim.node in
          if v = tree.root then
            { st with s_received = List.rev_append (List.map snd inbox) st.s_received },
            []
          else begin
            (* Forward anything received, plus any item scheduled now. *)
            let forward = List.map snd inbox in
            let due, later =
              List.partition (fun (r, _) -> r <= round) st.departures
            in
            let out =
              List.map (fun it -> tree.parent.(v), it) forward
              @ List.map (fun (_, it) -> tree.parent.(v), it) due
            in
            { st with departures = later }, out
          end);
      is_done = (fun st -> st.departures = []);
      msg_bits = bits;
      (* Scheduled departures keep the node not-done until they are sent, so
         progress-driven waking suffices even for this clock-driven variant. *)
      wake = Some Sim.never;
    }
  in
  let states, stats =
    Telemetry.span_opt telemetry "upcast_sequential" (fun () ->
        Sim.run ?observer ?telemetry ?flat ?jobs g proto)
  in
  List.rev states.(tree.root).s_received, stats

type 'a down_state = {
  to_send : 'a list;  (** items not yet forwarded to children *)
  got : 'a list;  (** all items seen, reversed *)
}

(* Native flat-engine state for {!broadcast}: forward queue plus in-place
   arrival log, mirroring [up_fstate].  One item leaves the queue per round
   whether or not the node has children, matching the classic protocol's
   drain behaviour (and hence its round count) exactly. *)
type 'a down_fstate = { dq : 'a Queue.t; mutable d_got : 'a list }

let broadcast_flat ~(tree : Bfs.tree) ~items ~bits :
    ('a down_fstate, 'a) Sim.flat_protocol =
  {
    fp_init =
      (fun view ->
        let dq = Queue.create () in
        if view.Sim.node = tree.root then begin
          List.iter (fun it -> Queue.add it dq) items;
          { dq; d_got = List.rev items }
        end
        else { dq; d_got = [] });
    fp_step =
      (fun view ~round:_ st ~inbox ~emit ->
        let v = view.Sim.node in
        let k = Sim.inbox_len inbox in
        for i = 0 to k - 1 do
          let it = Sim.inbox_msg inbox i in
          Queue.add it st.dq;
          st.d_got <- it :: st.d_got
        done;
        (match Queue.take_opt st.dq with
        | Some item -> List.iter (fun c -> emit ~dst:c item) tree.children.(v)
        | None -> ());
        st);
    fp_is_done = (fun st -> Queue.is_empty st.dq);
    fp_msg_bits = bits;
    fp_wake = Some Sim.never;
  }

let broadcast ?observer ?faults ?telemetry ?flat ?jobs ?chaos g
    ~(tree : Bfs.tree) ~items ~bits =
  if Option.is_none chaos && flat = Some true then begin
    let states, stats =
      Telemetry.span_opt telemetry "broadcast" (fun () ->
          Sim.run_flat ?observer ?faults ?telemetry ?jobs g
            (broadcast_flat ~tree ~items ~bits))
    in
    Array.map (fun st -> List.rev st.d_got) states, stats
  end
  else begin
  let proto : ('a down_state, 'a) Sim.protocol =
    {
      init =
        (fun view ->
          if view.Sim.node = tree.root then
            { to_send = items; got = List.rev items }
          else { to_send = []; got = [] });
      step =
        (fun view ~round:_ st ~inbox ->
          let v = view.Sim.node in
          let incoming = List.map snd inbox in
          let st =
            {
              to_send = st.to_send @ incoming;
              got = List.rev_append incoming st.got;
            }
          in
          match st.to_send with
          | [] -> st, []
          | item :: rest ->
              let outbox =
                List.map (fun c -> c, item) tree.children.(v)
              in
              { st with to_send = rest }, outbox);
      is_done = (fun st -> st.to_send = []);
      msg_bits = bits;
      wake = Some Sim.never;
    }
  in
  let states, stats =
    Telemetry.span_opt telemetry "broadcast" (fun () ->
        Fault.sim_run ?observer ?faults ?telemetry ?flat ?jobs ?chaos
          ~recovery:(Fault.immutable ()) g proto)
  in
  Array.map (fun st -> List.rev st.got) states, stats
  end

type 'a agg_state = {
  waiting : int;  (** children not yet heard from *)
  heard : ISet.t;  (** children already counted (duplicate suppression) *)
  acc : 'a;
  sent : bool;
}

(* Native flat-engine state for {!aggregate}.  The classic protocol uses a
   round-0 wake hook to kick off the leaves; here the completion test is
   [waiting = 0 && (sent || root)] instead, so a leaf starts not-done, fires
   its report on its round-0 step, and everything afterwards is mail-driven
   — which lets the port declare [wake = Some Sim.never] and ride the
   sparse active list.  Message schedule and quiescence round are identical
   to the classic protocol (the extra classic wake steps are no-ops). *)
type 'a agg_fstate = {
  mutable a_waiting : int;
  mutable a_heard : ISet.t;
  mutable a_acc : 'a;
  mutable a_sent : bool;
  a_root : bool;
}

let aggregate_flat ~(tree : Bfs.tree) ~value ~combine ~bits :
    ('a agg_fstate, 'a) Sim.flat_protocol =
  {
    fp_init =
      (fun view ->
        let v = view.Sim.node in
        {
          a_waiting = List.length tree.children.(v);
          a_heard = ISet.empty;
          a_acc = value v;
          a_sent = false;
          a_root = v = tree.root;
        });
    fp_step =
      (fun view ~round:_ st ~inbox ~emit ->
        let v = view.Sim.node in
        let k = Sim.inbox_len inbox in
        for i = 0 to k - 1 do
          (* Each child reports exactly once, so the sender id doubles as
             the report's sequence stamp: a repeat sender is a duplicated
             delivery and must not decrement the child count. *)
          let sender = Sim.inbox_src inbox i in
          if not (ISet.mem sender st.a_heard) then begin
            st.a_heard <- ISet.add sender st.a_heard;
            st.a_waiting <- st.a_waiting - 1;
            st.a_acc <- combine st.a_acc (Sim.inbox_msg inbox i)
          end
        done;
        if st.a_waiting = 0 && (not st.a_sent) && not st.a_root then begin
          st.a_sent <- true;
          emit ~dst:tree.parent.(v) st.a_acc
        end;
        st);
    fp_is_done = (fun st -> st.a_waiting = 0 && (st.a_sent || st.a_root));
    fp_msg_bits = bits;
    fp_wake = Some Sim.never;
  }

let aggregate ?observer ?faults ?telemetry ?flat ?jobs ?chaos g
    ~(tree : Bfs.tree) ~value ~combine ~bits =
  if Option.is_none chaos && flat = Some true then begin
    let states, stats =
      Telemetry.span_opt telemetry "aggregate" (fun () ->
          Sim.run_flat ?observer ?faults ?telemetry ?jobs g
            (aggregate_flat ~tree ~value ~combine ~bits))
    in
    states.(tree.root).a_acc, stats
  end
  else begin
  let proto : ('a agg_state, 'a) Sim.protocol =
    {
      init =
        (fun view ->
          let v = view.Sim.node in
          {
            waiting = List.length tree.children.(v);
            heard = ISet.empty;
            acc = value v;
            sent = false;
          });
      step =
        (fun view ~round:_ st ~inbox ->
          let v = view.Sim.node in
          (* Duplicate-tolerant child count: each child reports exactly
             once, so the sender id is the report's sequence stamp — a
             repeat sender is a duplicated delivery and is ignored.  On a
             lossless network no sender ever repeats, so the fold (and the
             combine order) is unchanged. *)
          let st =
            List.fold_left
              (fun st (sender, x) ->
                if ISet.mem sender st.heard then st
                else
                  {
                    st with
                    heard = ISet.add sender st.heard;
                    waiting = st.waiting - 1;
                    acc = combine st.acc x;
                  })
              st inbox
          in
          if st.waiting = 0 && (not st.sent) && v <> tree.root then
            { st with sent = true }, [ tree.parent.(v), st.acc ]
          else st, []);
      (* After any step, waiting = 0 implies the node already reported to its
         parent (the send fires in the same step that zeroes [waiting]), so
         [waiting = 0] alone is a sound completion test for root and
         non-root alike. *)
      is_done = (fun st -> st.waiting = 0);
      msg_bits = bits;
      (* Leaves start with [waiting = 0] (already "done") but must still fire
         their report in round 0; afterwards everything is mail-driven. *)
      wake = Some (fun _ ~round _ -> round = 0);
    }
  in
  let states, stats =
    Telemetry.span_opt telemetry "aggregate" (fun () ->
        Fault.sim_run ?observer ?faults ?telemetry ?flat ?jobs ?chaos
          ~recovery:(Fault.immutable ()) g proto)
  in
  states.(tree.root).acc, stats
  end

let count_nodes ?observer ?telemetry ?flat ?jobs ?chaos g ~tree =
  aggregate ?observer ?telemetry ?flat ?jobs ?chaos g ~tree
    ~value:(fun _ -> 1)
    ~combine:( + )
    ~bits:(fun x -> Dsf_util.Bitsize.int_bits (max 1 x))
