type 'a up_state = {
  pending : 'a list;  (** queue of items still to forward to the parent *)
  received : 'a list;  (** root only: arrival order, reversed *)
}

let upcast ?observer ?telemetry g ~(tree : Bfs.tree) ~items ~bits =
  let proto : ('a up_state, 'a) Sim.protocol =
    {
      init =
        (fun view ->
          let mine = items view.Sim.node in
          if view.Sim.node = tree.root then
            (* The root's own items need no transport. *)
            { pending = []; received = List.rev mine }
          else { pending = mine; received = [] });
      step =
        (fun view ~round:_ st ~inbox ->
          let v = view.Sim.node in
          let incoming = List.map snd inbox in
          if v = tree.root then
            { st with received = List.rev_append incoming st.received }, []
          else begin
            let pending = st.pending @ incoming in
            match pending with
            | [] -> { st with pending = [] }, []
            | item :: rest ->
                { st with pending = rest }, [ tree.parent.(v), item ]
          end);
      is_done = (fun st -> st.pending = []);
      msg_bits = bits;
      wake = Some Sim.never;
    }
  in
  let states, stats =
    Telemetry.span_opt telemetry "upcast" (fun () ->
        Sim.run ?observer ?telemetry g proto)
  in
  let root_state = states.(tree.root) in
  List.rev root_state.received, stats

type ('a, 'b) dedup_state = {
  d_pending : 'a list;
  d_seen : ('b, 'a list) Hashtbl.t;  (** key -> distinct items kept *)
  d_received : 'a list;
}

let upcast_dedup ?observer ?telemetry ?(per_key = 1) g ~(tree : Bfs.tree) ~items
    ~key ~bits =
  (* Keep an item iff its key has fewer than [per_key] distinct items so
     far and the item itself is new. *)
  let admit seen it k =
    let kept = Option.value ~default:[] (Hashtbl.find_opt seen k) in
    if List.length kept >= per_key || List.mem it kept then false
    else begin
      Hashtbl.replace seen k (it :: kept);
      true
    end
  in
  let proto : (('a, 'b) dedup_state, 'a) Sim.protocol =
    {
      init =
        (fun view ->
          let seen = Hashtbl.create 8 in
          let mine =
            List.filter (fun it -> admit seen it (key it)) (items view.Sim.node)
          in
          if view.Sim.node = tree.root then
            { d_pending = []; d_seen = seen; d_received = List.rev mine }
          else { d_pending = mine; d_seen = seen; d_received = [] });
      step =
        (fun view ~round:_ st ~inbox ->
          let v = view.Sim.node in
          let fresh =
            List.filter_map
              (fun (_, it) ->
                if admit st.d_seen it (key it) then Some it else None)
              inbox
          in
          if v = tree.root then
            { st with d_received = List.rev_append fresh st.d_received }, []
          else begin
            match st.d_pending @ fresh with
            | [] -> { st with d_pending = [] }, []
            | item :: rest ->
                { st with d_pending = rest }, [ tree.parent.(v), item ]
          end);
      is_done = (fun st -> st.d_pending = []);
      msg_bits = bits;
      wake = Some Sim.never;
    }
  in
  let states, stats =
    Telemetry.span_opt telemetry "upcast_dedup" (fun () ->
        Sim.run ?observer ?telemetry g proto)
  in
  let root_state = states.(tree.root) in
  List.rev root_state.d_received, stats

(* Sequential (non-pipelined) upcast: a best-case centralized schedule lets
   each item travel to the root alone; the next item departs only after the
   previous one arrived.  Rounds = sum of the holders' depths — the cost the
   pipelined versions avoid. *)
type 'a seq_state = {
  departures : (int * 'a) list;  (** (round, item) for this node, ascending *)
  s_received : 'a list;  (** root only, reversed *)
}

let upcast_sequential ?observer ?telemetry g ~(tree : Bfs.tree) ~items ~bits =
  (* Precompute the departure schedule. *)
  let schedule = Hashtbl.create 16 in
  let clock = ref 0 in
  let root_items = ref [] in
  for v = 0 to Dsf_graph.Graph.n g - 1 do
    List.iter
      (fun it ->
        if v = tree.root then root_items := it :: !root_items
        else begin
          let prev = Option.value ~default:[] (Hashtbl.find_opt schedule v) in
          Hashtbl.replace schedule v ((!clock, it) :: prev);
          clock := !clock + tree.depth.(v)
        end)
      (items v)
  done;
  let proto : ('a seq_state, 'a) Sim.protocol =
    {
      init =
        (fun view ->
          let v = view.Sim.node in
          {
            departures =
              List.rev (Option.value ~default:[] (Hashtbl.find_opt schedule v));
            s_received = (if v = tree.root then !root_items else []);
          });
      step =
        (fun view ~round st ~inbox ->
          let v = view.Sim.node in
          if v = tree.root then
            { st with s_received = List.rev_append (List.map snd inbox) st.s_received },
            []
          else begin
            (* Forward anything received, plus any item scheduled now. *)
            let forward = List.map snd inbox in
            let due, later =
              List.partition (fun (r, _) -> r <= round) st.departures
            in
            let out =
              List.map (fun it -> tree.parent.(v), it) forward
              @ List.map (fun (_, it) -> tree.parent.(v), it) due
            in
            { st with departures = later }, out
          end);
      is_done = (fun st -> st.departures = []);
      msg_bits = bits;
      (* Scheduled departures keep the node not-done until they are sent, so
         progress-driven waking suffices even for this clock-driven variant. *)
      wake = Some Sim.never;
    }
  in
  let states, stats =
    Telemetry.span_opt telemetry "upcast_sequential" (fun () ->
        Sim.run ?observer ?telemetry g proto)
  in
  List.rev states.(tree.root).s_received, stats

type 'a down_state = {
  to_send : 'a list;  (** items not yet forwarded to children *)
  got : 'a list;  (** all items seen, reversed *)
}

let broadcast ?observer ?telemetry g ~(tree : Bfs.tree) ~items ~bits =
  let proto : ('a down_state, 'a) Sim.protocol =
    {
      init =
        (fun view ->
          if view.Sim.node = tree.root then
            { to_send = items; got = List.rev items }
          else { to_send = []; got = [] });
      step =
        (fun view ~round:_ st ~inbox ->
          let v = view.Sim.node in
          let incoming = List.map snd inbox in
          let st =
            {
              to_send = st.to_send @ incoming;
              got = List.rev_append incoming st.got;
            }
          in
          match st.to_send with
          | [] -> st, []
          | item :: rest ->
              let outbox =
                List.map (fun c -> c, item) tree.children.(v)
              in
              { st with to_send = rest }, outbox);
      is_done = (fun st -> st.to_send = []);
      msg_bits = bits;
      wake = Some Sim.never;
    }
  in
  let states, stats =
    Telemetry.span_opt telemetry "broadcast" (fun () ->
        Sim.run ?observer ?telemetry g proto)
  in
  Array.map (fun st -> List.rev st.got) states, stats

type 'a agg_state = {
  waiting : int;  (** children not yet heard from *)
  acc : 'a;
  sent : bool;
}

let aggregate ?observer ?telemetry g ~(tree : Bfs.tree) ~value ~combine ~bits =
  let proto : ('a agg_state, 'a) Sim.protocol =
    {
      init =
        (fun view ->
          let v = view.Sim.node in
          {
            waiting = List.length tree.children.(v);
            acc = value v;
            sent = false;
          });
      step =
        (fun view ~round:_ st ~inbox ->
          let v = view.Sim.node in
          let st =
            List.fold_left
              (fun st (_, x) ->
                { st with waiting = st.waiting - 1; acc = combine st.acc x })
              st inbox
          in
          if st.waiting = 0 && (not st.sent) && v <> tree.root then
            { st with sent = true }, [ tree.parent.(v), st.acc ]
          else st, []);
      (* After any step, waiting = 0 implies the node already reported to its
         parent (the send fires in the same step that zeroes [waiting]), so
         [waiting = 0] alone is a sound completion test for root and
         non-root alike. *)
      is_done = (fun st -> st.waiting = 0);
      msg_bits = bits;
      (* Leaves start with [waiting = 0] (already "done") but must still fire
         their report in round 0; afterwards everything is mail-driven. *)
      wake = Some (fun _ ~round _ -> round = 0);
    }
  in
  let states, stats =
    Telemetry.span_opt telemetry "aggregate" (fun () ->
        Sim.run ?observer ?telemetry g proto)
  in
  states.(tree.root).acc, stats

let count_nodes ?observer ?telemetry g ~tree =
  aggregate ?observer ?telemetry g ~tree
    ~value:(fun _ -> 1)
    ~combine:( + )
    ~bits:(fun x -> Dsf_util.Bitsize.int_bits (max 1 x))
