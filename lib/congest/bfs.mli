(** Distributed BFS-tree construction (flood from the root), the basic
    building block used by every algorithm in the paper for global
    coordination.  Takes O(D) simulated rounds. *)

type tree = {
  root : int;
  parent : int array;  (** parent node id; [-1] for the root *)
  depth : int array;
  children : int list array;
  height : int;  (** max depth = eccentricity of the root *)
}

type state
type msg

val protocol : root:int -> (state, msg) Sim.protocol
(** The raw flood protocol, exposed for the chaos differential suite
    (hardened-vs-lossless final-state comparison via {!Fault.harden}).
    Note the parent choice is timing-sensitive: a node adopts the
    smallest-id neighbor heard from in the {e first} round a Join
    arrives. *)

val build :
  ?observer:Sim.observer ->
  ?telemetry:Telemetry.t ->
  Dsf_graph.Graph.t ->
  root:int ->
  tree * Sim.stats
(** Raises [Invalid_argument] if the graph is disconnected.  [observer]
    taps this run's messages (per-run, domain-safe); [telemetry] profiles
    the flood under a ["bfs"] span. *)

val max_id_root : Dsf_graph.Graph.t -> int
(** The conventional root choice of the paper's appendix: the node with the
    largest identifier. *)
