(** Distributed BFS-tree construction (flood from the root), the basic
    building block used by every algorithm in the paper for global
    coordination.  Takes O(D) simulated rounds. *)

type tree = {
  root : int;
  parent : int array;  (** parent node id; [-1] for the root *)
  depth : int array;
  children : int list array;
  height : int;  (** max depth = eccentricity of the root *)
}

type state
type msg

val protocol : root:int -> (state, msg) Sim.protocol
(** The raw flood protocol, exposed for the chaos differential suite
    (hardened-vs-lossless final-state comparison via {!Fault.harden}).
    Note the parent choice is timing-sensitive: a node adopts the
    smallest-id neighbor heard from in the {e first} round a Join
    arrives. *)

val flat_protocol : n:int -> root:int -> (int, int) Sim.flat_protocol
(** The same wavefront as {!protocol}, written natively against the
    flat-core engine: node state is one immediate int (a
    {!Dsf_util.Pack} layout of announced flag, depth, and parent + 1,
    with -1 as the unreached sentinel), messages are bare depths, and
    unreached nodes report done until mail arrives (so the sparse
    scheduler only ever steps the wavefront).  [n] is the node count of
    the graph the protocol will run on — the packed layout is sized from
    it once, at construction, so the step body captures only immutable
    fields (the typed domain-race rule's ownership contract);
    [fp_init] raises [Invalid_argument] on a graph of a different size.
    Quiescence round, messages, bits, and the resulting tree match
    {!protocol}; it is the zero-allocation exemplar the flat-engine
    benchmarks run. *)

val flat_state_parent_depth : n:int -> int -> (int * int) option
(** Decodes a {!flat_protocol} state into [(parent, depth)]; [None] if
    the node was never reached.  [n] is the node count of the graph the
    state came from. *)

val build :
  ?observer:Sim.observer ->
  ?telemetry:Telemetry.t ->
  ?flat:bool ->
  ?jobs:int ->
  ?chaos:Fault.chaos ->
  Dsf_graph.Graph.t ->
  root:int ->
  tree * Sim.stats
(** Raises [Invalid_argument] if the graph is disconnected.  [observer]
    taps this run's messages (per-run, domain-safe); [telemetry] profiles
    the flood under a ["bfs"] span.  [~flat:true] runs the native
    {!flat_protocol} on {!Sim.run_flat} (with [?jobs] domains) —
    bit-identical tree, stats, and observer trace; [~flat:false] forces
    the classic active engine; omitting [flat] defers to {!Sim.run}'s
    engine selection (including the deprecated shims). *)

val max_id_root : Dsf_graph.Graph.t -> int
(** The conventional root choice of the paper's appendix: the node with the
    largest identifier. *)
