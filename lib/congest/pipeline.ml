module Uf = Dsf_util.Union_find

type 'k item = { key : 'k; a : int; b : int }

let item_cmp cmp i1 i2 =
  let c = cmp i1.key i2.key in
  if c <> 0 then c else compare (i1.a, i1.b) (i2.a, i2.b)

let select_forest ~vn ~pre ~cmp items =
  let uf = Uf.create vn in
  List.iter (fun (x, y) -> ignore (Uf.union uf x y)) pre;
  let sorted = List.sort (item_cmp cmp) items in
  List.filter (fun it -> Uf.union uf it.a it.b) sorted

type 'k msg = Item of 'k item | Done

(* Each child delivers its items in ascending order and closes its stream
   with [Done].  A node may emit the minimum across its own remaining items
   and the child queue heads only once every unfinished child has a pending
   item — then that minimum is a lower bound on everything still to come, so
   the node's own output stream is ascending too (inductively).  Cycle-
   closing items are discarded locally; discards are free local computation,
   so several can happen in one round, but at most one item is sent. *)
type 'k state = {
  own : 'k item list;  (** ascending *)
  queues : (int, 'k item Queue.t) Hashtbl.t;  (** per-child FIFO *)
  open_children : (int, unit) Hashtbl.t;  (** children not yet Done *)
  uf : Uf.t;
  accepted : 'k item list;  (** root only; reversed *)
  sent_done : bool;
}

(* Native flat-engine state.  Child queues live in a per-node array indexed
   through a global child -> index map (each node has one parent, so one
   global array serves every node), and three counters make the per-step
   checks O(1): [p_open] (children not yet Done), [p_empty_open] (open
   children whose queue is empty — the node is stalled iff > 0), and
   [p_queued] (total buffered items — drained iff own, open and queued are
   all zero).  Everything is mutated in place, so a step allocates only the
   queue cells of newly arrived items.

   The completion test is the key difference from the classic protocol:
   a node reports done when it is *stalled* or when it is drained and has
   closed its stream ([sent_done], or is the root).  Every configuration
   reported done really is a no-op on an empty inbox, so the port declares
   [wake = Some Sim.never] and the sparse scheduler keeps the active list
   at the item/Done wavefront — the classic protocol's [not sent_done]
   wake hook steps every unfinished node every round instead (O(n) per
   round on a path).  The message schedule is unchanged: the extra nodes
   the classic engine steps are exactly the stalled/drained no-ops, so
   rounds, messages, bits, observer traces and the accepted list are
   bit-identical (differential suite enforced). *)
type 'k fstate = {
  mutable p_own : 'k item list;  (** ascending *)
  p_qs : 'k item Queue.t array;  (** per-child FIFO, child scan order *)
  p_openf : bool array;  (** child not yet Done *)
  mutable p_open : int;
  mutable p_empty_open : int;
  mutable p_queued : int;
  p_uf : Uf.t;
  mutable p_acc : 'k item list;  (** root only; reversed *)
  mutable p_sent_done : bool;
  p_root : bool;
}

let filtered_upcast_flat ~(tree : Bfs.tree) ~vn ~pre ~items ~icmp ~bits :
    ('k fstate, 'k msg) Sim.flat_protocol =
  let n = Array.length tree.parent in
  (* Global child -> index-in-parent's-arrays map.  The scan order below is
     the [tree.children] list order; the classic protocol scans a Hashtbl
     instead, so tie-breaking between *structurally distinct items that
     compare equal* could differ — no caller produces such items ([cmp]
     total up to endpoint tie-break), and the differential suite pins the
     equivalence on that domain. *)
  let child_idx = Array.make n (-1) in
  Array.iteri
    (fun _v cs -> List.iteri (fun i c -> child_idx.(c) <- i) cs)
    tree.children;
  let stalled st = st.p_empty_open > 0 in
  let drained st =
    (match st.p_own with [] -> true | _ :: _ -> false)
    && st.p_open = 0 && st.p_queued = 0
  in
  {
    fp_init =
      (fun view ->
        let v = view.Sim.node in
        let uf = Uf.create vn in
        List.iter (fun (x, y) -> ignore (Uf.union uf x y)) pre;
        let nc = List.length tree.children.(v) in
        {
          p_own = List.sort icmp (items v);
          p_qs = Array.init nc (fun _ -> Queue.create ());
          p_openf = Array.make nc true;
          p_open = nc;
          p_empty_open = nc;
          p_queued = 0;
          p_uf = uf;
          p_acc = [];
          p_sent_done = false;
          p_root = v = tree.root;
        });
    fp_step =
      (fun view ~round:_ st ~inbox ~emit ->
        let v = view.Sim.node in
        let k = Sim.inbox_len inbox in
        for i = 0 to k - 1 do
          let j = child_idx.(Sim.inbox_src inbox i) in
          match Sim.inbox_msg inbox i with
          | Item it ->
              let q = st.p_qs.(j) in
              if Queue.is_empty q && st.p_openf.(j) then
                st.p_empty_open <- st.p_empty_open - 1;
              Queue.add it q;
              st.p_queued <- st.p_queued + 1
          | Done ->
              (* Guarded for idempotence: a duplicated Done must not skew
                 the counters (the classic Hashtbl.remove is idempotent). *)
              if st.p_openf.(j) then begin
                st.p_openf.(j) <- false;
                st.p_open <- st.p_open - 1;
                if Queue.is_empty st.p_qs.(j) then
                  st.p_empty_open <- st.p_empty_open - 1
              end
        done;
        if stalled st then st
        else begin
          (* Repeatedly extract the global minimum; discard cycle-closers
             for free; send (or accept, at the root) the first survivor.
             Own head first, then child queue heads, first-found wins
             ties — the classic scan policy. *)
          let nq = Array.length st.p_qs in
          let rec extract () =
            let best_it = ref None and best_j = ref (-1) in
            (match st.p_own with
            | it :: _ -> best_it := Some it
            | [] -> ());
            for j = 0 to nq - 1 do
              match Queue.peek_opt st.p_qs.(j) with
              | Some it -> begin
                  match !best_it with
                  | Some b when icmp b it <= 0 -> ()
                  | _ ->
                      best_it := Some it;
                      best_j := j
                end
              | None -> ()
            done;
            match !best_it with
            | None -> None
            | Some it ->
                if !best_j < 0 then st.p_own <- List.tl st.p_own
                else begin
                  let q = st.p_qs.(!best_j) in
                  ignore (Queue.pop q);
                  st.p_queued <- st.p_queued - 1;
                  if Queue.is_empty q && st.p_openf.(!best_j) then
                    st.p_empty_open <- st.p_empty_open + 1
                end;
                if Uf.same st.p_uf it.a it.b then
                  (* Extracting from a child queue may stall us again: only
                     continue while no open child queue is empty. *)
                  if stalled st then None else extract ()
                else begin
                  ignore (Uf.union st.p_uf it.a it.b);
                  Some it
                end
          in
          (match extract () with
          | Some it ->
              if st.p_root then st.p_acc <- it :: st.p_acc
              else emit ~dst:tree.parent.(v) (Item it)
          | None ->
              (* Nothing left: if fully drained and all children Done,
                 close our own stream. *)
              if drained st && (not st.p_sent_done) && not st.p_root then begin
                st.p_sent_done <- true;
                emit ~dst:tree.parent.(v) Done
              end);
          st
        end);
    fp_is_done =
      (fun st -> stalled st || (drained st && (st.p_sent_done || st.p_root)));
    fp_msg_bits = (function Item it -> bits it | Done -> 1);
    fp_wake = Some Sim.never;
  }

let filtered_upcast ?observer ?faults ?telemetry ?flat ?jobs ?chaos
    ?stop_at_root g ~(tree : Bfs.tree) ~vn ~pre ~items ~cmp ~bits =
  let icmp = item_cmp cmp in
  if Option.is_none chaos && flat = Some true then begin
    let halt =
      Option.map
        (fun pred states -> pred (List.rev states.(tree.root).p_acc))
        stop_at_root
    in
    let states, stats =
      Telemetry.span_opt telemetry "filtered_upcast" (fun () ->
          Sim.run_flat ?halt ?observer ?faults ?telemetry ?jobs g
            (filtered_upcast_flat ~tree ~vn ~pre ~items ~icmp ~bits))
    in
    List.rev states.(tree.root).p_acc, stats
  end
  else begin
  let proto : ('k state, 'k msg) Sim.protocol =
    {
      init =
        (fun view ->
          let v = view.Sim.node in
          let uf = Uf.create vn in
          List.iter (fun (x, y) -> ignore (Uf.union uf x y)) pre;
          let queues = Hashtbl.create 4 in
          let open_children = Hashtbl.create 4 in
          List.iter
            (fun c ->
              Hashtbl.replace queues c (Queue.create ());
              Hashtbl.replace open_children c ())
            tree.children.(v);
          {
            own = List.sort icmp (items v);
            queues;
            open_children;
            uf;
            accepted = [];
            sent_done = false;
          });
      step =
        (fun view ~round:_ st ~inbox ->
          let v = view.Sim.node in
          List.iter
            (fun (sender, m) ->
              match m with
              | Item it -> Queue.add it (Hashtbl.find st.queues sender)
              | Done -> Hashtbl.remove st.open_children sender)
            inbox;
          (* Is every unfinished child's queue non-empty? *)
          let stalled =
            Hashtbl.fold
              (fun c () acc ->
                acc || Queue.is_empty (Hashtbl.find st.queues c))
              st.open_children false
          in
          if stalled then st, []
          else begin
            (* Repeatedly extract the global minimum; discard cycle-closers
               for free; send (or accept, at the root) the first survivor. *)
            let rec extract st =
              let best = ref None in
              (match st.own with
              | it :: _ -> best := Some (it, `Own)
              | [] -> ());
              Hashtbl.iter
                (fun c q ->
                  match Queue.peek_opt q with
                  | Some it -> begin
                      match !best with
                      | Some (b, _) when icmp b it <= 0 -> ()
                      | _ -> best := Some (it, `Child c)
                    end
                  | None -> ())
                st.queues;
              match !best with
              | None -> st, None
              | Some (it, origin) ->
                  let st =
                    match origin with
                    | `Own -> { st with own = List.tl st.own }
                    | `Child c ->
                        ignore (Queue.pop (Hashtbl.find st.queues c));
                        st
                  in
                  (* Extracting from a child queue may stall us again: only
                     continue extracting while no open child queue is empty. *)
                  if Uf.same st.uf it.a it.b then begin
                    let stalled_now =
                      Hashtbl.fold
                        (fun c () acc ->
                          acc || Queue.is_empty (Hashtbl.find st.queues c))
                        st.open_children false
                    in
                    if stalled_now then st, None else extract st
                  end
                  else begin
                    ignore (Uf.union st.uf it.a it.b);
                    st, Some it
                  end
            in
            let st, to_send = extract st in
            match to_send with
            | Some it ->
                if v = tree.root then
                  { st with accepted = it :: st.accepted }, []
                else st, [ tree.parent.(v), Item it ]
            | None ->
                (* Nothing left: if fully drained and all children Done,
                   close our own stream. *)
                let drained =
                  st.own = []
                  && Hashtbl.length st.open_children = 0
                  && Hashtbl.fold
                       (fun _ q acc -> acc && Queue.is_empty q)
                       st.queues true
                in
                if drained && (not st.sent_done) && v <> tree.root then
                  { st with sent_done = true }, [ tree.parent.(v), Done ]
                else st, []
          end);
      is_done =
        (fun st ->
          st.own = []
          && Hashtbl.length st.open_children = 0
          && Hashtbl.fold (fun _ q acc -> acc && Queue.is_empty q) st.queues true);
      msg_bits =
        (function Item it -> bits it | Done -> 1);
      (* A drained node still owes its parent a [Done] one round after its
         last item, which [is_done] does not capture — so wake on
         [not sent_done] (the root never closes its stream and simply
         no-ops; every other silent configuration is mail-driven). *)
      wake = Some (fun _ ~round:_ st -> not st.sent_done);
    }
  in
  let halt =
    Option.map
      (fun pred states -> pred (List.rev states.(tree.root).accepted))
      stop_at_root
  in
  (* Recovery contract: the classic state owns mutable structure (child
     queues, the open-children set, the union-find), so the checkpoint
     snapshot deep-copies all of it; [own]/[accepted] are immutable
     lists.  [state_bits] counts the buffered items plus the union-find
     image, one word each. *)
  let recovery =
    {
      Fault.snapshot =
        (fun st ->
          let queues = Hashtbl.create (max 4 (Hashtbl.length st.queues)) in
          Hashtbl.iter
            (fun c q -> Hashtbl.replace queues c (Queue.copy q))
            st.queues;
          {
            st with
            queues;
            open_children = Hashtbl.copy st.open_children;
            uf = Uf.copy st.uf;
          });
      state_bits =
        (fun st ->
          let queued =
            Hashtbl.fold (fun _ q acc -> acc + Queue.length q) st.queues 0
          in
          63 * (2 + vn + queued + List.length st.own));
    }
  in
  let states, stats =
    Telemetry.span_opt telemetry "filtered_upcast" (fun () ->
        Fault.sim_run ?halt ?observer ?faults ?telemetry ?flat ?jobs ?chaos
          ~recovery g proto)
  in
  List.rev states.(tree.root).accepted, stats
  end
