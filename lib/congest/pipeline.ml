module Uf = Dsf_util.Union_find

type 'k item = { key : 'k; a : int; b : int }

let item_cmp cmp i1 i2 =
  let c = cmp i1.key i2.key in
  if c <> 0 then c else compare (i1.a, i1.b) (i2.a, i2.b)

let select_forest ~vn ~pre ~cmp items =
  let uf = Uf.create vn in
  List.iter (fun (x, y) -> ignore (Uf.union uf x y)) pre;
  let sorted = List.sort (item_cmp cmp) items in
  List.filter (fun it -> Uf.union uf it.a it.b) sorted

type 'k msg = Item of 'k item | Done

(* Each child delivers its items in ascending order and closes its stream
   with [Done].  A node may emit the minimum across its own remaining items
   and the child queue heads only once every unfinished child has a pending
   item — then that minimum is a lower bound on everything still to come, so
   the node's own output stream is ascending too (inductively).  Cycle-
   closing items are discarded locally; discards are free local computation,
   so several can happen in one round, but at most one item is sent. *)
type 'k state = {
  own : 'k item list;  (** ascending *)
  queues : (int, 'k item Queue.t) Hashtbl.t;  (** per-child FIFO *)
  open_children : (int, unit) Hashtbl.t;  (** children not yet Done *)
  uf : Uf.t;
  accepted : 'k item list;  (** root only; reversed *)
  sent_done : bool;
}

let filtered_upcast ?observer ?telemetry ?stop_at_root g ~(tree : Bfs.tree)
    ~vn ~pre ~items ~cmp ~bits =
  let icmp = item_cmp cmp in
  let proto : ('k state, 'k msg) Sim.protocol =
    {
      init =
        (fun view ->
          let v = view.Sim.node in
          let uf = Uf.create vn in
          List.iter (fun (x, y) -> ignore (Uf.union uf x y)) pre;
          let queues = Hashtbl.create 4 in
          let open_children = Hashtbl.create 4 in
          List.iter
            (fun c ->
              Hashtbl.replace queues c (Queue.create ());
              Hashtbl.replace open_children c ())
            tree.children.(v);
          {
            own = List.sort icmp (items v);
            queues;
            open_children;
            uf;
            accepted = [];
            sent_done = false;
          });
      step =
        (fun view ~round:_ st ~inbox ->
          let v = view.Sim.node in
          List.iter
            (fun (sender, m) ->
              match m with
              | Item it -> Queue.add it (Hashtbl.find st.queues sender)
              | Done -> Hashtbl.remove st.open_children sender)
            inbox;
          (* Is every unfinished child's queue non-empty? *)
          let stalled =
            Hashtbl.fold
              (fun c () acc ->
                acc || Queue.is_empty (Hashtbl.find st.queues c))
              st.open_children false
          in
          if stalled then st, []
          else begin
            (* Repeatedly extract the global minimum; discard cycle-closers
               for free; send (or accept, at the root) the first survivor. *)
            let rec extract st =
              let best = ref None in
              (match st.own with
              | it :: _ -> best := Some (it, `Own)
              | [] -> ());
              Hashtbl.iter
                (fun c q ->
                  match Queue.peek_opt q with
                  | Some it -> begin
                      match !best with
                      | Some (b, _) when icmp b it <= 0 -> ()
                      | _ -> best := Some (it, `Child c)
                    end
                  | None -> ())
                st.queues;
              match !best with
              | None -> st, None
              | Some (it, origin) ->
                  let st =
                    match origin with
                    | `Own -> { st with own = List.tl st.own }
                    | `Child c ->
                        ignore (Queue.pop (Hashtbl.find st.queues c));
                        st
                  in
                  (* Extracting from a child queue may stall us again: only
                     continue extracting while no open child queue is empty. *)
                  if Uf.same st.uf it.a it.b then begin
                    let stalled_now =
                      Hashtbl.fold
                        (fun c () acc ->
                          acc || Queue.is_empty (Hashtbl.find st.queues c))
                        st.open_children false
                    in
                    if stalled_now then st, None else extract st
                  end
                  else begin
                    ignore (Uf.union st.uf it.a it.b);
                    st, Some it
                  end
            in
            let st, to_send = extract st in
            match to_send with
            | Some it ->
                if v = tree.root then
                  { st with accepted = it :: st.accepted }, []
                else st, [ tree.parent.(v), Item it ]
            | None ->
                (* Nothing left: if fully drained and all children Done,
                   close our own stream. *)
                let drained =
                  st.own = []
                  && Hashtbl.length st.open_children = 0
                  && Hashtbl.fold
                       (fun _ q acc -> acc && Queue.is_empty q)
                       st.queues true
                in
                if drained && (not st.sent_done) && v <> tree.root then
                  { st with sent_done = true }, [ tree.parent.(v), Done ]
                else st, []
          end);
      is_done =
        (fun st ->
          st.own = []
          && Hashtbl.length st.open_children = 0
          && Hashtbl.fold (fun _ q acc -> acc && Queue.is_empty q) st.queues true);
      msg_bits =
        (function Item it -> bits it | Done -> 1);
      (* A drained node still owes its parent a [Done] one round after its
         last item, which [is_done] does not capture — so wake on
         [not sent_done] (the root never closes its stream and simply
         no-ops; every other silent configuration is mail-driven). *)
      wake = Some (fun _ ~round:_ st -> not st.sent_done);
    }
  in
  let halt =
    Option.map
      (fun pred states -> pred (List.rev states.(tree.root).accepted))
      stop_at_root
  in
  let states, stats =
    Telemetry.span_opt telemetry "filtered_upcast" (fun () ->
        Sim.run ?halt ?observer ?telemetry g proto)
  in
  List.rev states.(tree.root).accepted, stats
