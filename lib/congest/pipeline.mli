(** Pipelined, filtered convergecast of matroid elements — the
    Garay-Kutten-Peleg / Kutten-Peleg technique the paper invokes in
    Lemma 4.14 and Corollary 4.16 to select candidate merges, and the
    classical way to finish a distributed MST.

    Every node holds a set of items; each item is an edge between two
    *virtual* endpoints (terminals, moats, clusters ...) with a totally
    ordered key.  In every round a node scans its buffer in ascending key
    order, locally deletes items that close a cycle with what it has already
    forwarded (plus a pre-connected relation), and forwards the least
    surviving item to its tree parent.  The root applies the same filter;
    the items it accepts are exactly the ascending-order cycle-free subset
    of all items — global Kruskal — and perfect pipelining makes the round
    count ~ tree height + number of accepted items (Lemma 4.14's
    O(D + |F|)). *)

type 'k item = { key : 'k; a : int; b : int }
(** Virtual endpoints [a], [b] in [0, vn). *)

val filtered_upcast :
  ?observer:Sim.observer ->
  ?faults:Sim.faults ->
  ?telemetry:Telemetry.t ->
  ?flat:bool ->
  ?jobs:int ->
  ?chaos:Fault.chaos ->
  ?stop_at_root:('k item list -> bool) ->
  Dsf_graph.Graph.t ->
  tree:Bfs.tree ->
  vn:int ->
  pre:(int * int) list ->
  items:(int -> 'k item list) ->
  cmp:('k -> 'k -> int) ->
  bits:('k item -> int) ->
  'k item list * Sim.stats
(** Returns the root's accepted items in ascending order.  [pre] lists
    virtual-endpoint pairs already connected (the components of F'_c in
    Lemma 4.14); items closing cycles with [pre] are filtered everywhere.
    [cmp] must be a total order; ties are broken by endpoints.

    [stop_at_root] receives the root's accepted prefix (ascending) after
    each acceptance; when it returns [true] the collection is aborted — the
    Corollary 4.16 early stop, where the root detects that a merge changes
    some terminal's activity status.  The caller should charge an extra
    O(D) stop-broadcast to its ledger.  [telemetry] profiles the run under
    a ["filtered_upcast"] span.

    [~flat:true] runs the native flat-engine port on {!Sim.run_flat} with
    [?jobs] domains: mutable per-node state, array child queues, O(1)
    stalled/drained tests, and mail-driven wake (the classic protocol
    sweeps every unfinished node each round).  Items stay boxed — the
    payload is a generic ['k] key plus two endpoints, beyond one immediate
    int — so the port's win is scheduling and bookkeeping, not message
    packing.  Accepted list, rounds, messages, bits, and observer traces
    are bit-identical to the classic protocol (differential suite
    enforced).  [~flat:false] forces the classic active engine; omitting
    [flat] defers to {!Sim.run}'s engine selection.  [faults] injects a
    fault plan (active or flat engine only). *)

val select_forest :
  vn:int -> pre:(int * int) list -> cmp:('k -> 'k -> int) ->
  'k item list -> 'k item list
(** Centralized reference of the same filter (ascending scan + union-find),
    used by tests to validate the distributed version. *)
