(* Flight recorder: compact binary causal event log + offline query layer.

   The write side is deliberately dumb — tagged int records appended into
   growable int buffers, so the engines pay a handful of unboxed pushes
   per recorded action and nothing when the recorder is off.  Domain
   partitioning mirrors the flat engine's observer discipline: each
   domain stages into its own [buf]; the coordinator appends a [Round]
   marker and flushes the buffers in domain = node order at the barrier,
   which makes the serialized log byte-identical for any [jobs] and
   across the three engines.

   The read side ([analyze]) replays the stream once, reconstructing
   inboxes exactly as the engines deliver them (round [g] sends with a
   surviving fate arrive at [g + 1] of the same run; [Down] destroys
   pending mail; a run boundary clears mail in flight) and propagating
   causal depth: a mail-consuming step extends the deepest chain among
   its deliveries, and every send it makes rides one hop above the
   sender's depth.  Every query output is a pure function of the event
   stream. *)

(* ------------------------------------------------------------ buffers *)

type buf = { mutable ra : int array; mutable rlen : int; mutable rnev : int }

let buf_make () = { ra = Array.make 64 0; rlen = 0; rnev = 0 }

let push b x =
  if b.rlen = Array.length b.ra then begin
    let a = Array.make (2 * b.rlen) 0 in
    Array.blit b.ra 0 a 0 b.rlen;
    b.ra <- a
  end;
  b.ra.(b.rlen) <- x;
  b.rlen <- b.rlen + 1

(* Event tags and their argument counts.  The stream is a flat sequence
   of [tag; arg*] records; every field is non-negative by construction
   (node ids, rounds, bit counts, fates, interned name ids). *)
let tag_round = 0
let tag_step = 1
let tag_send = 2
let tag_down = 3
let tag_restart = 4
let tag_span_open = 5
let tag_span_close = 6
let tag_recovery = 7
(* Immutable tag -> argument-count table (arrays are the only O(1)
   int-indexed literal; nothing ever writes it). *)
let arity = [| 1; 1; 4; 1; 1; 1; 1; 3 |] [@@lint.allow "global-state"]

type t = {
  master : buf;
  names : (string, int) Hashtbl.t;
  mutable names_rev : string list;  (* interned names, newest first *)
  mutable n_names : int;
  mutable meta : (string * int) list;  (* append order *)
}

(* The one sanctioned wall-clock read in this module (dsf-lint allowlists
   recorder.ml alongside telemetry.ml): the capture timestamp.  It is
   metadata, never an event — injecting [?now] makes the whole log
   byte-deterministic. *)
let now_unix_s () = int_of_float (Unix.gettimeofday ())

let meta_add t key v =
  if v < 0 then
    invalid_arg
      (Printf.sprintf "Recorder.meta_add: negative value %d for %S" v key);
  t.meta <- t.meta @ [ (key, v) ]

let meta_find t key = List.assoc_opt key t.meta

let create ?now ?(meta = []) () =
  let now = match now with Some s -> s | None -> now_unix_s () in
  let t =
    {
      master = buf_make ();
      names = Hashtbl.create 16;
      names_rev = [];
      n_names = 0;
      meta = [];
    }
  in
  meta_add t "captured_unix_s" (max 0 now);
  List.iter (fun (k, v) -> meta_add t k v) meta;
  t

(* ------------------------------------------------------ event appenders *)

let ev_step b v =
  push b tag_step;
  push b v;
  b.rnev <- b.rnev + 1

let ev_send b ~src ~dst ~bits ~fate =
  push b tag_send;
  push b src;
  push b dst;
  push b bits;
  push b fate;
  b.rnev <- b.rnev + 1

let ev_down b v =
  push b tag_down;
  push b v;
  b.rnev <- b.rnev + 1

let ev_restart b v =
  push b tag_restart;
  push b v;
  b.rnev <- b.rnev + 1

let round t r =
  push t.master tag_round;
  push t.master r;
  t.master.rnev <- t.master.rnev + 1

let flush t b =
  let m = t.master in
  let need = m.rlen + b.rlen in
  if need > Array.length m.ra then begin
    let cap = ref (Array.length m.ra) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let a = Array.make !cap 0 in
    Array.blit m.ra 0 a 0 m.rlen;
    m.ra <- a
  end;
  Array.blit b.ra 0 m.ra m.rlen b.rlen;
  m.rlen <- need;
  m.rnev <- m.rnev + b.rnev;
  b.rlen <- 0;
  b.rnev <- 0

let intern t name =
  match Hashtbl.find_opt t.names name with
  | Some id -> id
  | None ->
      let id = t.n_names in
      Hashtbl.add t.names name id;
      t.names_rev <- name :: t.names_rev;
      t.n_names <- id + 1;
      id

let span_open t name =
  let id = intern t name in
  push t.master tag_span_open;
  push t.master id;
  t.master.rnev <- t.master.rnev + 1

let span_close t name =
  let id = intern t name in
  push t.master tag_span_close;
  push t.master id;
  t.master.rnev <- t.master.rnev + 1

let recovery t ~retransmissions ~restores ~checkpoint_bits =
  push t.master tag_recovery;
  push t.master retransmissions;
  push t.master restores;
  push t.master checkpoint_bits;
  t.master.rnev <- t.master.rnev + 1

let event_count t = t.master.rnev

(* ------------------------------------------------------ decoded events *)

type event =
  | Round of int
  | Step of int
  | Send of { src : int; dst : int; bits : int; fate : int }
  | Down of int
  | Restart of int
  | Span_open of string
  | Span_close of string
  | Recovery of { retransmissions : int; restores : int; checkpoint_bits : int }

let pp_event ppf = function
  | Round r -> Format.fprintf ppf "round %d" r
  | Step v -> Format.fprintf ppf "step %d" v
  | Send { src; dst; bits; fate } ->
      Format.fprintf ppf "send %d->%d %db%s" src dst bits
        (match fate with
        | 0 -> " (dropped)"
        | 1 -> ""
        | k -> Printf.sprintf " (x%d)" k)
  | Down v -> Format.fprintf ppf "down %d" v
  | Restart v -> Format.fprintf ppf "restart %d" v
  | Span_open n -> Format.fprintf ppf "span-open %s" n
  | Span_close n -> Format.fprintf ppf "span-close %s" n
  | Recovery { retransmissions; restores; checkpoint_bits } ->
      Format.fprintf ppf "recovery retrans=%d restores=%d ckpt-bits=%d"
        retransmissions restores checkpoint_bits

(* Decode the record starting at [i] of a raw int stream.  [names] maps
   interned ids back to span names.  Returns the event and the index of
   the next record. *)
let decode_at ints names i =
  let tag = ints.(i) in
  if tag < 0 || tag >= Array.length arity then
    failwith (Printf.sprintf "corrupt flightlog: tag %d at %d" tag i)
  else begin
    let next = i + 1 + arity.(tag) in
    let name id =
      if id >= 0 && id < Array.length names then names.(id)
      else Printf.sprintf "<name#%d>" id
    in
    let ev =
      if tag = tag_round then Round ints.(i + 1)
      else if tag = tag_step then Step ints.(i + 1)
      else if tag = tag_send then
        Send
          {
            src = ints.(i + 1);
            dst = ints.(i + 2);
            bits = ints.(i + 3);
            fate = ints.(i + 4);
          }
      else if tag = tag_down then Down ints.(i + 1)
      else if tag = tag_restart then Restart ints.(i + 1)
      else if tag = tag_span_open then Span_open (name ints.(i + 1))
      else if tag = tag_span_close then Span_close (name ints.(i + 1))
      else
        Recovery
          {
            retransmissions = ints.(i + 1);
            restores = ints.(i + 2);
            checkpoint_bits = ints.(i + 3);
          }
    in
    ev, next
  end

let names_array t = Array.of_list (List.rev t.names_rev)

let tail t k =
  let names = names_array t in
  let ints = t.master.ra and len = t.master.rlen in
  (* Ring of the last [k] decoded events; one forward pass. *)
  let ring = Array.make (max 1 k) (Round (-1)) in
  let seen = ref 0 in
  let i = ref 0 in
  while !i < len do
    let ev, next = decode_at ints names !i in
    ring.(!seen mod Array.length ring) <- ev;
    incr seen;
    i := next
  done;
  let kept = min k !seen in
  List.init kept (fun j ->
      ring.((!seen - kept + j) mod Array.length ring))

(* --------------------------------------------- dsf-flightlog/1 format *)

let magic = "dsf-flightlog/1\n"

let put_varint b v =
  if v < 0 then invalid_arg "Recorder: negative value in flightlog";
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char b (Char.chr (0x80 lor (!v land 0x7f)));
    v := !v lsr 7
  done;
  Buffer.add_char b (Char.chr !v)

let put_string b s =
  put_varint b (String.length s);
  Buffer.add_string b s

let to_string t =
  let b = Buffer.create (16 + (2 * t.master.rlen)) in
  Buffer.add_string b magic;
  put_varint b (List.length t.meta);
  List.iter
    (fun (k, v) ->
      put_string b k;
      put_varint b v)
    t.meta;
  let names = names_array t in
  put_varint b (Array.length names);
  Array.iter (fun n -> put_string b n) names;
  put_varint b t.master.rlen;
  for i = 0 to t.master.rlen - 1 do
    put_varint b t.master.ra.(i)
  done;
  Buffer.contents b

let write_file t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

type log = {
  l_meta : (string * int) list;
  l_names : string array;
  l_ints : int array;
}

exception Corrupt of string

let parse s =
  let pos = ref 0 in
  let len = String.length s in
  let get_varint () =
    let v = ref 0 and shift = ref 0 and stop = ref false in
    while not !stop do
      if !pos >= len then raise (Corrupt "truncated varint");
      let c = Char.code s.[!pos] in
      incr pos;
      v := !v lor ((c land 0x7f) lsl !shift);
      shift := !shift + 7;
      if c < 0x80 then stop := true
      else if !shift > 62 then raise (Corrupt "varint overflow")
    done;
    !v
  in
  let get_string () =
    let n = get_varint () in
    if !pos + n > len then raise (Corrupt "truncated string");
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  try
    if len < String.length magic || String.sub s 0 (String.length magic) <> magic
    then Error "not a dsf-flightlog/1 file (bad magic)"
    else begin
      pos := String.length magic;
      let n_meta = get_varint () in
      let meta =
        List.init n_meta (fun _ ->
            let k = get_string () in
            let v = get_varint () in
            k, v)
      in
      let n_names = get_varint () in
      let names = Array.init n_names (fun _ -> get_string ()) in
      let n_ints = get_varint () in
      let ints = Array.init n_ints (fun _ -> get_varint ()) in
      (* Validate record structure once here so every later walk can
         assume well-formed (tag, args) framing. *)
      let i = ref 0 in
      while !i < n_ints do
        let tag = ints.(!i) in
        if tag < 0 || tag >= Array.length arity then
          raise (Corrupt (Printf.sprintf "bad tag %d" tag));
        i := !i + 1 + arity.(tag)
      done;
      if !i <> n_ints then raise (Corrupt "truncated final record");
      Ok { l_meta = meta; l_names = names; l_ints = ints }
    end
  with Corrupt m -> Error ("corrupt flightlog: " ^ m)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> parse s
  | exception Sys_error m -> Error m

let log_meta l = l.l_meta

let iter_log_events l f =
  let i = ref 0 in
  let n = Array.length l.l_ints in
  while !i < n do
    let ev, next = decode_at l.l_ints l.l_names !i in
    f ev;
    i := next
  done

let log_events l =
  let acc = ref [] in
  iter_log_events l (fun ev -> acc := ev :: !acc);
  List.rev !acc

let log_event_count l =
  let c = ref 0 in
  iter_log_events l (fun _ -> incr c);
  !c

(* ------------------------------------------------------ causal analysis *)

(* A mail-consuming step (or nothing): the unit of the causal DAG.  [via]
   points at the deepest delivered message and, through it, at the
   sender's own step record — the parent chain IS the backtrace. *)
type step_rec = {
  sr_node : int;
  sr_ground : int;  (* global round of the step *)
  sr_depth : int;
  sr_via : via option;  (* None: origin step (no deeper mail consumed) *)
}

and via = {
  v_src : int;
  v_sent_g : int;  (* global round the message was sent *)
  v_bits : int;
  v_msg_depth : int;
  v_parent : step_rec option;  (* sender's step record at send time *)
}

type round_row = {
  rr_run : int;
  rr_local : int;
  mutable rr_steps : int;
  mutable rr_sends : int;
  mutable rr_bits : int;
  mutable rr_dropped : int;  (* fate-0 sends plus mail lost to crashes *)
  mutable rr_down : int;
  mutable rr_restarts : int;
}

type span_row = {
  sp_path : string;
  mutable sp_count : int;
  mutable sp_rounds : int;  (* global rounds covered, summed *)
  mutable sp_max_depth : int;  (* causal depth reached by close *)
}

type analysis = {
  a_meta : (string * int) list;
  a_n : int;  (* 1 + max node id seen (0 when no node events) *)
  a_rounds : round_row array;  (* indexed by global round *)
  a_runs : int;
  a_events : int;
  a_max_depth : int;
  a_deepest : step_rec option;
  a_node_depth : int array;
  a_last_rec : step_rec option array;
  a_steps : step_rec list array;  (* per node, newest first *)
  a_spans : span_row list;  (* first-opened order *)
  a_edges : ((int * int) * (int * int * int)) list;
      (* (src, dst) -> (msgs, bits, max chain depth), ranked *)
  a_recov : int * int * int;  (* retransmissions, restores, ckpt bits *)
}

(* Growable array of round rows. *)
type rows = { mutable rw : round_row array; mutable rwn : int }

let row_push rows r =
  if rows.rwn = Array.length rows.rw then begin
    let a = Array.make (max 16 (2 * rows.rwn)) r in
    Array.blit rows.rw 0 a 0 rows.rwn;
    rows.rw <- a
  end;
  rows.rw.(rows.rwn) <- r;
  rows.rwn <- rows.rwn + 1

let analyze l =
  (* Pass 1: the node-id range. *)
  let max_node = ref (-1) in
  let events = ref 0 in
  iter_log_events l (fun ev ->
      incr events;
      match ev with
      | Step v | Down v | Restart v ->
          if v > !max_node then max_node := v
      | Send { src; dst; _ } ->
          if src > !max_node then max_node := src;
          if dst > !max_node then max_node := dst
      | _ -> ());
  let n = !max_node + 1 in
  let depth = Array.make (max 1 n) 0 in
  let last_rec : step_rec option array = Array.make (max 1 n) None in
  let steps : step_rec list array = Array.make (max 1 n) [] in
  (* In-flight mail, per destination: [avail] is deliverable this round,
     [inflight] collects this round's surviving sends.  Touched lists keep
     the per-round reset O(traffic), not O(n). *)
  let avail : via list array = Array.make (max 1 n) [] in
  let inflight : via list array = Array.make (max 1 n) [] in
  let avail_touched = ref [] and inflight_touched = ref [] in
  let rows = { rw = [||]; rwn = 0 } in
  let g = ref (-1) in
  (* Global round index of the round currently open *)
  let runs = ref 0 in
  let cur = ref None in
  (* round_row of the open round *)
  let max_depth = ref 0 and deepest = ref None in
  let edges : (int * int, int ref * int ref * int ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let spans = Hashtbl.create 16 in
  let span_order = ref [] in
  let span_stack = ref [] in
  (* (name, path, open_g) innermost first *)
  let retrans = ref 0 and restores = ref 0 and ckpt = ref 0 in
  let row () =
    match !cur with
    | Some r -> r
    | None ->
        (* Events before any Round marker (possible only in hand-built
           logs): attribute them to a synthetic round 0. *)
        let r =
          {
            rr_run = 0;
            rr_local = 0;
            rr_steps = 0;
            rr_sends = 0;
            rr_bits = 0;
            rr_dropped = 0;
            rr_down = 0;
            rr_restarts = 0;
          }
        in
        cur := Some r;
        g := 0;
        runs := 1;
        row_push rows r;
        r
  in
  iter_log_events l (function
    | Round local ->
        (* Barrier: this round's sends become next round's deliveries. *)
        List.iter (fun v -> avail.(v) <- []) !avail_touched;
        avail_touched := [];
        if local = 0 then begin
          (* New run: mail in flight across the boundary is dead. *)
          incr runs;
          List.iter (fun v -> inflight.(v) <- []) !inflight_touched;
          inflight_touched := []
        end;
        List.iter
          (fun v ->
            avail.(v) <- List.rev inflight.(v);
            inflight.(v) <- [])
          !inflight_touched;
        avail_touched := !inflight_touched;
        inflight_touched := [];
        incr g;
        let r =
          {
            rr_run = !runs;
            rr_local = local;
            rr_steps = 0;
            rr_sends = 0;
            rr_bits = 0;
            rr_dropped = 0;
            rr_down = 0;
            rr_restarts = 0;
          }
        in
        cur := Some r;
        row_push rows r
    | Step v ->
        let r = row () in
        r.rr_steps <- r.rr_steps + 1;
        let mail = avail.(v) in
        avail.(v) <- [];
        (* Deepest delivered message, first-in-arrival-order on ties. *)
        let best =
          List.fold_left
            (fun acc m ->
              match acc with
              | Some b when b.v_msg_depth >= m.v_msg_depth -> acc
              | _ -> Some m)
            None mail
        in
        let d =
          match best with
          | Some m -> max depth.(v) m.v_msg_depth
          | None -> depth.(v)
        in
        let rec_ = { sr_node = v; sr_ground = !g; sr_depth = d; sr_via = best } in
        depth.(v) <- d;
        last_rec.(v) <- Some rec_;
        steps.(v) <- rec_ :: steps.(v);
        if d > !max_depth then begin
          max_depth := d;
          deepest := Some rec_
        end
    | Send { src; dst; bits; fate } ->
        let r = row () in
        r.rr_sends <- r.rr_sends + 1;
        r.rr_bits <- r.rr_bits + bits;
        let md = depth.(src) + 1 in
        (let msgs, total, dmax =
           match Hashtbl.find_opt edges (src, dst) with
           | Some e -> e
           | None ->
               let e = (ref 0, ref 0, ref 0) in
               Hashtbl.add edges (src, dst) e;
               e
         in
         incr msgs;
         total := !total + bits;
         if md > !dmax then dmax := md);
        if fate = 0 then r.rr_dropped <- r.rr_dropped + 1
        else begin
          if inflight.(dst) = [] then inflight_touched := dst :: !inflight_touched;
          (* Replicated copies are causally identical — stage one. *)
          inflight.(dst) <-
            {
              v_src = src;
              v_sent_g = !g;
              v_bits = bits;
              v_msg_depth = md;
              v_parent = last_rec.(src);
            }
            :: inflight.(dst)
        end
    | Down v ->
        let r = row () in
        r.rr_down <- r.rr_down + 1;
        r.rr_dropped <- r.rr_dropped + List.length avail.(v);
        avail.(v) <- []
    | Restart v ->
        let r = row () in
        r.rr_restarts <- r.rr_restarts + 1;
        (* Crash-restart resets the node's state: its causal history is
           gone (checkpointed recovery re-arrives through messages). *)
        depth.(v) <- 0;
        last_rec.(v) <- None
    | Span_open name ->
        let parent_path =
          match !span_stack with [] -> "" | (_, p, _) :: _ -> p ^ "/"
        in
        span_stack := (name, parent_path ^ name, !g) :: !span_stack
    | Span_close name ->
        (match !span_stack with
        | (n', path, g0) :: rest when n' = name ->
            span_stack := rest;
            let rowv =
              match Hashtbl.find_opt spans path with
              | Some r -> r
              | None ->
                  let r =
                    { sp_path = path; sp_count = 0; sp_rounds = 0;
                      sp_max_depth = 0 }
                  in
                  Hashtbl.add spans path r;
                  span_order := path :: !span_order;
                  r
            in
            rowv.sp_count <- rowv.sp_count + 1;
            rowv.sp_rounds <- rowv.sp_rounds + (max 0 (!g - g0));
            if !max_depth > rowv.sp_max_depth then
              rowv.sp_max_depth <- !max_depth
        | _ -> () (* unmatched close: tolerate, the writer is stack-shaped *))
    | Recovery { retransmissions; restores = rs; checkpoint_bits } ->
        retrans := !retrans + retransmissions;
        restores := !restores + rs;
        ckpt := !ckpt + checkpoint_bits);
  let edges_ranked =
    Hashtbl.fold (fun k (m, b, d) acc -> (k, (!m, !b, !d)) :: acc) edges []
    |> List.sort (fun (ka, (_, ba, _)) (kb, (_, bb, _)) ->
           let c = compare bb ba in
           if c <> 0 then c else compare ka kb)
  in
  {
    a_meta = log_meta l;
    a_n = n;
    a_rounds = Array.sub rows.rw 0 rows.rwn;
    a_runs = !runs;
    a_events = !events;
    a_max_depth = !max_depth;
    a_deepest = !deepest;
    a_node_depth = depth;
    a_last_rec = last_rec;
    a_steps = steps;
    a_spans =
      List.rev_map (fun p -> Hashtbl.find spans p) !span_order;
    a_edges = edges_ranked;
    a_recov = (!retrans, !restores, !ckpt);
  }

let max_depth a = a.a_max_depth
let total_rounds a = Array.length a.a_rounds
let run_count a = a.a_runs

let node_depth a v =
  if v >= 0 && v < a.a_n then a.a_node_depth.(v) else 0

(* --------------------------------------------------------------- queries *)

let pp_summary ppf a =
  let retrans, restores, ckpt = a.a_recov in
  Format.fprintf ppf
    "flightlog: %d events, %d global rounds over %d run(s), %d node(s), %d \
     span path(s)@."
    a.a_events (Array.length a.a_rounds) a.a_runs a.a_n
    (List.length a.a_spans);
  Format.fprintf ppf "max causal depth: %d@." a.a_max_depth;
  if retrans > 0 || restores > 0 || ckpt > 0 then
    Format.fprintf ppf
      "recovery: %d retransmission(s), %d restore(s), %d checkpoint bit(s)@."
      retrans restores ckpt;
  (match a.a_meta with
  | [] -> ()
  | meta ->
      Format.fprintf ppf "meta:";
      List.iter (fun (k, v) -> Format.fprintf ppf " %s=%d" k v) meta;
      Format.fprintf ppf "@.")

let find_rec a ~node ~round =
  if node < 0 || node >= a.a_n then None
  else List.find_opt (fun r -> r.sr_ground <= round) a.a_steps.(node)

let why_hop_limit = 48

let pp_why ~node ?round ppf a =
  let round =
    match round with Some r -> r | None -> Array.length a.a_rounds - 1
  in
  match find_rec a ~node ~round with
  | None ->
      Format.fprintf ppf
        "node %d consumed no mail at or before global round %d: its state is \
         causally original (depth 0)@."
        node round
  | Some r0 ->
      Format.fprintf ppf
        "why node %d (as of global round %d): last state change at round %d, \
         causal depth %d@."
        node round r0.sr_ground r0.sr_depth;
      let rec walk r hops =
        if hops >= why_hop_limit then
          Format.fprintf ppf "  ... (chain truncated at %d hops)@."
            why_hop_limit
        else
          match r.sr_via with
          | None ->
              Format.fprintf ppf
                "  origin: node %d stepped at round %d with no deeper mail@."
                r.sr_node r.sr_ground
          | Some v ->
              Format.fprintf ppf
                "  r%-5d node %d consumed %d-bit message from node %d (sent \
                 r%d, chain depth %d)@."
                r.sr_ground r.sr_node v.v_bits v.v_src v.v_sent_g
                v.v_msg_depth;
              (match v.v_parent with
              | Some p -> walk p (hops + 1)
              | None ->
                  Format.fprintf ppf
                    "  origin: node %d sent from its initial state (depth 0)@."
                    v.v_src)
      in
      walk r0 0

let pp_round_row ppf (r : round_row) ~g =
  Format.fprintf ppf
    "round %d (run %d, local %d): steps=%d sends=%d bits=%d dropped=%d \
     down=%d restarts=%d"
    g r.rr_run r.rr_local r.rr_steps r.rr_sends r.rr_bits r.rr_dropped
    r.rr_down r.rr_restarts

let pp_diff ~r1 ~r2 ppf a =
  let n = Array.length a.a_rounds in
  let ok r = r >= 0 && r < n in
  if not (ok r1 && ok r2) then
    Format.fprintf ppf
      "rounds out of range: have %d global round(s), asked for %d and %d@." n
      r1 r2
  else begin
    let a1 = a.a_rounds.(r1) and a2 = a.a_rounds.(r2) in
    Format.fprintf ppf "%a@.%a@." (pp_round_row ~g:r1) a1 (pp_round_row ~g:r2)
      a2;
    Format.fprintf ppf
      "delta (r%d - r%d): steps%+d sends%+d bits%+d dropped%+d down%+d \
       restarts%+d@."
      r2 r1 (a2.rr_steps - a1.rr_steps) (a2.rr_sends - a1.rr_sends)
      (a2.rr_bits - a1.rr_bits)
      (a2.rr_dropped - a1.rr_dropped)
      (a2.rr_down - a1.rr_down)
      (a2.rr_restarts - a1.rr_restarts)
  end

(* The paper bound for the instance, from recorded metadata: Lenzen &
   Patt-Shamir run in Õ(sqrt(min(s·t, n)) + D) rounds, with [s] the
   shortest-path diameter and [t] the number of terminals; the polylog we
   print is a single log2(n) factor — a concrete yardstick, not a claim
   about constants. *)
let paper_bound meta =
  let find k = List.assoc_opt k meta in
  match find "s", find "t", find "n", find "D" with
  | Some s, Some t, Some n, Some d when n > 0 ->
      let st = float_of_int s *. float_of_int t in
      let inner = Float.min st (float_of_int n) in
      let lg = Float.max 1.0 (Float.log (float_of_int n) /. Float.log 2.0) in
      Some ((sqrt inner *. lg) +. float_of_int d, s, t, n, d)
  | _ -> None

let pp_critical_path ppf a =
  Format.fprintf ppf
    "critical path: causal depth %d over %d global round(s), %d run(s)@."
    a.a_max_depth
    (Array.length a.a_rounds)
    a.a_runs;
  (match a.a_deepest with
  | Some r ->
      Format.fprintf ppf "  deepest chain ends at node %d, round %d@."
        r.sr_node r.sr_ground
  | None -> ());
  (match paper_bound a.a_meta with
  | Some (bound, s, t, n, d) ->
      Format.fprintf ppf
        "  paper bound sqrt(min(s*t, n))*log2(n) + D = %.1f  (s=%d t=%d n=%d \
         D=%d)@."
        bound s t n d
  | None ->
      Format.fprintf ppf
        "  paper bound: unavailable (metadata lacks s/t/n/D)@.");
  match a.a_spans with
  | [] -> ()
  | spans ->
      Format.fprintf ppf "  per span (depth reached by close):@.";
      List.iter
        (fun sp ->
          Format.fprintf ppf "    %-40s count=%-3d rounds=%-6d max_depth=%d@."
            sp.sp_path sp.sp_count sp.sp_rounds sp.sp_max_depth)
        spans

let pp_hot_edges ?(limit = 10) ppf a =
  match a.a_edges with
  | [] -> Format.fprintf ppf "no traffic recorded@."
  | edges ->
      Format.fprintf ppf "hot edges (by causal load, top %d of %d):@." limit
        (List.length edges);
      List.iteri
        (fun i ((src, dst), (msgs, bits, dmax)) ->
          if i < limit then
            Format.fprintf ppf
              "  %4d -> %-4d bits=%-8d msgs=%-6d max_chain_depth=%d@." src dst
              bits msgs dmax)
        edges
