(** Round ledger: accumulates the round cost of a multi-phase algorithm.

    Entries are either [Simulated] (actual rounds executed by {!Sim.run})
    or [Charged] (a named analytical charge for a step the paper performs
    via a cited black box or states as a broadcast bound; see DESIGN.md).
    Experiments report both totals so the reader can see exactly how much
    of a bound was measured versus charged. *)

type kind = Simulated | Charged

type t

val create : unit -> t
val add : t -> kind -> string -> int -> unit

val set_hook : t -> (kind -> string -> int -> unit) option -> unit
(** Install (or clear) a tap fired on every subsequent {!add} with the
    entry just recorded.  Used by {!Telemetry.attach_ledger} to land each
    charged/simulated entry in the enclosing profiling span.
    {!merge_into} bypasses the destination's hook: merged entries were
    already attributed when first added to their source ledger (the
    telemetry side merges separately), so re-firing would double-count. *)

val simulated : t -> int
val charged : t -> int
val total : t -> int
val entries : t -> (kind * string * int) list
(** In insertion order. *)

val merge_into : dst:t -> t -> unit
val pp : Format.formatter -> t -> unit
