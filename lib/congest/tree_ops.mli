(** Pipelined communication over a (BFS) tree: convergecast, broadcast, and
    aggregate reduction.  These are the workhorses behind every "collect X at
    the root / make X globally known in O(D + |X|) rounds" step in the paper
    (Lemmas 2.3, 2.4, 4.14, Corollary 4.16, the transforms, and the
    randomized algorithm's per-phase bookkeeping).

    All functions genuinely simulate message passing round by round; one item
    crosses one edge per round, so the round counts exhibit the pipelining
    the paper's analysis relies on.

    Every operation takes an optional [?telemetry]: the run is profiled
    under a span named after the primitive ([upcast], [broadcast],
    [aggregate], ...) nested in the caller's current span.

    [~flat:true] selects the native flat-engine ports of {!upcast},
    {!broadcast} and {!aggregate} (queue-based in-place states on
    {!Sim.run_flat}, with [?jobs] domains) — bit-identical stats, results
    and observer traces; {!upcast_dedup} and {!upcast_sequential} run
    through the flat engine's boxed adapter instead.  [~flat:false]
    forces the classic active engine; omitting [flat] defers to
    {!Sim.run}'s engine selection.  [?faults] injects a deterministic
    fault plan (active or flat engine only).

    [?chaos] runs the classic protocol hardened under the bundled fault
    plan via {!Fault.sim_run} (each primitive supplies its own
    {!Fault.recoverable} snapshot, so crash-restart plans are masked);
    it overrides the native-flat fast path — under chaos the hardened
    protocol reaches the flat engine through the boxed adapter.
    {!aggregate}'s child-count handshake is duplicate-tolerant (a child's
    report is identified by its sender id — each child reports exactly
    once), so duplication plans cannot corrupt or livelock the count even
    {e without} hardening. *)

val upcast :
  ?observer:Sim.observer ->
  ?faults:Sim.faults ->
  ?telemetry:Telemetry.t ->
  ?flat:bool ->
  ?jobs:int ->
  ?chaos:Fault.chaos ->
  Dsf_graph.Graph.t ->
  tree:Bfs.tree ->
  items:(int -> 'a list) ->
  bits:('a -> int) ->
  'a list * Sim.stats
(** Collect all items at the root (no filtering, duplicates preserved).
    Returns the root's received list (own items first, then arrival order).
    Rounds ~ height + max path congestion. *)

val upcast_dedup :
  ?observer:Sim.observer ->
  ?faults:Sim.faults ->
  ?telemetry:Telemetry.t ->
  ?flat:bool ->
  ?jobs:int ->
  ?chaos:Fault.chaos ->
  ?per_key:int ->
  Dsf_graph.Graph.t ->
  tree:Bfs.tree ->
  items:(int -> 'a list) ->
  key:('a -> 'b) ->
  bits:('a -> int) ->
  'a list * Sim.stats
(** Like {!upcast}, but each node forwards at most [per_key] distinct items
    per key (default 1) — the "ignore further messages with this label"
    filtering of Lemmas 2.3/2.4 (which needs [per_key = 2]: a label is
    non-singleton as soon as two witnesses exist).  Duplicate items (equal
    as values) are never forwarded twice. *)

val upcast_sequential :
  ?observer:Sim.observer ->
  ?telemetry:Telemetry.t ->
  ?flat:bool ->
  ?jobs:int ->
  Dsf_graph.Graph.t ->
  tree:Bfs.tree ->
  items:(int -> 'a list) ->
  bits:('a -> int) ->
  'a list * Sim.stats
(** The NON-pipelined strawman used by the A1 ablation: items travel to
    the root one at a time under a best-case centralized schedule — each
    item is fully delivered before the next departs, so rounds ~ sum of
    item depths instead of height + count.  This is the congestion
    behaviour the paper's pipelining (Lemma 4.14, Section 5) eliminates. *)

val broadcast :
  ?observer:Sim.observer ->
  ?faults:Sim.faults ->
  ?telemetry:Telemetry.t ->
  ?flat:bool ->
  ?jobs:int ->
  ?chaos:Fault.chaos ->
  Dsf_graph.Graph.t ->
  tree:Bfs.tree ->
  items:'a list ->
  bits:('a -> int) ->
  'a list array * Sim.stats
(** Pipeline the root's item list down the tree; every node ends with the
    full list (in order).  Rounds ~ height + |items|. *)

val aggregate :
  ?observer:Sim.observer ->
  ?faults:Sim.faults ->
  ?telemetry:Telemetry.t ->
  ?flat:bool ->
  ?jobs:int ->
  ?chaos:Fault.chaos ->
  Dsf_graph.Graph.t ->
  tree:Bfs.tree ->
  value:(int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  bits:('a -> int) ->
  'a * Sim.stats
(** Bottom-up reduction with an associative, commutative [combine]; the
    result over all nodes lands at the root.  Rounds ~ height. *)

val count_nodes :
  ?observer:Sim.observer ->
  ?telemetry:Telemetry.t ->
  ?flat:bool ->
  ?jobs:int ->
  ?chaos:Fault.chaos ->
  Dsf_graph.Graph.t ->
  tree:Bfs.tree ->
  int * Sim.stats
(** Convergecast count of all nodes ([n] as computed in the paper's
    footnote 2). *)
