type kind = Simulated | Charged

type t = {
  mutable entries : (kind * string * int) list; (* reversed *)
  mutable hook : (kind -> string -> int -> unit) option;
      (* telemetry tap; see set_hook *)
}

let create () = { entries = []; hook = None }

let set_hook t h = t.hook <- h

let add t kind label rounds =
  assert (rounds >= 0);
  t.entries <- (kind, label, rounds) :: t.entries;
  match t.hook with Some f -> f kind label rounds | None -> ()

let sum_kind t k =
  List.fold_left
    (fun acc (kind, _, r) -> if kind = k then acc + r else acc)
    0 t.entries

let simulated t = sum_kind t Simulated
let charged t = sum_kind t Charged
let total t = simulated t + charged t

let entries t = List.rev t.entries

(* Raw append, bypassing [dst]'s hook: the merged entries were already
   attributed (to the source ledger's own telemetry) when first added;
   re-firing the hook here would double-count them in the destination's
   span tree.  Telemetry merges travel separately via
   [Telemetry.merge_into]. *)
let merge_into ~dst t =
  List.iter (fun e -> dst.entries <- e :: dst.entries) (entries t)

let pp ppf t =
  Format.fprintf ppf "@[<v>total=%d (simulated=%d charged=%d)@," (total t)
    (simulated t) (charged t);
  List.iter
    (fun (k, l, r) ->
      Format.fprintf ppf "  %-9s %-40s %d@,"
        (match k with Simulated -> "simulated" | Charged -> "charged")
        l r)
    (entries t);
  Format.fprintf ppf "@]"
