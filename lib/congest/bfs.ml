module Graph = Dsf_graph.Graph
module Bitsize = Dsf_util.Bitsize
module Pack = Dsf_util.Pack

type tree = {
  root : int;
  parent : int array;
  depth : int array;
  children : int list array;
  height : int;
}

type state = { parent : int option; depth : int; announced : bool }

type msg = Join of int  (** sender's depth *)

let protocol ~root : (state, msg) Sim.protocol =
  {
      init =
        (fun view ->
          if view.Sim.node = root then
            { parent = Some (-1); depth = 0; announced = false }
          else { parent = None; depth = max_int; announced = false });
      step =
        (fun view ~round:_ st ~inbox ->
          (* Join the tree via the smallest-id neighbor heard from first. *)
          let st =
            if st.parent = None then begin
              let best =
                List.fold_left
                  (fun acc (sender, Join d) ->
                    match acc with
                    | Some (_, bs) when bs <= sender -> acc
                    | _ -> Some (d, sender))
                  None inbox
              in
              match best with
              | Some (d, sender) ->
                  { parent = Some sender; depth = d + 1; announced = false }
              | None -> st
            end
            else st
          in
          match st.parent with
          | Some _ when not st.announced ->
              let outbox =
                Array.to_list view.Sim.nbrs
                |> List.map (fun (nb, _, _) -> nb, Join st.depth)
              in
              { st with announced = true }, outbox
          | _ -> st, []);
      is_done = (fun st -> st.parent <> None && st.announced);
      msg_bits = (fun (Join d) -> Bitsize.int_bits (max d 1));
      (* Unreached nodes are not done; reached-and-announced nodes only
         react to mail. *)
      wake = Some Sim.never;
  }

(* Packed-state layout for the native port, declared through
   {!Dsf_util.Pack} so the encoding is width-checked and auditable next to
   every other flat port's.  Bit 0 is the announced flag, then the depth
   (<= n - 1 hops), then parent + 1 (0 = the root's sentinel parent, so the
   field spans [0 .. n]).  -1 stays outside the packed domain as the
   "unreached" sentinel. *)
let flat_fields ~n =
  match
    Pack.layout [ 1; Pack.width_of_max (max 1 (n - 1)); Pack.width_of_max n ]
  with
  | [| announced; depth; parent1 |] -> announced, depth, parent1
  | _ -> assert false

(* Native flat-engine BFS (see {!Sim.flat_protocol}): the same wavefront
   as [protocol], with the whole node state packed into one immediate int
   (layout above) so the flat engine's steady-state loop allocates
   nothing.  Unlike [protocol] — whose unreached nodes report not-done
   and are therefore stepped every round — unreached nodes here report
   done and are woken by arriving mail, so the sparse scheduler keeps the
   active list at the wavefront.  Quiescence round, messages, bits, and
   the resulting tree are unchanged (the differential suite checks this);
   only the stepped/telemetry series shrink. *)
let flat_protocol ~n ~root : (int, int) Sim.flat_protocol =
  (* The layout depends only on [n], so it is computed once here — the
     protocol value captures three immutable fields and the hot step
     allocates nothing.  (An earlier version lazily synced the fields
     from inside [fp_step] through captured refs; that is exactly the
     cross-domain write the typed domain-race rule forbids, so the node
     count is a constructor argument instead.) *)
  let f_ann, f_depth, f_parent1 = flat_fields ~n in
  {
    fp_init =
      (fun view ->
        if view.Sim.n <> n then
          invalid_arg "Bfs.flat_protocol: graph size differs from ~n";
        if view.Sim.node = root then 0 else -1);
    fp_step =
      (fun view ~round:_ st ~inbox ~emit ->
        let st =
          if st = -1 then begin
            (* Join the tree via the smallest-id sender in this inbox. *)
            let k = Sim.inbox_len inbox in
            if k = 0 then st
            else begin
              let best_s = ref (Sim.inbox_src inbox 0) in
              let best_d = ref (Sim.inbox_msg inbox 0) in
              for i = 1 to k - 1 do
                let s = Sim.inbox_src inbox i in
                if s < !best_s then begin
                  best_s := s;
                  best_d := Sim.inbox_msg inbox i
                end
              done;
              Pack.put f_parent1 (!best_s + 1)
                (Pack.put f_depth (!best_d + 1) 0)
            end
          end
          else st
        in
        if st >= 0 && Pack.get f_ann st = 0 then begin
          let depth = Pack.get f_depth st in
          Array.iter (fun (nb, _, _) -> emit ~dst:nb depth) view.Sim.nbrs;
          Pack.put f_ann 1 st
        end
        else st);
    fp_is_done = (fun st -> st = -1 || st land 1 = 1);
    fp_msg_bits = (fun d -> Bitsize.int_bits (max d 1));
    fp_wake = Some Sim.never;
  }

let flat_state_parent_depth ~n st =
  if st = -1 then None
  else
    let _, f_depth, f_parent1 = flat_fields ~n in
    Some (Pack.get f_parent1 st - 1, Pack.get f_depth st)

let tree_of_parent_depth ~root ~parent ~depth =
  let n = Array.length parent in
  let children = Array.make n [] in
  Array.iteri
    (fun v p -> if p >= 0 then children.(p) <- v :: children.(p))
    parent;
  let height = Array.fold_left max 0 depth in
  { root; parent; depth; children; height }

let build ?observer ?telemetry ?flat ?jobs ?chaos g ~root =
  let n = Graph.n g in
  (* Precondition check: on a disconnected graph the flood never reaches
     everyone and the simulation would spin to its round limit. *)
  if not (Graph.is_connected g) then
    invalid_arg "Bfs.build: disconnected graph";
  if Option.is_none chaos && flat = Some true then begin
    (* Native port: run on the flat engine directly and decode the packed
       states.  Tree and stats are bit-identical to the classic path. *)
    let states, stats =
      Telemetry.span_opt telemetry "bfs" (fun () ->
          Sim.run_flat ?observer ?telemetry ?jobs g (flat_protocol ~n ~root))
    in
    let parent = Array.make n (-1) in
    let depth = Array.make n 0 in
    Array.iteri
      (fun v st ->
        match flat_state_parent_depth ~n st with
        | None -> invalid_arg "Bfs.build: disconnected graph"
        | Some (p, d) ->
            parent.(v) <- p;
            depth.(v) <- d)
      states;
    tree_of_parent_depth ~root ~parent ~depth, stats
  end
  else begin
  let states, stats =
    Telemetry.span_opt telemetry "bfs" (fun () ->
        Fault.sim_run ?observer ?telemetry ?flat ?jobs ?chaos
          ~recovery:(Fault.immutable ()) g (protocol ~root))
  in
  let parent = Array.make n (-1) in
  let depth = Array.make n 0 in
  Array.iteri
    (fun v st ->
      match st.parent with
      | None -> invalid_arg "Bfs.build: disconnected graph"
      | Some p ->
          parent.(v) <- p;
          depth.(v) <- st.depth)
    states;
  tree_of_parent_depth ~root ~parent ~depth, stats
  end

let max_id_root g = Graph.n g - 1
