module Graph = Dsf_graph.Graph
module Bitsize = Dsf_util.Bitsize

type tree = {
  root : int;
  parent : int array;
  depth : int array;
  children : int list array;
  height : int;
}

type state = { parent : int option; depth : int; announced : bool }

type msg = Join of int  (** sender's depth *)

let protocol ~root : (state, msg) Sim.protocol =
  {
      init =
        (fun view ->
          if view.Sim.node = root then
            { parent = Some (-1); depth = 0; announced = false }
          else { parent = None; depth = max_int; announced = false });
      step =
        (fun view ~round:_ st ~inbox ->
          (* Join the tree via the smallest-id neighbor heard from first. *)
          let st =
            if st.parent = None then begin
              let best =
                List.fold_left
                  (fun acc (sender, Join d) ->
                    match acc with
                    | Some (_, bs) when bs <= sender -> acc
                    | _ -> Some (d, sender))
                  None inbox
              in
              match best with
              | Some (d, sender) ->
                  { parent = Some sender; depth = d + 1; announced = false }
              | None -> st
            end
            else st
          in
          match st.parent with
          | Some _ when not st.announced ->
              let outbox =
                Array.to_list view.Sim.nbrs
                |> List.map (fun (nb, _, _) -> nb, Join st.depth)
              in
              { st with announced = true }, outbox
          | _ -> st, []);
      is_done = (fun st -> st.parent <> None && st.announced);
      msg_bits = (fun (Join d) -> Bitsize.int_bits (max d 1));
      (* Unreached nodes are not done; reached-and-announced nodes only
         react to mail. *)
      wake = Some Sim.never;
  }

let build ?observer ?telemetry g ~root =
  let n = Graph.n g in
  (* Precondition check: on a disconnected graph the flood never reaches
     everyone and the simulation would spin to its round limit. *)
  if not (Graph.is_connected g) then
    invalid_arg "Bfs.build: disconnected graph";
  let states, stats =
    Telemetry.span_opt telemetry "bfs" (fun () ->
        Sim.run ?observer ?telemetry g (protocol ~root))
  in
  let parent = Array.make n (-1) in
  let depth = Array.make n 0 in
  Array.iteri
    (fun v st ->
      match st.parent with
      | None -> invalid_arg "Bfs.build: disconnected graph"
      | Some p ->
          parent.(v) <- p;
          depth.(v) <- st.depth)
    states;
  let children = Array.make n [] in
  Array.iteri
    (fun v p -> if p >= 0 then children.(p) <- v :: children.(p))
    parent;
  let height = Array.fold_left max 0 depth in
  { root; parent; depth; children; height }, stats

let max_id_root g = Graph.n g - 1
