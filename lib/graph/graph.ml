type edge = { u : int; v : int; w : int; id : int }

(* Flat compressed-sparse-row mirror of the adjacency structure, built once
   at construction.  Directed position p (one per edge direction, 2m total)
   lives in its source node's row [off.(v) .. off.(v+1) - 1] and aligns
   index-for-index with [adj v]: position [off.(v) + i] describes the same
   incident edge as [(adj v).(i)].  [srt] stores each row's positions
   re-sorted by neighbor id so (src, dst) -> position resolves by binary
   search with no per-node hash tables. *)
type csr = {
  off : int array;
  dst : int array;
  wgt : int array;
  eid : int array;
  twin : int array;
  srt : int array;
}

type t = {
  n : int;
  edges : edge array;
  adj : (int * int * int) array array;
  (* Build-once memo of the CSR view.  Deferred so graphs that are never
     simulated (centralized references, transform intermediates) skip the
     O(m) construction, and memoized so multi-phase algorithms share one
     physical view across every primitive call.  The race on this field is
     benign: concurrent forcing builds equal views and one pointer write
     wins atomically — but the flat engine still forces it before fanning
     out domains so workers never build it. *)
  mutable csr_memo : csr option;
}

let build_csr ~n edges adj =
  let m = Array.length edges in
  let off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    off.(v + 1) <- off.(v) + Array.length adj.(v)
  done;
  let dst = Array.make (2 * m) 0 in
  let wgt = Array.make (2 * m) 0 in
  let eid = Array.make (2 * m) 0 in
  let fill = Array.make n 0 in
  (* Position of each edge in its u-row / v-row, for the twin pointers. *)
  let upos = Array.make m 0 in
  let vpos = Array.make m 0 in
  Array.iter
    (fun e ->
      let pu = off.(e.u) + fill.(e.u) in
      dst.(pu) <- e.v;
      wgt.(pu) <- e.w;
      eid.(pu) <- e.id;
      upos.(e.id) <- pu;
      fill.(e.u) <- fill.(e.u) + 1;
      let pv = off.(e.v) + fill.(e.v) in
      dst.(pv) <- e.u;
      wgt.(pv) <- e.w;
      eid.(pv) <- e.id;
      vpos.(e.id) <- pv;
      fill.(e.v) <- fill.(e.v) + 1)
    edges;
  let twin = Array.make (2 * m) 0 in
  for id = 0 to m - 1 do
    twin.(upos.(id)) <- vpos.(id);
    twin.(vpos.(id)) <- upos.(id)
  done;
  let srt = Array.init (2 * m) Fun.id in
  for v = 0 to n - 1 do
    let lo = off.(v) and hi = off.(v + 1) in
    (* Insertion sort of the row's positions by neighbor id: rows are short
       and already nearly sorted on most generators. *)
    for i = lo + 1 to hi - 1 do
      let p = srt.(i) in
      let key = dst.(p) in
      let j = ref (i - 1) in
      while !j >= lo && dst.(srt.(!j)) > key do
        srt.(!j + 1) <- srt.(!j);
        decr j
      done;
      srt.(!j + 1) <- p
    done
  done;
  { off; dst; wgt; eid; twin; srt }

let make_arr ~n triples =
  if n <= 0 then invalid_arg "Graph.make: n must be positive";
  let m = Array.length triples in
  let seen = Hashtbl.create m in
  let check (u, v, w) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Graph.make: endpoint out of range";
    if u = v then invalid_arg "Graph.make: self-loop";
    if w <= 0 then invalid_arg "Graph.make: non-positive weight";
    let key = min u v, max u v in
    if Hashtbl.mem seen key then invalid_arg "Graph.make: duplicate edge";
    Hashtbl.add seen key ()
  in
  Array.iter check triples;
  let edges =
    Array.mapi (fun id (u, v, w) -> { u; v; w; id }) triples
  in
  let deg = Array.make n 0 in
  Array.iter
    (fun e ->
      deg.(e.u) <- deg.(e.u) + 1;
      deg.(e.v) <- deg.(e.v) + 1)
    edges;
  let adj = Array.init n (fun v -> Array.make deg.(v) (0, 0, 0)) in
  let fill = Array.make n 0 in
  Array.iter
    (fun e ->
      adj.(e.u).(fill.(e.u)) <- (e.v, e.w, e.id);
      fill.(e.u) <- fill.(e.u) + 1;
      adj.(e.v).(fill.(e.v)) <- (e.u, e.w, e.id);
      fill.(e.v) <- fill.(e.v) + 1)
    edges;
  { n; edges; adj; csr_memo = None }

let make ~n edge_triples = make_arr ~n (Array.of_list edge_triples)

let unweighted ~n pairs = make ~n (List.map (fun (u, v) -> u, v, 1) pairs)

let unweighted_arr ~n pairs =
  make_arr ~n (Array.map (fun (u, v) -> u, v, 1) pairs)

let n g = g.n
let m g = Array.length g.edges
let edges g = g.edges
let edge g id = g.edges.(id)
let adj g v = g.adj.(v)
let degree g v = Array.length g.adj.(v)

let csr g =
  match g.csr_memo with
  | Some c -> c
  | None ->
      let c = build_csr ~n:g.n g.edges g.adj in
      g.csr_memo <- Some c;
      c

let pos c ~src ~dst:d =
  if src < 0 || src + 1 >= Array.length c.off then -1
  else begin
    let lo = ref c.off.(src) and hi = ref (c.off.(src + 1) - 1) in
    let found = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let p = c.srt.(mid) in
      let nb = c.dst.(p) in
      if nb = d then begin
        found := p;
        lo := !hi + 1
      end
      else if nb < d then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  end

let csr_pos g ~src ~dst = pos (csr g) ~src ~dst

let max_degree g =
  let d = ref 0 in
  for v = 0 to g.n - 1 do
    d := max !d (degree g v)
  done;
  !d

let total_weight g = Array.fold_left (fun acc e -> acc + e.w) 0 g.edges

let max_weight g = Array.fold_left (fun acc e -> max acc e.w) 0 g.edges

let endpoints g id =
  let e = g.edges.(id) in
  e.u, e.v

let other_endpoint g ~eid v =
  let e = g.edges.(eid) in
  if e.u = v then e.v
  else begin
    assert (e.v = v);
    e.u
  end

let find_edge g u v =
  let c = csr g in
  match pos c ~src:u ~dst:v with
  | -1 -> None
  | p -> Some c.eid.(p)

let connected_components g =
  let uf = Dsf_util.Union_find.create g.n in
  Array.iter (fun e -> ignore (Dsf_util.Union_find.union uf e.u e.v)) g.edges;
  Array.init g.n (fun v -> Dsf_util.Union_find.find uf v)

let is_connected g =
  let comp = connected_components g in
  Array.for_all (fun c -> c = comp.(0)) comp

let edge_set_weight g selected =
  let acc = ref 0 in
  Array.iter (fun e -> if selected.(e.id) then acc := !acc + e.w) g.edges;
  !acc

let edge_list_of_set g selected =
  Array.to_list g.edges |> List.filter (fun e -> selected.(e.id))

let subgraph_union_find g selected =
  let uf = Dsf_util.Union_find.create g.n in
  Array.iter
    (fun e -> if selected.(e.id) then ignore (Dsf_util.Union_find.union uf e.u e.v))
    g.edges;
  uf

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," g.n (m g);
  Array.iter
    (fun e -> Format.fprintf ppf "  %d -- %d  (w=%d, id=%d)@," e.u e.v e.w e.id)
    g.edges;
  Format.fprintf ppf "@]"
