(* A list, not an array: the table is read-only and a toplevel array
   would be writable shared state (dsf-lint's global-state rule). *)
let palette =
  [ "lightblue"; "lightcoral"; "palegreen"; "gold"; "plum"; "orange";
    "cyan"; "pink"; "yellowgreen"; "tan" ]

let graph ppf g =
  Format.fprintf ppf "@[<v>graph G {@,  node [shape=circle];@,";
  Array.iter
    (fun (e : Graph.edge) ->
      Format.fprintf ppf "  %d -- %d [label=\"%d\"];@," e.u e.v e.w)
    (Graph.edges g);
  Format.fprintf ppf "}@]@."

let instance ?solution ppf (inst : Instance.ic) =
  let g = inst.Instance.graph in
  Format.fprintf ppf "@[<v>graph G {@,  node [shape=circle];@,";
  Array.iteri
    (fun v l ->
      if l >= 0 then
        Format.fprintf ppf
          "  %d [shape=box style=filled fillcolor=%s label=\"%d:%d\"];@," v
          (List.nth palette (l mod List.length palette))
          v l)
    inst.Instance.labels;
  Array.iter
    (fun (e : Graph.edge) ->
      let in_solution =
        match solution with Some f -> f.(e.id) | None -> false
      in
      if in_solution then
        Format.fprintf ppf
          "  %d -- %d [label=\"%d\" penwidth=3 color=red];@," e.u e.v e.w
      else Format.fprintf ppf "  %d -- %d [label=\"%d\"];@," e.u e.v e.w)
    (Graph.edges g);
  Format.fprintf ppf "}@]@."

let to_file path pp x =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  Fun.protect
    ~finally:(fun () ->
      Format.pp_print_flush ppf ();
      close_out oc)
    (fun () -> pp ppf x)
