module Rng = Dsf_util.Rng

(* Growable edge-triple buffer so generators of unknown output size build
   O(m) arrays without intermediate lists.  [to_array_rev] reproduces the
   cons-accumulated (most-recent-first) order the generators used
   historically, so edge ids — and therefore every downstream RNG stream
   and differential-test expectation — are unchanged. *)
module Ebuf = struct
  type t = { mutable a : (int * int * int) array; mutable len : int }

  let create () = { a = Array.make 16 (0, 0, 0); len = 0 }

  let push b u v w =
    if b.len = Array.length b.a then begin
      let a' = Array.make (2 * b.len) (0, 0, 0) in
      Array.blit b.a 0 a' 0 b.len;
      b.a <- a'
    end;
    b.a.(b.len) <- (u, v, w);
    b.len <- b.len + 1

  let to_array b = Array.sub b.a 0 b.len

  let to_array_rev b = Array.init b.len (fun i -> b.a.(b.len - 1 - i))
end

let path n =
  Graph.unweighted_arr ~n (Array.init (n - 1) (fun i -> i, i + 1))

let cycle n =
  assert (n >= 3);
  Graph.unweighted_arr ~n
    (Array.init n (fun i -> if i = 0 then n - 1, 0 else i - 1, i))

let star n =
  assert (n >= 2);
  Graph.unweighted_arr ~n (Array.init (n - 1) (fun i -> 0, i + 1))

let complete n =
  let m = n * (n - 1) / 2 in
  let edges = Array.make m (0, 0) in
  let idx = ref m in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      decr idx;
      edges.(!idx) <- (u, v)
    done
  done;
  Graph.unweighted_arr ~n edges

let grid ~rows ~cols =
  let id r c = (r * cols) + c in
  let m = (rows * (cols - 1)) + ((rows - 1) * cols) in
  let edges = Array.make m (0, 0) in
  let idx = ref m in
  let put u v =
    decr idx;
    edges.(!idx) <- (u, v)
  in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then put (id r c) (id r (c + 1));
      if r + 1 < rows then put (id r c) (id (r + 1) c)
    done
  done;
  Graph.unweighted_arr ~n:(rows * cols) edges

let binary_tree n =
  assert (n >= 2);
  Graph.unweighted_arr ~n (Array.init (n - 1) (fun i -> (i + 1 - 1) / 2, i + 1))

let reweight rng ~max_w g =
  let es = Graph.edges g in
  let m = Array.length es in
  let triples = Array.make m (0, 0, 0) in
  (* Explicit loop: weight draws must happen in edge-id order. *)
  for i = 0 to m - 1 do
    let e = es.(i) in
    triples.(i) <- (e.Graph.u, e.Graph.v, Rng.int_in rng 1 max_w)
  done;
  Graph.make_arr ~n:(Graph.n g) triples

let random_connected rng ~n ~extra_edges ~max_w =
  assert (n >= 2);
  (* Random spanning tree by uniform attachment over a random node order. *)
  let order = Rng.permutation rng n in
  let edges = Hashtbl.create (n + extra_edges) in
  let add u v =
    let key = min u v, max u v in
    if u <> v && not (Hashtbl.mem edges key) then begin
      Hashtbl.add edges key ();
      true
    end
    else false
  in
  for i = 1 to n - 1 do
    let j = Rng.int rng i in
    ignore (add order.(i) order.(j))
  done;
  let added = ref 0 in
  let attempts = ref 0 in
  let max_attempts = 50 * (extra_edges + 1) in
  while !added < extra_edges && !attempts < max_attempts do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    if add u v then incr added
  done;
  (* Weight draws happen in fold order and placement runs backwards,
     matching the cons-accumulated list this used historically. *)
  let mcount = Hashtbl.length edges in
  let triples = Array.make mcount (0, 0, 0) in
  let idx = ref mcount in
  Hashtbl.fold
    (fun (u, v) () () ->
      let w = Rng.int_in rng 1 max_w in
      decr idx;
      triples.(!idx) <- (u, v, w))
    edges ();
  Graph.make_arr ~n triples

let clustered rng ~clusters ~cluster_size ~intra_extra ~bridges ~intra_w
    ~bridge_w =
  assert (clusters >= 1 && cluster_size >= 2);
  let n = clusters * cluster_size in
  let seen = Hashtbl.create (4 * n) in
  let buf = Ebuf.create () in
  let add u v w =
    let key = min u v, max u v in
    if u <> v && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Ebuf.push buf u v w;
      true
    end
    else false
  in
  for c = 0 to clusters - 1 do
    let base = c * cluster_size in
    (* Spanning tree inside the cluster. *)
    let order = Rng.permutation rng cluster_size in
    for i = 1 to cluster_size - 1 do
      let j = Rng.int rng i in
      ignore
        (add (base + order.(i)) (base + order.(j)) (Rng.int_in rng 1 intra_w))
    done;
    let added = ref 0 and attempts = ref 0 in
    while !added < intra_extra && !attempts < 50 * (intra_extra + 1) do
      incr attempts;
      let u = base + Rng.int rng cluster_size
      and v = base + Rng.int rng cluster_size in
      if add u v (Rng.int_in rng 1 intra_w) then incr added
    done;
    (* Bridges to the next cluster. *)
    if c + 1 < clusters then begin
      let next = (c + 1) * cluster_size in
      let added = ref 0 and attempts = ref 0 in
      while !added < bridges && !attempts < 50 * (bridges + 1) do
        incr attempts;
        let u = base + Rng.int rng cluster_size
        and v = next + Rng.int rng cluster_size in
        if add u v (Rng.int_in rng (max 1 (bridge_w / 2)) bridge_w) then
          incr added
      done;
      (* Guarantee connectivity even if the random bridges collided. *)
      if !added = 0 then ignore (add base next bridge_w)
    end
  done;
  Graph.make_arr ~n (Ebuf.to_array_rev buf)

let random_geometric rng ~n ~radius ~max_w =
  assert (n >= 2);
  let pts = Array.init n (fun _ -> Rng.float rng 1.0, Rng.float rng 1.0) in
  let dist i j =
    let xi, yi = pts.(i) and xj, yj = pts.(j) in
    sqrt (((xi -. xj) ** 2.) +. ((yi -. yj) ** 2.))
  in
  let scale = float_of_int max_w /. radius in
  let weight_of d = max 1 (int_of_float (d *. scale)) in
  let edges = Hashtbl.create (4 * n) in
  let add i j =
    let key = min i j, max i j in
    if i <> j && not (Hashtbl.mem edges key) then
      Hashtbl.add edges key (weight_of (dist i j))
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if dist i j <= radius then add i j
    done
  done;
  (* Stitch components together via nearest cross-component pairs. *)
  let uf = Dsf_util.Union_find.create n in
  Hashtbl.iter (fun (i, j) _ -> ignore (Dsf_util.Union_find.union uf i j)) edges;
  while Dsf_util.Union_find.n_sets uf > 1 do
    let best = ref None in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if not (Dsf_util.Union_find.same uf i j) then begin
          let d = dist i j in
          match !best with
          | Some (bd, _, _) when bd <= d -> ()
          | _ -> best := Some (d, i, j)
        end
      done
    done;
    match !best with
    | None -> assert false
    | Some (_, i, j) ->
        add i j;
        ignore (Dsf_util.Union_find.union uf i j)
  done;
  let mcount = Hashtbl.length edges in
  let triples = Array.make mcount (0, 0, 0) in
  let idx = ref mcount in
  Hashtbl.fold
    (fun (u, v) w () ->
      decr idx;
      triples.(!idx) <- (u, v, w))
    edges ();
  Graph.make_arr ~n triples

let lollipop ~clique ~tail =
  assert (clique >= 2);
  let n = clique + tail in
  let m = (clique * (clique - 1) / 2) + tail in
  let edges = Array.make m (0, 0) in
  let idx = ref m in
  let put u v =
    decr idx;
    edges.(!idx) <- (u, v)
  in
  for u = 0 to clique - 1 do
    for v = u + 1 to clique - 1 do
      put u v
    done
  done;
  for i = 0 to tail - 1 do
    let prev = if i = 0 then clique - 1 else clique + i - 1 in
    put prev (clique + i)
  done;
  Graph.unweighted_arr ~n edges

let broom ~tail ~arm_lengths =
  let hub = 0 in
  let buf = Ebuf.create () in
  let next = ref 1 in
  (* Terminal-free tail. *)
  let prev = ref hub in
  for _ = 1 to tail do
    Ebuf.push buf !prev !next 1;
    prev := !next;
    incr next
  done;
  let terminal_pairs =
    List.map
      (fun l ->
        assert (l >= 1);
        let endpoint () =
          let p = ref hub in
          for _ = 1 to l do
            Ebuf.push buf !p !next 1;
            p := !next;
            incr next
          done;
          !p
        in
        let a = endpoint () in
        let b = endpoint () in
        a, b)
      arm_lengths
  in
  let n = !next in
  let labels = Array.make n (-1) in
  List.iteri
    (fun i (a, b) ->
      labels.(a) <- i;
      labels.(b) <- i)
    terminal_pairs;
  (* [broom] historically built its list with a final [List.rev], so push
     order here is already the edge-id order. *)
  Graph.make_arr ~n (Ebuf.to_array buf), labels

let random_labels rng ~n ~t ~k =
  assert (t <= n);
  assert (k >= 1 && t >= 2 * k);
  let terminals = Rng.sample_without_replacement rng t n in
  let labels = Array.make n (-1) in
  (* Give each component two terminals first, then distribute the rest. *)
  Array.iteri
    (fun i v ->
      let lbl = if i < 2 * k then i mod k else Rng.int rng k in
      labels.(v) <- lbl)
    terminals;
  labels

let spread_labels rng g ~t ~k =
  let n = Graph.n g in
  assert (t <= n);
  assert (k >= 1 && t >= 2 * k);
  (* Grow k BFS regions from random seeds; each region hosts one component. *)
  let seeds = Rng.sample_without_replacement rng k n in
  let owner = Array.make n (-1) in
  let q = Queue.create () in
  Array.iteri
    (fun i s ->
      owner.(s) <- i;
      Queue.add s q)
    seeds;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun (nb, _, _) ->
        if owner.(nb) = -1 then begin
          owner.(nb) <- owner.(v);
          Queue.add nb q
        end)
      (Graph.adj g v)
  done;
  let regions = Array.make k [] in
  for v = 0 to n - 1 do
    if owner.(v) >= 0 then regions.(owner.(v)) <- v :: regions.(owner.(v))
  done;
  let labels = Array.make n (-1) in
  let per = max 2 (t / k) in
  let placed = ref 0 in
  Array.iteri
    (fun i members ->
      let arr = Array.of_list members in
      Rng.shuffle rng arr;
      let want = min (Array.length arr) (if i = k - 1 then t - !placed else per) in
      for j = 0 to want - 1 do
        labels.(arr.(j)) <- i;
        incr placed
      done)
    regions;
  (* Regions can be tiny; ensure every component has >= 2 terminals by
     borrowing unlabelled nodes anywhere in the graph. *)
  let count = Array.make k 0 in
  Array.iter (fun l -> if l >= 0 then count.(l) <- count.(l) + 1) labels;
  let free = ref [] in
  for v = n - 1 downto 0 do
    if labels.(v) = -1 then free := v :: !free
  done;
  for lbl = 0 to k - 1 do
    while count.(lbl) < 2 do
      match !free with
      | [] -> invalid_arg "Gen.spread_labels: not enough nodes"
      | v :: rest ->
          free := rest;
          labels.(v) <- lbl;
          count.(lbl) <- count.(lbl) + 1
    done
  done;
  labels
