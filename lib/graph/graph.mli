(** Weighted undirected graphs with integer weights.

    This is the network substrate for everything in the repository: the
    CONGEST simulator runs on it, the centralized reference algorithms run on
    it, and instances of the Steiner Forest problem are a graph plus terminal
    labels ({!Instance}).

    Nodes are [0 .. n-1].  Edges carry positive integer weights (the paper
    assumes weights polynomially bounded in [n]) and a stable [id] in
    [0 .. m-1] used to represent output edge sets compactly as bit arrays. *)

type edge = private { u : int; v : int; w : int; id : int }

type t

(** {2 Flat CSR view}

    A compressed-sparse-row mirror of the adjacency structure, built once at
    construction and shared by every consumer (notably the flat simulator
    engine's arena accounting).  Each of the [2m] {e directed positions}
    describes one direction of one edge; position [p] lives in its source
    node's row [off.(v) .. off.(v+1) - 1] and aligns index-for-index with
    {!adj}: position [off.(v) + i] is [(adj g v).(i)].

    The arrays are physically mutable (plain [int array]) but logically
    immutable — treat them as read-only. *)
type csr = {
  off : int array;  (** row offsets, length [n + 1] *)
  dst : int array;  (** neighbor id per position, length [2m] *)
  wgt : int array;  (** edge weight per position *)
  eid : int array;  (** edge id per position *)
  twin : int array;
      (** position of the reverse direction of the same edge; an
          involution without fixed points *)
  srt : int array;
      (** per-row permutation of positions sorted by neighbor id (the
          index {!csr_pos} binary-searches) *)
}

val make : n:int -> (int * int * int) list -> t
(** [make ~n edges] builds a graph on [n] nodes from [(u, v, w)] triples.
    Raises [Invalid_argument] on self-loops, duplicate edges, endpoints out
    of range, or non-positive weights. *)

val make_arr : n:int -> (int * int * int) array -> t
(** Array-based construction path: identical validation and edge-id
    assignment to {!make} (ids follow array order) without materializing
    intermediate lists — the constructor {!Gen} uses so corpus-scale
    instances build in O(m). *)

val unweighted : n:int -> (int * int) list -> t
(** All edges get weight 1. *)

val unweighted_arr : n:int -> (int * int) array -> t
(** Array-based {!unweighted}. *)

val n : t -> int
val m : t -> int
val edges : t -> edge array
val edge : t -> int -> edge
(** Edge by id. *)

val adj : t -> int -> (int * int * int) array
(** [adj g v] is the array of [(neighbor, weight, edge_id)] for [v]. *)

val csr : t -> csr
(** The flat CSR view, built on first use and memoized on the graph: every
    call returns the same physical value, so multi-phase algorithms (and the
    flat engine's per-message accounting) share one view instead of
    reconstructing it per primitive call.  The memo write is a benign race
    under domains (equal views, atomic pointer store), but callers that fan
    out domains should force it once up front — {!Dsf_congest.Sim.run_flat}
    does. *)

val csr_pos : t -> src:int -> dst:int -> int
(** [csr_pos g ~src ~dst] is the directed CSR position of the edge from
    [src] to [dst], or [-1] if no such edge exists (or [src] is out of
    range).  O(log degree) binary search, no allocation (beyond forcing the
    memo on first use). *)

val pos : csr -> src:int -> dst:int -> int
(** {!csr_pos} on an already-forced view — the hot-path variant for inner
    loops that resolve one position per delivered message. *)

val degree : t -> int -> int
val max_degree : t -> int
val total_weight : t -> int
val max_weight : t -> int

val endpoints : t -> int -> int * int
(** Endpoints of an edge by id. *)

val other_endpoint : t -> eid:int -> int -> int
(** [other_endpoint g ~eid v] is the endpoint of edge [eid] that is not [v]. *)

val find_edge : t -> int -> int -> int option
(** Edge id connecting two given nodes, if any. *)

val is_connected : t -> bool

val connected_components : t -> int array
(** [connected_components g] assigns each node a component representative. *)

val edge_set_weight : t -> bool array -> int
(** Total weight of the edges whose id is set in the given bit array. *)

val edge_list_of_set : t -> bool array -> edge list

val subgraph_union_find : t -> bool array -> Dsf_util.Union_find.t
(** Union-find over nodes connected by the selected edge set. *)

val pp : Format.formatter -> t -> unit
