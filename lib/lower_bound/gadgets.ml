module Graph = Dsf_graph.Graph
module Instance = Dsf_graph.Instance

type side = Alice | Bob

type cr_gadget = {
  cr : Instance.cr;
  cr_side : side array;
  heavy_edges : int list;
  cr_universe : int;
}

type ic_gadget = {
  ic : Instance.ic;
  ic_side : side array;
  bridge_edge : int;
  ic_universe : int;
}

(* Node numbering for the CR gadget: a_{-1} = 0, a_0 = 1, a_i = 1 + i
   (i = 1..N); b_{-1} = N + 2, b_0 = N + 3, b_i = N + 3 + i. *)
let cr_gadget ~universe ~rho ~a ~b =
  assert (Array.length a = universe && Array.length b = universe);
  let n = (2 * universe) + 4 in
  let a_minus = 0 and a_0 = 1 in
  let a_i i = 1 + i in
  let b_minus = universe + 2 and b_0 = universe + 3 in
  let b_i i = universe + 3 + i in
  let heavy_w = (rho * ((2 * universe) + 2)) + 1 in
  let edges = ref [] in
  for i = 1 to universe do
    edges := (a_i i, (if a.(i - 1) then a_0 else a_minus), 1) :: !edges;
    edges := (b_i i, (if b.(i - 1) then b_0 else b_minus), 1) :: !edges
  done;
  (* Cross edges: light crossing pair, heavy parallel pair. *)
  edges :=
    (a_0, b_minus, 1) :: (a_minus, b_0, 1)
    :: (a_0, b_0, heavy_w) :: (a_minus, b_minus, heavy_w)
    :: !edges;
  let g = Graph.make ~n (List.rev !edges) in
  let heavy_edges =
    [ Graph.find_edge g a_0 b_0; Graph.find_edge g a_minus b_minus ]
    |> List.filter_map Fun.id
  in
  let requests = Array.make n [] in
  for i = 1 to universe do
    if a.(i - 1) then requests.(a_i i) <- [ b_i i ];
    if b.(i - 1) then requests.(b_i i) <- [ a_i i ]
  done;
  let cr = Instance.make_cr g requests in
  let cr_side =
    Array.init n (fun v -> if v <= universe + 1 then Alice else Bob)
  in
  { cr; cr_side; heavy_edges; cr_universe = universe }

(* IC gadget: a_0 = 0, a_i = i (i = 1..N); b_0 = N + 1, b_i = N + 1 + i. *)
let ic_gadget ~universe ~a ~b =
  assert (Array.length a = universe && Array.length b = universe);
  let n = (2 * universe) + 2 in
  let a_0 = 0 and b_0 = universe + 1 in
  let a_i i = i and b_i i = universe + 1 + i in
  let edges = ref [ a_0, b_0, 1 ] in
  for i = 1 to universe do
    edges := (a_0, a_i i, 1) :: !edges;
    edges := (b_0, b_i i, 1) :: !edges
  done;
  let g = Graph.make ~n (List.rev !edges) in
  let labels = Array.make n (-1) in
  for i = 1 to universe do
    if a.(i - 1) then labels.(a_i i) <- i;
    if b.(i - 1) then labels.(b_i i) <- i
  done;
  let ic = Instance.make_ic g labels in
  let bridge_edge =
    match Graph.find_edge g a_0 b_0 with Some id -> id | None -> assert false
  in
  let ic_side = Array.init n (fun v -> if v <= universe then Alice else Bob) in
  { ic; ic_side; bridge_edge; ic_universe = universe }

let disjoint a b =
  let inter = ref false in
  Array.iteri (fun i x -> if x && b.(i) then inter := true) a;
  not !inter

let cr_answer_consistent gadget solution =
  let uses_heavy = List.exists (fun id -> solution.(id)) gadget.heavy_edges in
  let u = gadget.cr_universe in
  (* Element j (0-based) lives at nodes a_{j+1} = j + 2 and
     b_{j+1} = u + 3 + (j + 1). *)
  let req_a =
    Array.init u (fun j -> gadget.cr.Instance.requests.(j + 2) <> [])
  in
  let req_b =
    Array.init u (fun j -> gadget.cr.Instance.requests.(u + 4 + j) <> [])
  in
  let disj = disjoint req_a req_b in
  (* Disjoint -> the cheap solution avoids heavy edges; intersecting ->
     feasibility forces a heavy edge. *)
  uses_heavy = not disj

let ic_answer_consistent gadget solution =
  (* Reconstruct A and B from the labels. *)
  let u = gadget.ic_universe in
  let a = Array.init u (fun i -> gadget.ic.Instance.labels.(i + 1) >= 0) in
  let b =
    Array.init u (fun i -> gadget.ic.Instance.labels.(u + 1 + i + 1) >= 0)
  in
  solution.(gadget.bridge_edge) = not (disjoint a b)

let cut_bits sides f =
  let total = ref 0 in
  let observe ~src ~dst ~bits =
    if sides.(src) <> sides.(dst) then total := !total + bits
  in
  let result = f ~observer:observe in
  result, !total

type padding = {
  extra_nodes : int;
  extra_diameter : int;
  extra_components : int;
}

let no_padding = { extra_nodes = 0; extra_diameter = 0; extra_components = 0 }

let cr_gadget_padded ~universe ~rho ~a ~b ~padding =
  let base = cr_gadget ~universe ~rho ~a ~b in
  let g0 = base.cr.Instance.cr_graph in
  let n0 = Graph.n g0 in
  let chain = padding.extra_nodes + padding.extra_diameter in
  let pairs = padding.extra_components in
  let n = n0 + chain + (2 * pairs) in
  let edges =
    Array.to_list (Graph.edges g0)
    |> List.map (fun (e : Graph.edge) -> e.u, e.v, e.w)
  in
  (* Chain off a_1 (node 2 in the base numbering): raises n and D without
     touching the Alice/Bob cut. *)
  let a1 = 2 in
  let edges = ref edges in
  let prev = ref a1 in
  for i = 0 to chain - 1 do
    edges := (!prev, n0 + i, 1) :: !edges;
    prev := n0 + i
  done;
  (* Locally satisfiable request pairs (c_i, c_i'): raise k.  The paper's
     remark leaves them isolated; we tether each pair to a_1 (still on
     Alice's side, off the cut) because the simulator requires a connected
     network.  The direct unit edge keeps each pair's request trivially
     satisfied there. *)
  for i = 0 to pairs - 1 do
    let c = n0 + chain + (2 * i) in
    edges := (c, c + 1, 1) :: (a1, c, 1) :: !edges
  done;
  let g = Graph.make ~n (List.rev !edges) in
  let requests = Array.make n [] in
  Array.iteri (fun v rs -> requests.(v) <- rs) base.cr.Instance.requests;
  for i = 0 to pairs - 1 do
    let c = n0 + chain + (2 * i) in
    requests.(c) <- [ c + 1 ]
  done;
  let heavy_edges =
    List.filter_map
      (fun id ->
        let u, v = Graph.endpoints g0 id in
        Graph.find_edge g u v)
      base.heavy_edges
  in
  let cr_side =
    Array.init n (fun v ->
        if v < n0 then base.cr_side.(v)
        else Alice (* all padding hangs off Alice's side *))
  in
  { cr = Instance.make_cr g requests; cr_side; heavy_edges; cr_universe = universe }

let st_hard ~s ~rho =
  assert (s >= 2 && rho >= 1);
  (* Path 0..s (unit edges); hub = s + 1 linked to every path node. *)
  let n = s + 2 in
  let hub = s + 1 in
  let heavy = (rho * s) + 1 in
  let edges =
    List.init s (fun i -> i, i + 1, 1)
    @ List.init (s + 1) (fun i -> i, hub, heavy)
  in
  let g = Graph.make ~n edges in
  let labels = Array.make n (-1) in
  labels.(0) <- 0;
  labels.(s) <- 0;
  Instance.make_ic g labels

let random_sets rng ~universe ~density ~force_intersect =
  let a = Array.init universe (fun _ -> Dsf_util.Rng.float rng 1.0 < density) in
  let b = Array.init universe (fun _ -> Dsf_util.Rng.float rng 1.0 < density) in
  (* Hard instances keep |A ∩ B| <= 1: clear B on the intersection, then
     optionally plant exactly one common element. *)
  Array.iteri (fun i x -> if x && b.(i) then b.(i) <- false) a;
  if force_intersect then begin
    let i = Dsf_util.Rng.int rng universe in
    a.(i) <- true;
    b.(i) <- true
  end;
  a, b
