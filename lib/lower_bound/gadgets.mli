(** The Set-Disjointness reduction gadgets of Figure 1 (Lemmas 3.1 and
    3.3): hard instances on which any correct Steiner Forest algorithm must
    move Omega(universe) bits across the Alice/Bob cut.

    Left gadget (DSF-CR, Lemma 3.1): Alice holds nodes a_{-1}, a_0,
    a_1..a_N; elements of A attach to a_0, the rest to a_{-1}; Bob builds
    the mirror image.  Four cross edges connect the hubs; the "parallel"
    ones (a_0-b_0, a_{-1}-b_{-1}) are heavy (weight rho*(2N+2)+1), the
    "crossing" ones are light.  Connection requests pair a_i with b_i for
    i in A resp. B.  A rho-approximate solution avoids every heavy edge
    iff A and B are disjoint.

    Right gadget (DSF-IC, Lemma 3.3): two unit-weight stars joined by the
    single edge (a_0, b_0); leaf a_i gets label i iff i in A, leaf b_i
    iff i in B.  Any feasible solution uses the bridge iff the sets
    intersect — so the bridge's presence in the output *is* the
    disjointness answer. *)

type side = Alice | Bob

type cr_gadget = {
  cr : Dsf_graph.Instance.cr;
  cr_side : side array;  (** which player simulates each node *)
  heavy_edges : int list;  (** ids of a_0-b_0 and a_{-1}-b_{-1} *)
  cr_universe : int;
}

type ic_gadget = {
  ic : Dsf_graph.Instance.ic;
  ic_side : side array;
  bridge_edge : int;  (** id of (a_0, b_0) *)
  ic_universe : int;
}

val cr_gadget : universe:int -> rho:int -> a:bool array -> b:bool array -> cr_gadget
(** [a] and [b] are the characteristic vectors of the two sets
    (length [universe]). *)

val ic_gadget : universe:int -> a:bool array -> b:bool array -> ic_gadget

val disjoint : bool array -> bool array -> bool

val cr_answer_consistent : cr_gadget -> bool array -> bool
(** Does the edge set encode the disjointness answer correctly?  I.e.,
    heavy edges are avoided iff the sets are disjoint (assuming the set is
    a rho-approximate feasible solution — the premise of Lemma 3.1). *)

val ic_answer_consistent : ic_gadget -> bool array -> bool
(** The bridge edge is used iff the sets intersect. *)

val cut_bits :
  side array -> (observer:Dsf_congest.Sim.observer -> 'a) -> 'a * int
(** [cut_bits sides f] hands [f] a cut-metering observer and returns [f]'s
    result plus the total bits that crossed the Alice/Bob cut in every
    simulation [f] threaded the observer through.  The observer is a
    per-run value (pass it as [?observer] to the solver entry points), so
    concurrent cut measurements on separate domains do not interfere —
    unlike the old [Sim.with_observer]-based version, which installed a
    process-wide tap. *)

type padding = {
  extra_nodes : int;  (** isolated-chain nodes to inflate n *)
  extra_diameter : int;  (** chain length hung off a_1 to inflate D *)
  extra_components : int;  (** disjoint request pairs (c_i, c_i') to inflate k *)
}

val no_padding : padding

val cr_gadget_padded :
  universe:int -> rho:int -> a:bool array -> b:bool array -> padding:padding ->
  cr_gadget
(** The remark after Lemma 3.1: the hard CR instance keeps its hardness
    while n, D, and k are inflated independently — extra nodes extend a
    chain off a_1 (raising n and, with [extra_diameter], D), and extra
    locally-satisfiable request pairs raise k.  All padding is on Alice's
    side, so it adds nothing to the cut communication.  This is what lets
    the Theorem 3.2 bound combine all three terms. *)

val st_hard : s:int -> rho:int -> Dsf_graph.Instance.ic
(** A Lemma 3.4-style family (shortest s-t path as Steiner Forest with
    t = 2, k = 1): terminals sit at the ends of a path of [s] unit edges —
    the only route any rho-approximation may use — while a hub connected to
    every path node with edges of weight [rho * s + 1] keeps the unweighted
    diameter at 2.  Any algorithm beating Omega~(s) rounds on this family
    would contradict the lower bound of [8]; the E12 experiment checks our
    algorithms' rounds indeed grow ~linearly in s even though D = 2. *)

val random_sets :
  Dsf_util.Rng.t -> universe:int -> density:float -> force_intersect:bool ->
  bool array * bool array
(** Random SD input; [force_intersect] plants exactly one common element
    (the hard instances have |A ∩ B| <= 1). *)
