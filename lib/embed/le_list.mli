(** Distributed least-elements (LE) list construction — the engine of the
    Khan et al. tree embedding used by the paper's randomized algorithm
    (Section 5, and footnote 7).

    Every node draws a random rank (a permutation of 0..n-1; higher wins).
    The LE list of [v] is the staircase of pairs (w, wd(v, w)) such that no
    higher-ranked node is strictly closer: reading the list by increasing
    distance, ranks strictly increase.  The list answers "who is the
    highest-ranked node within distance r of me?" for every r at once —
    which is exactly what the virtual-tree ancestors v_i = argmax rank over
    B(v, beta * 2^i) need.  W.h.p. each list has O(log n) entries.

    Construction is a pruned Bellman-Ford, genuinely simulated: accepted
    entries propagate to neighbors one per round per edge (pipelining), and
    an entry dominated at an intermediate node is dominated at every node
    behind it, so pruning is sound.  Each node also records the neighbor an
    entry arrived from, yielding next-hop routing toward every node in its
    list (the "next hop pointers" of Section 5). *)

type entry = {
  target : int;  (** the listed node w *)
  dist : int;  (** wd(v, w) *)
  rank : int;  (** rank of w (redundant but handy) *)
  next_hop : int;  (** neighbor towards w; -1 if w = v *)
}

type t = {
  ranks : int array;  (** rank per node: a permutation of 0..n-1 *)
  lists : entry list array;
      (** per node, ascending distance (and ascending rank) *)
  rounds : int;
  stats : Dsf_congest.Sim.stats;
}

val build :
  ?observer:Dsf_congest.Sim.observer -> Dsf_util.Rng.t -> Dsf_graph.Graph.t -> t
(** Draws ranks from the given RNG and runs the simulated construction. *)

val highest_within : t -> int -> int -> entry option
(** [highest_within t v r]: the highest-ranked node within weighted distance
    [r] of [v], i.e. the last list entry with [dist <= r]. *)

val max_list_length : t -> int

val verify_against : Dsf_graph.Graph.t -> t -> bool
(** Centralized re-computation of all LE lists; true iff they match.
    O(n * m log n) — test use only. *)
