module Graph = Dsf_graph.Graph
module Sim = Dsf_congest.Sim
module Bitsize = Dsf_util.Bitsize

type entry = {
  target : int;
  dist : int;
  rank : int;
  next_hop : int;
}

type t = {
  ranks : int array;
  lists : entry list array;
  rounds : int;
  stats : Dsf_congest.Sim.stats;
}

(* Staircase insertion: keep (target, dist, rank) iff no kept entry has
   dist <= its dist and rank >= its rank; inserting evicts entries it
   dominates.  Lists are ascending in (dist, rank). *)
let staircase_insert list (e : entry) =
  let dominated =
    List.exists (fun k -> k.dist <= e.dist && k.rank >= e.rank) list
  in
  if dominated then None
  else begin
    let survivors =
      List.filter (fun k -> not (k.dist >= e.dist && k.rank <= e.rank)) list
    in
    let rec insert = function
      | [] -> [ e ]
      | k :: rest ->
          if (k.dist, k.rank) < (e.dist, e.rank) then k :: insert rest
          else e :: k :: rest
    in
    Some (insert survivors)
  end

type node_state = {
  list : entry list;
  (* Per-neighbor outgoing queues of entries still to announce. *)
  out : (int, entry Queue.t) Hashtbl.t;
}

type msg = Announce of { target : int; dist : int; rank : int }

let build ?observer rng g =
  let n = Graph.n g in
  let ranks = Dsf_util.Rng.permutation rng n in
  let proto : (node_state, msg) Sim.protocol =
    {
      init =
        (fun view ->
          let v = view.Sim.node in
          let self = { target = v; dist = 0; rank = ranks.(v); next_hop = -1 } in
          let out = Hashtbl.create 4 in
          Array.iter
            (fun (nb, _, _) ->
              let q = Queue.create () in
              Queue.add self q;
              Hashtbl.replace out nb q)
            view.Sim.nbrs;
          { list = [ self ]; out });
      step =
        (fun view ~round:_ st ~inbox ->
          let v = view.Sim.node in
          let weight_to sender =
            let w = ref (-1) in
            Array.iter
              (fun (nb, wt, _) -> if nb = sender then w := wt)
              view.Sim.nbrs;
            assert (!w >= 0);
            !w
          in
          (* Absorb announcements. *)
          let st =
            List.fold_left
              (fun st (sender, Announce a) ->
                let cand =
                  {
                    target = a.target;
                    dist = a.dist + weight_to sender;
                    rank = a.rank;
                    next_hop = sender;
                  }
                in
                match staircase_insert st.list cand with
                | None -> st
                | Some list ->
                    Hashtbl.iter (fun _ q -> Queue.add cand q) st.out;
                    { st with list })
              st inbox
          in
          (* Send one (still live) queued entry per neighbor. *)
          let outbox = ref [] in
          Hashtbl.iter
            (fun nb q ->
              let rec next () =
                match Queue.take_opt q with
                | None -> ()
                | Some e ->
                    (* Skip entries we no longer hold (superseded). *)
                    if
                      List.exists
                        (fun k -> k.target = e.target && k.dist = e.dist)
                        st.list
                    then
                      outbox :=
                        (nb, Announce { target = e.target; dist = e.dist; rank = e.rank })
                        :: !outbox
                    else next ()
              in
              next ())
            st.out;
          ignore v;
          st, !outbox);
      is_done =
        (fun st ->
          Hashtbl.fold
            (fun _ q acc ->
              acc
              && Queue.fold
                   (fun acc e ->
                     acc
                     && not
                          (List.exists
                             (fun k -> k.target = e.target && k.dist = e.dist)
                             st.list))
                   true q)
            st.out true);
      msg_bits =
        (fun (Announce a) ->
          Bitsize.id_bits ~n + Bitsize.int_bits (max 1 a.dist)
          + Bitsize.id_bits ~n);
      wake = None;
    }
  in
  let states, stats = Sim.run ?observer g proto in
  {
    ranks;
    lists = Array.map (fun st -> st.list) states;
    rounds = stats.Sim.rounds;
    stats;
  }

let highest_within t v r =
  let rec last acc = function
    | [] -> acc
    | e :: rest -> if e.dist <= r then last (Some e) rest else acc
  in
  last None t.lists.(v)

let max_list_length t =
  Array.fold_left (fun acc l -> max acc (List.length l)) 0 t.lists

let verify_against g t =
  let n = Graph.n g in
  let ok = ref true in
  for v = 0 to n - 1 do
    let dist, _ = Dsf_graph.Paths.dijkstra g ~src:v in
    (* Expected staircase: scan nodes by (dist, -rank); keep strictly
       increasing ranks. *)
    let order =
      List.init n Fun.id
      |> List.filter (fun w -> dist.(w) < max_int)
      |> List.sort (fun a b ->
             compare (dist.(a), -t.ranks.(a)) (dist.(b), -t.ranks.(b)))
    in
    let expected =
      List.fold_left
        (fun (best, acc) w ->
          if t.ranks.(w) > best then t.ranks.(w), (w, dist.(w)) :: acc
          else best, acc)
        (-1, []) order
      |> snd |> List.rev
    in
    let actual = List.map (fun e -> e.target, e.dist) t.lists.(v) in
    if expected <> actual then ok := false
  done;
  !ok
