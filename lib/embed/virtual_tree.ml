module Graph = Dsf_graph.Graph
module Paths = Dsf_graph.Paths

type t = {
  le : Le_list.t;
  beta_num : int;
  levels : int;
  ancestors : int array array;
  trunc_level : int array;
  s_set : int list;
  closest_s : int array;
  voronoi_parent : int array;  (** next hop towards the closest S node *)
}

let beta_den = 1024

let beta_ball t i = t.beta_num * (1 lsl i) / beta_den

let ceil_log2 = Dsf_util.Intmath.ceil_log2

let build ?observer rng ?truncate_at g =
  let n = Graph.n g in
  let le = Le_list.build ?observer rng g in
  let rounds = ref le.Le_list.rounds in
  let beta_num = beta_den + Dsf_util.Rng.int rng beta_den in
  let wd = Paths.diameter_weighted g in
  let levels = max 1 (ceil_log2 (max 2 wd)) in
  (* The set S of highest-ranked nodes, when truncating. *)
  let s_set, closest_s, voronoi_parent =
    match truncate_at with
    | None -> [], Array.make n (-1), Array.make n (-1)
    | Some size ->
        let size = min size n in
        let by_rank =
          List.init n Fun.id
          |> List.sort (fun a b ->
                 compare le.Le_list.ranks.(b) le.Le_list.ranks.(a))
        in
        let s = List.filteri (fun i _ -> i < size) by_rank in
        let res, stats =
          Dsf_congest.Bellman_ford.run ?observer g
            ~sources:(List.map (fun v -> v, 0) s)
        in
        rounds := !rounds + stats.Dsf_congest.Sim.rounds;
        ( s,
          res.Dsf_congest.Bellman_ford.src_of,
          res.Dsf_congest.Bellman_ford.parent )
  in
  let in_s = Array.make n false in
  List.iter (fun v -> in_s.(v) <- true) s_set;
  let trunc_level = Array.make n (levels + 1) in
  let ancestors =
    Array.init n (fun v ->
        Array.init (levels + 1) (fun i ->
            let r = beta_num * (1 lsl i) / beta_den in
            let anc =
              match Le_list.highest_within le v r with
              | Some e -> e.Le_list.target
              | None -> v
            in
            (* Truncation: the first level whose ball meets S cuts the
               chain; beyond it the leaf connects to its closest S node. *)
            if s_set <> [] && in_s.(anc) && trunc_level.(v) > i then
              trunc_level.(v) <- i;
            anc))
  in
  (* Rewrite truncated levels to the closest S node. *)
  if s_set <> [] then
    for v = 0 to n - 1 do
      for i = 0 to levels do
        if i >= trunc_level.(v) then
          ancestors.(v).(i) <- (if closest_s.(v) >= 0 then closest_s.(v) else v)
      done
    done;
  ( {
      le;
      beta_num;
      levels;
      ancestors;
      trunc_level;
      s_set;
      closest_s;
      voronoi_parent;
    },
    !rounds )

let route_next_hop t v target =
  if v = target then None
  else if t.closest_s.(v) = target && t.voronoi_parent.(v) >= 0 then
    Some t.voronoi_parent.(v)
  else begin
    let entry =
      List.find_opt (fun e -> e.Le_list.target = target) t.le.Le_list.lists.(v)
    in
    match entry with
    | Some e -> Some e.Le_list.next_hop
    | None -> None
  end

let walk_path t v target =
  (* Follow next hops from v to target; returns the node sequence. *)
  let rec go acc u guard =
    if u = target || guard <= 0 then List.rev (u :: acc)
    else begin
      match route_next_hop t u target with
      | Some nb -> go (u :: acc) nb (guard - 1)
      | None -> List.rev (u :: acc)
    end
  in
  go [] v (Array.length t.closest_s)

let paths_per_node t =
  let n = Array.length t.ancestors in
  let targets_of = Array.init n (fun _ -> Hashtbl.create 8) in
  for v = 0 to n - 1 do
    let seen = Hashtbl.create 8 in
    Array.iter
      (fun w ->
        if w <> v && not (Hashtbl.mem seen w) then begin
          Hashtbl.add seen w ();
          List.iter
            (fun u -> if u <> w then Hashtbl.replace targets_of.(u) w ())
            (walk_path t v w)
        end)
      t.ancestors.(v)
  done;
  Array.map Hashtbl.length targets_of

let tree_distance t u v =
  let beta = float_of_int t.beta_num /. float_of_int beta_den in
  let rec first_common i =
    if i > t.levels then t.levels
    else if t.ancestors.(u).(i) = t.ancestors.(v).(i) then i
    else first_common (i + 1)
  in
  let i = first_common 0 in
  (* Each side pays beta * (2^0 + 2^1 + ... + 2^i) = beta * (2^{i+1} - 1). *)
  2. *. beta *. float_of_int ((1 lsl (i + 1)) - 1)

let max_ancestor_distance t =
  let best = ref 0 in
  Array.iteri
    (fun v ancs ->
      Array.iter
        (fun w ->
          if w <> v then
            List.iter
              (fun e ->
                if e.Le_list.target = w && e.Le_list.dist > !best then
                  best := e.Le_list.dist)
              t.le.Le_list.lists.(v))
        ancs)
    t.ancestors;
  !best
