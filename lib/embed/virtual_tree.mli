(** The randomized virtual-tree embedding of Khan et al. as used in
    Section 5: each graph node is a leaf with ancestors v_0, ..., v_L, where
    v_i is the highest-ranked node within weighted distance beta * 2^i of v,
    beta drawn uniformly from [1, 2], and L = ceil(log2 WD).  The virtual
    edge (v_{i-1}, v_i) has weight beta * 2^i.

    The optional truncation at a set S (the sqrt(n) highest-ranked nodes)
    implements the s > sqrt(n) regime: each leaf's chain is cut at the first
    level whose ball contains a node of S, and the leaf instead connects to
    its closest S node (Section 5, step 1).

    Ancestors are read off the LE lists; next-hop routing tables toward
    every ancestor come from the LE-list construction.  [tree_distance]
    measures the leaf-to-leaf distance through the per-leaf chains (used by
    the E11 distortion experiment). *)

type t = {
  le : Le_list.t;
  beta_num : int;  (** beta = beta_num / 1024, in [1024, 2048) *)
  levels : int;  (** L *)
  ancestors : int array array;
      (** [ancestors.(v)] has length [levels + 1]; entry i is v_i's node id.
          With truncation, entries at levels >= i_v repeat the closest
          S-node. *)
  trunc_level : int array;  (** i_v; [levels + 1] when no truncation *)
  s_set : int list;  (** the set S, empty when not truncated *)
  closest_s : int array;  (** closest S node per node; -1 when S empty *)
  voronoi_parent : int array;
      (** next hop towards the closest S node; -1 when S empty *)
}

val beta_ball : t -> int -> int
(** [beta_ball t i] = floor(beta * 2^i): the ball radius at level i
    (distances are integers, so flooring is exact for membership tests). *)

val build :
  ?observer:Dsf_congest.Sim.observer ->
  Dsf_util.Rng.t ->
  ?truncate_at:int ->
  Dsf_graph.Graph.t ->
  t * int
(** [build rng ?truncate_at g] returns the tree and the number of simulated
    rounds spent (LE lists; plus the closest-S Voronoi when truncating).
    [truncate_at] is |S| (e.g. sqrt n); omit it for the full tree. *)

val route_next_hop : t -> int -> int -> int option
(** [route_next_hop t v target]: next hop from [v] on the recorded
    least-weight path toward [target] (an ancestor of some node). *)

val paths_per_node : t -> int array
(** For each node, the number of distinct (target) shortest-path trees it
    participates in — the congestion quantity the paper bounds by
    O(log n) w.h.p. *)

val tree_distance : t -> int -> int -> float
(** Distance between two leaves through their ancestor chains (first common
    ancestor at any level pair); the embedding's metric, >= wd and
    O(log n) * wd in expectation. *)

val max_ancestor_distance : t -> int
(** max over nodes v and levels i of wd(v, v_i) — every routing path's
    weighted length is bounded by this. *)
