(* Width-checked bit-packing for flat-protocol states and messages.

   Native flat protocols keep whole node states and whole messages in one
   immediate OCaml int so the simulator's arena inboxes stay unboxed.  This
   module is the single sanctioned place where field widths are declared and
   checked: a port declares its layout once ([layout]), and every [put] is
   range-checked against the declared width, so an encoding bug surfaces as
   an [Invalid_argument] at the write site instead of silent corruption of a
   neighboring field.

   All values are non-negative; a protocol that needs a sentinel (e.g. BFS's
   "unreached") keeps it outside the packed domain as a negative int.  The
   total width of a layout is capped at 62 bits so any packed word is a valid
   non-negative OCaml immediate on 64-bit platforms. *)

type field = { off : int; width : int; mask : int }

let max_total_width = 62

let field_width f = f.width

let layout widths =
  let fields =
    List.fold_left
      (fun (off, acc) w ->
        if w < 1 then invalid_arg "Pack.layout: field width must be >= 1";
        if off + w > max_total_width then
          invalid_arg "Pack.layout: total width exceeds 62 bits";
        (off + w, { off; width = w; mask = (1 lsl w) - 1 } :: acc))
      (0, []) widths
    |> snd |> List.rev |> Array.of_list
  in
  if Array.length fields = 0 then invalid_arg "Pack.layout: empty layout";
  fields

let total_width fields =
  Array.fold_left (fun acc f -> acc + f.width) 0 fields

let fits f v = v >= 0 && v lsr f.width = 0

let put f v packed =
  if not (fits f v) then
    invalid_arg
      (Printf.sprintf "Pack.put: value %d does not fit in %d bits" v f.width);
  packed lor (v lsl f.off)

let set f v packed =
  if not (fits f v) then
    invalid_arg
      (Printf.sprintf "Pack.set: value %d does not fit in %d bits" v f.width);
  (packed land lnot (f.mask lsl f.off)) lor (v lsl f.off)

let get f packed = (packed lsr f.off) land f.mask

(* Smallest width that can represent every value in [0 .. v]; at least 1 so
   a zero-valued field still occupies a slot. *)
let width_of_max v =
  if v < 0 then invalid_arg "Pack.width_of_max: negative maximum";
  Bitsize.int_bits (max 1 v)
