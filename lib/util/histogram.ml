(* Deterministic power-of-two histogram.  Bucket 0 holds the value 0;
   bucket i >= 1 holds values in [2^(i-1), 2^i - 1] — i.e. the bucket
   index of v > 0 is the bit length of v.  Everything is integer counts,
   so merging is exact, commutative, and associative: pooled trial
   registries can be combined in any order and still render
   bit-identically (the qcheck suite checks this). *)

let bucket_count = 64

type t = {
  mutable count : int;
  mutable sum : int;
  mutable vmin : int;  (* max_int when empty *)
  mutable vmax : int;  (* -1 when empty *)
  buckets : int array;
}

let create () =
  { count = 0; sum = 0; vmin = max_int; vmax = -1;
    buckets = Array.make bucket_count 0 }

let bucket_of v =
  if v < 0 then invalid_arg "Histogram.observe: negative value"
  else if v = 0 then 0
  else begin
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    min (bucket_count - 1) (bits 0 v)
  end

let observe t v =
  let b = bucket_of v in
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  t.buckets.(b) <- t.buckets.(b) + 1

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.vmin
let max_value t = if t.count = 0 then 0 else t.vmax
let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

let merge_into ~dst t =
  dst.count <- dst.count + t.count;
  dst.sum <- dst.sum + t.sum;
  if t.vmin < dst.vmin then dst.vmin <- t.vmin;
  if t.vmax > dst.vmax then dst.vmax <- t.vmax;
  Array.iteri (fun i c -> dst.buckets.(i) <- dst.buckets.(i) + c) t.buckets

let copy t =
  { count = t.count; sum = t.sum; vmin = t.vmin; vmax = t.vmax;
    buckets = Array.copy t.buckets }

(* Non-empty buckets as [(bucket index, count)], ascending — the stable,
   order-independent rendering order. *)
let buckets t =
  let acc = ref [] in
  for i = bucket_count - 1 downto 0 do
    if t.buckets.(i) > 0 then acc := (i, t.buckets.(i)) :: !acc
  done;
  !acc

(* Human label for a bucket: the inclusive value range it covers. *)
let bucket_label i =
  if i = 0 then "0"
  else if i = 1 then "1"
  else Printf.sprintf "%d..%d" (1 lsl (i - 1)) ((1 lsl i) - 1)

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "(empty)"
  else begin
    Format.fprintf ppf "count=%d sum=%d min=%d max=%d" t.count t.sum
      (min_value t) (max_value t);
    List.iter
      (fun (i, c) -> Format.fprintf ppf " [%s]:%d" (bucket_label i) c)
      (buckets t)
  end
