exception Nested_use

(* The pool is the one deliberately process-global resource in the
   library: a single fixed set of worker domains plus the handshake state
   they rendezvous on.  Everything below is guarded by [lock]/[busy] and
   exists precisely so that *other* modules can stay free of global
   mutable state. *)
[@@@lint.allow "global-state"]

let hard_cap = 8

let default_jobs () = max 1 (min (Domain.recommended_domain_count ()) hard_cap)

(* One outstanding parallel region ("batch") at a time.  A batch is a
   chunk counter plus a closure executing one chunk; workers and the
   calling domain pull indices from the shared counter until exhausted.
   [completed] (guarded by [lock]) counts finished chunks so the caller
   knows when every chunk — including ones run by workers — is done. *)
type batch = {
  gen : int;  (* distinguishes this batch from the one a worker just ran *)
  chunks : int;
  next : int Atomic.t;
  run : int -> unit;  (* may raise; failures are routed to [on_error] *)
  on_error : int -> exn -> Printexc.raw_backtrace -> unit;  (* must not raise *)
  mutable completed : int;  (* guarded by [lock] *)
}

let lock = Mutex.create ()
let work_ready = Condition.create ()
let batch_done = Condition.create ()
let current : batch option ref = ref None
let generation = ref 0
let spawned = ref 0

(* [busy] doubles as the mutual-exclusion flag for the single parallel
   region and as the nested-use detector: a task calling [map_chunked]
   with [jobs > 1] finds it set and gets {!Nested_use}. *)
let busy = Atomic.make false

(* The chunk's completion increment is the pool's liveness invariant: the
   caller sleeps on [batch_done] until [completed = chunks], so a chunk
   that raises without being counted would wedge the pool forever.  The
   [Fun.protect] makes the count unconditional — even if [on_error]
   itself misbehaves, the batch still completes and only the offending
   domain unwinds. *)
let run_chunks b =
  let rec pull () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.chunks then begin
      Fun.protect
        ~finally:(fun () ->
          Mutex.lock lock;
          b.completed <- b.completed + 1;
          if b.completed = b.chunks then Condition.broadcast batch_done;
          Mutex.unlock lock)
        (fun () ->
          (* Not swallowed: every failure is routed to the batch's
             [on_error], which records it for deterministic re-raise in
             the calling domain (see [map_chunked]). *)
          try b.run i
          with e [@lint.allow "catch-all"] ->
            b.on_error i e (Printexc.get_raw_backtrace ()));
      pull ()
    end
  in
  pull ()

let rec worker_loop last_gen =
  Mutex.lock lock;
  let rec await () =
    match !current with
    | Some b when b.gen <> last_gen -> b
    | _ ->
        Condition.wait work_ready lock;
        await ()
  in
  let b = await () in
  Mutex.unlock lock;
  (* A worker must outlive any single batch: swallow whatever escapes
     [run_chunks] (only possible if an [on_error] callback raised) so the
     domain returns to [await] instead of dying and silently shrinking
     the pool. *)
  (try run_chunks b with _ -> ()) [@lint.allow "catch-all"];
  worker_loop b.gen

let ensure_workers want =
  let want = min want (hard_cap - 1) in
  while !spawned < want do
    incr spawned;
    (* Workers live for the whole process; they do not block exit. *)
    ignore (Domain.spawn (fun () -> worker_loop (-1)))
  done

let map_chunked ~jobs f arr =
  let len = Array.length arr in
  if jobs <= 1 || len <= 1 then Array.map f arr
  else if not (Atomic.compare_and_set busy false true) then raise Nested_use
  else
    Fun.protect ~finally:(fun () -> Atomic.set busy false) @@ fun () ->
    let results = Array.make len None in
    (* Guarded by [lock]; the failure at the smallest index wins, so the
       propagated exception is deterministic under any schedule. *)
    let first_error = ref None in
    let run i = results.(i) <- Some (f arr.(i)) in
    let on_error i e bt =
      Mutex.lock lock;
      (match !first_error with
      | Some (j, _, _) when j <= i -> ()
      | _ -> first_error := Some (i, e, bt));
      Mutex.unlock lock
    in
    ensure_workers (jobs - 1);
    Mutex.lock lock;
    incr generation;
    let b =
      { gen = !generation; chunks = len; next = Atomic.make 0; run; on_error;
        completed = 0 }
    in
    current := Some b;
    Condition.broadcast work_ready;
    Mutex.unlock lock;
    (* The calling domain is a worker too. *)
    run_chunks b;
    Mutex.lock lock;
    while b.completed < b.chunks do
      Condition.wait batch_done lock
    done;
    current := None;
    Mutex.unlock lock;
    (match !first_error with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
