(* Named metric registry: counters and histograms keyed by string.
   Internally a hashtable, but every externally visible rendering
   ({!items}, {!pp}) is sorted by name, so two registries built from the
   same multiset of observations — in any order, on any domain schedule —
   render bit-identically.  {!merge_into} is pointwise integer addition,
   hence commutative and associative; the pooled trial engine relies on
   that to merge per-trial registries in trial order and still match the
   single-domain run exactly. *)

type item = Counter of int ref | Hist of Histogram.t

type t = (string, item) Hashtbl.t

let create () : t = Hashtbl.create 16

let incr t name by =
  match Hashtbl.find_opt t name with
  | Some (Counter r) -> r := !r + by
  | Some (Hist _) ->
      invalid_arg ("Metrics.incr: `" ^ name ^ "' is a histogram")
  | None -> Hashtbl.replace t name (Counter (ref by))

let observe t name v =
  match Hashtbl.find_opt t name with
  | Some (Hist h) -> Histogram.observe h v
  | Some (Counter _) ->
      invalid_arg ("Metrics.observe: `" ^ name ^ "' is a counter")
  | None ->
      let h = Histogram.create () in
      Histogram.observe h v;
      Hashtbl.replace t name (Hist h)

let counter_value t name =
  match Hashtbl.find_opt t name with
  | Some (Counter r) -> !r
  | Some (Hist _) ->
      invalid_arg ("Metrics.counter_value: `" ^ name ^ "' is a histogram")
  | None -> 0

let histogram t name =
  match Hashtbl.find_opt t name with
  | Some (Hist h) -> Some h
  | Some (Counter _) ->
      invalid_arg ("Metrics.histogram: `" ^ name ^ "' is a counter")
  | None -> None

let items t =
  Hashtbl.fold
    (fun name item acc ->
      ( name,
        match item with
        | Counter r -> `Counter !r
        | Hist h -> `Histogram h )
      :: acc)
    t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge_into ~(dst : t) (t : t) =
  List.iter
    (fun (name, v) ->
      match v with
      | `Counter c -> incr dst name c
      | `Histogram h -> (
          match Hashtbl.find_opt dst name with
          | Some (Hist dh) -> Histogram.merge_into ~dst:dh h
          | Some (Counter _) ->
              invalid_arg
                ("Metrics.merge_into: kind mismatch for `" ^ name ^ "'")
          | None -> Hashtbl.replace dst name (Hist (Histogram.copy h))))
    (items t)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Format.fprintf ppf "@,";
      match v with
      | `Counter c -> Format.fprintf ppf "%-32s %d" name c
      | `Histogram h -> Format.fprintf ppf "%-32s %a" name Histogram.pp h)
    (items t);
  Format.fprintf ppf "@]"
