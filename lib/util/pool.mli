(** Fixed-size domain pool for embarrassingly parallel trial fan-out.

    The repository's wall-clock cost is dominated by *independent trials*:
    the Theorem 5.2 repetitions, the experiment sweeps over seeds and
    sizes, and the benchmark suites.  This module runs such fan-outs on a
    small pool of OCaml 5 domains (stdlib [Domain] + [Mutex]/[Condition],
    no external dependencies).  Worker domains are spawned lazily on first
    use, capped at {!hard_cap}, and kept alive for the whole process —
    idle workers block on a condition variable and cost nothing.

    The pool is a *harness-level* facility: a task must be a pure function
    of its input (see HACKING.md, "Domain-safety contract").  In
    particular, tasks must not mutate {!Dsf_congest.Sim}'s deprecated
    global observer/engine shims — pass the per-run parameters instead —
    and any randomness must come from an {!Rng.t} split deterministically
    from the task index *before* the fan-out, so results are bit-identical
    regardless of [jobs]. *)

exception Nested_use
(** Raised by {!map_chunked} when a parallel region is already active —
    tasks must not start a second parallel fan-out (with [jobs > 1]) from
    inside the pool.  Nested calls with [jobs = 1] are fine: they
    degenerate to [Array.map]. *)

val hard_cap : int
(** Upper bound on pool parallelism (caller + spawned workers); [jobs]
    beyond it still works, the extra chunks just queue. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] capped at {!hard_cap} — the
    default for [--jobs] style flags. *)

val map_chunked : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_chunked ~jobs f arr] is [Array.map f arr] computed by up to
    [jobs] domains (the calling domain participates).  Tasks are pulled
    one index at a time from a shared counter, so uneven task costs
    balance automatically; results land at their input's index, so the
    output ordering is deterministic and independent of [jobs].

    If one or more tasks raise, every task still runs to completion and
    the exception of the *smallest failing index* is re-raised (with its
    backtrace) — deterministic regardless of scheduling.  A raising task
    can neither wedge the pool (chunk completion is counted in a
    [Fun.protect] finalizer, so the caller is always woken) nor shrink it
    (worker domains survive any exception escaping a batch and return to
    waiting for the next one).

    [jobs <= 1] (or arrays of length <= 1) short-circuits to a plain
    sequential [Array.map] on the calling domain: no pool interaction, no
    {!Nested_use} check. *)
