(** Deterministic power-of-two histogram.

    Bucket 0 holds the value 0; bucket [i >= 1] holds values in
    [2^(i-1) .. 2^i - 1] (the bucket index of [v > 0] is the bit length
    of [v]).  All state is integer counts, so {!merge_into} is exact,
    commutative, and associative — pooled per-trial histograms can be
    merged in any order and render bit-identically.  Used by the
    telemetry layer for round-level engine metrics (active-set size,
    inbox depth, bits per round). *)

type t

val create : unit -> t

val observe : t -> int -> unit
(** Record one non-negative value.  @raise Invalid_argument on v < 0. *)

val count : t -> int
val sum : t -> int

val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int
(** 0 when empty. *)

val mean : t -> float
(** 0. when empty. *)

val merge_into : dst:t -> t -> unit
(** Add every observation of the argument into [dst]. *)

val copy : t -> t

val buckets : t -> (int * int) list
(** Non-empty buckets as [(bucket index, count)], ascending index. *)

val bucket_label : int -> string
(** Inclusive value range a bucket covers, e.g. ["4..7"]. *)

val pp : Format.formatter -> t -> unit
