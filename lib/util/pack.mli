(** Width-checked bit-packing helpers for flat-protocol encodings.

    The flat simulator engine ({!Dsf_congest.Sim.run_flat}) delivers messages
    through typed arenas that are unboxed exactly when the message (and state)
    type is an immediate int.  Native protocol ports therefore pack small
    tuples — (distance, source, hops), (parent, depth, flags) — into single
    ints.  This module centralizes those encodings so they are auditable in
    one place: each port declares a {!layout} of field widths, and every
    {!put}/{!set} is range-checked against the declared width.

    Invariants enforced:
    - every field width is at least 1 bit;
    - the total width of a layout is at most 62 bits, so any packed word is a
      non-negative OCaml immediate on 64-bit platforms (negative ints remain
      free for out-of-band sentinels such as "unreached");
    - a value written to a field must satisfy [0 <= v < 2^width], otherwise
      [Invalid_argument] is raised at the write site.

    This is the sanctioned bit-twiddling site for the repo: dsf-lint's
    packing discipline points here, and ports should not hand-roll shifts and
    masks elsewhere. *)

type field
(** One named slot of a layout: an offset and a checked width. *)

val layout : int list -> field array
(** [layout widths] allocates consecutive fields of the given widths starting
    at bit 0.  Raises [Invalid_argument] if any width is < 1, the total
    exceeds 62 bits, or the list is empty. *)

val total_width : field array -> int
(** Sum of the field widths of a layout. *)

val field_width : field -> int

val fits : field -> int -> bool
(** [fits f v] is true iff [0 <= v < 2^(width f)]. *)

val put : field -> int -> int -> int
(** [put f v packed] ors [v] into field [f] of [packed], assuming the field
    is currently zero (the common "build a fresh word" path — one [lor], no
    clearing).  Raises [Invalid_argument] if [v] does not fit. *)

val set : field -> int -> int -> int
(** [set f v packed] replaces the current contents of field [f] with [v]
    (clears then ors).  Raises [Invalid_argument] if [v] does not fit. *)

val get : field -> int -> int
(** [get f packed] extracts field [f] as a non-negative int. *)

val width_of_max : int -> int
(** [width_of_max v] is the smallest width whose fields can hold every value
    in [0 .. v] (at least 1).  Raises [Invalid_argument] on negative [v]. *)
