(** Named metric registry: counters and histograms keyed by string.

    Every rendering is sorted by name and {!merge_into} is pointwise
    integer addition (commutative, associative), so registries filled on
    different pool domains and merged in trial order render
    bit-identically to the single-domain run.  This is the backing store
    for the telemetry layer's round-level engine metrics. *)

type t

val create : unit -> t

val incr : t -> string -> int -> unit
(** Add to a counter, creating it at 0 first if absent.
    @raise Invalid_argument if the name is already a histogram. *)

val observe : t -> string -> int -> unit
(** Record a non-negative value into a histogram, creating it if absent.
    @raise Invalid_argument if the name is already a counter. *)

val counter_value : t -> string -> int
(** 0 when absent. *)

val histogram : t -> string -> Histogram.t option

val items :
  t -> (string * [ `Counter of int | `Histogram of Histogram.t ]) list
(** All entries, sorted by name. *)

val merge_into : dst:t -> t -> unit
(** Pointwise addition.  @raise Invalid_argument on a counter/histogram
    kind mismatch for the same name. *)

val pp : Format.formatter -> t -> unit
