(* Bechamel wall-clock microbenchmarks: one Test.make per core algorithm
   and substrate, all on a shared medium instance.  These measure the
   *simulator's* execution time (the paper's own metric is rounds, covered
   by the experiment tables in Tables). *)

open Bechamel
open Toolkit

module Gen = Dsf_graph.Gen
module Inst = Dsf_graph.Instance

let shared_instance =
  lazy
    (let r = Dsf_util.Rng.create 42 in
     let g = Gen.random_connected r ~n:40 ~extra_edges:30 ~max_w:10 in
     let labels = Gen.random_labels r ~n:40 ~t:10 ~k:3 in
     Inst.make_ic g labels)

let small_instance =
  lazy
    (let r = Dsf_util.Rng.create 43 in
     let g = Gen.random_connected r ~n:16 ~extra_edges:12 ~max_w:8 in
     let labels = Gen.random_labels r ~n:16 ~t:6 ~k:2 in
     Inst.make_ic g labels)

let tests =
  [
    Test.make ~name:"moat (Alg 1, n=40)"
      (Staged.stage (fun () ->
           ignore (Dsf_core.Moat.run (Lazy.force shared_instance))));
    Test.make ~name:"moat_rounded (Alg 2, eps=1/2, n=40)"
      (Staged.stage (fun () ->
           ignore
             (Dsf_core.Moat_rounded.run ~eps_num:1 ~eps_den:2
                (Lazy.force shared_instance))));
    Test.make ~name:"det_dsf (Thm 4.17, n=40)"
      (Staged.stage (fun () ->
           ignore (Dsf_core.Det_dsf.run (Lazy.force shared_instance))));
    Test.make ~name:"det_sublinear (Cor 4.21, n=40)"
      (Staged.stage (fun () ->
           ignore
             (Dsf_core.Det_sublinear.run ~eps_num:1 ~eps_den:2
                (Lazy.force shared_instance))));
    Test.make ~name:"rand_dsf (Thm 5.2, n=40, 1 rep)"
      (Staged.stage (fun () ->
           ignore
             (Dsf_core.Rand_dsf.run ~repetitions:1
                ~rng:(Dsf_util.Rng.create 7)
                (Lazy.force shared_instance))));
    Test.make ~name:"khan baseline (n=40, 1 rep)"
      (Staged.stage (fun () ->
           ignore
             (Dsf_baseline.Khan_etal.run ~repetitions:1
                ~rng:(Dsf_util.Rng.create 8)
                (Lazy.force shared_instance))));
    Test.make ~name:"LE lists (n=40)"
      (Staged.stage (fun () ->
           ignore
             (Dsf_embed.Le_list.build (Dsf_util.Rng.create 9)
                (Lazy.force shared_instance).Inst.graph)));
    Test.make ~name:"exact DP (n=16, t=6)"
      (Staged.stage (fun () ->
           ignore (Dsf_graph.Exact.steiner_forest_weight (Lazy.force small_instance))));
    Test.make ~name:"distributed MST (n=40)"
      (Staged.stage (fun () ->
           ignore
             (Dsf_baseline.Mst_distributed.run
                (Lazy.force shared_instance).Inst.graph)));
  ]

(* Size-indexed series: how the simulator's wall-clock cost scales with the
   network size (args = n). *)
let indexed_instance =
  let cache = Hashtbl.create 4 in
  fun n ->
    match Hashtbl.find_opt cache n with
    | Some inst -> inst
    | None ->
        let r = Dsf_util.Rng.create (1000 + n) in
        let g = Gen.random_connected r ~n ~extra_edges:n ~max_w:10 in
        let labels = Gen.random_labels r ~n ~t:8 ~k:2 in
        let inst = Inst.make_ic g labels in
        Hashtbl.replace cache n inst;
        inst

let indexed_tests =
  [
    Test.make_indexed ~name:"det_dsf @ n" ~args:[ 20; 40; 80 ] (fun n ->
        Staged.stage (fun () -> ignore (Dsf_core.Det_dsf.run (indexed_instance n))));
    Test.make_indexed ~name:"bellman_ford @ n" ~args:[ 20; 40; 80 ] (fun n ->
        Staged.stage (fun () ->
            ignore
              (Dsf_congest.Bellman_ford.sssp (indexed_instance n).Inst.graph
                 ~src:0)));
    Test.make_indexed ~name:"pipeline MST @ n" ~args:[ 20; 40; 80 ] (fun n ->
        Staged.stage (fun () ->
            ignore (Dsf_baseline.Mst_distributed.run (indexed_instance n).Inst.graph)));
  ]

let run () =
  Format.printf "@.=== Bechamel wall-clock microbenchmarks ===@.";
  Format.printf "%-38s %14s %10s@." "benchmark" "ns/run" "r^2";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ Instance.monotonic_clock ] elt in
          let ols =
            Analyze.OLS.ols ~bootstrap:0 ~r_square:true
              ~responder:(Measure.label Instance.monotonic_clock)
              ~predictors:[| Measure.run |]
              raw.Benchmark.lr
          in
          let ns =
            match Analyze.OLS.estimates ols with
            | Some (x :: _) -> x
            | _ -> nan
          in
          let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
          Format.printf "%-38s %14.0f %10.3f@." (Test.Elt.name elt) ns r2)
        (Test.elements test))
    (tests @ indexed_tests)
