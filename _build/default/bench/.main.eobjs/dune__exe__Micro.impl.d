bench/micro.ml: Analyze Bechamel Benchmark Dsf_baseline Dsf_congest Dsf_core Dsf_embed Dsf_graph Dsf_util Format Hashtbl Instance Lazy List Measure Option Staged Test Time Toolkit
