bench/ablations.ml: Array Dsf_baseline Dsf_congest Dsf_core Dsf_graph Dsf_lower_bound Dsf_util Format Fun Hashtbl List
