bench/tables.ml: Array Dsf_baseline Dsf_congest Dsf_core Dsf_embed Dsf_graph Dsf_lower_bound Dsf_util Format List
