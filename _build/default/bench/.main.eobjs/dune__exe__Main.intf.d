bench/main.mli:
