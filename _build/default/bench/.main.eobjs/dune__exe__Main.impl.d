bench/main.ml: Ablations Array Format Micro Sys Tables
