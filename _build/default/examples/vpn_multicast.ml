(* VPN / streaming-multicast scenario (the paper's introduction motivates
   Steiner Forest with exactly this workload): a provider network hosts
   several tenant groups, each needing a connected overlay; the provider
   wants minimum total reserved capacity.

   We build a random geometric provider network, place k tenant groups in
   geographically coherent regions, and compare the paper's algorithms
   against the Khan et al. prior art on cost and round complexity.

   Run with: dune exec examples/vpn_multicast.exe [-- seed] *)

module Graph = Dsf_graph.Graph
module Gen = Dsf_graph.Gen
module Instance = Dsf_graph.Instance
module Ledger = Dsf_congest.Ledger

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 7
  in
  let rng = Dsf_util.Rng.create seed in
  let n = 120 in
  let g = Gen.random_geometric rng ~n ~radius:0.18 ~max_w:100 in
  let k = 5 and t = 20 in
  let labels = Gen.spread_labels rng g ~t ~k in
  let inst = Instance.make_ic g labels in
  let d, wd, s = Dsf_graph.Paths.parameters g in
  Format.printf
    "Provider network: n=%d m=%d D=%d WD=%d s=%d | %d tenant groups, %d sites@.@."
    n (Graph.m g) d wd s k t;
  List.iter
    (fun (lbl, sites) ->
      Format.printf "  group %d: sites %s@." lbl
        (String.concat ", " (List.map string_of_int sites)))
    (Instance.components inst);
  Format.printf "@.%-28s %10s %10s %12s %12s@." "algorithm" "cost" "ratio*"
    "rounds(sim)" "rounds(total)";
  let base = ref 0 in
  let row name weight ledger =
    if !base = 0 then base := weight;
    Format.printf "%-28s %10d %10.3f %12d %12d@." name weight
      (float_of_int weight /. float_of_int !base)
      (Ledger.simulated ledger) (Ledger.total ledger)
  in
  let det = Dsf_core.Det_dsf.run inst in
  row "Det_dsf (2-approx)" det.Dsf_core.Det_dsf.weight det.Dsf_core.Det_dsf.ledger;
  let sub = Dsf_core.Det_sublinear.run ~eps_num:1 ~eps_den:2 inst in
  row "Det_sublinear (2.5-approx)" sub.Dsf_core.Det_sublinear.weight
    sub.Dsf_core.Det_sublinear.ledger;
  let rnd = Dsf_core.Rand_dsf.run ~rng:(Dsf_util.Rng.split rng 1) inst in
  row
    (Printf.sprintf "Rand_dsf (truncated=%b)" rnd.Dsf_core.Rand_dsf.truncated)
    rnd.Dsf_core.Rand_dsf.weight rnd.Dsf_core.Rand_dsf.ledger;
  let khan = Dsf_baseline.Khan_etal.run ~rng:(Dsf_util.Rng.split rng 2) inst in
  row "Khan et al. [14] baseline" khan.Dsf_baseline.Khan_etal.weight
    khan.Dsf_baseline.Khan_etal.ledger;
  Format.printf
    "@.(* ratio is relative to Det_dsf's cost; its dual certificate %s@.   proves every solution costs at least that much. *)@."
    (Dsf_core.Frac.to_string det.Dsf_core.Det_dsf.dual);
  (* Sanity: all outputs really connect every tenant group. *)
  assert (Instance.is_feasible inst det.Dsf_core.Det_dsf.solution);
  assert (Instance.is_feasible inst sub.Dsf_core.Det_sublinear.solution);
  assert (Instance.is_feasible inst rnd.Dsf_core.Rand_dsf.solution);
  assert (Instance.is_feasible inst khan.Dsf_baseline.Khan_etal.solution);
  Format.printf "@.All four outputs verified feasible.@."
