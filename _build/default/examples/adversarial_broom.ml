(* Worst-case anatomy: why the deterministic bound is O(k*s), and how the
   randomized algorithm escapes it.

   On benign instances Det_dsf's rounds barely depend on k — with more
   components the Voronoi regions shrink and each merge phase's
   Bellman-Ford gets cheaper.  The broom family (Gen.broom) pins the
   worst case: a terminal-free tail of length ~s hangs off a hub, every
   one of the ~2k merge phases re-sweeps it, and rounds snap to ~k*s.
   The randomized algorithm's rounds stay ~flat in k on the same family.

   Run with: dune exec examples/adversarial_broom.exe *)

module Gen = Dsf_graph.Gen
module Instance = Dsf_graph.Instance
module Paths = Dsf_graph.Paths
module Ledger = Dsf_congest.Ledger

let () =
  let tail = 80 in
  Format.printf
    "broom family: tail=%d, components k with arm lengths 1..k@.@." tail;
  Format.printf "%4s %6s %8s %14s %14s@." "k" "s" "phases" "Det rounds"
    "Rand rounds";
  List.iter
    (fun k ->
      let g, labels =
        Gen.broom ~tail ~arm_lengths:(List.init k (fun j -> j + 1))
      in
      let inst = Instance.make_ic g labels in
      let _, _, s = Paths.parameters g in
      let det = Dsf_core.Det_dsf.run inst in
      let rnd =
        Dsf_core.Rand_dsf.run ~repetitions:1
          ~rng:(Dsf_util.Rng.create (100 + k))
          inst
      in
      assert (Instance.is_feasible inst det.Dsf_core.Det_dsf.solution);
      assert (Instance.is_feasible inst rnd.Dsf_core.Rand_dsf.solution);
      (* On the broom the optimum is forced: each pair's two arms. *)
      let opt = List.fold_left ( + ) 0 (List.init k (fun j -> 2 * (j + 1))) in
      assert (det.Dsf_core.Det_dsf.weight = opt);
      Format.printf "%4d %6d %8d %14d %14d@." k s
        det.Dsf_core.Det_dsf.phase_count
        (Ledger.total det.Dsf_core.Det_dsf.ledger)
        (Ledger.total rnd.Dsf_core.Rand_dsf.ledger))
    [ 2; 4; 8; 16 ];
  Format.printf
    "@.Det rounds ~double with k (each merge phase re-sweeps the tail);@.";
  Format.printf
    "Rand pays the tail once per level, independent of k — the O~(s+k) vs O~(sk) gap.@."
