(* Railroad design (the problem's historical framing): towns on a map, a
   list of town pairs that demand a rail connection, tracks cost their
   length.  Demands arrive as *connection requests* (DSF-CR); the example
   shows the Lemma 2.3 transformation to input components running as a real
   distributed protocol, then solves and prices the network.

   Run with: dune exec examples/railroad_design.exe [-- seed] *)

module Graph = Dsf_graph.Graph
module Gen = Dsf_graph.Gen
module Instance = Dsf_graph.Instance

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 3
  in
  let rng = Dsf_util.Rng.create seed in
  let n = 60 in
  (* Towns scattered on the map; candidate tracks between nearby towns. *)
  let g = Gen.random_geometric rng ~n ~radius:0.25 ~max_w:50 in
  (* Six connection demands between random towns. *)
  let requests = Array.make n [] in
  let demands =
    List.init 6 (fun i ->
        let a = Dsf_util.Rng.int rng n in
        let b = Dsf_util.Rng.int rng n in
        ignore i;
        a, b)
    |> List.filter (fun (a, b) -> a <> b)
  in
  List.iter (fun (a, b) -> requests.(a) <- b :: requests.(a)) demands;
  let cr = Instance.make_cr g requests in
  Format.printf "Map: %d towns, %d candidate tracks@." n (Graph.m g);
  List.iter (fun (a, b) -> Format.printf "  demand: town %d <-> town %d@." a b) demands;

  (* Lemma 2.3: convert requests to input components, distributively. *)
  let out = Dsf_core.Transform.cr_to_ic cr in
  let inst = out.Dsf_core.Transform.value in
  Format.printf
    "@.Lemma 2.3 transform: %d rounds, %d messages -> %d input components@."
    out.Dsf_core.Transform.rounds out.Dsf_core.Transform.messages
    (Instance.component_count inst);
  List.iter
    (fun (lbl, towns) ->
      Format.printf "  component %d: towns %s@." lbl
        (String.concat ", " (List.map string_of_int towns)))
    (Instance.components inst);

  (* Build the railway with the deterministic 2-approximation. *)
  let det = Dsf_core.Det_dsf.run inst in
  Format.printf "@.Railway built: total track length %d@."
    det.Dsf_core.Det_dsf.weight;
  Format.printf "Tracks laid:@.";
  List.iter
    (fun (e : Graph.edge) ->
      Format.printf "  town %d -- town %d (length %d)@." e.u e.v e.w)
    (Graph.edge_list_of_set g det.Dsf_core.Det_dsf.solution);
  (* Every demand is served. *)
  assert (Instance.cr_is_feasible cr det.Dsf_core.Det_dsf.solution);
  Format.printf "@.All demands verified served.@.";
  Format.printf
    "Certified: any railway serving these demands needs length >= %s@."
    (Dsf_core.Frac.to_string det.Dsf_core.Det_dsf.dual)
