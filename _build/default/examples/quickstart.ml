(* Quickstart: build a small weighted network, declare two input components,
   and solve the Steiner Forest problem with the paper's three algorithms.

   Run with: dune exec examples/quickstart.exe *)

module Graph = Dsf_graph.Graph
module Instance = Dsf_graph.Instance
module Exact = Dsf_graph.Exact

let () =
  (* A 10-node network: two clusters joined by a middle path. *)
  let g =
    Graph.make ~n:10
      [
        (* left cluster *)
        0, 1, 2; 1, 2, 2; 0, 2, 3;
        (* middle path *)
        2, 3, 4; 3, 4, 1; 4, 5, 1;
        (* right cluster *)
        5, 6, 2; 6, 7, 2; 5, 7, 3;
        (* spurs *)
        3, 8, 2; 4, 9, 2;
      ]
  in
  (* Component 0 must connect nodes {0, 7}; component 1 connects {8, 9}. *)
  let labels = [| 0; -1; -1; -1; -1; -1; -1; 0; 1; 1 |] in
  let inst = Instance.make_ic g labels in
  Format.printf "Instance: n=%d m=%d t=%d k=%d@." (Graph.n g) (Graph.m g)
    (Instance.terminal_count inst)
    (Instance.component_count inst);
  let opt = Exact.steiner_forest_weight inst in
  Format.printf "Exact optimum (Dreyfus-Wagner + partitions): %d@.@." opt;

  let show name weight rounds solution =
    Format.printf "%-34s weight=%-3d rounds=%-5d edges={%s}@." name weight
      rounds
      (String.concat ", "
         (Graph.edge_list_of_set g solution
         |> List.map (fun (e : Graph.edge) -> Printf.sprintf "%d-%d" e.u e.v)))
  in

  (* Deterministic 2-approximation (Section 4.1). *)
  let det = Dsf_core.Det_dsf.run inst in
  show "Det_dsf (2-approx, Thm 4.17)" det.Dsf_core.Det_dsf.weight
    (Dsf_congest.Ledger.total det.Dsf_core.Det_dsf.ledger)
    det.Dsf_core.Det_dsf.solution;

  (* Sublinear-in-t deterministic (2+eps)-approximation (Section 4.2). *)
  let sub = Dsf_core.Det_sublinear.run ~eps_num:1 ~eps_den:2 inst in
  show "Det_sublinear (2.5-approx, Cor 4.21)" sub.Dsf_core.Det_sublinear.weight
    (Dsf_congest.Ledger.total sub.Dsf_core.Det_sublinear.ledger)
    sub.Dsf_core.Det_sublinear.solution;

  (* Randomized O(log n)-approximation (Section 5). *)
  let rnd =
    Dsf_core.Rand_dsf.run ~rng:(Dsf_util.Rng.create 42) inst
  in
  show "Rand_dsf (O(log n)-approx, Thm 5.2)" rnd.Dsf_core.Rand_dsf.weight
    (Dsf_congest.Ledger.total rnd.Dsf_core.Rand_dsf.ledger)
    rnd.Dsf_core.Rand_dsf.solution;

  (* The dual certificate: the deterministic run proves its own quality. *)
  Format.printf "@.Dual lower bound from Det_dsf: %s (so OPT >= %s; output %d < 2x that)@."
    (Dsf_core.Frac.to_string det.Dsf_core.Det_dsf.dual)
    (Dsf_core.Frac.to_string det.Dsf_core.Det_dsf.dual)
    det.Dsf_core.Det_dsf.weight;
  Format.printf "@.Round ledger of Det_dsf:@.%a@." Dsf_congest.Ledger.pp
    det.Dsf_core.Det_dsf.ledger
