(* The MST special case (Section 1, "Main Techniques"): with a single input
   component containing every node (k = 1, t = n) the deterministic
   moat-growing algorithm degenerates to exact distributed MST — its output
   equals Kruskal's tree, as this example verifies on several graphs.

   Run with: dune exec examples/mst_special_case.exe *)

module Graph = Dsf_graph.Graph
module Gen = Dsf_graph.Gen
module Instance = Dsf_graph.Instance
module Mst = Dsf_graph.Mst

let () =
  let cases =
    [
      "random sparse", Gen.random_connected (Dsf_util.Rng.create 1) ~n:40 ~extra_edges:20 ~max_w:30;
      "random dense", Gen.random_connected (Dsf_util.Rng.create 2) ~n:30 ~extra_edges:120 ~max_w:30;
      "weighted grid", Gen.reweight (Dsf_util.Rng.create 3) ~max_w:9 (Gen.grid ~rows:5 ~cols:6);
      "weighted cycle", Gen.reweight (Dsf_util.Rng.create 4) ~max_w:9 (Gen.cycle 25);
    ]
  in
  Format.printf "%-16s %8s %8s %8s %10s@." "graph" "n" "MST" "Det_dsf"
    "rounds";
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      (* Everyone in one component: the Steiner Forest IS a spanning tree. *)
      let inst = Instance.make_ic g (Array.make n 0) in
      let det = Dsf_core.Det_dsf.run inst in
      let mst_w = Mst.weight g in
      Format.printf "%-16s %8d %8d %8d %10d@." name n mst_w
        det.Dsf_core.Det_dsf.weight
        (Dsf_congest.Ledger.total det.Dsf_core.Det_dsf.ledger);
      assert (det.Dsf_core.Det_dsf.weight = mst_w);
      assert (Mst.is_spanning_tree g det.Dsf_core.Det_dsf.solution);
      (* The distributed MST baseline agrees too. *)
      let base = Dsf_baseline.Mst_distributed.run g in
      assert (base.Dsf_baseline.Mst_distributed.weight = mst_w))
    cases;
  Format.printf "@.Det_dsf output = exact MST on every case (spanning tree verified).@."
