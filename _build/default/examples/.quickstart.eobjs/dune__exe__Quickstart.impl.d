examples/quickstart.ml: Dsf_congest Dsf_core Dsf_graph Dsf_util Format List Printf String
