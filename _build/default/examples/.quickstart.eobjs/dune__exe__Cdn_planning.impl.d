examples/cdn_planning.ml: Array Dsf_congest Dsf_core Dsf_graph Dsf_util Filename Format List Printf Sys
