examples/vpn_multicast.mli:
