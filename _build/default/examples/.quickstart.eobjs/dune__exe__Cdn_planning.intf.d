examples/cdn_planning.mli:
