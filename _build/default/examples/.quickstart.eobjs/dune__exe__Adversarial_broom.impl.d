examples/adversarial_broom.ml: Dsf_congest Dsf_core Dsf_graph Dsf_util Format List
