examples/adversarial_broom.mli:
