examples/quickstart.mli:
