examples/mst_special_case.mli:
