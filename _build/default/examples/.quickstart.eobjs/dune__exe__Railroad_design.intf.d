examples/railroad_design.mli:
