examples/mst_special_case.ml: Array Dsf_baseline Dsf_congest Dsf_core Dsf_graph Dsf_util Format List
