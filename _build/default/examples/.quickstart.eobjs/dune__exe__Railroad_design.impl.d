examples/railroad_design.ml: Array Dsf_core Dsf_graph Dsf_util Format List String Sys
