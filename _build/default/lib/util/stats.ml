let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
      sqrt (ss /. float_of_int (List.length xs - 1))

let median xs =
  match xs with
  | [] -> nan
  | _ ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let min_max xs =
  match xs with
  | [] -> nan, nan
  | x :: rest ->
      List.fold_left (fun (lo, hi) v -> min lo v, max hi v) (x, x) rest

let linear_fit pts =
  let n = float_of_int (List.length pts) in
  assert (List.length pts >= 2);
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pts in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pts in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
  let denom = (n *. sxx) -. (sx *. sx) in
  assert (abs_float denom > 1e-12);
  let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. n in
  slope, intercept

let loglog_slope pts =
  let logged = List.map (fun (x, y) -> log x, log y) pts in
  fst (linear_fit logged)

let ratio_summary pairs =
  let ratios = List.map (fun (m, r) -> m /. r) pairs in
  let lo, hi = min_max ratios in
  lo, mean ratios, hi
