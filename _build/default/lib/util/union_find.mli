(** Disjoint-set forest with union by rank and path compression.

    Used for Kruskal-style cycle filtering (candidate-merge selection,
    Lemma 4.13/4.14), moat membership tracking, and connectivity checks. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets [{0}, ..., {n-1}]. *)

val find : t -> int -> int
(** Canonical representative of the set containing the element. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the sets of [a] and [b]; returns [false] if they were
    already in the same set (i.e. the union would close a cycle). *)

val same : t -> int -> int -> bool

val size : t -> int -> int
(** Number of elements in the set containing the given element. *)

val n_sets : t -> int
(** Number of distinct sets currently. *)

val copy : t -> t

val groups : t -> (int, int list) Hashtbl.t
(** Map from representative to the members of its set. *)
