(** Small statistics helpers used by the experiment harness. *)

val mean : float list -> float
val stddev : float list -> float
val median : float list -> float
val min_max : float list -> float * float

val linear_fit : (float * float) list -> float * float
(** Ordinary least squares: [linear_fit pts] returns [(slope, intercept)]
    for y = slope*x + intercept.  Requires at least two distinct x values. *)

val loglog_slope : (float * float) list -> float
(** Fit slope of [log y] against [log x]: the empirical scaling exponent.
    All coordinates must be positive. *)

val ratio_summary : (float * float) list -> float * float * float
(** Given (measured, reference) pairs, return (min, mean, max) of the
    measured/reference ratios. *)
