type t = { state : Random.State.t }

(* A small integer hash (splitmix64-style finalizer, truncated to OCaml's
   63-bit ints) used to derive seeds for [split] deterministically. *)
let mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x4be98134a5976fd3 in
  let x = x lxor (x lsr 29) in
  let x = x * 0x3bbf2a98b9cf63a1 in
  let x = x lxor (x lsr 32) in
  x land max_int

let create seed = { state = Random.State.make [| mix seed; mix (seed + 1) |] }

let split t i =
  (* Draw a fresh base from the parent stream is NOT deterministic w.r.t. the
     order of splits, so instead we split purely from the parent's seed
     material: hash the parent's current state fingerprint with [i].  We keep
     a fingerprint by drawing one value lazily would mutate the parent; to
     stay pure we fingerprint via a dedicated draw at creation time instead.
     Simplest sound scheme: each [t] carries its own state; [split] hashes a
     draw from a *copy* of the parent state with [i]. *)
  let copy = Random.State.copy t.state in
  let fingerprint = Random.State.bits copy in
  { state = Random.State.make [| mix (fingerprint lxor mix i); mix i |] }

let int t bound =
  assert (bound > 0);
  Random.State.int t.state bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound = Random.State.float t.state bound

let bool t = Random.State.bool t.state

let shuffle t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let sample_without_replacement t m n =
  assert (m <= n);
  if 3 * m >= n then begin
    let p = permutation t n in
    Array.sub p 0 m
  end
  else begin
    (* Rejection sampling into a hash set; fast when m << n. *)
    let seen = Hashtbl.create (2 * m) in
    let out = Array.make m 0 in
    let filled = ref 0 in
    while !filled < m do
      let x = int t n in
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        out.(!filled) <- x;
        incr filled
      end
    done;
    out
  end
