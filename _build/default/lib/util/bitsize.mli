(** Bit-size accounting for CONGEST messages.

    The CONGEST(log n) model allows O(log n) bits per edge per round.  The
    simulator charges every message its encoded size in bits using the
    helpers below; identifiers and polynomially-bounded weights each cost
    O(log n) bits as the paper assumes (Section 2). *)

val int_bits : int -> int
(** Bits to encode a non-negative integer: [max 1 (floor(log2 x) + 1)]. *)

val id_bits : n:int -> int
(** Bits for a node/component identifier in an [n]-node network:
    [ceil(log2 n)], at least 1. *)

val weight_bits : max_weight:int -> int
(** Bits for a weight or distance bounded by [max_weight]. *)

val congest_budget : n:int -> int
(** The per-edge per-round budget the simulator enforces by default:
    [c * ceil(log2 n)] for a small constant [c] (we use 16, since the
    paper's messages carry a constant number of identifiers and weights). *)
