type t = {
  parent : int array;
  rank : int array;
  size : int array;
  mutable n_sets : int;
}

let create n =
  {
    parent = Array.init n (fun i -> i);
    rank = Array.make n 0;
    size = Array.make n 1;
    n_sets = n;
  }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let same t a b = find t a = find t b

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    let ra, rb =
      if t.rank.(ra) < t.rank.(rb) then rb, ra
      else begin
        if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1;
        ra, rb
      end
    in
    t.parent.(rb) <- ra;
    t.size.(ra) <- t.size.(ra) + t.size.(rb);
    t.n_sets <- t.n_sets - 1;
    true
  end

let size t x = t.size.(find t x)

let n_sets t = t.n_sets

let copy t =
  {
    parent = Array.copy t.parent;
    rank = Array.copy t.rank;
    size = Array.copy t.size;
    n_sets = t.n_sets;
  }

let groups t =
  let h = Hashtbl.create 16 in
  Array.iteri
    (fun i _ ->
      let r = find t i in
      let prev = try Hashtbl.find h r with Not_found -> [] in
      Hashtbl.replace h r (i :: prev))
    t.parent;
  h
