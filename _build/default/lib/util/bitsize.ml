let int_bits x =
  assert (x >= 0);
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  max 1 (go 0 x)

let id_bits ~n = int_bits (max 1 (n - 1))

let weight_bits ~max_weight = int_bits (max 1 max_weight)

let congest_budget ~n = 16 * id_bits ~n
