lib/util/rng.mli:
