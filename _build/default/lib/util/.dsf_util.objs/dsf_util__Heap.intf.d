lib/util/heap.mli:
