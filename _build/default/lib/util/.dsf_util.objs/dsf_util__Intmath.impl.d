lib/util/intmath.ml:
