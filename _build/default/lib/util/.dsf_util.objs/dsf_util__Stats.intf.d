lib/util/stats.mli:
