lib/util/bitsize.mli:
