lib/util/bitsize.ml:
