lib/util/intmath.mli:
