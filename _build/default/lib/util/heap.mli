(** Binary min-heap over polymorphic elements with an explicit comparison.

    Used by Dijkstra, the centralized moat-growing event queue, and the
    exact Steiner-tree dynamic program. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the minimum element, or [None] if empty. *)

val peek : 'a t -> 'a option

val size : 'a t -> int

val is_empty : 'a t -> bool

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
