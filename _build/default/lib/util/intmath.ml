let isqrt n =
  assert (n >= 0);
  let r = int_of_float (sqrt (float_of_int n)) in
  (* Floor semantics (largest r with r * r <= n), correcting the float
     estimate in both directions. *)
  let r = if r * r > n then r - 1 else r in
  if (r + 1) * (r + 1) <= n then r + 1 else r

let ceil_log2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (2 * v) in
  go 0 1

let ceil_div a b =
  assert (b > 0);
  (a + b - 1) / b
