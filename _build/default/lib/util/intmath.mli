(** Small integer helpers shared across the algorithms. *)

val isqrt : int -> int
(** Floor integer square root: the largest r with r * r <= n. *)

val ceil_log2 : int -> int
(** The least k with 2^k >= n (0 for n <= 1). *)

val ceil_div : int -> int -> int
(** [ceil_div a b] = ceiling of a / b for positive b. *)
