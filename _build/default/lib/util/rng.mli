(** Deterministic, splittable pseudo-random number generator.

    All randomized algorithms in this repository draw randomness through this
    module so that every run is reproducible from a single integer seed.  The
    generator is a thin wrapper over [Random.State] plus a deterministic
    splitting scheme: [split t i] derives an independent stream for index [i],
    which is how per-node random bits are modelled in the CONGEST simulator
    (each node owns its own stream, as the model grants each node an unlimited
    supply of independent random bits). *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> int -> t
(** [split t i] derives a statistically independent generator for index [i].
    Deterministic: the same [t] and [i] always yield the same stream. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be > 0. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t m n] draws [m] distinct values from
    [0..n-1], in random order.  Requires [m <= n]. *)
