(** Centralized moat-growing with rounded radii (Algorithm 2) — the
    (2 + ε)-approximation variant whose merges are deferred to geometric
    checkpoints µ̂, (1+ε/2)µ̂, (1+ε/2)²µ̂, ...

    Between checkpoints the algorithm behaves like Algorithm 1 except that a
    freshly merged moat always stays active; activity statuses are
    recomputed only when total growth reaches the current threshold µ̂
    (Algorithm 2, lines 16-26).  This bounds the number of distinct radii at
    which merges happen by O(log n / ε) (Lemma F.1), which is what makes the
    sublinear-time distributed emulation possible.

    ε is a positive rational [eps_num / eps_den].  Internally all distances
    are scaled by an integer factor so that every threshold is an integer
    while the growth factor stays within (1, 1 + ε/2]; the approximation
    guarantee (Theorem 4.2) is preserved. *)

type result = {
  forest : bool array;
  solution : bool array;
  weight : int;
  dual : Frac.t;  (** sum act_i µ_i in SCALED units *)
  dual_unscaled : float;  (** dual / scale, comparable to weights *)
  scale : int;
  growth_phases : int;  (** g_max: number of checkpoint events *)
  merge_phases : int;  (** Definition 4.19 merge phases *)
  merge_count : int;
  merge_pairs : (int * int) list;
      (** terminal node-id pairs merged, in execution order — used by tests
          to check the distributed emulation follows the same schedule *)
}

val next_threshold : eps_num:int -> eps_den:int -> int -> int
(** The integer checkpoint schedule (exposed for the distributed emulation
    in {!Det_sublinear}): growth factor within (1, 1 + ε/2] given the
    internal weight scaling. *)

val run :
  eps_num:int -> eps_den:int -> Dsf_graph.Instance.ic -> result
(** Requires [0 < eps_num] and [eps_num <= eps_den] (i.e. 0 < ε <= 1;
    larger ε gives no benefit over Algorithm 1). *)
