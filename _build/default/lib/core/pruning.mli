(** The fast pruning routine of Appendix F.3 (Corollary F.10): given a
    forest F solving a DSF-IC instance, select its minimal solving
    subforest in O~(σ + k + D) rounds.

    Pipeline, following the paper's steps:

    + clusters: the trees of F are partitioned into O(σ)-many subtree
      clusters by the matching-based growing of Lemma F.7 (iterations
      charged O~(σ) each);
    + the contracted cluster forest (C, F_C) is made globally known
      (simulated pipelined upcast + broadcast, O(D + σ));
    + label propagation (Lemma F.8): every node floods (cluster, label)
      facts up the BFS tree under the paper's redundancy discipline — a
      node sends only messages that would still change its parent's state,
      tracked with a shadow copy; path and closure rules run locally.  The
      root ends with the label set l_e of every inter-cluster edge
      (simulated; the redundancy cap makes this O(D + σ + k));
    + the root's state is re-broadcast in the same encoding (simulated);
    + inter-cluster edges with l_e ≠ ∅ are selected, their endpoints
      inherit l_e, and each cluster selects its minimal internal subtrees
      (Lemma F.6, charged O(σ + k)).

    The result equals the unique minimal solving subforest, i.e.
    {!Dsf_graph.Instance.prune} — which the tests assert. *)

type result = {
  pruned : bool array;
  clusters : int;  (** |C| *)
  cluster_edges : int;  (** |F_C| *)
  ledger : Dsf_congest.Ledger.t;
}

val run :
  Dsf_graph.Instance.ic -> f:bool array -> sigma:int -> result
(** [f] must be a feasible forest for the instance. *)
