(** Centralized moat-growing (Algorithm 1) — the Agrawal-Klein-Ravi
    primal-dual 2-approximation for Steiner Forest, in the exact form the
    paper states it (Appendix C) and later emulates distributively.

    All terminals grow "moats" (balls) at unit rate; when two moats touch, a
    least-weight path between the closest terminal pair is added to the
    output and the moats merge.  A merged moat goes inactive once its moat is
    the only one carrying its (merged) input-component label.  The algorithm
    also certifies its own quality: the dual value [sum_i act_i * mu_i] is a
    lower bound on the weight of EVERY feasible solution (Lemma C.4), and the
    output weight is below twice that (Theorem 4.1).

    Radii are exact dyadic rationals ({!Frac}). *)

type merge_record = {
  step : int;  (** merge index i, starting at 1 *)
  mu : Frac.t;  (** moat growth before this merge *)
  active_moats : int;  (** act_i: active moats during the merge *)
  pair : int * int;  (** the terminals (v_i, w_i) whose moats merge *)
  phase : int;  (** merge phase j(i) of Definition 4.3 *)
  activity_changed : bool;  (** did some terminal's status flip after i? *)
}

type result = {
  forest : bool array;  (** F_imax: all selected path edges (a forest) *)
  solution : bool array;  (** minimal feasible subforest of [forest] *)
  weight : int;  (** weight of [solution] *)
  dual : Frac.t;  (** sum_i act_i mu_i — a certified lower bound on OPT *)
  merges : merge_record list;  (** in execution order *)
  phase_count : int;  (** j_max; at most 2k (Lemma 4.4) *)
  final_rad : (int * Frac.t) list;  (** terminal -> final radius *)
}

val run : Dsf_graph.Instance.ic -> result
(** Singleton input components are ignored (the instance is minimalized
    first, as Lemma 2.4 allows).  Raises [Invalid_argument] if terminals of
    one component are disconnected in the graph. *)
