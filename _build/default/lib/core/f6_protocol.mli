(** The Lemma F.6 mark/unmark selection protocol, genuinely simulated.

    Given rooted trees (cluster subtrees, [parent.(v) = -1] at roots) and a
    set of label classes per node, select the union over classes of the
    minimal subtree spanning each class's holders:

    + mark phase: every holder floods each of its classes toward the root,
      one message per round, deduplicated per node; each traversed edge is
      tentatively marked with that class;
    + unmark phase: from the root downwards, any chain that carries a class
      with only a single witness below is peeled off (the root-to-junction
      prefix of the marked paths), again pipelined one message per round.

    Each node sends at most two messages per class (Lemma F.6), so both
    phases finish in O(depth + #classes) simulated rounds. *)

val run :
  Dsf_graph.Graph.t ->
  parent:int array ->
  labels:(int -> int list) ->
  bool array * Dsf_congest.Sim.stats
(** Returns the kept-edge bit set (indexed by edge id; only tree edges can
    be set) and the combined statistics of the two phases.  Every
    [(v, parent.(v))] pair must be an edge of the graph. *)
