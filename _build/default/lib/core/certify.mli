(** Independent solution certification.

    The moat-growing algorithms are self-certifying (Lemma C.4): every run
    hands back the dual value Σ act·µ, a lower bound on the weight of EVERY
    feasible solution.  This module re-checks, from scratch and with no
    trust in the solver, that a claimed (solution, dual) pair is internally
    consistent — the check a skeptical downstream consumer would run. *)

type report = {
  feasible : bool;
  forest : bool;
  minimal : bool;  (** no solution edge can be dropped *)
  weight : int;
  dual : float option;
  certified_ratio : float option;
      (** weight / dual — a PROVEN upper bound on weight/OPT *)
}

val check :
  ?dual:float ->
  Dsf_graph.Instance.ic ->
  solution:bool array ->
  (report, string) Stdlib.result
(** [Error msg] when the certificate is inconsistent: infeasible solution,
    dual exceeding the solution weight, or a certified ratio above 2 + eps
    for a claimed 2-ish-approximation would all be caller-level errors —
    this function only rejects outright contradictions (infeasibility,
    dual > weight) and reports the rest. *)

val pp : Format.formatter -> report -> unit
