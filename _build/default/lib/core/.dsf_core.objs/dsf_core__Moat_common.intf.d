lib/core/moat_common.mli: Dsf_graph Dsf_util Frac
