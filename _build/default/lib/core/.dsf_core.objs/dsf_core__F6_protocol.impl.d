lib/core/f6_protocol.ml: Array Dsf_congest Dsf_graph Dsf_util Hashtbl List Option Queue
