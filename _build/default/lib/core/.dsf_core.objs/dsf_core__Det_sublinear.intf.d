lib/core/det_sublinear.mli: Dsf_congest Dsf_graph
