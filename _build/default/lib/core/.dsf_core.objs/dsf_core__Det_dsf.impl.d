lib/core/det_dsf.ml: Array Dsf_congest Dsf_graph Dsf_util Frac Fun Hashtbl List Printf Region_bf Select Transform
