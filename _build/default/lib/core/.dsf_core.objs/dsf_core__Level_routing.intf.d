lib/core/level_routing.mli: Dsf_congest Dsf_embed Dsf_graph Hashtbl
