lib/core/rand_dsf.ml: Array Dsf_congest Dsf_embed Dsf_graph Dsf_util Hashtbl Level_routing List Option Printf Reduced_solver Transform
