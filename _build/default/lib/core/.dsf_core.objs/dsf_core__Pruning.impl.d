lib/core/pruning.ml: Array Dsf_congest Dsf_graph Dsf_util F6_protocol Fun Hashtbl List Option Printf Queue
