lib/core/reduced_solver.ml: Array Dsf_congest Dsf_graph Dsf_util Hashtbl List Moat Option
