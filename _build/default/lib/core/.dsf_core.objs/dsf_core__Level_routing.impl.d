lib/core/level_routing.ml: Dsf_congest Dsf_embed Dsf_graph Dsf_util Hashtbl List
