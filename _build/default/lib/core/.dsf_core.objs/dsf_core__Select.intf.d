lib/core/select.mli: Dsf_congest Dsf_graph
