lib/core/certify.mli: Dsf_graph Format Stdlib
