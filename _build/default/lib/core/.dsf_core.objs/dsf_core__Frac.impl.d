lib/core/frac.ml: Format Printf Stdlib
