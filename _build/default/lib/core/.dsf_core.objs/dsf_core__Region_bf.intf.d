lib/core/region_bf.mli: Dsf_congest Dsf_graph Frac
