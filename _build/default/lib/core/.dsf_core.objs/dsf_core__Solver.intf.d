lib/core/solver.mli: Dsf_congest Dsf_graph Dsf_util
