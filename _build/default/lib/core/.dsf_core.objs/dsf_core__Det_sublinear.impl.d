lib/core/det_sublinear.ml: Array Dsf_congest Dsf_graph Dsf_util Frac Fun Hashtbl List Moat_rounded Option Printf Pruning Region_bf Select Transform
