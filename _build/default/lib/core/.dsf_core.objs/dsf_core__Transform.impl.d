lib/core/transform.ml: Array Dsf_congest Dsf_graph Dsf_util Hashtbl List Option
