lib/core/reduced_solver.mli: Dsf_graph
