lib/core/frac.mli: Format
