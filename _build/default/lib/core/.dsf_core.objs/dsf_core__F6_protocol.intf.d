lib/core/f6_protocol.mli: Dsf_congest Dsf_graph
