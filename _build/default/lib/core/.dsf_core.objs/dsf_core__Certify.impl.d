lib/core/certify.ml: Array Dsf_graph Format Printf
