lib/core/det_dsf.mli: Dsf_congest Dsf_graph Frac
