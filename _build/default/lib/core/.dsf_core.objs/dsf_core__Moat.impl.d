lib/core/moat.ml: Array Dsf_graph Dsf_util Frac List Moat_common
