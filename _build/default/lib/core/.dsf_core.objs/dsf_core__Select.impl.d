lib/core/select.ml: Array Dsf_congest Dsf_graph List
