lib/core/rand_dsf.mli: Dsf_congest Dsf_graph Dsf_util
