lib/core/moat_common.ml: Array Dsf_graph Dsf_util Frac Hashtbl List
