lib/core/moat.mli: Dsf_graph Frac
