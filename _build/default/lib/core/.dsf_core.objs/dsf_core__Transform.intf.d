lib/core/transform.mli: Dsf_graph
