lib/core/pruning.mli: Dsf_congest Dsf_graph
