lib/core/moat_rounded.mli: Dsf_graph Frac
