lib/core/region_bf.ml: Array Dsf_congest Dsf_graph Dsf_util Frac Hashtbl List
