lib/core/moat_rounded.ml: Array Dsf_graph Dsf_util Frac Hashtbl List Moat_common
