lib/core/solver.ml: Det_dsf Det_sublinear Dsf_congest Dsf_graph Dsf_util Frac List Moat Printf Rand_dsf Transform
