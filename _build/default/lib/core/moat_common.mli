(** Shared machinery of the centralized moat-growing algorithms
    (Algorithms 1 and 2): terminal indexing, exact radii, moat and label
    union-find, event computation, and path selection.  Internal to
    [dsf_core]; the public entry points are {!Moat} and {!Moat_rounded}. *)

type state = {
  graph : Dsf_graph.Graph.t;
  terms : int array;  (** terminal index -> node id *)
  tdist : int array array;
      (** terminal-terminal weighted distances (possibly pre-scaled) *)
  moats : Dsf_util.Union_find.t;  (** over terminal indices *)
  rad : Frac.t array;  (** per-terminal radius, exact *)
  label_uf : Dsf_util.Union_find.t;  (** label merging (Alg 1 l.24-27) *)
  init_label : int array;
  act : bool array;  (** per-moat, indexed by representative *)
}

val setup : Dsf_graph.Instance.ic -> scale:int -> state option
(** [None] if the (minimalized) instance has no terminals.  Raises
    [Invalid_argument] if some component's terminals are disconnected.
    [scale] multiplies all distances (used by Algorithm 2's integer
    thresholds). *)

val label_of : state -> int -> int
val moat_active : state -> int -> bool
val is_lone_label : state -> int -> bool
val count_active_moats : state -> int
val exists_active : state -> bool
val grow_active : state -> Frac.t -> unit

type event = { mu : Frac.t; vi : int; wi : int }
(** [vi], [wi] are terminal indices; [mu] the growth until their moats
    touch. *)

val next_event : state -> event option
(** Minimal next touching event over moat pairs in distinct moats with at
    least one active side; ties broken by the terminal-index pair.  [None]
    when no such pair exists. *)

val merge_moats :
  state -> forest:bool array -> uf_nodes:Dsf_util.Union_find.t -> event -> unit
(** Adds a least-weight path between the event's terminals to [forest]
    (skipping cycle-closing edges), merges the moats, and merges labels.
    Does NOT update activity — the two algorithms differ there. *)

val snapshot_activity : state -> bool array
