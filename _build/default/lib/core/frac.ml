type t = { num : int; den_pow : int }

let max_den_pow = 56

let rec normalize num den_pow =
  if num = 0 then { num = 0; den_pow = 0 }
  else if den_pow > 0 && num land 1 = 0 then normalize (num asr 1) (den_pow - 1)
  else begin
    assert (den_pow >= 0 && den_pow <= max_den_pow);
    { num; den_pow }
  end

let zero = { num = 0; den_pow = 0 }
let one = { num = 1; den_pow = 0 }

let of_int n = { num = n; den_pow = 0 }

let make num den_pow = normalize num den_pow

(* Bring to a common power-of-two denominator; overflow-guarded shifts. *)
let lift x shift =
  assert (shift >= 0 && shift <= max_den_pow);
  let v = x lsl shift in
  assert (v asr shift = x);
  v

let add a b =
  let p = Stdlib.max a.den_pow b.den_pow in
  let na = lift a.num (p - a.den_pow) and nb = lift b.num (p - b.den_pow) in
  normalize (na + nb) p

let neg a = { a with num = -a.num }

let sub a b = add a (neg b)

let half a = normalize a.num (a.den_pow + 1)

let double a = normalize (a.num * 2) a.den_pow

let mul_int a k =
  let v = a.num * k in
  assert (k = 0 || v / k = a.num);
  normalize v a.den_pow

let compare a b =
  let p = Stdlib.max a.den_pow b.den_pow in
  Stdlib.compare (lift a.num (p - a.den_pow)) (lift b.num (p - b.den_pow))

let equal a b = compare a b = 0

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let sign a = Stdlib.compare a.num 0

let is_int a = a.den_pow = 0

let to_int_exn a =
  if a.den_pow <> 0 then invalid_arg "Frac.to_int_exn: not an integer";
  a.num

let to_float a = float_of_int a.num /. float_of_int (1 lsl a.den_pow)

let to_string a =
  if a.den_pow = 0 then string_of_int a.num
  else Printf.sprintf "%d/2^%d" a.num a.den_pow

let pp ppf a = Format.pp_print_string ppf (to_string a)
