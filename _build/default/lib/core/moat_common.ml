module Graph = Dsf_graph.Graph
module Paths = Dsf_graph.Paths
module Instance = Dsf_graph.Instance
module Uf = Dsf_util.Union_find

type state = {
  graph : Graph.t;
  terms : int array;
  tdist : int array array;
  moats : Uf.t;
  rad : Frac.t array;
  label_uf : Uf.t;
  init_label : int array;
  act : bool array;
}

let setup inst0 ~scale =
  let inst = Instance.minimalize inst0 in
  let g = inst.Instance.graph in
  let terms = Array.of_list (Instance.terminals inst) in
  let t = Array.length terms in
  if t = 0 then None
  else begin
    let node_dist = Array.map (fun v -> fst (Paths.dijkstra g ~src:v)) terms in
    let tdist =
      Array.map
        (fun row ->
          Array.map
            (fun w ->
              if row.(w) = max_int then
                invalid_arg "Moat: terminals of a component disconnected"
              else row.(w) * scale)
            terms)
        node_dist
    in
    let labels = Array.map (fun v -> inst.Instance.labels.(v)) terms in
    let max_label = Array.fold_left max 0 labels in
    Some
      {
        graph = g;
        terms;
        tdist;
        moats = Uf.create t;
        rad = Array.make t Frac.zero;
        label_uf = Uf.create (max_label + 1);
        init_label = labels;
        act = Array.make t true;
      }
  end

let label_of st ti = Uf.find st.label_uf st.init_label.(ti)

let moat_active st ti = st.act.(Uf.find st.moats ti)

let is_lone_label st ti =
  let rep = Uf.find st.moats ti in
  let lbl = label_of st ti in
  let lone = ref true in
  Array.iteri
    (fun tj _ ->
      if Uf.find st.moats tj <> rep && label_of st tj = lbl then lone := false)
    st.terms;
  !lone

let count_active_moats st =
  let seen = Hashtbl.create 16 in
  Array.iteri
    (fun ti _ ->
      let rep = Uf.find st.moats ti in
      if st.act.(rep) && not (Hashtbl.mem seen rep) then Hashtbl.add seen rep ())
    st.terms;
  Hashtbl.length seen

let exists_active st =
  let found = ref false in
  Array.iteri
    (fun ti _ -> if st.act.(Uf.find st.moats ti) then found := true)
    st.terms;
  !found

let grow_active st mu =
  Array.iteri
    (fun ti _ ->
      if moat_active st ti then st.rad.(ti) <- Frac.add st.rad.(ti) mu)
    st.terms

type event = { mu : Frac.t; vi : int; wi : int }

let next_event st =
  let best = ref None in
  let t = Array.length st.terms in
  for i = 0 to t - 1 do
    for j = i + 1 to t - 1 do
      if not (Uf.same st.moats i j) then begin
        let ai = moat_active st i and aj = moat_active st j in
        if ai || aj then begin
          let slack =
            Frac.sub
              (Frac.of_int st.tdist.(i).(j))
              (Frac.add st.rad.(i) st.rad.(j))
          in
          let mu = if ai && aj then Frac.half slack else slack in
          assert (Frac.sign mu >= 0);
          let better =
            match !best with
            | None -> true
            | Some b ->
                let c = Frac.compare mu b.mu in
                c < 0 || (c = 0 && (i, j) < (b.vi, b.wi))
          in
          if better then best := Some { mu; vi = i; wi = j }
        end
      end
    done
  done;
  !best

let add_path g forest uf_nodes ~src ~dst =
  match Paths.shortest_path g ~src ~dst with
  | None -> invalid_arg "Moat: terminals disconnected"
  | Some (nodes, _) ->
      List.iter
        (fun eid ->
          let u, v = Graph.endpoints g eid in
          if Uf.union uf_nodes u v then forest.(eid) <- true)
        (Paths.path_edges g nodes)

let merge_moats st ~forest ~uf_nodes ev =
  add_path st.graph forest uf_nodes ~src:st.terms.(ev.vi) ~dst:st.terms.(ev.wi);
  let lv = label_of st ev.vi and lw = label_of st ev.wi in
  ignore (Uf.union st.moats ev.vi ev.wi);
  if lv <> lw then ignore (Uf.union st.label_uf lv lw)

let snapshot_activity st =
  Array.init (Array.length st.terms) (fun ti -> moat_active st ti)
