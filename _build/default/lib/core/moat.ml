module Graph = Dsf_graph.Graph
module Instance = Dsf_graph.Instance
module Uf = Dsf_util.Union_find
module C = Moat_common

type merge_record = {
  step : int;
  mu : Frac.t;
  active_moats : int;
  pair : int * int;
  phase : int;
  activity_changed : bool;
}

type result = {
  forest : bool array;
  solution : bool array;
  weight : int;
  dual : Frac.t;
  merges : merge_record list;
  phase_count : int;
  final_rad : (int * Frac.t) list;
}

let empty_result m =
  {
    forest = Array.make m false;
    solution = Array.make m false;
    weight = 0;
    dual = Frac.zero;
    merges = [];
    phase_count = 0;
    final_rad = [];
  }

let run inst0 =
  let inst = Instance.minimalize inst0 in
  let g = inst.Instance.graph in
  let m = Graph.m g in
  match C.setup inst ~scale:1 with
  | None -> empty_result m
  | Some st ->
      let forest = Array.make m false in
      let uf_nodes = Uf.create (Graph.n g) in
      let merges = ref [] in
      let dual = ref Frac.zero in
      let step = ref 0 in
      let phase = ref 1 in
      let continue = ref (C.exists_active st) in
      while !continue do
        incr step;
        match C.next_event st with
        | None -> continue := false
        | Some ev ->
            let act_count = C.count_active_moats st in
            dual := Frac.add !dual (Frac.mul_int ev.C.mu act_count);
            C.grow_active st ev.C.mu;
            let before = C.snapshot_activity st in
            C.merge_moats st ~forest ~uf_nodes ev;
            (* The merged moat goes inactive iff it is the only moat left
               carrying its (merged) label (Algorithm 1, lines 28-31). *)
            let rep = Uf.find st.C.moats ev.C.vi in
            st.C.act.(rep) <- not (C.is_lone_label st ev.C.vi);
            let after = C.snapshot_activity st in
            let changed = before <> after in
            merges :=
              {
                step = !step;
                mu = ev.C.mu;
                active_moats = act_count;
                pair = (st.C.terms.(ev.C.vi), st.C.terms.(ev.C.wi));
                phase = !phase;
                activity_changed = changed;
              }
              :: !merges;
            if changed then incr phase;
            continue := C.exists_active st
      done;
      let solution = Instance.prune inst forest in
      {
        forest;
        solution;
        weight = Instance.solution_weight inst solution;
        dual = !dual;
        merges = List.rev !merges;
        phase_count = (match !merges with [] -> 0 | last :: _ -> last.phase);
        final_rad =
          Array.to_list
            (Array.mapi (fun ti _ -> st.C.terms.(ti), st.C.rad.(ti)) st.C.terms);
      }
