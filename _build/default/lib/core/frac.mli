(** Exact dyadic rationals: values of the form [num / 2^den_pow].

    Moat radii are not integers: an active-active meeting event solves
    [rad_v + rad_w + 2µ = wd], halving an integer quantity, and later events
    halve again (denominators compound through phase changes, up to
    [2^(2k+2)] — see the discussion in DESIGN.md).  All moat-growing
    arithmetic (Algorithms 1 and 2 and their distributed emulations) is done
    in this exact representation so merge ordering is never corrupted by
    floating-point error.

    Values are normalized ([num] odd or [den_pow = 0]).  Overflow is guarded
    by assertions; with the experiment sizes used here (k <= ~24, weights
    poly-bounded) everything fits in 63-bit integers. *)

type t = private { num : int; den_pow : int }

val zero : t
val one : t
val of_int : int -> t
val make : int -> int -> t
(** [make num den_pow] = num / 2^den_pow, normalized. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val half : t -> t
val double : t -> t
val mul_int : t -> int -> t
val min : t -> t -> t
val max : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_int : t -> bool
val to_int_exn : t -> int
val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string
