module Graph = Dsf_graph.Graph
module Instance = Dsf_graph.Instance

type report = {
  feasible : bool;
  forest : bool;
  minimal : bool;
  weight : int;
  dual : float option;
  certified_ratio : float option;
}

let check ?dual inst ~solution =
  let g = inst.Instance.graph in
  if Array.length solution <> Graph.m g then Error "solution size mismatch"
  else begin
    let feasible = Instance.is_feasible inst solution in
    if not feasible then Error "infeasible: some input component is disconnected"
    else begin
      let weight = Instance.solution_weight inst solution in
      let forest = Instance.is_forest g solution in
      let minimal =
        forest && solution = Instance.prune inst solution
      in
      match dual with
      | Some d when d > float_of_int weight +. 1e-6 ->
          Error
            (Printf.sprintf
               "inconsistent certificate: dual %.2f exceeds solution weight %d"
               d weight)
      | Some d when d < 0. -> Error "negative dual"
      | _ ->
          let certified_ratio =
            match dual with
            | Some d when d > 0. -> Some (float_of_int weight /. d)
            | _ -> None
          in
          Ok { feasible; forest; minimal; weight; dual; certified_ratio }
    end
  end

let pp ppf r =
  Format.fprintf ppf
    "feasible=%b forest=%b minimal=%b weight=%d%a" r.feasible r.forest
    r.minimal r.weight
    (fun ppf () ->
      match r.dual, r.certified_ratio with
      | Some d, Some c ->
          Format.fprintf ppf " dual=%.2f (weight <= %.2f x OPT, proven)" d c
      | Some d, None -> Format.fprintf ppf " dual=%.2f" d
      | None, _ -> ())
    ()
