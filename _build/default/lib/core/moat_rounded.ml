module Graph = Dsf_graph.Graph
module Instance = Dsf_graph.Instance
module Uf = Dsf_util.Union_find
module C = Moat_common

type result = {
  forest : bool array;
  solution : bool array;
  weight : int;
  dual : Frac.t;
  dual_unscaled : float;
  scale : int;
  growth_phases : int;
  merge_phases : int;
  merge_count : int;
  merge_pairs : (int * int) list;
}

(* Integer threshold schedule.  With all distances scaled by
   [scale >= 8 * eps_den / eps_num], starting at µ̂ = ceil(scale / 2) and
   stepping to max(µ̂ + 1, floor(µ̂ * (1 + ε/2))) keeps every step within
   growth factor (1, 1 + ε/2]: the + 1 fallback is only ever needed while
   µ̂ * ε/2 < 2, which the scaling rules out. *)
let next_threshold ~eps_num ~eps_den mu_hat =
  let exact = mu_hat * ((2 * eps_den) + eps_num) / (2 * eps_den) in
  max (mu_hat + 1) exact

let run ~eps_num ~eps_den inst0 =
  if eps_num <= 0 || eps_den <= 0 || eps_num > eps_den then
    invalid_arg "Moat_rounded.run: need 0 < eps <= 1";
  let inst = Instance.minimalize inst0 in
  let g = inst.Instance.graph in
  let m = Graph.m g in
  let scale = ((8 * eps_den) + eps_num - 1) / eps_num in
  match C.setup inst ~scale with
  | None ->
      {
        forest = Array.make m false;
        solution = Array.make m false;
        weight = 0;
        dual = Frac.zero;
        dual_unscaled = 0.;
        scale;
        growth_phases = 0;
        merge_phases = 0;
        merge_count = 0;
        merge_pairs = [];
      }
  | Some st ->
      let forest = Array.make m false in
      let uf_nodes = Uf.create (Graph.n g) in
      let dual = ref Frac.zero in
      let total_growth = ref Frac.zero in
      let mu_hat = ref ((scale + 1) / 2) in
      let growth_phases = ref 0 in
      let merge_phases = ref 0 in
      let merge_count = ref 0 in
      let merge_pairs = ref [] in
      let recompute_activity () =
        (* Lines 20-25: every moat's status is recomputed; a moat is
           satisfied (inactive) iff it is the only one with its label. *)
        let seen = Hashtbl.create 16 in
        Array.iteri
          (fun ti _ ->
            let rep = Uf.find st.C.moats ti in
            if not (Hashtbl.mem seen rep) then begin
              Hashtbl.add seen rep ();
              st.C.act.(rep) <- not (C.is_lone_label st ti)
            end)
          st.C.terms
      in
      let continue = ref (C.exists_active st) in
      while !continue do
        let ev = C.next_event st in
        let event_mu = match ev with Some e -> Some e.C.mu | None -> None in
        let hits_threshold =
          match event_mu with
          | None -> true
          | Some mu ->
              Frac.compare
                (Frac.add !total_growth mu)
                (Frac.of_int !mu_hat)
              >= 0
        in
        let act_count = C.count_active_moats st in
        if hits_threshold then begin
          (* Checkpoint: grow exactly to µ̂, no merge, refresh activity. *)
          let mu = Frac.sub (Frac.of_int !mu_hat) !total_growth in
          assert (Frac.sign mu >= 0);
          dual := Frac.add !dual (Frac.mul_int mu act_count);
          C.grow_active st mu;
          total_growth := Frac.of_int !mu_hat;
          recompute_activity ();
          mu_hat := next_threshold ~eps_num ~eps_den !mu_hat;
          incr growth_phases;
          incr merge_phases
        end
        else begin
          match ev with
          | None -> assert false
          | Some e ->
              dual := Frac.add !dual (Frac.mul_int e.C.mu act_count);
              C.grow_active st e.C.mu;
              total_growth := Frac.add !total_growth e.C.mu;
              let inactive_involved =
                (not (C.moat_active st e.C.vi)) || not (C.moat_active st e.C.wi)
              in
              C.merge_moats st ~forest ~uf_nodes e;
              (* Line 33: the merged moat is always (re)activated. *)
              let rep = Uf.find st.C.moats e.C.vi in
              st.C.act.(rep) <- true;
              incr merge_count;
              merge_pairs := (st.C.terms.(e.C.vi), st.C.terms.(e.C.wi)) :: !merge_pairs;
              if inactive_involved then incr merge_phases
        end;
        continue := C.exists_active st
      done;
      let solution = Instance.prune inst forest in
      {
        forest;
        solution;
        weight = Instance.solution_weight inst solution;
        dual = !dual;
        dual_unscaled = Frac.to_float !dual /. float_of_int scale;
        scale;
        growth_phases = !growth_phases;
        merge_phases = !merge_phases;
        merge_count = !merge_count;
        merge_pairs = List.rev !merge_pairs;
      }
