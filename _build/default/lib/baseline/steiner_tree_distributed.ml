module Graph = Dsf_graph.Graph
module Instance = Dsf_graph.Instance
module Bfs = Dsf_congest.Bfs
module Bellman_ford = Dsf_congest.Bellman_ford
module Pipeline = Dsf_congest.Pipeline
module Ledger = Dsf_congest.Ledger
module Sim = Dsf_congest.Sim
module Bitsize = Dsf_util.Bitsize

type result = {
  solution : bool array;
  weight : int;
  ledger : Dsf_congest.Ledger.t;
}

let run g ~terminals =
  let terms = List.sort_uniq compare terminals in
  let n = Graph.n g in
  let m = Graph.m g in
  let ledger = Ledger.create () in
  match terms with
  | [] | [ _ ] ->
      { solution = Array.make m false; weight = 0; ledger }
  | _ ->
      let tree, bfs_stats = Bfs.build g ~root:(Bfs.max_id_root g) in
      Ledger.add ledger Ledger.Simulated "CF/Mehlhorn: BFS tree"
        bfs_stats.Sim.rounds;
      (* Voronoi decomposition around the terminals. *)
      let vor, vor_stats =
        Bellman_ford.run g ~sources:(List.map (fun v -> v, 0) terms)
      in
      Ledger.add ledger Ledger.Simulated "CF/Mehlhorn: terminal Voronoi"
        vor_stats.Sim.rounds;
      let ex_stats =
        Dsf_congest.Exchange.all_neighbors g
          ~payload_bits:(2 * Bitsize.id_bits ~n)
      in
      Ledger.add ledger Ledger.Simulated "CF/Mehlhorn: boundary exchange"
        ex_stats.Sim.rounds;
      (* Boundary edges witness terminal pairs; the pipelined filter selects
         an MST of the witnessed terminal graph (Mehlhorn's graph G'). *)
      let items u =
        Array.to_list (Graph.adj g u)
        |> List.filter_map (fun (nb, w, eid) ->
               let tu = vor.Bellman_ford.src_of.(u)
               and tv = vor.Bellman_ford.src_of.(nb) in
               if tu < 0 || tv < 0 || tu = tv then None
               else begin
                 let d =
                   vor.Bellman_ford.dist.(u) + w + vor.Bellman_ford.dist.(nb)
                 in
                 Some { Pipeline.key = (d, eid); a = tu; b = tv }
               end)
      in
      let accepted, pipe_stats =
        Pipeline.filtered_upcast g ~tree ~vn:n ~pre:[] ~items ~cmp:compare
          ~bits:(fun _ ->
            (3 * Bitsize.id_bits ~n)
            + Bitsize.weight_bits
                ~max_weight:(2 * Dsf_graph.Paths.diameter_weighted g))
      in
      Ledger.add ledger Ledger.Simulated
        "CF/Mehlhorn: pipelined terminal-MST filter" pipe_stats.Sim.rounds;
      let _, mb_stats =
        Dsf_congest.Tree_ops.broadcast g ~tree ~items:accepted
          ~bits:(fun _ -> 3 * Bitsize.id_bits ~n)
      in
      Ledger.add ledger Ledger.Simulated "CF/Mehlhorn: merge broadcast"
        mb_stats.Sim.rounds;
      (* Realize each selected boundary edge plus the Voronoi paths of its
         endpoints via a token flood up the Voronoi parent trees. *)
      let solution = Array.make m false in
      let seeds = Array.make n false in
      List.iter
        (fun (it : (int * int) Pipeline.item) ->
          let eid = snd it.Pipeline.key in
          solution.(eid) <- true;
          let u, v = Graph.endpoints g eid in
          seeds.(u) <- true;
          seeds.(v) <- true)
        accepted;
      let flood_edges, tf_stats =
        Dsf_core.Select.token_flood g ~parent:vor.Bellman_ford.parent ~seeds
      in
      Ledger.add ledger Ledger.Simulated "CF/Mehlhorn: token flood"
        tf_stats.Sim.rounds;
      List.iter (fun eid -> solution.(eid) <- true) flood_edges;
      (* Minimal subtree via the F.3 pruning routine (simulated). *)
      let labels = Array.make n (-1) in
      List.iter (fun v -> labels.(v) <- 0) terms;
      let inst = Instance.make_ic g labels in
      let pr =
        Dsf_core.Pruning.run inst ~f:solution
          ~sigma:(Dsf_util.Intmath.isqrt n + 1)
      in
      Ledger.merge_into ~dst:ledger pr.Dsf_core.Pruning.ledger;
      let solution = pr.Dsf_core.Pruning.pruned in
      { solution; weight = Graph.edge_set_weight g solution; ledger }
