(** Distributed 2-approximate Steiner Tree (single input component) — the
    Chalermsook-Fakcharoenphol reference point ([4] in the paper, O~(n)
    rounds), implemented in Mehlhorn's Voronoi form with the repository's
    simulated primitives:

    + multi-source Bellman-Ford from all terminals: every node learns its
      closest terminal, distance and parent (simulated, O(s) rounds);
    + one boundary-exchange round: each Voronoi boundary edge (u, v)
      witnesses a terminal pair at distance d(t_u, u) + w + d(v, t_v);
    + the pipelined Kruskal filter (Lemma 4.14 machinery) selects an MST
      of the witnessed terminal graph (simulated, O(D + t) rounds);
    + token floods mark the witnessing paths, and the F.3 pruning routine
      extracts the minimal subtree (simulated).

    Mehlhorn's analysis gives factor 2 against the optimal Steiner tree,
    same as the metric-closure KMB but without all-pairs work. *)

type result = {
  solution : bool array;
  weight : int;
  ledger : Dsf_congest.Ledger.t;
}

val run : Dsf_graph.Graph.t -> terminals:int list -> result
(** Requires a connected graph and at least one terminal. *)
