module Graph = Dsf_graph.Graph
module Bfs = Dsf_congest.Bfs
module Pipeline = Dsf_congest.Pipeline
module Sim = Dsf_congest.Sim
module Bitsize = Dsf_util.Bitsize

type result = {
  solution : bool array;
  weight : int;
  rounds : int;
  messages : int;
}

let run g =
  let n = Graph.n g in
  let tree, bfs_stats = Bfs.build g ~root:(Bfs.max_id_root g) in
  (* Each edge is held by its smaller endpoint; the filtered upcast
     delivers exactly the MST to the root. *)
  let items v =
    Array.to_list (Graph.edges g)
    |> List.filter_map (fun (e : Graph.edge) ->
           if min e.u e.v = v then
             Some { Pipeline.key = (e.w, e.id); a = e.u; b = e.v }
           else None)
  in
  let accepted, up_stats =
    Pipeline.filtered_upcast g ~tree ~vn:n ~pre:[] ~items ~cmp:compare
      ~bits:(fun _ ->
        (2 * Bitsize.id_bits ~n) + Bitsize.weight_bits ~max_weight:(Graph.max_weight g))
  in
  let solution = Array.make (Graph.m g) false in
  List.iter (fun it -> solution.(snd it.Pipeline.key) <- true) accepted;
  {
    solution;
    weight = Graph.edge_set_weight g solution;
    rounds = bfs_stats.Sim.rounds + up_stats.Sim.rounds;
    messages = bfs_stats.Sim.messages + up_stats.Sim.messages;
  }
