(** The prior-art baseline of Khan, Kuhn, Malkhi, Pandurangan & Talwar
    (reference [14] of the paper): tree embedding + per-component edge
    selection, O(log n)-approximate in O~(s k) rounds.

    The embedding is the same virtual tree as the paper's randomized
    algorithm; the difference is the selection stage.  Where Section 5
    time-multiplexes all components through the per-(label, target) filter
    (O~(s + k) total), the baseline handles components one at a time, so
    each of the k components pays its own O~(s) — the congestion behaviour
    the paper's introduction attributes to [14].  The E8 experiment
    contrasts the two round counts on the same instances. *)

type result = {
  solution : bool array;
  weight : int;
  ledger : Dsf_congest.Ledger.t;
  components_routed : int;
}

val run :
  ?repetitions:int ->
  rng:Dsf_util.Rng.t ->
  Dsf_graph.Instance.ic ->
  result
