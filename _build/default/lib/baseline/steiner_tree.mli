(** The classical Kou-Markowsky-Berman 2-approximation for Steiner Tree
    (single input component) on the terminal metric closure — a centralized
    quality baseline, corresponding to the Chalermsook-Fakcharoenphol
    distributed 2-approximation ([4] in the paper, O~(n) rounds, which we
    charge rather than simulate).

    Pipeline: metric closure on terminals -> MST of the closure -> expand
    closure edges into shortest paths -> MST of the expansion -> prune
    non-terminal leaves. *)

type result = {
  solution : bool array;
  weight : int;
  charged_rounds : int;  (** the [4] contract: O(n) *)
}

val run : Dsf_graph.Graph.t -> terminals:int list -> result
(** Raises [Invalid_argument] if the terminals are not connected. *)
