(** Garay–Kutten–Peleg-style distributed MST in O~(D + √n) rounds — the
    algorithm behind the paper's repeated reference point that MST has
    complexity Θ~(D + √n) ([11, 16]), and the template its Section 4.2
    generalizes (small moats ↔ small fragments).

    Phase 1 (controlled Borůvka): fragments grow by merging along their
    minimum outgoing edges, with a maximal matching breaking merge chains,
    but stop participating once they reach √n nodes.  Intra-fragment
    convergecasts are charged O(√n + D) per iteration (Lemma F.4's
    counterpart); O(log n) iterations suffice.

    Phase 2: at most √n fragments remain, so at most √n inter-fragment MST
    edges do; they are selected by the pipelined Kruskal-filtered upcast of
    Lemma 4.14 (genuinely simulated, O(D + √n) rounds).

    The output is the exact MST (matching Kruskal under the same
    tie-breaking). *)

type result = {
  solution : bool array;
  weight : int;
  ledger : Dsf_congest.Ledger.t;
  boruvka_iterations : int;
  fragments_after_phase1 : int;
}

val run : Dsf_graph.Graph.t -> result
(** Requires a connected graph. *)
