module Graph = Dsf_graph.Graph
module Uf = Dsf_util.Union_find
module Bfs = Dsf_congest.Bfs
module Pipeline = Dsf_congest.Pipeline
module Ledger = Dsf_congest.Ledger
module Sim = Dsf_congest.Sim
module Bitsize = Dsf_util.Bitsize

type result = {
  solution : bool array;
  weight : int;
  ledger : Dsf_congest.Ledger.t;
  boruvka_iterations : int;
  fragments_after_phase1 : int;
}

let isqrt = Dsf_util.Intmath.isqrt

let ceil_log2 = Dsf_util.Intmath.ceil_log2

let run g =
  let n = Graph.n g in
  let m = Graph.m g in
  let threshold = isqrt n in
  let ledger = Ledger.create () in
  let tree, bfs_stats = Bfs.build g ~root:(Bfs.max_id_root g) in
  Ledger.add ledger Ledger.Simulated "GKP: BFS tree" bfs_stats.Sim.rounds;
  let uf = Uf.create n in
  let solution = Array.make m false in
  let iterations = ref 0 in
  let progress = ref true in
  let max_iter = ceil_log2 (max 2 threshold) + 2 in
  (* Phase 1: controlled Boruvka.  Small fragments propose their minimum
     outgoing edge; a maximal matching plus re-added proposals merge them.
     Every proposed minimum outgoing edge is an MST edge (cut property,
     weights made distinct by the (w, id) tie-break). *)
  while !progress && !iterations < max_iter do
    incr iterations;
    progress := false;
    (* The fragments' minimum-outgoing-edge discovery runs as a real gossip
       along the already-selected edges (Component_ops); the matching
       coordination below stays charged at its Cole-Vishkin bound. *)
    let gossip_values v =
      Array.to_list (Graph.adj g v)
      |> List.filter_map (fun (nb, w, _) ->
             if Uf.same uf v nb then None else Some (w, nb))
      |> function
      | [] -> None
      | l -> Some (List.fold_left min (List.hd l) l)
    in
    let _, gossip_stats =
      Dsf_congest.Component_ops.component_min_item g ~mask:solution
        ~values:gossip_values ~cmp:compare
        ~bits:(fun _ ->
          Bitsize.id_bits ~n:(Graph.n g)
          + Bitsize.weight_bits ~max_weight:(Graph.max_weight g))
    in
    Ledger.add ledger Ledger.Simulated
      (Printf.sprintf "GKP: Boruvka iteration %d (fragment gossip)" !iterations)
      gossip_stats.Dsf_congest.Sim.rounds;
    let proposal : (int, Graph.edge) Hashtbl.t = Hashtbl.create 16 in
    Array.iter
      (fun (e : Graph.edge) ->
        let cu = Uf.find uf e.u and cv = Uf.find uf e.v in
        if cu <> cv then begin
          let consider c endpoint =
            if Uf.size uf endpoint < threshold then begin
              match Hashtbl.find_opt proposal c with
              | Some (best : Graph.edge) when (best.w, best.id) <= (e.w, e.id) -> ()
              | _ -> Hashtbl.replace proposal c e
            end
          in
          consider cu e.u;
          consider cv e.v
        end)
      (Graph.edges g);
    (* Greedy maximal matching on small-small proposals; unmatched small
       fragments keep theirs (at most a 3-hop merge chain results). *)
    let matched = Hashtbl.create 16 in
    let chosen = ref [] in
    let proposals_sorted =
      Hashtbl.fold (fun c e acc -> (c, e) :: acc) proposal []
      |> List.sort (fun (_, (a : Graph.edge)) (_, (b : Graph.edge)) ->
             compare (a.w, a.id) (b.w, b.id))
    in
    List.iter
      (fun (_, (e : Graph.edge)) ->
        let cu = Uf.find uf e.u and cv = Uf.find uf e.v in
        if
          Uf.size uf e.u < threshold && Uf.size uf e.v < threshold
          && (not (Hashtbl.mem matched cu))
          && not (Hashtbl.mem matched cv)
        then begin
          Hashtbl.replace matched cu ();
          Hashtbl.replace matched cv ();
          chosen := e :: !chosen
        end)
      proposals_sorted;
    List.iter
      (fun (c, e) -> if not (Hashtbl.mem matched c) then chosen := e :: !chosen)
      proposals_sorted;
    List.iter
      (fun (e : Graph.edge) ->
        if Uf.union uf e.u e.v then begin
          solution.(e.id) <- true;
          progress := true
        end)
      !chosen;
    if !progress then
      Ledger.add ledger Ledger.Charged
        (Printf.sprintf "GKP: Boruvka iteration %d matching ([6])" !iterations)
        ((4 * Dsf_util.Intmath.ceil_log2 (max 2 threshold)) + 8)
  done;
  let fragments = Uf.n_sets uf in
  (* Phase 2: at most sqrt(n) fragments remain; the remaining MST edges are
     selected by the pipelined Kruskal filter, genuinely simulated.  Each
     inter-fragment edge is proposed by its smaller endpoint. *)
  if fragments > 1 then begin
    let pre =
      Array.to_list (Graph.edges g)
      |> List.filter_map (fun (e : Graph.edge) ->
             if solution.(e.id) then Some (e.u, e.v) else None)
    in
    let items v =
      Array.to_list (Graph.edges g)
      |> List.filter_map (fun (e : Graph.edge) ->
             if min e.u e.v = v && not (Uf.same uf e.u e.v) then
               Some { Pipeline.key = (e.w, e.id); a = e.u; b = e.v }
             else None)
    in
    let accepted, pipe_stats =
      Pipeline.filtered_upcast g ~tree ~vn:n ~pre ~items ~cmp:compare
        ~bits:(fun _ ->
          (2 * Bitsize.id_bits ~n)
          + Bitsize.weight_bits ~max_weight:(Graph.max_weight g))
    in
    Ledger.add ledger Ledger.Simulated "GKP: pipelined inter-fragment filter"
      pipe_stats.Sim.rounds;
    List.iter (fun it -> solution.(snd it.Pipeline.key) <- true) accepted
  end;
  {
    solution;
    weight = Graph.edge_set_weight g solution;
    ledger;
    boruvka_iterations = !iterations;
    fragments_after_phase1 = fragments;
  }
