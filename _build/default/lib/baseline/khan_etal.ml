module Graph = Dsf_graph.Graph
module Instance = Dsf_graph.Instance
module Ledger = Dsf_congest.Ledger
module Sim = Dsf_congest.Sim
module Virtual_tree = Dsf_embed.Virtual_tree
module LR = Dsf_core.Level_routing

type result = {
  solution : bool array;
  weight : int;
  ledger : Ledger.t;
  components_routed : int;
}

(* Route one component's labels through all tree levels, sequentially per
   level: holders climb toward their ancestors, the target concentrates the
   label at one holder (we keep the lowest-id holder — the baseline has no
   need for the backtrace subtlety since only one label is in flight). *)
let route_component g vt ledger ~label ~terminals =
  let f = Array.make (Graph.m g) false in
  let holders = ref terminals in
  for i = 0 to vt.Virtual_tree.levels do
    if List.length !holders > 1 then begin
      let origin_set = Hashtbl.create 8 in
      List.iter
        (fun v ->
          Hashtbl.replace origin_set v
            [ label, vt.Virtual_tree.ancestors.(v).(i) ])
        !holders;
      let origins v = Option.value ~default:[] (Hashtbl.find_opt origin_set v) in
      let rstates, stats = LR.route_phase g vt ~origins in
      Ledger.add ledger Ledger.Simulated
        (Printf.sprintf "component %d level %d routing" label i)
        stats.Sim.rounds;
      Array.iter
        (fun st -> List.iter (fun eid -> f.(eid) <- true) st.LR.marked)
        rstates;
      (* New holders: the targets that received the label. *)
      let next = ref [] in
      Array.iteri
        (fun v st -> if st.LR.lhat <> [] then next := v :: !next)
        rstates;
      if !next <> [] then holders := !next
    end
  done;
  f

let one_run rng g inst ledger =
  let tree_rng = Dsf_util.Rng.split rng 0 in
  let vt, vt_rounds = Virtual_tree.build tree_rng g in
  Ledger.add ledger Ledger.Simulated "virtual tree construction" vt_rounds;
  let f = Array.make (Graph.m g) false in
  let comps = Instance.components inst in
  List.iter
    (fun (label, terminals) ->
      if List.length terminals >= 2 then begin
        let fc = route_component g vt ledger ~label ~terminals in
        Array.iteri (fun i b -> if b then f.(i) <- true) fc
      end)
    comps;
  f, List.length comps

let run ?(repetitions = 3) ~rng inst0 =
  let minimalized = Dsf_core.Transform.minimalize inst0 in
  let inst = minimalized.Dsf_core.Transform.value in
  let g = inst.Instance.graph in
  let ledger = Ledger.create () in
  Ledger.add ledger Ledger.Simulated "setup: minimalize instance (Lemma 2.4)"
    minimalized.Dsf_core.Transform.rounds;
  let best = ref None in
  let routed = ref 0 in
  for rep = 1 to repetitions do
    let f, k = one_run (Dsf_util.Rng.split rng rep) g inst ledger in
    routed := k;
    let w = Graph.edge_set_weight g f in
    match !best with
    | Some (bw, _) when bw <= w -> ()
    | _ -> best := Some (w, f)
  done;
  let weight, solution =
    match !best with Some x -> x | None -> 0, Array.make (Graph.m g) false
  in
  { solution; weight; ledger; components_routed = !routed }

(* Make the baseline available to the algorithm-agnostic front end without
   a dependency cycle (dsf_baseline already depends on dsf_core). *)
let () =
  Dsf_core.Solver.khan_hook :=
    fun ~repetitions ~rng inst ->
      let r = run ~repetitions ~rng inst in
      r.solution, r.weight, r.ledger
