lib/baseline/mst_distributed.ml: Array Dsf_congest Dsf_graph Dsf_util List
