lib/baseline/mst_distributed.mli: Dsf_graph
