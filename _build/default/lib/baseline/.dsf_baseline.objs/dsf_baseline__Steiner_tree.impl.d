lib/baseline/steiner_tree.ml: Array Dsf_graph Dsf_util List
