lib/baseline/khan_etal.mli: Dsf_congest Dsf_graph Dsf_util
