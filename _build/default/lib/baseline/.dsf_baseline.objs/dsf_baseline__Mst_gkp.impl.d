lib/baseline/mst_gkp.ml: Array Dsf_congest Dsf_graph Dsf_util Hashtbl List Printf
