lib/baseline/khan_etal.ml: Array Dsf_congest Dsf_core Dsf_embed Dsf_graph Dsf_util Hashtbl List Option Printf
