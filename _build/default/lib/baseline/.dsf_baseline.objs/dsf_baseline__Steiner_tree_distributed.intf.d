lib/baseline/steiner_tree_distributed.mli: Dsf_congest Dsf_graph
