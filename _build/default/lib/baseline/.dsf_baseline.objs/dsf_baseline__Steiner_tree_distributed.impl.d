lib/baseline/steiner_tree_distributed.ml: Array Dsf_congest Dsf_core Dsf_graph Dsf_util List
