lib/baseline/steiner_tree.mli: Dsf_graph
