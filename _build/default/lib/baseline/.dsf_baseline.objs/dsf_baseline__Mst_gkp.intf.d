lib/baseline/mst_gkp.mli: Dsf_congest Dsf_graph
