module Graph = Dsf_graph.Graph
module Paths = Dsf_graph.Paths
module Instance = Dsf_graph.Instance
module Mst = Dsf_graph.Mst
module Uf = Dsf_util.Union_find

type result = {
  solution : bool array;
  weight : int;
  charged_rounds : int;
}

let run g ~terminals =
  let terms = List.sort_uniq compare terminals in
  let m = Graph.m g in
  match terms with
  | [] | [ _ ] ->
      { solution = Array.make m false; weight = 0; charged_rounds = 0 }
  | _ ->
      let terms_arr = Array.of_list terms in
      let q = Array.length terms_arr in
      let dijkstra_from =
        Array.map (fun v -> Paths.dijkstra_hops g ~src:v) terms_arr
      in
      (* MST of the terminal metric closure (Kruskal over all pairs). *)
      let pairs = ref [] in
      for i = 0 to q - 1 do
        let dist, _, _ = dijkstra_from.(i) in
        for j = i + 1 to q - 1 do
          if dist.(terms_arr.(j)) = max_int then
            invalid_arg "Steiner_tree.run: terminals disconnected";
          pairs := (dist.(terms_arr.(j)), i, j) :: !pairs
        done
      done;
      let sorted = List.sort compare !pairs in
      let uf = Uf.create q in
      let closure_mst =
        List.filter (fun (_, i, j) -> Uf.union uf i j) sorted
      in
      (* Expand each closure edge into a shortest path. *)
      let selected = Array.make m false in
      List.iter
        (fun (_, i, j) ->
          let _, parent, _ = dijkstra_from.(i) in
          let rec climb v =
            if parent.(v) >= 0 then begin
              (match Graph.find_edge g v parent.(v) with
              | Some eid -> selected.(eid) <- true
              | None -> assert false);
              climb parent.(v)
            end
          in
          climb terms_arr.(j))
        closure_mst;
      (* MST of the expansion, then prune non-terminal leaves: reuse the
         generic prune with all terminals sharing one label. *)
      let sub_edges =
        Array.to_list (Graph.edges g)
        |> List.filter (fun (e : Graph.edge) -> selected.(e.id))
        |> List.sort (fun (a : Graph.edge) b -> compare (a.w, a.id) (b.w, b.id))
      in
      let uf2 = Uf.create (Graph.n g) in
      let forest = Array.make m false in
      List.iter
        (fun (e : Graph.edge) ->
          if Uf.union uf2 e.u e.v then forest.(e.id) <- true)
        sub_edges;
      let labels = Array.make (Graph.n g) (-1) in
      List.iter (fun v -> labels.(v) <- 0) terms;
      let inst = Instance.make_ic g labels in
      let solution = Instance.prune inst forest in
      {
        solution;
        weight = Graph.edge_set_weight g solution;
        charged_rounds = Graph.n g;
      }
