(** Distributed minimum spanning tree by pipelined Kruskal filtering over a
    BFS tree — the classical O(D + n) pipelined-convergecast MST, used as
    the reference point for the E9 "MST special case" experiment (the
    paper notes that its deterministic algorithm specialized to k = 1,
    t = n computes an exact MST). *)

type result = {
  solution : bool array;
  weight : int;
  rounds : int;
  messages : int;
}

val run : Dsf_graph.Graph.t -> result
(** Requires a connected graph; returns the (unique under edge-id
    tie-breaking) minimum spanning tree. *)
