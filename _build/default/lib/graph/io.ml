type parsed =
  | Ic of Instance.ic
  | Cr of Instance.cr
  | Plain of Graph.t

exception Parse_error of int * string

let fail lineno msg = raise (Parse_error (lineno, msg))

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let n = ref (-1) in
  let edges = ref [] in
  let labels = ref [] in
  let requests = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let words =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun w -> w <> "")
      in
      let int_arg w =
        match int_of_string_opt w with
        | Some x -> x
        | None -> fail lineno (Printf.sprintf "expected integer, got %S" w)
      in
      match words with
      | [] -> ()
      | [ "n"; x ] ->
          if !n >= 0 then fail lineno "duplicate n line";
          n := int_arg x
      | [ "edge"; u; v; w ] -> edges := (int_arg u, int_arg v, int_arg w) :: !edges
      | [ "label"; v; l ] -> labels := (int_arg v, int_arg l) :: !labels
      | [ "request"; u; v ] -> requests := (int_arg u, int_arg v) :: !requests
      | w :: _ -> fail lineno (Printf.sprintf "unknown directive %S" w))
    lines;
  if !n < 0 then fail 0 "missing n line";
  let g =
    try Graph.make ~n:!n (List.rev !edges)
    with Invalid_argument msg -> fail 0 msg
  in
  match !labels, !requests with
  | [], [] -> Plain g
  | _ :: _, _ :: _ -> fail 0 "cannot mix label and request lines"
  | ls, [] ->
      let arr = Array.make !n (-1) in
      List.iter
        (fun (v, l) ->
          if v < 0 || v >= !n then fail 0 "label node out of range";
          if l < 0 then fail 0 "labels must be non-negative";
          arr.(v) <- l)
        ls;
      Ic (Instance.make_ic g arr)
  | [], rs ->
      let arr = Array.make !n [] in
      List.iter
        (fun (u, v) ->
          if u < 0 || u >= !n || v < 0 || v >= !n then
            fail 0 "request node out of range";
          arr.(u) <- v :: arr.(u))
        rs;
      Cr (Instance.make_cr g arr)

let parse_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string text

let print_graph ppf g =
  Format.fprintf ppf "n %d@." (Graph.n g);
  Array.iter
    (fun (e : Graph.edge) -> Format.fprintf ppf "edge %d %d %d@." e.u e.v e.w)
    (Graph.edges g)

let print_ic ppf (inst : Instance.ic) =
  print_graph ppf inst.Instance.graph;
  Array.iteri
    (fun v l -> if l >= 0 then Format.fprintf ppf "label %d %d@." v l)
    inst.Instance.labels

let print_cr ppf (cr : Instance.cr) =
  print_graph ppf cr.Instance.cr_graph;
  Array.iteri
    (fun u -> List.iter (fun v -> Format.fprintf ppf "request %d %d@." u v))
    cr.Instance.requests

let roundtrip_ic inst =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  print_ic ppf inst;
  Format.pp_print_flush ppf ();
  match parse_string (Buffer.contents buf) with
  | Ic x -> x
  | Cr _ | Plain _ -> invalid_arg "Io.roundtrip_ic: shape changed"

let parse_solution g text =
  let selected = Array.make (Graph.m g) false in
  let lines = String.split_on_char '\n' text in
  let error = ref None in
  List.iteri
    (fun i line ->
      if !error = None then begin
        let line =
          match String.index_opt line '#' with
          | Some j -> String.sub line 0 j
          | None -> line
        in
        let words =
          String.split_on_char ' ' line
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun w -> w <> "")
        in
        match words with
        | [] -> ()
        | [ u; v ] -> begin
            match int_of_string_opt u, int_of_string_opt v with
            | Some u, Some v
              when u >= 0 && u < Graph.n g && v >= 0 && v < Graph.n g -> begin
                match Graph.find_edge g u v with
                | Some eid -> selected.(eid) <- true
                | None ->
                    error :=
                      Some (Printf.sprintf "line %d: no edge %d-%d" (i + 1) u v)
              end
            | _ -> error := Some (Printf.sprintf "line %d: bad endpoints" (i + 1))
          end
        | _ -> error := Some (Printf.sprintf "line %d: expected \"u v\"" (i + 1))
      end)
    lines;
  match !error with Some e -> Error e | None -> Ok selected

let print_solution ppf g selected =
  Array.iter
    (fun (e : Graph.edge) ->
      if selected.(e.id) then Format.fprintf ppf "%d %d@." e.u e.v)
    (Graph.edges g)
