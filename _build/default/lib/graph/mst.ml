module Uf = Dsf_util.Union_find

let kruskal g =
  let edges = Array.copy (Graph.edges g) in
  Array.sort
    (fun (a : Graph.edge) (b : Graph.edge) -> compare (a.w, a.id) (b.w, b.id))
    edges;
  let uf = Uf.create (Graph.n g) in
  let selected = Array.make (Graph.m g) false in
  Array.iter
    (fun (e : Graph.edge) -> if Uf.union uf e.u e.v then selected.(e.id) <- true)
    edges;
  selected

let weight g = Graph.edge_set_weight g (kruskal g)

let is_spanning_tree g f =
  let count = Array.fold_left (fun a b -> if b then a + 1 else a) 0 f in
  count = Graph.n g - 1
  &&
  let uf = Graph.subgraph_union_find g f in
  Uf.n_sets uf = 1
