module Heap = Dsf_util.Heap

let inf = max_int

(* Lexicographic Dijkstra on (weight, hops): among least-weight paths we keep
   one with the fewest hops, which is exactly the path family the
   shortest-path diameter [s] is defined over. *)
let dijkstra_hops g ~src =
  let n = Graph.n g in
  let dist = Array.make n inf in
  let hops = Array.make n inf in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let cmp (d1, h1, _, _) (d2, h2, _, _) = compare (d1, h1) (d2, h2) in
  let heap = Heap.create ~cmp in
  dist.(src) <- 0;
  hops.(src) <- 0;
  Heap.push heap (0, 0, src, -1);
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, h, v, par) ->
        if not settled.(v) then begin
          settled.(v) <- true;
          dist.(v) <- d;
          hops.(v) <- h;
          parent.(v) <- par;
          Array.iter
            (fun (nb, w, _) ->
              if not settled.(nb) then begin
                let nd = d + w and nh = h + 1 in
                if (nd, nh) < (dist.(nb), hops.(nb)) then begin
                  dist.(nb) <- nd;
                  hops.(nb) <- nh;
                  Heap.push heap (nd, nh, nb, v)
                end
              end)
            (Graph.adj g v)
        end;
        loop ()
  in
  loop ();
  (* Reset unreachable markers: dist stays inf, hops inf, parent -1. *)
  dist, parent, hops

let dijkstra g ~src =
  let dist, parent, _ = dijkstra_hops g ~src in
  dist, parent

let shortest_path g ~src ~dst =
  let dist, parent, _ = dijkstra_hops g ~src in
  if dist.(dst) = inf then None
  else begin
    let rec build acc v = if v = src then v :: acc else build (v :: acc) parent.(v) in
    Some (build [] dst, dist.(dst))
  end

let path_edges g nodes =
  let rec go acc = function
    | [] | [ _ ] -> List.rev acc
    | u :: (v :: _ as rest) -> begin
        match Graph.find_edge g u v with
        | Some id -> go (id :: acc) rest
        | None -> invalid_arg "Paths.path_edges: non-adjacent consecutive nodes"
      end
  in
  go [] nodes

let bfs g ~src =
  let n = Graph.n g in
  let dist = Array.make n inf in
  let parent = Array.make n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun (nb, _, _) ->
        if dist.(nb) = inf then begin
          dist.(nb) <- dist.(v) + 1;
          parent.(nb) <- v;
          Queue.add nb q
        end)
      (Graph.adj g v)
  done;
  dist, parent

let bfs_multi g ~srcs =
  let n = Graph.n g in
  let dist = Array.make n inf in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) = inf then begin
        dist.(s) <- 0;
        Queue.add s q
      end)
    srcs;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun (nb, _, _) ->
        if dist.(nb) = inf then begin
          dist.(nb) <- dist.(v) + 1;
          Queue.add nb q
        end)
      (Graph.adj g v)
  done;
  dist

let all_pairs g =
  Array.init (Graph.n g) (fun src -> fst (dijkstra g ~src))

let eccentricity_unweighted g v =
  let dist, _ = bfs g ~src:v in
  Array.fold_left
    (fun acc d ->
      if d = inf then invalid_arg "Paths: disconnected graph" else max acc d)
    0 dist

let fold_sources g f init =
  let acc = ref init in
  for src = 0 to Graph.n g - 1 do
    acc := f !acc src
  done;
  !acc

let diameter_unweighted g =
  fold_sources g (fun acc src -> max acc (eccentricity_unweighted g src)) 0

let diameter_weighted g =
  fold_sources g
    (fun acc src ->
      let dist, _ = dijkstra g ~src in
      Array.fold_left
        (fun a d ->
          if d = inf then invalid_arg "Paths: disconnected graph" else max a d)
        acc dist)
    0

let shortest_path_diameter g =
  fold_sources g
    (fun acc src ->
      let _, _, hops = dijkstra_hops g ~src in
      Array.fold_left
        (fun a h ->
          if h = inf then invalid_arg "Paths: disconnected graph" else max a h)
        acc hops)
    0

let parameters g =
  let d = ref 0 and wd = ref 0 and s = ref 0 in
  for src = 0 to Graph.n g - 1 do
    let bd, _ = bfs g ~src in
    let dist, _, hops = dijkstra_hops g ~src in
    for v = 0 to Graph.n g - 1 do
      if bd.(v) = inf then invalid_arg "Paths: disconnected graph";
      d := max !d bd.(v);
      wd := max !wd dist.(v);
      s := max !s hops.(v)
    done
  done;
  !d, !wd, !s
