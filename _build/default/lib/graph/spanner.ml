module Heap = Dsf_util.Heap

type t = {
  points : int;
  edges : (int * int * int) list;
}

(* Dijkstra over the current spanner adjacency, stopping early once the
   target is settled or distances exceed the cap. *)
let dijkstra_capped adj p src dst cap =
  let dist = Array.make p max_int in
  let heap = Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
  dist.(src) <- 0;
  Heap.push heap (0, src);
  let result = ref max_int in
  let continue = ref true in
  while !continue do
    match Heap.pop heap with
    | None -> continue := false
    | Some (d, v) ->
        if d <= dist.(v) then begin
          if v = dst then begin
            result := d;
            continue := false
          end
          else if d > cap then continue := false
          else
            List.iter
              (fun (nb, w) ->
                if d + w < dist.(nb) then begin
                  dist.(nb) <- d + w;
                  Heap.push heap (d + w, nb)
                end)
              adj.(v)
        end
  done;
  !result

let greedy ~dist ~points ~stretch =
  assert (stretch >= 1);
  let pairs = ref [] in
  for i = 0 to points - 1 do
    for j = i + 1 to points - 1 do
      let d = dist i j in
      assert (d > 0);
      pairs := (d, i, j) :: !pairs
    done
  done;
  let sorted = List.sort compare !pairs in
  let adj = Array.make points [] in
  let edges = ref [] in
  List.iter
    (fun (d, i, j) ->
      let within = dijkstra_capped adj points i j (stretch * d) in
      if within > stretch * d then begin
        adj.(i) <- (j, d) :: adj.(i);
        adj.(j) <- (i, d) :: adj.(j);
        edges := (i, j, d) :: !edges
      end)
    sorted;
  { points; edges = List.rev !edges }

let adjacency t =
  let adj = Array.make t.points [] in
  List.iter
    (fun (i, j, d) ->
      adj.(i) <- (j, d) :: adj.(i);
      adj.(j) <- (i, d) :: adj.(j))
    t.edges;
  adj

let spanner_distance t src dst =
  if src = dst then 0
  else dijkstra_capped (adjacency t) t.points src dst max_int

let max_stretch t ~dist =
  let worst = ref 1.0 in
  for i = 0 to t.points - 1 do
    for j = i + 1 to t.points - 1 do
      let sd = spanner_distance t i j in
      let d = dist i j in
      if sd < max_int && d > 0 then begin
        let s = float_of_int sd /. float_of_int d in
        if s > !worst then worst := s
      end
    done
  done;
  !worst

let edge_count t = List.length t.edges
