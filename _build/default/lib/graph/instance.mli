(** Steiner Forest problem instances (Definitions 2.1 and 2.2).

    An instance of DSF-IC is a graph plus a label per node: [labels.(v)] is
    the input-component id of terminal [v], or [-1] when [v] is not a
    terminal.  An instance of DSF-CR is a graph plus per-node connection
    request sets.  Output edge sets are represented as bit arrays indexed by
    edge id. *)

type ic = { graph : Graph.t; labels : int array }

type cr = { cr_graph : Graph.t; requests : int list array }
(** [requests.(v)] is the set R_v of nodes v must be connected to. *)

val make_ic : Graph.t -> int array -> ic
(** Validates: labels length = n, label values >= -1, every used label has at
    least one terminal.  (Singleton components are allowed; see
    {!minimalize}.) *)

val make_cr : Graph.t -> int list array -> cr

val terminals : ic -> int list
val terminal_count : ic -> int
(** [t] of the paper. *)

val component_count : ic -> int
(** [k]: number of distinct labels in use. *)

val components : ic -> (int * int list) list
(** [(label, members)] for each input component, labels ascending. *)

val nontrivial_component_count : ic -> int
(** [k0]: components with at least two terminals. *)

val minimalize : ic -> ic
(** Drop labels of singleton components (Lemma 2.4's semantic effect). *)

val ic_of_cr : cr -> ic
(** The equivalent DSF-IC instance (Lemma 2.3's semantic effect): input
    components are the connected components of the request graph on
    terminals. *)

val is_feasible : ic -> bool array -> bool
(** Does the edge set connect every input component? *)

val cr_is_feasible : cr -> bool array -> bool

val solution_weight : ic -> bool array -> int

val is_forest : Graph.t -> bool array -> bool

val prune : ic -> bool array -> bool array
(** [prune inst f] returns the minimal subset of the forest [f] that still
    solves the instance (the "minimal feasible subset" of Algorithms 1/2 and
    the goal of the fast pruning routine, Appendix F.3).  Requires [f] to be
    a feasible forest. *)

val check_solution : ic -> bool array -> (int, string) result
(** Full validation: forest-ness not required, feasibility is; returns the
    solution weight or a diagnostic. *)
