(** Centralized shortest-path algorithms and the graph parameters the paper's
    bounds are stated in: unweighted diameter [D], weighted diameter [WD], and
    shortest-path diameter [s] (the maximum, over node pairs, of the minimum
    hop count among least-weight paths — Section 2). *)

val dijkstra : Graph.t -> src:int -> int array * int array
(** [dijkstra g ~src] returns [(dist, parent)].  [dist.(v)] is the weighted
    distance from [src] ([max_int] if unreachable); [parent.(v)] is the
    predecessor on a least-weight, least-hop path ([-1] for [src] and
    unreachable nodes). *)

val dijkstra_hops : Graph.t -> src:int -> int array * int array * int array
(** Like {!dijkstra} but also returns the hop count of the least-hop
    least-weight path to each node. *)

val shortest_path : Graph.t -> src:int -> dst:int -> (int list * int) option
(** Node sequence (from [src] to [dst]) and weight of a least-weight
    least-hop path, or [None] if disconnected. *)

val path_edges : Graph.t -> int list -> int list
(** Edge ids along a node sequence.  Raises if consecutive nodes are not
    adjacent. *)

val bfs : Graph.t -> src:int -> int array * int array
(** Unweighted distances and BFS-tree parents. *)

val bfs_multi : Graph.t -> srcs:int list -> int array
(** Unweighted distance to the nearest source. *)

val all_pairs : Graph.t -> int array array
(** All-pairs weighted distances (repeated Dijkstra). *)

val eccentricity_unweighted : Graph.t -> int -> int

val diameter_unweighted : Graph.t -> int
(** [D].  Raises [Invalid_argument] if the graph is disconnected. *)

val diameter_weighted : Graph.t -> int
(** [WD]. *)

val shortest_path_diameter : Graph.t -> int
(** [s]: max over pairs of the min hop count among least-weight paths.  Uses
    lexicographic (weight, hops) Dijkstra from every source; O(n·m log n). *)

val parameters : Graph.t -> int * int * int
(** [(d, wd, s)] in one pass over sources. *)
