module Uf = Dsf_util.Union_find

type ic = { graph : Graph.t; labels : int array }

type cr = { cr_graph : Graph.t; requests : int list array }

let make_ic graph labels =
  if Array.length labels <> Graph.n graph then
    invalid_arg "Instance.make_ic: labels length mismatch";
  Array.iter
    (fun l -> if l < -1 then invalid_arg "Instance.make_ic: bad label")
    labels;
  { graph; labels }

let make_cr cr_graph requests =
  if Array.length requests <> Graph.n cr_graph then
    invalid_arg "Instance.make_cr: requests length mismatch";
  let n = Graph.n cr_graph in
  Array.iter
    (List.iter (fun w ->
         if w < 0 || w >= n then invalid_arg "Instance.make_cr: bad request"))
    requests;
  { cr_graph; requests }

let terminals inst =
  let acc = ref [] in
  for v = Array.length inst.labels - 1 downto 0 do
    if inst.labels.(v) >= 0 then acc := v :: !acc
  done;
  !acc

let terminal_count inst = List.length (terminals inst)

let used_labels inst =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun l -> if l >= 0 && not (Hashtbl.mem seen l) then Hashtbl.add seen l ())
    inst.labels;
  Hashtbl.fold (fun l () acc -> l :: acc) seen [] |> List.sort compare

let component_count inst = List.length (used_labels inst)

let components inst =
  let h = Hashtbl.create 16 in
  Array.iteri
    (fun v l ->
      if l >= 0 then begin
        let prev = try Hashtbl.find h l with Not_found -> [] in
        Hashtbl.replace h l (v :: prev)
      end)
    inst.labels;
  Hashtbl.fold (fun l vs acc -> (l, List.sort compare vs) :: acc) h []
  |> List.sort compare

let nontrivial_component_count inst =
  components inst |> List.filter (fun (_, vs) -> List.length vs >= 2)
  |> List.length

let minimalize inst =
  let labels = Array.copy inst.labels in
  List.iter
    (fun (_, vs) ->
      match vs with [ v ] -> labels.(v) <- -1 | _ -> ())
    (components inst);
  { inst with labels }

let ic_of_cr cr =
  let n = Graph.n cr.cr_graph in
  let uf = Uf.create n in
  let is_terminal = Array.make n false in
  Array.iteri
    (fun v rs ->
      List.iter
        (fun w ->
          is_terminal.(v) <- true;
          is_terminal.(w) <- true;
          ignore (Uf.union uf v w))
        rs)
    cr.requests;
  (* Use the component representative as the label; remap to 0..k-1. *)
  let remap = Hashtbl.create 16 in
  let next = ref 0 in
  let labels =
    Array.init n (fun v ->
        if not is_terminal.(v) then -1
        else begin
          let r = Uf.find uf v in
          match Hashtbl.find_opt remap r with
          | Some l -> l
          | None ->
              let l = !next in
              incr next;
              Hashtbl.add remap r l;
              l
        end)
  in
  { graph = cr.cr_graph; labels }

let solution_uf inst f = Graph.subgraph_union_find inst.graph f

let is_feasible inst f =
  let uf = solution_uf inst f in
  List.for_all
    (fun (_, vs) ->
      match vs with
      | [] -> true
      | v0 :: rest -> List.for_all (fun v -> Uf.same uf v0 v) rest)
    (components inst)

let cr_is_feasible cr f =
  let uf = Graph.subgraph_union_find cr.cr_graph f in
  Array.for_all (fun ok -> ok)
    (Array.mapi
       (fun v rs -> List.for_all (fun w -> Uf.same uf v w) rs)
       cr.requests)

let solution_weight inst f = Graph.edge_set_weight inst.graph f

let is_forest g f =
  let uf = Uf.create (Graph.n g) in
  Array.for_all
    (fun (e : Graph.edge) -> (not f.(e.id)) || Uf.union uf e.u e.v)
    (Graph.edges g)

(* Minimal subforest: an edge e of the forest f is needed iff the subtree
   hanging below e contains some, but not all, of a label's terminals.  We
   root each tree of f and propagate per-label terminal counts upward with
   small-to-large map merging. *)
let prune inst f =
  let g = inst.graph in
  let n = Graph.n g in
  if not (is_forest g f) then invalid_arg "Instance.prune: not a forest";
  if not (is_feasible inst f) then invalid_arg "Instance.prune: infeasible";
  let total = Hashtbl.create 16 in
  Array.iter
    (fun l ->
      if l >= 0 then
        Hashtbl.replace total l (1 + Option.value ~default:0 (Hashtbl.find_opt total l)))
    inst.labels;
  let keep = Array.make (Graph.m g) false in
  let visited = Array.make n false in
  (* Iterative post-order DFS over each tree of f. *)
  let counts : (int, int) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 1)
  in
  let parent_edge = Array.make n (-1) in
  let order = ref [] in
  for root = 0 to n - 1 do
    if not visited.(root) then begin
      let stack = Stack.create () in
      Stack.push root stack;
      visited.(root) <- true;
      while not (Stack.is_empty stack) do
        let v = Stack.pop stack in
        order := v :: !order;
        Array.iter
          (fun (nb, _, eid) ->
            if f.(eid) && not visited.(nb) then begin
              visited.(nb) <- true;
              parent_edge.(nb) <- eid;
              Stack.push nb stack
            end)
          (Graph.adj g v)
      done
    end
  done;
  (* !order is reverse of visit order = children before parents when
     reversed again... Stack-based preorder: processing !order as-is gives
     nodes in reverse preorder, which is a valid post-order for trees. *)
  List.iter
    (fun v ->
      if inst.labels.(v) >= 0 then begin
        let l = inst.labels.(v) in
        Hashtbl.replace counts.(v) l
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts.(v) l))
      end;
      let eid = parent_edge.(v) in
      if eid >= 0 then begin
        let needed =
          Hashtbl.fold
            (fun l c acc -> acc || c < Hashtbl.find total l)
            counts.(v) false
        in
        if needed then keep.(eid) <- true;
        (* Merge counts into the parent, small-to-large. *)
        let p = Graph.other_endpoint g ~eid v in
        let small, large =
          if Hashtbl.length counts.(v) <= Hashtbl.length counts.(p) then
            counts.(v), counts.(p)
          else counts.(p), counts.(v)
        in
        Hashtbl.iter
          (fun l c ->
            Hashtbl.replace large l
              (c + Option.value ~default:0 (Hashtbl.find_opt large l)))
          small;
        counts.(p) <- large
      end)
    !order;
  keep

let check_solution inst f =
  if Array.length f <> Graph.m inst.graph then Error "edge set size mismatch"
  else if not (is_feasible inst f) then Error "infeasible: some component disconnected"
  else Ok (solution_weight inst f)
