(** Graphviz DOT export for graphs, instances and solutions — handy for
    inspecting small instances and for the examples' output. *)

val graph : Format.formatter -> Graph.t -> unit
(** Plain weighted graph. *)

val instance :
  ?solution:bool array -> Format.formatter -> Instance.ic -> unit
(** Terminals are drawn as filled boxes colored per input component;
    solution edges (if given) are bold. *)

val to_file : string -> (Format.formatter -> 'a -> unit) -> 'a -> unit
(** [to_file path pp x] writes [pp x] to [path]. *)
