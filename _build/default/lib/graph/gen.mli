(** Graph and instance generators for tests, examples and experiments.

    All randomized generators take an explicit {!Dsf_util.Rng.t} and are fully
    reproducible.  Weighted variants draw integer weights uniformly from
    [1, max_w]. *)

val path : int -> Graph.t
val cycle : int -> Graph.t
val star : int -> Graph.t
(** [star n]: node 0 is the hub, nodes 1..n-1 are leaves. *)

val complete : int -> Graph.t
val grid : rows:int -> cols:int -> Graph.t
(** Node at (r, c) has id [r * cols + c]. *)

val binary_tree : int -> Graph.t
(** Complete binary-tree shape on n nodes; node i's parent is (i-1)/2. *)

val reweight : Dsf_util.Rng.t -> max_w:int -> Graph.t -> Graph.t
(** Same topology, fresh uniform random weights in [1, max_w]. *)

val random_connected : Dsf_util.Rng.t -> n:int -> extra_edges:int -> max_w:int -> Graph.t
(** Random spanning tree (uniform attachment) plus [extra_edges] additional
    distinct random edges; weights uniform in [1, max_w]. *)

val clustered :
  Dsf_util.Rng.t ->
  clusters:int -> cluster_size:int -> intra_extra:int -> bridges:int ->
  intra_w:int -> bridge_w:int -> Graph.t
(** Community-structured network: [clusters] groups of [cluster_size]
    nodes, each internally connected (random spanning tree plus
    [intra_extra] extra edges, weights in [1, intra_w]); consecutive
    clusters are linked by [bridges] random inter-cluster edges with
    weights in [1, bridge_w].  Cheap local traffic, expensive backbone —
    the regime where Steiner Forest sharing matters. *)

val random_geometric : Dsf_util.Rng.t -> n:int -> radius:float -> max_w:int -> Graph.t
(** Nodes at uniform random points in the unit square; edges between points
    within [radius], weight = rounded scaled Euclidean distance (at least 1).
    Extra nearest-neighbour edges are added if needed to make it connected. *)

val lollipop : clique:int -> tail:int -> Graph.t
(** A clique with a path attached: small D on the clique side, long s. *)

val broom : tail:int -> arm_lengths:int list -> Graph.t * int array
(** The adversarial family for the O(ks) round bound (experiment E3): a
    hub (node 0) with a terminal-free path of [tail] unit edges attached,
    plus, for each entry [l] of [arm_lengths], a pair of length-[l] arms
    whose endpoints form one input component.  Distinct arm lengths make
    the components complete in separate merge phases, and every phase's
    terminal decomposition must re-sweep the tail — so the deterministic
    algorithm really pays ~ k * s rounds.  Returns the graph and the
    DSF-IC label array. *)

val random_labels :
  Dsf_util.Rng.t -> n:int -> t:int -> k:int -> int array
(** A DSF-IC label assignment: [t] distinct terminals partitioned into [k]
    components, each of size >= 2 (requires [t >= 2 * k]).  Returns an array
    of length [n] with component id in [0, k) for terminals and [-1] for
    non-terminals. *)

val spread_labels :
  Dsf_util.Rng.t -> Graph.t -> t:int -> k:int -> int array
(** Like {!random_labels} but places each component's terminals in distinct
    regions of the graph (grown from k random seeds via BFS), producing
    instances where components are geographically coherent — the VPN-style
    workloads of the paper's introduction. *)
