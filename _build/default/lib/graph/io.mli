(** Plain-text (de)serialization of graphs and instances, for the CLI and
    for sharing test cases.

    Format (line-oriented, [#] starts a comment):

    {v
    n 6
    edge 0 1 4        # endpoints and weight
    edge 1 2 1
    label 0 0         # node 0 carries input-component 0
    label 2 0
    request 3 5       # or connection requests (DSF-CR)
    v}

    A file with [label] lines parses as DSF-IC, one with [request] lines as
    DSF-CR; mixing both is an error. *)

type parsed =
  | Ic of Instance.ic
  | Cr of Instance.cr
  | Plain of Graph.t

exception Parse_error of int * string
(** Line number and message. *)

val parse_string : string -> parsed
val parse_file : string -> parsed

val print_ic : Format.formatter -> Instance.ic -> unit
val print_cr : Format.formatter -> Instance.cr -> unit
val print_graph : Format.formatter -> Graph.t -> unit

val roundtrip_ic : Instance.ic -> Instance.ic
(** [parse (print x)] — exposed for tests. *)

val parse_solution : Graph.t -> string -> (bool array, string) Stdlib.result
(** Parse a solution file: one selected edge per line as "u v" (order
    irrelevant, [#] comments allowed).  Errors on unknown edges. *)

val print_solution : Format.formatter -> Graph.t -> bool array -> unit
