let inf = max_int / 4

(* Dreyfus-Wagner over the metric closure.  dp.(mask).(v) is the minimum
   weight of a tree spanning {terminals in mask} + {v}. *)
let steiner_tree_weight g terminals =
  let terms = List.sort_uniq compare terminals in
  let q = List.length terms in
  if q <= 1 then 0
  else begin
    if q > 16 then invalid_arg "Exact.steiner_tree_weight: too many terminals";
    let n = Graph.n g in
    let term = Array.of_list terms in
    let dist = Array.map (fun src -> fst (Paths.dijkstra g ~src)) term in
    (* dist.(i).(v): distance from terminal i to node v. *)
    let full = (1 lsl q) - 1 in
    let dp = Array.make_matrix (full + 1) n inf in
    for i = 0 to q - 1 do
      for v = 0 to n - 1 do
        if dist.(i).(v) < inf then dp.(1 lsl i).(v) <- dist.(i).(v)
      done
    done;
    (* Node-to-node distances for the relaxation step. *)
    let apsp = Paths.all_pairs g in
    for mask = 1 to full do
      if mask land (mask - 1) <> 0 then begin
        (* Combine: dp.(mask).(v) <- min over proper submasks. *)
        for v = 0 to n - 1 do
          let sub = ref ((mask - 1) land mask) in
          let best = ref dp.(mask).(v) in
          while !sub > 0 do
            (* Only consider submasks containing the lowest set bit of mask,
               to halve the work (the complement covers the rest). *)
            if !sub land (mask land -mask) <> 0 then begin
              let a = dp.(!sub).(v) and b = dp.(mask lxor !sub).(v) in
              if a < inf && b < inf && a + b < !best then best := a + b
            end;
            sub := (!sub - 1) land mask
          done;
          dp.(mask).(v) <- !best
        done;
        (* Relax: dp.(mask).(v) <- min_u dp.(mask).(u) + d(u, v).  With the
           metric closure a single pass over all (u, v) pairs suffices. *)
        for v = 0 to n - 1 do
          let best = ref dp.(mask).(v) in
          for u = 0 to n - 1 do
            let du = dp.(mask).(u) in
            if du < inf && apsp.(u).(v) < inf && du + apsp.(u).(v) < !best then
              best := du + apsp.(u).(v)
          done;
          dp.(mask).(v) <- !best
        done
      end
    done;
    let answer = dp.(full).(term.(0)) in
    if answer >= inf then invalid_arg "Exact.steiner_tree_weight: disconnected";
    answer
  end

let rec partitions = function
  | [] -> [ [] ]
  | x :: rest ->
      let sub = partitions rest in
      List.concat_map
        (fun p ->
          (* x as its own block, or x joined to each existing block *)
          ([ x ] :: p)
          :: List.mapi
               (fun i _ ->
                 List.mapi (fun j b -> if i = j then x :: b else b) p)
               p)
        sub

let steiner_forest_weight inst =
  let comps =
    Instance.components inst |> List.filter (fun (_, vs) -> List.length vs >= 2)
  in
  match comps with
  | [] -> 0
  | _ ->
      let best = ref inf in
      List.iter
        (fun partition ->
          let cost =
            List.fold_left
              (fun acc block ->
                if acc >= inf then inf
                else begin
                  let terms = List.concat_map snd block in
                  let w = steiner_tree_weight inst.Instance.graph terms in
                  acc + w
                end)
              0 partition
          in
          if cost < !best then best := cost)
        (partitions comps);
      !best
