(** Greedy metric spanners — the core data structure of the paper's [17]
    black box (Lenzen & Patt-Shamir, STOC 2013), which builds a sparse
    spanner of the metric induced on the terminals and a node sample, then
    solves the instance centrally on it.

    [greedy] is the classical Althöfer et al. construction: scan point
    pairs by increasing distance and keep an edge iff the spanner built so
    far does not already connect the pair within [stretch] times its
    distance.  The result is a [stretch]-spanner; with stretch 2r - 1 its
    size is O(p^(1 + 1/r)) edges on [p] points. *)

type t = {
  points : int;
  edges : (int * int * int) list;  (** (i, j, distance) over point indices *)
}

val greedy : dist:(int -> int -> int) -> points:int -> stretch:int -> t
(** [dist] must be symmetric, positive off the diagonal.  O(p^2 log p +
    p * |edges| * log p). *)

val spanner_distance : t -> int -> int -> int
(** Shortest-path distance within the spanner ([max_int] if disconnected —
    cannot happen for outputs of {!greedy} on finite metrics). *)

val max_stretch : t -> dist:(int -> int -> int) -> float
(** max over pairs of spanner_distance / dist — by construction at most the
    stretch passed to {!greedy}. *)

val edge_count : t -> int
