(** Minimum spanning trees / forests (Kruskal).  Reference implementation
    used by the MST baseline and the E9 "MST special case" experiment. *)

val kruskal : Graph.t -> bool array
(** Minimum spanning forest as an edge-id bit set.  Ties broken by edge id,
    matching the paper's lexicographic tie-breaking convention. *)

val weight : Graph.t -> int
(** Weight of a minimum spanning forest. *)

val is_spanning_tree : Graph.t -> bool array -> bool
(** Is the edge set a spanning tree of a connected graph? *)
