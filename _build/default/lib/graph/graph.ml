type edge = { u : int; v : int; w : int; id : int }

type t = {
  n : int;
  edges : edge array;
  adj : (int * int * int) array array;
}

let make ~n edge_triples =
  if n <= 0 then invalid_arg "Graph.make: n must be positive";
  let seen = Hashtbl.create (List.length edge_triples) in
  let check (u, v, w) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Graph.make: endpoint out of range";
    if u = v then invalid_arg "Graph.make: self-loop";
    if w <= 0 then invalid_arg "Graph.make: non-positive weight";
    let key = min u v, max u v in
    if Hashtbl.mem seen key then invalid_arg "Graph.make: duplicate edge";
    Hashtbl.add seen key ()
  in
  List.iter check edge_triples;
  let edges =
    Array.of_list
      (List.mapi (fun id (u, v, w) -> { u; v; w; id }) edge_triples)
  in
  let deg = Array.make n 0 in
  Array.iter
    (fun e ->
      deg.(e.u) <- deg.(e.u) + 1;
      deg.(e.v) <- deg.(e.v) + 1)
    edges;
  let adj = Array.init n (fun v -> Array.make deg.(v) (0, 0, 0)) in
  let fill = Array.make n 0 in
  Array.iter
    (fun e ->
      adj.(e.u).(fill.(e.u)) <- (e.v, e.w, e.id);
      fill.(e.u) <- fill.(e.u) + 1;
      adj.(e.v).(fill.(e.v)) <- (e.u, e.w, e.id);
      fill.(e.v) <- fill.(e.v) + 1)
    edges;
  { n; edges; adj }

let unweighted ~n pairs = make ~n (List.map (fun (u, v) -> u, v, 1) pairs)

let n g = g.n
let m g = Array.length g.edges
let edges g = g.edges
let edge g id = g.edges.(id)
let adj g v = g.adj.(v)
let degree g v = Array.length g.adj.(v)

let max_degree g =
  let d = ref 0 in
  for v = 0 to g.n - 1 do
    d := max !d (degree g v)
  done;
  !d

let total_weight g = Array.fold_left (fun acc e -> acc + e.w) 0 g.edges

let max_weight g = Array.fold_left (fun acc e -> max acc e.w) 0 g.edges

let endpoints g id =
  let e = g.edges.(id) in
  e.u, e.v

let other_endpoint g ~eid v =
  let e = g.edges.(eid) in
  if e.u = v then e.v
  else begin
    assert (e.v = v);
    e.u
  end

let find_edge g u v =
  let best = ref None in
  Array.iter (fun (nb, _, id) -> if nb = v then best := Some id) g.adj.(u);
  !best

let connected_components g =
  let uf = Dsf_util.Union_find.create g.n in
  Array.iter (fun e -> ignore (Dsf_util.Union_find.union uf e.u e.v)) g.edges;
  Array.init g.n (fun v -> Dsf_util.Union_find.find uf v)

let is_connected g =
  let comp = connected_components g in
  Array.for_all (fun c -> c = comp.(0)) comp

let edge_set_weight g selected =
  let acc = ref 0 in
  Array.iter (fun e -> if selected.(e.id) then acc := !acc + e.w) g.edges;
  !acc

let edge_list_of_set g selected =
  Array.to_list g.edges |> List.filter (fun e -> selected.(e.id))

let subgraph_union_find g selected =
  let uf = Dsf_util.Union_find.create g.n in
  Array.iter
    (fun e -> if selected.(e.id) then ignore (Dsf_util.Union_find.union uf e.u e.v))
    g.edges;
  uf

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," g.n (m g);
  Array.iter
    (fun e -> Format.fprintf ppf "  %d -- %d  (w=%d, id=%d)@," e.u e.v e.w e.id)
    g.edges;
  Format.fprintf ppf "@]"
