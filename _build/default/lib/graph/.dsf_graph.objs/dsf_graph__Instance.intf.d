lib/graph/instance.mli: Graph
