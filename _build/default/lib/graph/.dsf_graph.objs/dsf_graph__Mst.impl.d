lib/graph/mst.ml: Array Dsf_util Graph
