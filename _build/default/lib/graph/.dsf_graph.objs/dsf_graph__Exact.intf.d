lib/graph/exact.mli: Graph Instance
