lib/graph/instance.ml: Array Dsf_util Graph Hashtbl List Option Stack
