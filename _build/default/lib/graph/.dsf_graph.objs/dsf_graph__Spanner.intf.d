lib/graph/spanner.mli:
