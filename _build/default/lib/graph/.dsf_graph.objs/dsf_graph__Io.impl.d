lib/graph/io.ml: Array Buffer Format Fun Graph Instance List Printf String
