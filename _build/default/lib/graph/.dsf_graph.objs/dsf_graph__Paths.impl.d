lib/graph/paths.ml: Array Dsf_util Graph List Queue
