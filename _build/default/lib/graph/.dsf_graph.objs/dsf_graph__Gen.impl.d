lib/graph/gen.ml: Array Dsf_util Graph Hashtbl List Queue
