lib/graph/dot.ml: Array Format Fun Graph Instance
