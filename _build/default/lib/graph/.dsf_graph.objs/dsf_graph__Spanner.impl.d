lib/graph/spanner.ml: Array Dsf_util List
