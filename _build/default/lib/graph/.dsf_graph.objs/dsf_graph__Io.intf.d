lib/graph/io.mli: Format Graph Instance Stdlib
