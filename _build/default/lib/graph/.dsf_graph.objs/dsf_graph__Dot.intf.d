lib/graph/dot.mli: Format Graph Instance
