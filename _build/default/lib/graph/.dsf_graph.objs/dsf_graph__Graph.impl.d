lib/graph/graph.ml: Array Dsf_util Format Hashtbl List
