lib/graph/graph.mli: Dsf_util Format
