lib/graph/exact.ml: Array Graph Instance List Paths
