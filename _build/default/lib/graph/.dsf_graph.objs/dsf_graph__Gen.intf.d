lib/graph/gen.mli: Dsf_util Graph
