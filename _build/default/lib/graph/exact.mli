(** Exact optima for small instances — the ground-truth oracle for the
    approximation-ratio experiments.

    The paper proves worst-case ratios (2, 2+ε, O(log n)); to measure the
    ratios our implementations actually achieve we need OPT.  Steiner Tree is
    solved with the Dreyfus-Wagner dynamic program (exponential in the number
    of terminals); Steiner Forest reduces to it by enumerating set partitions
    of the input components (the trees of an optimal forest partition the
    components) and summing per-block Steiner-tree optima. *)

val steiner_tree_weight : Graph.t -> int list -> int
(** [steiner_tree_weight g terminals]: weight of a minimum-weight connected
    subgraph spanning the terminals.  Exponential in
    [List.length terminals]; raises [Invalid_argument] beyond 16 terminals.
    Returns 0 for fewer than 2 terminals. *)

val steiner_forest_weight : Instance.ic -> int
(** Exact optimum of a DSF-IC instance.  Enumerates set partitions of the
    (non-singleton) input components; practical for k <= 6 and at most ~14
    terminals overall. *)

val partitions : 'a list -> 'a list list list
(** All set partitions of a list (Bell-number many) — exposed for tests. *)
