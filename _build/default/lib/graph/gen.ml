module Rng = Dsf_util.Rng

let path n =
  Graph.unweighted ~n (List.init (n - 1) (fun i -> i, i + 1))

let cycle n =
  assert (n >= 3);
  Graph.unweighted ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> i, i + 1))

let star n =
  assert (n >= 2);
  Graph.unweighted ~n (List.init (n - 1) (fun i -> 0, i + 1))

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.unweighted ~n !edges

let grid ~rows ~cols =
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.unweighted ~n:(rows * cols) !edges

let binary_tree n =
  assert (n >= 2);
  Graph.unweighted ~n (List.init (n - 1) (fun i -> (i + 1 - 1) / 2, i + 1))

let reweight rng ~max_w g =
  let triples =
    Array.to_list (Graph.edges g)
    |> List.map (fun (e : Graph.edge) -> e.u, e.v, Rng.int_in rng 1 max_w)
  in
  Graph.make ~n:(Graph.n g) triples

let random_connected rng ~n ~extra_edges ~max_w =
  assert (n >= 2);
  (* Random spanning tree by uniform attachment over a random node order. *)
  let order = Rng.permutation rng n in
  let edges = Hashtbl.create (n + extra_edges) in
  let add u v =
    let key = min u v, max u v in
    if u <> v && not (Hashtbl.mem edges key) then begin
      Hashtbl.add edges key ();
      true
    end
    else false
  in
  for i = 1 to n - 1 do
    let j = Rng.int rng i in
    ignore (add order.(i) order.(j))
  done;
  let added = ref 0 in
  let attempts = ref 0 in
  let max_attempts = 50 * (extra_edges + 1) in
  while !added < extra_edges && !attempts < max_attempts do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    if add u v then incr added
  done;
  let triples =
    Hashtbl.fold (fun (u, v) () acc -> (u, v, Rng.int_in rng 1 max_w) :: acc)
      edges []
  in
  Graph.make ~n triples

let clustered rng ~clusters ~cluster_size ~intra_extra ~bridges ~intra_w
    ~bridge_w =
  assert (clusters >= 1 && cluster_size >= 2);
  let n = clusters * cluster_size in
  let seen = Hashtbl.create (4 * n) in
  let edges = ref [] in
  let add u v w =
    let key = min u v, max u v in
    if u <> v && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      edges := (u, v, w) :: !edges;
      true
    end
    else false
  in
  for c = 0 to clusters - 1 do
    let base = c * cluster_size in
    (* Spanning tree inside the cluster. *)
    let order = Rng.permutation rng cluster_size in
    for i = 1 to cluster_size - 1 do
      let j = Rng.int rng i in
      ignore
        (add (base + order.(i)) (base + order.(j)) (Rng.int_in rng 1 intra_w))
    done;
    let added = ref 0 and attempts = ref 0 in
    while !added < intra_extra && !attempts < 50 * (intra_extra + 1) do
      incr attempts;
      let u = base + Rng.int rng cluster_size
      and v = base + Rng.int rng cluster_size in
      if add u v (Rng.int_in rng 1 intra_w) then incr added
    done;
    (* Bridges to the next cluster. *)
    if c + 1 < clusters then begin
      let next = (c + 1) * cluster_size in
      let added = ref 0 and attempts = ref 0 in
      while !added < bridges && !attempts < 50 * (bridges + 1) do
        incr attempts;
        let u = base + Rng.int rng cluster_size
        and v = next + Rng.int rng cluster_size in
        if add u v (Rng.int_in rng (max 1 (bridge_w / 2)) bridge_w) then
          incr added
      done;
      (* Guarantee connectivity even if the random bridges collided. *)
      if !added = 0 then ignore (add base next bridge_w)
    end
  done;
  Graph.make ~n !edges

let random_geometric rng ~n ~radius ~max_w =
  assert (n >= 2);
  let pts = Array.init n (fun _ -> Rng.float rng 1.0, Rng.float rng 1.0) in
  let dist i j =
    let xi, yi = pts.(i) and xj, yj = pts.(j) in
    sqrt (((xi -. xj) ** 2.) +. ((yi -. yj) ** 2.))
  in
  let scale = float_of_int max_w /. radius in
  let weight_of d = max 1 (int_of_float (d *. scale)) in
  let edges = Hashtbl.create (4 * n) in
  let add i j =
    let key = min i j, max i j in
    if i <> j && not (Hashtbl.mem edges key) then
      Hashtbl.add edges key (weight_of (dist i j))
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if dist i j <= radius then add i j
    done
  done;
  (* Stitch components together via nearest cross-component pairs. *)
  let uf = Dsf_util.Union_find.create n in
  Hashtbl.iter (fun (i, j) _ -> ignore (Dsf_util.Union_find.union uf i j)) edges;
  while Dsf_util.Union_find.n_sets uf > 1 do
    let best = ref None in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if not (Dsf_util.Union_find.same uf i j) then begin
          let d = dist i j in
          match !best with
          | Some (bd, _, _) when bd <= d -> ()
          | _ -> best := Some (d, i, j)
        end
      done
    done;
    match !best with
    | None -> assert false
    | Some (_, i, j) ->
        add i j;
        ignore (Dsf_util.Union_find.union uf i j)
  done;
  let triples = Hashtbl.fold (fun (u, v) w acc -> (u, v, w) :: acc) edges [] in
  Graph.make ~n triples

let lollipop ~clique ~tail =
  assert (clique >= 2);
  let n = clique + tail in
  let edges = ref [] in
  for u = 0 to clique - 1 do
    for v = u + 1 to clique - 1 do
      edges := (u, v) :: !edges
    done
  done;
  for i = 0 to tail - 1 do
    let prev = if i = 0 then clique - 1 else clique + i - 1 in
    edges := (prev, clique + i) :: !edges
  done;
  Graph.unweighted ~n !edges

let broom ~tail ~arm_lengths =
  let hub = 0 in
  let edges = ref [] in
  let next = ref 1 in
  (* Terminal-free tail. *)
  let prev = ref hub in
  for _ = 1 to tail do
    edges := (!prev, !next, 1) :: !edges;
    prev := !next;
    incr next
  done;
  let terminal_pairs =
    List.map
      (fun l ->
        assert (l >= 1);
        let endpoint () =
          let p = ref hub in
          for _ = 1 to l do
            edges := (!p, !next, 1) :: !edges;
            p := !next;
            incr next
          done;
          !p
        in
        let a = endpoint () in
        let b = endpoint () in
        a, b)
      arm_lengths
  in
  let n = !next in
  let labels = Array.make n (-1) in
  List.iteri
    (fun i (a, b) ->
      labels.(a) <- i;
      labels.(b) <- i)
    terminal_pairs;
  Graph.make ~n (List.rev !edges), labels

let random_labels rng ~n ~t ~k =
  assert (t <= n);
  assert (k >= 1 && t >= 2 * k);
  let terminals = Rng.sample_without_replacement rng t n in
  let labels = Array.make n (-1) in
  (* Give each component two terminals first, then distribute the rest. *)
  Array.iteri
    (fun i v ->
      let lbl = if i < 2 * k then i mod k else Rng.int rng k in
      labels.(v) <- lbl)
    terminals;
  labels

let spread_labels rng g ~t ~k =
  let n = Graph.n g in
  assert (t <= n);
  assert (k >= 1 && t >= 2 * k);
  (* Grow k BFS regions from random seeds; each region hosts one component. *)
  let seeds = Rng.sample_without_replacement rng k n in
  let owner = Array.make n (-1) in
  let q = Queue.create () in
  Array.iteri
    (fun i s ->
      owner.(s) <- i;
      Queue.add s q)
    seeds;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun (nb, _, _) ->
        if owner.(nb) = -1 then begin
          owner.(nb) <- owner.(v);
          Queue.add nb q
        end)
      (Graph.adj g v)
  done;
  let regions = Array.make k [] in
  for v = 0 to n - 1 do
    if owner.(v) >= 0 then regions.(owner.(v)) <- v :: regions.(owner.(v))
  done;
  let labels = Array.make n (-1) in
  let per = max 2 (t / k) in
  let placed = ref 0 in
  Array.iteri
    (fun i members ->
      let arr = Array.of_list members in
      Rng.shuffle rng arr;
      let want = min (Array.length arr) (if i = k - 1 then t - !placed else per) in
      for j = 0 to want - 1 do
        labels.(arr.(j)) <- i;
        incr placed
      done)
    regions;
  (* Regions can be tiny; ensure every component has >= 2 terminals by
     borrowing unlabelled nodes anywhere in the graph. *)
  let count = Array.make k 0 in
  Array.iter (fun l -> if l >= 0 then count.(l) <- count.(l) + 1) labels;
  let free = ref [] in
  for v = n - 1 downto 0 do
    if labels.(v) = -1 then free := v :: !free
  done;
  for lbl = 0 to k - 1 do
    while count.(lbl) < 2 do
      match !free with
      | [] -> invalid_arg "Gen.spread_labels: not enough nodes"
      | v :: rest ->
          free := rest;
          labels.(v) <- lbl;
          count.(lbl) <- count.(lbl) + 1
    done
  done;
  labels
