(** Leader election by max-id flooding — the step the paper's appendix
    implicitly performs whenever it roots a BFS tree "at the node with the
    largest identifier": every node floods the largest id it has heard, and
    after D rounds all agree.  O(D) simulated rounds, O(log n) bits per
    message. *)

type result = {
  leader : int;
  rounds : int;
  messages : int;
}

val elect : Dsf_graph.Graph.t -> result
(** Requires a connected graph; the elected leader is the maximum node id
    (= {!Bfs.max_id_root}), and every node knows it on termination. *)
