(** Cole-Vishkin deterministic coin tossing ([6] in the paper): 3-coloring
    a rooted forest in O(log* n) rounds, and the maximal-matching
    construction on top of it.

    This is the symmetry-breaking primitive behind the paper's
    deterministic matching steps (Step 3bii of the sublinear algorithm,
    Lemma F.4, and the cluster growing of Lemma F.7): small moats/clusters
    each propose one edge, the proposal graph is a pseudo-forest, a CV
    coloring makes it 3-colored in O(log* n) rounds, and iterating over the
    three color classes yields a maximal matching.

    Both routines run as real simulated protocols over the tree edges
    (parent pointers into the communication graph). *)

val three_color :
  Dsf_graph.Graph.t -> parent:int array -> int array * Sim.stats
(** [three_color g ~parent] 3-colors the rooted forest given by [parent]
    ([-1] marks roots; every (v, parent v) pair must be an edge of [g]).
    Returns colors in {0, 1, 2} with adjacent tree nodes colored
    differently.  O(log* n + 1) simulated rounds. *)

val maximal_matching :
  Dsf_graph.Graph.t -> parent:int array -> (int * int) list * Sim.stats
(** A maximal matching of the rooted forest's (child, parent) edges: built
    from the 3-coloring by letting each color class propose in turn.
    Returns matched (child, parent) pairs; no node appears twice, and no
    tree edge has both endpoints unmatched. *)
