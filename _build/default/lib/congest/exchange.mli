(** One-round full-neighborhood exchange: every node sends one fixed-size
    message to each neighbor.  This is the "u sends v_u to each neighbor"
    step the deterministic algorithms run once per merge phase (Step 3b of
    the Appendix E.1 algorithm) to let boundary edges discover the two
    regions they straddle. *)

val all_neighbors :
  Dsf_graph.Graph.t -> payload_bits:int -> Sim.stats
(** Simulates the exchange; [payload_bits] is the per-message size (for a
    region announcement: owner id + offset + activity bit). *)
