(** Synchronous CONGEST(log n) round simulator (the model of Section 2).

    A protocol is a pair of callbacks: [init] builds each node's local state
    from its local {!view} (its id, its incident edges, and [n] — everything
    the model grants initially), and [step] consumes the inbox delivered at
    the start of a round and produces messages for neighbors.  The simulator
    executes rounds until the protocol is quiescent (every node reports done
    and no message is in flight) or [max_rounds] is reached.

    Message sizes are accounted in bits via [msg_bits]; the simulator records
    the maximum bits sent over any (edge, direction) in any single round so
    experiments can verify the O(log n) congestion discipline.  Sending two
    messages to the same neighbor in one round is allowed but both count
    against that edge-round's bit total.

    Composition convention: the paper's algorithms are towers of subroutines,
    each with its own round bound (Bellman-Ford phases, pipelined upcasts,
    BFS-tree broadcasts).  We simulate each subroutine for real and add up
    actual rounds in a {!Ledger}; steps the paper itself performs as "locally
    compute from globally known data" cost zero rounds, and the few steps the
    paper delegates to a cited black box are charged their stated bound as a
    named ledger entry (see DESIGN.md). *)

type view = {
  node : int;
  n : int;  (** number of nodes in the network *)
  nbrs : (int * int * int) array;
      (** (neighbor id, edge weight, edge id), as in {!Dsf_graph.Graph.adj} *)
}

type ('s, 'm) protocol = {
  init : view -> 's;
  step : view -> round:int -> 's -> inbox:(int * 'm) list -> 's * (int * 'm) list;
      (** [inbox] is the list of (sender, message) delivered this round;
          returns the new state and the outbox of (neighbor, message). *)
  is_done : 's -> bool;
  msg_bits : 'm -> int;
}

type stats = {
  rounds : int;  (** rounds actually executed *)
  messages : int;
  total_bits : int;
  max_edge_round_bits : int;
      (** max bits over a single (edge, direction) in one round *)
  budget_violations : int;
      (** edge-rounds exceeding {!Dsf_util.Bitsize.congest_budget} *)
}

exception Round_limit of int

val set_observer : (src:int -> dst:int -> bits:int -> unit) option -> unit
(** Install a global message observer: called for every message any
    simulation sends until cleared.  Pure measurement instrumentation
    (e.g. counting bits across the Alice/Bob cut in the Section 3
    lower-bound experiments); it never affects execution. *)

val with_observer :
  (src:int -> dst:int -> bits:int -> unit) -> (unit -> 'a) -> 'a
(** Scoped observer; nests by chaining — an enclosing observer keeps
    seeing the traffic — and restores the previous observer on exit. *)

val run :
  ?max_rounds:int ->
  ?halt:('s array -> bool) ->
  Dsf_graph.Graph.t ->
  ('s, 'm) protocol ->
  's array * stats
(** Runs the protocol to quiescence.  Default [max_rounds] is
    [10_000 + 200 * n]; raises {!Round_limit} if exceeded (a protocol bug).
    Messages produced in round [r] are delivered in round [r + 1].

    [halt] is an omniscient early-termination predicate evaluated on the
    state vector after every round; when it fires the run stops immediately.
    It models a coordinator aborting a subroutine ("the root detects X and
    broadcasts stop"): the caller is responsible for charging the O(D)
    stop-broadcast to its round ledger. *)

val pp_stats : Format.formatter -> stats -> unit
