type kind = Simulated | Charged

type t = { mutable entries : (kind * string * int) list (* reversed *) }

let create () = { entries = [] }

let add t kind label rounds =
  assert (rounds >= 0);
  t.entries <- (kind, label, rounds) :: t.entries

let sum_kind t k =
  List.fold_left
    (fun acc (kind, _, r) -> if kind = k then acc + r else acc)
    0 t.entries

let simulated t = sum_kind t Simulated
let charged t = sum_kind t Charged
let total t = simulated t + charged t

let entries t = List.rev t.entries

let merge_into ~dst t =
  List.iter (fun (k, l, r) -> add dst k l r) (entries t)

let pp ppf t =
  Format.fprintf ppf "@[<v>total=%d (simulated=%d charged=%d)@," (total t)
    (simulated t) (charged t);
  List.iter
    (fun (k, l, r) ->
      Format.fprintf ppf "  %-9s %-40s %d@,"
        (match k with Simulated -> "simulated" | Charged -> "charged")
        l r)
    (entries t);
  Format.fprintf ppf "@]"
