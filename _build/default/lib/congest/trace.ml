type t = {
  mutable messages : int;
  mutable bits : int;
  per_edge : (int * int, int) Hashtbl.t;
}

let record f =
  let t = { messages = 0; bits = 0; per_edge = Hashtbl.create 64 } in
  let observe ~src ~dst ~bits =
    t.messages <- t.messages + 1;
    t.bits <- t.bits + bits;
    let key = src, dst in
    Hashtbl.replace t.per_edge key
      (bits + Option.value ~default:0 (Hashtbl.find_opt t.per_edge key))
  in
  let result = Sim.with_observer observe f in
  result, t

let messages t = t.messages
let bits t = t.bits
let edge_bits t = t.per_edge

let hottest_edges t n =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.per_edge []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < n)

let bits_between t ~src ~dst =
  Option.value ~default:0 (Hashtbl.find_opt t.per_edge (src, dst))

let pp_summary ppf t =
  Format.fprintf ppf "messages=%d bits=%d busiest:" t.messages t.bits;
  List.iter
    (fun ((s, d), b) -> Format.fprintf ppf " %d->%d:%d" s d b)
    (hottest_edges t 3)
