lib/congest/exchange.ml: Array Dsf_graph Fun List Sim
