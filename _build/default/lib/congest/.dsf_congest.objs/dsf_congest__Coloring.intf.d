lib/congest/coloring.mli: Dsf_graph Sim
