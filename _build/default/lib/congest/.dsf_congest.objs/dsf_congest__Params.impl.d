lib/congest/params.ml: Bellman_ford Bfs Dsf_graph Dsf_util Sim Tree_ops
