lib/congest/pipeline.mli: Bfs Dsf_graph Sim
