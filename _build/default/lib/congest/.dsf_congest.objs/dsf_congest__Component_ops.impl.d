lib/congest/component_ops.ml: Array Dsf_graph Dsf_util List Sim
