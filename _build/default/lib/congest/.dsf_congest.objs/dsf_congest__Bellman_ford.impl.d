lib/congest/bellman_ford.ml: Array Dsf_graph Dsf_util Hashtbl List Sim
