lib/congest/bellman_ford.mli: Dsf_graph Sim
