lib/congest/tree_ops.mli: Bfs Dsf_graph Sim
