lib/congest/sim.ml: Array Dsf_graph Dsf_util Format Fun Hashtbl List Option
