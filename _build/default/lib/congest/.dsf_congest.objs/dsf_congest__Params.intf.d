lib/congest/params.mli: Dsf_graph
