lib/congest/leader.ml: Array Dsf_graph Dsf_util List Sim
