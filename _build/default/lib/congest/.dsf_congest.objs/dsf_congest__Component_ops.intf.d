lib/congest/component_ops.mli: Dsf_graph Sim
