lib/congest/bfs.mli: Dsf_graph Sim
