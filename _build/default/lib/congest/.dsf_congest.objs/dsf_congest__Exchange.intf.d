lib/congest/exchange.mli: Dsf_graph Sim
