lib/congest/bfs.ml: Array Dsf_graph Dsf_util List Sim
