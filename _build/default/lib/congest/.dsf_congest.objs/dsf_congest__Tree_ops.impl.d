lib/congest/tree_ops.ml: Array Bfs Dsf_graph Dsf_util Hashtbl List Option Sim
