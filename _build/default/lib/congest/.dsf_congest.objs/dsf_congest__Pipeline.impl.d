lib/congest/pipeline.ml: Array Bfs Dsf_util Hashtbl List Option Queue Sim
