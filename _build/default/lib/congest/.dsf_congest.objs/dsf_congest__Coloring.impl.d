lib/congest/coloring.ml: Array Dsf_graph Dsf_util List Sim
