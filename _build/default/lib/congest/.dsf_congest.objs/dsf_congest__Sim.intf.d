lib/congest/sim.mli: Dsf_graph Format
