lib/congest/leader.mli: Dsf_graph
