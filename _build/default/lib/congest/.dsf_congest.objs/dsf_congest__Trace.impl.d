lib/congest/trace.ml: Format Hashtbl List Option Sim
