lib/congest/trace.mli: Format Hashtbl
