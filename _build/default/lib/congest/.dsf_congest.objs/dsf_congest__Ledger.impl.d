lib/congest/ledger.ml: Format List
