module Graph = Dsf_graph.Graph

type view = {
  node : int;
  n : int;
  nbrs : (int * int * int) array;
}

type ('s, 'm) protocol = {
  init : view -> 's;
  step : view -> round:int -> 's -> inbox:(int * 'm) list -> 's * (int * 'm) list;
  is_done : 's -> bool;
  msg_bits : 'm -> int;
}

type stats = {
  rounds : int;
  messages : int;
  total_bits : int;
  max_edge_round_bits : int;
  budget_violations : int;
}

exception Round_limit of int

let observer : (src:int -> dst:int -> bits:int -> unit) option ref = ref None

let set_observer f = observer := f

let with_observer f body =
  let prev = !observer in
  let chained ~src ~dst ~bits =
    (match prev with Some g -> g ~src ~dst ~bits | None -> ());
    f ~src ~dst ~bits
  in
  observer := Some chained;
  Fun.protect ~finally:(fun () -> observer := prev) body

let run ?max_rounds ?halt g proto =
  let n = Graph.n g in
  let max_rounds =
    match max_rounds with Some r -> r | None -> 10_000 + (200 * n)
  in
  let views =
    Array.init n (fun node -> { node; n; nbrs = Graph.adj g node })
  in
  let states = Array.map proto.init views in
  let inboxes : (int * 'm) list array = Array.make n [] in
  let next_inboxes : (int * 'm) list array = Array.make n [] in
  let budget = Dsf_util.Bitsize.congest_budget ~n in
  let messages = ref 0 in
  let total_bits = ref 0 in
  let max_edge_round_bits = ref 0 in
  let budget_violations = ref 0 in
  let round = ref 0 in
  let quiescent = ref false in
  while not !quiescent do
    if !round >= max_rounds then raise (Round_limit !round);
    (* bits sent this round per (sender, neighbor-slot); keyed by sender and
       destination since each unordered edge has two directions. *)
    let edge_bits = Hashtbl.create 64 in
    let sent_any = ref false in
    for v = 0 to n - 1 do
      let inbox = List.rev inboxes.(v) in
      inboxes.(v) <- [];
      let state', outbox = proto.step views.(v) ~round:!round states.(v) ~inbox in
      states.(v) <- state';
      List.iter
        (fun (dst, msg) ->
          if dst < 0 || dst >= n then
            invalid_arg "Sim.run: message to nonexistent node";
          (if not (Array.exists (fun (nb, _, _) -> nb = dst) views.(v).nbrs)
           then invalid_arg "Sim.run: message to non-neighbor");
          sent_any := true;
          incr messages;
          let bits = proto.msg_bits msg in
          total_bits := !total_bits + bits;
          (match !observer with
          | Some f -> f ~src:v ~dst ~bits
          | None -> ());
          let key = (v * n) + dst in
          let prev = Option.value ~default:0 (Hashtbl.find_opt edge_bits key) in
          let now = prev + bits in
          Hashtbl.replace edge_bits key now;
          next_inboxes.(dst) <- (v, msg) :: next_inboxes.(dst))
        outbox
    done;
    Hashtbl.iter
      (fun _ bits ->
        if bits > !max_edge_round_bits then max_edge_round_bits := bits;
        if bits > budget then incr budget_violations)
      edge_bits;
    for v = 0 to n - 1 do
      inboxes.(v) <- next_inboxes.(v);
      next_inboxes.(v) <- []
    done;
    incr round;
    let all_done = Array.for_all proto.is_done states in
    let inflight = Array.exists (fun l -> l <> []) inboxes in
    let halted = match halt with Some f -> f states | None -> false in
    quiescent := halted || (all_done && (not inflight) && not !sent_any)
  done;
  ( states,
    {
      rounds = !round;
      messages = !messages;
      total_bits = !total_bits;
      max_edge_round_bits = !max_edge_round_bits;
      budget_violations = !budget_violations;
    } )

let pp_stats ppf s =
  Format.fprintf ppf
    "rounds=%d messages=%d bits=%d max-edge-round-bits=%d violations=%d"
    s.rounds s.messages s.total_bits s.max_edge_round_bits s.budget_violations
