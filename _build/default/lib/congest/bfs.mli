(** Distributed BFS-tree construction (flood from the root), the basic
    building block used by every algorithm in the paper for global
    coordination.  Takes O(D) simulated rounds. *)

type tree = {
  root : int;
  parent : int array;  (** parent node id; [-1] for the root *)
  depth : int array;
  children : int list array;
  height : int;  (** max depth = eccentricity of the root *)
}

val build : Dsf_graph.Graph.t -> root:int -> tree * Sim.stats
(** Raises [Invalid_argument] if the graph is disconnected. *)

val max_id_root : Dsf_graph.Graph.t -> int
(** The conventional root choice of the paper's appendix: the node with the
    largest identifier. *)
