lib/lower_bound/gadgets.mli: Dsf_graph Dsf_util
