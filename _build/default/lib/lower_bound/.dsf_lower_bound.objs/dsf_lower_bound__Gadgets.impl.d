lib/lower_bound/gadgets.ml: Array Dsf_congest Dsf_graph Dsf_util Fun List
