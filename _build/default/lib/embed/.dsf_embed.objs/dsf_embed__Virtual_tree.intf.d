lib/embed/virtual_tree.mli: Dsf_graph Dsf_util Le_list
