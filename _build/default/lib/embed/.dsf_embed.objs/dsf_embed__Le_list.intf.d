lib/embed/le_list.mli: Dsf_congest Dsf_graph Dsf_util
