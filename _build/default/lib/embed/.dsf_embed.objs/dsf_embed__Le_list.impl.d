lib/embed/le_list.ml: Array Dsf_congest Dsf_graph Dsf_util Fun Hashtbl List Queue
