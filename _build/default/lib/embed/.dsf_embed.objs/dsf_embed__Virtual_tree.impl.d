lib/embed/virtual_tree.ml: Array Dsf_congest Dsf_graph Dsf_util Fun Hashtbl Le_list List
