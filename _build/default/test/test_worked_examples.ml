(* Worked examples: tiny instances whose entire moat-growing execution is
   derived by hand from Algorithm 1's definitions, pinned merge by merge.
   These are the strongest regression tests in the repository — any change
   to event ordering, growth accounting, activity rules or tie-breaking
   shows up here with an exact diff. *)

open Dsf_graph
open Dsf_core

let check = Alcotest.check
let frac = Alcotest.testable Frac.pp Frac.equal
let half n = Frac.make n 1

(* ------------------------------------------------------------------ (1)

   Path 0-1-2-3, unit weights, one component {0, 3}.
   Both moats grow at rate 1; they meet when rad0 + rad3 = wd = 3, i.e.
   after growth mu = 3/2 each.  One merge, dual = 2 * 3/2 = 3 = OPT. *)

let test_single_pair_path () =
  let g = Gen.path 4 in
  let inst = Instance.make_ic g [| 0; -1; -1; 0 |] in
  let res = Moat.run inst in
  check Alcotest.int "one merge" 1 (List.length res.Moat.merges);
  let m = List.hd res.Moat.merges in
  check frac "mu = 3/2" (half 3) m.Moat.mu;
  check Alcotest.int "4 active moat-sides counted as 2" 2 m.Moat.active_moats;
  check frac "dual = 3" (Frac.of_int 3) res.Moat.dual;
  check Alcotest.int "weight = 3" 3 res.Moat.weight;
  check Alcotest.int "one phase" 1 res.Moat.phase_count;
  (* Final radii: both terminals grew to exactly 3/2. *)
  List.iter
    (fun (v, rad) ->
      if v = 0 || v = 3 then check frac (Printf.sprintf "rad %d" v) (half 3) rad)
    res.Moat.final_rad

(* ------------------------------------------------------------------ (2)

   Triangle 0-1-2, unit weights, all three in one component.
   All pairs have slack 1 at rate 2: first event mu = 1/2, tie broken to
   the pair (0, 1).  After growing by 1/2 everywhere, pair (0, 2) has
   slack 1 - 1/2 - 1/2 = 0: second merge at mu = 0.
   dual = 3 * 1/2 + 2 * 0 = 3/2; output = two unit edges, weight 2 = OPT. *)

let test_triangle () =
  let g = Gen.cycle 3 in
  let inst = Instance.make_ic g [| 0; 0; 0 |] in
  let res = Moat.run inst in
  check Alcotest.int "two merges" 2 (List.length res.Moat.merges);
  (match res.Moat.merges with
  | [ m1; m2 ] ->
      check frac "mu1 = 1/2" (half 1) m1.Moat.mu;
      check Alcotest.(pair int int) "pair (0,1)" (0, 1) m1.Moat.pair;
      check Alcotest.int "3 active moats" 3 m1.Moat.active_moats;
      check frac "mu2 = 0" Frac.zero m2.Moat.mu;
      check Alcotest.(pair int int) "pair (0,2)" (0, 2) m2.Moat.pair;
      check Alcotest.int "2 active moats" 2 m2.Moat.active_moats
  | _ -> Alcotest.fail "expected exactly two merges");
  check frac "dual = 3/2" (half 3) res.Moat.dual;
  check Alcotest.int "weight = 2" 2 res.Moat.weight

(* ------------------------------------------------------------------ (3)

   Path 0-1-2-3-4-5, unit weights, components A = {0,1} and B = {2,5}.

   merge 1: pair (0,1), slack 1 at rate 2 -> mu = 1/2; A becomes lone ->
            moat {0,1} inactive (activity change: phase 1 ends).
            act_1 = 4, contribution 4 * 1/2 = 2.
   merge 2: active {2} meets the frozen moat at wd(1,2) = 1 with
            rad1 + rad2 = 1 -> slack 0 at rate 1 -> mu = 0; the joint moat
            carries both labels and {5} still holds B -> it re-activates
            (phase 2 ends).  act_2 = 2, contribution 0.
   merge 3: {0,1,2} and {5}, closest pair (2,5): wd = 3, slack
            3 - 1/2 - 1/2 = 2 at rate 2 -> mu = 1.  act_3 = 2,
            contribution 2.
   dual = 4.  The selected forest is 0-1, 1-2, 2-3-4-5; edge 1-2 only
   connected the merged labels and is pruned: weight 4 = OPT. *)

let test_active_inactive_path () =
  let g = Gen.path 6 in
  let inst = Instance.make_ic g [| 0; 0; 1; -1; -1; 1 |] in
  let res = Moat.run inst in
  check Alcotest.int "three merges" 3 (List.length res.Moat.merges);
  (match res.Moat.merges with
  | [ m1; m2; m3 ] ->
      check frac "mu1 = 1/2" (half 1) m1.Moat.mu;
      check Alcotest.(pair int int) "merge 1 = (0,1)" (0, 1) m1.Moat.pair;
      check Alcotest.int "act1 = 4" 4 m1.Moat.active_moats;
      Alcotest.(check bool) "phase change after merge 1" true m1.Moat.activity_changed;
      check frac "mu2 = 0" Frac.zero m2.Moat.mu;
      check Alcotest.int "act2 = 2" 2 m2.Moat.active_moats;
      Alcotest.(check bool) "phase change after merge 2" true m2.Moat.activity_changed;
      check frac "mu3 = 1" Frac.one m3.Moat.mu;
      check Alcotest.(pair int int) "merge 3 = (2,5)" (2, 5) m3.Moat.pair;
      check Alcotest.int "act3 = 2" 2 m3.Moat.active_moats
  | _ -> Alcotest.fail "expected exactly three merges");
  check frac "dual = 4" (Frac.of_int 4) res.Moat.dual;
  check Alcotest.int "pruned weight = 4" 4 res.Moat.weight;
  check Alcotest.int "three phases" 3 res.Moat.phase_count;
  (* The distributed emulation replays the exact same schedule. *)
  let det = Det_dsf.run inst in
  check frac "det dual matches" res.Moat.dual det.Det_dsf.dual;
  check Alcotest.int "det weight matches" res.Moat.weight det.Det_dsf.weight;
  (match det.Det_dsf.merges with
  | [ d1; d2; d3 ] ->
      check frac "det mu1 increment" (half 1) d1.Det_dsf.mu_increment;
      check frac "det mu2 increment" Frac.zero d2.Det_dsf.mu_increment;
      check frac "det mu3 increment" Frac.one d3.Det_dsf.mu_increment
  | _ -> Alcotest.fail "det: expected three merges")

(* ------------------------------------------------------------------ (4)

   Quartered radii: the denominator really compounds past 1/2.

   Hub construction: terminals a=0, b=1 (component A) both adjacent to a
   middle node 2 with weights 1 and 2; terminal c=3 (with partner d=4,
   component B) adjacent to 2 with weight 4, d hanging a weight-9 edge
   away from c, plus a safety chain making the graph connected only
   through these edges.

     wd(a,b) = 3 -> A merges at mu = 3/2 and goes inactive with
     rad_a = rad_b = 3/2 (half-integral).
     c keeps growing; it meets the frozen moat when
     rad_c = wd(b,2) + ... the closest frozen terminal is a via 2:
     wd(a,c) = 5, so slack = 5 - 3/2 - rad_c = 0 at rad_c = 7/2 (rate 1).
     The reactivated moat {a,b,c} and the lone d (rad 7/2 too) then close
     wd(c,d) = 9 at rate 2: slack = 9 - 7/2 - 7/2 = 2 -> mu = 1, meeting
     at rad_c = 9/2.
     Dual = 4*(3/2) + 2*(2) + 2*(1) = 6 + 4 + 2... act_2 = 2 ({c},{d})
     with mu_2 = 2: contribution 4; total dual = 6 + 4 + 2 = 12.
     OPT = (a-2-b: 3) + (c-d: 9) = 12; pruned weight = 12 (edge 2-c
     pruned away). *)

let test_quartering_radii () =
  let g =
    Graph.make ~n:5 [ 0, 2, 1; 1, 2, 2; 2, 3, 4; 3, 4, 9 ]
  in
  let inst = Instance.make_ic g [| 0; 0; -1; 1; 1 |] in
  let res = Moat.run inst in
  (match res.Moat.merges with
  | [ m1; m2; m3 ] ->
      check frac "mu1 = 3/2" (half 3) m1.Moat.mu;
      check Alcotest.(pair int int) "A merges first" (0, 1) m1.Moat.pair;
      check frac "mu2 = 2" (Frac.of_int 2) m2.Moat.mu;
      check frac "mu3 = 1" Frac.one m3.Moat.mu;
      check Alcotest.(pair int int) "B closes last" (3, 4) m3.Moat.pair
  | ms ->
      Alcotest.failf "expected three merges, got %d" (List.length ms));
  check frac "dual = 12" (Frac.of_int 12) res.Moat.dual;
  check Alcotest.int "weight = 12 = OPT" 12 res.Moat.weight

let suites =
  [
    ( "worked_examples",
      [
        Alcotest.test_case "single pair on a path" `Quick test_single_pair_path;
        Alcotest.test_case "triangle tie-breaking" `Quick test_triangle;
        Alcotest.test_case "active-inactive schedule" `Quick test_active_inactive_path;
        Alcotest.test_case "compounding radii" `Quick test_quartering_radii;
      ] );
  ]
