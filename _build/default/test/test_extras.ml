(* Tests for the supporting modules added around the core reproduction:
   sequential upcast (ablation baseline), communication traces, DOT export,
   extra generators (clustered, broom), the unified Solver front end, and
   the st-path hard family. *)

open Dsf_graph

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let rng seed = Dsf_util.Rng.create seed

(* ------------------------------------------------------ upcast_sequential *)

let test_seq_upcast_delivers () =
  let g = Gen.grid ~rows:3 ~cols:3 in
  let tree, _ = Dsf_congest.Bfs.build g ~root:0 in
  let items v = [ v; v + 10 ] in
  let got, _ =
    Dsf_congest.Tree_ops.upcast_sequential g ~tree ~items ~bits:(fun _ -> 8)
  in
  check Alcotest.int "all items" 18 (List.length got);
  List.iter
    (fun v -> Alcotest.(check bool) "contains" true (List.mem v got))
    (List.init 9 Fun.id)

let test_seq_upcast_no_pipelining () =
  let depth = 20 and nitems = 10 in
  let g = Gen.path (depth + 1) in
  let tree, _ = Dsf_congest.Bfs.build g ~root:0 in
  let items v = if v = depth then List.init nitems Fun.id else [] in
  let _, seq =
    Dsf_congest.Tree_ops.upcast_sequential g ~tree ~items ~bits:(fun _ -> 8)
  in
  let _, pipe = Dsf_congest.Tree_ops.upcast g ~tree ~items ~bits:(fun _ -> 8) in
  Alcotest.(check bool) "sequential ~ depth*items" true
    (seq.Dsf_congest.Sim.rounds >= depth * (nitems - 1));
  Alcotest.(check bool) "pipelined ~ depth+items" true
    (pipe.Dsf_congest.Sim.rounds <= depth + nitems + 4)

(* ------------------------------------------------------------------ Trace *)

let test_trace_counts () =
  let g = Gen.path 6 in
  let (_, stats), trace =
    Dsf_congest.Trace.record (fun () -> Dsf_congest.Bfs.build g ~root:0)
  in
  check Alcotest.int "messages match sim stats" stats.Dsf_congest.Sim.messages
    (Dsf_congest.Trace.messages trace);
  check Alcotest.int "bits match sim stats" stats.Dsf_congest.Sim.total_bits
    (Dsf_congest.Trace.bits trace)

let test_trace_per_edge () =
  let g = Gen.path 3 in
  let _, trace =
    Dsf_congest.Trace.record (fun () ->
        Dsf_congest.Bellman_ford.sssp g ~src:0)
  in
  Alcotest.(check bool) "edge 0->1 carried bits" true
    (Dsf_congest.Trace.bits_between trace ~src:0 ~dst:1 > 0);
  let hottest = Dsf_congest.Trace.hottest_edges trace 2 in
  check Alcotest.int "top-2 requested" 2 (List.length hottest);
  (match hottest with
  | (_, a) :: (_, b) :: _ -> Alcotest.(check bool) "descending" true (a >= b)
  | _ -> Alcotest.fail "expected 2 entries")

let test_trace_nesting_chains () =
  let g = Gen.path 4 in
  let (_, inner), outer =
    Dsf_congest.Trace.record (fun () ->
        Dsf_congest.Trace.record (fun () -> Dsf_congest.Bfs.build g ~root:0))
  in
  check Alcotest.int "outer sees the same traffic"
    (Dsf_congest.Trace.bits inner)
    (Dsf_congest.Trace.bits outer)

(* -------------------------------------------------------------------- Dot *)

let test_dot_graph_output () =
  let g = Graph.make ~n:3 [ 0, 1, 5; 1, 2, 7 ] in
  let buf = Buffer.create 128 in
  let ppf = Format.formatter_of_buffer buf in
  Dot.graph ppf g;
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "graph header" true (contains "graph G {");
  Alcotest.(check bool) "edge 0--1" true (contains "0 -- 1");
  Alcotest.(check bool) "weight label" true (contains "label=\"5\"")

let test_dot_instance_output () =
  let g = Gen.path 3 in
  let inst = Instance.make_ic g [| 0; -1; 0 |] in
  let solution = Array.make (Graph.m g) true in
  let buf = Buffer.create 128 in
  let ppf = Format.formatter_of_buffer buf in
  Dot.instance ~solution ppf inst;
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "terminal box" true (contains "shape=box");
  Alcotest.(check bool) "solution edge bold" true (contains "penwidth=3")

(* --------------------------------------------------------- new generators *)

let test_gen_clustered () =
  let g =
    Gen.clustered (rng 5) ~clusters:4 ~cluster_size:10 ~intra_extra:5
      ~bridges:2 ~intra_w:3 ~bridge_w:30
  in
  check Alcotest.int "n" 40 (Graph.n g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  (* Bridges are heavier than intra-cluster edges. *)
  let cluster_of v = v / 10 in
  Array.iter
    (fun (e : Graph.edge) ->
      if cluster_of e.u = cluster_of e.v then
        Alcotest.(check bool) "intra light" true (e.w <= 3)
      else Alcotest.(check bool) "bridge heavy" true (e.w >= 15))
    (Graph.edges g)

let test_gen_broom () =
  let g, labels = Gen.broom ~tail:10 ~arm_lengths:[ 1; 2; 3 ] in
  (* hub + 10 tail + 2*(1+2+3) arm nodes *)
  check Alcotest.int "n" 23 (Graph.n g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  let inst = Instance.make_ic g labels in
  check Alcotest.int "k" 3 (Instance.component_count inst);
  check Alcotest.int "t" 6 (Instance.terminal_count inst);
  (* Each component's two terminals are at distance 2*length via the hub. *)
  List.iter
    (fun (lbl, members) ->
      match members with
      | [ a; b ] ->
          let dist, _ = Paths.dijkstra g ~src:a in
          check Alcotest.int
            (Printf.sprintf "component %d distance" lbl)
            (2 * (lbl + 1))
            dist.(b)
      | _ -> Alcotest.fail "expected pairs")
    (Instance.components inst)

let prop_broom_det_correct =
  QCheck.Test.make ~name:"broom instances solved exactly by Det_dsf" ~count:8
    QCheck.(int_range 1 6)
    (fun k ->
      let g, labels =
        Gen.broom ~tail:20 ~arm_lengths:(List.init k (fun j -> j + 1))
      in
      let inst = Instance.make_ic g labels in
      let res = Dsf_core.Det_dsf.run inst in
      (* OPT connects each pair through the hub: sum of 2*(j+1). *)
      let opt = List.fold_left ( + ) 0 (List.init k (fun j -> 2 * (j + 2 - 1))) in
      Instance.is_feasible inst res.Dsf_core.Det_dsf.solution
      && res.Dsf_core.Det_dsf.weight = opt)

(* ----------------------------------------------------------------- Solver *)

let sample_instance seed =
  let r = rng seed in
  let g = Gen.random_connected r ~n:20 ~extra_edges:15 ~max_w:8 in
  let labels = Gen.random_labels r ~n:20 ~t:6 ~k:2 in
  Instance.make_ic g labels

let test_solver_det () =
  let inst = sample_instance 31 in
  let rep = Dsf_core.Solver.solve_ic Dsf_core.Solver.Det inst in
  Alcotest.(check bool) "feasible" true rep.Dsf_core.Solver.feasible;
  Alcotest.(check bool) "has dual" true (rep.Dsf_core.Solver.dual_lower_bound <> None);
  Alcotest.(check bool) "has rounds" true (rep.Dsf_core.Solver.rounds_simulated > 0);
  let det = Dsf_core.Det_dsf.run inst in
  check Alcotest.int "same as direct call" det.Dsf_core.Det_dsf.weight
    rep.Dsf_core.Solver.weight

let test_solver_all_algorithms () =
  let inst = sample_instance 32 in
  List.iter
    (fun algo ->
      let rep = Dsf_core.Solver.solve_ic algo inst in
      Alcotest.(check bool)
        (Dsf_core.Solver.name algo ^ " feasible")
        true rep.Dsf_core.Solver.feasible)
    [
      Dsf_core.Solver.Det;
      Dsf_core.Solver.Det_sublinear { eps_num = 1; eps_den = 2 };
      Dsf_core.Solver.Rand { repetitions = 2; seed = 5 };
      Dsf_core.Solver.Khan_baseline { repetitions = 2; seed = 5 };
      Dsf_core.Solver.Centralized_moat;
    ]

let test_solver_compare_all_sorted () =
  let inst = sample_instance 33 in
  let reports = Dsf_core.Solver.compare_all inst in
  check Alcotest.int "four algorithms" 4 (List.length reports);
  let weights = List.map (fun r -> r.Dsf_core.Solver.weight) reports in
  check Alcotest.(list int) "ascending" (List.sort compare weights) weights

let test_solver_cr () =
  let g = Gen.path 8 in
  let requests = Array.make 8 [] in
  requests.(0) <- [ 7 ];
  let cr = Instance.make_cr g requests in
  let rep = Dsf_core.Solver.solve_cr Dsf_core.Solver.Det cr in
  check Alcotest.int "path weight" 7 rep.Dsf_core.Solver.weight;
  Alcotest.(check bool) "transform rounds included" true
    (rep.Dsf_core.Solver.rounds_simulated > 7)

(* ---------------------------------------------------------------- st_hard *)

let test_st_hard_structure () =
  let inst = Dsf_lower_bound.Gadgets.st_hard ~s:10 ~rho:3 in
  let g = inst.Instance.graph in
  check Alcotest.int "n = s + 2" 12 (Graph.n g);
  check Alcotest.int "D = 2" 2 (Paths.diameter_unweighted g);
  let _, _, s = Paths.parameters g in
  check Alcotest.int "s param" 10 s;
  check Alcotest.int "t" 2 (Instance.terminal_count inst);
  let res = Dsf_core.Det_dsf.run inst in
  check Alcotest.int "solves along the path" 10 res.Dsf_core.Det_dsf.weight

let suites =
  [
    ( "congest.upcast_sequential",
      [
        Alcotest.test_case "delivers" `Quick test_seq_upcast_delivers;
        Alcotest.test_case "no pipelining" `Quick test_seq_upcast_no_pipelining;
      ] );
    ( "congest.trace",
      [
        Alcotest.test_case "counts" `Quick test_trace_counts;
        Alcotest.test_case "per-edge" `Quick test_trace_per_edge;
        Alcotest.test_case "nesting chains" `Quick test_trace_nesting_chains;
      ] );
    ( "graph.dot",
      [
        Alcotest.test_case "graph output" `Quick test_dot_graph_output;
        Alcotest.test_case "instance output" `Quick test_dot_instance_output;
      ] );
    ( "graph.gen_extra",
      [
        Alcotest.test_case "clustered" `Quick test_gen_clustered;
        Alcotest.test_case "broom" `Quick test_gen_broom;
        qtest prop_broom_det_correct;
      ] );
    ( "core.solver",
      [
        Alcotest.test_case "det report" `Quick test_solver_det;
        Alcotest.test_case "all algorithms" `Quick test_solver_all_algorithms;
        Alcotest.test_case "compare_all sorted" `Quick test_solver_compare_all_sorted;
        Alcotest.test_case "CR front end" `Quick test_solver_cr;
      ] );
    ( "lower_bound.st_hard",
      [ Alcotest.test_case "structure + solve" `Quick test_st_hard_structure ] );
  ]
