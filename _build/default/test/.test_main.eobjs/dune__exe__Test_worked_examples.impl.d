test/test_worked_examples.ml: Alcotest Det_dsf Dsf_core Dsf_graph Frac Gen Graph Instance List Moat Printf
