test/test_metamorphic.ml: Alcotest Array Buffer Dsf_congest Dsf_core Dsf_graph Dsf_util Exact Format Gen Graph Instance Io List Mst Paths QCheck QCheck_alcotest
