test/test_core.ml: Alcotest Array Det_dsf Dsf_congest Dsf_core Dsf_graph Dsf_util Exact Frac Fun Gen Graph Instance List Moat Moat_rounded Paths Printf QCheck QCheck_alcotest Region_bf Transform
