test/test_graph.ml: Alcotest Array Dsf_graph Dsf_util Exact Gen Graph Instance List Mst Paths Printf QCheck QCheck_alcotest
