test/test_rand.ml: Alcotest Array Det_sublinear Dsf_congest Dsf_core Dsf_graph Dsf_util Exact Gen Graph Instance List Moat_rounded Paths QCheck QCheck_alcotest Rand_dsf Reduced_solver String
