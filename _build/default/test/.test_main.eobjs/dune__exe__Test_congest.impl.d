test/test_congest.ml: Alcotest Array Bellman_ford Bfs Dsf_congest Dsf_graph Dsf_util Fun Gen Graph Ledger List Mst Paths Pipeline Printf QCheck QCheck_alcotest Sim Tree_ops
