test/test_mst_baselines.ml: Alcotest Array Dsf_baseline Dsf_congest Dsf_core Dsf_graph Dsf_util Format Fun Gen Graph Instance List Mst Paths QCheck QCheck_alcotest String
