test/test_misc.ml: Alcotest Array Certify Dsf_congest Dsf_core Dsf_graph Dsf_util Format Frac Gen Graph Instance List Moat Moat_rounded Printf QCheck QCheck_alcotest String
