test/test_embed.ml: Alcotest Array Dsf_embed Dsf_graph Dsf_util Gen Graph Le_list List Paths QCheck QCheck_alcotest Virtual_tree
