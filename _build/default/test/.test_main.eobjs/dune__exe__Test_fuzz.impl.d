test/test_fuzz.ml: Array Certify Det_dsf Det_sublinear Dsf_core Dsf_graph Dsf_util Frac Gen Graph Instance List Moat Moat_rounded Mst Pruning QCheck QCheck_alcotest Rand_dsf Solver
