test/test_extras.ml: Alcotest Array Buffer Dot Dsf_congest Dsf_core Dsf_graph Dsf_lower_bound Dsf_util Format Fun Gen Graph Instance List Paths Printf QCheck QCheck_alcotest String
