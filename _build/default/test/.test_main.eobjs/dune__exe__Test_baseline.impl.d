test/test_baseline.ml: Alcotest Array Dsf_baseline Dsf_congest Dsf_graph Dsf_util Exact Gen Instance Khan_etal List Mst Mst_distributed QCheck QCheck_alcotest Steiner_tree Steiner_tree_distributed
