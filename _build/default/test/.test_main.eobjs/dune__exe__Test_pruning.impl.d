test/test_pruning.ml: Alcotest Array Det_dsf Dsf_congest Dsf_core Dsf_graph Dsf_util F6_protocol Fun Gen Graph Instance Mst Pruning QCheck QCheck_alcotest
