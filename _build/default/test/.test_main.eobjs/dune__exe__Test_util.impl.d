test/test_util.ml: Alcotest Array Bitsize Dsf_util Fun Hashtbl Heap List QCheck QCheck_alcotest Rng Stats Union_find
