test/test_lower_bound.ml: Alcotest Array Bool Dsf_congest Dsf_core Dsf_graph Dsf_lower_bound Dsf_util Gadgets Gen Graph Instance List Paths Printf QCheck QCheck_alcotest
