test/test_differential.ml: Alcotest Array Certify Det_dsf Det_sublinear Dsf_core Dsf_graph Dsf_util Exact Frac Gen Graph Instance List Moat QCheck QCheck_alcotest Rand_dsf
