test/test_routing.ml: Alcotest Array Dsf_congest Dsf_core Dsf_embed Dsf_graph Dsf_util Frac Gen Graph Instance Level_routing List Moat Paths QCheck QCheck_alcotest
