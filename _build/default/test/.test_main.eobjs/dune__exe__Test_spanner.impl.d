test/test_spanner.ml: Alcotest Array Dsf_core Dsf_graph Dsf_util Gen Graph Instance List Paths Printf QCheck QCheck_alcotest Spanner
