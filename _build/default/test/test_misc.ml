(* Small remaining corners: Intmath, Exchange, Certify.pp, and an
   Algorithm 2 threshold worked example. *)

open Dsf_graph
open Dsf_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let frac = Alcotest.testable Frac.pp Frac.equal

(* --------------------------------------------------------------- Intmath *)

let test_intmath_isqrt () =
  List.iter
    (fun (n, want) -> check Alcotest.int (Printf.sprintf "isqrt %d" n) want
        (Dsf_util.Intmath.isqrt n))
    [ 0, 0; 1, 1; 2, 1; 3, 1; 4, 2; 8, 2; 9, 3; 15, 3; 16, 4; 99, 9; 100, 10 ]

let test_intmath_ceil_log2 () =
  List.iter
    (fun (n, want) -> check Alcotest.int (Printf.sprintf "clog2 %d" n) want
        (Dsf_util.Intmath.ceil_log2 n))
    [ 1, 0; 2, 1; 3, 2; 4, 2; 5, 3; 8, 3; 9, 4; 1024, 10; 1025, 11 ]

let test_intmath_ceil_div () =
  check Alcotest.int "7/2" 4 (Dsf_util.Intmath.ceil_div 7 2);
  check Alcotest.int "8/2" 4 (Dsf_util.Intmath.ceil_div 8 2);
  check Alcotest.int "0/5" 0 (Dsf_util.Intmath.ceil_div 0 5)

let prop_isqrt =
  QCheck.Test.make ~name:"isqrt is the floor square root" ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun n ->
      let r = Dsf_util.Intmath.isqrt n in
      r * r <= n && (r + 1) * (r + 1) > n)

(* -------------------------------------------------------------- Exchange *)

let test_exchange_counts () =
  let g = Gen.grid ~rows:3 ~cols:3 in
  let stats = Dsf_congest.Exchange.all_neighbors g ~payload_bits:5 in
  (* One message per edge direction. *)
  check Alcotest.int "messages = 2m" (2 * Graph.m g) stats.Dsf_congest.Sim.messages;
  check Alcotest.int "bits" (5 * 2 * Graph.m g) stats.Dsf_congest.Sim.total_bits;
  Alcotest.(check bool) "couple of rounds" true (stats.Dsf_congest.Sim.rounds <= 3)

(* ------------------------------------------------------------ Certify.pp *)

let test_certify_pp () =
  let g = Gen.path 3 in
  let inst = Instance.make_ic g [| 0; -1; 0 |] in
  let sol = Array.make 2 true in
  match Certify.check ~dual:2.0 inst ~solution:sol with
  | Ok report ->
      let s = Format.asprintf "%a" Certify.pp report in
      let contains sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "mentions weight" true (contains "weight=2");
      Alcotest.(check bool) "mentions proven ratio" true (contains "proven")
  | Error e -> Alcotest.fail e

(* ----------------------------------------- Algorithm 2 threshold example *)

(* Path 0-1-2-3 with weights 4, 4, 4 and components {0,3}... simpler:
   two terminals at weighted distance 12.  With eps = 1 the internal scale
   is 8, thresholds mu-hat = 4, 8, 12, ... in scaled units.  The merge
   needs growth 6 (unscaled) = 48 scaled; the checkpoint sequence must
   pass 4, 8, 12, 18, 27, 40, 60 >= 48 — i.e. 7 growth phases — before
   the pair can merge.  We assert the phase count matches the schedule
   computed from Moat_rounded.next_threshold directly. *)

let test_alg2_threshold_schedule () =
  let g = Graph.make ~n:4 [ 0, 1, 4; 1, 2, 4; 2, 3, 4 ] in
  let inst = Instance.make_ic g [| 0; -1; -1; 0 |] in
  let res = Moat_rounded.run ~eps_num:1 ~eps_den:1 inst in
  check Alcotest.int "weight = 12" 12 res.Moat_rounded.weight;
  check Alcotest.int "one merge" 1 res.Moat_rounded.merge_count;
  (* Replay the threshold schedule: growth stops at mu-hat until the
     cumulative growth reaches scale * wd / 2 = 8 * 12 / 2 = 48. *)
  let expected_phases =
    let rec go mu_hat phases =
      if mu_hat >= 48 then phases + 1
      else
        go (Moat_rounded.next_threshold ~eps_num:1 ~eps_den:1 mu_hat) (phases + 1)
    in
    go ((res.Moat_rounded.scale + 1) / 2) 0
  in
  check Alcotest.int "growth phases follow the integer schedule"
    expected_phases res.Moat_rounded.growth_phases;
  (* Dual in scaled units: two active moats all the way to the meeting
     radius (2 * 48), PLUS the Algorithm 2 idiosyncrasy that a merged moat
     stays active until the next checkpoint (line 33): the lone moat grows
     from 48 to the first threshold >= 48 at act = 1. *)
  let rec first_threshold_at_least target mu_hat =
    if mu_hat >= target then mu_hat
    else
      first_threshold_at_least target
        (Moat_rounded.next_threshold ~eps_num:1 ~eps_den:1 mu_hat)
  in
  let final = first_threshold_at_least 48 ((res.Moat_rounded.scale + 1) / 2) in
  check frac "dual = 96 + post-merge growth"
    (Frac.of_int ((2 * 48) + (final - 48)))
    res.Moat_rounded.dual

let test_alg2_matches_alg1_weight_small_eps () =
  (* For a single pair the rounding never changes the outcome. *)
  let g = Gen.path 7 in
  let inst = Instance.make_ic g [| 0; -1; -1; -1; -1; -1; 0 |] in
  let a1 = Moat.run inst in
  List.iter
    (fun (en, ed) ->
      let a2 = Moat_rounded.run ~eps_num:en ~eps_den:ed inst in
      check Alcotest.int
        (Printf.sprintf "eps=%d/%d same weight" en ed)
        a1.Moat.weight a2.Moat_rounded.weight)
    [ 1, 1; 1, 3; 1, 7 ]

let suites =
  [
    ( "util.intmath",
      [
        Alcotest.test_case "isqrt" `Quick test_intmath_isqrt;
        Alcotest.test_case "ceil_log2" `Quick test_intmath_ceil_log2;
        Alcotest.test_case "ceil_div" `Quick test_intmath_ceil_div;
        qtest prop_isqrt;
      ] );
    ("congest.exchange", [ Alcotest.test_case "counts" `Quick test_exchange_counts ]);
    ("core.certify_pp", [ Alcotest.test_case "pp" `Quick test_certify_pp ]);
    ( "worked_examples.alg2",
      [
        Alcotest.test_case "threshold schedule" `Quick test_alg2_threshold_schedule;
        Alcotest.test_case "rounding harmless on pairs" `Quick
          test_alg2_matches_alg1_weight_small_eps;
      ] );
  ]
