(* Differential and at-scale testing: all algorithms on shared instances
   with the full consistency matrix, the Certify re-checker, and larger
   networks than the unit suites use. *)

open Dsf_graph
open Dsf_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let rng seed = Dsf_util.Rng.create seed

(* ---------------------------------------------------------------- Certify *)

let sample seed =
  let r = rng seed in
  let g = Gen.random_connected r ~n:20 ~extra_edges:16 ~max_w:8 in
  let labels = Gen.random_labels r ~n:20 ~t:6 ~k:2 in
  Instance.make_ic g labels

let test_certify_accepts_det () =
  let inst = sample 1 in
  let det = Det_dsf.run inst in
  match
    Certify.check ~dual:(Frac.to_float det.Det_dsf.dual) inst
      ~solution:det.Det_dsf.solution
  with
  | Ok r ->
      Alcotest.(check bool) "feasible" true r.Certify.feasible;
      Alcotest.(check bool) "forest" true r.Certify.forest;
      Alcotest.(check bool) "minimal" true r.Certify.minimal;
      (match r.Certify.certified_ratio with
      | Some c -> Alcotest.(check bool) "proven < 2" true (c < 2.0)
      | None -> Alcotest.fail "expected certified ratio")
  | Error e -> Alcotest.fail e

let test_certify_rejects_infeasible () =
  let inst = sample 2 in
  let empty = Array.make (Graph.m inst.Instance.graph) false in
  match Certify.check inst ~solution:empty with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty solution must be rejected"

let test_certify_rejects_bogus_dual () =
  let inst = sample 3 in
  let det = Det_dsf.run inst in
  match
    Certify.check
      ~dual:(float_of_int (10 * det.Det_dsf.weight))
      inst ~solution:det.Det_dsf.solution
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dual above weight must be rejected"

let test_certify_reports_nonminimal () =
  let g = Gen.path 5 in
  let inst = Instance.make_ic g [| 0; -1; 0; -1; -1 |] in
  let all = Array.make (Graph.m g) true in
  match Certify.check inst ~solution:all with
  | Ok r -> Alcotest.(check bool) "not minimal" false r.Certify.minimal
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------ differential *)

let prop_consistency_matrix =
  QCheck.Test.make
    ~name:"differential: all algorithms consistent on shared instances"
    ~count:12
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let n = 24 in
      let g = Gen.random_connected r ~n ~extra_edges:20 ~max_w:8 in
      let labels = Gen.random_labels r ~n ~t:8 ~k:3 in
      let inst = Instance.make_ic g labels in
      let det = Det_dsf.run inst in
      let sub = Det_sublinear.run ~eps_num:1 ~eps_den:2 inst in
      let rnd = Rand_dsf.run ~repetitions:1 ~rng:(rng (seed + 7)) inst in
      let cen = Moat.run inst in
      let dual = Frac.to_float cen.Moat.dual in
      let opt = Exact.steiner_forest_weight inst in
      let fopt = float_of_int opt in
      (* Every output feasible. *)
      Instance.is_feasible inst det.Det_dsf.solution
      && Instance.is_feasible inst sub.Det_sublinear.solution
      && Instance.is_feasible inst rnd.Rand_dsf.solution
      (* The shared dual lower-bounds OPT, and every weight is >= OPT. *)
      && dual <= fopt +. 1e-6
      && det.Det_dsf.weight >= opt
      && sub.Det_sublinear.weight >= opt
      && rnd.Rand_dsf.weight >= opt
      (* Guarantee ordering: det within 2x, sub within 2.5x. *)
      && det.Det_dsf.weight <= 2 * opt
      && float_of_int sub.Det_sublinear.weight <= (2.5 *. fopt) +. 1e-9
      (* det and centralized follow the same schedule. *)
      && Frac.equal det.Det_dsf.dual cen.Moat.dual)

(* ---------------------------------------------------------------- at scale *)

let test_scale_det () =
  let r = rng 42 in
  let n = 200 in
  let g = Gen.random_connected r ~n ~extra_edges:250 ~max_w:20 in
  let labels = Gen.spread_labels r g ~t:24 ~k:6 in
  let inst = Instance.make_ic g labels in
  let det = Det_dsf.run inst in
  Alcotest.(check bool) "feasible" true (Instance.is_feasible inst det.Det_dsf.solution);
  Alcotest.(check bool) "within 2x dual" true
    (float_of_int det.Det_dsf.weight < 2. *. Frac.to_float det.Det_dsf.dual +. 1e-6);
  let budget = Dsf_util.Bitsize.congest_budget ~n in
  Alcotest.(check bool) "congestion discipline at scale" true
    (det.Det_dsf.max_edge_round_bits <= budget)

let test_scale_rand () =
  let r = rng 43 in
  let n = 200 in
  let g = Gen.random_geometric r ~n ~radius:0.14 ~max_w:50 in
  let labels = Gen.spread_labels r g ~t:20 ~k:5 in
  let inst = Instance.make_ic g labels in
  let res = Rand_dsf.run ~repetitions:1 ~rng:(rng 44) inst in
  Alcotest.(check bool) "feasible" true
    (Instance.is_feasible inst res.Rand_dsf.solution);
  (* The deterministic run's dual certifies the randomized ratio too. *)
  let det = Det_dsf.run inst in
  let dual = Frac.to_float det.Det_dsf.dual in
  Alcotest.(check bool) "rand within O(log n) of the dual" true
    (float_of_int res.Rand_dsf.weight
    <= 2. *. log (float_of_int n) *. dual)

let test_scale_sublinear_broom () =
  (* The adversarial family at scale exercises many growth phases. *)
  let g, labels = Gen.broom ~tail:60 ~arm_lengths:[ 1; 2; 3; 4; 5; 6 ] in
  let inst = Instance.make_ic g labels in
  let sub = Det_sublinear.run ~eps_num:1 ~eps_den:2 inst in
  let opt = List.fold_left ( + ) 0 (List.map (fun l -> 2 * l) [ 1; 2; 3; 4; 5; 6 ]) in
  Alcotest.(check bool) "feasible" true
    (Instance.is_feasible inst sub.Det_sublinear.solution);
  Alcotest.(check bool) "within 2.5 OPT" true
    (float_of_int sub.Det_sublinear.weight <= 2.5 *. float_of_int opt)

let suites =
  [
    ( "core.certify",
      [
        Alcotest.test_case "accepts det output" `Quick test_certify_accepts_det;
        Alcotest.test_case "rejects infeasible" `Quick test_certify_rejects_infeasible;
        Alcotest.test_case "rejects bogus dual" `Quick test_certify_rejects_bogus_dual;
        Alcotest.test_case "reports non-minimal" `Quick test_certify_reports_nonminimal;
      ] );
    ("differential", [ qtest prop_consistency_matrix ]);
    ( "scale",
      [
        Alcotest.test_case "det @ n=200" `Slow test_scale_det;
        Alcotest.test_case "rand @ n=200" `Slow test_scale_rand;
        Alcotest.test_case "sublinear broom" `Slow test_scale_sublinear_broom;
      ] );
  ]
