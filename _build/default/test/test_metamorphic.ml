(* Metamorphic and cross-cutting properties: transformations of an instance
   with a predictable effect on every correct algorithm's output, plus
   tests for the Io and Params modules. *)

open Dsf_graph

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let rng seed = Dsf_util.Rng.create seed

let random_instance ?(n = 18) ?(extra = 14) ?(max_w = 8) ?(t = 6) ?(k = 2) seed =
  let r = rng seed in
  let g = Gen.random_connected r ~n ~extra_edges:extra ~max_w in
  let labels = Gen.random_labels r ~n ~t ~k in
  Instance.make_ic g labels

let weight_of_det inst = (Dsf_core.Det_dsf.run inst).Dsf_core.Det_dsf.weight

(* --------------------------------------------------------- metamorphic *)

let prop_weight_scaling =
  QCheck.Test.make
    ~name:"scaling all weights by c scales the deterministic solution by c"
    ~count:20
    QCheck.(pair (int_range 0 100_000) (int_range 2 5))
    (fun (seed, c) ->
      let inst = random_instance seed in
      let g = inst.Instance.graph in
      let scaled_g =
        Graph.make ~n:(Graph.n g)
          (Array.to_list (Graph.edges g)
          |> List.map (fun (e : Graph.edge) -> e.u, e.v, c * e.w))
      in
      let scaled = Instance.make_ic scaled_g inst.Instance.labels in
      weight_of_det scaled = c * weight_of_det inst)

let prop_parallel_heavy_edge_harmless =
  QCheck.Test.make
    ~name:"adding a very heavy extra edge never changes the solution weight"
    ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let inst = random_instance seed in
      let g = inst.Instance.graph in
      let r = rng (seed + 1) in
      (* Find a non-adjacent pair to connect with a huge edge. *)
      let rec pick tries =
        if tries = 0 then None
        else begin
          let u = Dsf_util.Rng.int r (Graph.n g)
          and v = Dsf_util.Rng.int r (Graph.n g) in
          if u <> v && Graph.find_edge g u v = None then Some (u, v)
          else pick (tries - 1)
        end
      in
      match pick 50 with
      | None -> QCheck.assume_fail ()
      | Some (u, v) ->
          let heavy = 1 + Graph.total_weight g in
          let g' =
            Graph.make ~n:(Graph.n g)
              ((u, v, heavy)
              :: (Array.to_list (Graph.edges g)
                 |> List.map (fun (e : Graph.edge) -> e.u, e.v, e.w)))
          in
          let inst' = Instance.make_ic g' inst.Instance.labels in
          weight_of_det inst' = weight_of_det inst)

let prop_label_renaming_invariant =
  QCheck.Test.make
    ~name:"renaming component labels does not change the solution weight"
    ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let inst = random_instance ~k:3 ~t:8 seed in
      let renamed =
        Array.map
          (fun l -> if l >= 0 then 100 + (7 * l) else -1)
          inst.Instance.labels
      in
      let inst' = Instance.make_ic inst.Instance.graph renamed in
      weight_of_det inst' = weight_of_det inst)

let prop_extra_singleton_harmless =
  QCheck.Test.make
    ~name:"adding a singleton component never changes the solution weight"
    ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let inst = random_instance seed in
      let labels = Array.copy inst.Instance.labels in
      (* Put a fresh singleton label on some unlabelled node. *)
      let free = ref (-1) in
      Array.iteri (fun v l -> if l < 0 && !free < 0 then free := v) labels;
      if !free < 0 then QCheck.assume_fail ()
      else begin
        labels.(!free) <- 999;
        let inst' = Instance.make_ic inst.Instance.graph labels in
        weight_of_det inst' = weight_of_det inst
      end)

let prop_merging_components_weakly_increases =
  QCheck.Test.make
    ~name:"merging two components never decreases the optimal/heuristic weight"
    ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let inst = random_instance ~k:2 ~t:6 seed in
      (* Merge label 1 into 0: strictly more constraints. *)
      let merged =
        Array.map (fun l -> if l >= 0 then 0 else -1) inst.Instance.labels
      in
      let inst' = Instance.make_ic inst.Instance.graph merged in
      let opt = Exact.steiner_forest_weight inst in
      let opt' = Exact.steiner_forest_weight inst' in
      opt' >= opt)

let prop_all_algorithms_agree_on_forced_path =
  QCheck.Test.make
    ~name:"on a path graph every algorithm returns the unique solution"
    ~count:10
    QCheck.(int_range 4 30)
    (fun n ->
      let g = Gen.path n in
      let labels = Array.make n (-1) in
      labels.(0) <- 0;
      labels.(n - 1) <- 0;
      let inst = Instance.make_ic g labels in
      let expect = n - 1 in
      weight_of_det inst = expect
      && (Dsf_core.Det_sublinear.run ~eps_num:1 ~eps_den:2 inst)
           .Dsf_core.Det_sublinear.weight
         = expect
      && (Dsf_core.Rand_dsf.run ~repetitions:1 ~rng:(rng n) inst)
           .Dsf_core.Rand_dsf.weight
         = expect)

(* ------------------------------------------------------------------- Io *)

let test_io_roundtrip_fixed () =
  let inst = random_instance 5 in
  let back = Io.roundtrip_ic inst in
  check Alcotest.(array int) "labels survive" inst.Instance.labels
    back.Instance.labels;
  check Alcotest.int "n survives" (Graph.n inst.Instance.graph)
    (Graph.n back.Instance.graph);
  check Alcotest.int "m survives" (Graph.m inst.Instance.graph)
    (Graph.m back.Instance.graph)

let test_io_parse_cr () =
  let text = "n 3\nedge 0 1 2\nedge 1 2 3\nrequest 0 2\n" in
  match Io.parse_string text with
  | Io.Cr cr ->
      check Alcotest.(list int) "request list" [ 2 ] cr.Instance.requests.(0)
  | _ -> Alcotest.fail "expected CR"

let test_io_parse_plain_and_comments () =
  let text = "# a comment\nn 2\nedge 0 1 5 # trailing comment\n\n" in
  match Io.parse_string text with
  | Io.Plain g -> check Alcotest.int "edge parsed" 1 (Graph.m g)
  | _ -> Alcotest.fail "expected plain graph"

let test_io_errors () =
  let expect_error text =
    match Io.parse_string text with
    | exception Io.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected Parse_error"
  in
  expect_error "edge 0 1 2\n";
  (* missing n *)
  expect_error "n 2\nedge 0 1 x\n";
  (* bad integer *)
  expect_error "n 2\nfoo 1 2\n";
  (* unknown directive *)
  expect_error "n 2\nedge 0 1 1\nlabel 0 0\nrequest 0 1\n"
  (* mixed *)

let test_io_solution_roundtrip () =
  let inst = random_instance 6 in
  let g = inst.Instance.graph in
  let sol = Mst.kruskal g in
  let buf = Buffer.create 128 in
  let ppf = Format.formatter_of_buffer buf in
  Io.print_solution ppf g sol;
  Format.pp_print_flush ppf ();
  (match Io.parse_solution g (Buffer.contents buf) with
  | Ok back -> check Alcotest.(array bool) "solution roundtrip" sol back
  | Error e -> Alcotest.fail e)

let test_io_solution_errors () =
  let g = Gen.path 3 in
  (match Io.parse_solution g "0 2\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-edge must be rejected");
  (match Io.parse_solution g "0 abc\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad integers must be rejected");
  match Io.parse_solution g "# only a comment\n0 1\n" with
  | Ok sol -> check Alcotest.int "one edge" 1 (Array.fold_left (fun a b -> if b then a + 1 else a) 0 sol)
  | Error e -> Alcotest.fail e

let prop_io_roundtrip =
  QCheck.Test.make ~name:"Io roundtrip preserves instances" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let inst = random_instance seed in
      let back = Io.roundtrip_ic inst in
      back.Instance.labels = inst.Instance.labels
      && Graph.m back.Instance.graph = Graph.m inst.Instance.graph
      && Dsf_graph.Mst.weight back.Instance.graph
         = Dsf_graph.Mst.weight inst.Instance.graph)

(* ----------------------------------------------------------------- Params *)

let test_params_count_nodes () =
  let g = Gen.grid ~rows:4 ~cols:5 in
  let n, rounds = Dsf_congest.Params.count_nodes g in
  check Alcotest.int "n" 20 n;
  Alcotest.(check bool) "rounds ~ D" true (rounds <= 4 * 7)

let test_params_diameter_bound () =
  let g = Gen.path 12 in
  let bound, _ = Dsf_congest.Params.diameter_upper_bound g in
  let d = Paths.diameter_unweighted g in
  Alcotest.(check bool) "sandwiched" true (bound >= d && bound <= 2 * d)

let test_params_estimate_s () =
  let g = Gen.path 20 in
  (match Dsf_congest.Params.estimate_s ~cap:100 g with
  | `Stabilized s, _ -> Alcotest.(check bool) "close to s" true (s >= 19 && s <= 25)
  | `Exceeded, _ -> Alcotest.fail "should stabilize");
  match Dsf_congest.Params.estimate_s ~cap:5 g with
  | `Exceeded, _ -> ()
  | `Stabilized _, _ -> Alcotest.fail "cap 5 must be exceeded on a 20-path"

let test_params_regime () =
  (* Star: s = 2 <= sqrt n -> small regime. *)
  let star = Gen.star 30 in
  (match Dsf_congest.Params.regime star with
  | `Small_s _, _ -> ()
  | `Large_s, _ -> Alcotest.fail "star should be small-s");
  (* Long path: s = n - 1 > sqrt n -> large regime. *)
  let path = Gen.path 30 in
  match Dsf_congest.Params.regime path with
  | `Large_s, _ -> ()
  | `Small_s _, _ -> Alcotest.fail "path should be large-s"

let suites =
  [
    ( "metamorphic",
      [
        qtest prop_weight_scaling;
        qtest prop_parallel_heavy_edge_harmless;
        qtest prop_label_renaming_invariant;
        qtest prop_extra_singleton_harmless;
        qtest prop_merging_components_weakly_increases;
        qtest prop_all_algorithms_agree_on_forced_path;
      ] );
    ( "graph.io",
      [
        Alcotest.test_case "roundtrip" `Quick test_io_roundtrip_fixed;
        Alcotest.test_case "parse CR" `Quick test_io_parse_cr;
        Alcotest.test_case "plain + comments" `Quick test_io_parse_plain_and_comments;
        Alcotest.test_case "errors" `Quick test_io_errors;
        Alcotest.test_case "solution roundtrip" `Quick test_io_solution_roundtrip;
        Alcotest.test_case "solution errors" `Quick test_io_solution_errors;
        qtest prop_io_roundtrip;
      ] );
    ( "congest.params",
      [
        Alcotest.test_case "count nodes" `Quick test_params_count_nodes;
        Alcotest.test_case "diameter bound" `Quick test_params_diameter_bound;
        Alcotest.test_case "estimate s" `Quick test_params_estimate_s;
        Alcotest.test_case "regime" `Quick test_params_regime;
      ] );
  ]
