open Dsf_graph
open Dsf_baseline

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let rng seed = Dsf_util.Rng.create seed

let random_instance ?(n = 30) ?(extra = 25) ?(max_w = 10) ?(t = 9) ?(k = 3) seed =
  let r = rng seed in
  let g = Gen.random_connected r ~n ~extra_edges:extra ~max_w in
  let labels = Gen.random_labels r ~n ~t ~k in
  Instance.make_ic g labels

(* -------------------------------------------------------------- Khan_etal *)

let test_khan_pair_path () =
  let g = Gen.path 6 in
  let inst = Instance.make_ic g [| 0; -1; -1; -1; -1; 0 |] in
  let res = Khan_etal.run ~rng:(rng 1) inst in
  check Alcotest.int "exact on path" 5 res.Khan_etal.weight

let test_khan_rounds_grow_with_k () =
  (* The selection stage pays ~O(s) per component. *)
  let n = 80 in
  let r = rng 2 in
  let g = Gen.cycle n |> Gen.reweight r ~max_w:4 in
  let mk k =
    let labels = Gen.random_labels (rng (k + 10)) ~n ~t:(3 * k) ~k in
    let inst = Instance.make_ic g labels in
    let res = Khan_etal.run ~repetitions:1 ~rng:(rng (k + 20)) inst in
    Dsf_congest.Ledger.total res.Khan_etal.ledger
  in
  let r2 = mk 2 and r8 = mk 8 in
  Alcotest.(check bool) "k=8 costs much more than k=2" true (r8 > 2 * r2)

let prop_khan_feasible =
  QCheck.Test.make ~name:"khan baseline: feasible, bounded ratio" ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let inst = random_instance seed in
      let res = Khan_etal.run ~rng:(rng (seed + 1)) inst in
      let opt = Exact.steiner_forest_weight inst in
      Instance.is_feasible inst res.Khan_etal.solution
      && float_of_int res.Khan_etal.weight
         <= 3.0 *. log (float_of_int 30) *. float_of_int opt)

(* -------------------------------------------------------- Mst_distributed *)

let test_mst_distributed_exact () =
  let g = Gen.random_connected (rng 3) ~n:40 ~extra_edges:50 ~max_w:25 in
  let res = Mst_distributed.run g in
  check Alcotest.int "weight = Kruskal" (Mst.weight g) res.Mst_distributed.weight;
  Alcotest.(check bool) "spanning tree" true
    (Mst.is_spanning_tree g res.Mst_distributed.solution)

let test_mst_distributed_rounds () =
  (* Pipelining: rounds ~ D + n, not D * n. *)
  let g = Gen.random_connected (rng 4) ~n:60 ~extra_edges:80 ~max_w:25 in
  let res = Mst_distributed.run g in
  Alcotest.(check bool) "round bound" true (res.Mst_distributed.rounds <= 4 * 60)

let prop_mst_distributed =
  QCheck.Test.make ~name:"distributed MST = Kruskal" ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = Gen.random_connected (rng seed) ~n:25 ~extra_edges:30 ~max_w:15 in
      (Mst_distributed.run g).Mst_distributed.weight = Mst.weight g)

(* ------------------------------------------------------------ Steiner_tree *)

let test_steiner_tree_trivial () =
  let g = Gen.path 4 in
  let res = Steiner_tree.run g ~terminals:[ 2 ] in
  check Alcotest.int "single terminal" 0 res.Steiner_tree.weight;
  let res2 = Steiner_tree.run g ~terminals:[ 0; 3 ] in
  check Alcotest.int "pair" 3 res2.Steiner_tree.weight

let prop_steiner_tree_two_approx =
  QCheck.Test.make ~name:"KMB baseline: feasible and <= 2*OPT" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let g = Gen.random_connected r ~n:20 ~extra_edges:18 ~max_w:9 in
      let terms =
        Dsf_util.Rng.sample_without_replacement r 5 20 |> Array.to_list
      in
      let res = Steiner_tree.run g ~terminals:terms in
      let opt = Exact.steiner_tree_weight g terms in
      let labels = Array.make 20 (-1) in
      List.iter (fun v -> labels.(v) <- 0) terms;
      Instance.is_feasible (Instance.make_ic g labels) res.Steiner_tree.solution
      && res.Steiner_tree.weight <= 2 * opt)

(* ------------------------------------------------- Steiner_tree_distributed *)

let test_st_distributed_pair () =
  let g = Gen.path 6 in
  let res = Steiner_tree_distributed.run g ~terminals:[ 0; 5 ] in
  check Alcotest.int "path weight" 5 res.Steiner_tree_distributed.weight

let test_st_distributed_ledger_simulated () =
  let g = Gen.random_connected (rng 6) ~n:30 ~extra_edges:25 ~max_w:8 in
  let terms = Dsf_util.Rng.sample_without_replacement (rng 7) 6 30 |> Array.to_list in
  let res = Steiner_tree_distributed.run g ~terminals:terms in
  Alcotest.(check bool) "substantial simulated rounds" true
    (Dsf_congest.Ledger.simulated res.Steiner_tree_distributed.ledger > 10);
  Alcotest.(check bool) "several phases in the ledger" true
    (List.length (Dsf_congest.Ledger.entries res.Steiner_tree_distributed.ledger)
    >= 6)

let prop_st_distributed_two_approx =
  QCheck.Test.make
    ~name:"distributed CF/Mehlhorn: feasible and <= 2*OPT" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let n = 20 in
      let g = Gen.random_connected r ~n ~extra_edges:18 ~max_w:9 in
      let terms = Dsf_util.Rng.sample_without_replacement r 5 n |> Array.to_list in
      let res = Steiner_tree_distributed.run g ~terminals:terms in
      let opt = Exact.steiner_tree_weight g terms in
      let labels = Array.make n (-1) in
      List.iter (fun v -> labels.(v) <- 0) terms;
      Instance.is_feasible (Instance.make_ic g labels)
        res.Steiner_tree_distributed.solution
      && res.Steiner_tree_distributed.weight <= 2 * opt)

let prop_st_distributed_close_to_kmb =
  QCheck.Test.make
    ~name:"distributed CF/Mehlhorn within 2x of centralized KMB" ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let n = 18 in
      let g = Gen.random_connected r ~n ~extra_edges:15 ~max_w:9 in
      let terms = Dsf_util.Rng.sample_without_replacement r 4 n |> Array.to_list in
      let d = Steiner_tree_distributed.run g ~terminals:terms in
      let c = Steiner_tree.run g ~terminals:terms in
      d.Steiner_tree_distributed.weight <= 2 * c.Steiner_tree.weight)

let suites =
  [
    ( "baseline.khan_etal",
      [
        Alcotest.test_case "pair on path" `Quick test_khan_pair_path;
        Alcotest.test_case "rounds grow with k" `Quick test_khan_rounds_grow_with_k;
        qtest prop_khan_feasible;
      ] );
    ( "baseline.mst_distributed",
      [
        Alcotest.test_case "exact MST" `Quick test_mst_distributed_exact;
        Alcotest.test_case "pipelined rounds" `Quick test_mst_distributed_rounds;
        qtest prop_mst_distributed;
      ] );
    ( "baseline.steiner_tree",
      [
        Alcotest.test_case "degenerate" `Quick test_steiner_tree_trivial;
        qtest prop_steiner_tree_two_approx;
      ] );
    ( "baseline.steiner_tree_distributed",
      [
        Alcotest.test_case "pair on path" `Quick test_st_distributed_pair;
        Alcotest.test_case "ledger mostly simulated" `Quick test_st_distributed_ledger_simulated;
        qtest prop_st_distributed_two_approx;
        qtest prop_st_distributed_close_to_kmb;
      ] );
  ]
