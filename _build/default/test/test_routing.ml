(* Direct tests for the Section 5 level-routing protocols and radius
   invariants of the moat algorithms. *)

open Dsf_graph
open Dsf_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let rng seed = Dsf_util.Rng.create seed

let vt_of seed g = fst (Dsf_embed.Virtual_tree.build (rng seed) g)

(* ----------------------------------------------------------- route_phase *)

let test_route_delivers_to_target () =
  let g = Gen.path 6 in
  let vt = vt_of 1 g in
  (* Send label 7 from node 0 toward node 5's... route to an arbitrary LE
     target: use node 0's top ancestor (reachable by construction). *)
  let target = vt.Dsf_embed.Virtual_tree.ancestors.(0).(vt.Dsf_embed.Virtual_tree.levels) in
  let origins v = if v = 0 then [ 7, target ] else [] in
  let states, _ = Level_routing.route_phase g vt ~origins in
  check Alcotest.(list int) "label arrived" [ 7 ]
    states.(target).Level_routing.lhat

let test_route_filters_duplicates () =
  (* Many holders of the same (label, target): each node forwards the pair
     at most once, so the target hears it but the edge work is bounded. *)
  let g = Gen.star 8 in
  let vt = vt_of 2 g in
  let target = vt.Dsf_embed.Virtual_tree.ancestors.(1).(vt.Dsf_embed.Virtual_tree.levels) in
  let origins v = if v >= 1 then [ 3, target ] else [] in
  let states, stats = Level_routing.route_phase g vt ~origins in
  check Alcotest.(list int) "delivered once" [ 3 ]
    states.(target).Level_routing.lhat;
  (* At most one message per (pair, node): star has 7 leaves + hub. *)
  Alcotest.(check bool) "filtered traffic" true (stats.Dsf_congest.Sim.messages <= 8)

let test_route_marks_shortest_path_edges () =
  let g = Gen.path 5 in
  let vt = vt_of 3 g in
  let target = vt.Dsf_embed.Virtual_tree.ancestors.(0).(vt.Dsf_embed.Virtual_tree.levels) in
  let origins v = if v = 0 then [ 1, target ] else [] in
  let states, _ = Level_routing.route_phase g vt ~origins in
  let marked =
    Array.to_list states
    |> List.concat_map (fun st -> st.Level_routing.marked)
    |> List.sort_uniq compare
  in
  (* On a path the route 0 -> target uses exactly the edges between them. *)
  check Alcotest.int "edge count = distance" target (List.length marked)

let test_route_self_target_free () =
  let g = Gen.path 4 in
  let vt = vt_of 4 g in
  let origins v = if v = 2 then [ 9, 2 ] else [] in
  let states, stats = Level_routing.route_phase g vt ~origins in
  check Alcotest.(list int) "self-delivery" [ 9 ] states.(2).Level_routing.lhat;
  check Alcotest.int "no messages" 0 stats.Dsf_congest.Sim.messages

(* -------------------------------------------------------- backtrace_phase *)

let test_backtrace_returns_to_origin () =
  let g = Gen.path 6 in
  let vt = vt_of 5 g in
  let target = vt.Dsf_embed.Virtual_tree.ancestors.(0).(vt.Dsf_embed.Virtual_tree.levels) in
  let origins v = if v = 0 then [ 4, target ] else [] in
  let rstates, _ = Level_routing.route_phase g vt ~origins in
  (* The target ships payload labels 10 and 11 back down the chain. *)
  let bundles v =
    if v = target && rstates.(v).Level_routing.lhat <> [] then
      [
        { Level_routing.route = (4, target); payload = 10 };
        { Level_routing.route = (4, target); payload = 11 };
      ]
    else []
  in
  let tables v = rstates.(v).Level_routing.known in
  let bstates, _ = Level_routing.backtrace_phase g ~tables ~bundles in
  check
    Alcotest.(list int)
    "origin got the payloads" [ 10; 11 ]
    (List.sort compare bstates.(0).Level_routing.b_l)

(* --------------------------------------------------- moat radius invariants *)

let prop_moat_radii_bounded =
  QCheck.Test.make
    ~name:"moat radii stay within WD/2 (Lemma F.1's argument)" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let g = Gen.random_connected r ~n:18 ~extra_edges:14 ~max_w:9 in
      let labels = Gen.random_labels r ~n:18 ~t:6 ~k:2 in
      let inst = Instance.make_ic g labels in
      let res = Moat.run inst in
      let wd = Paths.diameter_weighted g in
      List.for_all
        (fun (_, rad) ->
          Frac.sign rad >= 0
          && Frac.compare (Frac.double rad) (Frac.of_int wd) <= 0)
        res.Moat.final_rad)

let prop_moat_dual_scaling =
  QCheck.Test.make
    ~name:"moat dual doubles exactly when all weights double" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let g = Gen.random_connected r ~n:15 ~extra_edges:12 ~max_w:7 in
      let labels = Gen.random_labels r ~n:15 ~t:6 ~k:2 in
      let inst = Instance.make_ic g labels in
      let doubled =
        Instance.make_ic
          (Graph.make ~n:15
             (Array.to_list (Graph.edges g)
             |> List.map (fun (e : Graph.edge) -> e.u, e.v, 2 * e.w)))
          labels
      in
      let a = Moat.run inst and b = Moat.run doubled in
      Frac.equal (Frac.double a.Moat.dual) b.Moat.dual)

let suites =
  [
    ( "core.level_routing",
      [
        Alcotest.test_case "delivers to target" `Quick test_route_delivers_to_target;
        Alcotest.test_case "filters duplicates" `Quick test_route_filters_duplicates;
        Alcotest.test_case "marks shortest path" `Quick test_route_marks_shortest_path_edges;
        Alcotest.test_case "self target is free" `Quick test_route_self_target_free;
        Alcotest.test_case "backtrace to origin" `Quick test_backtrace_returns_to_origin;
      ] );
    ( "core.moat_invariants",
      [ qtest prop_moat_radii_bounded; qtest prop_moat_dual_scaling ] );
  ]
