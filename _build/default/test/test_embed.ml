open Dsf_graph
open Dsf_embed

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let rng seed = Dsf_util.Rng.create seed

(* --------------------------------------------------------------- Le_list *)

let test_le_list_path () =
  let g = Gen.path 6 in
  let t = Le_list.build (rng 1) g in
  Alcotest.(check bool) "matches centralized" true (Le_list.verify_against g t);
  (* Every list starts with the node itself at distance 0. *)
  Array.iteri
    (fun v entries ->
      match entries with
      | e :: _ ->
          check Alcotest.int "self first" v e.Le_list.target;
          check Alcotest.int "distance zero" 0 e.Le_list.dist
      | [] -> Alcotest.fail "empty LE list")
    t.Le_list.lists

let test_le_list_staircase_property () =
  let g = Gen.random_connected (rng 2) ~n:35 ~extra_edges:30 ~max_w:7 in
  let t = Le_list.build (rng 3) g in
  Array.iter
    (fun entries ->
      let rec ascending = function
        | a :: (b :: _ as rest) ->
            a.Le_list.dist <= b.Le_list.dist
            && a.Le_list.rank < b.Le_list.rank
            && ascending rest
        | _ -> true
      in
      Alcotest.(check bool) "staircase" true (ascending entries))
    t.Le_list.lists

let test_le_list_top_rank_everywhere () =
  let g = Gen.random_connected (rng 4) ~n:25 ~extra_edges:20 ~max_w:5 in
  let t = Le_list.build (rng 5) g in
  (* The globally top-ranked node is the last entry of every list. *)
  let top = ref 0 in
  Array.iteri (fun v r -> if r > t.Le_list.ranks.(!top) then top := v) t.Le_list.ranks;
  Array.iter
    (fun entries ->
      let last = List.nth entries (List.length entries - 1) in
      check Alcotest.int "global max last" !top last.Le_list.target)
    t.Le_list.lists

let test_highest_within () =
  let g = Gen.path 5 in
  let t = Le_list.build (rng 6) g in
  (match Le_list.highest_within t 0 0 with
  | Some e -> check Alcotest.int "radius 0 = self" 0 e.Le_list.target
  | None -> Alcotest.fail "self expected");
  match Le_list.highest_within t 0 100 with
  | Some e ->
      let top = ref 0 in
      Array.iteri
        (fun v r -> if r > t.Le_list.ranks.(!top) then top := v)
        t.Le_list.ranks;
      check Alcotest.int "radius inf = top" !top e.Le_list.target
  | None -> Alcotest.fail "top expected"

let prop_le_list_distributed_correct =
  QCheck.Test.make ~name:"distributed LE lists = centralized" ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let g = Gen.random_connected r ~n:22 ~extra_edges:18 ~max_w:9 in
      let t = Le_list.build r g in
      Le_list.verify_against g t)

let prop_le_list_logarithmic =
  QCheck.Test.make ~name:"LE lists stay O(log n)-short" ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let g = Gen.random_connected r ~n:60 ~extra_edges:60 ~max_w:9 in
      let t = Le_list.build r g in
      (* log2 60 ~ 5.9; whp lists are within a small multiple. *)
      Le_list.max_list_length t <= 24)

(* ----------------------------------------------------------- Virtual_tree *)

let test_vt_ancestors_monotone_rank () =
  let g = Gen.random_connected (rng 7) ~n:30 ~extra_edges:25 ~max_w:8 in
  let vt, _ = Virtual_tree.build (rng 8) g in
  let ranks = vt.Virtual_tree.le.Le_list.ranks in
  Array.iter
    (fun ancs ->
      for i = 1 to Array.length ancs - 1 do
        Alcotest.(check bool) "ranks ascend along the chain" true
          (ranks.(ancs.(i)) >= ranks.(ancs.(i - 1)))
      done)
    vt.Virtual_tree.ancestors

let test_vt_root_is_global_max () =
  let g = Gen.random_connected (rng 9) ~n:30 ~extra_edges:25 ~max_w:8 in
  let vt, _ = Virtual_tree.build (rng 10) g in
  let ranks = vt.Virtual_tree.le.Le_list.ranks in
  let top = ref 0 in
  Array.iteri (fun v r -> if r > ranks.(!top) then top := v) ranks;
  Array.iter
    (fun ancs ->
      check Alcotest.int "same root" !top ancs.(vt.Virtual_tree.levels))
    vt.Virtual_tree.ancestors

let test_vt_dominating_metric () =
  let g = Gen.random_connected (rng 11) ~n:25 ~extra_edges:20 ~max_w:6 in
  let vt, _ = Virtual_tree.build (rng 12) g in
  let apsp = Paths.all_pairs g in
  for u = 0 to 24 do
    for v = u + 1 to 24 do
      Alcotest.(check bool) "tree distance dominates" true
        (Virtual_tree.tree_distance vt u v
        >= float_of_int apsp.(u).(v) -. 1e-9)
    done
  done

let test_vt_beta_range () =
  let g = Gen.path 8 in
  let vt, _ = Virtual_tree.build (rng 13) g in
  Alcotest.(check bool) "beta in [1, 2)" true
    (vt.Virtual_tree.beta_num >= 1024 && vt.Virtual_tree.beta_num < 2048);
  Alcotest.(check bool) "ball radius grows" true
    (Virtual_tree.beta_ball vt 1 > Virtual_tree.beta_ball vt 0)

let test_vt_truncation () =
  let g = Gen.random_connected (rng 14) ~n:40 ~extra_edges:30 ~max_w:8 in
  let vt, _ = Virtual_tree.build (rng 15) ~truncate_at:6 g in
  check Alcotest.int "S size" 6 (List.length vt.Virtual_tree.s_set);
  (* Every node's closest S node is set, and truncated levels point at it. *)
  Array.iteri
    (fun v ancs ->
      Alcotest.(check bool) "closest S assigned" true
        (vt.Virtual_tree.closest_s.(v) >= 0);
      let tl = vt.Virtual_tree.trunc_level.(v) in
      if tl <= vt.Virtual_tree.levels then
        check Alcotest.int "truncated ancestor = closest S"
          vt.Virtual_tree.closest_s.(v) ancs.(tl))
    vt.Virtual_tree.ancestors;
  (* S members truncate at level 0 and map to themselves. *)
  List.iter
    (fun v ->
      check Alcotest.int "S node maps to itself" v vt.Virtual_tree.closest_s.(v))
    vt.Virtual_tree.s_set

let test_vt_routing_reaches_target () =
  let g = Gen.random_connected (rng 16) ~n:30 ~extra_edges:25 ~max_w:8 in
  let vt, _ = Virtual_tree.build (rng 17) g in
  let apsp = Paths.all_pairs g in
  (* From each node, walking next hops toward each ancestor must arrive,
     along a path of exactly the shortest-path weight. *)
  Array.iteri
    (fun v ancs ->
      Array.iter
        (fun w ->
          if w <> v then begin
            let rec walk u acc guard =
              if u = w then Some acc
              else if guard = 0 then None
              else begin
                match Virtual_tree.route_next_hop vt u w with
                | Some nb ->
                    let d =
                      match Graph.find_edge g u nb with
                      | Some eid -> (Graph.edge g eid).Graph.w
                      | None -> 1000000
                    in
                    walk nb (acc + d) (guard - 1)
                | None -> None
              end
            in
            match walk v 0 40 with
            | Some total -> check Alcotest.int "shortest route" apsp.(v).(w) total
            | None -> Alcotest.fail "routing failed"
          end)
        ancs)
    vt.Virtual_tree.ancestors

let test_vt_ball_and_ancestor_distance () =
  let g = Gen.random_connected (rng 21) ~n:20 ~extra_edges:15 ~max_w:6 in
  let vt, _ = Virtual_tree.build (rng 22) g in
  (* Ball radii double per level (up to integer flooring). *)
  for i = 0 to vt.Virtual_tree.levels - 1 do
    let r0 = Virtual_tree.beta_ball vt i and r1 = Virtual_tree.beta_ball vt (i + 1) in
    Alcotest.(check bool) "doubling" true (r1 >= 2 * r0 && r1 <= (2 * r0) + 1)
  done;
  (* Every routing path's weighted length is bounded by the top ball. *)
  let maxd = Virtual_tree.max_ancestor_distance vt in
  Alcotest.(check bool) "bounded by top ball" true
    (maxd <= Virtual_tree.beta_ball vt vt.Virtual_tree.levels);
  Alcotest.(check bool) "positive on nontrivial graphs" true (maxd > 0)

let prop_vt_congestion_logarithmic =
  QCheck.Test.make ~name:"O(log n) distinct paths per node (w.h.p.)" ~count:10
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let g = Gen.random_connected r ~n:50 ~extra_edges:45 ~max_w:8 in
      let vt, _ = Virtual_tree.build r g in
      let ppn = Virtual_tree.paths_per_node vt in
      Array.for_all (fun c -> c <= 30) ppn)

let suites =
  [
    ( "embed.le_list",
      [
        Alcotest.test_case "path" `Quick test_le_list_path;
        Alcotest.test_case "staircase property" `Quick test_le_list_staircase_property;
        Alcotest.test_case "top rank everywhere" `Quick test_le_list_top_rank_everywhere;
        Alcotest.test_case "highest_within" `Quick test_highest_within;
        qtest prop_le_list_distributed_correct;
        qtest prop_le_list_logarithmic;
      ] );
    ( "embed.virtual_tree",
      [
        Alcotest.test_case "ancestor ranks ascend" `Quick test_vt_ancestors_monotone_rank;
        Alcotest.test_case "common root" `Quick test_vt_root_is_global_max;
        Alcotest.test_case "dominating metric" `Quick test_vt_dominating_metric;
        Alcotest.test_case "beta range" `Quick test_vt_beta_range;
        Alcotest.test_case "truncation at S" `Quick test_vt_truncation;
        Alcotest.test_case "routing reaches targets" `Quick test_vt_routing_reaches_target;
        Alcotest.test_case "ball radii + max ancestor distance" `Quick
          test_vt_ball_and_ancestor_distance;
        qtest prop_vt_congestion_logarithmic;
      ] );
  ]
