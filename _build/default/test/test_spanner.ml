open Dsf_graph

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let rng seed = Dsf_util.Rng.create seed

(* A metric from a random graph's shortest-path closure. *)
let random_metric seed n =
  let g = Gen.random_connected (rng seed) ~n ~extra_edges:(2 * n) ~max_w:20 in
  let apsp = Paths.all_pairs g in
  fun i j -> apsp.(i).(j)

let test_spanner_stretch_1_is_complete () =
  let dist = random_metric 1 8 in
  let sp = Spanner.greedy ~dist ~points:8 ~stretch:1 in
  (* Stretch 1 must keep an edge for every pair not exactly realized. *)
  check (Alcotest.float 1e-9) "stretch exactly 1" 1.0
    (Spanner.max_stretch sp ~dist)

let test_spanner_stretch_respected () =
  List.iter
    (fun stretch ->
      let dist = random_metric 2 15 in
      let sp = Spanner.greedy ~dist ~points:15 ~stretch in
      Alcotest.(check bool)
        (Printf.sprintf "stretch <= %d" stretch)
        true
        (Spanner.max_stretch sp ~dist <= float_of_int stretch +. 1e-9))
    [ 1; 3; 5 ]

let test_spanner_sparser_with_stretch () =
  let dist = random_metric 3 20 in
  let tight = Spanner.greedy ~dist ~points:20 ~stretch:1 in
  let loose = Spanner.greedy ~dist ~points:20 ~stretch:5 in
  Alcotest.(check bool) "looser stretch, fewer edges" true
    (Spanner.edge_count loose <= Spanner.edge_count tight);
  (* A 5-spanner of 20 points should be well below the complete graph. *)
  Alcotest.(check bool) "sparse" true (Spanner.edge_count loose < 190)

let test_spanner_connected () =
  let dist = random_metric 4 12 in
  let sp = Spanner.greedy ~dist ~points:12 ~stretch:3 in
  for i = 0 to 11 do
    for j = i + 1 to 11 do
      Alcotest.(check bool) "finite distance" true
        (Spanner.spanner_distance sp i j < max_int)
    done
  done

let test_spanner_single_point () =
  let sp = Spanner.greedy ~dist:(fun _ _ -> 1) ~points:1 ~stretch:3 in
  check Alcotest.int "no edges" 0 (Spanner.edge_count sp);
  check Alcotest.int "self distance" 0 (Spanner.spanner_distance sp 0 0)

let prop_spanner_stretch =
  QCheck.Test.make ~name:"greedy spanner respects its stretch" ~count:20
    QCheck.(pair (int_range 0 100_000) (int_range 1 4))
    (fun (seed, r) ->
      let stretch = (2 * r) - 1 in
      let points = 12 in
      let dist = random_metric seed points in
      let sp = Spanner.greedy ~dist ~points ~stretch in
      Spanner.max_stretch sp ~dist <= float_of_int stretch +. 1e-9)

let prop_reduced_solver_spanner_vs_direct =
  QCheck.Test.make
    ~name:"reduced solver: spanner route feasible, within stretch of direct"
    ~count:12
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let n = 26 in
      let g = Gen.random_connected r ~n ~extra_edges:20 ~max_w:8 in
      let labels = Gen.random_labels r ~n ~t:8 ~k:2 in
      let inst = Instance.make_ic g labels in
      (* A partial first-stage forest and an S set, as Rand_dsf produces. *)
      let f = Array.make (Graph.m g) false in
      Array.iter
        (fun (e : Graph.edge) ->
          if Dsf_util.Rng.float r 1.0 < 0.45 then f.(e.id) <- true)
        (Graph.edges g);
      let s_set = Dsf_util.Rng.sample_without_replacement r 5 n |> Array.to_list in
      let via_spanner =
        Dsf_core.Reduced_solver.solve ~spanner_stretch:(Some 3) inst ~f ~s_set
          ~diameter:5
      in
      let direct =
        Dsf_core.Reduced_solver.solve ~spanner_stretch:None inst ~f ~s_set
          ~diameter:5
      in
      let weight_of o =
        Graph.edge_set_weight g o.Dsf_core.Reduced_solver.extra_edges
      in
      let union o =
        Array.mapi
          (fun i b -> b || o.Dsf_core.Reduced_solver.extra_edges.(i))
          f
      in
      let both_feasible_or_unassigned o =
        o.Dsf_core.Reduced_solver.unassigned_terminals > 0
        || Instance.is_feasible inst (union o)
      in
      both_feasible_or_unassigned via_spanner
      && both_feasible_or_unassigned direct
      (* Moat is a 2-approx on either graph, so the spanner route costs at
         most stretch * 2 more than the direct route's lower bound; use a
         generous factor. *)
      && weight_of via_spanner <= (6 * weight_of direct) + 1)

let suites =
  [
    ( "graph.spanner",
      [
        Alcotest.test_case "stretch 1 complete" `Quick test_spanner_stretch_1_is_complete;
        Alcotest.test_case "stretch respected" `Quick test_spanner_stretch_respected;
        Alcotest.test_case "sparser with stretch" `Quick test_spanner_sparser_with_stretch;
        Alcotest.test_case "connected" `Quick test_spanner_connected;
        Alcotest.test_case "single point" `Quick test_spanner_single_point;
        qtest prop_spanner_stretch;
        qtest prop_reduced_solver_spanner_vs_direct;
      ] );
  ]
