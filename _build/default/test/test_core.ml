open Dsf_graph
open Dsf_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let rng seed = Dsf_util.Rng.create seed

let frac_testable =
  Alcotest.testable Frac.pp Frac.equal

(* ------------------------------------------------------------------ Frac *)

let f n d = Frac.make n d

let test_frac_normalize () =
  check frac_testable "4/2^2 = 1" Frac.one (f 4 2);
  check frac_testable "6/2^1 = 3" (Frac.of_int 3) (f 6 1);
  check frac_testable "0/2^5 = 0" Frac.zero (f 0 5)

let test_frac_arith () =
  check frac_testable "1/2 + 1/2 = 1" Frac.one (Frac.add (f 1 1) (f 1 1));
  check frac_testable "3 - 1/4 = 11/4" (f 11 2) (Frac.sub (Frac.of_int 3) (f 1 2));
  check frac_testable "half 3 = 3/2" (f 3 1) (Frac.half (Frac.of_int 3));
  check frac_testable "double 3/4 = 3/2" (f 3 1) (Frac.double (f 3 2));
  check frac_testable "5 * 1/4" (f 5 2) (Frac.mul_int (f 1 2) 5)

let test_frac_compare () =
  Alcotest.(check bool) "1/2 < 3/4" true (Frac.compare (f 1 1) (f 3 2) < 0);
  Alcotest.(check bool) "min" true (Frac.equal (f 1 1) (Frac.min (f 1 1) Frac.one));
  Alcotest.(check bool) "max" true (Frac.equal Frac.one (Frac.max (f 1 1) Frac.one));
  check Alcotest.int "sign neg" (-1) (Frac.sign (Frac.neg Frac.one));
  check Alcotest.int "sign zero" 0 (Frac.sign Frac.zero)

let test_frac_int_conversions () =
  Alcotest.(check bool) "is_int 2" true (Frac.is_int (Frac.of_int 2));
  Alcotest.(check bool) "not int 1/2" false (Frac.is_int (f 1 1));
  check Alcotest.int "to_int" 7 (Frac.to_int_exn (Frac.of_int 7));
  check (Alcotest.float 1e-12) "to_float" 0.75 (Frac.to_float (f 3 2))

let prop_frac_add_assoc =
  QCheck.Test.make ~name:"frac addition associative and exact" ~count:200
    QCheck.(triple (pair (int_range (-1000) 1000) (int_range 0 8))
              (pair (int_range (-1000) 1000) (int_range 0 8))
              (pair (int_range (-1000) 1000) (int_range 0 8)))
    (fun ((a, pa), (b, pb), (c, pc)) ->
      let x = f a pa and y = f b pb and z = f c pc in
      Frac.equal (Frac.add (Frac.add x y) z) (Frac.add x (Frac.add y z))
      && Frac.equal (Frac.sub (Frac.add x y) y) x
      && Frac.equal (Frac.double (Frac.half x)) x)

(* ------------------------------------------------------------------ Moat *)

let random_instance ?(n = 14) ?(extra = 10) ?(max_w = 8) ?(t = 6) ?(k = 2) seed =
  let r = rng seed in
  let g = Gen.random_connected r ~n ~extra_edges:extra ~max_w in
  let labels = Gen.random_labels r ~n ~t ~k in
  Instance.make_ic g labels

let test_moat_two_terminals_path () =
  (* Single pair on a path: output = the shortest path, dual = its weight. *)
  let g = Gen.path 5 in
  let inst = Instance.make_ic g [| 0; -1; -1; -1; 0 |] in
  let res = Moat.run inst in
  check Alcotest.int "weight = distance" 4 res.Moat.weight;
  check frac_testable "dual = distance" (Frac.of_int 4) res.Moat.dual

let test_moat_star () =
  let g = Gen.star 5 in
  let inst = Instance.make_ic g [| -1; 0; 0; 0; -1 |] in
  let res = Moat.run inst in
  check Alcotest.int "3 spokes" 3 res.Moat.weight;
  Alcotest.(check bool) "feasible" true (Instance.is_feasible inst res.Moat.solution)

let test_moat_empty_instance () =
  let g = Gen.path 4 in
  let inst = Instance.make_ic g [| -1; -1; -1; -1 |] in
  let res = Moat.run inst in
  check Alcotest.int "no edges" 0 res.Moat.weight;
  check Alcotest.int "no merges" 0 (List.length res.Moat.merges)

let test_moat_singleton_dropped () =
  (* A singleton component must not force any edges. *)
  let g = Gen.path 4 in
  let inst = Instance.make_ic g [| 0; 7; -1; 0 |] in
  let res = Moat.run inst in
  Alcotest.(check bool) "feasible" true (Instance.is_feasible inst res.Moat.solution);
  check Alcotest.int "only the pair's path" 3 res.Moat.weight

let test_moat_phase_bound () =
  (* Lemma 4.4: number of merge phases <= 2k. *)
  for seed = 0 to 10 do
    let inst = random_instance ~t:10 ~k:3 seed in
    let res = Moat.run inst in
    Alcotest.(check bool)
      (Printf.sprintf "phases <= 2k (seed %d)" seed)
      true
      (res.Moat.phase_count <= 2 * 3)
  done

let test_moat_merge_count () =
  (* Each merge reduces the number of moats by one: at most t - 1 merges. *)
  let inst = random_instance ~t:8 ~k:2 3 in
  let res = Moat.run inst in
  Alcotest.(check bool) "merges <= t-1" true (List.length res.Moat.merges <= 7)

let prop_moat_two_approx =
  QCheck.Test.make
    ~name:"moat: feasible, weight <= 2*OPT, dual <= OPT (Thm 4.1, Lem C.4)"
    ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let inst = random_instance seed in
      let res = Moat.run inst in
      let opt = Exact.steiner_forest_weight inst in
      Instance.is_feasible inst res.Moat.solution
      && res.Moat.weight <= 2 * opt
      && Frac.compare res.Moat.dual (Frac.of_int opt) <= 0
      && Frac.compare (Frac.of_int res.Moat.weight) (Frac.double res.Moat.dual) < 0
      || (opt = 0 && res.Moat.weight = 0))

let prop_moat_output_is_pruned_forest =
  QCheck.Test.make ~name:"moat: output is a minimal feasible forest" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let inst = random_instance ~t:8 ~k:3 ~n:18 seed in
      let res = Moat.run inst in
      Instance.is_forest inst.Instance.graph res.Moat.solution
      && res.Moat.solution = Instance.prune inst res.Moat.solution)

let prop_moat_mu_nonnegative_monotone_dual =
  QCheck.Test.make ~name:"moat: growth amounts nonnegative, dual correct"
    ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let inst = random_instance seed in
      let res = Moat.run inst in
      let recomputed =
        List.fold_left
          (fun acc m -> Frac.add acc (Frac.mul_int m.Moat.mu m.Moat.active_moats))
          Frac.zero res.Moat.merges
      in
      List.for_all (fun m -> Frac.sign m.Moat.mu >= 0) res.Moat.merges
      && Frac.equal recomputed res.Moat.dual)

(* ----------------------------------------------------------- Moat_rounded *)

let test_rounded_matches_plain_on_pairs () =
  let g = Gen.path 5 in
  let inst = Instance.make_ic g [| 0; -1; -1; -1; 0 |] in
  let res = Moat_rounded.run ~eps_num:1 ~eps_den:2 inst in
  check Alcotest.int "weight" 4 res.Moat_rounded.weight

let test_rounded_growth_phases_scale_with_eps () =
  let inst = random_instance ~n:20 ~t:8 ~k:2 5 in
  let coarse = Moat_rounded.run ~eps_num:1 ~eps_den:1 inst in
  let fine = Moat_rounded.run ~eps_num:1 ~eps_den:10 inst in
  Alcotest.(check bool) "more phases for smaller eps" true
    (fine.Moat_rounded.growth_phases > coarse.Moat_rounded.growth_phases)

let test_rounded_rejects_bad_eps () =
  let inst = random_instance 1 in
  Alcotest.check_raises "eps > 1"
    (Invalid_argument "Moat_rounded.run: need 0 < eps <= 1") (fun () ->
      ignore (Moat_rounded.run ~eps_num:3 ~eps_den:2 inst));
  Alcotest.check_raises "eps = 0"
    (Invalid_argument "Moat_rounded.run: need 0 < eps <= 1") (fun () ->
      ignore (Moat_rounded.run ~eps_num:0 ~eps_den:1 inst))

let prop_rounded_eps_approx =
  QCheck.Test.make
    ~name:"rounded moat: feasible and within (2+eps)*OPT (Thm 4.2)" ~count:30
    QCheck.(pair (int_range 0 100_000) (int_range 1 10))
    (fun (seed, den) ->
      let inst = random_instance seed in
      let res = Moat_rounded.run ~eps_num:1 ~eps_den:den inst in
      let opt = Exact.steiner_forest_weight inst in
      let eps = 1.0 /. float_of_int den in
      Instance.is_feasible inst res.Moat_rounded.solution
      && float_of_int res.Moat_rounded.weight
         <= ((2.0 +. eps) *. float_of_int opt) +. 1e-9)

let prop_rounded_dual_bound =
  QCheck.Test.make
    ~name:"rounded moat: dual/(1+eps/2) lower-bounds OPT (Cor D.1)" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let inst = random_instance seed in
      let res = Moat_rounded.run ~eps_num:1 ~eps_den:2 inst in
      let opt = Exact.steiner_forest_weight inst in
      (* dual <= (1 + eps/2) * scale * OPT *)
      res.Moat_rounded.dual_unscaled <= (1.25 *. float_of_int opt) +. 1e-6)

(* --------------------------------------------------------------- Region_bf *)

let test_region_bf_basic_voronoi () =
  let g = Gen.path 7 in
  let frozen = Array.make 7 false in
  let res, _ =
    Region_bf.run g ~frozen
      ~sources:[ 0, Frac.zero, 0; 6, Frac.zero, 6 ]
  in
  check Alcotest.int "left owner" 0 res.(2).Region_bf.owner;
  check Alcotest.int "tie to smaller owner" 0 res.(3).Region_bf.owner;
  check Alcotest.int "right owner" 6 res.(5).Region_bf.owner

let test_region_bf_negative_offsets () =
  (* A head start (negative offset) extends reach: source 6 with offset -3
     wins the whole path despite symmetric distances. *)
  let g = Gen.path 7 in
  let frozen = Array.make 7 false in
  let res, _ =
    Region_bf.run g ~frozen
      ~sources:[ 0, Frac.zero, 0; 6, Frac.of_int (-3), 6 ]
  in
  check Alcotest.int "boundary shifted" 6 res.(2).Region_bf.owner;
  check frac_testable "offset arithmetic" (Frac.of_int 1)
    res.(2).Region_bf.offset

let test_region_bf_frozen_blocks () =
  (* Frozen middle node: the right side is unreachable from source 0. *)
  let g = Gen.path 5 in
  let frozen = [| false; false; true; false; false |] in
  let res, _ = Region_bf.run g ~frozen ~sources:[ 0, Frac.zero, 0 ] in
  check Alcotest.int "reached" 0 res.(1).Region_bf.owner;
  check Alcotest.int "frozen unowned" (-1) res.(2).Region_bf.owner;
  check Alcotest.int "blocked" (-1) res.(3).Region_bf.owner

let test_region_bf_pinned_sources () =
  (* A pinned source keeps its own (worse) label rather than adopting. *)
  let g = Gen.path 3 in
  let frozen = Array.make 3 false in
  let res, _ =
    Region_bf.run g ~frozen
      ~sources:[ 0, Frac.zero, 0; 2, Frac.of_int 10, 2 ]
  in
  check Alcotest.int "pinned keeps owner" 2 res.(2).Region_bf.owner;
  check frac_testable "pinned keeps offset" (Frac.of_int 10)
    res.(2).Region_bf.offset;
  check Alcotest.int "middle goes to 0" 0 res.(1).Region_bf.owner

let test_region_bf_fractional_halves () =
  let g = Gen.path 4 in
  let frozen = Array.make 4 false in
  let res, _ =
    Region_bf.run g ~frozen
      ~sources:[ 0, Frac.make 1 1, 0 ]
  in
  check frac_testable "1/2 + 2 = 5/2" (Frac.make 5 1) res.(2).Region_bf.offset

let prop_region_bf_equals_centralized_voronoi =
  QCheck.Test.make
    ~name:"region BF = centralized Voronoi (owners and reduced distances)"
    ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let n = 22 in
      let g = Gen.random_connected r ~n ~extra_edges:18 ~max_w:9 in
      let sources =
        Dsf_util.Rng.sample_without_replacement r 4 n
        |> Array.to_list
        |> List.map (fun v -> v, Frac.zero, v)
      in
      let frozen = Array.make n false in
      let res, _ = Region_bf.run g ~sources ~frozen in
      (* Centralized reference: per-source Dijkstra, lexicographic
         (distance, source id) assignment. *)
      let dists =
        List.map (fun (v, _, _) -> v, fst (Paths.dijkstra g ~src:v)) sources
      in
      let ok = ref true in
      for u = 0 to n - 1 do
        let best =
          List.fold_left
            (fun acc (src, d) ->
              match acc with
              | Some (bd, bs) when (bd, bs) <= (d.(u), src) -> acc
              | _ -> Some (d.(u), src))
            None dists
        in
        match best with
        | Some (bd, bs) ->
            if
              res.(u).Region_bf.owner <> bs
              || not (Frac.equal res.(u).Region_bf.offset (Frac.of_int bd))
            then ok := false
        | None -> ok := false
      done;
      !ok)

(* ----------------------------------------------------------------- Det_dsf *)

let test_det_simple_pair () =
  let g = Gen.path 5 in
  let inst = Instance.make_ic g [| 0; -1; -1; -1; 0 |] in
  let res = Det_dsf.run inst in
  check Alcotest.int "weight" 4 res.Det_dsf.weight;
  check Alcotest.int "one merge" 1 (List.length res.Det_dsf.merges)

let test_det_two_components () =
  let g = Graph.make ~n:4 [ 0, 1, 1; 1, 2, 100; 2, 3, 1 ] in
  let inst = Instance.make_ic g [| 0; 0; 1; 1 |] in
  let res = Det_dsf.run inst in
  check Alcotest.int "two cheap paths" 2 res.Det_dsf.weight;
  check Alcotest.int "two phases" 2 res.Det_dsf.phase_count

let test_det_congestion_discipline () =
  let inst = random_instance ~n:30 ~t:8 ~k:2 7 in
  let res = Det_dsf.run inst in
  let budget = Dsf_util.Bitsize.congest_budget ~n:30 in
  Alcotest.(check bool) "per-edge-round bits within O(log n) budget" true
    (res.Det_dsf.max_edge_round_bits <= budget)

let test_det_ledger_structure () =
  let inst = random_instance 11 in
  let res = Det_dsf.run inst in
  let entries = Dsf_congest.Ledger.entries res.Det_dsf.ledger in
  Alcotest.(check bool) "has entries" true (List.length entries > 3);
  Alcotest.(check bool) "simulated dominates" true
    (Dsf_congest.Ledger.simulated res.Det_dsf.ledger > 0);
  Alcotest.(check bool) "total = sim + charged" true
    (Dsf_congest.Ledger.total res.Det_dsf.ledger
    = Dsf_congest.Ledger.simulated res.Det_dsf.ledger
      + Dsf_congest.Ledger.charged res.Det_dsf.ledger)

let prop_det_matches_centralized_dual =
  QCheck.Test.make
    ~name:"det_dsf: dual and merge schedule match centralized Algorithm 1"
    ~count:50
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let inst = random_instance ~n:16 ~t:6 ~k:2 seed in
      let det = Det_dsf.run inst in
      let cen = Moat.run inst in
      Frac.equal det.Det_dsf.dual cen.Moat.dual
      && List.length det.Det_dsf.merges = List.length cen.Moat.merges
      && det.Det_dsf.phase_count = cen.Moat.phase_count)

let prop_det_feasible_two_approx =
  QCheck.Test.make
    ~name:"det_dsf: feasible and within 2*OPT (Thm 4.17)" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let inst = random_instance ~n:16 ~t:6 ~k:2 seed in
      let det = Det_dsf.run inst in
      let opt = Exact.steiner_forest_weight inst in
      Instance.is_feasible inst det.Det_dsf.solution
      && det.Det_dsf.weight <= 2 * opt)

let prop_det_output_minimal =
  QCheck.Test.make ~name:"det_dsf: output forest is already minimal"
    ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let inst = random_instance ~n:16 ~t:6 ~k:2 seed in
      let det = Det_dsf.run inst in
      Instance.is_forest inst.Instance.graph det.Det_dsf.solution
      && det.Det_dsf.solution = Instance.prune inst det.Det_dsf.solution)

let prop_det_multi_component =
  QCheck.Test.make ~name:"det_dsf: k=4 spread instances stay correct"
    ~count:10
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let g = Gen.random_connected r ~n:40 ~extra_edges:30 ~max_w:10 in
      let labels = Gen.spread_labels r g ~t:12 ~k:4 in
      let inst = Instance.make_ic g labels in
      let det = Det_dsf.run inst in
      let cen = Moat.run inst in
      Instance.is_feasible inst det.Det_dsf.solution
      && Frac.equal det.Det_dsf.dual cen.Moat.dual)

(* --------------------------------------------------------------- Transform *)

let test_transform_cr_to_ic () =
  let g = Gen.path 6 in
  let requests = Array.make 6 [] in
  requests.(0) <- [ 2 ];
  requests.(2) <- [ 4 ];
  requests.(5) <- [ 1 ];
  let cr = Instance.make_cr g requests in
  let out = Transform.cr_to_ic cr in
  let inst = out.Transform.value in
  check Alcotest.int "k = 2" 2 (Instance.component_count inst);
  Alcotest.(check bool) "0,2,4 together" true
    (inst.Instance.labels.(0) = inst.Instance.labels.(4));
  Alcotest.(check bool) "1,5 together" true
    (inst.Instance.labels.(1) = inst.Instance.labels.(5));
  Alcotest.(check bool) "groups differ" true
    (inst.Instance.labels.(0) <> inst.Instance.labels.(1));
  Alcotest.(check bool) "rounds ~ O(D + t)" true (out.Transform.rounds <= 40)

let test_transform_cr_matches_centralized () =
  let r = rng 3 in
  let g = Gen.random_connected r ~n:20 ~extra_edges:15 ~max_w:5 in
  let requests = Array.make 20 [] in
  List.iter
    (fun _ ->
      let v = Dsf_util.Rng.int r 20 and w = Dsf_util.Rng.int r 20 in
      if v <> w then requests.(v) <- w :: requests.(v))
    (List.init 10 Fun.id);
  let cr = Instance.make_cr g requests in
  let distributed = (Transform.cr_to_ic cr).Transform.value in
  let centralized = Instance.ic_of_cr cr in
  (* Same partition of terminals, possibly different label names. *)
  let partition inst =
    Instance.components inst |> List.map snd |> List.sort compare
  in
  check
    Alcotest.(list (list int))
    "same partition" (partition centralized) (partition distributed)

let test_transform_minimalize () =
  let g = Gen.path 6 in
  let inst = Instance.make_ic g [| 0; 1; -1; 0; 2; 2 |] in
  let out = Transform.minimalize inst in
  check Alcotest.int "k drops to 2" 2 (Instance.component_count out.Transform.value);
  check Alcotest.int "label 1 dropped" (-1) out.Transform.value.Instance.labels.(1);
  Alcotest.(check bool) "rounds bounded" true (out.Transform.rounds <= 40)

let prop_transform_minimalize_equiv =
  QCheck.Test.make
    ~name:"distributed minimalize = centralized minimalize" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let g = Gen.random_connected r ~n:15 ~extra_edges:10 ~max_w:5 in
      let labels =
        Array.init 15 (fun _ ->
            if Dsf_util.Rng.bool r then Dsf_util.Rng.int r 5 else -1)
      in
      let inst = Instance.make_ic g labels in
      let distributed = (Transform.minimalize inst).Transform.value in
      let centralized = Instance.minimalize inst in
      distributed.Instance.labels = centralized.Instance.labels)

let suites =
  [
    ( "core.frac",
      [
        Alcotest.test_case "normalize" `Quick test_frac_normalize;
        Alcotest.test_case "arithmetic" `Quick test_frac_arith;
        Alcotest.test_case "compare" `Quick test_frac_compare;
        Alcotest.test_case "conversions" `Quick test_frac_int_conversions;
        qtest prop_frac_add_assoc;
      ] );
    ( "core.moat",
      [
        Alcotest.test_case "pair on path" `Quick test_moat_two_terminals_path;
        Alcotest.test_case "star spokes" `Quick test_moat_star;
        Alcotest.test_case "empty instance" `Quick test_moat_empty_instance;
        Alcotest.test_case "singleton dropped" `Quick test_moat_singleton_dropped;
        Alcotest.test_case "phase bound (Lemma 4.4)" `Quick test_moat_phase_bound;
        Alcotest.test_case "merge count" `Quick test_moat_merge_count;
        qtest prop_moat_two_approx;
        qtest prop_moat_output_is_pruned_forest;
        qtest prop_moat_mu_nonnegative_monotone_dual;
      ] );
    ( "core.moat_rounded",
      [
        Alcotest.test_case "pair on path" `Quick test_rounded_matches_plain_on_pairs;
        Alcotest.test_case "phases scale with eps" `Quick
          test_rounded_growth_phases_scale_with_eps;
        Alcotest.test_case "rejects bad eps" `Quick test_rounded_rejects_bad_eps;
        qtest prop_rounded_eps_approx;
        qtest prop_rounded_dual_bound;
      ] );
    ( "core.region_bf",
      [
        Alcotest.test_case "voronoi" `Quick test_region_bf_basic_voronoi;
        Alcotest.test_case "negative offsets" `Quick test_region_bf_negative_offsets;
        Alcotest.test_case "frozen blocks" `Quick test_region_bf_frozen_blocks;
        Alcotest.test_case "pinned sources" `Quick test_region_bf_pinned_sources;
        Alcotest.test_case "fractional distances" `Quick test_region_bf_fractional_halves;
        qtest prop_region_bf_equals_centralized_voronoi;
      ] );
    ( "core.det_dsf",
      [
        Alcotest.test_case "pair on path" `Quick test_det_simple_pair;
        Alcotest.test_case "two components" `Quick test_det_two_components;
        Alcotest.test_case "congestion discipline" `Quick test_det_congestion_discipline;
        Alcotest.test_case "ledger structure" `Quick test_det_ledger_structure;
        qtest prop_det_matches_centralized_dual;
        qtest prop_det_feasible_two_approx;
        qtest prop_det_output_minimal;
        qtest prop_det_multi_component;
      ] );
    ( "core.transform",
      [
        Alcotest.test_case "CR to IC" `Quick test_transform_cr_to_ic;
        Alcotest.test_case "CR matches centralized" `Quick
          test_transform_cr_matches_centralized;
        Alcotest.test_case "minimalize" `Quick test_transform_minimalize;
        qtest prop_transform_minimalize_equiv;
      ] );
  ]
