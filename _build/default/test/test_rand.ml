(* Tests for the randomized algorithm (Section 5), the sublinear
   deterministic algorithm (Section 4.2), and the F-reduced solver. *)

open Dsf_graph
open Dsf_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let rng seed = Dsf_util.Rng.create seed

let random_instance ?(n = 24) ?(extra = 18) ?(max_w = 8) ?(t = 8) ?(k = 3) seed =
  let r = rng seed in
  let g = Gen.random_connected r ~n ~extra_edges:extra ~max_w in
  let labels = Gen.random_labels r ~n ~t ~k in
  Instance.make_ic g labels

(* ---------------------------------------------------------------- Rand_dsf *)

let test_rand_pair_path () =
  let g = Gen.path 6 in
  let inst = Instance.make_ic g [| 0; -1; -1; -1; -1; 0 |] in
  let res = Rand_dsf.run ~rng:(rng 1) inst in
  Alcotest.(check bool) "feasible" true (Instance.is_feasible inst res.Rand_dsf.solution);
  (* The only simple path is forced; weight must be exactly 5. *)
  check Alcotest.int "exact on a path" 5 res.Rand_dsf.weight

let test_rand_empty () =
  let g = Gen.path 4 in
  let inst = Instance.make_ic g [| -1; -1; -1; -1 |] in
  let res = Rand_dsf.run ~rng:(rng 2) inst in
  check Alcotest.int "no edges" 0 res.Rand_dsf.weight

let test_rand_regimes_agree_on_feasibility () =
  let inst = random_instance 7 in
  let a = Rand_dsf.run ~force_truncate:false ~rng:(rng 3) inst in
  let b = Rand_dsf.run ~force_truncate:true ~rng:(rng 4) inst in
  Alcotest.(check bool) "untruncated feasible" true
    (Instance.is_feasible inst a.Rand_dsf.solution);
  Alcotest.(check bool) "truncated feasible" true
    (Instance.is_feasible inst b.Rand_dsf.solution);
  Alcotest.(check bool) "regimes recorded" true
    ((not a.Rand_dsf.truncated) && b.Rand_dsf.truncated)

let test_rand_deterministic_given_seed () =
  let inst = random_instance 9 in
  let a = Rand_dsf.run ~rng:(rng 5) inst in
  let b = Rand_dsf.run ~rng:(rng 5) inst in
  check Alcotest.int "reproducible" a.Rand_dsf.weight b.Rand_dsf.weight

let test_rand_more_repetitions_no_worse () =
  let inst = random_instance 11 in
  let one = Rand_dsf.run ~repetitions:1 ~rng:(rng 6) inst in
  let many = Rand_dsf.run ~repetitions:6 ~rng:(rng 6) inst in
  (* Repetition 1 of both runs uses the same split seed, so min over more
     repetitions cannot be heavier. *)
  Alcotest.(check bool) "min over reps" true
    (many.Rand_dsf.weight <= one.Rand_dsf.weight)

let prop_rand_feasible_logn_ratio =
  QCheck.Test.make
    ~name:"rand_dsf: feasible, within O(log n) of OPT (Thm 5.2)" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let inst = random_instance seed in
      let res = Rand_dsf.run ~rng:(rng (seed + 1)) inst in
      let opt = Exact.steiner_forest_weight inst in
      Instance.is_feasible inst res.Rand_dsf.solution
      && float_of_int res.Rand_dsf.weight
         <= 3.0 *. log (float_of_int 24) *. float_of_int opt)

let prop_rand_truncated_feasible =
  QCheck.Test.make
    ~name:"rand_dsf truncated regime: always feasible" ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let inst = random_instance seed in
      let res = Rand_dsf.run ~force_truncate:true ~rng:(rng (seed + 2)) inst in
      Instance.is_feasible inst res.Rand_dsf.solution)

(* ----------------------------------------------------------- Det_sublinear *)

let norm_pairs ps = List.map (fun (a, b) -> min a b, max a b) ps |> List.sort compare

let test_sublinear_pair_path () =
  let g = Gen.path 6 in
  let inst = Instance.make_ic g [| 0; -1; -1; -1; -1; 0 |] in
  let res = Det_sublinear.run ~eps_num:1 ~eps_den:2 inst in
  check Alcotest.int "exact on path" 5 res.Det_sublinear.weight

let test_sublinear_sigma () =
  let inst = random_instance ~n:30 13 in
  let res = Det_sublinear.run ~eps_num:1 ~eps_den:2 inst in
  Alcotest.(check bool) "sigma = sqrt(min(st, n)) <= sqrt n" true
    (res.Det_sublinear.sigma * res.Det_sublinear.sigma <= 2 * 30)

let test_sublinear_ledger_entries () =
  let inst = random_instance 15 in
  let res = Det_sublinear.run ~eps_num:1 ~eps_den:2 inst in
  let entries = Dsf_congest.Ledger.entries res.Det_sublinear.ledger in
  Alcotest.(check bool) "has decomposition entries" true
    (List.exists (fun (_, l, _) ->
         let contains s sub =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         contains l "decomposition BF")
        entries)

let prop_sublinear_matches_rounded_schedule =
  QCheck.Test.make
    ~name:"det_sublinear: merge schedule = Moat_rounded's (Lemma F.4)"
    ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let inst = random_instance ~n:20 ~t:8 ~k:3 seed in
      let sub = Det_sublinear.run ~eps_num:1 ~eps_den:2 inst in
      let cen = Moat_rounded.run ~eps_num:1 ~eps_den:2 inst in
      norm_pairs sub.Det_sublinear.merge_pairs
      = norm_pairs cen.Moat_rounded.merge_pairs)

let prop_sublinear_eps_approx =
  QCheck.Test.make
    ~name:"det_sublinear: feasible, within (2+eps)*OPT (Cor 4.21)" ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let inst = random_instance ~n:20 ~t:8 ~k:3 seed in
      let res = Det_sublinear.run ~eps_num:1 ~eps_den:2 inst in
      let opt = Exact.steiner_forest_weight inst in
      Instance.is_feasible inst res.Det_sublinear.solution
      && float_of_int res.Det_sublinear.weight
         <= (2.5 *. float_of_int opt) +. 1e-9)

let prop_sublinear_growth_phase_bound =
  QCheck.Test.make
    ~name:"det_sublinear: O(log WD / eps) growth phases (Lemma F.1)"
    ~count:10
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let inst = random_instance seed in
      let res = Det_sublinear.run ~eps_num:1 ~eps_den:2 inst in
      let wd = Paths.diameter_weighted inst.Instance.graph in
      (* mu-hat grows by >= 1/4 multiplicatively from scale/2; generous cap. *)
      let bound =
        int_of_float (8.0 *. (log (float_of_int (wd * 32)) /. log 1.25)) + 8
      in
      res.Det_sublinear.growth_phases <= bound)

(* ---------------------------------------------------------- Reduced_solver *)

let test_reduced_solver_empty_s () =
  let inst = random_instance 21 in
  let f = Array.make (Graph.m inst.Instance.graph) false in
  let out = Reduced_solver.solve inst ~f ~s_set:[] ~diameter:3 in
  check Alcotest.int "no extras" 0
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0
       out.Reduced_solver.extra_edges)

let test_reduced_solver_completes_partial () =
  (* Path 0..5, terminals 0 and 5 same label.  F pre-connects 0-1-2 and
     3-4-5; S = {2, 3}.  Each terminal clusters to an S node; the reduced
     instance must select the bridging edge 2-3. *)
  let g = Gen.path 6 in
  let inst = Instance.make_ic g [| 0; -1; -1; -1; -1; 0 |] in
  let f = Array.make 5 false in
  let set u v = match Graph.find_edge g u v with Some id -> f.(id) <- true | None -> () in
  set 0 1;
  set 1 2;
  set 3 4;
  set 4 5;
  let out = Reduced_solver.solve inst ~f ~s_set:[ 2; 3 ] ~diameter:5 in
  let union = Array.mapi (fun i b -> b || out.Reduced_solver.extra_edges.(i)) f in
  Alcotest.(check bool) "union feasible" true (Instance.is_feasible inst union);
  check Alcotest.int "two super-terminals" 2 out.Reduced_solver.reduced_terminal_count

let prop_reduced_solver_union_feasible =
  QCheck.Test.make
    ~name:"reduced solver: F ∪ F' always feasible (Lemma G.13 setting)"
    ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let inst = random_instance ~n:24 seed in
      let g = inst.Instance.graph in
      (* A random partial forest F + random S. *)
      let f = Array.make (Graph.m g) false in
      Array.iter
        (fun (e : Graph.edge) ->
          if Dsf_util.Rng.float r 1.0 < 0.3 then f.(e.id) <- true)
        (Graph.edges g);
      let s_set =
        Dsf_util.Rng.sample_without_replacement r 5 24 |> Array.to_list
      in
      let out = Reduced_solver.solve inst ~f ~s_set ~diameter:5 in
      let union = Array.mapi (fun i b -> b || out.Reduced_solver.extra_edges.(i)) f in
      (* The reduced instance only guarantees feasibility when every
         terminal is in some T_v (otherwise only w.h.p. through F); with a
         random F some terminals may be unassigned, so only require
         feasibility when all were assigned. *)
      out.Reduced_solver.unassigned_terminals > 0
      || Instance.is_feasible inst union)

let suites =
  [
    ( "core.rand_dsf",
      [
        Alcotest.test_case "pair on path" `Quick test_rand_pair_path;
        Alcotest.test_case "empty instance" `Quick test_rand_empty;
        Alcotest.test_case "both regimes" `Quick test_rand_regimes_agree_on_feasibility;
        Alcotest.test_case "reproducible" `Quick test_rand_deterministic_given_seed;
        Alcotest.test_case "repetitions only help" `Quick test_rand_more_repetitions_no_worse;
        qtest prop_rand_feasible_logn_ratio;
        qtest prop_rand_truncated_feasible;
      ] );
    ( "core.det_sublinear",
      [
        Alcotest.test_case "pair on path" `Quick test_sublinear_pair_path;
        Alcotest.test_case "sigma bound" `Quick test_sublinear_sigma;
        Alcotest.test_case "ledger entries" `Quick test_sublinear_ledger_entries;
        qtest prop_sublinear_matches_rounded_schedule;
        qtest prop_sublinear_eps_approx;
        qtest prop_sublinear_growth_phase_bound;
      ] );
    ( "core.reduced_solver",
      [
        Alcotest.test_case "empty S" `Quick test_reduced_solver_empty_s;
        Alcotest.test_case "bridges partial forest" `Quick test_reduced_solver_completes_partial;
        qtest prop_reduced_solver_union_feasible;
      ] );
  ]
