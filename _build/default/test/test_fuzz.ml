(* Cross-topology fuzzing: random instances drawn from the full generator
   zoo, pushed through the core algorithms with the strongest invariants
   asserted on every draw.  This is the suite that shakes out interactions
   the per-module tests cannot (odd topologies x odd label layouts x
   algorithm internals). *)

open Dsf_graph
open Dsf_core

let qtest = QCheck_alcotest.to_alcotest
let rng seed = Dsf_util.Rng.create seed

(* A topology zoo indexed by seed. *)
let random_graph r =
  match Dsf_util.Rng.int r 8 with
  | 0 -> Gen.random_connected r ~n:(10 + Dsf_util.Rng.int r 25) ~extra_edges:20 ~max_w:9
  | 1 -> Gen.reweight r ~max_w:9 (Gen.grid ~rows:(2 + Dsf_util.Rng.int r 4) ~cols:(2 + Dsf_util.Rng.int r 5))
  | 2 -> Gen.reweight r ~max_w:9 (Gen.cycle (5 + Dsf_util.Rng.int r 25))
  | 3 -> Gen.reweight r ~max_w:9 (Gen.path (4 + Dsf_util.Rng.int r 30))
  | 4 -> Gen.reweight r ~max_w:9 (Gen.star (4 + Dsf_util.Rng.int r 25))
  | 5 -> Gen.random_geometric r ~n:(10 + Dsf_util.Rng.int r 20) ~radius:0.35 ~max_w:20
  | 6 ->
      Gen.clustered r ~clusters:(2 + Dsf_util.Rng.int r 2)
        ~cluster_size:(4 + Dsf_util.Rng.int r 6)
        ~intra_extra:3 ~bridges:2 ~intra_w:4 ~bridge_w:25
  | _ -> Gen.reweight r ~max_w:9 (Gen.lollipop ~clique:(3 + Dsf_util.Rng.int r 4) ~tail:(3 + Dsf_util.Rng.int r 10))

let random_instance seed =
  let r = rng seed in
  let g = random_graph r in
  let n = Graph.n g in
  let k = 1 + Dsf_util.Rng.int r 3 in
  let t = min n (2 * k + Dsf_util.Rng.int r 5) in
  if t < 2 * k then None
  else Some (Instance.make_ic g (Gen.random_labels r ~n ~t ~k))

let with_instance seed f =
  match random_instance seed with None -> true | Some inst -> f inst

let prop_fuzz_det_schedule =
  QCheck.Test.make
    ~name:"fuzz: Det_dsf follows Moat's schedule on the topology zoo"
    ~count:80
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      with_instance seed (fun inst ->
          let det = Det_dsf.run inst in
          let cen = Moat.run inst in
          Instance.is_feasible inst det.Det_dsf.solution
          && Frac.equal det.Det_dsf.dual cen.Moat.dual
          && det.Det_dsf.phase_count = cen.Moat.phase_count))

let prop_fuzz_sublinear_schedule =
  QCheck.Test.make
    ~name:"fuzz: Det_sublinear follows Moat_rounded's schedule on the zoo"
    ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      with_instance seed (fun inst ->
          let sub = Det_sublinear.run ~eps_num:1 ~eps_den:2 inst in
          let cen = Moat_rounded.run ~eps_num:1 ~eps_den:2 inst in
          let norm ps =
            List.map (fun (a, b) -> min a b, max a b) ps |> List.sort compare
          in
          Instance.is_feasible inst sub.Det_sublinear.solution
          && norm sub.Det_sublinear.merge_pairs
             = norm cen.Moat_rounded.merge_pairs))

let prop_fuzz_rand_feasible =
  QCheck.Test.make
    ~name:"fuzz: Rand_dsf feasible and dual-bounded on the zoo" ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      with_instance seed (fun inst ->
          let res = Rand_dsf.run ~repetitions:1 ~rng:(rng (seed + 13)) inst in
          if not (Instance.is_feasible inst res.Rand_dsf.solution) then false
          else begin
            (* The deterministic dual certifies an O(log n) ratio. *)
            let det = Det_dsf.run inst in
            let dual = Frac.to_float det.Det_dsf.dual in
            let n = Graph.n inst.Instance.graph in
            (* One repetition only gives the O(log n) ratio in expectation;
               allow generous constants so the test checks the order of
               magnitude, not the tail. *)
            dual <= 0.
            || float_of_int res.Rand_dsf.weight
               <= 8.0 *. (1.0 +. log (float_of_int (max 4 n))) *. dual
          end))

let prop_fuzz_pruning_fixpoint =
  QCheck.Test.make
    ~name:"fuzz: F.3 pruning is the minimal-subforest fixpoint on the zoo"
    ~count:50
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      with_instance seed (fun inst ->
          let f = Mst.kruskal inst.Instance.graph in
          if not (Instance.is_feasible inst f) then true
          else begin
            let res = Pruning.run inst ~f ~sigma:4 in
            res.Pruning.pruned = Instance.prune inst f
          end))

let prop_fuzz_solver_reports =
  QCheck.Test.make
    ~name:"fuzz: Solver reports are self-consistent on the zoo" ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      with_instance seed (fun inst ->
          List.for_all
            (fun (r : Solver.report) ->
              r.Solver.feasible
              && r.Solver.weight = Instance.solution_weight inst r.Solver.solution
              && (match Certify.check ?dual:r.Solver.dual_lower_bound inst
                          ~solution:r.Solver.solution with
                 | Ok _ -> true
                 | Error _ -> false))
            (Solver.compare_all
               ~algorithms:
                 [
                   Solver.Det;
                   Solver.Det_sublinear { eps_num = 1; eps_den = 1 };
                   Solver.Rand { repetitions = 1; seed };
                 ]
               inst)))

let prop_fuzz_cr_pipeline =
  QCheck.Test.make
    ~name:"fuzz: CR transform + solve serves every request on the zoo"
    ~count:50
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let r = rng seed in
      let g = random_graph r in
      let n = Graph.n g in
      let requests = Array.make n [] in
      for _ = 1 to 1 + Dsf_util.Rng.int r 6 do
        let a = Dsf_util.Rng.int r n and b = Dsf_util.Rng.int r n in
        if a <> b then requests.(a) <- b :: requests.(a)
      done;
      let cr = Instance.make_cr g requests in
      let rep = Solver.solve_cr Solver.Det cr in
      Instance.cr_is_feasible cr rep.Solver.solution)

let suites =
  [
    ( "fuzz",
      [
        qtest prop_fuzz_det_schedule;
        qtest prop_fuzz_sublinear_schedule;
        qtest prop_fuzz_rand_feasible;
        qtest prop_fuzz_pruning_fixpoint;
        qtest prop_fuzz_solver_reports;
        qtest prop_fuzz_cr_pipeline;
      ] );
  ]
