(* Tests for the Appendix F.3 fast pruning routine. *)

open Dsf_graph
open Dsf_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let rng seed = Dsf_util.Rng.create seed

let test_pruning_path () =
  (* Terminals 0, 2 on a 5-path with the full path as F: edges 2-3, 3-4 go. *)
  let g = Gen.path 5 in
  let inst = Instance.make_ic g [| 0; -1; 0; -1; -1 |] in
  let f = Array.make (Graph.m g) true in
  let res = Pruning.run inst ~f ~sigma:2 in
  check Alcotest.int "weight" 2 (Instance.solution_weight inst res.Pruning.pruned);
  Alcotest.(check bool) "feasible" true (Instance.is_feasible inst res.Pruning.pruned)

let test_pruning_keeps_shared_bridge () =
  (* Two labels both crossing one bridge edge: the coupling rule must keep
     it exactly once. *)
  let g =
    Graph.make ~n:6
      [ 0, 2, 1; 1, 2, 1; 2, 3, 5; 3, 4, 1; 3, 5, 1 ]
  in
  let inst = Instance.make_ic g [| 0; 1; -1; -1; 0; 1 |] in
  let f = Array.make (Graph.m g) true in
  let res = Pruning.run inst ~f ~sigma:2 in
  check Alcotest.int "everything needed" 9
    (Instance.solution_weight inst res.Pruning.pruned)

let test_pruning_drops_whole_subtree () =
  (* A dangling subtree with no terminals disappears entirely. *)
  let g = Gen.star 6 in
  let inst = Instance.make_ic g [| -1; 0; 0; -1; -1; -1 |] in
  let f = Array.make (Graph.m g) true in
  let res = Pruning.run inst ~f ~sigma:2 in
  check Alcotest.int "two spokes" 2
    (Instance.solution_weight inst res.Pruning.pruned)

let test_pruning_rejects_bad_input () =
  let g = Gen.cycle 4 in
  let inst = Instance.make_ic g [| 0; -1; 0; -1 |] in
  let all = Array.make (Graph.m g) true in
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Pruning.run: not a forest") (fun () ->
      ignore (Pruning.run inst ~f:all ~sigma:2));
  let none = Array.make (Graph.m g) false in
  Alcotest.check_raises "infeasible rejected"
    (Invalid_argument "Pruning.run: infeasible") (fun () ->
      ignore (Pruning.run inst ~f:none ~sigma:2))

let test_pruning_cluster_stats () =
  let r = rng 3 in
  let g = Gen.random_connected r ~n:40 ~extra_edges:30 ~max_w:6 in
  let labels = Gen.random_labels r ~n:40 ~t:10 ~k:3 in
  let inst = Instance.make_ic g labels in
  let f = Mst.kruskal g in
  let res = Pruning.run inst ~f ~sigma:5 in
  Alcotest.(check bool) "some clusters" true (res.Pruning.clusters >= 1);
  Alcotest.(check bool) "clusters bounded by nodes" true (res.Pruning.clusters <= 40);
  Alcotest.(check bool) "fc edges < n" true (res.Pruning.cluster_edges < 40);
  Alcotest.(check bool) "ledger has simulated rounds" true
    (Dsf_congest.Ledger.simulated res.Pruning.ledger > 0)

let prop_pruning_equals_reference =
  QCheck.Test.make
    ~name:"F.3 pruning = centralized minimal subforest (Cor F.10)" ~count:60
    QCheck.(pair (int_range 0 100_000) (int_range 2 10))
    (fun (seed, sigma) ->
      let r = rng seed in
      let n = 25 in
      let g = Gen.random_connected r ~n ~extra_edges:20 ~max_w:8 in
      let labels = Gen.random_labels r ~n ~t:8 ~k:3 in
      let inst = Instance.make_ic g labels in
      let f = Mst.kruskal g in
      let res = Pruning.run inst ~f ~sigma in
      res.Pruning.pruned = Instance.prune inst f)

let prop_pruning_on_partial_forests =
  QCheck.Test.make
    ~name:"F.3 pruning works on non-spanning feasible forests" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let n = 20 in
      let g = Gen.random_connected r ~n ~extra_edges:15 ~max_w:8 in
      let labels = Gen.random_labels r ~n ~t:6 ~k:2 in
      let inst = Instance.make_ic g labels in
      (* A feasible non-spanning forest: the deterministic solution plus
         its leftovers before pruning is emulated by pruning the solution
         itself (a fixpoint). *)
      let det = Det_dsf.run inst in
      let res = Pruning.run inst ~f:det.Det_dsf.solution ~sigma:4 in
      res.Pruning.pruned = det.Det_dsf.solution)

let suites =
  [
    ( "core.pruning",
      [
        Alcotest.test_case "path" `Quick test_pruning_path;
        Alcotest.test_case "shared bridge" `Quick test_pruning_keeps_shared_bridge;
        Alcotest.test_case "drops subtree" `Quick test_pruning_drops_whole_subtree;
        Alcotest.test_case "rejects bad input" `Quick test_pruning_rejects_bad_input;
        Alcotest.test_case "cluster stats" `Quick test_pruning_cluster_stats;
        qtest prop_pruning_equals_reference;
        qtest prop_pruning_on_partial_forests;
      ] );
  ]

(* Direct tests for the Lemma F.6 mark/unmark protocol. *)

let test_f6_path_chain () =
  (* Rooted path 4 <- 3 <- 2 <- 1 <- 0 (root 0); holders of class 9 at
     nodes 1 and 3: kept edges = the 1-2, 2-3 chain; the root prefix 0-1
     and the tail 3-4 are peeled. *)
  let g = Gen.path 5 in
  let parent = [| -1; 0; 1; 2; 3 |] in
  let labels v = if v = 1 || v = 3 then [ 9 ] else [] in
  let kept, _ = F6_protocol.run g ~parent ~labels in
  let expect = Array.init 4 (fun eid -> eid = 1 || eid = 2) in
  check Alcotest.(array bool) "middle chain kept" expect kept

let test_f6_single_holder_nothing () =
  let g = Gen.path 4 in
  let parent = [| -1; 0; 1; 2 |] in
  let labels v = if v = 2 then [ 5 ] else [] in
  let kept, _ = F6_protocol.run g ~parent ~labels in
  Alcotest.(check bool) "no edges kept" true (Array.for_all not kept)

let test_f6_junction () =
  (* Star rooted at the hub: holders at two leaves of one class keep both
     spokes; a third leaf with its own class keeps nothing. *)
  let g = Gen.star 5 in
  let parent = [| -1; 0; 0; 0; 0 |] in
  let labels v = if v = 1 || v = 2 then [ 7 ] else if v = 3 then [ 8 ] else [] in
  let kept, _ = F6_protocol.run g ~parent ~labels in
  let spoke leaf = match Graph.find_edge g 0 leaf with Some e -> e | None -> -1 in
  Alcotest.(check bool) "spoke 1 kept" true kept.(spoke 1);
  Alcotest.(check bool) "spoke 2 kept" true kept.(spoke 2);
  Alcotest.(check bool) "spoke 3 dropped" false kept.(spoke 3);
  Alcotest.(check bool) "spoke 4 dropped" false kept.(spoke 4)

let test_f6_root_holder () =
  (* Holder at the root plus one at a leaf: the whole chain between them
     is kept (the root witness stops the peel). *)
  let g = Gen.path 4 in
  let parent = [| -1; 0; 1; 2 |] in
  let labels v = if v = 0 || v = 3 then [ 2 ] else [] in
  let kept, _ = F6_protocol.run g ~parent ~labels in
  Alcotest.(check bool) "all kept" true (Array.for_all Fun.id kept)

let f6_suites =
  [
    ( "core.f6_protocol",
      [
        Alcotest.test_case "chain peeling" `Quick test_f6_path_chain;
        Alcotest.test_case "single holder" `Quick test_f6_single_holder_nothing;
        Alcotest.test_case "junction" `Quick test_f6_junction;
        Alcotest.test_case "root holder" `Quick test_f6_root_holder;
      ] );
  ]

let suites = suites @ f6_suites
